test/test_ssa.ml: Alcotest Analysis Ast List Mlang Parser Printf QCheck Testutil
