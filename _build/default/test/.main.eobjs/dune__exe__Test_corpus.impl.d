test/test_corpus.ml: Alcotest Array Exec Filename Interp Lazy List Mpisim Otter Sys
