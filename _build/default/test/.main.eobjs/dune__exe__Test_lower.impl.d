test/test_lower.ml: Alcotest Analysis List Mlang Otter Spmd
