test/test_lexer.ml: Alcotest Array Fmt Lexer List Mlang Source String Token
