test/test_runtime.ml: Alcotest Array Float Interp List Mpisim Printf QCheck Runtime Testutil
