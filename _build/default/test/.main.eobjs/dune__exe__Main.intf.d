test/main.mli:
