test/test_resolve.ml: Alcotest Analysis Ast List Mlang Parser Source String
