test/test_interp.ml: Alcotest Apps Exec Interp List Mpisim Otter Printf QCheck String Testutil
