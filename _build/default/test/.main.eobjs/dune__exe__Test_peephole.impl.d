test/test_peephole.ml: Alcotest Analysis Apps List Mlang Spmd
