test/test_sim.ml: Alcotest Array List Mpisim Testutil
