test/test_coll.ml: Alcotest Array Float Gen List Mpisim Printf QCheck QCheck_alcotest Testutil
