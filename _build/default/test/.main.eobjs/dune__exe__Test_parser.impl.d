test/test_parser.ml: Alcotest Ast List Mlang Option Parser Pp QCheck Source Testutil
