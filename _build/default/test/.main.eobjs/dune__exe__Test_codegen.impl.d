test/test_codegen.ml: Alcotest Apps Codegen Filename Lazy List Otter Printf String Sys Testutil
