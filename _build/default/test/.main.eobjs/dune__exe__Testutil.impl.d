test/testutil.ml: Alcotest Analysis Array Exec Float Interp List Mlang Mpisim Otter Printf QCheck QCheck_alcotest
