test/test_load.ml: Alcotest Analysis Codegen Exec Filename Fun Interp List Mlang Mpisim Otter Printf String Sys Testutil
