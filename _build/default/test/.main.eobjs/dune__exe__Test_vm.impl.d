test/test_vm.ml: Alcotest Exec List Printf Testutil
