test/test_fmtutil.ml: Alcotest Mlang
