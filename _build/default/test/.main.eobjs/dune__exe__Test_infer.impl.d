test/test_infer.ml: Alcotest Analysis Ast Hashtbl List Mlang Parser Source
