test/test_apps.ml: Alcotest Apps Array Exec Float Interp List Mpisim Option Otter String Testutil
