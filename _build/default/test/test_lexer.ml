(* Lexer unit tests: token streams, the quote/transpose rule, numbers,
   continuations, comments, error reporting. *)

open Mlang

let toks src =
  Array.to_list (Lexer.tokens src)
  |> List.map (fun (l : Lexer.lexed) -> l.tok)
  |> List.filter (fun t -> t <> Token.EOF)

let tok_list = Alcotest.testable
    (fun ppf l ->
      Fmt.pf ppf "[%s]" (String.concat "; " (List.map Token.to_string l)))
    ( = )

let check_toks msg src expected =
  Alcotest.check tok_list msg expected (toks src)

let t name f = Alcotest.test_case name `Quick f

let test_numbers () =
  check_toks "integer" "42" [ Token.NUM 42. ];
  check_toks "decimal" "3.25" [ Token.NUM 3.25 ];
  check_toks "leading dot" ".5" [ Token.NUM 0.5 ];
  check_toks "exponent" "1e3" [ Token.NUM 1000. ];
  check_toks "signed exponent" "2.5e-2" [ Token.NUM 0.025 ];
  check_toks "capital E" "1E2" [ Token.NUM 100. ];
  check_toks "number then ident" "2e" [ Token.NUM 2.; Token.IDENT "e" ]

let test_number_operator_ambiguity () =
  check_toks "2.*x is elementwise" "2.*x"
    [ Token.NUM 2.; Token.DOTSTAR; Token.IDENT "x" ];
  check_toks "2./x" "2./x" [ Token.NUM 2.; Token.DOTSLASH; Token.IDENT "x" ];
  check_toks "2.^x" "2.^x" [ Token.NUM 2.; Token.DOTCARET; Token.IDENT "x" ];
  check_toks "2.' is transpose" "2.'" [ Token.NUM 2.; Token.DOTQUOTE ]

let test_quote_rule () =
  check_toks "transpose after ident" "a'" [ Token.IDENT "a"; Token.QUOTE ];
  check_toks "transpose after )" "(a)'"
    [ Token.LPAREN; Token.IDENT "a"; Token.RPAREN; Token.QUOTE ];
  check_toks "transpose after ]" "[1]'"
    [ Token.LBRACKET; Token.NUM 1.; Token.RBRACKET; Token.QUOTE ];
  check_toks "string after (" "('x')"
    [ Token.LPAREN; Token.STR "x"; Token.RPAREN ];
  check_toks "string after comma" "f(a, 'x')"
    [
      Token.IDENT "f"; Token.LPAREN; Token.IDENT "a"; Token.COMMA;
      Token.STR "x"; Token.RPAREN;
    ];
  check_toks "string at start" "'hello'" [ Token.STR "hello" ];
  check_toks "escaped quote in string" "'it''s'" [ Token.STR "it's" ];
  check_toks "double transpose" "a''"
    [ Token.IDENT "a"; Token.QUOTE; Token.QUOTE ];
  check_toks "transpose after number" "2'" [ Token.NUM 2.; Token.QUOTE ]

let test_operators () =
  check_toks "comparison" "a <= b ~= c"
    [ Token.IDENT "a"; Token.LE; Token.IDENT "b"; Token.NE; Token.IDENT "c" ];
  check_toks "logical" "a && b || ~c"
    [
      Token.IDENT "a"; Token.AMPAMP; Token.IDENT "b"; Token.BARBAR;
      Token.TILDE; Token.IDENT "c";
    ];
  check_toks "elementwise ops" "a .* b ./ c .\\ d"
    [
      Token.IDENT "a"; Token.DOTSTAR; Token.IDENT "b"; Token.DOTSLASH;
      Token.IDENT "c"; Token.DOTBACKSLASH; Token.IDENT "d";
    ];
  check_toks "assign vs equality" "a = b == c"
    [ Token.IDENT "a"; Token.ASSIGN; Token.IDENT "b"; Token.EQEQ; Token.IDENT "c" ]

let test_keywords () =
  check_toks "all keywords" "if elseif else end while for break continue return function"
    [
      Token.KIF; Token.KELSEIF; Token.KELSE; Token.KEND; Token.KWHILE;
      Token.KFOR; Token.KBREAK; Token.KCONTINUE; Token.KRETURN; Token.KFUNCTION;
    ];
  check_toks "keyword prefix is ident" "iffy ender"
    [ Token.IDENT "iffy"; Token.IDENT "ender" ]

let test_comments_and_continuation () =
  check_toks "comment to eol" "a % comment here\nb"
    [ Token.IDENT "a"; Token.NEWLINE; Token.IDENT "b" ];
  check_toks "continuation" "a + ...\n  b"
    [ Token.IDENT "a"; Token.PLUS; Token.IDENT "b" ];
  check_toks "continuation with trailing comment" "a + ... sum\nb"
    [ Token.IDENT "a"; Token.PLUS; Token.IDENT "b" ];
  check_toks "newlines kept" "a\nb" [ Token.IDENT "a"; Token.NEWLINE; Token.IDENT "b" ]

let test_block_comments () =
  check_toks "block comment" "a\n%{\nanything % here\n%}\nb"
    [ Token.IDENT "a"; Token.NEWLINE; Token.NEWLINE; Token.IDENT "b" ];
  check_toks "nested" "%{\n%{\ninner\n%}\nouter\n%}\nx"
    [ Token.NEWLINE; Token.IDENT "x" ];
  match Lexer.tokens "%{\nnever closed" with
  | exception Source.Error _ -> ()
  | _ -> Alcotest.fail "unterminated block comment must error"

let test_errors () =
  let expect_error src =
    match Lexer.tokens src with
    | exception Source.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  expect_error "'unterminated";
  expect_error "a $ b";
  expect_error "a #"

let test_positions () =
  let lexed = Lexer.tokens "a\n  b" in
  let b = lexed.(2) in
  Alcotest.(check int) "line" 2 b.Lexer.tpos.Source.line;
  Alcotest.(check int) "col" 3 b.Lexer.tpos.Source.col

let suite =
  [
    t "numbers" test_numbers;
    t "number/operator ambiguity" test_number_operator_ambiguity;
    t "quote rule (transpose vs string)" test_quote_rule;
    t "operators" test_operators;
    t "keywords" test_keywords;
    t "comments and continuations" test_comments_and_continuation;
    t "block comments" test_block_comments;
    t "lexical errors" test_errors;
    t "positions" test_positions;
  ]
