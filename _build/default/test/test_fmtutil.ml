(* fprintf-style formatting tests (shared by both back ends). *)

open Mlang.Fmtutil

let t name f = Alcotest.test_case name `Quick f

let check msg fmt args expected =
  Alcotest.(check string) msg expected (format fmt args)

let test_conversions () =
  check "plain" "hello" [] "hello";
  check "%d" "n=%d" [ F 42. ] "n=42";
  check "%d truncates" "%d" [ F 3.9 ] "3";
  check "%i" "%i" [ F 7. ] "7";
  check "%f" "%f" [ F 1.5 ] "1.500000";
  check "%.2f" "%.2f" [ F 3.14159 ] "3.14";
  check "%g" "%g" [ F 0.0001 ] "0.0001";
  check "%e" "%.3e" [ F 12345.678 ] "1.235e+04";
  check "%s" "%s!" [ S "ok" ] "ok!";
  check "%s of number" "%s" [ F 2.5 ] "2.5";
  check "percent literal" "100%%" [] "100%";
  check "width" "[%6.2f]" [ F 1.5 ] "[  1.50]"

let test_escapes () =
  check "newline" "a\\nb" [] "a\nb";
  check "tab" "a\\tb" [] "a\tb";
  check "other escape passes through" "a\\qb" [] "aqb"

let test_multiple_args () =
  check "mixed" "%d + %d = %d (%s)" [ F 1.; F 2.; F 3.; S "ok" ]
    "1 + 2 = 3 (ok)"

let test_errors () =
  (match format "%d" [] with
  | exception Format_error _ -> ()
  | _ -> Alcotest.fail "missing argument must raise");
  match format "%q" [ F 1. ] with
  | exception Format_error _ -> ()
  | _ -> Alcotest.fail "unknown conversion must raise"

let test_matrix_format () =
  let s = format_matrix ~name:"A" ~rows:1 ~cols:2 [| 1.; 2.5 |] in
  Alcotest.(check string) "matrix" "A =\n       1.0000     2.5000\n" s

let suite =
  [
    t "conversions" test_conversions;
    t "escapes" test_escapes;
    t "multiple arguments" test_multiple_args;
    t "format errors" test_errors;
    t "matrix format" test_matrix_format;
  ]
