(* Peephole optimizer tests (paper pass 6). *)

module Ir = Spmd.Ir
module P = Spmd.Peephole

let t name f = Alcotest.test_case name `Quick f

let opt_block b =
  let stats = P.fresh_stats () in
  let prog = { Ir.p_vars = []; p_body = b; p_funcs = [] } in
  let prog = P.optimize ~stats prog in
  (prog.Ir.p_body, stats)

let test_copy_forwarding () =
  let b =
    [
      Ir.Imatmul ("ML_tmp1", "a", "b");
      Ir.Icopy ("c", "ML_tmp1");
      Ir.Iprint ("c", Ir.Pmat "c");
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "forwarded" 1 stats.P.copies_forwarded;
  match b' with
  | [ Ir.Imatmul ("c", "a", "b"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "matmul should write c directly"

let test_copy_forwarding_in_place_elementwise () =
  (* x = x + 1: in-place element-wise update is safe to forward. *)
  let b =
    [
      Ir.Ielem
        {
          dst = "ML_tmp1";
          model = "x";
          expr = Ir.Ebin (Mlang.Ast.Add, Ir.Emat "x", Ir.Escalar (Ir.Sconst 1.));
        };
      Ir.Icopy ("x", "ML_tmp1");
      Ir.Iprint ("x", Ir.Pmat "x");
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "forwarded" 1 stats.P.copies_forwarded;
  match b' with
  | [ Ir.Ielem { dst = "x"; _ }; Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "element-wise loop should write x in place"

let test_no_forwarding_when_operand_read_by_library_call () =
  (* q = matmul(A, q) is NOT safe in place: the copy must stay. *)
  let b =
    [
      Ir.Imatmul ("ML_tmp1", "A", "q");
      Ir.Icopy ("q", "ML_tmp1");
      Ir.Iprint ("q", Ir.Pmat "q");
    ]
  in
  let b', _ = opt_block b in
  match b' with
  | [ Ir.Imatmul ("ML_tmp1", "A", "q"); Ir.Icopy ("q", "ML_tmp1"); Ir.Iprint _ ]
    ->
      ()
  | _ -> Alcotest.fail "copy into an operand of the call must remain"

let test_no_forwarding_when_temp_reused () =
  let b =
    [
      Ir.Imatmul ("ML_tmp1", "a", "b");
      Ir.Icopy ("c", "ML_tmp1");
      Ir.Iprint ("t", Ir.Pmat "ML_tmp1");
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "not forwarded" 0 stats.P.copies_forwarded;
  Alcotest.(check int) "length unchanged" 3 (List.length b')

let test_broadcast_reuse () =
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "a", [ Ir.Sconst 2.; Ir.Sconst 3. ]);
      Ir.Ibcast ("ML_tmp2", "a", [ Ir.Sconst 2.; Ir.Sconst 3. ]);
      Ir.Iprint ("x", Ir.Pscalar (Ir.Sbin (Mlang.Ast.Add, Ir.Svar "ML_tmp1", Ir.Svar "ML_tmp2")));
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "one reuse" 1 stats.P.broadcasts_reused;
  match b' with
  | [ Ir.Ibcast _; Ir.Iscalar ("ML_tmp2", Ir.Svar "ML_tmp1"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "second broadcast should become a scalar copy"

let test_different_broadcasts_not_merged () =
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "a", [ Ir.Sconst 2.; Ir.Sconst 3. ]);
      Ir.Ibcast ("ML_tmp2", "a", [ Ir.Sconst 3.; Ir.Sconst 2. ]);
      Ir.Iprint ("x", Ir.Pscalar (Ir.Sbin (Mlang.Ast.Add, Ir.Svar "ML_tmp1", Ir.Svar "ML_tmp2")));
    ]
  in
  let _, stats = opt_block b in
  Alcotest.(check int) "no reuse" 0 stats.P.broadcasts_reused

let test_transpose_collapse () =
  let b =
    [
      Ir.Itranspose ("ML_tmp1", "a");
      Ir.Itranspose ("b", "ML_tmp1");
      Ir.Iprint ("b", Ir.Pmat "b");
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "collapsed" 1 stats.P.transposes_collapsed;
  match b' with
  | [ Ir.Icopy ("b", "a"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "a'' should collapse to a copy"

let test_shift_combining () =
  let b =
    [
      Ir.Ishift ("ML_tmp1", "v", Ir.Sconst 2.);
      Ir.Ishift ("w", "ML_tmp1", Ir.Sconst 3.);
      Ir.Iprint ("w", Ir.Pmat "w");
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "combined" 1 stats.P.shifts_combined;
  match b' with
  | [ Ir.Ishift ("w", "v", Ir.Sbin (Mlang.Ast.Add, Ir.Sconst 2., Ir.Sconst 3.)); _ ]
    ->
      ()
  | _ -> Alcotest.fail "shift of shift should combine offsets"

let test_dead_code_removal () =
  let b =
    [
      Ir.Iconstruct { dst = "ML_tmp1"; kind = Ir.Czeros; args = [ Ir.Sconst 4. ] };
      Ir.Iscalar ("x", Ir.Sconst 1.);
      Ir.Iprint ("x", Ir.Pscalar (Ir.Svar "x"));
    ]
  in
  let b', stats = opt_block b in
  Alcotest.(check int) "dead removed" 1 stats.P.dead_removed;
  Alcotest.(check int) "length" 2 (List.length b')

let test_user_variables_never_removed () =
  let b =
    [
      Ir.Iconstruct { dst = "unused_user_var"; kind = Ir.Czeros; args = [ Ir.Sconst 4. ] };
      Ir.Iprint ("x", Ir.Pscalar (Ir.Sconst 1.));
    ]
  in
  let _, stats = opt_block b in
  Alcotest.(check int) "kept" 0 stats.P.dead_removed

let test_effects_never_removed () =
  let b =
    [ Ir.Isetelem ("a", [ Ir.Sconst 1. ], Ir.Sconst 5.); Ir.Ibreak ] in
  let b', _ = opt_block b in
  Alcotest.(check int) "length" 2 (List.length b')

let test_nested_blocks_optimized () =
  let inner =
    [
      Ir.Imatmul ("ML_tmp1", "a", "b");
      Ir.Icopy ("c", "ML_tmp1");
      Ir.Iprint ("c", Ir.Pmat "c");
    ]
  in
  let b = [ Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Sconst 3., inner) ] in
  let _, stats = opt_block b in
  Alcotest.(check int) "forwarded inside loop" 1 stats.P.copies_forwarded

let test_end_to_end_cg_copies () =
  (* On the CG script, all element-wise temporaries forward into the
     target variables. *)
  let src = Apps.Scripts.cg ~n:16 ~iters:3 () in
  let p = Analysis.Resolve.run (Mlang.Parser.parse_program src) in
  let info = Analysis.Infer.program p in
  let raw = Spmd.Lower.lower_program info p in
  let stats = P.fresh_stats () in
  let opt = P.optimize ~stats raw in
  Alcotest.(check bool) "several copies forwarded" true
    (stats.P.copies_forwarded >= 4);
  (* and the optimized program has fewer instructions *)
  let rec count (b : Ir.block) =
    List.fold_left
      (fun acc i ->
        acc + 1
        +
        match i with
        | Ir.Iif (bs, e) ->
            List.fold_left (fun a (_, blk) -> a + count blk) 0 bs + count e
        | Ir.Iwhile (_, blk) | Ir.Ifor (_, _, _, _, blk) -> count blk
        | _ -> 0)
      0 b
  in
  Alcotest.(check bool) "program shrank" true
    (count opt.Ir.p_body < count raw.Ir.p_body)

let suite =
  [
    t "copy forwarding" test_copy_forwarding;
    t "in-place element-wise forwarding" test_copy_forwarding_in_place_elementwise;
    t "no in-place forwarding for library calls"
      test_no_forwarding_when_operand_read_by_library_call;
    t "no forwarding when temp reused" test_no_forwarding_when_temp_reused;
    t "broadcast reuse" test_broadcast_reuse;
    t "different broadcasts kept" test_different_broadcasts_not_merged;
    t "transpose of transpose" test_transpose_collapse;
    t "shift of shift" test_shift_combining;
    t "dead temporary removal" test_dead_code_removal;
    t "user variables never removed" test_user_variables_never_removed;
    t "effectful instructions kept" test_effects_never_removed;
    t "nested blocks" test_nested_blocks_optimized;
    t "CG end to end" test_end_to_end_cg_copies;
  ]
