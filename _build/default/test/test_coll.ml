(* Collective-operation tests: correctness against sequential
   references for every operation, on assorted processor counts,
   plus qcheck properties. *)

module Sim = Mpisim.Sim
module Coll = Mpisim.Coll

let t name f = Alcotest.test_case name `Quick f
let machine = Mpisim.Machine.meiko_cs2
let procs = [ 1; 2; 3; 4; 7; 8; 16 ]

let on_all_p body check =
  List.iter
    (fun p ->
      let results, _ = Sim.run ~machine ~nprocs:p body in
      Array.iteri (fun r v -> check ~p ~r v) results)
    procs

let test_bcast () =
  List.iter
    (fun root ->
      let results, _ =
        Sim.run ~machine ~nprocs:8 (fun rank ->
            let data = if rank = root then [| 3.; 1.; 4. |] else [||] in
            Coll.bcast ~root data)
      in
      Array.iteri
        (fun r v ->
          Testutil.check_array_close
            (Printf.sprintf "bcast root=%d rank=%d" root r)
            [| 3.; 1.; 4. |] v)
        results)
    [ 0; 1; 5; 7 ]

let test_reduce_sum () =
  let results, _ =
    Sim.run ~machine ~nprocs:8 (fun rank ->
        Coll.reduce ~root:0 ~op:Coll.Sum [| float_of_int rank; 1. |])
  in
  Testutil.check_array_close "root value" [| 28.; 8. |] results.(0)

let test_allreduce_ops () =
  let inputs p rank = float_of_int ((rank * 3 mod p) + 1) in
  List.iter
    (fun (op, reference) ->
      on_all_p
        (fun rank ->
          let p = Sim.size () in
          Coll.allreduce_scalar ~op (inputs p rank))
        (fun ~p ~r v ->
          let expected =
            let vals = List.init p (fun rk -> inputs p rk) in
            List.fold_left reference (List.hd vals) (List.tl vals)
          in
          Testutil.check_close (Printf.sprintf "P=%d rank=%d" p r) expected v))
    [
      (Coll.Sum, ( +. ));
      (Coll.Prod, ( *. ));
      (Coll.Min, Float.min);
      (Coll.Max, Float.max);
    ]

let test_allreduce_logical () =
  let results, _ =
    Sim.run ~machine ~nprocs:4 (fun rank ->
        let has = if rank = 2 then 1. else 0. in
        ( Coll.allreduce_scalar ~op:Coll.Lor has,
          Coll.allreduce_scalar ~op:Coll.Land has ))
  in
  Array.iter
    (fun (any_v, all_v) ->
      Testutil.check_close "lor" 1. any_v;
      Testutil.check_close "land" 0. all_v)
    results

let test_gatherv () =
  on_all_p
    (fun rank ->
      let p = Sim.size () in
      let counts = Array.init p (fun i -> i + 1) in
      let local = Array.make counts.(rank) (float_of_int rank) in
      Coll.gatherv ~root:0 ~counts local)
    (fun ~p ~r v ->
      if r = 0 then begin
        let expected =
          Array.concat
            (List.init p (fun i -> Array.make (i + 1) (float_of_int i)))
        in
        Testutil.check_array_close (Printf.sprintf "gatherv P=%d" p) expected v
      end
      else Alcotest.(check int) "non-root empty" 0 (Array.length v))

let test_allgatherv () =
  on_all_p
    (fun rank ->
      let p = Sim.size () in
      let counts = Array.init p (fun i -> ((i * 2) mod 3) + 1) in
      let local =
        Array.init counts.(rank) (fun k -> (float_of_int rank *. 10.) +. float_of_int k)
      in
      Coll.allgatherv ~counts local)
    (fun ~p ~r v ->
      let counts = Array.init p (fun i -> ((i * 2) mod 3) + 1) in
      let expected =
        Array.concat
          (List.init p (fun i ->
               Array.init counts.(i) (fun k ->
                   (float_of_int i *. 10.) +. float_of_int k)))
      in
      Testutil.check_array_close (Printf.sprintf "allgatherv P=%d rank=%d" p r)
        expected v)

let test_allgatherv_empty_blocks () =
  (* More ranks than elements: some blocks are empty. *)
  let results, _ =
    Sim.run ~machine ~nprocs:8 (fun rank ->
        let counts = [| 0; 2; 0; 1; 0; 0; 3; 0 |] in
        let base = [| 10.; 11.; 30.; 60.; 61.; 62. |] in
        let offset = [| 0; 0; 2; 2; 3; 3; 3; 6 |] in
        let local = Array.sub base offset.(rank) counts.(rank) in
        Coll.allgatherv ~counts local)
  in
  Array.iter
    (fun v ->
      Testutil.check_array_close "empty blocks" [| 10.; 11.; 30.; 60.; 61.; 62. |] v)
    results

let test_barrier_synchronizes () =
  let results, _ =
    Sim.run ~machine ~nprocs:4 (fun rank ->
        Sim.compute (float_of_int rank);
        Coll.barrier ();
        Sim.time ())
  in
  (* After the barrier every clock is at least the slowest rank's. *)
  Array.iter
    (fun t -> Alcotest.(check bool) "post-barrier clock" true (t >= 3.0))
    results

let test_bcast_cost_scales_log () =
  let time p =
    let _, r =
      Sim.run ~machine ~nprocs:p (fun _ ->
          ignore (Coll.bcast ~root:0 (Array.make 16 0.)))
    in
    r.Sim.makespan
  in
  (* binomial tree: 16 CPUs need 4 rounds where 2 CPUs need 1, so the
     cost grows like log P, not linearly *)
  Alcotest.(check bool) "log growth" true (time 16 < 4.5 *. time 2);
  Alcotest.(check bool) "far below linear" true (time 16 < 8. *. time 2)

(* qcheck: allreduce sum equals the sequential sum for random vectors
   and processor counts. *)
let allreduce_prop =
  QCheck.Test.make ~count:60 ~name:"allreduce sum == sequential sum"
    QCheck.(pair (int_range 1 16) (list_of_size (Gen.int_range 1 8) (float_range (-100.) 100.)))
    (fun (p, vals) ->
      let arr = Array.of_list vals in
      let results, _ =
        Sim.run ~machine ~nprocs:p (fun rank ->
            let local = Array.map (fun x -> x +. float_of_int rank) arr in
            Coll.allreduce ~op:Coll.Sum local)
      in
      let expected =
        Array.map
          (fun x ->
            let s = ref 0. in
            for rk = 0 to p - 1 do
              s := !s +. x +. float_of_int rk
            done;
            !s)
          arr
      in
      Array.for_all
        (fun got ->
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) got expected)
        results)

let suite =
  [
    t "broadcast (all roots)" test_bcast;
    t "reduce sum" test_reduce_sum;
    t "allreduce arithmetic ops" test_allreduce_ops;
    t "allreduce logical ops" test_allreduce_logical;
    t "gatherv" test_gatherv;
    t "allgatherv" test_allgatherv;
    t "allgatherv with empty blocks" test_allgatherv_empty_blocks;
    t "barrier synchronizes" test_barrier_synchronizes;
    t "broadcast cost is logarithmic" test_bcast_cost_scales_log;
    QCheck_alcotest.to_alcotest allreduce_prop;
  ]
