examples/pagerank.mli:
