examples/quickstart.ml: Analysis Codegen Exec Fmt Hashtbl List Mpisim Otter String
