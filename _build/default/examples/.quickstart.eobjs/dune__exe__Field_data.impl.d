examples/field_data.ml: Analysis Exec Filename Fmt Interp List Mpisim Otter Printf String Sys
