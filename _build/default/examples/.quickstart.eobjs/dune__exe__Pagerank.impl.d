examples/pagerank.ml: Exec Fmt List Mlang Mpisim Otter Printf String
