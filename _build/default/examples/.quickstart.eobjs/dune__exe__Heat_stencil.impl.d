examples/heat_stencil.ml: Exec Fmt List Mpisim Otter Printf
