examples/quickstart.mli:
