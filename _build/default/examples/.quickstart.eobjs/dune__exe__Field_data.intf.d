examples/field_data.mli:
