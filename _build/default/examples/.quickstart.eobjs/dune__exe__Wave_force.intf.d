examples/wave_force.mli:
