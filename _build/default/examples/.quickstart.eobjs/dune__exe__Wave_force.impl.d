examples/wave_force.ml: Exec Fmt List Mpisim Otter Printf
