(* Table 1 of the paper: experimental and commercial MATLAB systems
   targeting parallel computers.  A static catalog, reproduced so that
   `main.exe all` regenerates every numbered artifact. *)

let rows =
  [
    ("MATLAB Toolbox", "University of Rostock, Germany", "Interpreter");
    ("MultiMATLAB", "Cornell University", "Interpreter");
    ("Parallel Toolbox", "Wake Forest University", "Interpreter");
    ("Paramat", "Alpha Data Parallel Systems, UK", "Interpreter");
    ("CONLAB", "University of Umea, Sweden", "Compiles to C/PICL");
    ("FALCON", "University of Illinois", "Compiles to Fortran 90");
    ("Otter", "Oregon State University", "Compiles to C/MPI");
    ("RTExpress", "Integrated Sensors", "Compiles to C/MPI");
  ]

let print () =
  print_endline "Table 1: MATLAB systems targeting parallel computers";
  print_endline (String.make 78 '-');
  Printf.printf "%-18s %-34s %-22s\n" "Name" "Site" "Implementation";
  print_endline (String.make 78 '-');
  List.iter
    (fun (name, site, impl) -> Printf.printf "%-18s %-34s %-22s\n" name site impl)
    rows;
  print_endline (String.make 78 '-');
  print_endline
    "Only FALCON and Otter generate parallel code from pure MATLAB\n\
     (MATLAB without any extensions).\n"
