bench/main.mli:
