bench/main.ml: Analysis Analyze Apps Array Bechamel Benchmark Codegen Exec Hashtbl Interp List Measure Mlang Mpisim Otter Printf Runtime Spmd Staged String Sys Tables Test Time Toolkit
