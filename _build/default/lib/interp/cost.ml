(* Cost models for the two sequential baselines of Figure 2.

   Both baselines execute the same dense evaluator; they differ in what
   each step costs on the modeled 1997 workstation:

   - [Interpreter] stands in for The MathWorks interpreter: every
     evaluated AST node pays an interpretive dispatch, and matrix
     kernels run several times slower than straightforward compiled C
     (dynamic type checks on every operation, temporaries for every
     intermediate, no compile-time knowledge that data is real rather
     than complex -- the paper's section 3 point).

   - [Matcom] stands in for MathTools' MATCOM translator: compiled
     C++ calling a matrix library.  Dispatch is cheap, library kernels
     are slightly better tuned than Otter's straightforward loops, but
     element-wise expressions still materialize a temporary per
     operation because a library-call translator cannot fuse loops --
     which is exactly where Otter wins.

   The constants below are the calibration documented in
   EXPERIMENTS.md; the paper's Figure 2 ratios (Otter always above the
   interpreter, 2-2 split against MATCOM) are reproduced by these
   choices, not by per-benchmark tweaking. *)

type mode = Interpreter | Matcom

type model = { mode : mode; machine : Mpisim.Machine.t }

let make mode machine = { mode; machine }

let flop m = m.machine.Mpisim.Machine.flop_time

(* Cost of evaluating one AST node (dispatch, type tests). *)
let dispatch m =
  match m.mode with
  | Interpreter -> m.machine.Mpisim.Machine.interp_overhead
  | Matcom -> 2. *. flop m

(* Per-element factor for one element-wise pass over matrix data. *)
let elem_factor m =
  match m.mode with Interpreter -> 5.0 | Matcom -> 1.8

(* Factor applied to the nominal flop count of library kernels
   (matrix multiply, reductions, dot products, constructors). *)
let kernel_factor m =
  match m.mode with Interpreter -> 5.5 | Matcom -> 0.9

let charge_dispatch m = Mpisim.Sim.compute (dispatch m)

let charge_elem m ~elems ~ops =
  Mpisim.Sim.compute
    (float_of_int (elems * max 1 ops) *. flop m *. elem_factor m)

let charge_kernel m ~flops =
  Mpisim.Sim.compute (flops *. flop m *. kernel_factor m)
