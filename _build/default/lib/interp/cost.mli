(** Cost models for the sequential baselines of Figure 2: the MathWorks
    interpreter and the MATCOM compiled-C++ translator.  Calibration
    constants are documented in EXPERIMENTS.md. *)

type mode = Interpreter | Matcom

type model = { mode : mode; machine : Mpisim.Machine.t }

val make : mode -> Mpisim.Machine.t -> model

val charge_dispatch : model -> unit
(** One evaluated AST node (dispatch, dynamic type tests). *)

val charge_elem : model -> elems:int -> ops:int -> unit
(** One element-wise pass over matrix data (unfused: one per op). *)

val charge_kernel : model -> flops:float -> unit
(** A library kernel (matmul, reductions, constructors). *)
