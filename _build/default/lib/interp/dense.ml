(* Dense row-major matrices for the sequential reference interpreter. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) f }

let init_rc rows cols f =
  init rows cols (fun g -> f (g / cols) (g mod cols))

let numel m = m.rows * m.cols
let is_vector m = m.rows = 1 || m.cols = 1
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

(* MATLAB linear indexing is column-major. *)
let get_linear m g =
  if m.rows = 1 then m.data.(g)
  else if m.cols = 1 then m.data.(g)
  else get m (g mod m.rows) (g / m.rows)

let set_linear m g v =
  if m.rows = 1 || m.cols = 1 then m.data.(g) <- v
  else set m (g mod m.rows) (g / m.rows) v

let copy m = { m with data = Array.copy m.data }
let map f m = { m with data = Array.map f m.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "nonconformant operands (%dx%d vs %dx%d)" a.rows a.cols
         b.rows b.cols);
  { a with data = Array.map2 f a.data b.data }

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "inner dimensions disagree (%dx%d * %dx%d)" a.rows a.cols
         b.rows b.cols);
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref 0. in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      set c i j !acc
    done
  done;
  c

let transpose m = init_rc m.cols m.rows (fun i j -> get m j i)

let fold f init m = Array.fold_left f init m.data

let col_reduce f init m =
  let r = create 1 m.cols in
  for j = 0 to m.cols - 1 do
    let acc = ref init in
    for i = 0 to m.rows - 1 do
      acc := f !acc (get m i j)
    done;
    set r 0 j !acc
  done;
  r

let circshift m s =
  let n = numel m in
  if n = 0 then copy m
  else begin
    let s = ((s mod n) + n) mod n in
    let r = create m.rows m.cols in
    (* element-block semantics match the distributed run time: shift in
       storage order for vectors *)
    for i = 0 to n - 1 do
      r.data.(i) <- m.data.(((i - s) mod n + n) mod n)
    done;
    r
  end

let trapz ?x y =
  let n = numel y in
  if n < 2 then 0.
  else begin
    let sx i = match x with Some x -> x.data.(i) | None -> float_of_int i in
    let acc = ref 0. in
    for i = 0 to n - 2 do
      acc :=
        !acc +. ((sx (i + 1) -. sx i) *. (y.data.(i) +. y.data.(i + 1)) *. 0.5)
    done;
    !acc
  end

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data
