lib/interp/dense.ml: Array Printf
