lib/interp/cost.mli: Mpisim
