lib/interp/eval.ml: Analysis Array Ast Buffer Cost Dense Filename Float Fmt Fmtutil Hashtbl List Mlang Mpisim Option Printf Runtime Source
