lib/interp/cost.ml: Mpisim
