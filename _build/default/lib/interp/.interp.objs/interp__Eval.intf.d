lib/interp/eval.mli: Cost Dense Mlang Mpisim
