lib/analysis/ty.ml: Fmt
