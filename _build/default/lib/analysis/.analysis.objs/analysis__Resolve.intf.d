lib/analysis/resolve.mli: Mlang
