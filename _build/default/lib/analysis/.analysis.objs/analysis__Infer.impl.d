lib/analysis/infer.ml: Ast Builtins Filename Float Fmt Hashtbl List Mlang Option Source Ssa Ty
