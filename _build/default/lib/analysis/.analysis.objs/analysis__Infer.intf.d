lib/analysis/infer.mli: Hashtbl Mlang Ty
