lib/analysis/ssa_pp.ml: Fmt List Mlang Ssa String
