lib/analysis/builtins.ml: Float Hashtbl Mlang Ty
