lib/analysis/ssa.ml: Ast Hashtbl List Map Mlang Option Printf Source String
