lib/analysis/resolve.ml: Ast Builtins Hashtbl List Mlang Option Source
