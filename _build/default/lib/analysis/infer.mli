(** Type / rank / shape inference (paper pass 3): abstract
    interpretation over the SSA form, to fixpoint across loop phis,
    with compile-time constant propagation feeding shape inference. *)

type result = {
  expr_ty : (int, Ty.t) Hashtbl.t; (** node id -> inferred type *)
  var_ty : (string, Ty.t) Hashtbl.t; (** script variable -> joined type *)
  func_var_ty : (string, (string, Ty.t) Hashtbl.t) Hashtbl.t;
  func_returns : (string, Ty.t list) Hashtbl.t;
}

val program : ?datadir:string -> Mlang.Ast.program -> result
(** Infer a resolved program.  [datadir] locates the sample data files
    that [load] requires at compile time (paper section 3). *)

val expr_type : result -> Mlang.Ast.expr -> Ty.t
val var_type : result -> string -> Ty.t
