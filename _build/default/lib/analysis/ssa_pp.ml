(* Rendering of the SSA form (otterc dump --ssa; debugging aid). *)

let rec stmt ~indent ppf (s : Ssa.sstmt) =
  let pad ppf = Fmt.pf ppf "%s" (String.make indent ' ') in
  match s with
  | Ssa.Sassign (v, rhs, _) -> Fmt.pf ppf "%t%s = %a" pad v Mlang.Pp.expr rhs
  | Ssa.Supdate (v, old, idx, rhs) ->
      Fmt.pf ppf "%t%s = update %s(%a) <- %a" pad v old
        (Fmt.list ~sep:(Fmt.any ", ") Mlang.Pp.expr)
        idx Mlang.Pp.expr rhs
  | Ssa.Smulti (defs, rhs) ->
      Fmt.pf ppf "%t[%a] = %a" pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, _) -> Fmt.string ppf v))
        defs Mlang.Pp.expr rhs
  | Ssa.Sexpr (e, _) -> Fmt.pf ppf "%t%a" pad Mlang.Pp.expr e
  | Ssa.Sif (branches, els, phis) ->
      List.iteri
        (fun i (c, b) ->
          Fmt.pf ppf "%t%s %a@\n%a" pad
            (if i = 0 then "if" else "elseif")
            Mlang.Pp.expr c (block ~indent:(indent + 2)) b)
        branches;
      if els <> [] then
        Fmt.pf ppf "%telse@\n%a" pad (block ~indent:(indent + 2)) els;
      Fmt.pf ppf "%tend" pad;
      List.iter (fun p -> Fmt.pf ppf "@\n%a" (phi ~indent) p) phis
  | Ssa.Swhile (phis, c, b) ->
      List.iter (fun p -> Fmt.pf ppf "%a@\n" (phi ~indent) p) phis;
      Fmt.pf ppf "%twhile %a@\n%a%tend" pad Mlang.Pp.expr c
        (block ~indent:(indent + 2))
        b pad
  | Ssa.Sfor (v, range, phis, b) ->
      Fmt.pf ppf "%tfor %s = %a@\n" pad v Mlang.Pp.expr range;
      List.iter (fun p -> Fmt.pf ppf "%a@\n" (phi ~indent:(indent + 2)) p) phis;
      Fmt.pf ppf "%a%tend" (block ~indent:(indent + 2)) b pad
  | Ssa.Sbreak -> Fmt.pf ppf "%tbreak" pad
  | Ssa.Scontinue -> Fmt.pf ppf "%tcontinue" pad
  | Ssa.Sreturn -> Fmt.pf ppf "%treturn" pad

and phi ~indent ppf (p : Ssa.phi) =
  Fmt.pf ppf "%s%s = phi(%s)"
    (String.make indent ' ')
    p.target
    (String.concat ", " p.args)

and block ~indent ppf (b : Ssa.sblock) =
  List.iter (fun s -> Fmt.pf ppf "%a@\n" (stmt ~indent) s) b

let script_to_string (b : Ssa.sblock) = Fmt.str "%a" (block ~indent:0) b

let func_to_string (f : Ssa.sfunc) =
  Fmt.str "function [%s] = %s(%s)@\n%a end@\n"
    (String.concat ", " f.sf_returns)
    f.sf_name
    (String.concat ", " f.sf_params)
    (block ~indent:2) f.sf_body
