(** Identifier resolution (paper pass 2): decides variable vs function
    for every name, rewrites [Ident]/[Apply] into
    [Varref]/[Index]/[Call], and pulls every reachable M-file function
    into the program (no inlining). *)

val run :
  ?path:(string -> Mlang.Ast.func option) ->
  Mlang.Ast.program ->
  Mlang.Ast.program
(** [path] looks M-file functions up by name (MATLAB's search path).
    Raises {!Mlang.Source.Error} on undefined names. *)
