lib/ir/ir.ml: Analysis List Mlang
