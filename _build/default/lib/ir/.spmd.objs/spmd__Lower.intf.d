lib/ir/lower.mli: Analysis Ir Mlang
