lib/ir/lower.ml: Analysis Ast Float Fmt Hashtbl Ir List Mlang Option Printf Source
