lib/ir/ir_pp.ml: Analysis Float Fmt Ir List Mlang String
