lib/ir/peephole.ml: Analysis Hashtbl Ir List Mlang Option String
