lib/ir/peephole.mli: Ir
