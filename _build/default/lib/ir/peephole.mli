(** Peephole optimization over run-time call sequences (paper pass 6):
    copy forwarding, broadcast reuse, transpose/shift collapsing, dead
    temporary elimination. *)

type stats = {
  mutable copies_forwarded : int;
  mutable broadcasts_reused : int;
  mutable transposes_collapsed : int;
  mutable shifts_combined : int;
  mutable dead_removed : int;
}

val fresh_stats : unit -> stats

val is_temp : Ir.var -> bool
(** Is this a compiler-generated temporary (rewrites only touch those)? *)

val optimize : ?stats:stats -> Ir.prog -> Ir.prog
(** Apply all rewrites to fixpoint; [stats] accumulates what fired. *)
