(** Expression rewriting: typed AST -> SPMD IR (paper passes 4 and 5).

    Scalar expressions stay replicated; communication-bearing
    subexpressions are lifted to statement-level run-time calls;
    element-wise matrix trees fuse into single local loops; element
    stores get owner guards and element reads become broadcasts. *)

exception Unsupported of Mlang.Source.pos * string
(** A construct outside the compiled subset (the interpreter may still
    support it). *)

val lower_program : Analysis.Infer.result -> Mlang.Ast.program -> Ir.prog
