lib/codegen/c_runtime.ml:
