lib/codegen/codegen.ml: Analysis Buffer C_runtime C_runtime_mpi Float Hashtbl List Mlang Printf Spmd String
