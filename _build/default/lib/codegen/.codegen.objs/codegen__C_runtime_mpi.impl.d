lib/codegen/c_runtime_mpi.ml:
