lib/apps/scripts.ml: List Printf
