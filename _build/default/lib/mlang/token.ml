(* Lexical tokens for the MATLAB subset. *)

type t =
  | NUM of float
  | STR of string
  | IDENT of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BACKSLASH
  | CARET
  | DOTSTAR
  | DOTSLASH
  | DOTBACKSLASH
  | DOTCARET
  | QUOTE (* ' as transpose *)
  | DOTQUOTE (* .' *)
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | AMP
  | BAR
  | AMPAMP
  | BARBAR
  | TILDE
  | ASSIGN
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | NEWLINE
  | KIF
  | KELSEIF
  | KELSE
  | KEND
  | KWHILE
  | KFOR
  | KBREAK
  | KCONTINUE
  | KRETURN
  | KFUNCTION
  | EOF

let to_string = function
  | NUM f -> Fmt.str "number %g" f
  | STR s -> Fmt.str "string '%s'" s
  | IDENT s -> Fmt.str "identifier %s" s
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | BACKSLASH -> "'\\'"
  | CARET -> "'^'"
  | DOTSTAR -> "'.*'"
  | DOTSLASH -> "'./'"
  | DOTBACKSLASH -> "'.\\'"
  | DOTCARET -> "'.^'"
  | QUOTE -> "transpose '"
  | DOTQUOTE -> "transpose .'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'~='"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | TILDE -> "'~'"
  | ASSIGN -> "'='"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | NEWLINE -> "newline"
  | KIF -> "'if'"
  | KELSEIF -> "'elseif'"
  | KELSE -> "'else'"
  | KEND -> "'end'"
  | KWHILE -> "'while'"
  | KFOR -> "'for'"
  | KBREAK -> "'break'"
  | KCONTINUE -> "'continue'"
  | KRETURN -> "'return'"
  | KFUNCTION -> "'function'"
  | EOF -> "end of input"
