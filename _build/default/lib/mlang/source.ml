(* Source positions and front-end error reporting. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

exception Error of pos * string

let error pos fmt = Fmt.kstr (fun msg -> raise (Error (pos, msg))) fmt

let describe = function
  | Error (pos, msg) -> Some (Fmt.str "%a: %s" pp_pos pos msg)
  | _ -> None
