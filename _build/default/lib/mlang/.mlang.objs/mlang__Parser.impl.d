lib/mlang/parser.ml: Array Ast Lexer List Source Token
