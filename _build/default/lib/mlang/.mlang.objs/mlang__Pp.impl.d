lib/mlang/pp.ml: Ast Float Fmt List String
