lib/mlang/source.ml: Fmt
