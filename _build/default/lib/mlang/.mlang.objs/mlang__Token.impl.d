lib/mlang/token.ml: Fmt
