lib/mlang/parser.mli: Ast
