lib/mlang/ast.ml: List Option Source
