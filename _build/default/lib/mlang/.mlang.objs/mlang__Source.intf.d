lib/mlang/source.mli: Fmt Format
