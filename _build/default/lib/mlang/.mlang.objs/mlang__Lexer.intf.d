lib/mlang/lexer.mli: Source Token
