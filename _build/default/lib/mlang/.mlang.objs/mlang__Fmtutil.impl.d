lib/mlang/fmtutil.ml: Array Buffer Fmt Printf Scanf String
