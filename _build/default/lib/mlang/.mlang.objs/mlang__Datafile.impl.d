lib/mlang/datafile.ml: Array Float List Printf String
