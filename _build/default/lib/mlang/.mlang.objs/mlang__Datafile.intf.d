lib/mlang/datafile.mli:
