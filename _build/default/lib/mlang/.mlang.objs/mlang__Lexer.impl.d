lib/mlang/lexer.ml: Array Buffer List Source String Token
