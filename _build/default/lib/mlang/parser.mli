(** Recursive-descent parser for the MATLAB subset. *)

(** [parse_program src] parses a whole M-file: script statements followed
    by optional function definitions. Raises {!Source.Error}. *)
val parse_program : string -> Ast.program

(** [parse_expr_string src] parses a single expression (used by tests and
    the REPL-style examples). Raises {!Source.Error}. *)
val parse_expr_string : string -> Ast.expr
