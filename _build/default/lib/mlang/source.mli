(** Source positions and front-end error reporting. *)

type pos = { line : int; col : int }

val no_pos : pos
val pp_pos : pos Fmt.t

(** Raised by the lexer, parser and later passes for user-program errors. *)
exception Error of pos * string

(** [error pos fmt ...] raises {!Error} with a formatted message. *)
val error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [describe exn] renders an {!Error} as ["line:col: message"]. *)
val describe : exn -> string option
