(* Hand-written lexer for the MATLAB subset.

   The two MATLAB-specific difficulties handled here:

   - The quote character is a transpose operator when it follows a value
     (identifier, number, ')', ']', 'end' or another transpose) and a
     string delimiter everywhere else.  We track the previous significant
     token to decide.

   - '...' continues a logical line: everything up to and including the
     next newline is skipped and no NEWLINE token is produced.

   As in the paper, list elements inside brackets must be delimited by
   commas; whitespace is never a separator. *)

type lexed = { tok : Token.t; tpos : Source.pos }

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  mutable prev : Token.t; (* last significant token, for quote rule *)
}

let make src = { src; off = 0; line = 1; bol = 0; prev = Token.NEWLINE }
let pos st = { Source.line = st.line; col = st.off - st.bol + 1 }
let at_end st = st.off >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.off]

let peek2 st =
  if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let advance st = st.off <- st.off + 1

let newline st =
  st.off <- st.off + 1;
  st.line <- st.line + 1;
  st.bol <- st.off

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Does a quote after [tok] mean transpose (rather than a string)? *)
let quote_is_transpose = function
  | Token.IDENT _ | Token.NUM _ | Token.RPAREN | Token.RBRACKET | Token.QUOTE
  | Token.DOTQUOTE | Token.KEND ->
      true
  | _ -> false

let keyword = function
  | "if" -> Some Token.KIF
  | "elseif" -> Some Token.KELSEIF
  | "else" -> Some Token.KELSE
  | "end" -> Some Token.KEND
  | "while" -> Some Token.KWHILE
  | "for" -> Some Token.KFOR
  | "break" -> Some Token.KBREAK
  | "continue" -> Some Token.KCONTINUE
  | "return" -> Some Token.KRETURN
  | "function" -> Some Token.KFUNCTION
  | _ -> None

let lex_number st =
  let start = st.off in
  let p = pos st in
  while is_digit (peek st) do
    advance st
  done;
  if peek st = '.' && is_digit (peek2 st) then begin
    advance st;
    while is_digit (peek st) do
      advance st
    done
  end
  else if peek st = '.' && not (is_alpha (peek2 st)) && peek2 st <> '.' then
    (* trailing "2." but not "2.*" style operators *)
    if peek2 st <> '*' && peek2 st <> '/' && peek2 st <> '\\' && peek2 st <> '^'
       && peek2 st <> '\''
    then advance st;
  (if peek st = 'e' || peek st = 'E' then
     let save = st.off in
     advance st;
     if peek st = '+' || peek st = '-' then advance st;
     if is_digit (peek st) then
       while is_digit (peek st) do
         advance st
       done
     else st.off <- save);
  let text = String.sub st.src start (st.off - start) in
  match float_of_string_opt text with
  | Some f -> { tok = Token.NUM f; tpos = p }
  | None -> Source.error p "invalid number literal %S" text

let lex_string st =
  let p = pos st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end st || peek st = '\n' then
      Source.error p "unterminated string literal"
    else if peek st = '\'' then
      if peek2 st = '\'' then begin
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        loop ()
      end
      else advance st (* closing quote *)
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  { tok = Token.STR (Buffer.contents buf); tpos = p }

let lex_ident st =
  let start = st.off in
  let p = pos st in
  while is_alnum (peek st) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  match keyword text with
  | Some k -> { tok = k; tpos = p }
  | None -> { tok = Token.IDENT text; tpos = p }

let skip_comment st =
  while (not (at_end st)) && peek st <> '\n' do
    advance st
  done

(* %{ ... %} block comments (each marker alone on its line, as MATLAB
   requires); nesting is supported. *)
let skip_block_comment st =
  let p = pos st in
  let depth = ref 1 in
  advance st;
  advance st;
  while !depth > 0 do
    if at_end st then Source.error p "unterminated block comment"
    else if peek st = '%' && peek2 st = '{' then begin
      incr depth;
      advance st;
      advance st
    end
    else if peek st = '%' && peek2 st = '}' then begin
      decr depth;
      advance st;
      advance st
    end
    else if peek st = '\n' then newline st
    else advance st
  done

(* Skip a '...' continuation: everything to and past the newline. *)
let skip_continuation st =
  st.off <- st.off + 3;
  skip_comment st;
  if not (at_end st) then newline st

let rec next st =
  let simple tok =
    let p = pos st in
    advance st;
    { tok; tpos = p }
  in
  let double tok =
    let p = pos st in
    advance st;
    advance st;
    { tok; tpos = p }
  in
  if at_end st then { tok = Token.EOF; tpos = pos st }
  else
    match peek st with
    | ' ' | '\t' | '\r' ->
        advance st;
        next st
    | '%' when peek2 st = '{' ->
        skip_block_comment st;
        next st
    | '%' ->
        skip_comment st;
        next st
    | '\n' ->
        let p = pos st in
        newline st;
        { tok = Token.NEWLINE; tpos = p }
    | '.' when peek2 st = '.' && st.off + 2 < String.length st.src
               && st.src.[st.off + 2] = '.' ->
        skip_continuation st;
        next st
    | c when is_digit c -> lex_number st
    | '.' when is_digit (peek2 st) -> lex_number st
    | c when is_alpha c -> lex_ident st
    | '\'' ->
        if quote_is_transpose st.prev then simple Token.QUOTE
        else lex_string st
    | '+' -> simple Token.PLUS
    | '-' -> simple Token.MINUS
    | '*' -> simple Token.STAR
    | '/' -> simple Token.SLASH
    | '\\' -> simple Token.BACKSLASH
    | '^' -> simple Token.CARET
    | '(' -> simple Token.LPAREN
    | ')' -> simple Token.RPAREN
    | '[' -> simple Token.LBRACKET
    | ']' -> simple Token.RBRACKET
    | ',' -> simple Token.COMMA
    | ';' -> simple Token.SEMI
    | ':' -> simple Token.COLON
    | '.' -> (
        match peek2 st with
        | '*' -> double Token.DOTSTAR
        | '/' -> double Token.DOTSLASH
        | '\\' -> double Token.DOTBACKSLASH
        | '^' -> double Token.DOTCARET
        | '\'' -> double Token.DOTQUOTE
        | _ -> Source.error (pos st) "unexpected '.'")
    | '<' -> if peek2 st = '=' then double Token.LE else simple Token.LT
    | '>' -> if peek2 st = '=' then double Token.GE else simple Token.GT
    | '=' -> if peek2 st = '=' then double Token.EQEQ else simple Token.ASSIGN
    | '~' -> if peek2 st = '=' then double Token.NE else simple Token.TILDE
    | '&' -> if peek2 st = '&' then double Token.AMPAMP else simple Token.AMP
    | '|' -> if peek2 st = '|' then double Token.BARBAR else simple Token.BAR
    | c -> Source.error (pos st) "unexpected character %C" c

(* [tokens src] lexes the whole source to an array of tokens with their
   positions, always terminated by EOF. *)
let tokens src =
  let st = make src in
  let acc = ref [] in
  let rec loop () =
    let lx = next st in
    st.prev <- lx.tok;
    acc := lx :: !acc;
    match lx.tok with Token.EOF -> () | _ -> loop ()
  in
  loop ();
  Array.of_list (List.rev !acc)
