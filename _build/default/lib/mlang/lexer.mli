(** Hand-written lexer for the MATLAB subset. *)

type lexed = { tok : Token.t; tpos : Source.pos }

(** [tokens src] lexes [src] into an array terminated by [Token.EOF].
    Raises {!Source.Error} on malformed input. *)
val tokens : string -> lexed array
