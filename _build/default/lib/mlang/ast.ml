(* Abstract syntax for the MATLAB subset accepted by Otter.

   Every expression and statement node carries a unique integer id; later
   passes (type inference in particular) attach information to nodes
   through these ids, so copies made by the compiler must either preserve
   ids (when the copy denotes the same value, e.g. SSA renaming) or use
   [fresh_id] (when it denotes a new computation). *)

type binop =
  | Add
  | Sub
  | Mul (* matrix multiply *)
  | Div (* matrix right divide *)
  | Ldiv (* matrix left divide *)
  | Pow (* matrix power *)
  | Emul (* .* *)
  | Ediv (* ./ *)
  | Eldiv (* .\ *)
  | Epow (* .^ *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And (* & element-wise *)
  | Or (* | element-wise *)
  | Shortand (* && *)
  | Shortor (* || *)

type unop = Neg | Uplus | Not | Transpose (* .' *) | Ctranspose (* ' *)

type expr = { desc : desc; epos : Source.pos; eid : int }

and desc =
  | Num of float
  | Str of string
  | Ident of string (* unresolved name (variable or function) *)
  | Varref of string (* resolved variable reference *)
  | Colon (* bare ':' used as an index *)
  | End_marker (* 'end' used inside an index expression *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Range of expr * expr option * expr (* start : step? : stop *)
  | Apply of string * expr list (* unresolved name(args) *)
  | Call of string * expr list (* resolved function call *)
  | Index of string * expr list (* resolved variable indexing *)
  | Matrix of expr list list (* [e, e; e, e] rows of elements *)

type lhs = {
  lv_name : string;
  lv_indices : expr list option; (* Some args for a(i,j) = ... *)
  lv_pos : Source.pos;
}

type stmt = { sdesc : sdesc; spos : Source.pos; sid : int }

and sdesc =
  | Assign of lhs * expr * bool (* display result (no ';')? *)
  | Multi_assign of lhs list * expr * bool (* [a, b] = f(...) *)
  | Expr of expr * bool
  | If of (expr * block) list * block (* branches, else-block *)
  | While of expr * block
  | For of string * expr * block
  | Break
  | Continue
  | Return

and block = stmt list

type func = {
  fname : string;
  params : string list;
  returns : string list;
  fbody : block;
}

type program = { script : block; funcs : func list }

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let mk ?(pos = Source.no_pos) desc = { desc; epos = pos; eid = fresh_id () }
let mk_stmt ?(pos = Source.no_pos) sdesc = { sdesc; spos = pos; sid = fresh_id () }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Ldiv -> "\\"
  | Pow -> "^"
  | Emul -> ".*"
  | Ediv -> "./"
  | Eldiv -> ".\\"
  | Epow -> ".^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "~="
  | And -> "&"
  | Or -> "|"
  | Shortand -> "&&"
  | Shortor -> "||"

let unop_name = function
  | Neg -> "-"
  | Uplus -> "+"
  | Not -> "~"
  | Transpose -> ".'"
  | Ctranspose -> "'"

(* [is_elementwise op] holds for operators applied independently to each
   element of their (conformable) operands; these never require
   interprocessor communication on identically distributed matrices. *)
let is_elementwise = function
  | Add | Sub | Emul | Ediv | Eldiv | Epow | Lt | Le | Gt | Ge | Eq | Ne | And
  | Or ->
      true
  | Mul | Div | Ldiv | Pow | Shortand | Shortor -> false

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Ldiv | Pow | Emul | Ediv | Eldiv | Epow | And | Or
  | Shortand | Shortor ->
      false

(* Structural fold over all expressions of a block, used by analyses. *)
let rec iter_exprs_expr f e =
  f e;
  match e.desc with
  | Num _ | Str _ | Ident _ | Varref _ | Colon | End_marker -> ()
  | Binop (_, a, b) ->
      iter_exprs_expr f a;
      iter_exprs_expr f b
  | Unop (_, a) -> iter_exprs_expr f a
  | Range (a, step, b) ->
      iter_exprs_expr f a;
      Option.iter (iter_exprs_expr f) step;
      iter_exprs_expr f b
  | Apply (_, args) | Call (_, args) | Index (_, args) ->
      List.iter (iter_exprs_expr f) args
  | Matrix rows -> List.iter (List.iter (iter_exprs_expr f)) rows

let rec iter_exprs_stmt f s =
  match s.sdesc with
  | Assign (lhs, e, _) ->
      Option.iter (List.iter (iter_exprs_expr f)) lhs.lv_indices;
      iter_exprs_expr f e
  | Multi_assign (lhss, e, _) ->
      List.iter
        (fun l -> Option.iter (List.iter (iter_exprs_expr f)) l.lv_indices)
        lhss;
      iter_exprs_expr f e
  | Expr (e, _) -> iter_exprs_expr f e
  | If (branches, els) ->
      List.iter
        (fun (c, b) ->
          iter_exprs_expr f c;
          List.iter (iter_exprs_stmt f) b)
        branches;
      List.iter (iter_exprs_stmt f) els
  | While (c, b) ->
      iter_exprs_expr f c;
      List.iter (iter_exprs_stmt f) b
  | For (_, e, b) ->
      iter_exprs_expr f e;
      List.iter (iter_exprs_stmt f) b
  | Break | Continue | Return -> ()

let iter_exprs f block = List.iter (iter_exprs_stmt f) block
