(* Whitespace-separated numeric data files, as MATLAB's load() reads
   them: one matrix row per line.  The compiler reads the *sample* file
   at compile time to determine the variable's type, rank and shape
   (paper section 3); the generated program reads the real file at run
   time. *)

exception Bad_data of string

let parse (content : string) : int * int * float array =
  let lines =
    String.split_on_char '\n' content
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%' && l.[0] <> '#')
  in
  let rows =
    List.map
      (fun line ->
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
        |> List.filter (fun tok -> tok <> "")
        |> List.map (fun tok ->
               match float_of_string_opt tok with
               | Some f -> f
               | None -> raise (Bad_data (Printf.sprintf "not a number: %S" tok))))
      lines
  in
  match rows with
  | [] -> (0, 0, [||])
  | first :: _ ->
      let cols = List.length first in
      List.iteri
        (fun i r ->
          if List.length r <> cols then
            raise
              (Bad_data
                 (Printf.sprintf "row %d has %d values, expected %d" (i + 1)
                    (List.length r) cols)))
        rows;
      (List.length rows, cols, Array.of_list (List.concat rows))

let read (path : string) : int * int * float array =
  let ic =
    try open_in path
    with Sys_error msg -> raise (Bad_data msg)
  in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

(* Are all values integral?  Decides the integer-vs-real static type. *)
let all_integer (data : float array) =
  Array.for_all (fun f -> Float.is_integer f) data
