(** Whitespace-separated numeric data files, as MATLAB's load() reads
    them (one matrix row per line; '%'/'#' comment lines skipped). *)

exception Bad_data of string

val parse : string -> int * int * float array
(** [(rows, cols, row-major data)]; raises {!Bad_data} on ragged or
    non-numeric input. *)

val read : string -> int * int * float array
(** Read and {!parse} a file; raises {!Bad_data} if unreadable. *)

val all_integer : float array -> bool
(** Decides the integer-vs-real static base type of loaded data. *)
