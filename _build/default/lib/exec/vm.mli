(** The SPMD virtual machine: executes the compiler's IR on the machine
    simulator — the moral equivalent of running the emitted C linked
    against the MPI run-time library on the modeled hardware. *)

exception Runtime_error of string
(** Any execution failure: undefined variables, bounds, conformability,
    user [error(...)] calls. *)

type value = Vscalar of float | Vmat of Runtime.Dmat.t | Vstr of string

type captured = Cscalar of float | Cmat of int * int * float array
(** A variable's final value, gathered dense (row-major). *)

type outcome = {
  output : string; (** what rank 0 printed *)
  captures : (string * captured) list;
  report : Mpisim.Sim.report;
}

val run :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  outcome
(** Run the program on [nprocs] simulated processors of [machine];
    [capture] names script variables whose final values are returned
    for verification. *)
