lib/exec/vm.ml: Array Buffer Filename Float Fmt Hashtbl Ir List Mlang Mpisim Option Printf Runtime Spmd String
