lib/exec/vm.mli: Mpisim Runtime Spmd
