(** Deterministic discrete-event SPMD simulator.

    Every simulated rank is a delimited computation over effect
    handlers; communication and virtual time are effects.  The
    scheduler resumes runnable ranks lowest-virtual-clock first, so
    shared-channel contention is accounted in simulated-time order. *)

type payload = Floats of float array | Ints of int array

val payload_bytes : payload -> int

(** Operations available inside a simulated rank. *)

val send : dst:int -> tag:int -> payload -> unit
(** Eager, non-blocking; the payload is copied at send time. *)

val recv : src:int -> tag:int -> payload
(** Blocks until a matching message arrives (FIFO per (src, tag)). *)

val recv_floats : src:int -> tag:int -> float array
val recv_ints : src:int -> tag:int -> int array

val compute : float -> unit
(** Advance this rank's virtual clock by the given seconds. *)

val flops : float -> unit
(** Advance the clock by n floating-point operations at the machine's
    modeled rate. *)

val rank : unit -> int
val size : unit -> int
val time : unit -> float

type report = {
  makespan : float; (** max over per-rank clocks *)
  per_rank_clock : float array;
  messages : int;
  bytes : int;
  compute_time : float; (** summed over ranks *)
}

exception Deadlock of string
(** Raised when every live rank is blocked on an empty mailbox; the
    message lists who waits for what. *)

val run : machine:Machine.t -> nprocs:int -> (int -> 'a) -> 'a array * report
(** [run ~machine ~nprocs body] simulates [nprocs] SPMD ranks each
    executing [body rank]; returns per-rank results and the timing
    report.  Deterministic: identical inputs give identical reports. *)
