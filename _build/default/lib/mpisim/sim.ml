(* Discrete-event SPMD simulator built on OCaml effect handlers.

   Every simulated rank is a delimited computation.  Communication and
   time are effects:

   - [Compute t] advances the rank's virtual clock (handled inline);
   - [Send] timestamps a message using the machine's link model --
     including serialization on shared channels -- and delivers it to
     the destination mailbox (non-blocking, eager; handled inline);
   - [Recv] pops a matching message if present (inline), otherwise
     suspends the rank's continuation until a sender delivers one.

   The scheduler resumes runnable ranks lowest-virtual-clock first and
   reports a deadlock (with a per-rank diagnosis) if every live rank is
   suspended on an empty mailbox.  Everything is deterministic: same
   program, same machine, same timings. *)

open Effect
open Effect.Deep

type payload = Floats of float array | Ints of int array

let payload_bytes = function
  | Floats a -> 8 * Array.length a
  | Ints a -> 8 * Array.length a

type _ Effect.t +=
  | E_send : int * int * payload -> unit Effect.t (* dst, tag, data *)
  | E_recv : int * int -> payload Effect.t (* src, tag *)
  | E_compute : float -> unit Effect.t (* seconds *)
  | E_flops : float -> unit Effect.t (* floating-point operations *)
  | E_rank : int Effect.t
  | E_size : int Effect.t
  | E_time : float Effect.t

(* Operations available inside a simulated rank. *)
let send ~dst ~tag data = perform (E_send (dst, tag, data))
let recv ~src ~tag = perform (E_recv (src, tag))
let compute seconds = perform (E_compute seconds)
let flops n = perform (E_flops n)
let rank () = perform E_rank
let size () = perform E_size
let time () = perform E_time

let recv_floats ~src ~tag =
  match recv ~src ~tag with
  | Floats a -> a
  | Ints _ -> failwith "recv_floats: integer payload"

let recv_ints ~src ~tag =
  match recv ~src ~tag with
  | Ints a -> a
  | Floats _ -> failwith "recv_ints: float payload"

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable compute_time : float; (* summed over ranks *)
}

type report = {
  makespan : float; (* max over per-rank clocks *)
  per_rank_clock : float array;
  messages : int;
  bytes : int;
  compute_time : float;
}

exception Deadlock of string

type 'a run_state = {
  machine : Machine.t;
  nprocs : int;
  clocks : float array;
  mailboxes : (int * int * int, (float * payload) Queue.t) Hashtbl.t;
      (* (dst, src, tag) -> queued (arrival, data) *)
  channel_free : (int, float) Hashtbl.t; (* contention channel -> busy-until *)
  stats : stats;
  results : 'a option array;
}

type 'a suspended =
  | Finished
  | Wants_send of int * int * payload * ('a, unit) blocked_k
      (* send to (dst, tag): performed by the scheduler in global
         virtual-time order so that shared-channel contention is
         accounted accurately *)
  | Wants_recv of int * int * ('a, payload) blocked_k
      (* waiting on (src, tag) *)

and ('a, 'b) blocked_k = ('b, 'a suspended) continuation

let mailbox st ~dst ~src ~tag =
  let key = (dst, src, tag) in
  match Hashtbl.find_opt st.mailboxes key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add st.mailboxes key q;
      q

(* Transfer timing: a message leaves when both the sender and (for a
   shared medium) the channel are free; it arrives one latency plus one
   serialization time later. *)
let deliver st ~src ~dst ~tag data =
  let data =
    match data with
    | Floats a -> Floats (Array.copy a)
    | Ints a -> Ints (Array.copy a)
  in
  let link = st.machine.Machine.link src dst in
  let bytes = payload_bytes data in
  let ser = float_of_int bytes /. link.Machine.bandwidth in
  let start =
    match link.Machine.channel with
    | None -> st.clocks.(src)
    | Some ch ->
        let free =
          match Hashtbl.find_opt st.channel_free ch with
          | Some t -> t
          | None -> 0.
        in
        let start = Float.max st.clocks.(src) free in
        Hashtbl.replace st.channel_free ch (start +. ser);
        start
  in
  let arrival = start +. link.Machine.latency +. ser in
  st.clocks.(src) <- st.clocks.(src) +. st.machine.Machine.send_overhead;
  st.stats.messages <- st.stats.messages + 1;
  st.stats.bytes <- st.stats.bytes + bytes;
  Queue.push (arrival, data) (mailbox st ~dst ~src ~tag)

(* Run one rank until it finishes or blocks on an empty mailbox. *)
let handler st my_rank (body : int -> 'a) : 'a suspended =
  match_with
    (fun () ->
      let v = body my_rank in
      st.results.(my_rank) <- Some v)
    ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | E_compute t ->
              Some
                (fun (k : (b, _) continuation) ->
                  st.clocks.(my_rank) <- st.clocks.(my_rank) +. t;
                  st.stats.compute_time <- st.stats.compute_time +. t;
                  continue k ())
          | E_flops n ->
              Some
                (fun k ->
                  let t = n *. st.machine.Machine.flop_time in
                  st.clocks.(my_rank) <- st.clocks.(my_rank) +. t;
                  st.stats.compute_time <- st.stats.compute_time +. t;
                  continue k ())
          | E_rank -> Some (fun k -> continue k my_rank)
          | E_size -> Some (fun k -> continue k st.nprocs)
          | E_time -> Some (fun k -> continue k st.clocks.(my_rank))
          | E_send (dst, tag, data) ->
              Some
                (fun k ->
                  if dst < 0 || dst >= st.nprocs then
                    invalid_arg "send: bad destination rank";
                  Wants_send (dst, tag, data, k))
          | E_recv (src, tag) ->
              Some
                (fun k ->
                  if src < 0 || src >= st.nprocs then
                    invalid_arg "recv: bad source rank";
                  Wants_recv (src, tag, k))
          | _ -> None);
    }

(* [run ~machine ~nprocs body] simulates [nprocs] SPMD ranks each
   executing [body rank]; returns their results and the timing report. *)
let run ~machine ~nprocs (body : int -> 'a) : 'a array * report =
  if nprocs < 1 then invalid_arg "run: nprocs must be positive";
  if nprocs > machine.Machine.max_procs then
    invalid_arg
      (Printf.sprintf "run: %s has at most %d processors" machine.Machine.name
         machine.Machine.max_procs);
  let st =
    {
      machine;
      nprocs;
      clocks = Array.make nprocs 0.;
      mailboxes = Hashtbl.create 64;
      channel_free = Hashtbl.create 8;
      stats = { messages = 0; bytes = 0; compute_time = 0. };
      results = Array.make nprocs None;
    }
  in
  (* Cooperative scheduling in virtual-time order: of all ranks that
     can make progress (initial start, pending send, or a blocked
     receive whose message has arrived), always resume the one with
     the smallest virtual clock.  This keeps shared-channel
     reservations consistent with simulated time. *)
  let states = Array.make nprocs None in
  let pending_start = Array.make nprocs true in
  let can_step r =
    if pending_start.(r) then true
    else
      match states.(r) with
      | None -> false
      | Some Finished -> false
      | Some (Wants_send _) -> true
      | Some (Wants_recv (src, tag, _)) ->
          not (Queue.is_empty (mailbox st ~dst:r ~src ~tag))
  in
  let finished = ref 0 in
  let pick () =
    let best = ref (-1) in
    for r = nprocs - 1 downto 0 do
      if can_step r && (!best < 0 || st.clocks.(r) <= st.clocks.(!best)) then
        best := r
    done;
    !best
  in
  while !finished < nprocs do
    let r = pick () in
    if r < 0 then begin
      let buf = Buffer.create 128 in
      Array.iteri
        (fun rr s ->
          match s with
          | Some (Wants_recv (src, tag, _)) ->
              Buffer.add_string buf
                (Printf.sprintf "  rank %d waits for (src=%d, tag=%d)\n" rr src
                   tag)
          | Some (Wants_send (dst, tag, _, _)) ->
              Buffer.add_string buf
                (Printf.sprintf "  rank %d pending send to (dst=%d, tag=%d)\n"
                   rr dst tag)
          | Some Finished | None -> ())
        states;
      raise (Deadlock (Buffer.contents buf))
    end;
    let next =
      if pending_start.(r) then begin
        pending_start.(r) <- false;
        handler st r body
      end
      else
        match states.(r) with
        | Some (Wants_send (dst, tag, data, k)) ->
            deliver st ~src:r ~dst ~tag data;
            continue k ()
        | Some (Wants_recv (src, tag, k)) ->
            let q = mailbox st ~dst:r ~src ~tag in
            let arrival, data = Queue.pop q in
            st.clocks.(r) <-
              Float.max st.clocks.(r) arrival
              +. st.machine.Machine.recv_overhead;
            continue k data
        | Some Finished | None -> assert false
    in
    states.(r) <- Some next;
    match next with Finished -> incr finished | _ -> ()
  done;
  let results =
    Array.init nprocs (fun r ->
        match st.results.(r) with
        | Some v -> v
        | None -> failwith "rank finished without result")
  in
  let report =
    {
      makespan = Array.fold_left Float.max 0. st.clocks;
      per_rank_clock = Array.copy st.clocks;
      messages = st.stats.messages;
      bytes = st.stats.bytes;
      compute_time = st.stats.compute_time;
    }
  in
  (results, report)
