lib/mpisim/machine.ml: List String
