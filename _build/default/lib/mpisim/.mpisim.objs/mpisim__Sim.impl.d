lib/mpisim/sim.ml: Array Buffer Effect Float Hashtbl Machine Printf Queue
