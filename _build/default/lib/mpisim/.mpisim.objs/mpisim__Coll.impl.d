lib/mpisim/coll.ml: Array Float Sim
