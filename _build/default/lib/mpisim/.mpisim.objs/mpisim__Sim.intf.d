lib/mpisim/sim.mli: Machine
