lib/mpisim/coll.mli:
