(* Block distribution arithmetic (the BLOCK_LOW/BLOCK_HIGH macros of
   data-parallel compilers).  [n] items over [p] ranks: rank [r] owns
   the half-open range [low r, low (r+1)). *)

let low ~rank ~nprocs ~n = rank * n / nprocs
let high ~rank ~nprocs ~n = (rank + 1) * n / nprocs
let size ~rank ~nprocs ~n = high ~rank ~nprocs ~n - low ~rank ~nprocs ~n

(* Owner of global index [i]: the inverse of [low], valid because the
   block sizes differ by at most one. *)
let owner ~nprocs ~n i =
  if n = 0 then 0
  else begin
    let r = (((i + 1) * nprocs) - 1) / n in
    (* Guard against rounding at block boundaries. *)
    let r = ref (min r (nprocs - 1)) in
    while low ~rank:!r ~nprocs ~n > i do
      decr r
    done;
    while high ~rank:!r ~nprocs ~n <= i do
      incr r
    done;
    !r
  end

let counts ~nprocs ~n = Array.init nprocs (fun r -> size ~rank:r ~nprocs ~n)
