lib/runtime/rng.mli:
