lib/runtime/dmat.ml: Array Dist Mlang Mpisim
