lib/runtime/ops.ml: Array Coll Dist Dmat Float List Mpisim Option Printf Sim
