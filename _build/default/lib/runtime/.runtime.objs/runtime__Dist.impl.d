lib/runtime/dist.ml: Array
