lib/runtime/dmat.mli:
