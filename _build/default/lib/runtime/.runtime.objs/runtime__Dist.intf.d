lib/runtime/dist.mli:
