lib/runtime/ops.mli: Dmat
