lib/runtime/rng.ml: Float Int64
