(** Block distribution arithmetic (the BLOCK_LOW/BLOCK_HIGH macros of
    data-parallel compilers): [n] items over [p] ranks in contiguous
    blocks whose sizes differ by at most one. *)

val low : rank:int -> nprocs:int -> n:int -> int
val high : rank:int -> nprocs:int -> n:int -> int
val size : rank:int -> nprocs:int -> n:int -> int

val owner : nprocs:int -> n:int -> int -> int
(** Rank owning global index [i]. *)

val counts : nprocs:int -> n:int -> int array
