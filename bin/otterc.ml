(* otterc: command-line driver for the Otter MATLAB compiler.

     otterc compile prog.m -o outdir     emit SPMD C + run-time library
     otterc run prog.m -p 8 -m meiko     compile and execute on a
                                         simulated parallel machine
     otterc interp prog.m                run the reference interpreter
     otterc dump prog.m --ir|--ast|--types
     otterc bench ...                    (see bench/main.exe)

   M-file functions referenced by the script are looked up as
   <name>.m next to the input file, like a MATLAB path. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let path_of input name =
  let file = Filename.concat (Filename.dirname input) (name ^ ".m") in
  if Sys.file_exists file then begin
    let p = Mlang.Parser.parse_program (read_file file) in
    match p.Mlang.Ast.funcs with
    | f :: _ when f.Mlang.Ast.fname = name -> Some f
    | f :: _ -> Some { f with Mlang.Ast.fname = name }
    | [] -> None
  end
  else None

(* Distinct process exit codes per failure class, so scripts (and the
   chaos harness) can tell a network-induced abort from a program bug:
     0 success          1 run-time error / verify mismatch
     2 usage            3 deadlock
     4 internal error   5 receive timeout
     6 protocol error   7 rank failure (kill, dead peer, retransmission
                          budget)
     8 aborted: recovery enabled but the retry budget ran out *)
let exit_recovery_aborted = 8

let exit_code_of_kind = function
  | Exec.Vm.Ftimeout -> 5
  | Exec.Vm.Fprotocol -> 6
  | Exec.Vm.Fkilled | Exec.Vm.Fpeer | Exec.Vm.Fexhausted -> 7
  | Exec.Vm.Fdeadlock -> 3
  | Exec.Vm.Fruntime -> 1

let handle_errors f =
  try f () with
  | Mlang.Source.Error (pos, msg) ->
      Fmt.epr "error: %a: %s@." Mlang.Source.pp_pos pos msg;
      exit 1
  | Spmd.Lower.Unsupported (pos, msg) ->
      Fmt.epr "error: %a: %s@." Mlang.Source.pp_pos pos msg;
      exit 1
  | Exec.Vm.Runtime_error msg | Interp.Eval.Runtime_error msg ->
      Fmt.epr "run-time error: %s@." msg;
      exit 1
  | Mpisim.Sim.Deadlock msg ->
      Fmt.epr "deadlock: %s@." msg;
      exit 3
  | Mpisim.Sim.Rank_failure { rank; exn } ->
      Fmt.epr "rank %d failed: %s@." rank (Printexc.to_string exn);
      exit (exit_code_of_kind (Exec.Vm.classify_failure exn))
  | Spmd.Pass.Unknown_pass name ->
      Fmt.epr "error: unknown pass '%s' (known: %s)@." name
        (String.concat ", "
           (List.map (fun (p : Spmd.Pass.t) -> p.Spmd.Pass.name)
              Spmd.Pass.registry));
      exit 2
  | Spmd.Validate.Invalid msg ->
      Fmt.epr "internal error: %s@." msg;
      exit 4
  | Invalid_argument msg ->
      (* e.g. a -p above the machine model's processor count *)
      Fmt.epr "error: %s@." msg;
      exit 2

(* The middle-end pipeline options, shared by every subcommand that
   compiles: an optimization level, an explicit pass list overriding
   it, the inter-pass IR validator, and per-pass IR dumps. *)
let opt_arg =
  Arg.(
    value
    & vflag Spmd.Pass.O2
        [
          (Spmd.Pass.O0, info [ "O0" ] ~doc:"No optimization passes.");
          ( Spmd.Pass.O1,
            info [ "O1" ] ~doc:"The peephole pass only (historical default)."
          );
          ( Spmd.Pass.O2,
            info [ "O2" ]
              ~doc:"Peephole, the global dataflow passes, then the \
                    communication optimizer (default)." );
        ])

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"LIST"
        ~doc:
          "Comma-separated middle-end pass list, overriding -O<n>; e.g. \
           $(b,--passes peephole,licm).  Known passes: peephole, licm, gre, \
           copyprop, fold-construct, comm.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate-ir" ]
        ~doc:
          "Run the structural IR validator after lowering and between \
           passes; a violation is a compiler bug and exits with status 4.")

let dump_after_arg =
  Arg.(
    value & opt_all string []
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:"Print the IR after $(docv) runs (repeatable).")

let compile_input input opt passes validate dumps =
  let passes =
    Option.map
      (fun s -> List.filter (fun p -> p <> "") (String.split_on_char ',' s))
      passes
  in
  let dump_after =
    if dumps = [] then None
    else
      Some
        (fun name prog ->
          if List.mem name dumps then
            Fmt.pr "-- after %s --@.%s@." name (Spmd.Ir_pp.prog_to_string prog))
  in
  Otter.compile ~path:(path_of input) ~opt ?passes ~validate ?dump_after
    (read_file input)

(* --- compile ------------------------------------------------------------- *)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.m")

let outdir_arg =
  Arg.(value & opt string "." & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Directory for the generated C files.")

let compile_cmd =
  let run input outdir stats opt passes validate dumps =
    handle_errors (fun () ->
        let c = compile_input input opt passes validate dumps in
        let base = Filename.remove_extension (Filename.basename input) in
        if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
        let write (f, content) =
          let oc = open_out (Filename.concat outdir f) in
          output_string oc content;
          close_out oc
        in
        write (base ^ ".c", Codegen.emit_c ~name:(Filename.basename input) c.Otter.prog);
        List.iter write Codegen.support_files;
        Fmt.pr "wrote %s/%s.c (+ run-time library).@." outdir base;
        Fmt.pr "sequential build: cc -O2 -o %s %s.c otter_rt_common.c \
                otter_rt_seq.c -lm@."
          base base;
        Fmt.pr "MPI build:        mpicc -O2 -o %s %s.c otter_rt_common.c \
                otter_rt_mpi.c -lm@."
          base base;
        if stats then Fmt.pr "@.%s" (Otter.report c))
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print a compilation report (types, IR, per-pass table).")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Translate a MATLAB script to SPMD C + MPI.")
    Term.(const run $ input_arg $ outdir_arg $ stats_arg $ opt_arg
          $ passes_arg $ validate_arg $ dump_after_arg)

(* --- run ------------------------------------------------------------------ *)

let procs_arg =
  Arg.(value & opt int 4 & info [ "p"; "procs" ] ~docv:"N"
         ~doc:"Number of simulated processors.")

let machine_arg =
  Arg.(value & opt string "meiko" & info [ "m"; "machine" ] ~docv:"NAME"
         ~doc:"Machine model: meiko, smp, cluster, workstation, or \
               $(b,fattree) (a parametric fat-tree for large-P scaling; \
               $(b,fattree:RxL) picks radix R and L levels).")

let get_machine name =
  match Mpisim.Machine.by_name name with
  | Some m -> m
  | None ->
      Fmt.epr
        "unknown machine '%s' (try meiko, smp, cluster, workstation, \
         fattree or fattree:RxL)@."
        name;
      exit 2

let engine_arg =
  Arg.(value & opt string (Otter.Config.engine_name Otter.Config.default_engine)
         & info [ "engine" ] ~docv:"NAME"
         ~doc:"Execution engine for simulated runs: $(b,tcode) (the \
               pre-decoded threaded-code fast path, default), $(b,ir) \
               (the direct IR walker), or the sequential baselines \
               $(b,interp) / $(b,matcom).  The two SPMD engines produce \
               bit-identical results; ir is kept as a cross-check and \
               fallback.")

let get_engine name =
  match Otter.Config.engine_of_string name with
  | Some e -> e
  | None ->
      Fmt.epr "unknown engine '%s' (try tcode, ir, interp or matcom)@." name;
      exit 2

let faults_arg =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Inject faults, e.g. $(b,drop=0.01,dup=0.005,seed=42).  Keys: \
               drop, dup, delay, stall, degrade, kill (probabilities), seed, \
               detect (failure-detector timeout in seconds), kill_window, \
               kill_rank, kill_time (permanent rank deaths).")

let ckpt_arg =
  Arg.(value & opt float 0. & info [ "ckpt-interval" ] ~docv:"SECS"
         ~doc:"Take a coordinated checkpoint of every rank roughly every \
               $(docv) simulated seconds (0 = never; recovery then replays \
               from program start).")

let max_recoveries_arg =
  Arg.(value & opt int 0 & info [ "max-recoveries" ] ~docv:"N"
         ~doc:"On a recoverable failure (rank kill, timeout, exhausted \
               retransmissions), roll back to the last consistent snapshot \
               and replay, at most $(docv) times, before aborting.")

let chaos_arg =
  Arg.(value & flag & info [ "chaos" ]
         ~doc:"Chaos mode: enable checkpoint/rollback recovery with \
               defaults (--ckpt-interval 0.05, --max-recoveries 3 unless \
               given) and print a recovery summary.")

let reliable_arg =
  Arg.(value & flag & info [ "reliable" ]
         ~doc:"Route messages through the reliable ack/retry layer so \
               injected faults are masked.")

(* Attach the requested fault model (and reliable layer) to the machine. *)
let apply_faults machine spec reliable =
  match spec with
  | None ->
      if reliable then Mpisim.Machine.with_faults ~reliable machine
      else machine
  | Some s -> (
      match Mpisim.Machine.faults_of_spec s with
      | Ok f -> Mpisim.Machine.with_faults ~reliable ~faults:f machine
      | Error msg ->
          Fmt.epr "bad --faults spec: %s@." msg;
          exit 2)

(* Oversubscription flags: P virtual ranks on C simulated CPUs. *)
let cpus_arg =
  Arg.(value & opt int 0 & info [ "cpus" ] ~docv:"C"
         ~doc:"Oversubscribe: place the -p virtual ranks on $(docv) \
               physical CPUs (0 = one CPU per rank, the classical model).  \
               Compute serializes per CPU; message semantics stay \
               per-rank.")

let map_arg =
  Arg.(value & opt string "block" & info [ "map" ] ~docv:"POLICY"
         ~doc:"Rank-to-CPU mapping policy under --cpus: $(b,block) \
               (contiguous slabs, default), $(b,cyclic) (round-robin), or \
               $(b,random) (seeded by --map-seed).")

let map_seed_arg =
  Arg.(value & opt int 0 & info [ "map-seed" ] ~docv:"S"
         ~doc:"Seed for $(b,--map random) (same seed, same placement).")

let dist_arg =
  Arg.(value & opt string "block" & info [ "dist" ] ~docv:"LAYOUT"
         ~doc:"Matrix distribution: $(b,block) (the paper's layout, \
               default), $(b,cyclic) or $(b,cyclic:B) (block-cyclic with \
               block size B, default 1), or $(b,grid:PRxPC) (2-D block on \
               a PR x PC process grid; PR*PC must equal -p).")

let get_layout dist nprocs =
  match Otter.Config.layout_of_string dist with
  | Some (Runtime.Dmat.Lgrid (pr, pc)) when pr * pc <> nprocs ->
      Fmt.epr "--dist grid:%dx%d needs %d ranks, but -p is %d@." pr pc
        (pr * pc) nprocs;
      exit 2
  | Some l -> l
  | None ->
      Fmt.epr
        "bad --dist '%s' (try block, cyclic, cyclic:B or grid:PRxPC)@." dist;
      exit 2

(* Attach an oversubscription placement to the machine. *)
let apply_placement machine ~nprocs:_ ~cpus ~map ~map_seed =
  if cpus = 0 then machine
  else
    match Mpisim.Machine.mapping_of_string ~seed:map_seed map with
    | Some m -> Mpisim.Machine.with_placement ~cpus ~map:m machine
    | None ->
        Fmt.epr "unknown --map policy '%s' (try block, cyclic or random)@."
          map;
        exit 2

(* One run configuration from the shared command-line flags: this is
   the only place otterc turns its knobs into an [Otter.Config.t]. *)
let config_of_flags ?capture ?tol ~nprocs ~machine ~engine ~faults ~reliable
    ~chaos ~ckpt_interval ~max_recoveries ?(cpus = 0) ?(map = "block")
    ?(map_seed = 0) ?(dist = "block") () =
  let machine = apply_faults (get_machine machine) faults reliable in
  let machine = apply_placement machine ~nprocs ~cpus ~map ~map_seed in
  let layout = get_layout dist nprocs in
  Otter.config ~machine ~nprocs ~engine:(get_engine engine) ?capture ?tol
    ~chaos ~ckpt_interval ~max_recoveries ~layout ()

let print_fault_counters (r : Mpisim.Sim.report) =
  Fmt.pr
    "[faults] %d dropped, %d duplicated, %d delayed, %d stalls, %d rank \
     kills; %d retries, %d acks@."
    r.Mpisim.Sim.drops r.dups r.delayed r.stalls r.kills r.retries r.acks

(* On any faulted abort, say what the network did to the run before it
   died — the counters make "who ate my message" debuggable. *)
let print_abort ~gave_up ~recoveries failed_rank operation detail
    (report : Mpisim.Sim.report) =
  if gave_up then
    Fmt.epr "aborted: recovery budget exhausted after %d rollback%s@."
      recoveries
      (if recoveries = 1 then "" else "s")
  else if recoveries > 0 then
    Fmt.epr "aborted after %d rollback%s@." recoveries
      (if recoveries = 1 then "" else "s");
  Fmt.epr "partial run: rank %d failed during %s: %s@." failed_rank operation
    detail;
  Fmt.epr
    "[faults] %d dropped, %d duplicated, %d delayed, %d stalls, %d rank \
     kills; %d retries, %d acks@."
    report.Mpisim.Sim.drops report.dups report.delayed report.stalls
    report.kills report.retries report.acks

let run_cmd =
  let run input nprocs machine engine timing stats faults reliable chaos
      ckpt_interval max_recoveries cpus map map_seed dist opt passes validate
      dumps =
    handle_errors (fun () ->
        let c = compile_input input opt passes validate dumps in
        let cfg =
          config_of_flags ~nprocs ~machine ~engine ~faults ~reliable ~chaos
            ~ckpt_interval ~max_recoveries ~cpus ~map ~map_seed ~dist ()
        in
        let machine = cfg.Otter.Config.machine in
        let recovering =
          cfg.Otter.Config.ckpt_interval > 0.
          || cfg.Otter.Config.max_recoveries > 0
        in
        let rc = Otter.run cfg c in
        let recoveries = rc.Exec.Vm.r_attempts - 1
        and gave_up = rc.Exec.Vm.r_gave_up in
        match rc.Exec.Vm.r_result with
        | Exec.Vm.Partial { failed_rank; operation; detail; kind; report } ->
            print_abort ~gave_up ~recoveries failed_rank operation detail
              report;
            exit
              (if gave_up then exit_recovery_aborted else exit_code_of_kind kind)
        | Exec.Vm.Complete o ->
            print_string o.Exec.Vm.output;
            let r = o.Exec.Vm.report in
            if recovering && (chaos || recoveries > 0) then
              Fmt.pr "[recovery] completed after %d rollback%s@." recoveries
                (if recoveries = 1 then "" else "s");
            if timing && not stats then begin
              Fmt.pr
                "[%s, %d CPUs] modeled time %.6f s, %d messages, %d bytes@."
                machine.Mpisim.Machine.name nprocs r.Mpisim.Sim.makespan
                r.messages r.bytes;
              if machine.Mpisim.Machine.faults <> None then
                print_fault_counters r
            end;
            if stats then begin
              Fmt.pr "-- simulator report [%s, %d CPUs] --@."
                machine.Mpisim.Machine.name nprocs;
              Fmt.pr "  simulated time  %.6f s@." r.Mpisim.Sim.makespan;
              Fmt.pr "  compute time    %.6f s (summed over ranks)@."
                r.Mpisim.Sim.compute_time;
              Fmt.pr "  messages        %d@." r.Mpisim.Sim.messages;
              Fmt.pr "  bytes           %d@." r.Mpisim.Sim.bytes;
              print_fault_counters r
            end)
  in
  let timing_arg =
    Arg.(value & flag & info [ "t"; "timing" ]
           ~doc:"Print the modeled execution time and message counts.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the full simulator report after execution: simulated \
                 and compute time, message count, bytes and fault counters.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile and execute on a simulated parallel machine.")
    Term.(const run $ input_arg $ procs_arg $ machine_arg $ engine_arg
          $ timing_arg $ stats_arg $ faults_arg $ reliable_arg $ chaos_arg
          $ ckpt_arg $ max_recoveries_arg $ cpus_arg $ map_arg $ map_seed_arg
          $ dist_arg $ opt_arg $ passes_arg $ validate_arg $ dump_after_arg)

(* --- interp --------------------------------------------------------------- *)

let interp_cmd =
  let run input matcom timing =
    handle_errors (fun () ->
        (* front end only: the interpreter accepts a superset of what
           the back end compiles (e.g. matrix growth) *)
        let fe = Otter.compile_frontend ~path:(path_of input) (read_file input) in
        let engine =
          if matcom then Otter.Config.Ematcom else Otter.Config.Einterp
        in
        let cfg =
          Otter.config ~machine:Mpisim.Machine.workstation ~nprocs:1 ~engine ()
        in
        let o = Otter.interpret cfg fe in
        print_string o.Interp.Eval.output;
        if timing then
          Fmt.pr "[%s] modeled time %.6f s@."
            (if matcom then "MATCOM model" else "interpreter model")
            o.Interp.Eval.time)
  in
  let matcom_arg =
    Arg.(value & flag & info [ "matcom" ]
           ~doc:"Use the MATCOM (compiled sequential) cost model.")
  in
  let timing_arg =
    Arg.(value & flag & info [ "t"; "timing" ] ~doc:"Print the modeled time.")
  in
  Cmd.v
    (Cmd.info "interp" ~doc:"Run the reference interpreter (the oracle).")
    Term.(const run $ input_arg $ matcom_arg $ timing_arg)

(* --- dump ----------------------------------------------------------------- *)

let dump_cmd =
  let run input what opt passes validate dumps =
    handle_errors (fun () ->
        let c = compile_input input opt passes validate dumps in
        match what with
        | `Ir -> print_string (Otter.dump_ir c)
        | `Ssa -> print_string (Otter.dump_ssa c)
        | `Ast -> print_string (Mlang.Pp.annotated_program_to_string c.Otter.ast)
        | `Types ->
            let vars =
              Hashtbl.fold
                (fun v t acc -> (v, t) :: acc)
                c.Otter.info.Analysis.Infer.var_ty []
            in
            List.iter
              (fun (v, t) -> Fmt.pr "%-16s : %a@." v Analysis.Ty.pp t)
              (List.sort compare vars)
        | `C -> print_string (Codegen.emit_c c.Otter.prog))
  in
  let what_arg =
    Arg.(value
         & vflag `Ir
             [
               (`Ir, info [ "ir" ] ~doc:"Dump the SPMD IR (default).");
               (`Ssa, info [ "ssa" ] ~doc:"Dump the SSA form (pass 3).");
               (`Ast,
                 info [ "ast" ]
                   ~doc:
                     "Dump the annotated AST: one node per line with the \
                      inferred type/shape and any frame lift.");
               (`Types, info [ "types" ] ~doc:"Dump inferred variable types.");
               (`C, info [ "c" ] ~doc:"Dump the generated C.");
             ])
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Show intermediate compiler results.")
    Term.(const run $ input_arg $ what_arg $ opt_arg $ passes_arg
          $ validate_arg $ dump_after_arg)

(* --- verify ---------------------------------------------------------------- *)

let verify_cmd =
  let run input nprocs machine engine vars tol faults reliable chaos
      ckpt_interval max_recoveries cpus map map_seed dist opt passes validate
      dumps =
    handle_errors (fun () ->
        let c = compile_input input opt passes validate dumps in
        let cfg =
          config_of_flags ~capture:vars ~tol ~nprocs ~machine ~engine ~faults
            ~reliable ~chaos ~ckpt_interval ~max_recoveries ~cpus ~map
            ~map_seed ~dist ()
        in
        let max_recoveries = cfg.Otter.Config.max_recoveries in
        let n_compared =
          match vars with
          | [] -> Hashtbl.length c.Otter.info.Analysis.Infer.var_ty
          | vs -> List.length vs
        in
        match Otter.verify cfg c with
        | Otter.Verified ->
            Fmt.pr "verified: %d variables agree between the interpreter and \
                    the %d-CPU compiled run.@."
              n_compared nprocs
        | Otter.Mismatched mm ->
            List.iter
              (fun m ->
                Fmt.pr "MISMATCH %s: %s@." m.Otter.variable m.Otter.detail)
              mm;
            exit 1
        | Otter.Aborted { failed_rank; operation; detail; kind; report;
                          recoveries } ->
            let gave_up =
              max_recoveries > 0 && Exec.Vm.recoverable kind
              && recoveries >= max_recoveries
            in
            Fmt.epr "ABORTED%s: rank %d failed during %s: %s@."
              (if gave_up then
                 Printf.sprintf " (recovery budget exhausted after %d \
                                 rollbacks)" recoveries
               else "")
              failed_rank operation detail;
            Fmt.epr
              "[faults] %d dropped, %d duplicated, %d delayed, %d stalls, %d \
               rank kills; %d retries, %d acks@."
              report.Mpisim.Sim.drops report.dups report.delayed report.stalls
              report.kills report.retries report.acks;
            exit
              (if gave_up then exit_recovery_aborted else exit_code_of_kind kind))
  in
  let vars_arg =
    Arg.(value & opt_all string [] & info [ "var" ] ~docv:"NAME"
           ~doc:"Variable to compare (repeatable; default: all).")
  in
  let tol_arg =
    Arg.(value & opt float 1e-9 & info [ "tol" ] ~docv:"EPS"
           ~doc:"Relative tolerance absorbing reduction-order rounding \
                 (the application suite uses 1e-6).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check compiled results against the reference interpreter.")
    Term.(const run $ input_arg $ procs_arg $ machine_arg $ engine_arg
          $ vars_arg $ tol_arg $ faults_arg $ reliable_arg $ chaos_arg
          $ ckpt_arg $ max_recoveries_arg $ cpus_arg $ map_arg $ map_seed_arg
          $ dist_arg $ opt_arg $ passes_arg $ validate_arg $ dump_after_arg)

(* --- serve ----------------------------------------------------------------- *)

(* Multi-tenant mode: space-share one simulated machine's ranks across
   many concurrent scripts through the job scheduler, and report who
   ran where with what traffic — MatlabMPI's "many users, one machine"
   picture as a measured number. *)
let serve_cmd =
  let run inputs nprocs machine engine jobs job_procs opt passes validate
      dumps =
    handle_errors (fun () ->
        if inputs = [] then begin
          Fmt.epr "serve: need at least one script@.";
          exit 2
        end;
        let machine = get_machine machine in
        (* serve is the scale-out mode: a -p beyond the paper's machine
           grows the model rather than erroring. *)
        let machine =
          if nprocs > machine.Mpisim.Machine.max_procs then
            Mpisim.Machine.with_procs nprocs machine
          else machine
        in
        let engine = get_engine engine in
        let compiled =
          List.map
            (fun input ->
              ( Filename.remove_extension (Filename.basename input),
                compile_input input opt passes validate dumps ))
            inputs
        in
        let scripts = Array.of_list compiled in
        let njobs = if jobs > 0 then jobs else Array.length scripts in
        let job i =
          let name, c = scripts.(i mod Array.length scripts) in
          {
            Otter.Sched.j_name = Printf.sprintf "%s[%d]" name i;
            j_procs = min job_procs nprocs;
            j_run =
              (fun ~nprocs ->
                let cfg =
                  Otter.config ~machine ~nprocs ~engine ~seed:(42 + i) ()
                in
                let o = Otter.outcome_exn (Otter.run cfg c) in
                o.Exec.State.report);
          }
        in
        let sched =
          Otter.Sched.run ~machine ~procs:nprocs
            (List.init njobs job)
        in
        Fmt.pr "serving %d jobs on %s (%d ranks space-shared, %s engine)@."
          njobs machine.Mpisim.Machine.name nprocs
          (Otter.Config.engine_name engine);
        print_string (Otter.Sched.table sched))
  in
  let inputs_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"PROG.m")
  in
  let serve_procs_arg =
    Arg.(value & opt int 16 & info [ "p"; "procs" ] ~docv:"N"
           ~doc:"Rank slots to space-share.  Beyond the machine model's \
                 processor count, the model is scaled out ($(docv) of the \
                 same CPUs and links).")
  in
  let jobs_arg =
    Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N"
           ~doc:"Total job instances to run, cycling over the given scripts \
                 round-robin (default: one per script).")
  in
  let job_procs_arg =
    Arg.(value & opt int 4 & info [ "job-procs" ] ~docv:"K"
           ~doc:"Ranks each job requests (clamped to the machine).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Space-share a simulated machine across concurrent scripts \
             (multi-tenant scheduler).")
    Term.(const run $ inputs_arg $ serve_procs_arg $ machine_arg $ engine_arg
          $ jobs_arg $ job_procs_arg $ opt_arg $ passes_arg $ validate_arg
          $ dump_after_arg)

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run cases seed corpus no_cc rank3 =
    let use_cc = not no_cc in
    let corpus_failures, corpus_total =
      match corpus with
      | None -> ([], 0)
      | Some dir ->
          if not (Sys.file_exists dir && Sys.is_directory dir) then begin
            Fmt.epr "no such corpus directory: %s@." dir;
            exit 2
          end;
          Fuzz.replay ~use_cc dir
    in
    if corpus_total > 0 then
      if corpus_failures = [] then
        Fmt.pr "corpus: %d/%d scripts replayed clean.@." corpus_total
          corpus_total
      else
        List.iter
          (fun f ->
            Fmt.pr "CORPUS FAILURE %s: %s@." f.Fuzz.file f.Fuzz.reason)
          corpus_failures;
    let random_failed =
      if cases <= 0 then false
      else
        match Fuzz.run_random ~use_cc ~rank3 ~cases ~seed () with
        | Fuzz.All_passed s ->
            Fmt.pr
              "fuzz: %d cases (seed %d): %d compared across all back ends, \
               %d discarded, 0 counterexamples.@."
              s.Fuzz.cases seed s.Fuzz.passed s.Fuzz.discarded;
            false
        | Fuzz.Counterexample { script; detail; shrink_steps } ->
            Fmt.pr
              "COUNTEREXAMPLE (seed %d, minimized in %d shrink steps)@.  \
               %s@.--- script ---@.%s--------------@."
              seed shrink_steps detail script;
            true
    in
    if corpus_failures <> [] || random_failed then exit 1
  in
  let cases_arg =
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N"
           ~doc:"Number of random scripts to generate and check.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Random seed (same seed, same scripts).")
  in
  let corpus_arg =
    Arg.(value & opt (some dir) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Also replay every .m script in $(docv) through the oracle.")
  in
  let no_cc_arg =
    Arg.(value & flag & info [ "no-cc" ]
           ~doc:"Skip the compiled-C leg even when a C compiler is found.")
  in
  let rank3_arg =
    Arg.(value & flag & info [ "rank3" ]
           ~doc:
             "Enable the rank-N tensor grammar: rank-3 constructors, \
              frame-broadcast operators, leading-axis sections, element \
              reads/writes and full reductions.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random scripts through every back end.")
    Term.(const run $ cases_arg $ seed_arg $ corpus_arg $ no_cc_arg $ rank3_arg)

let main_cmd =
  let doc = "Otter: a parallel MATLAB compiler (OCaml reproduction)" in
  Cmd.group (Cmd.info "otterc" ~version:"1.0" ~doc)
    [ compile_cmd; run_cmd; interp_cmd; dump_cmd; verify_cmd; serve_cmd;
      fuzz_cmd ]

let () = exit (Cmd.eval main_cmd)
