% diag both ways: a vector builds an n x n diagonal matrix, a matrix
% extracts its main diagonal as a column.
v = 1:3;
d = diag(v);
c = sum(d);
t = diag(d);
fprintf('%.17g\n', sum(c));
fprintf('%.17g\n', sum(t));
disp(d);
disp(t);
