% A copy fact established inside a loop body must die at the loop exit:
% copy propagation used to leak "s aliases i" out of this zero-trip
% loop, rewriting the print into a read of the never-defined loop
% variable.
s = 0;
for i = 1:0
  s = i;
end
fprintf('%.17g\n', s);
