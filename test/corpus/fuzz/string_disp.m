% Char row-vector variables flow through assignment, copy and disp in
% every back end.
s = 'hello world';
disp(s);
t = s;
disp(t);
x = 2;
fprintf('%.17g\n', x);
