% MPI_Comm_rank: output and captures come from rank 0, whose rank
% matches the one-rank interpreter's, so the oracle sees 0 on every
% configuration.
r = MPI_Comm_rank();
fprintf('%.17g\n', r);
