% MPI_Bcast of a scalar and of a matrix: every rank ends up holding
% rank 0's value, so the result is rank-invariant by construction.
s = MPI_Bcast(0, 2.5);
m = eye(3, 3);
c = MPI_Bcast(0, m);
fprintf('%.17g\n', s);
fprintf('%.17g\n', sum(sum(c)));
