% A for loop whose range is empty must execute zero times and leave
% its loop variable undefined in every back end (the verifier treats
% missing-in-both as agreement, not as a mismatch).
s = 0;
for i = 1:0
  s = s + 1;
end
fprintf('%.17g\n', s);
