% NaN ordering semantics: sort puts NaNs last; min/max skip NaNs
% (MATLAB).  0/0 manufactures the NaN.
v = [1, 0] ./ [1, 0];
w = sort(v);
a = max(v);
b = min(v);
fprintf('%.17g\n', w(1));
fprintf('%.17g\n', a);
fprintf('%.17g\n', b);
