% Empty operands are dropped from matrix literals, and an all-empty
% row contributes no rows to the grid (MATLAB concatenation).
e = [];
v = [e, 1, 2, e];
m = [v; v];
w = [m; e];
fprintf('%.17g\n', sum(v));
fprintf('%.17g\n', sum(sum(m)));
fprintf('%.17g\n', sum(sum(w)));
disp(w);
