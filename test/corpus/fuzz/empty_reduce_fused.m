% Zero-element operands through the fused-allreduce path: sum of an
% empty vector is 0, mean is 0/0 = NaN, norm and dot are 0.  The -O2
% comm pass fuses adjacent reductions into one Ireduce_fused, which
% must agree with the interpreter's unfused evaluation.
e = zeros(1, 0);
s = sum(e);
m = mean(e);
n = norm(e);
d = dot(e, e);
fprintf('%.17g\n', s);
fprintf('%.17g\n', m);
fprintf('%.17g\n', n);
fprintf('%.17g\n', d);
