% A 2-element vector through the fused reduction path at P up to 8:
% most ranks own no elements and contribute bare identities to the
% single fused Sum allreduce; results must match the interpreter and
% the unfused engines bit for bit.
v = [3, 4];
s = sum(v);
m = mean(v);
n = norm(v);
d = dot(v, v);
fprintf('%.17g\n', s);
fprintf('%.17g\n', m);
fprintf('%.17g\n', n);
fprintf('%.17g\n', d);
w = [1e308, 1e308];
fprintf('%.17g\n', sum(w));
fprintf('%.17g\n', norm(w));
