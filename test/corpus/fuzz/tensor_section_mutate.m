% Rank-3 grammar anchor: leading-axis sections stay rank-preserving and
% element writes land on the owning rank, inside and outside a loop.
t1 = zeros(3, 2, 3);
t1(1, 2, 3) = 7;
t1(3, 1, 1) = -2;
for i1 = 1:2
  t1(2, 1, 2) = i1 + t1(2, 1, 2);
end
t2 = t1(2:3, :, :);
t3 = t2 ./ 4;
s1 = sum(t2);
s2 = min(t3);
fprintf('%.17g %.17g\n', s1, s2);
fprintf('%.17g %.17g\n', t2(1, 1, 2), t3(2, 1, 1));
