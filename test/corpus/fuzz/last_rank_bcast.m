% Batched broadcast where every requested element lives in the last
% row: at P = rows all slots come from the highest rank, so rank 0
% assembles the batch purely from a remote chunk.  Also reads the
% same element twice in one batch (duplicate coordinates).
a = [1, 2; 3, 4; 5, 6; 7, 8];
p = a(4, 1);
q = a(4, 2);
r = a(4, 1);
fprintf('%.17g\n', p + q + r);
