% MPI_Send: the self-send round trip every rank can run at any P --
% the message queue between a rank and itself is plain FIFO storage.
r = MPI_Comm_rank();
MPI_Send(r, 101, 41);
x = MPI_Recv(r, 101);
x = x + 1;
fprintf('%.17g\n', x);
