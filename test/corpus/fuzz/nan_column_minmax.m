% An all-NaN column through column-wise then full min/max at P where
% high ranks own no rows: the NaN fold identity of an empty local
% part must be dropped by the combine, while a genuinely all-NaN
% column stays NaN (MATLAB: min/max ignore NaN unless all are NaN).
a = [1, 0/0, 3; 4, 0/0, 6];
lo = min(min(a));
hi = max(max(a));
cs = sum(sum(a));
fprintf('%.17g\n', lo);
fprintf('%.17g\n', hi);
fprintf('%.17g\n', cs);
v = [0/0, 0/0];
fprintf('%.17g\n', min(v));
fprintf('%.17g\n', max(v));
