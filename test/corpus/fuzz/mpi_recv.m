% MPI_Recv of a matrix: a matrix literal is distributed and cannot be
% sent directly -- broadcast it into a per-rank replica first, then the
% self-send round trip works, and reductions over the received replica
% stay local.
r = MPI_Comm_rank();
a = [1, 2, 3; 4, 5, 6];
a = MPI_Bcast(0, a);
MPI_Send(r, 102, a);
b = MPI_Recv(r, 102);
fprintf('%.17g\n', sum(sum(b)));
