% MPI_Comm_size is the one rank-invariant value that still differs
% between the interpreter (P=1) and the parallel runs, so the raw size
% must not survive to the capture comparison: fold it into a
% P-invariant predicate and zero it out.
p = MPI_Comm_size();
ok = 0;
if p >= 1
  ok = 1;
end
p = 0;
fprintf('%.17g\n', ok);
