% Element broadcasts (Ibcast / batched Ibcast_batch) from a matrix
% shorter than the machine: at P > rows, high ranks own no elements
% and must still participate in the batch plan without contributing
% slots.  Reductions over the same short matrix exercise empty local
% parts through the fused path (identity partials that the combine
% drops for min/max).
a = [1, 2, 3; 4, 5, 6];
x = a(1, 2);
y = a(2, 3);
z = a(2, 1);
fprintf('%.17g\n', x + y + z);
s = sum(sum(a));
lo = min(min(a));
hi = max(max(a));
fprintf('%.17g\n', s);
fprintf('%.17g\n', lo);
fprintf('%.17g\n', hi);
