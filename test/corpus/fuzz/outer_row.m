% (1 x 1) * (1 x n) takes the outer-product path but the result is a
% row vector, which is column-distributed: the fill must go through
% global indices (a rank once indexed out of bounds here).
u = [3];
v = [1, 2, 4];
w = u * v;
disp(w);
fprintf('%.17g\n', sum(w));
