% NaN propagation through fused reductions must be identical at P=1
% and P>1: only sum-combining slots fuse, and NaN + x = NaN in every
% association order, so the fused batch, the unfused allreduce, and
% the sequential interpreter all yield NaN for sum/mean/norm/dot while
% min/max skip NaNs (MATLAB semantics).
v = ones(1, 8);
v(3) = 0 / 0;
s = sum(v);
m = mean(v);
n = norm(v);
d = dot(v, v);
lo = min(v);
hi = max(v);
fprintf('%.17g\n', s);
fprintf('%.17g\n', m);
fprintf('%.17g\n', n);
fprintf('%.17g\n', d);
fprintf('%.17g\n', lo);
fprintf('%.17g\n', hi);
