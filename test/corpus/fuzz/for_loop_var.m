% After a for loop the loop variable holds the last iterated value,
% not one step past it (the C back end once emitted a loop that
% overshot by one step).
for i = 1:2
end
fprintf('%.17g\n', i);
for j = 1:2:9
end
fprintf('%.17g\n', j);
