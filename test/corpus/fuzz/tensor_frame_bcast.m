% Rank-3 grammar anchor: frame broadcast of a cell matrix and a scalar
% over the distributed leading axis, then full reductions.
t1 = ones(3, 2, 2);
m1 = [1, 2; 3, 5];
t2 = t1 .* m1;
t3 = t2 + 0.5;
t4 = t3 - t1;
s1 = sum(t4);
s2 = max(t2);
s3 = mean(t3);
fprintf('%.17g\n', s1);
fprintf('%.17g\n', s2);
fprintf('%.17g\n', s3);
fprintf('%.17g\n', t4(2, 1, 2));
fprintf('%.17g\n', t3(3, 2, 1));
