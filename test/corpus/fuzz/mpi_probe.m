% MPI_Probe on a tag nothing has been sent on yet, and again once the
% receive has drained it: both are deterministically 0 at any P.  (A
% probe between send and receive is NOT in the corpus: the simulator
% charges delivery latency, so an in-flight message probes 0 there but
% 1 in the zero-latency interpreter.)
r = MPI_Comm_rank();
q0 = MPI_Probe(r, 103);
MPI_Send(r, 103, 7);
x = MPI_Recv(r, 103);
q1 = MPI_Probe(r, 103);
fprintf('%.17g\n', q0);
fprintf('%.17g\n', x);
fprintf('%.17g\n', q1);
