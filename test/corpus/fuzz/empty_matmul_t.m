% A' * B with a zero-size common dimension: the ML_matmul_t kernel's
% per-rank partial product is all zeros and the allreduce must still
% produce the full m x k zero matrix, matching MATLAB's empty-operand
% matmul.  Also covers empty-times-empty yielding 0x0.
a = zeros(0, 3);
b = zeros(0, 2);
c = a' * b;
fprintf('%.17g\n', sum(sum(c)));
disp(c);
t = zeros(3, 0);
u = t * zeros(0, 2);
fprintf('%.17g\n', sum(sum(u)));
