% expect: compile-error matrix growth is not supported
% Indexed assignment past the end grows the matrix in the interpreter
% (MATLAB), but the compiler rejects it with a clear diagnostic: grown
% shapes would invalidate the static distribution of every later use.
v = [1, 2];
v(4) = 7;
fprintf('%.17g\n', sum(v));
