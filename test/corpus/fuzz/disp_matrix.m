% disp of a matrix must print every row: the VM's disp path used to
% strip the first line of the formatted text (assuming a "name =" header
% that disp never emits), silently dropping row one of every matrix.
A = [1, 0; 0, 2];
disp(A);
v = 1:3;
disp(v);
fprintf('%.17g\n', sum(sum(A)));
