% minimized from chaos sweep: rand inside a loop straddling a
% checkpoint boundary; the replay must resume the RNG stream exactly.
s = 0;
for i = 1:12
  a = rand(12, 12);
  s = s + sum(sum(a * a'));
end
fprintf('s=%.17g\n', s);
