% minimized from chaos sweep: a while loop whose bounds are recomputed
% each iteration; the checkpoint must snapshot the loop counter from
% the environment, not frozen bounds.
x = 1;
k = 0;
while x < 1000
  x = x * 1.5 + sum(rand(8, 1));
  k = k + 1;
end
fprintf('x=%.17g k=%d\n', x, k);
