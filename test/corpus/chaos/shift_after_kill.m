% minimized from chaos sweep: a circshift (neighbor exchange) issued
% right after the victim's death time exercises the failure detector
% on a point-to-point receive rather than a collective.
v = rand(1, 4000);
w = circshift(v, 1) + circshift(v, -1);
m = max(w);
fprintf('m=%.17g\n', m);
