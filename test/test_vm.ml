(* End-to-end compiled-execution tests: whole MATLAB scripts compiled
   and run on the simulated machine, with results checked against
   hand-computed values and across processor counts. *)

open Testutil

let t name f = Alcotest.test_case name `Quick f

let value ?(nprocs = 4) src name = parallel_value ~nprocs src name

let test_scalar_arithmetic () =
  check_close "arith" 14. (value "x = 2 + 3 * 4;" "x");
  check_close "precedence with paren" 20. (value "x = (2 + 3) * 4;" "x");
  check_close "power" 512. (value "x = 2 ^ 9;" "x");
  check_close "unary minus power" (-4.) (value "x = -2 ^ 2;" "x");
  check_close "division" 2.5 (value "x = 5 / 2;" "x");
  check_close "left divide" 2.5 (value "x = 2 \\ 5;" "x");
  check_close "mod" 2. (value "x = mod(12, 5);" "x");
  check_close "negative mod follows matlab" 3. (value "x = mod(-2, 5);" "x");
  check_close "comparison" 1. (value "x = 3 < 4;" "x");
  check_close "logic" 1. (value "x = (3 > 2) && (2 > 1);" "x");
  check_close "not" 0. (value "x = ~5;" "x")

let test_control_flow () =
  check_close "if then" 1. (value "c = 3;\nif c > 2\n x = 1;\nelse\n x = 2;\nend" "x");
  check_close "elseif chain" 20.
    (value "c = 2;\nif c == 1\n x = 10;\nelseif c == 2\n x = 20;\nelse\n x = 30;\nend" "x");
  check_close "for accumulation" 55. (value "s = 0;\nfor i = 1:10\n s = s + i;\nend" "s");
  check_close "for with step" 25. (value "s = 0;\nfor i = 1:2:9\n s = s + i;\nend" "s");
  check_close "for downward" 15. (value "s = 0;\nfor i = 5:-1:1\n s = s + i;\nend" "s");
  check_close "while" 7. (value "x = 100;\nn = 0;\nwhile x > 1\n x = x / 2;\n n = n + 1;\nend" "n");
  check_close "break" 4.
    (value "s = 0;\nfor i = 1:10\n if i > 4\n  break\n end\n s = i;\nend" "s");
  check_close "continue" 25.
    (value "s = 0;\nfor i = 1:10\n if mod(i, 2) == 0\n  continue\n end\n s = s + i;\nend" "s");
  check_close "zero-trip loop body never runs" 0.
    (value "s = 0;\nfor i = 1:0\n s = s + 1;\nend" "s");
  check_close "loop variable holds last iterated value" 9.
    (value "for i = 1:2:9\nend\nx = i;" "x")

let test_vector_ops () =
  check_close "sum of range" 5050. (value "v = 1:100;\ns = sum(v);" "s");
  check_close "dot via transpose" 385.
    (value "v = (1:10)';\ns = v' * v;" "s");
  check_close "norm" 5. (value "v = [3; 4];\ns = norm(v);" "s");
  check_close "elementwise chain" 30.
    (value "a = ones(10, 1);\nb = 2 .* a + a;\ns = sum(b);" "s");
  check_close "min reduction" 1. (value "v = 5:-1:1;\nm = min(v);" "m");
  check_close "max elementwise" 9.
    (value "a = 3; b = 9;\nm = max(a, b);" "m");
  check_close "mean" 3. (value "v = 1:5;\nm = mean(v);" "m");
  check_close "prod" 120. (value "v = 1:5;\np = prod(v);" "p");
  check_close "any" 1. (value "v = zeros(3, 1);\nv(2) = 7;\na = any(v);" "a");
  check_close "all" 0. (value "v = ones(3, 1);\nv(2) = 0;\na = all(v);" "a")

let test_matrix_ops () =
  check_close "matmul trace"
    4.
    (value "A = eye(4);\nB = A * A;\ns = sum(sum(B));" "s");
  check_close "transpose identity" 0.
    (value "A = rand(6, 4);\nD = A - (A')';\ns = sum(sum(abs(D)));" "s");
  check_close "outer sum" 225.
    (value "u = (1:5)';\nA = u * u';\ns = sum(sum(A));" "s");
  check_close "eye diag" 3. (value "A = eye(3);\ns = sum(sum(A));" "s");
  check_close "column sums" 32.
    (value "A = ones(4, 3);\nA(1, 1) = 11;\nc = sum(A);\ns = c(1) * 2 - c(2) + c(3) * 2;" "s")

let test_indexing () =
  check_close "element read" 42.
    (value "A = zeros(3, 3);\nA(2, 3) = 42;\nx = A(2, 3);" "x");
  check_close "linear read col-major" 4.
    (value "A = zeros(2, 2);\nA(2, 2) = 9;\nA(1, 2) = 4;\nx = A(3);" "x");
  check_close "end in index" 10. (value "v = (1:10)';\nx = v(end);" "x");
  check_close "end arithmetic" 9. (value "v = (1:10)';\nx = v(end - 1);" "x");
  check_close "range section sum" 9. (value "v = (1:10)';\nw = v(2:4);\ns = sum(w);" "s");
  check_close "colon row" 15.
    (value "A = ones(3, 5);\nr = A(2, :);\ns = sum(r) * 3;" "s");
  check_close "index vector section" 14.
    (value "v = (1:10)';\nidx = [2, 5, 7];\nw = v(idx);\ns = sum(w);" "s");
  check_close "guarded write visible everywhere" 7.
    (value ~nprocs:8 "v = zeros(16, 1);\nv(11) = 7;\nx = v(11);" "x")

let test_shifts_and_trapz () =
  check_close "circshift wraps" 10.
    (value "v = (1:10)';\nw = circshift(v, 3);\nx = w(3);" "x");
  check_close "negative shift" 2.
    (value "v = (1:10)';\nw = circshift(v, -1);\nx = w(1);" "x");
  check_close ~tol:1e-4 "trapz parabola" (1. /. 3.)
    (value "x = linspace(0, 1, 101);\ny = x .* x;\ns = trapz(x, y);" "s")

let test_user_functions () =
  check_close "simple function" 49.
    (value "y = sq(7);\nfunction r = sq(x)\n  r = x * x;\nend" "y");
  check_close "matrix argument by value" 0.
    (value
       "A = ones(4, 4);\ns1 = sum(sum(A));\nB = clobber(A);\ns2 = sum(sum(A));\n\
        d = s2 - s1;\n\
        function M = clobber(M)\n  M(1, 1) = 999;\nend"
       "d");
  check_close "multiple returns" 5.
    (value
       "[a, b] = mm(2, 3);\nx = a + b;\nfunction [p, q] = mm(u, v)\n  p = u * v / 3;\n  q = u + 1;\nend"
       "x");
  check_close "early return" 1.
    (value
       "y = f(5);\nfunction r = f(x)\n  r = 1;\n  if x > 3\n    return\n  end\n  r = 2;\nend"
       "y");
  check_close "function calling function" 16.
    (value
       "y = quad(2);\nfunction r = quad(x)\n  r = sq(sq(x));\nend\nfunction r = sq(x)\n  r = x * x;\nend"
       "y")

let test_matrix_conditions_and_vector_for () =
  check_close "matrix condition all-true" 1.
    (value "A = ones(2, 2);\nif A\n x = 1;\nelse\n x = 0;\nend" "x");
  check_close "matrix condition with zero" 0.
    (value "A = ones(2, 2);\nA(1, 2) = 0;\nif A\n x = 1;\nelse\n x = 0;\nend" "x");
  check_close "for over column vector" 15.
    (value "v = (1:5)';\ns = 0;\nfor x = v\n s = s + x;\nend" "s");
  check_close "for over row literal" 6.
    (value "s = 0;\nfor x = [1, 2, 3]\n s = s + x;\nend" "s");
  check_close "for-over-vector across P" 120.
    (value ~nprocs:8 "v = (1:15)';\ns = 0;\nfor x = v\n s = s + x;\nend" "s")

let test_concatenation () =
  check_close "vertical concat" 10.
    (value "u = [1; 2];\nv = [3; 4];\nw = [u; v];\ns = sum(w);" "s");
  check_close "horizontal concat" 21.
    (value "a = [1, 2, 3];\nb = [4, 5, 6];\nM = [a; b];\ns = sum(sum(M));" "s");
  check_close "block matrix" 4.
    (value "A = eye(2);\nM = [A, A; A, A];\ns = sum(sum(M)) - numel(M) / 2 + 4;\n" "s");
  check_close "mixed scalar and vector" 6.
    (value "v = [2, 3];\nw = [1, v];\ns = sum(w);" "s");
  check_close "concat across P" 10.
    (value ~nprocs:8 "u = (1:8)';\nv = (9:12)';\nw = [u; v];\ns = w(10) + numel(w) - 12 + 0;" "s")

let test_section_assignment () =
  check_close "range fill" 100.
    (value "v = zeros(10, 1);\nv(1:5) = 20;\ns = sum(v);" "s");
  check_close "vector store" 6.
    (value "v = zeros(5, 1);\nv(2:4) = [1; 2; 3];\ns = sum(v);" "s");
  check_close "colon row store" 9.
    (value "A = zeros(3, 3);\nA(2, :) = 3;\ns = sum(sum(A));" "s");
  check_close "submatrix store" 8.
    (value "A = zeros(4, 4);\nA(1:2, 1:2) = 2;\ns = sum(sum(A));" "s");
  check_close "index-vector store" 5.
    (value "v = zeros(6, 1);\nidx = [2, 5];\nv(idx) = 2.5;\ns = sum(v);" "s");
  check_close "store visible on all ranks" 55.
    (value ~nprocs:8 "v = zeros(16, 1);\nv(4:13) = (1:10)';\ns = sum(v);" "s");
  (match run_parallel ~nprocs:2 "v = zeros(4, 1);\nv(1:3) = [1; 2];" with
  | exception Exec.Vm.Runtime_error _ -> ()
  | _ -> Alcotest.fail "size mismatch must error")

let test_scans_and_argreductions () =
  check_close "cumsum last is sum" 5050.
    (value "v = (1:100)';\nc = cumsum(v);\nx = c(end);" "x");
  check_close "cumsum interior" 6.
    (value "v = (1:5)';\nc = cumsum(v);\nx = c(3);" "x");
  check_close "cumprod" 24.
    (value "v = (1:4)';\nc = cumprod(v);\nx = c(end);" "x");
  check_close "cumsum across P" 20100.
    (value ~nprocs:16 "v = (1:200)';\nc = cumsum(v);\nx = c(end);" "x");
  check_close "argmin value" (-3.)
    (value "v = [5; -3; 8; -3];\n[m, i] = min(v);\nx = m;" "x");
  check_close "argmin index is first" 2.
    (value "v = [5; -3; 8; -3];\n[m, i] = min(v);\nx = i;" "x");
  check_close "argmax across P" 17.
    (value ~nprocs:8
       "v = zeros(32, 1);\nv(17) = 9;\n[m, i] = max(v);\nx = i;" "x")

let test_sort_and_repmat () =
  check_close "sorted first" 1.
    (value "v = [3; 1; 4; 1; 5];\ns = sort(v);\nx = s(1);" "x");
  check_close "sorted last" 5.
    (value "v = [3; 1; 4; 1; 5];\ns = sort(v);\nx = s(end);" "x");
  check_close "sort stable on ties" 2.
    (value "v = [3; 1; 4; 1; 5];\n[s, i] = sort(v);\nx = i(1);" "x");
  check_close "permutation applies" 0.
    (value
       "v = rand(20, 1);\n[s, i] = sort(v);\nw = v(i);\nd = sum(abs(w - s));"
       "d");
  check_close "sort across P" 0.
    (value ~nprocs:8
       "v = rand(33, 1);\ns = sort(v);\nbad = sum(s(2:end) < s(1:end-1));"
       "bad");
  check_close "repmat tiles" 24.
    (value "A = [1, 2; 3, 0];\nB = repmat(A, 2, 2);\nx = sum(sum(B));" "x");
  check_close "repmat scalar-ish row" 12.
    (value "v = [1, 2, 3];\nB = repmat(v, 2, 1);\nx = sum(sum(B));" "x")

let test_multi_assign_size () =
  check_close "rows and cols" 34.
    (value "A = ones(3, 4);\n[r, c] = size(A);\nx = r * 10 + c;" "x")

let test_output_formatting () =
  let out, _ = run_parallel ~nprocs:4 "fprintf('n=%d x=%.2f\\n', 5, 1.5);" in
  Alcotest.(check string) "fprintf" "n=5 x=1.50\n" out;
  let out, _ = run_parallel ~nprocs:4 "x = 3.5" in
  Alcotest.(check string) "display" "x = 3.5\n" out;
  let out, _ = run_parallel ~nprocs:2 "disp('hello')" in
  Alcotest.(check string) "disp string" "hello\n" out;
  let out, _ = run_parallel ~nprocs:2 "disp(42)" in
  Alcotest.(check string) "disp scalar" "42\n" out

let test_output_printed_once () =
  (* Only rank 0 prints: output must not repeat per rank. *)
  let out, _ = run_parallel ~nprocs:8 "fprintf('once\\n');" in
  Alcotest.(check string) "printed once" "once\n" out

let test_error_reporting () =
  let expect src =
    match run_parallel ~nprocs:2 src with
    | exception Exec.Vm.Runtime_error _ -> ()
    | _ -> Alcotest.failf "expected runtime error on %S" src
  in
  expect "error('boom')";
  expect "v = ones(4, 1);\nx = v(9);";
  expect "A = ones(2, 3);\nB = ones(3, 2);\nC = A + B;"

let test_results_identical_across_p () =
  let src =
    "n = 24;\nA = rand(n, n);\nA = A + A' + n * eye(n);\nv = rand(n, 1);\n\
     w = A * v;\ns = sum(w);\nd = v' * w;\nm = max(w);"
  in
  let reference = ref [] in
  List.iter
    (fun p ->
      let _, caps = run_parallel ~nprocs:p ~capture:[ "s"; "d"; "m" ] src in
      let vals = List.map (fun n -> vm_scalar caps n) [ "s"; "d"; "m" ] in
      if p = 1 then reference := vals
      else
        List.iter2
          (fun a b -> check_close ~tol:1e-9 (Printf.sprintf "P=%d" p) a b)
          !reference vals)
    [ 1; 2; 3; 4; 8; 16 ]

let test_rand_sequence_shared () =
  (* two rand calls give different data; sequence is deterministic *)
  let src = "a = rand(4, 1);\nb = rand(4, 1);\nd = sum(abs(a - b));\ns = sum(a);" in
  let _, caps1 = run_parallel ~nprocs:2 ~capture:[ "d"; "s" ] src in
  let _, caps2 = run_parallel ~nprocs:4 ~capture:[ "d"; "s" ] src in
  Alcotest.(check bool) "different draws" true (vm_scalar caps1 "d" > 1e-6);
  check_close "deterministic across P" (vm_scalar caps1 "s") (vm_scalar caps2 "s")

let suite =
  [
    t "scalar arithmetic" test_scalar_arithmetic;
    t "control flow" test_control_flow;
    t "vector operations" test_vector_ops;
    t "matrix operations" test_matrix_ops;
    t "indexing" test_indexing;
    t "shifts and trapz" test_shifts_and_trapz;
    t "user functions" test_user_functions;
    t "matrix conditions and vector for" test_matrix_conditions_and_vector_for;
    t "concatenation" test_concatenation;
    t "section assignment" test_section_assignment;
    t "scans and arg-reductions" test_scans_and_argreductions;
    t "sort and repmat" test_sort_and_repmat;
    t "multi-assign size" test_multi_assign_size;
    t "output formatting" test_output_formatting;
    t "output printed once" test_output_printed_once;
    t "runtime errors" test_error_reporting;
    t "identical results across P" test_results_identical_across_p;
    t "rand sequencing" test_rand_sequence_shared;
  ]
