(* Parser unit tests: precedence, statements, functions, matrix
   literals, index syntax, and a qcheck round-trip property
   (pretty-print then reparse yields the same tree). *)

open Mlang

let t name f = Alcotest.test_case name `Quick f

let parse_e src = Parser.parse_expr_string src
let show_e e = Pp.expr_to_string e

let check_parse msg src expected =
  Alcotest.(check string) msg expected (show_e (parse_e src))

let test_precedence () =
  check_parse "mul over add" "1 + 2 * 3" "1 + 2 * 3";
  check_parse "paren preserved" "(1 + 2) * 3" "(1 + 2) * 3";
  check_parse "power over unary minus" "-2 ^ 2" "-2 ^ 2";
  (* -2^2 parses as -(2^2) *)
  Alcotest.(check bool) "neg of pow" true
    (match (parse_e "-2^2").node with
    | Ast.Unop (Ast.Neg, { node = Ast.Binop (Ast.Pow, _, _); _ }) -> true
    | _ -> false);
  (* 2^-3 allows signed exponent *)
  Alcotest.(check bool) "signed exponent" true
    (match (parse_e "2^-3").node with
    | Ast.Binop (Ast.Pow, _, { node = Ast.Unop (Ast.Neg, _); _ }) -> true
    | _ -> false);
  (* power is left associative *)
  Alcotest.(check bool) "pow left assoc" true
    (match (parse_e "2^3^2").node with
    | Ast.Binop (Ast.Pow, { node = Ast.Binop (Ast.Pow, _, _); _ }, _) -> true
    | _ -> false);
  (* colon binds looser than + *)
  Alcotest.(check bool) "range of sums" true
    (match (parse_e "1:n-1").node with
    | Ast.Range (_, None, { node = Ast.Binop (Ast.Sub, _, _); _ }) -> true
    | _ -> false);
  (* comparison looser than colon *)
  Alcotest.(check bool) "cmp of range" true
    (match (parse_e "x < 1:3").node with
    | Ast.Binop (Ast.Lt, _, { node = Ast.Range _; _ }) -> true
    | _ -> false);
  (* && looser than || ? no: || loosest *)
  Alcotest.(check bool) "or of and" true
    (match (parse_e "a && b || c").node with
    | Ast.Binop (Ast.Shortor, { node = Ast.Binop (Ast.Shortand, _, _); _ }, _) ->
        true
    | _ -> false)

let test_transpose () =
  Alcotest.(check bool) "postfix after index" true
    (match (parse_e "a(i)'").node with
    | Ast.Unop (Ast.Ctranspose, { node = Ast.Apply ("a", _); _ }) -> true
    | _ -> false);
  Alcotest.(check bool) "dot-quote is Transpose" true
    (match (parse_e "a.'").node with
    | Ast.Unop (Ast.Transpose, _) -> true
    | _ -> false);
  (* r'*r is (r') * r *)
  Alcotest.(check bool) "transpose then mul" true
    (match (parse_e "r'*r").node with
    | Ast.Binop (Ast.Mul, { node = Ast.Unop (Ast.Ctranspose, _); _ }, _) -> true
    | _ -> false)

let test_ranges () =
  Alcotest.(check bool) "two-part" true
    (match (parse_e "1:10").node with
    | Ast.Range (_, None, _) -> true
    | _ -> false);
  Alcotest.(check bool) "three-part middle is step" true
    (match (parse_e "0:0.1:1").node with
    | Ast.Range
        ( { node = Ast.Num 0.; _ },
          Some { node = Ast.Num 0.1; _ },
          { node = Ast.Num 1.; _ } ) ->
        true
    | _ -> false)

let test_matrix_literals () =
  Alcotest.(check bool) "2x2" true
    (match (parse_e "[1, 2; 3, 4]").node with
    | Ast.Matrix [ [ _; _ ]; [ _; _ ] ] -> true
    | _ -> false);
  Alcotest.(check bool) "empty" true
    (match (parse_e "[]").node with Ast.Matrix [] -> true | _ -> false);
  (* newline acts as a row separator inside brackets *)
  Alcotest.(check bool) "newline rows" true
    (match (parse_e "[1, 2\n3, 4]").node with
    | Ast.Matrix [ [ _; _ ]; [ _; _ ] ] -> true
    | _ -> false)

let test_index_syntax () =
  Alcotest.(check bool) "colon argument" true
    (match (parse_e "a(:, 2)").node with
    | Ast.Apply ("a", [ { node = Ast.Colon; _ }; _ ]) -> true
    | _ -> false);
  Alcotest.(check bool) "end arithmetic" true
    (match (parse_e "a(end - 1)").node with
    | Ast.Apply ("a", [ { node = Ast.Binop (Ast.Sub, { node = Ast.End_marker; _ }, _); _ } ])
      ->
        true
    | _ -> false);
  Alcotest.(check bool) "range with end" true
    (match (parse_e "a(2:end)").node with
    | Ast.Apply ("a", [ { node = Ast.Range (_, None, { node = Ast.End_marker; _ }); _ } ])
      ->
        true
    | _ -> false);
  Alcotest.(check bool) "empty call" true
    (match (parse_e "f()").node with Ast.Apply ("f", []) -> true | _ -> false)

let parse_p src = Parser.parse_program src

let test_statements () =
  let p = parse_p "x = 1;\ny = 2\n" in
  (match p.script with
  | [ { sdesc = Ast.Assign (_, _, false); _ }; { sdesc = Ast.Assign (_, _, true); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "semicolon display flags");
  let p = parse_p "if a\n x = 1;\nelseif b\n x = 2;\nelse\n x = 3;\nend" in
  (match p.script with
  | [ { sdesc = Ast.If ([ _; _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "if/elseif/else shape");
  let p = parse_p "while x > 0\n x = x - 1;\nend" in
  (match p.script with
  | [ { sdesc = Ast.While (_, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "while shape");
  let p = parse_p "for i = 1:3\n s = s + i;\nend" in
  (match p.script with
  | [ { sdesc = Ast.For ("i", { node = Ast.Range _; _ }, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "for shape");
  let p = parse_p "a(2, 3) = 7;" in
  (match p.script with
  | [ { sdesc = Ast.Assign ({ lv_name = "a"; lv_indices = Some [ _; _ ]; _ }, _, false); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "indexed assignment");
  let p = parse_p "[r, c] = size(A);" in
  (match p.script with
  | [ { sdesc = Ast.Multi_assign ([ _; _ ], { node = Ast.Apply ("size", _); _ }, false); _ } ]
    ->
      ()
  | _ -> Alcotest.fail "multi assignment");
  (* [1, 2] as an expression statement must NOT parse as multi-assign *)
  let p = parse_p "[1, 2];" in
  (match p.script with
  | [ { sdesc = Ast.Expr ({ node = Ast.Matrix _; _ }, false); _ } ] -> ()
  | _ -> Alcotest.fail "matrix literal statement")

let test_functions () =
  let p = parse_p "x = f(2);\nfunction y = f(a)\n  y = a * 2;\nend" in
  (match p.funcs with
  | [ { fname = "f"; params = [ "a" ]; returns = [ "y" ]; _ } ] -> ()
  | _ -> Alcotest.fail "single function");
  let p =
    parse_p
      "function [a, b] = two()\n  a = 1;\n  b = 2;\nend\nfunction z = g(p, q)\n\
       \  z = p + q;\nend"
  in
  (match p.funcs with
  | [
   { fname = "two"; params = []; returns = [ "a"; "b" ]; _ };
   { fname = "g"; params = [ "p"; "q" ]; returns = [ "z" ]; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "two functions");
  (* function without trailing end, terminated by next function *)
  let p = parse_p "function y = f(a)\ny = a;\nfunction z = g(b)\nz = b;\n" in
  Alcotest.(check int) "unterminated functions" 2 (List.length p.funcs)

let test_parse_errors () =
  let expect src =
    match parse_p src with
    | exception Source.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  expect "x = ;";
  expect "if x\ny = 1;";
  (* missing end *)
  expect "x = (1 + 2";
  expect "for = 3";
  expect "x = 1 +"

(* Round-trip property: print then reparse gives a structurally equal
   tree (ids differ).  Expressions are generated randomly. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "xs" ] in
  let leaf =
    oneof
      [
        map (fun n -> Ast.mk (Ast.Num (float_of_int n))) (int_bound 99);
        map (fun v -> Ast.mk (Ast.Ident v)) var;
      ]
  in
  let binop =
    oneofl
      [
        Ast.Add; Ast.Sub; Ast.Mul; Ast.Emul; Ast.Div; Ast.Ediv; Ast.Pow;
        Ast.Epow; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne; Ast.And;
        Ast.Or; Ast.Shortand; Ast.Shortor;
      ]
  in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 4,
              map3
                (fun op a b -> Ast.mk (Ast.Binop (op, a, b)))
                binop (self (n / 2)) (self (n / 2)) );
            ( 1,
              map
                (fun a -> Ast.mk (Ast.Unop (Ast.Neg, a)))
                (self (n - 1)) );
            ( 1,
              map
                (fun a -> Ast.mk (Ast.Unop (Ast.Ctranspose, a)))
                (self (n - 1)) );
            ( 1,
              map2
                (fun a b -> Ast.mk (Ast.Range (a, None, b)))
                (self (n / 2)) (self (n / 2)) );
            ( 1,
              map2
                (fun v args -> Ast.mk (Ast.Apply (v, args)))
                var
                (list_size (int_range 1 2) (self (n / 2))) );
          ])
    4

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.node, b.node) with
  | Ast.Num x, Ast.Num y -> x = y
  | Ast.Str x, Ast.Str y -> x = y
  | Ast.Ident x, Ast.Ident y | Ast.Varref x, Ast.Varref y -> x = y
  | Ast.Colon, Ast.Colon | Ast.End_marker, Ast.End_marker -> true
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
      o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Ast.Range (a1, s1, b1), Ast.Range (a2, s2, b2) ->
      expr_equal a1 a2 && expr_equal b1 b2
      && Option.equal expr_equal s1 s2
  | Ast.Apply (n1, l1), Ast.Apply (n2, l2) ->
      n1 = n2 && List.equal expr_equal l1 l2
  | Ast.Matrix r1, Ast.Matrix r2 -> List.equal (List.equal expr_equal) r1 r2
  | _ -> false

let roundtrip_prop e =
  let printed = Pp.expr_to_string e in
  match Parser.parse_expr_string printed with
  | reparsed -> expr_equal e reparsed
  | exception Source.Error (_, msg) ->
      QCheck.Test.fail_reportf "reparse of %S failed: %s" printed msg

let suite =
  [
    t "precedence" test_precedence;
    t "transpose" test_transpose;
    t "ranges" test_ranges;
    t "matrix literals" test_matrix_literals;
    t "index syntax" test_index_syntax;
    t "statements" test_statements;
    t "functions" test_functions;
    t "parse errors" test_parse_errors;
    Testutil.qtest ~count:500 "print/reparse round trip"
      (QCheck.make ~print:(fun e -> Pp.expr_to_string e) gen_expr)
      roundtrip_prop;
  ]
