(* External file input (paper section 3): a sample data file must be
   present at compile time for type/rank/shape inference; each back end
   reads the data at run time. *)

let t name f = Alcotest.test_case name `Quick f

let with_datafile content f =
  let dir = Filename.temp_file "otter_data" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "input.txt") in
  output_string oc content;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove (Filename.concat dir "input.txt");
      Sys.rmdir dir)
    (fun () -> f dir)

let test_parse () =
  let r, c, d = Mlang.Datafile.parse "1 2 3\n4 5 6\n" in
  Alcotest.(check int) "rows" 2 r;
  Alcotest.(check int) "cols" 3 c;
  Testutil.check_array_close "data" [| 1.; 2.; 3.; 4.; 5.; 6. |] d;
  let r, c, _ = Mlang.Datafile.parse "% comment\n1.5\t2.5\n" in
  Alcotest.(check int) "tabs+comments rows" 1 r;
  Alcotest.(check int) "tabs+comments cols" 2 c;
  (match Mlang.Datafile.parse "1 2\n3\n" with
  | exception Mlang.Datafile.Bad_data _ -> ()
  | _ -> Alcotest.fail "ragged file must be rejected");
  match Mlang.Datafile.parse "1 x\n" with
  | exception Mlang.Datafile.Bad_data _ -> ()
  | _ -> Alcotest.fail "non-numeric must be rejected"

let test_shape_inference_from_sample () =
  with_datafile "1 2 3\n4 5 6\n" (fun dir ->
      let c = Otter.compile ~datadir:dir "A = load('input.txt');" in
      let ty = Analysis.Infer.var_type c.Otter.info "A" in
      Alcotest.(check string) "inferred shape" "integer matrix [2x3]"
        (Analysis.Ty.to_string ty));
  with_datafile "1.5 2.5\n" (fun dir ->
      let c = Otter.compile ~datadir:dir "v = load('input.txt');" in
      let ty = Analysis.Infer.var_type c.Otter.info "v" in
      Alcotest.(check string) "real row vector" "real matrix [1x2]"
        (Analysis.Ty.to_string ty))

let test_missing_sample_is_an_error () =
  match Otter.compile ~datadir:"/nonexistent" "A = load('input.txt');" with
  | exception Mlang.Source.Error (_, msg) ->
      Alcotest.(check bool) "mentions sample file" true
        (let affix = "sample data file" in
         let n = String.length affix and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = affix || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "missing sample file must be a compile error"

let test_execution_across_backends () =
  with_datafile "1 2 3\n4 5 6\n7 8 9\n10 11 12\n" (fun dir ->
      let src =
        "A = load('input.txt');\ns = sum(sum(A));\nc = sum(A);\nx = c(2) + A(4, 3);"
      in
      let c = Otter.compile ~datadir:dir src in
      (* interpreter *)
      let oi =
        Otter.outcome_exn
          (Otter.run
             (Otter.config ~datadir:dir ~engine:Otter.Config.Einterp
                ~machine:Mpisim.Machine.workstation ~nprocs:1
                ~capture:[ "s"; "x" ] ())
             c)
      in
      let gi n =
        match List.assoc n oi.Exec.Vm.captures with
        | Exec.Vm.Cscalar f -> f
        | _ -> nan
      in
      Testutil.check_close "interp sum" 78. (gi "s");
      Testutil.check_close "interp x" 38. (gi "x");
      (* parallel VM at several P *)
      List.iter
        (fun p ->
          let o =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~datadir:dir ~machine:Mpisim.Machine.meiko_cs2
                    ~nprocs:p ~capture:[ "s"; "x" ] ())
                 c)
          in
          let g n =
            match List.assoc n o.Exec.Vm.captures with
            | Exec.Vm.Cscalar f -> f
            | _ -> nan
          in
          Testutil.check_close (Printf.sprintf "vm sum P=%d" p) 78. (g "s");
          Testutil.check_close (Printf.sprintf "vm x P=%d" p) 38. (g "x"))
        [ 1; 2; 4; 8 ])

let test_c_execution () =
  if Sys.command "cc --version > /dev/null 2>&1" = 0 then
    with_datafile "1 2\n3 4\n" (fun dir ->
        let src =
          "A = load('input.txt');\nfprintf('%g %g\\n', sum(sum(A)), A(2, 1));"
        in
        let c = Otter.compile ~datadir:dir src in
        let write (f, content) =
          let oc = open_out (Filename.concat dir f) in
          output_string oc content;
          close_out oc
        in
        write ("prog.c", Codegen.emit_c c.Otter.prog);
        List.iter write Codegen.support_files;
        let cmd =
          Printf.sprintf
            "cd %s && cc -O1 -o prog prog.c otter_rt_common.c otter_rt_seq.c \
             -lm 2>/dev/null && ./prog > out.txt"
            (Filename.quote dir)
        in
        Alcotest.(check int) "C build+run" 0 (Sys.command cmd);
        let ic = open_in (Filename.concat dir "out.txt") in
        let out = input_line ic in
        close_in ic;
        Alcotest.(check string) "C output" "10 3" out;
        List.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          ([ "prog.c"; "prog"; "out.txt" ] @ List.map fst Codegen.support_files))

let suite =
  [
    t "data file parsing" test_parse;
    t "shape inference from the sample file" test_shape_inference_from_sample;
    t "missing sample file is a compile error" test_missing_sample_is_an_error;
    t "execution across back ends" test_execution_across_backends;
    t "generated C reads the file" test_c_execution;
  ]
