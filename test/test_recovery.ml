(* Rank-failure tolerance end to end: the heartbeat failure detector,
   coordinated checkpoint/restart, and the typed abort paths.

   The headline guarantee (ISSUE 6 acceptance): every benchmark app at
   P in {2,4,8} on all three paper machines completes *bit-identically*
   to its fault-free run under a seeded single-rank kill with recovery
   enabled; with recovery disabled, or with the retry budget exhausted,
   the run ends in a typed failure — never a hang, never a wrong
   answer. *)

module Machine = Mpisim.Machine
module Sim = Mpisim.Sim
module Reliable = Mpisim.Reliable

let t name f = Alcotest.test_case name `Quick f

let machines =
  [ Machine.meiko_cs2; Machine.enterprise_smp; Machine.sparc20_cluster ]

let faults spec =
  match Machine.faults_of_spec spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad fault spec: %s" e

(* A machine where one chosen rank is permanently killed early in the
   run, with the failure detector armed. *)
let killer ?(reliable = true) ?(victim = 1) ?(at = 0.002) ?(detect = 0.05)
    ?(seed = 7) m =
  Machine.with_faults ~reliable
    ~faults:
      (faults
         (Printf.sprintf "kill_rank=%d,kill_time=%g,detect=%g,seed=%d" victim
            at detect seed))
    m

(* Bit-for-bit equality of captured values: recovery replays must not
   perturb a single ULP (exact equality, not tolerance). *)
let eq_captured (a : Exec.Vm.captured) (b : Exec.Vm.captured) =
  let eqf (x : float) (y : float) =
    (Float.is_nan x && Float.is_nan y) || x = y
  in
  match (a, b) with
  | Exec.Vm.Cscalar x, Exec.Vm.Cscalar y -> eqf x y
  | Exec.Vm.Cmat (r1, c1, d1), Exec.Vm.Cmat (r2, c2, d2) ->
      r1 = r2 && c1 = c2 && Array.for_all2 eqf d1 d2
  | _ -> false

let check_identical ~where (clean : Exec.Vm.outcome) (rec_ : Exec.Vm.outcome) =
  Alcotest.(check string) (where ^ ": output bit-identical") clean.output
    rec_.output;
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name rec_.Exec.Vm.captures with
      | Some w when eq_captured v w -> ()
      | Some _ -> Alcotest.failf "%s: capture %s differs after recovery" where name
      | None -> Alcotest.failf "%s: capture %s lost after recovery" where name)
    clean.Exec.Vm.captures

(* --- the acceptance matrix ---------------------------------------------- *)

(* One app across P in {2,4,8} on all three machines: kill rank 1 early,
   recover, and demand the exact fault-free answer. *)
let recover_app key () =
  let app =
    match Apps.Scripts.find key with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 4) in
  List.iter
    (fun m ->
      List.iter
        (fun p ->
          let where = Printf.sprintf "%s P=%d on %s" key p m.Machine.name in
          let clean =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~capture:app.capture ~machine:m ~nprocs:p ())
                 c)
          in
          (* Kill a third of the way through the fault-free makespan so
             the death lands mid-run on every machine, with a few
             checkpoint commits before it. *)
          let span = clean.Exec.Vm.report.Sim.makespan in
          let at = span *. 0.3 in
          let ck = Float.max 1e-6 (span *. 0.08) in
          let rc =
            Otter.run
              (Otter.config ~capture:app.capture ~ckpt_interval:ck
                 ~max_recoveries:3
                 ~machine:(killer ~at ~detect:(Float.max 0.01 (span *. 0.05)) m)
                 ~nprocs:p ())
              c
          in
          (match rc.Exec.Vm.r_reports with
          | first :: _ ->
              Alcotest.(check int)
                (where ^ ": the seeded kill fired")
                1 first.Sim.kills
          | [] -> Alcotest.failf "%s: no attempt reports" where);
          Alcotest.(check bool)
            (where ^ ": recovery actually rolled back")
            true
            (rc.Exec.Vm.r_attempts >= 2);
          match rc.Exec.Vm.r_result with
          | Exec.Vm.Complete out -> check_identical ~where clean out
          | Exec.Vm.Partial { detail; _ } ->
              Alcotest.failf "%s: did not recover: %s" where detail)
        [ 2; 4; 8 ])
    machines

(* --- typed aborts: no hang, no wrong answer ----------------------------- *)

(* Recovery disabled: the kill surfaces as a structured [Partial] with
   a rank-failure class and the kill counted in the report. *)
let test_kill_without_recovery_is_typed () =
  let app =
    match Apps.Scripts.find "cg" with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 4) in
  match
    (Otter.run
       (Otter.config ~capture:app.capture ~machine:(killer Machine.meiko_cs2)
          ~nprocs:4 ())
       c)
      .Exec.Vm.r_result
  with
  | Exec.Vm.Partial { kind; report; failed_rank; _ } ->
      Alcotest.(check bool)
        "rank-failure class" true
        (match kind with
        | Exec.Vm.Fkilled | Exec.Vm.Fpeer | Exec.Vm.Fexhausted -> true
        | _ -> false);
      Alcotest.(check int) "one kill counted" 1 report.Sim.kills;
      Alcotest.(check bool) "rank in range" true
        (failed_rank >= 0 && failed_rank < 4)
  | Exec.Vm.Complete _ ->
      Alcotest.fail "a killed rank cannot complete without recovery"

(* Every rank doomed on every attempt: the budget runs out and the
   driver gives up cleanly — [r_gave_up], still a recoverable class,
   and exactly budget+1 attempts. *)
let test_budget_exhaustion_gives_up () =
  let app =
    match Apps.Scripts.find "nbody" with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 4) in
  let m =
    Machine.with_faults ~reliable:true
      ~faults:(faults "kill=1.0,kill_window=0.01,detect=0.05,seed=13")
      Machine.sparc20_cluster
  in
  let rc =
    Otter.run
      (Otter.config ~capture:app.capture ~ckpt_interval:0.05 ~max_recoveries:2
         ~machine:m ~nprocs:4 ())
      c
  in
  Alcotest.(check bool) "gave up" true rc.Exec.Vm.r_gave_up;
  Alcotest.(check int) "budget+1 attempts" 3 rc.Exec.Vm.r_attempts;
  Alcotest.(check int) "one report per attempt" 3
    (List.length rc.Exec.Vm.r_reports);
  match rc.Exec.Vm.r_result with
  | Exec.Vm.Partial { kind; _ } ->
      Alcotest.(check bool) "recoverable class" true (Exec.Vm.recoverable kind)
  | Exec.Vm.Complete _ -> Alcotest.fail "kill=1.0 cannot complete"

(* A bug in the program itself must not be retried: the driver returns
   after the first attempt with a non-recoverable class. *)
let test_program_bugs_are_not_retried () =
  let c = Otter.compile "x = rand(8, 8);\nif sum(sum(x)) > 0\n  error('intentional');\nend\n" in
  let rc =
    Otter.run
      (Otter.config ~ckpt_interval:0.05 ~max_recoveries:3
         ~machine:(killer ~at:1e9 Machine.meiko_cs2) ~nprocs:4 ())
      c
  in
  Alcotest.(check int) "one attempt only" 1 rc.Exec.Vm.r_attempts;
  Alcotest.(check bool) "did not give up (not recoverable)" false
    rc.Exec.Vm.r_gave_up;
  match rc.Exec.Vm.r_result with
  | Exec.Vm.Partial { kind; _ } ->
      Alcotest.(check bool) "runtime class" true (kind = Exec.Vm.Fruntime)
  | Exec.Vm.Complete _ -> Alcotest.fail "error() cannot complete"

(* --- replay determinism ------------------------------------------------- *)

(* The sharp edge of checkpoint/restart: a restored rank must resume
   its RNG stream at the exact sequence number it snapshotted, so a
   recovered run draws the same randoms as an undisturbed one.  A
   rand-heavy loop makes any off-by-one in the replay visible. *)
let test_rng_stream_survives_replay () =
  let src =
    "acc = 0;\n\
     for i = 1:30\n\
    \  r = rand(16, 16);\n\
    \  acc = acc + sum(sum(r)) + max(max(r));\n\
     end\n\
     fprintf('acc=%.17g\\n', acc);\n"
  in
  let c = Otter.compile src in
  let clean =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~capture:[ "acc" ] ~machine:Machine.meiko_cs2 ~nprocs:4
            ())
         c)
  in
  let rc =
    Otter.run
      (Otter.config ~capture:[ "acc" ] ~ckpt_interval:0.01 ~max_recoveries:3
         ~machine:(killer ~victim:2 ~at:0.02 Machine.meiko_cs2)
         ~nprocs:4 ())
      c
  in
  Alcotest.(check bool) "rolled back at least once" true
    (rc.Exec.Vm.r_attempts >= 2);
  match rc.Exec.Vm.r_result with
  | Exec.Vm.Complete out ->
      check_identical ~where:"rng replay" clean out
  | Exec.Vm.Partial { detail; _ } ->
      Alcotest.failf "rng replay did not recover: %s" detail

(* Two different fault seeds kill different ranks at different times;
   both recoveries land on the same bit-exact answer. *)
let test_recovery_is_seed_independent () =
  let src =
    "a = rand(24, 24);\nb = a * a';\ns = sum(sum(b));\nfprintf('s=%.17g\\n', s);\n"
  in
  let c = Otter.compile src in
  let clean =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~machine:Machine.sparc20_cluster ~nprocs:4 ())
         c)
  in
  List.iter
    (fun (victim, seed) ->
      let rc =
        Otter.run
          (Otter.config ~ckpt_interval:0.02 ~max_recoveries:3
             ~machine:(killer ~victim ~seed Machine.sparc20_cluster) ~nprocs:4
             ())
          c
      in
      match rc.Exec.Vm.r_result with
      | Exec.Vm.Complete out ->
          Alcotest.(check string)
            (Printf.sprintf "victim=%d seed=%d" victim seed)
            clean.Exec.Vm.output out.Exec.Vm.output
      | Exec.Vm.Partial { detail; _ } ->
          Alcotest.failf "victim=%d seed=%d did not recover: %s" victim seed
            detail)
    [ (0, 5); (3, 11) ]

(* --- the reliable layer under extreme reordering (property) ------------- *)

(* Exactly-once, in-order delivery per (src, dst) stream: two senders
   push numbered sequences through a link with extreme duplication and
   delay reordering (plus some loss); each stream must arrive exactly
   once, in order, under every sampled fault configuration. *)
let reliable_exactly_once_prop =
  QCheck.Test.make ~count:25 ~name:"reliable: exactly-once, in-order streams"
    QCheck.(
      triple (int_range 1 20)
        (pair (float_range 0. 0.6) (float_range 0. 0.5))
        (int_range 0 1000))
    (fun (n, (dup, delay), seed) ->
      let spec =
        Printf.sprintf "dup=%g,delay=%g,drop=0.1,seed=%d" dup delay seed
      in
      let m =
        Machine.with_faults ~reliable:true ~faults:(faults spec)
          Machine.sparc20_cluster
      in
      let results, _ =
        Sim.run ~machine:m ~nprocs:3 (fun rank ->
            if rank < 2 then begin
              for i = 1 to n do
                Reliable.send ~dst:2 ~tag:4 (Sim.Ints [| (rank * 1000) + i |])
              done;
              []
            end
            else begin
              (* Drain the two streams in an interleaved order. *)
              let got = Array.make 2 [] in
              for i = 1 to n do
                List.iter
                  (fun src ->
                    match Reliable.recv_ints ~src ~tag:4 with
                    | [| x |] -> got.(src) <- x :: got.(src)
                    | _ -> Alcotest.fail "bad payload")
                  (if i mod 2 = 0 then [ 0; 1 ] else [ 1; 0 ])
              done;
              List.concat_map (fun s -> List.rev got.(s)) [ 0; 1 ]
            end)
      in
      let expect =
        List.concat_map
          (fun src -> List.init n (fun i -> (src * 1000) + i + 1))
          [ 0; 1 ]
      in
      results.(2) = expect)

(* --- minimized chaos counterexamples ------------------------------------ *)

(* Scripts in test/corpus/chaos were minimized from chaos-sweep
   failures; replay each under the standard single-kill chaos spec and
   demand the fault-free answer. *)
let chaos_corpus_dir =
  lazy
    (let rec up dir n =
       if n = 0 then None
       else if Sys.file_exists (Filename.concat dir "test/corpus/chaos") then
         Some (Filename.concat dir "test/corpus/chaos")
       else up (Filename.dirname dir) (n - 1)
     in
     up (Sys.getcwd ()) 8)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_chaos_corpus () =
  match Lazy.force chaos_corpus_dir with
  | None -> () (* sandboxed without sources: nothing to check *)
  | Some dir ->
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".m")
        |> List.sort compare
      in
      Alcotest.(check bool) "chaos corpus nonempty" true (files <> []);
      List.iter
        (fun f ->
          let c = Otter.compile (read_file (Filename.concat dir f)) in
          let clean =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~machine:Machine.meiko_cs2 ~nprocs:4 ())
                 c)
          in
          let rc =
            Otter.run
              (Otter.config ~ckpt_interval:0.02 ~max_recoveries:3
                 ~machine:(killer Machine.meiko_cs2) ~nprocs:4 ())
              c
          in
          match rc.Exec.Vm.r_result with
          | Exec.Vm.Complete out ->
              Alcotest.(check string)
                (f ^ ": bit-identical after recovery")
                clean.Exec.Vm.output out.Exec.Vm.output
          | Exec.Vm.Partial { detail; _ } ->
              Alcotest.failf "%s: did not recover: %s" f detail)
        files

let suite =
  [
    t "cg recovers bit-identically (3 machines, P=2/4/8)" (recover_app "cg");
    t "ocean recovers bit-identically (3 machines, P=2/4/8)"
      (recover_app "ocean");
    t "nbody recovers bit-identically (3 machines, P=2/4/8)"
      (recover_app "nbody");
    t "tc recovers bit-identically (3 machines, P=2/4/8)" (recover_app "tc");
    t "kill without recovery is a typed Partial"
      test_kill_without_recovery_is_typed;
    t "budget exhaustion gives up cleanly" test_budget_exhaustion_gives_up;
    t "program bugs are not retried" test_program_bugs_are_not_retried;
    t "RNG streams survive replay bit-identically"
      test_rng_stream_survives_replay;
    t "recovery is independent of the fault seed"
      test_recovery_is_seed_independent;
    QCheck_alcotest.to_alcotest reliable_exactly_once_prop;
    t "chaos corpus replays" test_chaos_corpus;
  ]
