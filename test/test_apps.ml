(* Benchmark-application tests: each of the paper's four applications
   verifies across back ends and processor counts, and the performance
   model reproduces the paper's qualitative results. *)

let t name f = Alcotest.test_case name `Quick f

(* Run on 4 CPUs of the default machine and return the outcome. *)
let run4 ~capture c =
  Otter.outcome_exn
    (Otter.run
       (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 ~capture ())
       c)

(* Modeled time of [c] on [machine] under [engine] with [nprocs] ranks. *)
let engine_time ~engine ~machine ~nprocs c =
  (Otter.outcome_exn (Otter.run (Otter.config ~engine ~machine ~nprocs ()) c))
    .Exec.Vm.report
    .Mpisim.Sim.makespan

let verify_app ?(machine = Mpisim.Machine.meiko_cs2) key ~scale ~nprocs =
  let app = Option.get (Apps.Scripts.find key) in
  let c = Otter.compile (app.source scale) in
  let mm =
    Otter.verify_list
      (Otter.config ~tol:1e-6 ~machine ~nprocs ~capture:app.capture ())
      c
  in
  if mm <> [] then
    Alcotest.failf "%s %s P=%d: %s" key machine.Mpisim.Machine.name nprocs
      (String.concat "; "
         (List.map (fun m -> m.Otter.variable ^ ": " ^ m.Otter.detail) mm))

let test_verify key () = List.iter (fun p -> verify_app key ~scale:8 ~nprocs:p) [ 1; 3; 8; 16 ]

(* The rank-N applications verify against the interpreter at
   P in {1,2,4,8} on all three machine models. *)
let test_verify_tensor key () =
  List.iter
    (fun machine ->
      List.iter
        (fun p -> verify_app ~machine key ~scale:8 ~nprocs:p)
        [ 1; 2; 4; 8 ])
    [
      Mpisim.Machine.meiko_cs2;
      Mpisim.Machine.enterprise_smp;
      Mpisim.Machine.sparc20_cluster;
    ]

let times key ~scale ~machine =
  let app = Option.get (Apps.Scripts.find key) in
  let c = Otter.compile (app.source scale) in
  let ti = engine_time ~engine:Otter.Config.Einterp ~machine ~nprocs:1 c in
  let tp p = engine_time ~engine:Otter.Config.Etcode ~machine ~nprocs:p c in
  (ti, tp)

let test_cg_converges () =
  let src = Apps.Scripts.cg ~n:32 ~iters:40 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "resid" ] c in
  match List.assoc "resid" o.Exec.Vm.captures with
  | Exec.Vm.Cscalar r ->
      Alcotest.(check bool) "residual small" true (r < 1e-8)
  | _ -> Alcotest.fail "resid not scalar"

let test_tc_closure_properties () =
  (* The closure matrix must be reflexive and monotone wrt the input. *)
  let src = Apps.Scripts.transitive_closure ~n:24 ~density:0.05 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "B"; "reach" ] c in
  let _, _, b =
    match List.assoc "B" o.Exec.Vm.captures with
    | Exec.Vm.Cmat (r, cc, d) -> (r, cc, d)
    | _ -> Alcotest.fail "B not matrix"
  in
  let n = 24 in
  for i = 0 to n - 1 do
    Testutil.check_close "reflexive" 1. b.((i * n) + i)
  done;
  Array.iter
    (fun x ->
      Alcotest.(check bool) "boolean" true (x = 0. || x = 1.))
    b;
  match List.assoc "reach" o.Exec.Vm.captures with
  | Exec.Vm.Cscalar r ->
      Alcotest.(check bool) "at least the diagonal" true (r >= float_of_int n)
  | _ -> Alcotest.fail "reach not scalar"

let test_nbody_physics () =
  (* momentum-free start: center of mass barely drifts; energy finite *)
  let src = Apps.Scripts.nbody ~n:200 ~steps:10 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "mx"; "ke" ] c in
  let get n =
    match List.assoc n o.Exec.Vm.captures with
    | Exec.Vm.Cscalar f -> f
    | _ -> nan
  in
  Alcotest.(check bool) "mean position sane" true
    (get "mx" > 0.3 && get "mx" < 0.7);
  Alcotest.(check bool) "kinetic energy positive and finite" true
    (get "ke" > 0. && Float.is_finite (get "ke"))

let test_ocean_signal () =
  let src = Apps.Scripts.ocean ~n:4000 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "Fmax"; "Frms" ] c in
  let get n =
    match List.assoc n o.Exec.Vm.captures with
    | Exec.Vm.Cscalar f -> f
    | _ -> nan
  in
  Alcotest.(check bool) "rms below max" true (get "Frms" < get "Fmax");
  Alcotest.(check bool) "nonzero force" true (get "Frms" > 0.)

let test_heat3d_physics () =
  (* a hot face diffusing into a cold grid: the peak stays at the
     boundary value, interior temperatures lie strictly between the
     boundary extremes, and total heat is positive *)
  let src = Apps.Scripts.heat3d ~n:10 ~m:8 ~iters:12 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "heat"; "peak"; "core" ] c in
  let get n =
    match List.assoc n o.Exec.Vm.captures with
    | Exec.Vm.Cscalar f -> f
    | _ -> nan
  in
  Testutil.check_close "peak is the hot face" 1. (get "peak");
  Alcotest.(check bool) "core warmed" true (get "core" > 0.);
  Alcotest.(check bool) "core below the hot face" true (get "core" < 1.);
  Alcotest.(check bool) "total heat positive" true (get "heat" > 0.)

let test_logistic_range () =
  (* every trajectory of the logistic map stays inside (0, 1) *)
  let src = Apps.Scripts.logistic ~pages:8 ~m:8 ~iters:40 () in
  let c = Otter.compile src in
  let o = run4 ~capture:[ "xlo"; "xhi"; "xm" ] c in
  let get n =
    match List.assoc n o.Exec.Vm.captures with
    | Exec.Vm.Cscalar f -> f
    | _ -> nan
  in
  Alcotest.(check bool) "bounded below" true (get "xlo" > 0.);
  Alcotest.(check bool) "bounded above" true (get "xhi" < 1.);
  Alcotest.(check bool) "mean inside the bounds" true
    (get "xlo" <= get "xm" && get "xm" <= get "xhi")

(* --- paper-shape assertions (the headline claims) ----------------------- *)

let test_fig2_shape () =
  (* Otter beats the interpreter on all four applications. *)
  let machine = Mpisim.Machine.workstation in
  let results =
    List.map
      (fun (app : Apps.Scripts.app) ->
        let c = Otter.compile (app.source 15) in
        let ti = engine_time ~engine:Otter.Config.Einterp ~machine ~nprocs:1 c in
        let tm = engine_time ~engine:Otter.Config.Ematcom ~machine ~nprocs:1 c in
        let to1 =
          engine_time ~engine:Otter.Config.Etcode ~machine ~nprocs:1 c
        in
        (app.key, ti, tm, to1))
      Apps.Scripts.apps
  in
  List.iter
    (fun (key, ti, _, to1) ->
      Alcotest.(check bool) (key ^ ": otter beats interpreter") true (to1 < ti))
    results;
  (* and the MATCOM comparison splits 2-2 *)
  let otter_wins =
    List.length (List.filter (fun (_, _, tm, to1) -> to1 < tm) results)
  in
  Alcotest.(check int) "2-2 split against MATCOM" 2 otter_wins

let test_fig3_shape () =
  (* CG on the CS-2: large speedup, monotone in P. *)
  let ti, tp = times "cg" ~scale:25 ~machine:Mpisim.Machine.meiko_cs2 in
  let s p = ti /. tp p in
  Alcotest.(check bool) "monotone 1->16" true
    (s 1 < s 2 && s 2 < s 4 && s 4 < s 8 && s 8 < s 16);
  Alcotest.(check bool) "large speedup at 16" true (s 16 > 30.)

let test_fig6_beats_fig3 () =
  (* Transitive closure (O(n^3)) parallelizes at least as well as CG. *)
  let ti_cg, tp_cg = times "cg" ~scale:20 ~machine:Mpisim.Machine.meiko_cs2 in
  let ti_tc, tp_tc = times "tc" ~scale:20 ~machine:Mpisim.Machine.meiko_cs2 in
  let eff t1 tp = t1 /. tp in
  Alcotest.(check bool) "tc >= cg at 16 CPUs" true
    (eff ti_tc (tp_tc 16) >= eff ti_cg (tp_cg 16) *. 0.95)

let test_fig4_small_grain () =
  (* Ocean: speedup stays modest on every machine (paper: small data
     set, O(n) complexity). *)
  let ti, tp = times "ocean" ~scale:20 ~machine:Mpisim.Machine.meiko_cs2 in
  Alcotest.(check bool) "modest speedup" true (ti /. tp 16 < 15.);
  Alcotest.(check bool) "still beats the interpreter" true (ti /. tp 1 > 1.)

let test_cluster_damping () =
  (* On the Ethernet cluster every application slows beyond one SMP
     (4 CPUs) relative to the CS-2 (paper section 6). *)
  List.iter
    (fun key ->
      let _, tp_cluster =
        times key ~scale:15 ~machine:Mpisim.Machine.sparc20_cluster
      in
      let _, tp_meiko = times key ~scale:15 ~machine:Mpisim.Machine.meiko_cs2 in
      (* compare the 16-CPU gain over the 4-CPU point on each machine *)
      let gain tp = tp 4 /. tp 16 in
      Alcotest.(check bool)
        (key ^ ": cluster damped vs CS-2")
        true
        (gain tp_cluster < gain tp_meiko))
    [ "cg"; "tc"; "nbody" ]

let test_meiko_best_balance () =
  (* The CS-2 achieves the highest 16-CPU speedup on the compute-heavy
     benchmarks (paper: best balance of CPU speed, latency and
     bandwidth among the three). *)
  let at16 machine =
    let ti, tp = times "tc" ~scale:15 ~machine in
    ti /. tp (min 16 machine.Mpisim.Machine.max_procs)
  in
  let meiko = at16 Mpisim.Machine.meiko_cs2 in
  let cluster = at16 Mpisim.Machine.sparc20_cluster in
  Alcotest.(check bool) "meiko beats cluster" true (meiko > cluster)

let suite =
  [
    t "cg verifies across P" (test_verify "cg");
    t "ocean verifies across P" (test_verify "ocean");
    t "nbody verifies across P" (test_verify "nbody");
    t "tc verifies across P" (test_verify "tc");
    t "heat3d verifies across P and machines" (test_verify_tensor "heat3d");
    t "logistic verifies across P and machines" (test_verify_tensor "logistic");
    t "cg converges" test_cg_converges;
    t "heat3d physics" test_heat3d_physics;
    t "logistic range" test_logistic_range;
    t "tc closure properties" test_tc_closure_properties;
    t "nbody physics" test_nbody_physics;
    t "ocean signal" test_ocean_signal;
    t "figure 2 shape" test_fig2_shape;
    t "figure 3 shape" test_fig3_shape;
    t "figure 6 vs figure 3" test_fig6_beats_fig3;
    t "figure 4 small grain" test_fig4_small_grain;
    t "cluster damping (section 6)" test_cluster_damping;
    t "CS-2 best balance (section 6)" test_meiko_best_balance;
  ]
