(* C back-end tests: structural properties of the emitted code (the
   paper's pass-7 style), and -- when a C compiler is available -- an
   integration test that compiles and executes generated programs,
   comparing stdout with the reference interpreter. *)

let t name f = Alcotest.test_case name `Quick f

let emit src = Codegen.emit_c (Otter.compile src).Otter.prog

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let check_contains msg c affix =
  if not (contains ~affix c) then
    Alcotest.failf "%s: generated C should contain %S\n%s" msg affix c

let check_not_contains msg c affix =
  if contains ~affix c then
    Alcotest.failf "%s: generated C should NOT contain %S" msg affix

let test_paper_style_calls () =
  (* the paper's pass-4 example: a = b * c + d(i, j) *)
  let c =
    emit
      "n = 4;\nb = ones(n, n); c = ones(n, n); d = ones(n, n);\ni = 2; j = 3;\n\
       a = b * c + d(i, j);"
  in
  check_contains "matmul" c "ML_matrix_multiply(";
  check_contains "broadcast" c "ML_broadcast(";
  check_contains "0-based adjustment" c "- 1";
  check_contains "local loop" c "ML_local_els(";
  check_contains "countdown loop" c "ML_i >= 0; ML_i--"

let test_owner_guard_style () =
  (* the paper's pass-5 example: a(i,j) = a(i,j) / b(j,i) *)
  let c =
    emit "a = ones(3, 3); b = ones(3, 3); i = 1; j = 2;\na(i, j) = a(i, j) / b(j, i);"
  in
  check_contains "guard" c "if (ML_owner(";
  check_contains "store" c "*ML_realaddr2("

let test_declarations () =
  let c = emit "x = 1.5;\nA = ones(3, 3);" in
  check_contains "scalar decl" c "double x = 0;";
  check_contains "matrix decl" c "MATRIX *A = NULL;";
  check_contains "init" c "ML_init(&argc, &argv);";
  check_contains "finalize" c "ML_finalize();"

let test_control_flow_c () =
  let c =
    emit "s = 0;\nfor i = 1:2:9\n  if s > 5\n    s = s - 1;\n  else\n    s = s + i;\n  end\nend\nwhile s > 0\n  s = s - 3;\nend"
  in
  (* the loop iterates on a hidden induction variable and assigns the
     MATLAB loop variable at the top of each pass (post-loop value and
     body reassignment semantics) *)
  check_contains "for" c "for (ML_it";
  check_contains "loop var assign" c "i = ML_it";
  check_contains "if" c "if ((";
  check_contains "else" c "} else {";
  check_contains "while" c "while (("

let test_function_emission () =
  let c =
    emit "y = f(2);\nfunction r = f(x)\n  r = x * x;\nend"
  in
  check_contains "prototype" c "static void u_f(double x, double *ML_ret_r);";
  check_contains "call" c "u_f(";
  check_contains "return store" c "*ML_ret_r = r;"

let test_keyword_mangling () =
  let c = emit "int = 3;\nregister = int + 1;" in
  check_contains "mangled int" c "int_ = ";
  check_contains "mangled register" c "register_ = ";
  check_not_contains "no bare keyword decl" c "double int = "

let test_string_escaping () =
  let c = emit "fprintf('a \"quoted\" %d\\n', 3);" in
  check_contains "escaped quotes" c "\\\"quoted\\\""

let test_balanced_braces () =
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = emit (app.source 10) in
      let opens = String.fold_left (fun n ch -> if ch = '{' then n + 1 else n) 0 c in
      let closes = String.fold_left (fun n ch -> if ch = '}' then n + 1 else n) 0 c in
      Alcotest.(check int) (app.key ^ " balanced braces") opens closes)
    Apps.Scripts.apps

let test_support_files_present () =
  let names = List.map fst Codegen.support_files in
  Alcotest.(check (list string)) "files"
    [ "otter_rt.h"; "otter_rt_common.c"; "otter_rt_seq.c"; "otter_rt_mpi.c" ]
    names;
  List.iter
    (fun (name, content) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length content > 500))
    Codegen.support_files

(* --- integration: compile with cc and compare with the interpreter ------ *)

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let compile_and_run_c src =
  let dir = Filename.temp_file "otter" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write (f, content) =
    let oc = open_out (Filename.concat dir f) in
    output_string oc content;
    close_out oc
  in
  write ("prog.c", Codegen.emit_c (Otter.compile src).Otter.prog);
  List.iter write Codegen.support_files;
  let cmd =
    Printf.sprintf
      "cd %s && cc -O1 -o prog prog.c otter_rt_common.c otter_rt_seq.c -lm \
       2>cc.log && ./prog > out.txt 2>&1"
      (Filename.quote dir)
  in
  if Sys.command cmd <> 0 then begin
    let log = Filename.concat dir "cc.log" in
    let detail =
      if Sys.file_exists log then (
        let ic = open_in log in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s)
      else "?"
    in
    Alcotest.failf "C build/run failed:\n%s" detail
  end;
  let ic = open_in (Filename.concat dir "out.txt") in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_c_matches_interpreter src =
  if Lazy.force cc_available then begin
    let c_out = compile_and_run_c src in
    let ref_out, _ = Testutil.run_interp src in
    Alcotest.(check string) "C output == interpreter output" ref_out c_out
  end

let test_c_execution_basics () =
  check_c_matches_interpreter
    "x = 2 + 3 * 4;\nfprintf('x=%d\\n', x);\nv = (1:10)';\n\
     fprintf('s=%g d=%g\\n', sum(v), v' * v);"

let test_c_execution_control_flow () =
  check_c_matches_interpreter
    "s = 0;\nfor i = 1:10\n  if mod(i, 3) == 0\n    continue\n  end\n\
     \  s = s + i;\n  if s > 30\n    break\n  end\nend\nfprintf('s=%d\\n', s);"

let test_c_execution_matrix_ops () =
  check_c_matches_interpreter
    "n = 12;\nA = rand(n, n);\nA = A + A' + n * eye(n);\nv = rand(n, 1);\n\
     w = A * v;\nfprintf('%.10f %.10f %.10f\\n', sum(w), norm(w), max(w));\n\
     B = A(2:5, :);\nfprintf('%.10f\\n', sum(sum(B)));\n\
     u = circshift(v, 4);\nfprintf('%.10f\\n', u(1) + u(end));"

let test_c_execution_functions () =
  check_c_matches_interpreter
    "y = hyp(3, 4);\nfprintf('%g\\n', y);\n\
     [a, b] = div2(17);\nfprintf('%d %d\\n', a, b);\n\
     function r = hyp(p, q)\n  r = sqrt(p^2 + q^2);\nend\n\
     function [d, m] = div2(x)\n  d = floor(x / 2);\n  m = mod(x, 2);\nend"

(* A minimal stub mpi.h: enough to syntax- and type-check the MPI
   flavour of the run-time library without an MPI installation. *)
let stub_mpi_h =
  {m|#ifndef STUB_MPI_H
#define STUB_MPI_H
typedef int MPI_Comm;
typedef int MPI_Datatype;
typedef int MPI_Op;
typedef struct { int MPI_SOURCE, MPI_TAG, MPI_ERROR; } MPI_Status;
#define MPI_COMM_WORLD 0
#define MPI_DOUBLE 1
#define MPI_SUM 1
#define MPI_PROD 2
#define MPI_MIN 3
#define MPI_MAX 4
#define MPI_MINLOC 5
#define MPI_MAXLOC 6
#define MPI_DOUBLE_INT 2
#define MPI_OP_NULL 0
typedef void(MPI_User_function)(void *in, void *inout, int *len,
                                MPI_Datatype *dt);
int MPI_Op_create(MPI_User_function *fn, int commute, MPI_Op *op);
int MPI_Op_free(MPI_Op *op);
int MPI_Init(int *argc, char ***argv);
int MPI_Finalize(void);
int MPI_Comm_rank(MPI_Comm comm, int *rank);
int MPI_Comm_size(MPI_Comm comm, int *size);
int MPI_Send(const void *buf, int count, MPI_Datatype t, int dst, int tag,
             MPI_Comm comm);
int MPI_Recv(void *buf, int count, MPI_Datatype t, int src, int tag,
             MPI_Comm comm, MPI_Status *status);
int MPI_Bcast(void *buf, int count, MPI_Datatype t, int root, MPI_Comm comm);
int MPI_Allreduce(const void *send, void *recv, int count, MPI_Datatype t,
                  MPI_Op op, MPI_Comm comm);
int MPI_Allgatherv(const void *send, int count, MPI_Datatype st, void *recv,
                   const int *counts, const int *displs, MPI_Datatype rt,
                   MPI_Comm comm);
int MPI_Exscan(const void *send, void *recv, int count, MPI_Datatype t,
               MPI_Op op, MPI_Comm comm);
#endif
|m}

let test_mpi_runtime_syntax_checks () =
  if Lazy.force cc_available then begin
    let dir = Filename.temp_file "otter_mpi" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let write (f, content) =
      let oc = open_out (Filename.concat dir f) in
      output_string oc content;
      close_out oc
    in
    List.iter write Codegen.support_files;
    write ("mpi.h", stub_mpi_h);
    let cmd =
      Printf.sprintf
        "cd %s && cc -fsyntax-only -Wall -Werror -I. otter_rt_mpi.c 2>cc.log"
        (Filename.quote dir)
    in
    if Sys.command cmd <> 0 then begin
      let ic = open_in (Filename.concat dir "cc.log") in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Alcotest.failf "otter_rt_mpi.c does not compile:
%s" s
    end
  end

let test_c_execution_concat_sections () =
  check_c_matches_interpreter
    "u = (1:4)';\nv = (5:8)';\nw = [u; v];\nfprintf('%g %g\\n', sum(w), w(6));\n     A = [u, v];\nfprintf('%g\\n', sum(sum(A)));\n     z = zeros(8, 1);\nz(2:5) = u;\nfprintf('%g\\n', sum(z));\n     B = zeros(3, 3);\nB(2, :) = 7;\nB(1:2, 1:2) = eye(2);\n     fprintf('%g\\n', sum(sum(B)));"

let test_c_execution_scans () =
  check_c_matches_interpreter
    "v = (1:10)';\nc = cumsum(v);\nfprintf('%g %g\\n', c(4), c(end));\n\
     p = cumprod((1:6)');\nfprintf('%g\\n', p(end));\n\
     w = [4; -1; 7; -1];\n[m, i] = min(w);\nfprintf('%g %d\\n', m, i);\n\
     [m2, i2] = max(w);\nfprintf('%g %d\\n', m2, i2);"

let test_c_execution_sort_repmat () =
  check_c_matches_interpreter
    "v = [3; 1; 4; 1; 5];\n[s, i] = sort(v);\n\
     fprintf('%g %g %d %d\\n', s(1), s(end), i(1), i(end));\n\
     B = repmat([1, 2; 3, 4], 2, 3);\n\
     fprintf('%g %g\\n', sum(sum(B)), B(4, 6));"

let test_c_execution_apps () =
  (* every paper benchmark, small scale, exact output agreement *)
  List.iter
    (fun (app : Apps.Scripts.app) ->
      check_c_matches_interpreter (app.source 8))
    Apps.Scripts.apps

let suite =
  [
    t "paper-style library calls" test_paper_style_calls;
    t "owner guard emission" test_owner_guard_style;
    t "declarations" test_declarations;
    t "control flow" test_control_flow_c;
    t "function emission" test_function_emission;
    t "keyword mangling" test_keyword_mangling;
    t "string escaping" test_string_escaping;
    t "balanced braces on all apps" test_balanced_braces;
    t "support files" test_support_files_present;
    t "C execution: basics" test_c_execution_basics;
    t "C execution: control flow" test_c_execution_control_flow;
    t "C execution: matrix ops" test_c_execution_matrix_ops;
    t "C execution: functions" test_c_execution_functions;
    t "C execution: concat and sections" test_c_execution_concat_sections;
    t "C execution: scans and arg-reductions" test_c_execution_scans;
    t "C execution: sort and repmat" test_c_execution_sort_repmat;
    t "C execution: all four benchmarks" test_c_execution_apps;
    t "MPI run-time library compiles" test_mpi_runtime_syntax_checks;
  ]
