(* Explicit message passing: the MatlabMPI-style builtins
   (MPI_Comm_rank/size, MPI_Send/Recv, MPI_Bcast, MPI_Probe) across
   both SPMD engines, the reference interpreter, and the job
   scheduler that space-shares ranks between tenants. *)

open Testutil

let t name f = Alcotest.test_case name `Quick f

let run_engine ~engine ?(machine = Mpisim.Machine.meiko_cs2) ~nprocs src =
  let c = compile src in
  Otter.outcome_exn (Otter.run (Otter.config ~machine ~nprocs ~engine ()) c)

(* --- pingpong: bit-identical across engines at P in {2,4,8} ------------- *)

let pingpong_src =
  {|r = MPI_Comm_rank();
p = MPI_Comm_size();
total = 0;
if p > 1
  for k = 1:8
    if r == 0
      MPI_Send(1, 10, k);
      total = total + MPI_Recv(1, 11);
    end
    if r == 1
      v = MPI_Recv(0, 10);
      MPI_Send(0, 11, 2 * v);
    end
  end
else
  for k = 1:8
    MPI_Send(0, 10, k);
    total = total + 2 * MPI_Recv(0, 10);
  end
end
total = MPI_Bcast(0, total);
fprintf('pingpong total = %d\n', total);
|}

let test_pingpong_engines () =
  List.iter
    (fun nprocs ->
      let a = run_engine ~engine:Otter.Config.Etcode ~nprocs pingpong_src in
      let b = run_engine ~engine:Otter.Config.Eir ~nprocs pingpong_src in
      check Alcotest.string
        (Printf.sprintf "pingpong output P=%d" nprocs)
        "pingpong total = 72\n" a.Exec.State.output;
      check Alcotest.string
        (Printf.sprintf "engines agree P=%d" nprocs)
        a.Exec.State.output b.Exec.State.output;
      (* the simulated timelines must agree too: same traffic, same clock *)
      check Alcotest.int
        (Printf.sprintf "same message count P=%d" nprocs)
        a.Exec.State.report.Mpisim.Sim.messages
        b.Exec.State.report.Mpisim.Sim.messages)
    [ 2; 4; 8 ]

(* --- self-send: a rank's loopback queue ---------------------------------- *)

let test_self_send () =
  let src =
    {|r = MPI_Comm_rank();
MPI_Send(r, 5, 41);
MPI_Send(r, 5, 1);
a = MPI_Recv(r, 5);
b = MPI_Recv(r, 5);
fprintf('%d\n', a + b);
|}
  in
  List.iter
    (fun nprocs ->
      let o = run_engine ~engine:Otter.Config.Etcode ~nprocs src in
      check Alcotest.string
        (Printf.sprintf "FIFO self-send P=%d" nprocs)
        "42\n" o.Exec.State.output)
    [ 1; 4 ];
  (* the interpreter is the one-rank machine: same queues, same answer *)
  let out, _ = run_interp src in
  check Alcotest.string "interpreter self-send" "42\n" out

(* --- deadlock: both ranks receive first ---------------------------------- *)

let test_deadlock () =
  let src =
    {|r = MPI_Comm_rank();
a = MPI_Recv(1 - r, 3);
MPI_Send(1 - r, 3, r + 1);
|}
  in
  (* both ranks receive before anyone sends: circular wait *)
  let c = compile src in
  (match
     Otter.run (Otter.config ~nprocs:2 ()) c |> Otter.outcome_exn
   with
  | exception Mpisim.Sim.Deadlock msg ->
      Alcotest.(check bool) "deadlock names a waiting rank" true
        (contains msg "waits for")
  | _ -> Alcotest.fail "expected a deadlock");
  (* one rank, no partner: the interpreter rejects the phantom peer,
     and a self-receive with nothing queued is flagged as the
     one-rank image of this deadlock *)
  (match run_interp src with
  | exception Interp.Eval.Runtime_error msg ->
      Alcotest.(check bool) "interp flags the phantom peer" true
        (contains msg "source rank 1 is outside 0..0")
  | _ -> Alcotest.fail "expected an interpreter error");
  match run_interp "r = MPI_Comm_rank();\nx = MPI_Recv(r, 3);\nMPI_Send(r, 3, 1);\n" with
  | exception Interp.Eval.Runtime_error msg ->
      Alcotest.(check bool) "interp flags pending-free recv" true
        (contains msg "no message pending")
  | _ -> Alcotest.fail "expected an interpreter error"

(* --- wildcard source: MPI_Recv(-1, tag) / MPI_Probe(-1, tag) ------------- *)

let anysrc_src =
  {|r = MPI_Comm_rank();
p = MPI_Comm_size();
n = 64;
chunk = n / p;
lo = r * chunk + 1;
hi = lo + chunk - 1;
part = (hi * (hi + 1) - (lo - 1) * lo) / 2;
total = part;
if r == 0
  for k = 2:p
    total = total + MPI_Recv(-1, 9);
  end
else
  MPI_Send(0, 9, part);
end
leftover = MPI_Probe(-1, 9);
total = MPI_Bcast(0, total);
fprintf('any-source gather: total = %d leftover = %d\n', total, leftover);
|}

let test_any_source_gather () =
  let expected = "any-source gather: total = 2080 leftover = 0\n" in
  List.iter
    (fun nprocs ->
      let a = run_engine ~engine:Otter.Config.Etcode ~nprocs anysrc_src in
      let b = run_engine ~engine:Otter.Config.Eir ~nprocs anysrc_src in
      check Alcotest.string
        (Printf.sprintf "any-source gather P=%d" nprocs)
        expected a.Exec.State.output;
      check Alcotest.string
        (Printf.sprintf "engines agree P=%d" nprocs)
        a.Exec.State.output b.Exec.State.output)
    [ 1; 2; 4; 8 ];
  let out, _ = run_interp anysrc_src in
  check Alcotest.string "interpreter (any source = source 0)" expected out

let test_any_source_deadlock_diagnosed () =
  (* A wildcard receive nobody satisfies: the deadlock diagnostic must
     name the wildcard wait, not a phantom source rank. *)
  let src =
    {|r = MPI_Comm_rank();
if r > 100
  MPI_Send(0, 3, 1);
end
x = MPI_Recv(-1, 3);
|}
  in
  let c = compile src in
  match Otter.run (Otter.config ~nprocs:2 ()) c |> Otter.outcome_exn with
  | exception Mpisim.Sim.Deadlock msg ->
      Alcotest.(check bool) "wildcard named in diagnosis" true
        (contains msg "waits for (src=any, tag=2000003)")
  | _ -> Alcotest.fail "expected a deadlock"

let test_any_source_bad_rank () =
  let src = "MPI_Send(0, 1, 7);\nx = MPI_Recv(-2, 1);\n" in
  let c = compile src in
  match Otter.run (Otter.config ~nprocs:4 ()) c |> Otter.outcome_exn with
  | exception Exec.Vm.Runtime_error msg ->
      Alcotest.(check bool) "wildcard hinted" true
        (contains msg "source rank -2 is outside 0..3 (use -1 for any source)")
  | _ -> Alcotest.fail "expected a runtime error"

(* --- tag mismatch: receiving a tag nothing sends is rejected ------------- *)

let test_tag_mismatch () =
  let src = "x = MPI_Recv(0, 77);\n" in
  match compile src with
  | exception Mlang.Source.Error (_, msg) ->
      Alcotest.(check bool) "never-sent tag named" true
        (contains msg "no MPI_Send in the program sends tag 77")
  | _ -> Alcotest.fail "expected a compile-time error"

let test_rank_bounds () =
  let src = "MPI_Send(99, 1, 0);\nx = MPI_Recv(99, 1);\n" in
  let c = compile src in
  match Otter.run (Otter.config ~nprocs:4 ()) c |> Otter.outcome_exn with
  | exception Exec.Vm.Runtime_error msg ->
      Alcotest.(check bool) "out-of-range rank named" true
        (contains msg "destination rank 99 is outside 0..3")
  | _ -> Alcotest.fail "expected a runtime error"

(* --- mixed explicit + implicit on the app x machine matrix --------------- *)

(* Four small apps that each mix whole-array (implicitly parallel)
   operations with explicit messaging, verified against the reference
   interpreter on three machine models.  All four print rank-invariant
   results, so interpreter output and captures must match exactly. *)
(* Each app lists the variables to compare: only rank-invariant ones —
   block shapes and MPI_Comm_size() legitimately differ between the
   one-rank interpreter and a P=4 run. *)
let mixed_apps =
  [
    ( "filter",
      [ "s" ],
      {|r = MPI_Comm_rank();
p = MPI_Comm_size();
n = 16;
img = rand(n, n);
img = MPI_Bcast(0, img);
rows = n / p;
lo = r * rows + 1;
mine = img(lo:lo+rows-1, :);
MPI_Send(0, 8, mine);
s = 0;
if r == 0
  for src = 0:p-1
    g = MPI_Recv(src, 8);
    s = s + sum(sum(g));
  end
end
s = MPI_Bcast(0, s);
fprintf('%.9f\n', s);
|} );
    ( "dot+roundtrip",
      [ "t"; "u" ],
      {|a = rand(6, 6);
b = a * a';
t = sum(sum(b));
r = MPI_Comm_rank();
MPI_Send(r, 5, t);
u = MPI_Recv(r, 5);
fprintf('%.9f\n', u);
|} );
    ( "bcast-matrix",
      [ "c"; "d" ],
      {|a = rand(4, 8);
c = MPI_Bcast(0, a);
d = c .* 2 + 1;
fprintf('%.9f\n', sum(sum(d)));
|} );
    ( "probe-drained",
      [ "w"; "q" ],
      {|r = MPI_Comm_rank();
v = norm(rand(5, 1));
MPI_Send(r, 9, v);
w = MPI_Recv(r, 9);
q = MPI_Probe(r, 9);
fprintf('%.9f %g\n', w, q);
|} );
  ]

let mixed_machines =
  [
    Mpisim.Machine.meiko_cs2;
    Mpisim.Machine.enterprise_smp;
    Mpisim.Machine.sparc20_cluster;
  ]

let test_mixed_matrix () =
  List.iter
    (fun (name, capture, src) ->
      let c = compile src in
      List.iter
        (fun machine ->
          match Otter.verify (Otter.config ~machine ~nprocs:4 ~capture ()) c with
          | Otter.Verified -> ()
          | Otter.Mismatched (m :: _) ->
              Alcotest.failf "%s on %s: %s: %s" name
                machine.Mpisim.Machine.name m.Otter.variable m.Otter.detail
          | Otter.Mismatched [] -> assert false
          | Otter.Aborted { detail; _ } ->
              Alcotest.failf "%s on %s aborted: %s" name
                machine.Mpisim.Machine.name detail)
        mixed_machines)
    mixed_apps

(* --- example apps: engines bit-identical at P in {2,4,8} ----------------- *)

let examples_dir =
  lazy
    (let rec up dir n =
       if n = 0 then None
       else if Sys.file_exists (Filename.concat dir "examples/matlab") then
         Some (Filename.concat dir "examples/matlab")
       else up (Filename.dirname dir) (n - 1)
     in
     up (Sys.getcwd ()) 8)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_examples_bit_identical () =
  match Lazy.force examples_dir with
  | None -> () (* sandboxed without sources *)
  | Some dir ->
      List.iter
        (fun file ->
          let src = read_file (Filename.concat dir file) in
          let c = compile src in
          List.iter
            (fun nprocs ->
              let run engine =
                Otter.outcome_exn
                  (Otter.run (Otter.config ~nprocs ~engine ()) c)
              in
              let a = run Otter.Config.Etcode in
              let b = run Otter.Config.Eir in
              check Alcotest.string
                (Printf.sprintf "%s output P=%d" file nprocs)
                a.Exec.State.output b.Exec.State.output;
              check Alcotest.int
                (Printf.sprintf "%s messages P=%d" file nprocs)
                a.Exec.State.report.Mpisim.Sim.messages
                b.Exec.State.report.Mpisim.Sim.messages;
              checkf
                (Printf.sprintf "%s makespan P=%d" file nprocs)
                a.Exec.State.report.Mpisim.Sim.makespan
                b.Exec.State.report.Mpisim.Sim.makespan)
            [ 2; 4; 8 ])
        [ "pingpong.m"; "mpi_filter.m"; "mpi_anysrc.m" ]

(* --- bandwidth is monotone in message size ------------------------------- *)

let pingpong_sized ~n ~trips =
  Printf.sprintf
    {|r = MPI_Comm_rank();
a = rand(%d, %d);
a = MPI_Bcast(0, a);
for k = 1:%d
  if r == 0
    MPI_Send(1, 1, a);
    a = MPI_Recv(1, 2);
  end
  if r == 1
    b = MPI_Recv(0, 1);
    MPI_Send(0, 2, b);
  end
end
|}
    n n trips

let test_bandwidth_monotone () =
  List.iter
    (fun machine ->
      let bandwidth n =
        let time trips =
          let c = compile (pingpong_sized ~n ~trips) in
          (Otter.outcome_exn (Otter.run (Otter.config ~machine ~nprocs:2 ()) c))
            .Exec.State.report.Mpisim.Sim.makespan
        in
        let dt = time 2 -. time 0 in
        float_of_int (n * n) /. dt
      in
      let b1 = bandwidth 4 and b2 = bandwidth 16 and b3 = bandwidth 64 in
      Alcotest.(check bool)
        (Printf.sprintf "bandwidth monotone on %s" machine.Mpisim.Machine.name)
        true
        (b1 < b2 && b2 < b3))
    mixed_machines

(* --- the job scheduler --------------------------------------------------- *)

let sched_job name procs c =
  {
    Otter.Sched.j_name = name;
    j_procs = procs;
    j_run =
      (fun ~nprocs ->
        (Otter.outcome_exn (Otter.run (Otter.config ~nprocs ()) c))
          .Exec.State.report);
  }

let test_scheduler () =
  let c = compile pingpong_src in
  let jobs = List.init 4 (fun i -> sched_job (Printf.sprintf "pp[%d]" i) 4 c) in
  let s =
    Otter.Sched.run ~machine:Mpisim.Machine.meiko_cs2 ~procs:8 jobs
  in
  (* 4 four-rank jobs on 8 ranks: two waves of two tenants *)
  check Alcotest.int "all jobs placed" 4
    (List.length s.Otter.Sched.s_placements);
  let bases =
    List.map (fun p -> (p.Otter.Sched.p_first_rank, p.Otter.Sched.p_start))
      s.Otter.Sched.s_placements
  in
  (match bases with
  | [ (0, t0); (4, t1); (0, t2); (4, t3) ] ->
      checkf "wave 1 starts at 0 (a)" 0. t0;
      checkf "wave 1 starts at 0 (b)" 0. t1;
      Alcotest.(check bool) "wave 2 queued behind wave 1" true
        (t2 > 0. && t3 > 0.)
  | _ -> Alcotest.fail "unexpected placement");
  (* aggregate accounting: the machine report sums the tenants *)
  let sum f =
    List.fold_left
      (fun acc p -> acc + f p.Otter.Sched.p_report)
      0 s.Otter.Sched.s_placements
  in
  check Alcotest.int "messages sum over tenants"
    (sum (fun r -> r.Mpisim.Sim.messages))
    s.Otter.Sched.s_report.Mpisim.Sim.messages;
  check Alcotest.int "one job_stat row per tenant" 4
    (List.length s.Otter.Sched.s_report.Mpisim.Sim.jobs);
  Alcotest.(check bool) "throughput positive" true
    (s.Otter.Sched.s_throughput > 0.);
  (* identical job lists schedule identically (determinism) *)
  let s2 =
    Otter.Sched.run ~machine:Mpisim.Machine.meiko_cs2 ~procs:8 jobs
  in
  checkf "deterministic makespan" s.Otter.Sched.s_makespan
    s2.Otter.Sched.s_makespan

let test_scheduler_rejects () =
  let c = compile "x = 1;\n" in
  let job = sched_job "big" 32 c in
  (match
     Otter.Sched.run ~machine:Mpisim.Machine.meiko_cs2 ~procs:16 [ job ]
   with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "oversized job named" true
        (contains msg "wants 32 of 16 ranks")
  | _ -> Alcotest.fail "expected Invalid_argument");
  match
    Otter.Sched.run ~machine:Mpisim.Machine.meiko_cs2 ~procs:64 []
  with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "overscaled machine named" true
        (contains msg "has at most 16 processors")
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    t "pingpong engines agree at P in {2,4,8}" test_pingpong_engines;
    t "self-send queue is FIFO" test_self_send;
    t "circular receives deadlock" test_deadlock;
    t "any-source gather verifies across P" test_any_source_gather;
    t "unsatisfied any-source recv names the wildcard"
      test_any_source_deadlock_diagnosed;
    t "bad source rank hints the wildcard" test_any_source_bad_rank;
    t "receiving a never-sent tag is rejected" test_tag_mismatch;
    t "out-of-range ranks are diagnosed" test_rank_bounds;
    t "mixed explicit+implicit verifies on 4 apps x 3 machines"
      test_mixed_matrix;
    t "example apps bit-identical across engines" test_examples_bit_identical;
    t "bandwidth monotone in message size" test_bandwidth_monotone;
    t "scheduler space-shares and accounts tenants" test_scheduler;
    t "scheduler rejects oversized requests" test_scheduler_rejects;
  ]
