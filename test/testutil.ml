(* Shared helpers for the test suites. *)

let check = Alcotest.check
let checkf msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b

let check_close ?(tol = 1e-9) msg a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  if Float.abs (a -. b) > tol *. scale then
    Alcotest.failf "%s: %.17g vs %.17g" msg a b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_array_close ?(tol = 1e-9) msg (a : float array) (b : float array) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: lengths %d vs %d" msg (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_close ~tol (Printf.sprintf "%s[%d]" msg i) x b.(i)) a

let compile = Otter.compile

(* Run a script on [nprocs] simulated CPUs and return (output, captures). *)
let run_parallel ?(machine = Mpisim.Machine.meiko_cs2) ?(nprocs = 4) ?capture src
    =
  let c = compile src in
  let o =
    Otter.outcome_exn (Otter.run (Otter.config ~machine ~nprocs ?capture ()) c)
  in
  (o.Exec.Vm.output, o.Exec.Vm.captures)

(* Run a script in the reference interpreter (front end only: the
   interpreter supports dynamic features the compiler rejects). *)
let run_interp ?capture src =
  let ast = Analysis.Resolve.run (Mlang.Parser.parse_program src) in
  let o =
    Interp.Eval.run ?capture ~mode:Interp.Cost.Interpreter
      ~machine:Mpisim.Machine.workstation ast
  in
  (o.Interp.Eval.output, o.Interp.Eval.captures)

let vm_scalar captures name =
  match List.assoc_opt name captures with
  | Some (Exec.Vm.Cscalar f) -> f
  | Some (Exec.Vm.Cmat (1, 1, [| f |])) -> f
  | Some (Exec.Vm.Cmat (r, c, _)) ->
      Alcotest.failf "%s: expected scalar, got %dx%d matrix" name r c
  | Some (Exec.Vm.Cnd (dims, _)) ->
      Alcotest.failf "%s: expected scalar, got rank-%d tensor" name
        (Array.length dims)
  | None -> Alcotest.failf "%s: not captured" name

let vm_matrix captures name =
  match List.assoc_opt name captures with
  | Some (Exec.Vm.Cmat (r, c, d)) -> (r, c, d)
  | Some (Exec.Vm.Cscalar f) -> (1, 1, [| f |])
  | Some (Exec.Vm.Cnd (dims, _)) ->
      Alcotest.failf "%s: expected matrix, got rank-%d tensor" name
        (Array.length dims)
  | None -> Alcotest.failf "%s: not captured" name

let vm_tensor captures name =
  match List.assoc_opt name captures with
  | Some (Exec.Vm.Cnd (dims, d)) -> (dims, d)
  | Some _ -> Alcotest.failf "%s: expected tensor" name
  | None -> Alcotest.failf "%s: not captured" name

let interp_scalar captures name =
  match List.assoc_opt name captures with
  | Some (Interp.Eval.Cscalar f) -> f
  | Some (Interp.Eval.Cmat (1, 1, [| f |])) -> f
  | Some (Interp.Eval.Cmat (r, c, _)) ->
      Alcotest.failf "%s: expected scalar, got %dx%d matrix" name r c
  | Some (Interp.Eval.Cnd (dims, _)) ->
      Alcotest.failf "%s: expected scalar, got rank-%d tensor" name
        (Array.length dims)
  | None -> Alcotest.failf "%s: not captured" name

let interp_matrix captures name =
  match List.assoc_opt name captures with
  | Some (Interp.Eval.Cmat (r, c, d)) -> (r, c, d)
  | Some (Interp.Eval.Cscalar f) -> (1, 1, [| f |])
  | Some (Interp.Eval.Cnd (dims, _)) ->
      Alcotest.failf "%s: expected matrix, got rank-%d tensor" name
        (Array.length dims)
  | None -> Alcotest.failf "%s: not captured" name

let interp_tensor captures name =
  match List.assoc_opt name captures with
  | Some (Interp.Eval.Cnd (dims, d)) -> (dims, d)
  | Some _ -> Alcotest.failf "%s: expected tensor" name
  | None -> Alcotest.failf "%s: not captured" name

(* Shorthand: evaluate a script in the interpreter and give one scalar. *)
let interp_value src name =
  let _, caps = run_interp ~capture:[ name ] src in
  interp_scalar caps name

(* Shorthand: same on the 4-CPU simulated machine. *)
let parallel_value ?(nprocs = 4) src name =
  let _, caps = run_parallel ~nprocs ~capture:[ name ] src in
  vm_scalar caps name

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)
