(* SSA construction tests (paper pass 3): versioning, phi placement at
   if joins and loop headers, single-assignment invariant (also as a
   qcheck property over random structured programs). *)

open Mlang
module Ssa = Analysis.Ssa

let t name f = Alcotest.test_case name `Quick f

let convert src =
  let p = Analysis.Resolve.run (Parser.parse_program src) in
  Ssa.convert_script p.script

let rec collect_phis (b : Ssa.sblock) : Ssa.phi list =
  List.concat_map
    (function
      | Ssa.Sif (branches, els, phis) ->
          phis
          @ List.concat_map (fun (_, blk) -> collect_phis blk) branches
          @ collect_phis els
      | Ssa.Swhile (phis, _, blk) | Ssa.Sfor (_, _, phis, blk) ->
          phis @ collect_phis blk
      | _ -> [])
    b

let test_straight_line_versions () =
  let b, env = convert "x = 1;\nx = x + 1;\nx = x * 2;" in
  (match b with
  | [ Ssa.Sassign (v1, _, _); Ssa.Sassign (v2, _, _); Ssa.Sassign (v3, _, _) ]
    ->
      Alcotest.(check string) "v1" "x@1" v1;
      Alcotest.(check string) "v2" "x@2" v2;
      Alcotest.(check string) "v3" "x@3" v3
  | _ -> Alcotest.fail "three assignments expected");
  Alcotest.(check (option string)) "final version" (Some "x@3")
    (Ssa.Smap.find_opt "x" env)

let test_use_sees_previous_version () =
  let b, _ = convert "x = 1;\ny = x + x;" in
  match b with
  | [ _; Ssa.Sassign (_, { node = Ast.Binop (_, { node = Ast.Varref a; _ }, { node = Ast.Varref b2; _ }); _ }, _) ]
    ->
      Alcotest.(check string) "lhs use" "x@1" a;
      Alcotest.(check string) "rhs use" "x@1" b2
  | _ -> Alcotest.fail "shape"

let test_if_phi () =
  let b, env = convert "c = 1;\nx = 1;\nif c\n  x = 2;\nelse\n  x = 3;\nend\ny = x;"
  in
  let phis = collect_phis b in
  (match phis with
  | [ { Ssa.base = "x"; args; target } ] ->
      Alcotest.(check (list string)) "phi args" [ "x@2"; "x@3" ] args;
      Alcotest.(check (option string)) "env after if" (Some target)
        (Ssa.Smap.find_opt "x" env)
  | _ -> Alcotest.fail "one phi for x expected")

let test_if_phi_uninitialized_branch () =
  (* x assigned only in the then-branch: the phi's else argument is the
     bottom version x@0. *)
  let b, _ = convert "c = 1;\nif c\n  x = 2;\nend\n" in
  match collect_phis b with
  | [ { Ssa.base = "x"; args; _ } ] ->
      Alcotest.(check (list string)) "phi args" [ "x@1"; "x@0" ] args
  | _ -> Alcotest.fail "one phi for x expected"

let test_loop_phi () =
  let b, _ = convert "s = 0;\nfor i = 1:3\n  s = s + 1;\nend" in
  match collect_phis b with
  | [ { Ssa.base = "s"; args = [ entry; backedge ]; target } ] ->
      Alcotest.(check string) "entry arg" "s@1" entry;
      Alcotest.(check string) "backedge arg" "s@3" backedge;
      (* the body use of s refers to the phi version *)
      Alcotest.(check string) "phi target" "s@2" target
  | _ -> Alcotest.fail "one loop phi for s expected"

let test_while_condition_uses_phi () =
  let b, _ = convert "x = 10;\nwhile x > 0\n  x = x - 1;\nend" in
  match b with
  | [ _; Ssa.Swhile ([ { Ssa.target; _ } ], cond, _) ] -> (
      match cond.node with
      | Ast.Binop (_, { node = Ast.Varref v; _ }, _) ->
          Alcotest.(check string) "condition reads phi" target v
      | _ -> Alcotest.fail "condition shape")
  | _ -> Alcotest.fail "while shape"

let test_indexed_update_links_old_version () =
  let b, _ = convert "a = zeros(3, 3);\na(1, 2) = 5;" in
  match b with
  | [ _; Ssa.Supdate (nv, old, _, _) ] ->
      Alcotest.(check string) "new version" "a@2" nv;
      Alcotest.(check string) "old version" "a@1" old
  | _ -> Alcotest.fail "update shape"

let test_multi_assign_versions () =
  let b, _ = convert "A = ones(2, 3);\n[r, c] = size(A);" in
  match b with
  | [ _; Ssa.Smulti ([ (v1, "r"); (v2, "c") ], _) ] ->
      Alcotest.(check string) "r version" "r@1" v1;
      Alcotest.(check string) "c version" "c@1" v2
  | _ -> Alcotest.fail "multi shape"

let test_function_namespacing () =
  let p =
    Analysis.Resolve.run
      (Parser.parse_program "x = 1;\ny = f(x);\nfunction r = f(x)\n  r = x;\nend")
  in
  let f = List.hd p.funcs in
  let sf = Ssa.convert_func f in
  Alcotest.(check (list string)) "params namespaced" [ "f:x@1" ] sf.sf_params;
  Alcotest.(check (option string)) "scope" (Some "f")
    (Ssa.scope_of_version "f:x@1");
  Alcotest.(check string) "base" "x" (Ssa.base_of_version "f:x@1")

let test_single_assignment_basic () =
  List.iter
    (fun src ->
      let b, _ = convert src in
      Alcotest.(check bool)
        (Printf.sprintf "single assignment for %S" src)
        true
        (Ssa.single_assignment_holds b))
    [
      "x = 1; x = 2; x = x + x;";
      "c = 1;\nif c\n x = 1;\nelse\n x = 2;\nend\ny = x;";
      "s = 0;\nfor i = 1:10\n  if s > 3\n    s = 0;\n  end\n  s = s + i;\nend";
      "x = 5;\nwhile x > 0\n  x = x - 1;\n  y = x * 2;\nend\nz = y;";
    ]

(* qcheck: random structured programs keep the single-assignment
   property. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let expr =
    oneof
      [
        map string_of_int (int_bound 9);
        var;
        map2 (Printf.sprintf "%s + %s") var var;
      ]
  in
  let assign = map2 (Printf.sprintf "%s = %s;") var expr in
  let rec block n =
    if n <= 0 then assign
    else
      frequency
        [
          (4, assign);
          ( 2,
            map2
              (fun a b -> a ^ "\n" ^ b)
              (block (n / 2)) (block (n / 2)) );
          ( 1,
            map2
              (Printf.sprintf "if x > 0\n%s\nelse\n%s\nend")
              (block (n - 1)) (block (n - 1)) );
          ( 1,
            map
              (Printf.sprintf "for i = 1:3\n%s\nend")
              (block (n - 1)) );
          ( 1,
            map
              (Printf.sprintf "while x > 0\nx = x - 1;\n%s\nend")
              (block (n - 1)) );
        ]
  in
  map (fun b -> "x = 1; y = 1; z = 1;\n" ^ b) (block 4)

let single_assignment_prop src =
  let b, _ = convert src in
  Ssa.single_assignment_holds b

let suite =
  [
    t "straight-line versions" test_straight_line_versions;
    t "uses see previous version" test_use_sees_previous_version;
    t "if-join phi" test_if_phi;
    t "phi with uninitialized branch" test_if_phi_uninitialized_branch;
    t "loop-header phi" test_loop_phi;
    t "while condition uses phi" test_while_condition_uses_phi;
    t "indexed update links old version" test_indexed_update_links_old_version;
    t "multiple assignment versions" test_multi_assign_versions;
    t "function version namespacing" test_function_namespacing;
    t "single-assignment invariant" test_single_assignment_basic;
    Testutil.qtest ~count:200 "single assignment on random programs"
      (QCheck.make ~print:(fun s -> s) gen_program)
      single_assignment_prop;
  ]
