(* The differential fuzzing oracle in tier 1: replay the checked-in
   regression corpus (one minimized script per fixed semantic bug) and
   a small budget of fresh random cases.  The nightly CI job runs the
   same oracle with a 10k-case budget. *)

let t name f = Alcotest.test_case name `Quick f

(* Locate the repository root from the dune sandbox. *)
let corpus_dir =
  lazy
    (let rec up dir n =
       if n = 0 then None
       else if Sys.file_exists (Filename.concat dir "test/corpus/fuzz") then
         Some (Filename.concat dir "test/corpus/fuzz")
       else up (Filename.dirname dir) (n - 1)
     in
     up (Sys.getcwd ()) 8)

let test_corpus_replay () =
  match Lazy.force corpus_dir with
  | None -> () (* sandboxed without sources: nothing to check *)
  | Some dir ->
      let failures, total = Fuzz.replay dir in
      Alcotest.(check bool) "corpus nonempty" true (total >= 5);
      List.iter
        (fun f ->
          Alcotest.failf "corpus script %s: %s" f.Fuzz.file f.Fuzz.reason)
        failures

let test_random_cases () =
  match Fuzz.run_random ~cases:25 ~seed:3 () with
  | Fuzz.All_passed s ->
      Alcotest.(check int) "all compared" s.Fuzz.cases
        (s.Fuzz.passed + s.Fuzz.discarded)
  | Fuzz.Counterexample { script; detail; _ } ->
      Alcotest.failf "counterexample (%s):\n%s" detail script

(* The rank-N grammar the nightly job enables with --rank3. *)
let test_random_rank3 () =
  match Fuzz.run_random ~rank3:true ~cases:25 ~seed:7 () with
  | Fuzz.All_passed s ->
      Alcotest.(check int) "all compared" s.Fuzz.cases
        (s.Fuzz.passed + s.Fuzz.discarded)
  | Fuzz.Counterexample { script; detail; _ } ->
      Alcotest.failf "rank-3 counterexample (%s):\n%s" detail script

(* The oracle infrastructure itself: output comparison must absorb
   benign formatting differences but reject real ones. *)
let test_outputs_agree () =
  Alcotest.(check bool) "equal" true (Fuzz.outputs_agree "1.5\n2\n" "1.5\n2\n" = None);
  Alcotest.(check bool) "tolerance" true
    (Fuzz.outputs_agree "0.30000000000000004\n" "0.3\n" = None);
  Alcotest.(check bool) "nan" true (Fuzz.outputs_agree "nan\n" "-nan\n" = None);
  Alcotest.(check bool) "value differs" true
    (Fuzz.outputs_agree "1\n" "2\n" <> None);
  Alcotest.(check bool) "length differs" true
    (Fuzz.outputs_agree "1\n" "1\n2\n" <> None)

let suite =
  [
    t "corpus replay" test_corpus_replay;
    t "random differential cases" test_random_cases;
    t "random rank-3 cases" test_random_rank3;
    t "output comparison" test_outputs_agree;
  ]
