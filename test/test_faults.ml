(* Fault-injection and recovery tests: the deterministic fault model,
   the reliable ack/retry layer, graceful degradation of the VM, and
   the headline guarantee — under injected faults with the reliable
   layer on, every paper application completes bit-for-bit identical
   to a fault-free run on every machine model. *)

module Sim = Mpisim.Sim
module Machine = Mpisim.Machine
module Reliable = Mpisim.Reliable

let t name f = Alcotest.test_case name `Quick f

let faults spec =
  match Machine.faults_of_spec spec with
  | Ok f -> f
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg

(* A lossy variant of a machine, with or without the reliable layer. *)
let faulty ?(reliable = true) spec m =
  Machine.with_faults ~reliable ~faults:(faults spec) m

(* --- the fault-spec parser ---------------------------------------------- *)

let test_spec_parser () =
  let f = faults "drop=0.01,dup=0.005,seed=42" in
  Alcotest.(check int) "seed" 42 f.Machine.fault_seed;
  Testutil.check_close "drop" 0.01 f.Machine.drop;
  Testutil.check_close "dup" 0.005 f.Machine.dup;
  Testutil.check_close "delay off" 0. f.Machine.delay;
  (match Machine.faults_of_spec "frobnicate=1" with
  | Error msg ->
      Alcotest.(check bool) "names bad key" true
        (Testutil.contains msg "frobnicate")
  | Ok _ -> Alcotest.fail "unknown key must be rejected");
  match Machine.faults_of_spec "drop=lots" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad number must be rejected"

(* --- point-to-point under loss ------------------------------------------ *)

(* One sender, one receiver, a stream of messages over a very lossy
   link.  With the reliable layer the stream arrives intact and in
   order; the report shows the recovery work. *)
let test_reliable_stream_survives_loss () =
  let m = faulty "drop=0.3,seed=11" Machine.sparc20_cluster in
  let n = 40 in
  let results, r =
    Sim.run ~machine:m ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          for i = 1 to n do
            Reliable.send ~dst:1 ~tag:5 (Sim.Floats [| float_of_int i |])
          done;
          []
        end
        else
          List.init n (fun _ ->
              match Reliable.recv ~src:0 ~tag:5 with
              | Sim.Floats [| x |] -> x
              | _ -> nan))
  in
  Alcotest.(check (list (float 0.)))
    "in order, no loss"
    (List.init n (fun i -> float_of_int (i + 1)))
    results.(1);
  Alcotest.(check bool) "faults actually fired" true (r.Sim.drops > 0);
  Alcotest.(check bool) "losses were retransmitted" true
    (r.Sim.retries >= r.Sim.drops / 2)

(* Duplicates injected by the network are silently discarded. *)
let test_reliable_filters_duplicates () =
  let m = faulty "dup=0.5,seed=3" Machine.sparc20_cluster in
  let n = 25 in
  let results, r =
    Sim.run ~machine:m ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          for i = 1 to n do
            Reliable.send ~dst:1 ~tag:2 (Sim.Ints [| i |])
          done;
          []
        end
        else
          List.init n (fun _ ->
              match Reliable.recv_ints ~src:0 ~tag:2 with
              | [| x |] -> x
              | _ -> -1))
  in
  Alcotest.(check (list int)) "exactly once"
    (List.init n (fun i -> i + 1))
    results.(1);
  Alcotest.(check bool) "duplicates injected" true (r.Sim.dups > 0)

(* Without the reliable layer, a dropped message surfaces as a typed
   [Timeout] naming the waiting rank and the missing (src, tag) — never
   an unattributed Deadlock. *)
let test_unreliable_drop_is_typed_timeout () =
  let m =
    faulty ~reliable:false "drop=1.0,detect=0.5,seed=1" Machine.sparc20_cluster
  in
  match
    Sim.run ~machine:m ~nprocs:2 (fun rank ->
        if rank = 0 then Sim.send ~dst:1 ~tag:7 (Sim.Floats [| 1. |])
        else ignore (Sim.recv ~src:0 ~tag:7))
  with
  | exception Sim.Rank_failure
      { rank = 1; exn = Sim.Timeout { rank = 1; src = 0; tag = 7; waited } }
    ->
      Testutil.check_close "detect deadline" 0.5 waited
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "dropped message must surface as Timeout"

(* The sender's retransmission budget is finite: a dead link raises a
   typed [Exhausted] with the attempt count. *)
let test_retries_exhaust_on_dead_link () =
  let m = faulty "drop=1.0,seed=5" Machine.sparc20_cluster in
  match
    Sim.run ~machine:m ~nprocs:2 (fun rank ->
        if rank = 0 then Reliable.send ~dst:1 ~tag:1 (Sim.Floats [| 1. |])
        else ignore (Sim.recv_opt ~src:0 ~tag:0 ~timeout:1e6))
  with
  | exception Sim.Rank_failure
      { rank = 0; exn = Reliable.Exhausted { rank = 0; dst = 1; tag = 1; attempts } }
    ->
      Alcotest.(check int) "attempts" (Reliable.max_retries + 1) attempts
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "dead link must exhaust the retry budget"

(* Delay spikes and rank stalls slow the run down without changing
   results, and are counted in the report. *)
let test_delay_and_stall_cost_time () =
  let body rank =
    if rank = 0 then
      for i = 1 to 20 do
        Reliable.send ~dst:1 ~tag:1 (Sim.Ints [| i |])
      done
    else
      for _ = 1 to 20 do
        ignore (Reliable.recv ~src:0 ~tag:1)
      done
  in
  let _, clean = Sim.run ~machine:Machine.sparc20_cluster ~nprocs:2 body in
  let m = faulty "delay=0.5,stall=0.3,seed=9" Machine.sparc20_cluster in
  let _, r = Sim.run ~machine:m ~nprocs:2 body in
  Alcotest.(check bool) "delays injected" true (r.Sim.delayed > 0);
  Alcotest.(check bool) "stalls injected" true (r.Sim.stalls > 0);
  Alcotest.(check bool) "slower than clean" true
    (r.Sim.makespan > clean.Sim.makespan)

(* Same seed, same schedule: the fault counters are a pure function of
   the seed.  A different seed draws a different schedule. *)
let test_fault_schedule_reproducible () =
  let body rank =
    if rank = 0 then
      for i = 1 to 30 do
        Reliable.send ~dst:1 ~tag:1 (Sim.Ints [| i |])
      done
    else
      for _ = 1 to 30 do
        ignore (Reliable.recv ~src:0 ~tag:1)
      done
  in
  let run seed =
    let m =
      faulty (Printf.sprintf "drop=0.2,dup=0.1,seed=%d" seed)
        Machine.sparc20_cluster
    in
    snd (Sim.run ~machine:m ~nprocs:2 body)
  in
  let a = run 42 and b = run 42 and c = run 43 in
  Alcotest.(check int) "same drops" a.Sim.drops b.Sim.drops;
  Alcotest.(check int) "same dups" a.Sim.dups b.Sim.dups;
  Alcotest.(check int) "same retries" a.Sim.retries b.Sim.retries;
  Testutil.check_close "same makespan" a.Sim.makespan b.Sim.makespan;
  Alcotest.(check bool) "different seed, different schedule" true
    (a.Sim.drops <> c.Sim.drops || a.Sim.dups <> c.Sim.dups
    || a.Sim.makespan <> c.Sim.makespan)

(* Reliable collectives: a lossy allreduce still agrees everywhere. *)
let test_collectives_survive_loss () =
  let m = faulty "drop=0.15,dup=0.05,seed=21" Machine.sparc20_cluster in
  let results, r =
    Sim.run ~machine:m ~nprocs:8 (fun rank ->
        Mpisim.Coll.allreduce_scalar ~op:Mpisim.Coll.Sum (float_of_int rank))
  in
  Array.iter (Testutil.check_close "allreduce sum" 28.) results;
  Alcotest.(check bool) "faults actually fired" true (r.Sim.drops > 0)

(* --- the headline guarantee (acceptance criterion) ---------------------- *)

(* Every paper application, on every parallel machine model, under
   injected faults with the reliable layer on: completes with captures
   and output bit-for-bit identical to the fault-free run. *)
let test_apps_bit_for_bit_under_faults () =
  let spec = "drop=0.02,dup=0.01,delay=0.01,seed=42" in
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = Otter.compile (app.source 8) in
      List.iter
        (fun m ->
          let nprocs = min 4 m.Machine.max_procs in
          let clean =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~capture:app.capture ~machine:m ~nprocs ())
                 c)
          in
          let fm = faulty spec m in
          let faulted =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~capture:app.capture ~machine:fm ~nprocs ())
                 c)
          in
          let where = Printf.sprintf "%s on %s" app.key m.Machine.name in
          Alcotest.(check bool)
            (where ^ ": captures bit-for-bit")
            true
            (clean.Exec.Vm.captures = faulted.Exec.Vm.captures);
          Alcotest.(check string)
            (where ^ ": output identical")
            clean.Exec.Vm.output faulted.Exec.Vm.output)
        [ Machine.meiko_cs2; Machine.enterprise_smp; Machine.sparc20_cluster ])
    Apps.Scripts.apps

(* And they still verify against the reference interpreter. *)
let test_apps_verify_under_faults () =
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = Otter.compile (app.source 8) in
      let m = faulty "drop=0.05,seed=7" Machine.sparc20_cluster in
      match
        Otter.verify
          (Otter.config ~machine:m ~nprocs:4 ~capture:app.capture ())
          c
      with
      | Otter.Verified -> ()
      | Otter.Mismatched ms ->
          Alcotest.failf "%s: %d mismatches under faults" app.key
            (List.length ms)
      | Otter.Aborted { failed_rank; operation; detail; _ } ->
          Alcotest.failf "%s aborted: rank %d during %s: %s" app.key
            failed_rank operation detail)
    Apps.Scripts.apps

(* --- graceful degradation of the VM ------------------------------------- *)

(* Without the reliable layer, a faulted app run degrades to a
   structured [Partial] naming the failing rank and operation. *)
let test_vm_partial_names_rank_and_operation () =
  let app =
    match Apps.Scripts.find "cg" with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 8) in
  let m =
    faulty ~reliable:false "drop=1.0,detect=0.1,seed=2" Machine.sparc20_cluster
  in
  match
    (Otter.run (Otter.config ~capture:app.capture ~machine:m ~nprocs:4 ()) c)
      .Exec.Vm.r_result
  with
  | Exec.Vm.Partial { failed_rank; operation; detail; _ } ->
      Alcotest.(check bool) "rank in range" true
        (failed_rank >= 0 && failed_rank < 4);
      Alcotest.(check bool) "operation non-empty" true (operation <> "");
      Alcotest.(check bool) "detail names the message" true
        (Testutil.contains detail "src=")
  | Exec.Vm.Complete _ ->
      Alcotest.fail "total loss without the reliable layer cannot complete"

let suite =
  [
    t "fault spec parser" test_spec_parser;
    t "reliable stream survives loss" test_reliable_stream_survives_loss;
    t "reliable filters duplicates" test_reliable_filters_duplicates;
    t "unreliable drop is a typed timeout" test_unreliable_drop_is_typed_timeout;
    t "retries exhaust on a dead link" test_retries_exhaust_on_dead_link;
    t "delay and stall cost time" test_delay_and_stall_cost_time;
    t "fault schedule reproducible" test_fault_schedule_reproducible;
    t "collectives survive loss" test_collectives_survive_loss;
    t "apps bit-for-bit under faults" test_apps_bit_for_bit_under_faults;
    t "apps verify under faults" test_apps_verify_under_faults;
    t "VM partial names rank and operation" test_vm_partial_names_rank_and_operation;
  ]
