(* Machine-simulator tests: timing model, scheduling, contention,
   determinism, deadlock detection. *)

module Sim = Mpisim.Sim
module Machine = Mpisim.Machine

let t name f = Alcotest.test_case name `Quick f

(* A dedicated-link test machine with easy numbers: 1 us latency,
   1 MB/s bandwidth, no overheads, 1 Gflop/s. *)
let lab ?(channel = None) () =
  {
    Machine.name = "lab";
    max_procs = 64;
    flop_time = 1e-9;
    interp_overhead = 0.;
    send_overhead = 0.;
    recv_overhead = 0.;
    link = (fun _ _ -> { Machine.latency = 1e-6; bandwidth = 1e6; channel });
    faults = None;
    reliable = false;
    placement = None;
  }

let test_compute_advances_clock () =
  let _, r =
    Sim.run ~machine:(lab ()) ~nprocs:1 (fun _ -> Sim.compute 0.25)
  in
  Testutil.check_close "makespan" 0.25 r.Sim.makespan

let test_flops_use_machine_rate () =
  let _, r = Sim.run ~machine:(lab ()) ~nprocs:1 (fun _ -> Sim.flops 1e6) in
  Testutil.check_close "1e6 flops at 1ns" 1e-3 r.Sim.makespan

let test_message_timing () =
  (* 1000 doubles = 8000 bytes at 1 MB/s = 8 ms, plus 1 us latency. *)
  let _, r =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then Sim.send ~dst:1 ~tag:1 (Sim.Floats (Array.make 1000 0.))
        else ignore (Sim.recv ~src:0 ~tag:1))
  in
  Testutil.check_close "latency + serialization" (8e-3 +. 1e-6) r.Sim.makespan;
  Alcotest.(check int) "bytes counted" 8000 r.Sim.bytes;
  Alcotest.(check int) "one message" 1 r.Sim.messages

let test_receiver_waits_for_arrival () =
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.compute 1.0;
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 42. |]);
          0.
        end
        else begin
          ignore (Sim.recv ~src:0 ~tag:1);
          Sim.time ()
        end)
  in
  Alcotest.(check bool) "receiver clock past sender's send time" true
    (results.(1) >= 1.0)

let test_sender_does_not_block () =
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.send ~dst:1 ~tag:1 (Sim.Floats (Array.make 100000 0.));
          Sim.time ()
        end
        else begin
          Sim.compute 10.;
          ignore (Sim.recv ~src:0 ~tag:1);
          0.
        end)
  in
  Alcotest.(check bool) "eager send returns immediately" true
    (results.(0) < 1e-3)

let test_fifo_order_per_pair () =
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 1. |]);
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 2. |]);
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 3. |]);
          []
        end
        else
          List.map
            (fun _ ->
              match Sim.recv ~src:0 ~tag:1 with
              | Sim.Floats [| x |] -> x
              | _ -> nan)
            [ (); (); () ])
  in
  Alcotest.(check (list (float 0.))) "in order" [ 1.; 2.; 3. ] results.(1)

let test_tags_demultiplex () =
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.send ~dst:1 ~tag:7 (Sim.Floats [| 7. |]);
          Sim.send ~dst:1 ~tag:5 (Sim.Floats [| 5. |]);
          0.
        end
        else begin
          (* receive in the opposite order of sending *)
          let a = Sim.recv_floats ~src:0 ~tag:5 in
          let b = Sim.recv_floats ~src:0 ~tag:7 in
          (a.(0) *. 10.) +. b.(0)
        end)
  in
  Testutil.check_close "tag matching" 57. results.(1)

let test_payload_copied_on_send () =
  (* Mutating the buffer after send must not affect the receiver. *)
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          let buf = [| 1.; 2. |] in
          Sim.send ~dst:1 ~tag:1 (Sim.Floats buf);
          buf.(0) <- 99.;
          0.
        end
        else (Sim.recv_floats ~src:0 ~tag:1).(0))
  in
  Testutil.check_close "copy semantics" 1. results.(1)

let test_shared_channel_serializes () =
  (* Two simultaneous 8 KB transfers on one shared channel take twice
     as long as on dedicated links. *)
  let payload () = Sim.Floats (Array.make 1000 0.) in
  let body rank =
    if rank = 0 || rank = 1 then
      Sim.send ~dst:(rank + 2) ~tag:1 (payload ())
    else ignore (Sim.recv ~src:(rank - 2) ~tag:1)
  in
  let _, shared = Sim.run ~machine:(lab ~channel:(Some 0) ()) ~nprocs:4 body in
  let _, dedicated = Sim.run ~machine:(lab ()) ~nprocs:4 body in
  Testutil.check_close ~tol:1e-6 "dedicated overlap" (8e-3 +. 1e-6)
    dedicated.Sim.makespan;
  Alcotest.(check bool) "shared serializes" true
    (shared.Sim.makespan > 1.9 *. dedicated.Sim.makespan)

let test_contention_respects_virtual_time () =
  (* A rank that sends late must not be charged for an early rank's
     channel reservation made in wall-clock scheduling order. *)
  let _, r =
    Sim.run ~machine:(lab ~channel:(Some 0) ()) ~nprocs:4 (fun rank ->
        match rank with
        | 0 -> Sim.send ~dst:2 ~tag:1 (Sim.Floats (Array.make 1000 0.))
        | 1 ->
            (* long compute first: its send happens at t=1s, when the
               channel has long been idle again *)
            Sim.compute 1.0;
            Sim.send ~dst:3 ~tag:1 (Sim.Floats (Array.make 1000 0.))
        | 2 -> ignore (Sim.recv ~src:0 ~tag:1)
        | _ -> ignore (Sim.recv ~src:1 ~tag:1))
  in
  (* makespan = 1s + one transfer, NOT 1s + queued-behind-everything *)
  Testutil.check_close ~tol:1e-3 "no false queueing" (1.0 +. 8e-3) r.Sim.makespan

let test_determinism () =
  let body rank =
    let v = Mpisim.Coll.allreduce_scalar ~op:Mpisim.Coll.Sum (float_of_int rank) in
    Sim.flops (100. *. v);
    v
  in
  let _, r1 = Sim.run ~machine:Machine.sparc20_cluster ~nprocs:16 body in
  let _, r2 = Sim.run ~machine:Machine.sparc20_cluster ~nprocs:16 body in
  Testutil.check_close "same makespan" r1.Sim.makespan r2.Sim.makespan;
  Alcotest.(check int) "same messages" r1.Sim.messages r2.Sim.messages

let test_deadlock_detection () =
  (match
     Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
         ignore (Sim.recv ~src:(1 - rank) ~tag:9))
   with
  | exception Sim.Deadlock _ -> ()
  | _ -> Alcotest.fail "cross recv must deadlock");
  match
    Sim.run ~machine:(lab ()) ~nprocs:1 (fun _ -> ignore (Sim.recv ~src:0 ~tag:1))
  with
  | exception Sim.Deadlock _ -> ()
  | _ -> Alcotest.fail "self recv with no message must deadlock"

let test_bad_ranks_rejected () =
  (match
     Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
         if rank = 0 then Sim.send ~dst:5 ~tag:1 (Sim.Floats [| 1. |]))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad destination must be rejected");
  match Sim.run ~machine:Machine.enterprise_smp ~nprocs:12 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many processors must be rejected"

let test_rank_exception_propagates () =
  (* A failure on any rank aborts the whole simulation, wrapped with
     the failing rank's identity (the VM relies on this attribution). *)
  match
    Sim.run ~machine:(lab ()) ~nprocs:4 (fun rank ->
        if rank = 2 then failwith "injected fault";
        Sim.compute 1.)
  with
  | exception Sim.Rank_failure { rank; exn = Failure msg } ->
      Alcotest.(check int) "failing rank named" 2 rank;
      Alcotest.(check string) "message" "injected fault" msg
  | _ -> Alcotest.fail "exception must propagate out of run"

let test_exception_after_communication () =
  (* Fault after messages are in flight: still propagates cleanly. *)
  match
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 1. |]);
          Sim.compute 1.
        end
        else begin
          ignore (Sim.recv ~src:0 ~tag:1);
          failwith "late fault"
        end)
  with
  | exception Sim.Rank_failure { rank; exn = Failure msg } ->
      Alcotest.(check int) "failing rank named" 1 rank;
      Alcotest.(check string) "message" "late fault" msg
  | _ -> Alcotest.fail "late exception must propagate"

(* --- wildcard-source receive -------------------------------------------- *)

let test_recv_any_earliest_arrival () =
  (* Three workers finish at staggered times; the wildcard receive must
     deliver in arrival order, not rank order. *)
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:4 (fun rank ->
        if rank = 0 then
          List.init 3 (fun _ -> Sim.recv_any ~tag:7)
          |> List.map (fun (src, p) ->
                 match p with
                 | Sim.Floats [| v |] -> (src, v)
                 | _ -> Alcotest.fail "unexpected payload")
        else begin
          (* rank 3 finishes first, then 2, then 1 *)
          Sim.compute (float_of_int (4 - rank) *. 0.1);
          Sim.send ~dst:0 ~tag:7 (Sim.Floats [| float_of_int (10 * rank) |]);
          []
        end)
  in
  Alcotest.(check (list (pair int (float 0.))))
    "arrival order, value matches source"
    [ (3, 30.); (2, 20.); (1, 10.) ]
    results.(0)

let test_recv_any_tie_lowest_source () =
  (* Both workers send at t=0 over identical links: the tie must go to
     the lowest source rank, deterministically. *)
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:3 (fun rank ->
        if rank = 0 then begin
          let first = fst (Sim.recv_any ~tag:7) in
          let second = fst (Sim.recv_any ~tag:7) in
          (first, second)
        end
        else begin
          Sim.send ~dst:0 ~tag:7 (Sim.Floats [| 1. |]);
          (-1, -1)
        end)
  in
  Alcotest.(check (pair int int)) "lowest source wins the tie" (1, 2)
    results.(0)

let test_probe_any_source () =
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:3 (fun rank ->
        if rank = 0 then begin
          let before = Sim.probe ~src:(-1) ~tag:7 in
          ignore (Sim.recv ~src:2 ~tag:9); (* wait until the send landed *)
          let after = Sim.probe ~src:(-1) ~tag:7 in
          ignore (Sim.recv_any ~tag:7);
          let drained = Sim.probe ~src:(-1) ~tag:7 in
          (before, after, drained)
        end
        else if rank = 1 then begin
          Sim.send ~dst:0 ~tag:7 (Sim.Floats [| 5. |]);
          (false, false, false)
        end
        else begin
          Sim.compute 0.5;
          Sim.send ~dst:0 ~tag:9 (Sim.Floats [| 0. |]);
          (false, false, false)
        end)
  in
  Alcotest.(check (triple bool bool bool))
    "probe any: empty, pending, drained" (false, true, false) results.(0)

let test_recv_any_deadlock_diagnostic () =
  (* A wildcard wait nobody satisfies must end the run as a deadlock
     whose diagnostic names the wildcard. *)
  match
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then ignore (Sim.recv_any ~tag:9))
  with
  | exception Sim.Deadlock msg ->
      Alcotest.(check bool) "diagnostic names the wildcard wait" true
        (Testutil.contains msg "rank 0 waits for (src=any, tag=9)")
  | _ -> Alcotest.fail "unsatisfied wildcard recv must deadlock"

let test_reliable_recv_any () =
  (* The wildcard composes with the reliable (ack/retry) transport:
     sequence numbers are tracked per discovered source. *)
  let machine = Machine.with_faults ~reliable:true (lab ()) in
  let results, _ =
    Sim.run ~machine ~nprocs:3 (fun rank ->
        if rank = 0 then
          List.init 4 (fun _ ->
              match Mpisim.Reliable.recv_any ~tag:7 with
              | src, Sim.Floats [| v |] -> (src, v)
              | _ -> Alcotest.fail "unexpected payload")
          |> List.fold_left (fun acc (src, v) -> acc +. (v *. 1.) +. float_of_int src) 0.
        else begin
          Mpisim.Reliable.send ~dst:0 ~tag:7 (Sim.Floats [| float_of_int rank |]);
          Mpisim.Reliable.send ~dst:0 ~tag:7 (Sim.Floats [| float_of_int (10 * rank) |]);
          0.
        end)
  in
  (* 1 + 10 + 2 + 20 payload, 1 + 1 + 2 + 2 source ranks *)
  Testutil.check_close "all four messages, sources attributed" 39. results.(0)

(* --- timeouts and failure attribution ---------------------------------- *)

let contains = Testutil.contains

let test_deadlock_names_parties () =
  (* The diagnosis must say which rank waits for which (src, tag). *)
  match
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        ignore (Sim.recv ~src:(1 - rank) ~tag:9))
  with
  | exception Sim.Deadlock msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " in diagnosis") true
            (contains msg needle))
        [ "rank 0 waits for (src=1, tag=9)"; "rank 1 waits for (src=0, tag=9)" ]
  | _ -> Alcotest.fail "cross recv must deadlock"

let test_recv_timeout_expires () =
  (* No sender: the timed receive must come back [None] at exactly the
     deadline, with the rank's clock advanced to it. *)
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then (Sim.compute 1.; 0.)
        else begin
          match Sim.recv_opt ~src:0 ~tag:1 ~timeout:0.25 with
          | None -> Sim.time ()
          | Some _ -> -1.
        end)
  in
  Testutil.check_close "clock at deadline" 0.25 results.(1)

let test_recv_timeout_typed_exception () =
  match
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then Sim.compute 1.
        else ignore (Sim.recv_timeout ~src:0 ~tag:3 ~timeout:0.5))
  with
  | exception Sim.Rank_failure
      { rank = 1; exn = Sim.Timeout { rank = 1; src = 0; tag = 3; waited } }
    ->
      Testutil.check_close "waited" 0.5 waited
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "recv_timeout must raise Timeout"

let test_recv_within_timeout_delivers () =
  (* The message arrives before the deadline: normal delivery. *)
  let results, _ =
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then begin
          Sim.compute 0.1;
          Sim.send ~dst:1 ~tag:1 (Sim.Floats [| 7. |]);
          0.
        end
        else
          match Sim.recv_opt ~src:0 ~tag:1 ~timeout:5.0 with
          | Some (Sim.Floats [| x |]) -> x
          | _ -> -1.)
  in
  Testutil.check_close "delivered" 7. results.(1)

let test_protocol_error_on_wrong_kind () =
  match
    Sim.run ~machine:(lab ()) ~nprocs:2 (fun rank ->
        if rank = 0 then Sim.send ~dst:1 ~tag:1 (Sim.Ints [| 1 |])
        else ignore (Sim.recv_floats ~src:0 ~tag:1))
  with
  | exception Sim.Rank_failure
      { exn = Sim.Protocol_error { rank = 1; src = 0; tag = 1; _ }; _ } ->
      ()
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "float receive of an int payload must be typed"

let test_machine_lookup () =
  let is name m =
    match Machine.by_name name with
    | Some found -> found == m
    | None -> false
  in
  Alcotest.(check bool) "meiko" true (is "meiko" Machine.meiko_cs2);
  Alcotest.(check bool) "smp" true (is "smp" Machine.enterprise_smp);
  Alcotest.(check bool) "cluster" true (is "cluster" Machine.sparc20_cluster);
  Alcotest.(check bool) "beowulf" true (is "beowulf" Machine.beowulf);
  Alcotest.(check bool) "unknown" true (Machine.by_name "cray" = None)

let test_cluster_topology () =
  (* intra-node links are fast, inter-node links go over the Ethernet *)
  let m = Machine.sparc20_cluster in
  let intra = m.Machine.link 0 3 and inter = m.Machine.link 3 4 in
  Alcotest.(check bool) "intra faster" true
    (intra.Machine.latency < inter.Machine.latency /. 10.);
  Alcotest.(check bool) "ethernet shared" true
    (inter.Machine.channel <> None
    && inter.Machine.channel = (m.Machine.link 8 0).Machine.channel);
  Alcotest.(check bool) "ethernet is not a node bus" true
    (List.for_all
       (fun node_pair ->
         (m.Machine.link node_pair (node_pair + 1)).Machine.channel
         <> inter.Machine.channel)
       [ 0; 4; 8; 12 ]);
  Alcotest.(check bool) "node buses distinct" true
    ((m.Machine.link 0 1).Machine.channel <> (m.Machine.link 4 5).Machine.channel)

(* --- virtual-rank placement and the fat-tree model --------------------- *)

(* A ring exchange whose per-rank results capture finish times. *)
let ring_spmd nprocs rank =
  let next = (rank + 1) mod nprocs and prev = (rank + nprocs - 1) mod nprocs in
  Sim.compute 1e-4;
  Sim.send ~dst:next ~tag:7 (Sim.Floats (Array.make 64 (float_of_int rank)));
  ignore (Sim.recv ~src:prev ~tag:7);
  Sim.time ()

let test_placement_identity () =
  (* one CPU per rank under Map_block is the identity mapping: the run
     must be bit-identical to the same machine without a placement *)
  let m = lab () in
  let mp = Machine.with_placement ~cpus:8 ~map:Machine.Map_block m in
  let r1, rep1 = Sim.run ~machine:m ~nprocs:8 (ring_spmd 8) in
  let r2, rep2 = Sim.run ~machine:mp ~nprocs:8 (ring_spmd 8) in
  Alcotest.(check (array (float 0.))) "per-rank times identical" r1 r2;
  Alcotest.(check (float 0.)) "makespan identical" rep1.Sim.makespan
    rep2.Sim.makespan;
  Alcotest.(check int) "messages identical" rep1.Sim.messages rep2.Sim.messages

let test_placement_serializes_compute () =
  (* 8 ranks on 1 CPU: the compute phases cannot overlap, so the
     makespan is at least 8x the single-rank compute *)
  let work = 1e-3 in
  let run cpus =
    let m = Machine.with_placement ~cpus ~map:Machine.Map_block (lab ()) in
    let _, r = Sim.run ~machine:m ~nprocs:8 (fun _ -> Sim.compute work) in
    r.Sim.makespan
  in
  Alcotest.(check bool) "1 CPU serializes" true (run 1 >= 8. *. work -. 1e-12);
  Alcotest.(check bool) "8 CPUs overlap" true (run 8 < 2. *. work)

let test_placement_random_deterministic () =
  let time seed =
    let m =
      Machine.with_placement ~cpus:4 ~map:(Machine.Map_random seed) (lab ())
    in
    let _, r = Sim.run ~machine:m ~nprocs:16 (ring_spmd 16) in
    r.Sim.makespan
  in
  Alcotest.(check (float 0.)) "same seed, same schedule" (time 11) (time 11)

let test_mapping_of_string () =
  Alcotest.(check bool) "block" true
    (Machine.mapping_of_string "block" = Some Machine.Map_block);
  Alcotest.(check bool) "cyclic" true
    (Machine.mapping_of_string "cyclic" = Some Machine.Map_cyclic);
  Alcotest.(check bool) "random seeded" true
    (Machine.mapping_of_string ~seed:9 "random" = Some (Machine.Map_random 9));
  Alcotest.(check bool) "unknown" true
    (Machine.mapping_of_string "spiral" = None)

let test_oversubscribe_needs_placement () =
  (* more ranks than CPUs without a placement: the diagnostic points at
     --cpus/--map rather than failing with a bare bounds error *)
  match Sim.run ~machine:(lab ()) ~nprocs:65 (fun _ -> ()) with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "mentions --cpus" true
        (Testutil.contains msg "--cpus")
  | _ -> Alcotest.fail "65 ranks on a 64-CPU machine should be rejected"

let test_fattree_topology () =
  (* radix 2, 3 levels: 8 leaves; 0<->1 share a leaf switch, 0<->7 cross
     the root, so the far link is strictly slower and uses a different
     contention channel *)
  let m = Machine.fattree ~radix:2 ~levels:3 () in
  let near = m.Machine.link 0 1 and far = m.Machine.link 0 7 in
  Alcotest.(check bool) "far latency higher" true
    (far.Machine.latency > near.Machine.latency);
  Alcotest.(check bool) "near channel exists" true
    (near.Machine.channel <> None);
  Alcotest.(check bool) "channels differ" true
    (near.Machine.channel <> far.Machine.channel);
  Alcotest.(check bool) "self link local" true
    ((m.Machine.link 3 3).Machine.latency <= near.Machine.latency)

let test_fattree_large_p_smoke () =
  (* the heap scheduler sustains a 1024-rank ring on the default tree *)
  let m = Machine.fattree_default in
  let _, r = Sim.run ~machine:m ~nprocs:1024 (ring_spmd 1024) in
  Alcotest.(check int) "all messages delivered" 1024 r.Sim.messages;
  Alcotest.(check bool) "scheduler picks counted" true (r.Sim.sched_picks > 0)

let test_fattree_bad_shape () =
  (match Machine.fattree ~radix:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "radix 1 should be rejected");
  match Machine.fattree ~levels:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 levels should be rejected"

let suite =
  [
    t "compute advances the clock" test_compute_advances_clock;
    t "flops use the machine rate" test_flops_use_machine_rate;
    t "message timing" test_message_timing;
    t "receiver waits for arrival" test_receiver_waits_for_arrival;
    t "sends are eager" test_sender_does_not_block;
    t "FIFO per (src, tag)" test_fifo_order_per_pair;
    t "tags demultiplex" test_tags_demultiplex;
    t "payloads are copied" test_payload_copied_on_send;
    t "shared channel serializes" test_shared_channel_serializes;
    t "contention follows virtual time" test_contention_respects_virtual_time;
    t "determinism" test_determinism;
    t "deadlock detection" test_deadlock_detection;
    t "bad ranks rejected" test_bad_ranks_rejected;
    t "rank exception propagates" test_rank_exception_propagates;
    t "exception after communication" test_exception_after_communication;
    t "deadlock diagnosis names parties" test_deadlock_names_parties;
    t "recv_any delivers in arrival order" test_recv_any_earliest_arrival;
    t "recv_any tie goes to lowest source" test_recv_any_tie_lowest_source;
    t "probe with any-source wildcard" test_probe_any_source;
    t "unsatisfied recv_any deadlocks with diagnosis"
      test_recv_any_deadlock_diagnostic;
    t "recv_any over the reliable transport" test_reliable_recv_any;
    t "recv timeout expires" test_recv_timeout_expires;
    t "recv timeout raises typed" test_recv_timeout_typed_exception;
    t "recv within timeout delivers" test_recv_within_timeout_delivers;
    t "protocol error is typed" test_protocol_error_on_wrong_kind;
    t "machine lookup" test_machine_lookup;
    t "cluster topology" test_cluster_topology;
    t "placement: identity mapping is bit-identical" test_placement_identity;
    t "placement: one CPU serializes compute"
      test_placement_serializes_compute;
    t "placement: random map is seed-deterministic"
      test_placement_random_deterministic;
    t "placement: mapping names parse" test_mapping_of_string;
    t "oversubscription needs a placement" test_oversubscribe_needs_placement;
    t "fat-tree: near/far latency and channels" test_fattree_topology;
    t "fat-tree: 1024-rank ring smoke" test_fattree_large_p_smoke;
    t "fat-tree: bad shapes rejected" test_fattree_bad_shape;
  ]
