(* Distributed run-time library tests: block distribution arithmetic,
   MATRIX geometry, and every communication-bearing operation checked
   against dense references across processor counts -- unit cases plus
   qcheck properties. *)

module Sim = Mpisim.Sim
module Dmat = Runtime.Dmat
module Ops = Runtime.Ops
module Dist = Runtime.Dist

let t name f = Alcotest.test_case name `Quick f
let machine = Mpisim.Machine.meiko_cs2

(* Run one rank body on p CPUs and check all ranks return [expected]. *)
let run_all ~p body = fst (Sim.run ~machine ~nprocs:p body)

let dense_of ~p body expected msg =
  Array.iter
    (fun v -> Testutil.check_array_close msg expected v)
    (run_all ~p body)

let test_dist_arithmetic () =
  List.iter
    (fun (n, p) ->
      (* blocks partition [0, n) in order with sizes differing <= 1 *)
      let total = ref 0 in
      for r = 0 to p - 1 do
        let lo = Dist.low ~rank:r ~nprocs:p ~n in
        let hi = Dist.high ~rank:r ~nprocs:p ~n in
        Alcotest.(check bool) "contiguous" true (lo = !total);
        total := hi
      done;
      Alcotest.(check int) "covers all" n !total;
      for i = 0 to n - 1 do
        let o = Dist.owner ~nprocs:p ~n i in
        Alcotest.(check bool)
          (Printf.sprintf "owner n=%d p=%d i=%d" n p i)
          true
          (Dist.low ~rank:o ~nprocs:p ~n <= i
          && i < Dist.high ~rank:o ~nprocs:p ~n)
      done)
    [ (10, 3); (16, 16); (5, 8); (1, 4); (0, 3); (100, 7) ]

let test_matrix_geometry () =
  let results =
    run_all ~p:4 (fun rank ->
        let m = Dmat.create ~rows:10 ~cols:3 in
        let v = Dmat.create ~rows:1 ~cols:10 in
        ( rank,
          m.Dmat.axis = Dmat.By_rows,
          Dmat.local_els m,
          v.Dmat.axis = Dmat.By_cols,
          Dmat.local_els v ))
  in
  Array.iter
    (fun (rank, m_rows, m_els, v_cols, v_els) ->
      Alcotest.(check bool) "matrix by rows" true m_rows;
      Alcotest.(check bool) "row vector by cols" true v_cols;
      let expect_rows = Dist.size ~rank ~nprocs:4 ~n:10 in
      Alcotest.(check int) "local elements" (expect_rows * 3) m_els;
      Alcotest.(check int) "vector block" expect_rows v_els)
    results

let test_owner_partition () =
  (* every element of a matrix is owned by exactly one rank *)
  let results =
    run_all ~p:5 (fun _ ->
        let m = Dmat.create ~rows:7 ~cols:4 in
        let owned = ref [] in
        for i = 0 to 6 do
          for j = 0 to 3 do
            if Dmat.owner m ~i ~j then owned := (i, j) :: !owned
          done
        done;
        !owned)
  in
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "every element owned once" (7 * 4) (List.length all);
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "no duplicates" (7 * 4) (List.length sorted)

let test_to_dense_of_dense_roundtrip () =
  List.iter
    (fun p ->
      let data = Array.init 35 (fun i -> float_of_int (i * i mod 13)) in
      dense_of ~p
        (fun _ ->
          Dmat.to_dense (Dmat.of_dense ~rows:7 ~cols:5 data))
        data
        (Printf.sprintf "roundtrip p=%d" p))
    [ 1; 2; 4; 8; 16 ]

let ref_matmul m k n a b =
  Array.init (m * n) (fun g ->
      let i = g / n and j = g mod n in
      let acc = ref 0. in
      for kk = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + kk) *. b.((kk * n) + j))
      done;
      !acc)

let test_matmul_shapes () =
  List.iter
    (fun (m, k, n, p) ->
      let a = Array.init (m * k) (fun i -> float_of_int ((i * 7 mod 23) - 11)) in
      let b = Array.init (k * n) (fun i -> float_of_int ((i * 5 mod 17) - 8)) in
      dense_of ~p
        (fun _ ->
          let da = Dmat.of_dense ~rows:m ~cols:k a in
          let db = Dmat.of_dense ~rows:k ~cols:n b in
          Dmat.to_dense (Ops.matmul da db))
        (ref_matmul m k n a b)
        (Printf.sprintf "matmul %dx%d*%dx%d p=%d" m k k n p))
    [ (4, 4, 4, 2); (7, 3, 5, 4); (1, 6, 4, 3); (5, 5, 1, 8); (2, 9, 3, 16); (1, 4, 1, 2) ]

let test_matmul_dimension_check () =
  match
    Sim.run ~machine ~nprocs:2 (fun _ ->
        let a = Dmat.create ~rows:3 ~cols:4 in
        let b = Dmat.create ~rows:5 ~cols:2 in
        ignore (Ops.matmul a b))
  with
  | exception Sim.Rank_failure { exn = Failure _; _ } -> ()
  | _ -> Alcotest.fail "dimension mismatch must fail"

let test_dot () =
  List.iter
    (fun p ->
      let u = Array.init 11 (fun i -> float_of_int i -. 5.) in
      let expected = Array.fold_left (fun a x -> a +. (x *. x)) 0. u in
      let results =
        run_all ~p (fun _ ->
            let du = Dmat.of_dense ~rows:11 ~cols:1 u in
            Ops.dot du du)
      in
      Array.iter (fun v -> Testutil.check_close ~tol:1e-12 "dot" expected v) results)
    [ 1; 3; 16 ]

let test_transpose () =
  List.iter
    (fun (m, n, p) ->
      let a = Array.init (m * n) (fun i -> float_of_int (i * 3 mod 19)) in
      let expected =
        Array.init (n * m) (fun g ->
            let i = g / m and j = g mod m in
            a.((j * n) + i))
      in
      dense_of ~p
        (fun _ -> Dmat.to_dense (Ops.transpose (Dmat.of_dense ~rows:m ~cols:n a)))
        expected
        (Printf.sprintf "transpose %dx%d p=%d" m n p))
    [ (5, 7, 3); (8, 8, 8); (16, 2, 16); (2, 16, 4); (9, 1, 3); (1, 9, 3) ]

let test_vector_transpose_is_local () =
  (* n x 1 <-> 1 x n transposes must not communicate *)
  let _, r =
    Sim.run ~machine ~nprocs:8 (fun _ ->
        let v = Dmat.init ~rows:32 ~cols:1 (fun g -> float_of_int g) in
        ignore (Ops.transpose v))
  in
  Alcotest.(check int) "no messages" 0 r.Sim.messages

let test_outer () =
  let u = Array.init 5 (fun i -> float_of_int (i + 1)) in
  let v = Array.init 4 (fun i -> float_of_int ((i * 2) + 1)) in
  let expected = Array.init 20 (fun g -> u.(g / 4) *. v.(g mod 4)) in
  dense_of ~p:3
    (fun _ ->
      let du = Dmat.of_dense ~rows:5 ~cols:1 u in
      let dv = Dmat.of_dense ~rows:4 ~cols:1 v in
      Dmat.to_dense (Ops.outer du dv))
    expected "outer"

let test_reductions () =
  let v = [| 3.; -1.; 4.; 1.; -5.; 9.; 2.; 6. |] in
  let cases =
    [
      (Ops.Rsum, 19.);
      (Ops.Rprod, 3. *. -1. *. 4. *. 1. *. -5. *. 9. *. 2. *. 6.);
      (Ops.Rmin, -5.);
      (Ops.Rmax, 9.);
      (Ops.Rany, 1.);
      (Ops.Rall, 1.);
    ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun (op, expected) ->
          let results =
            run_all ~p (fun _ ->
                Ops.reduce_all op (Dmat.of_dense ~rows:8 ~cols:1 v))
          in
          Array.iter
            (fun got -> Testutil.check_close ~tol:1e-12 "reduce" expected got)
            results)
        cases)
    [ 1; 2; 5; 8 ];
  (* any/all with zeros *)
  let z = [| 0.; 0.; 1. |] in
  let results =
    run_all ~p:2 (fun _ ->
        let d = Dmat.of_dense ~rows:3 ~cols:1 z in
        (Ops.reduce_all Ops.Rany d, Ops.reduce_all Ops.Rall d))
  in
  Array.iter
    (fun (any_v, all_v) ->
      Testutil.check_close "any" 1. any_v;
      Testutil.check_close "all" 0. all_v)
    results

let test_col_reductions () =
  let a = Array.init 12 (fun i -> float_of_int (i + 1)) in
  (* 4x3: columns sums = 1+4+7+10, 2+5+8+11, 3+6+9+12 *)
  dense_of ~p:3
    (fun _ -> Dmat.to_dense (Ops.reduce_cols Ops.Rsum (Dmat.of_dense ~rows:4 ~cols:3 a)))
    [| 22.; 26.; 30. |] "col sums";
  dense_of ~p:3
    (fun _ -> Dmat.to_dense (Ops.mean_cols (Dmat.of_dense ~rows:4 ~cols:3 a)))
    [| 5.5; 6.5; 7.5 |] "col means"

let test_mean_and_norm () =
  let v = Array.init 10 (fun i -> float_of_int (i + 1)) in
  let results =
    run_all ~p:4 (fun _ ->
        let d = Dmat.of_dense ~rows:10 ~cols:1 v in
        (Ops.mean_all d, Ops.norm2 d))
  in
  Array.iter
    (fun (m, n2) ->
      Testutil.check_close "mean" 5.5 m;
      Testutil.check_close ~tol:1e-12 "norm" (sqrt 385.) n2)
    results

let test_bcast_and_set_elem () =
  List.iter
    (fun p ->
      let results =
        run_all ~p (fun _ ->
            let m = Dmat.init_rc ~rows:6 ~cols:5 (fun i j -> float_of_int ((i * 10) + j)) in
            let v = Ops.bcast_elem m ~i:4 ~j:3 in
            Ops.set_elem m ~i:2 ~j:2 99.;
            let w = Ops.bcast_elem m ~i:2 ~j:2 in
            (v, w))
      in
      Array.iter
        (fun (v, w) ->
          Testutil.check_close "read" 43. v;
          Testutil.check_close "read after guarded write" 99. w)
        results)
    [ 1; 2; 4; 8 ]

let test_elem_bounds () =
  match
    Sim.run ~machine ~nprocs:2 (fun _ ->
        let m = Dmat.create ~rows:3 ~cols:3 in
        ignore (Ops.bcast_elem m ~i:5 ~j:0))
  with
  | exception Sim.Rank_failure { exn = Failure _; _ } -> ()
  | _ -> Alcotest.fail "out-of-bounds broadcast must fail"

let test_trapz () =
  (* integral of x^2 over [0, 1] with 101 samples *)
  let n = 101 in
  let xs = Array.init n (fun i -> float_of_int i /. 100.) in
  let ys = Array.map (fun x -> x *. x) xs in
  List.iter
    (fun p ->
      let results =
        run_all ~p (fun _ ->
            let dx = Dmat.of_dense ~rows:n ~cols:1 xs in
            let dy = Dmat.of_dense ~rows:n ~cols:1 ys in
            (Ops.trapz ~x:dx dy, Ops.trapz dy))
      in
      Array.iter
        (fun (with_x, unit_dx) ->
          Testutil.check_close ~tol:1e-4 "trapz(x, y)" (1. /. 3.) with_x;
          Testutil.check_close ~tol:1e-6 "trapz(y)"
            (Interp.Dense.trapz
               { Interp.Dense.rows = n; cols = 1; data = ys })
            unit_dx)
        results)
    [ 1; 2; 7; 16 ]

let test_sections () =
  let a = Array.init 30 (fun i -> float_of_int i) in
  (* rows 1 and 3, columns 0, 2, 4 of a 5x6 matrix *)
  dense_of ~p:4
    (fun _ ->
      let d = Dmat.of_dense ~rows:5 ~cols:6 a in
      Dmat.to_dense (Ops.section d [| 1; 3 |] [| 0; 2; 4 |]))
    [| 6.; 8.; 10.; 18.; 20.; 22. |]
    "2d section";
  dense_of ~p:4
    (fun _ ->
      let v = Dmat.of_dense ~rows:8 ~cols:1 (Array.init 8 (fun i -> float_of_int (i * i))) in
      Dmat.to_dense (Ops.section_linear v [| 7; 0; 3 |] ~rows:3 ~cols:1))
    [| 49.; 0.; 9. |]
    "linear section"

(* --- qcheck properties -------------------------------------------------- *)

let gen_pvn =
  QCheck.make
    ~print:(fun (p, n, s) -> Printf.sprintf "p=%d n=%d shift=%d" p n s)
    QCheck.Gen.(
      triple (int_range 1 16) (int_range 1 40) (int_range (-50) 50))

let circshift_prop (p, n, s) =
  let v = Array.init n (fun i -> float_of_int i) in
  let expected = Array.init n (fun i -> v.(((i - s) mod n + n) mod n)) in
  let results =
    run_all ~p:(min p 16) (fun _ ->
        Dmat.to_dense (Ops.circshift (Dmat.of_dense ~rows:n ~cols:1 v) s))
  in
  Array.for_all (fun got -> got = expected) results

let gen_mm =
  QCheck.make
    ~print:(fun (p, m, k, n) -> Printf.sprintf "p=%d %dx%d*%dx%d" p m k k n)
    QCheck.Gen.(
      quad (int_range 1 16) (int_range 1 9) (int_range 1 9) (int_range 1 9))

let matmul_prop (p, m, k, n) =
  let a = Array.init (m * k) (fun i -> float_of_int ((i * 13 mod 7) - 3)) in
  let b = Array.init (k * n) (fun i -> float_of_int ((i * 11 mod 9) - 4)) in
  let expected = ref_matmul m k n a b in
  let results =
    run_all ~p (fun _ ->
        let da = Dmat.of_dense ~rows:m ~cols:k a in
        let db = Dmat.of_dense ~rows:k ~cols:n b in
        Dmat.to_dense (Ops.matmul da db))
  in
  Array.for_all
    (fun got -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) got expected)
    results

let gen_tr =
  QCheck.make
    ~print:(fun (p, m, n) -> Printf.sprintf "p=%d %dx%d" p m n)
    QCheck.Gen.(triple (int_range 1 16) (int_range 1 12) (int_range 1 12))

let transpose_prop (p, m, n) =
  let a = Array.init (m * n) (fun i -> float_of_int i) in
  let expected =
    Array.init (n * m) (fun g -> a.(((g mod m) * n) + (g / m)))
  in
  let results =
    run_all ~p (fun _ ->
        Dmat.to_dense (Ops.transpose (Dmat.of_dense ~rows:m ~cols:n a)))
  in
  Array.for_all (fun got -> got = expected) results

let cumsum_prop (p, n, _) =
  let v = Array.init n (fun i -> Runtime.Rng.uniform ~seed:5 i -. 0.5) in
  let expected =
    let acc = ref 0. in
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      v
  in
  let results =
    run_all ~p (fun _ ->
        Dmat.to_dense (Ops.cumulative Ops.Cumsum (Dmat.of_dense ~rows:n ~cols:1 v)))
  in
  Array.for_all
    (fun got -> Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) got expected)
    results

let reduction_invariant_prop (p, n, _) =
  (* distributed sum equals dense sum regardless of the partition *)
  let v = Array.init n (fun i -> Runtime.Rng.uniform ~seed:7 i -. 0.5) in
  let expected = Array.fold_left ( +. ) 0. v in
  let results =
    run_all ~p (fun _ -> Ops.reduce_all Ops.Rsum (Dmat.of_dense ~rows:n ~cols:1 v))
  in
  Array.for_all (fun got -> Float.abs (got -. expected) < 1e-9) results

let test_cumulative () =
  let v = [| 1.; 2.; 3.; 4.; 5. |] in
  List.iter
    (fun p ->
      dense_of ~p
        (fun _ -> Dmat.to_dense (Ops.cumulative Ops.Cumsum (Dmat.of_dense ~rows:5 ~cols:1 v)))
        [| 1.; 3.; 6.; 10.; 15. |]
        (Printf.sprintf "cumsum p=%d" p);
      dense_of ~p
        (fun _ -> Dmat.to_dense (Ops.cumulative Ops.Cumprod (Dmat.of_dense ~rows:5 ~cols:1 v)))
        [| 1.; 2.; 6.; 24.; 120. |]
        (Printf.sprintf "cumprod p=%d" p))
    [ 1; 2; 3; 5; 8; 16 ]

let test_reduce_with_index () =
  let v = [| 4.; -1.; 7.; -1.; 7. |] in
  List.iter
    (fun p ->
      let results =
        run_all ~p (fun _ ->
            let d = Dmat.of_dense ~rows:5 ~cols:1 v in
            (Ops.reduce_with_index Ops.Rmin d, Ops.reduce_with_index Ops.Rmax d))
      in
      Array.iter
        (fun ((mn, mni), (mx, mxi)) ->
          Testutil.check_close "min value" (-1.) mn;
          Alcotest.(check int) "min first index" 2 mni;
          Testutil.check_close "max value" 7. mx;
          Alcotest.(check int) "max first index" 3 mxi)
        results)
    [ 1; 2; 4; 16 ]

let test_rng_deterministic () =
  Testutil.check_close "same seed same value"
    (Runtime.Rng.uniform ~seed:3 17)
    (Runtime.Rng.uniform ~seed:3 17);
  Alcotest.(check bool) "different index different value" true
    (Runtime.Rng.uniform ~seed:3 17 <> Runtime.Rng.uniform ~seed:3 18);
  Alcotest.(check bool) "in [0,1)" true
    (List.for_all
       (fun i ->
         let u = Runtime.Rng.uniform ~seed:11 i in
         u >= 0. && u < 1.)
       (List.init 1000 (fun i -> i)))

let suite =
  [
    t "block distribution arithmetic" test_dist_arithmetic;
    t "matrix geometry" test_matrix_geometry;
    t "owner partition" test_owner_partition;
    t "to_dense/of_dense round trip" test_to_dense_of_dense_roundtrip;
    t "matmul shapes" test_matmul_shapes;
    t "matmul dimension check" test_matmul_dimension_check;
    t "dot product" test_dot;
    t "transpose" test_transpose;
    t "vector transpose is local" test_vector_transpose_is_local;
    t "outer product" test_outer;
    t "scalar reductions" test_reductions;
    t "column reductions" test_col_reductions;
    t "mean and norm" test_mean_and_norm;
    t "broadcast + guarded element write" test_bcast_and_set_elem;
    t "element bounds checking" test_elem_bounds;
    t "trapz" test_trapz;
    t "sections" test_sections;
    t "cumulative scans" test_cumulative;
    t "reductions with index" test_reduce_with_index;
    t "rng determinism" test_rng_deterministic;
    Testutil.qtest ~count:150 "circshift == dense rotation" gen_pvn circshift_prop;
    Testutil.qtest ~count:100 "matmul == dense reference" gen_mm matmul_prop;
    Testutil.qtest ~count:100 "transpose == dense reference" gen_tr transpose_prop;
    Testutil.qtest ~count:60 "reductions partition-independent" gen_pvn
      reduction_invariant_prop;
    Testutil.qtest ~count:80 "cumsum == sequential prefix" gen_pvn cumsum_prop;
  ]
