let () =
  Alcotest.run "otter"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("resolve", Test_resolve.suite);
      ("ssa", Test_ssa.suite);
      ("infer", Test_infer.suite);
      ("dump", Test_dump.suite);
      ("lower", Test_lower.suite);
      ("peephole", Test_peephole.suite);
      ("passes", Test_passes.suite);
      ("comm", Test_comm.suite);
      ("sim", Test_sim.suite);
      ("coll", Test_coll.suite);
      ("faults", Test_faults.suite);
      ("recovery", Test_recovery.suite);
      ("runtime", Test_runtime.suite);
      ("dist", Test_dist.suite);
      ("fmtutil", Test_fmtutil.suite);
      ("vm", Test_vm.suite);
      ("tcode", Test_tcode.suite);
      ("interp", Test_interp.suite);
      ("mpi", Test_mpi.suite);
      ("codegen", Test_codegen.suite);
      ("apps", Test_apps.suite);
      ("load", Test_load.suite);
      ("corpus", Test_corpus.suite);
      ("fuzz", Test_fuzz.suite);
    ]
