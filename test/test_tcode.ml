(* The threaded-code execution engine (the default fast path):

   - golden decode listings: one exact-text check per IR opcode family,
     so a decode change is a conscious golden update, not an accident;
   - frame-slot aliasing hazards: interned array slots must preserve
     value semantics (copies are copies) and zero-trip loops must not
     leak or clobber slots that copy propagation style rewrites alias;
   - the engine-equivalence acceptance matrix: every benchmark app at
     P in {2,4,8} on all three paper machines runs bit-identically on
     tcode and the ir-walking VM (same output, captures, makespan and
     message count), and verifies against the reference interpreter;
   - chaos recovery: a seeded mid-run rank kill recovers to the exact
     fault-free answer on both engines, for every app. *)

open Testutil
module Machine = Mpisim.Machine
module Sim = Mpisim.Sim

let t name f = Alcotest.test_case name `Quick f

(* --- golden decode listings --------------------------------------------- *)

let check_listing name src expected =
  let got = Exec.Tcode.listing (Otter.compile src).Otter.prog in
  Alcotest.(check string) name expected got

let test_decode_scalar_flow () =
  check_listing "scalars, if/else, printf"
    "x = 2;\ny = x * 3 + 1;\nif y > 5\n z = 1;\nelse\n z = 0;\nend\n\
     fprintf('%g\\n', z);"
    "main:\n\
    \   0  scalar x\n\
    \   1  scalar y\n\
    \   2  if cond\n\
    \   3  scalar z\n\
    \   4  jump endif\n\
    \   5  scalar z\n\
    \   6  printf\n"

let test_decode_loops () =
  check_listing "for (entry/iter/next), while, disp"
    "s = 0;\nfor i = 1:2:9\n s = s + i;\nend\nwhile s > 10\n s = s - 7;\nend\n\
     disp(s);"
    "main:\n\
    \   0  scalar s\n\
    \   1  for i entry\n\
    \   2  for i iter\n\
    \   3  scalar s\n\
    \   4  for i next\n\
    \   5  while entry\n\
    \   6  while cond\n\
    \   7  scalar s\n\
    \   8  jump while\n\
    \   9  print s\n"

let test_decode_matrix_ops () =
  check_listing
    "construct, transpose, matmul(_t), copy, diag, outer, reductions, sort, \
     reduce_loc, trapz, shift"
    "A = rand(6, 6);\nB = A' * A;\nC = A * B;\nt = A';\nd = diag(A);\n\
     u = rand(6, 1);\nw = u * u';\nx = dot(u, u);\ny = sum(u);\ncs = sum(A);\n\
     v = sort(u);\n[mn, ix] = min(u);\nq = trapz(u);\nr = circshift(u, 2);\n\
     fprintf('%g\\n', x + y + mn + ix + q + sum(sum(C)) + sum(sum(w)) + \
     sum(cs) + sum(v) + sum(r) + sum(sum(B)) + sum(sum(t)) + sum(d));"
    "main:\n\
    \   0  construct A\n\
    \   1  transpose ML_tmp2\n\
    \   2  matmul_t B\n\
    \   3  matmul C\n\
    \   4  copy t <- ML_tmp2\n\
    \   5  diag d\n\
    \   6  construct u\n\
    \   7  outer w\n\
    \   8  reduce_fused x2\n\
    \   9  scalar x <- ML_tmp9\n\
    \  10  scalar y <- ML_tmp10\n\
    \  11  reduce_cols cs\n\
    \  12  sort v\n\
    \  13  reduce_loc mn\n\
    \  14  trapz ML_tmp13\n\
    \  15  scalar q <- ML_tmp13\n\
    \  16  shift r\n\
    \  17  reduce_all ML_tmp15\n\
    \  18  reduce_cols ML_tmp16\n\
    \  19  reduce_all ML_tmp17\n\
    \  20  reduce_cols ML_tmp18\n\
    \  21  reduce_fused x4\n\
    \  22  reduce_cols ML_tmp23\n\
    \  23  reduce_all ML_tmp24\n\
    \  24  reduce_cols ML_tmp25\n\
    \  25  reduce_all ML_tmp26\n\
    \  26  printf\n"

let test_decode_elements () =
  check_listing "setelem, elementwise loop, batched broadcast"
    "A = zeros(4, 4);\nA(2, 3) = 5;\np = A(2, 3);\nq = A(1, 1);\nb = A(3, 3);\n\
     E = A + A;\nfprintf('%g\\n', p + q + b + sum(sum(E)));"
    "main:\n\
    \   0  construct A\n\
    \   1  setelem A\n\
    \   2  elem E\n\
    \   3  bcast_batch x3\n\
    \   4  scalar p <- ML_tmp2\n\
    \   5  scalar q <- ML_tmp3\n\
    \   6  scalar b <- ML_tmp4\n\
    \   7  reduce_cols ML_tmp6\n\
    \   8  reduce_all ML_tmp7\n\
    \   9  printf\n"

let test_decode_single_bcast () =
  check_listing "unbatched element broadcast"
    "v = rand(8, 1);\nx = v(3);\nfprintf('%g\\n', x);"
    "main:\n\
    \   0  construct v\n\
    \   1  bcast ML_tmp2\n\
    \   2  scalar x <- ML_tmp2\n\
    \   3  printf\n"

let test_decode_fused_reductions () =
  check_listing "four reductions fuse into one allreduce"
    "v = rand(16, 1);\ns = sum(v);\nm = mean(v);\nn = norm(v);\n\
     d = dot(v, v);\nfprintf('%g\\n', s + m + n + d);"
    "main:\n\
    \   0  construct v\n\
    \   1  reduce_fused x4\n\
    \   2  scalar s <- ML_tmp2\n\
    \   3  scalar m <- ML_tmp3\n\
    \   4  scalar n <- ML_tmp4\n\
    \   5  scalar d <- ML_tmp5\n\
    \   6  printf\n"

let test_decode_functions () =
  check_listing "user function gets its own code section"
    "y = sq(3);\nfprintf('%g\\n', y);\nfunction r = sq(x)\n  r = x * x;\nend"
    "main:\n\
    \   0  call sq/1\n\
    \   1  scalar y <- ML_tmp1\n\
    \   2  printf\n\
     function sq:\n\
    \   0  scalar r\n"

(* --- frame-slot aliasing ------------------------------------------------ *)

(* Interned slots must keep MATLAB's value semantics: a copy is a deep
   copy, a zero-trip loop leaves its targets untouched, and rewrites
   that alias one variable to another (copy propagation style) must
   not let a later store through one name show through the other. *)

let test_aliasing () =
  check_close "scalar copy does not alias" 1.
    (parallel_value "a = 1;\nb = a;\na = 2;\nx = b;" "x");
  check_close "matrix copy is deep" 0.
    (parallel_value "A = zeros(2, 2);\nB = A;\nA(1, 1) = 5;\nx = B(1, 1);" "x");
  check_close "copy then source clobbered in loop" 3.
    (parallel_value
       "a = 3;\nb = a;\nfor i = 1:4\n a = a + 1;\nend\nx = b;" "x");
  check_close "self-referencing update" 6.
    (parallel_value "v = (1:3)';\nv = v + v;\nx = v(2) + v(1);" "x")

let test_zero_trip_slots () =
  check_close "zero-trip loop leaves prior value" 7.
    (parallel_value "s = 7;\nfor i = 1:0\n s = 99;\nend\nx = s;" "x");
  check_close "zero-trip loop with copy inside" 5.
    (parallel_value
       "a = 5;\nb = 0;\nfor i = 2:1\n b = a;\n a = 0;\nend\nx = a + b;" "x");
  check_close "downward zero-trip" 4.
    (parallel_value "s = 4;\nfor i = 1:-1:2\n s = s * 10;\nend\nx = s;" "x");
  check_close "zero-trip keeps loop slot out of scope" 11.
    (parallel_value
       "k = 11;\nfor q = 3:2\n k = q;\nend\nx = k;" "x");
  (* An undefined read after a zero-trip loop must still be the same
     typed error on the decoded engine. *)
  match run_parallel ~nprocs:2 "for i = 1:0\n y = 1;\nend\nx = y;" with
  | exception Exec.Vm.Runtime_error _ -> ()
  | _ -> Alcotest.fail "undefined read after zero-trip loop must error"

(* --- the engine-equivalence acceptance matrix --------------------------- *)

let machines =
  [ Machine.meiko_cs2; Machine.enterprise_smp; Machine.sparc20_cluster ]

let eq_captured (a : Exec.Vm.captured) (b : Exec.Vm.captured) =
  let eqf (x : float) (y : float) =
    (Float.is_nan x && Float.is_nan y) || x = y
  in
  match (a, b) with
  | Exec.Vm.Cscalar x, Exec.Vm.Cscalar y -> eqf x y
  | Exec.Vm.Cmat (r1, c1, d1), Exec.Vm.Cmat (r2, c2, d2) ->
      r1 = r2 && c1 = c2 && Array.for_all2 eqf d1 d2
  | _ -> false

let check_outcomes_identical ~where (a : Exec.Vm.outcome)
    (b : Exec.Vm.outcome) =
  Alcotest.(check string) (where ^ ": output") a.output b.output;
  checkf (where ^ ": makespan") a.report.Sim.makespan b.report.Sim.makespan;
  Alcotest.(check int)
    (where ^ ": messages")
    a.report.Sim.messages b.report.Sim.messages;
  Alcotest.(check int)
    (where ^ ": lib calls")
    a.lib_calls b.lib_calls;
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name b.Exec.Vm.captures with
      | Some w when eq_captured v w -> ()
      | Some _ -> Alcotest.failf "%s: capture %s differs" where name
      | None -> Alcotest.failf "%s: capture %s missing" where name)
    a.Exec.Vm.captures

(* One app across P in {2,4,8} on all three machines: the decoded
   engine must be bit-identical to the ir-walking VM and verify against
   the reference interpreter. *)
let engines_identical key () =
  let app =
    match Apps.Scripts.find key with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 4) in
  List.iter
    (fun m ->
      List.iter
        (fun p ->
          let where = Printf.sprintf "%s P=%d on %s" key p m.Machine.name in
          let run_with engine =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~engine ~capture:app.capture ~machine:m
                    ~nprocs:p ())
                 c)
          in
          let ir = run_with Otter.Config.Eir in
          let tc = run_with Otter.Config.Etcode in
          check_outcomes_identical ~where ir tc;
          match
            Otter.verify_list
              (Otter.config ~engine:Otter.Config.Etcode ~tol:1e-6 ~machine:m
                 ~nprocs:p ~capture:app.capture ())
              c
          with
          | [] -> ()
          | ms ->
              Alcotest.failf "%s: %d interpreter mismatches" where
                (List.length ms))
        [ 2; 4; 8 ])
    machines

(* --- chaos recovery on both engines ------------------------------------- *)

let faults spec =
  match Machine.faults_of_spec spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "bad fault spec: %s" e

let killer ~at ~detect m =
  Machine.with_faults ~reliable:true
    ~faults:
      (faults
         (Printf.sprintf "kill_rank=1,kill_time=%g,detect=%g,seed=7" at detect))
    m

(* A seeded mid-run rank kill on the default machine at P=4: both
   engines must recover to the exact fault-free answer. *)
let chaos_recovers key () =
  let app =
    match Apps.Scripts.find key with Some a -> a | None -> assert false
  in
  let c = Otter.compile (app.source 4) in
  let m = Machine.meiko_cs2 in
  List.iter
    (fun engine ->
      let where =
        Printf.sprintf "%s under --chaos [%s]" key
          (Otter.Config.engine_name engine)
      in
      let clean =
        Otter.outcome_exn
          (Otter.run
             (Otter.config ~engine ~capture:app.capture ~machine:m ~nprocs:4 ())
             c)
      in
      let span = clean.Exec.Vm.report.Sim.makespan in
      let rc =
        Otter.run
          (Otter.config ~engine ~capture:app.capture
             ~ckpt_interval:(Float.max 1e-6 (span *. 0.08))
             ~max_recoveries:3
             ~machine:
               (killer ~at:(span *. 0.3)
                  ~detect:(Float.max 0.01 (span *. 0.05))
                  m)
             ~nprocs:4 ())
          c
      in
      (match rc.Exec.Vm.r_reports with
      | first :: _ ->
          Alcotest.(check int) (where ^ ": kill fired") 1 first.Sim.kills
      | [] -> Alcotest.failf "%s: no attempt reports" where);
      Alcotest.(check bool)
        (where ^ ": rolled back")
        true
        (rc.Exec.Vm.r_attempts >= 2);
      match rc.Exec.Vm.r_result with
      | Exec.Vm.Complete out ->
          Alcotest.(check string) (where ^ ": output") clean.output out.output;
          List.iter
            (fun (name, v) ->
              match List.assoc_opt name out.Exec.Vm.captures with
              | Some w when eq_captured v w -> ()
              | Some _ ->
                  Alcotest.failf "%s: capture %s differs after recovery" where
                    name
              | None ->
                  Alcotest.failf "%s: capture %s lost after recovery" where
                    name)
            clean.Exec.Vm.captures
      | Exec.Vm.Partial { detail; _ } ->
          Alcotest.failf "%s: did not recover: %s" where detail)
    [ Otter.Config.Eir; Otter.Config.Etcode ]

let suite =
  [
    t "golden decode: scalar flow" test_decode_scalar_flow;
    t "golden decode: loops" test_decode_loops;
    t "golden decode: matrix ops" test_decode_matrix_ops;
    t "golden decode: elements" test_decode_elements;
    t "golden decode: single bcast" test_decode_single_bcast;
    t "golden decode: fused reductions" test_decode_fused_reductions;
    t "golden decode: functions" test_decode_functions;
    t "frame-slot aliasing" test_aliasing;
    t "zero-trip loop slots" test_zero_trip_slots;
    t "engines identical: cg" (engines_identical "cg");
    t "engines identical: ocean" (engines_identical "ocean");
    t "engines identical: nbody" (engines_identical "nbody");
    t "engines identical: tc" (engines_identical "tc");
    t "chaos recovery: cg" (chaos_recovers "cg");
    t "chaos recovery: ocean" (chaos_recovers "ocean");
    t "chaos recovery: nbody" (chaos_recovers "nbody");
    t "chaos recovery: tc" (chaos_recovers "tc");
  ]
