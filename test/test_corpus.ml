(* Every script in examples/matlab must compile and verify between the
   interpreter and an 8-CPU simulated run (exact output agreement). *)

let t name f = Alcotest.test_case name `Quick f

(* Locate the repository root from the dune sandbox. *)
let corpus_dir =
  lazy
    (let rec up dir n =
       if n = 0 then None
       else if Sys.file_exists (Filename.concat dir "examples/matlab") then
         Some (Filename.concat dir "examples/matlab")
       else up (Filename.dirname dir) (n - 1)
     in
     up (Sys.getcwd ()) 8)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_corpus () =
  match Lazy.force corpus_dir with
  | None -> () (* sandboxed without sources: nothing to check *)
  | Some dir ->
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".m")
        |> List.sort compare
      in
      Alcotest.(check bool) "corpus nonempty" true (List.length files >= 5);
      List.iter
        (fun f ->
          let src = read_file (Filename.concat dir f) in
          let c = Otter.compile src in
          let oi =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~engine:Otter.Config.Einterp
                    ~machine:Mpisim.Machine.workstation ~nprocs:1 ())
                 c)
          in
          let op =
            Otter.outcome_exn
              (Otter.run
                 (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8 ())
                 c)
          in
          Alcotest.(check string)
            (f ^ ": identical output on 8 CPUs")
            oi.Exec.State.output op.Exec.Vm.output)
        files

let suite = [ t "examples/matlab corpus" test_corpus ]
