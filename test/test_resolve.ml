(* Identifier resolution tests (paper pass 2): variables vs functions,
   M-file loading through the path, shadowing, error cases. *)

open Mlang

let t name f = Alcotest.test_case name `Quick f

let resolve ?path src = Analysis.Resolve.run ?path (Parser.parse_program src)

(* Find the desc of the first RHS in the script. *)
let first_rhs (p : Ast.program) =
  match p.script with
  | { sdesc = Ast.Assign (_, rhs, _); _ } :: _ -> rhs
  | _ -> Alcotest.fail "expected a leading assignment"

let nth_rhs n (p : Ast.program) =
  match List.nth p.script n with
  | { sdesc = Ast.Assign (_, rhs, _); _ } -> rhs
  | _ -> Alcotest.fail "expected an assignment"

let test_variable_vs_function () =
  (* x defined, then x(2) is indexing; sum is a builtin call *)
  let p = resolve "x = ones(3, 1);\ny = x(2);\nz = sum(x);" in
  (match (nth_rhs 1 p).node with
  | Ast.Index ("x", _) -> ()
  | _ -> Alcotest.fail "x(2) should resolve to indexing");
  match (nth_rhs 2 p).node with
  | Ast.Call ("sum", _) -> ()
  | _ -> Alcotest.fail "sum(x) should resolve to a call"

let test_zero_arg_builtin () =
  let p = resolve "x = pi;" in
  match (first_rhs p).node with
  | Ast.Call ("pi", []) -> ()
  | _ -> Alcotest.fail "pi should resolve to a 0-argument call"

let test_variable_shadows_function () =
  (* After sum is assigned, sum(2) indexes the variable. *)
  let p = resolve "sum = ones(4, 1);\ny = sum(2);" in
  match (nth_rhs 1 p).node with
  | Ast.Index ("sum", _) -> ()
  | _ -> Alcotest.fail "variable should shadow builtin"

let test_local_function_resolution () =
  let p = resolve "y = f(3);\nfunction r = f(x)\n  r = x + 1;\nend" in
  (match (first_rhs p).node with
  | Ast.Call ("f", _) -> ()
  | _ -> Alcotest.fail "f should resolve to the local function");
  Alcotest.(check int) "function kept" 1 (List.length p.funcs)

let test_path_loading () =
  let helper =
    match (Parser.parse_program "function r = helper(x)\n r = 2 * x;\nend").funcs
    with
    | [ f ] -> f
    | _ -> Alcotest.fail "helper parse"
  in
  let path name = if name = "helper" then Some helper else None in
  let p = resolve ~path "y = helper(21);" in
  Alcotest.(check int) "helper pulled in" 1 (List.length p.funcs);
  (* transitive references resolve too *)
  let chain1 =
    match
      (Parser.parse_program "function r = chain1(x)\n r = chain2(x) + 1;\nend")
        .funcs
    with
    | [ f ] -> f
    | _ -> assert false
  in
  let chain2 =
    match
      (Parser.parse_program "function r = chain2(x)\n r = x * 2;\nend").funcs
    with
    | [ f ] -> f
    | _ -> assert false
  in
  let path name =
    match name with
    | "chain1" -> Some chain1
    | "chain2" -> Some chain2
    | _ -> None
  in
  let p = resolve ~path "y = chain1(1);" in
  Alcotest.(check int) "both M-files added to the AST" 2 (List.length p.funcs)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_function_scope () =
  (* Script variables are not visible inside functions. *)
  match resolve "g = 5;\ny = f(1);\nfunction r = f(x)\n  r = g + x;\nend" with
  | exception Source.Error (_, msg) ->
      Alcotest.(check bool) "mentions g" true (contains ~affix:"'g'" msg)
  | _ -> Alcotest.fail "function should not see script variables"

let test_undefined () =
  (match resolve "y = nosuchthing;" with
  | exception Source.Error _ -> ()
  | _ -> Alcotest.fail "undefined identifier must be an error");
  (match resolve "y = nosuchfun(3);" with
  | exception Source.Error _ -> ()
  | _ -> Alcotest.fail "undefined function must be an error");
  match resolve "a(3) = 1;" with
  | exception Source.Error _ -> ()
  | _ -> Alcotest.fail "indexed assignment to undefined variable must error"

let test_for_var_defined () =
  let p = resolve "for i = 1:3\n  y = i;\nend" in
  match p.script with
  | [ { sdesc = Ast.For (_, _, [ { sdesc = Ast.Assign (_, rhs, _); _ } ]); _ } ]
    -> (
      match rhs.node with
      | Ast.Varref "i" -> ()
      | _ -> Alcotest.fail "loop variable should be a variable reference")
  | _ -> Alcotest.fail "for shape"

let test_unassigned_return () =
  match resolve "y = f(1);\nfunction r = f(x)\n  q = x;\nend" with
  | exception Source.Error _ -> ()
  | _ -> Alcotest.fail "unassigned return value must be an error"

let suite =
  [
    t "variable vs function" test_variable_vs_function;
    t "zero-argument builtin" test_zero_arg_builtin;
    t "variable shadows function" test_variable_shadows_function;
    t "local function" test_local_function_resolution;
    t "M-file path loading" test_path_loading;
    t "function scope isolation" test_function_scope;
    t "undefined identifiers" test_undefined;
    t "for variable" test_for_var_defined;
    t "unassigned return" test_unassigned_return;
  ]
