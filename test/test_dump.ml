(* The annotation layer itself: golden listings of the annotated-AST
   dump (the [otterc dump --ast] format) pinning the inferred
   type/shape/frame annotations per node, plus unit tests of the AST
   invariant validator that [Otter.compile] runs on every program. *)

open Mlang

let dump src =
  let fe = Otter.compile_frontend src in
  Pp.annotated_program_to_string fe.Otter.fe_ast

let check_golden name src expected () =
  Alcotest.(check string) name expected (dump src)

(* Scalars, a matrix, indexing and a function call: every node carries
   an inferred type, and constant shapes are derived. *)
let golden_scalar_matrix =
  check_golden "scalar/matrix listing"
    "a = 2;\nb = a + 3;\nM = zeros(2, 3);\nr = M(1, 2) * b;\n"
    "Assign a\n\
     \  Num 2 : integer scalar\n\
     Assign b\n\
     \  Binop + : integer scalar\n\
     \    Varref a : integer scalar\n\
     \    Num 3 : integer scalar\n\
     Assign M\n\
     \  Call zeros : real matrix [2x3]\n\
     \    Num 2 : integer scalar\n\
     \    Num 3 : integer scalar\n\
     Assign r\n\
     \  Binop * : real scalar\n\
     \    Index M : real scalar\n\
     \      Num 1 : integer scalar\n\
     \      Num 2 : integer scalar\n\
     \    Varref b : integer scalar\n"

(* A rank-3 tensor broadcast against a matrix cell: the Binop node
   records the frame lift, and the tensor shape threads through. *)
let golden_tensor_frame =
  check_golden "tensor frame-lift listing"
    "T = zeros(2, 3, 3);\nc = ones(3, 3);\nU = T + c;\ns = sum(U);\n"
    "Assign T\n\
     \  Call zeros : real tensor [2x3x3]\n\
     \    Num 2 : integer scalar\n\
     \    Num 3 : integer scalar\n\
     \    Num 3 : integer scalar\n\
     Assign c\n\
     \  Call ones : real matrix [3x3]\n\
     \    Num 3 : integer scalar\n\
     \    Num 3 : integer scalar\n\
     Assign U\n\
     \  Binop + : real tensor [2x3x3] [frame-lift 1]\n\
     \    Varref T : real tensor [2x3x3]\n\
     \    Varref c : real matrix [3x3]\n\
     Assign s\n\
     \  Call sum : real scalar\n\
     \    Varref U : real tensor [2x3x3]\n"

(* Control flow, indexed assignment and a leading-axis section. *)
let golden_control_flow =
  check_golden "control-flow listing"
    "T = zeros(4, 2, 2);\nfor i = 1:3\n  T(1, 1, 1) = i;\nend\nS = T(2:3, :, :);\n"
    "Assign T\n\
     \  Call zeros : real tensor [4x2x2]\n\
     \    Num 4 : integer scalar\n\
     \    Num 2 : integer scalar\n\
     \    Num 2 : integer scalar\n\
     For i\n\
     \  Range : integer matrix [1x3]\n\
     \    Num 1 : integer scalar\n\
     \    Num 3 : integer scalar\n\
     \  Assign T(...)\n\
     \    Num 1 : integer scalar\n\
     \    Num 1 : integer scalar\n\
     \    Num 1 : integer scalar\n\
     \    Varref i : integer scalar\n\
     Assign S\n\
     \  Index T : real tensor [2x2x2]\n\
     \    Range : integer matrix [1x2]\n\
     \      Num 2 : integer scalar\n\
     \      Num 3 : integer scalar\n\
     \    Colon : integer scalar\n\
     \    Colon : integer scalar\n"

(* --- the invariant validator --------------------------------------------- *)

let no_pos = Source.no_pos

(* A fresh annotated node, as [Ast.mk] builds them. *)
let mk = Ast.mk ~pos:no_pos

let script_of e =
  { Ast.script = [ Ast.mk_stmt (Ast.Expr (e, false)) ]; funcs = [] }

let test_validator_clean () =
  let fe =
    Otter.compile_frontend
      "T = zeros(2, 3, 3);\nU = T + ones(3, 3);\ns = sum(U);\nfprintf('%g\\n', s);\n"
  in
  Alcotest.(check (list string))
    "no violations" []
    (Analysis.Ast_check.errors fe.Otter.fe_ast)

let test_validator_unresolved () =
  let p = script_of (mk (Ast.Ident "x")) in
  match Analysis.Ast_check.errors p with
  | [ msg ] ->
      Alcotest.(check bool)
        "mentions the identifier" true
        (Testutil.contains msg "unresolved identifier 'x'")
  | errs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length errs)

let test_validator_duplicate_id () =
  (* Two distinct ann records claiming the same id: the discipline says
     equal ids must mean one shared (physically equal) record. *)
  let dup_ann () = { Ast.pos = no_pos; id = 424242; ty = Ty.Bottom; frame = 0 } in
  let a = { Ast.ann = dup_ann (); node = Ast.Num 1. } in
  let b = { Ast.ann = dup_ann (); node = Ast.Num 2. } in
  let p = script_of (mk (Ast.Binop (Ast.Add, a, b))) in
  match Analysis.Ast_check.errors p with
  | [ msg ] ->
      Alcotest.(check bool)
        "reports the reuse" true
        (Testutil.contains msg "annotation id 424242 reused")
  | errs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length errs)

let test_validator_shared_ann_ok () =
  (* The sanctioned form of id reuse: a [{ e with node = ... }] copy
     shares the ann record, and both copies may appear in the tree. *)
  let original = mk (Ast.Varref "x") in
  let copy = { original with Ast.node = Ast.Varref "x" } in
  let p = script_of (mk (Ast.Binop (Ast.Add, original, copy))) in
  Alcotest.(check (list string)) "sharing is legal" [] (Analysis.Ast_check.errors p)

let test_validator_frame_on_scalar () =
  let e = mk (Ast.Num 7.) in
  e.Ast.ann.ty <- Ty.Known Ty.int_scalar;
  e.Ast.ann.frame <- 1;
  let p = script_of e in
  match Analysis.Ast_check.errors p with
  | [ msg ] ->
      Alcotest.(check bool)
        "rejects the lift" true
        (Testutil.contains msg "frame lift 1 on non-tensor")
  | errs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length errs)

let test_validator_frame_too_deep () =
  let e = mk (Ast.Varref "T") in
  e.Ast.ann.ty <- Ty.Known (Ty.tensor ~outer:[ Ty.Dconst 4 ] Ty.Real);
  e.Ast.ann.frame <- 2;
  let p = script_of e in
  match Analysis.Ast_check.errors p with
  | [ msg ] ->
      Alcotest.(check bool)
        "rejects the over-lift" true
        (Testutil.contains msg "frame lift 2 exceeds the 1 frame axes")
  | errs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length errs)

let test_validator_scalar_shape () =
  let e = mk (Ast.Num 7.) in
  e.Ast.ann.ty <-
    Ty.Known
      { Ty.base = Ty.Integer; rank = Ty.Rscalar; shape = Ty.unknown_shape };
  let p = script_of e in
  match Analysis.Ast_check.errors p with
  | [ msg ] ->
      Alcotest.(check bool)
        "rejects the shape" true
        (Testutil.contains msg "non-1x1 shape")
  | errs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length errs)

(* Every promoted app passes the validator end to end (Otter.compile
   itself raises on violation; this keeps the check visible in the
   suite even if the pipeline wiring changes). *)
let test_validator_apps () =
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = Otter.compile (app.Apps.Scripts.source 10) in
      Alcotest.(check (list string))
        (app.Apps.Scripts.key ^ " invariants") []
        (Analysis.Ast_check.errors c.Otter.ast))
    Apps.Scripts.all

let suite =
  [
    Alcotest.test_case "golden: scalar/matrix" `Quick golden_scalar_matrix;
    Alcotest.test_case "golden: tensor frame lift" `Quick golden_tensor_frame;
    Alcotest.test_case "golden: control flow" `Quick golden_control_flow;
    Alcotest.test_case "validator accepts clean program" `Quick
      test_validator_clean;
    Alcotest.test_case "validator rejects unresolved ident" `Quick
      test_validator_unresolved;
    Alcotest.test_case "validator rejects duplicate ids" `Quick
      test_validator_duplicate_id;
    Alcotest.test_case "validator allows shared ann copies" `Quick
      test_validator_shared_ann_ok;
    Alcotest.test_case "validator rejects frame lift on scalar" `Quick
      test_validator_frame_on_scalar;
    Alcotest.test_case "validator rejects over-deep frame lift" `Quick
      test_validator_frame_too_deep;
    Alcotest.test_case "validator rejects malformed scalar shape" `Quick
      test_validator_scalar_shape;
    Alcotest.test_case "all apps satisfy AST invariants" `Quick
      test_validator_apps;
  ]
