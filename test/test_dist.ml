(* Distribution-arithmetic tests: QCheck properties of the block,
   block-cyclic and 2-D grid owner/low/count algebra, the edge cases
   (n = 0, n < p, p = 1, block > n), and end-to-end verification of
   the paper applications under the non-block layouts. *)

open Runtime

let t name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest

(* --- 1-D block ----------------------------------------------------------- *)

let gen_pn = QCheck.(pair (int_range 1 32) (int_range 0 200))

let block_partition =
  QCheck.Test.make ~count:500 ~name:"block: ranges partition [0,n)" gen_pn
    (fun (p, n) ->
      let counts = Dist.counts ~nprocs:p ~n in
      Array.length counts = p
      && Array.fold_left ( + ) 0 counts = n
      && Array.for_all (fun c -> c >= 0) counts
      &&
      (* consecutive non-empty blocks tile [0,n) in rank order; [high]
         is the exclusive upper bound of the half-open range *)
      let next = ref 0 and ok = ref true in
      for r = 0 to p - 1 do
        let lo = Dist.low ~rank:r ~nprocs:p ~n in
        let sz = Dist.size ~rank:r ~nprocs:p ~n in
        if sz <> counts.(r) then ok := false;
        if sz > 0 && lo <> !next then ok := false;
        if Dist.high ~rank:r ~nprocs:p ~n <> lo + sz then ok := false;
        next := !next + sz
      done;
      !ok && !next = n)

let block_owner_inverse =
  QCheck.Test.make ~count:500 ~name:"block: owner inverse of low/high" gen_pn
    (fun (p, n) ->
      let ok = ref true in
      for i = 0 to n - 1 do
        let r = Dist.owner ~nprocs:p ~n i in
        if r < 0 || r >= p then ok := false
        else if
          i < Dist.low ~rank:r ~nprocs:p ~n
          || i >= Dist.high ~rank:r ~nprocs:p ~n
        then ok := false
      done;
      !ok)

let block_balance =
  QCheck.Test.make ~count:500 ~name:"block: sizes differ by at most one"
    gen_pn (fun (p, n) ->
      let counts = Dist.counts ~nprocs:p ~n in
      let mn = Array.fold_left min max_int counts in
      let mx = Array.fold_left max 0 counts in
      mx - mn <= 1)

(* --- block-cyclic -------------------------------------------------------- *)

let gen_pbn =
  QCheck.(triple (int_range 1 16) (int_range 1 10) (int_range 0 200))

let cyclic_counts_sum =
  QCheck.Test.make ~count:500 ~name:"cyclic: counts sum to n" gen_pbn
    (fun (p, b, n) ->
      let counts = Dist.Cyclic.counts ~nprocs:p ~b ~n in
      Array.length counts = p
      && Array.fold_left ( + ) 0 counts = n
      && Array.for_all (fun c -> c >= 0) counts
      && Array.to_list counts
         = List.init p (fun r -> Dist.Cyclic.count ~rank:r ~nprocs:p ~b ~n))

let cyclic_inverse =
  QCheck.Test.make ~count:500
    ~name:"cyclic: global_of_local inverse of local_of_global" gen_pbn
    (fun (p, b, n) ->
      let ok = ref true in
      for i = 0 to n - 1 do
        let r = Dist.Cyclic.owner ~nprocs:p ~b i in
        let l = Dist.Cyclic.local_of_global ~nprocs:p ~b i in
        if r < 0 || r >= p then ok := false;
        if l < 0 || l >= Dist.Cyclic.count ~rank:r ~nprocs:p ~b ~n then
          ok := false;
        if Dist.Cyclic.global_of_local ~rank:r ~nprocs:p ~b l <> i then
          ok := false
      done;
      !ok)

let cyclic_partition =
  QCheck.Test.make ~count:300
    ~name:"cyclic: per-rank locals partition [0,n) ascending" gen_pbn
    (fun (p, b, n) ->
      let seen = Array.make (max n 1) 0 in
      let ok = ref true in
      for r = 0 to p - 1 do
        let c = Dist.Cyclic.count ~rank:r ~nprocs:p ~b ~n in
        let prev = ref (-1) in
        for l = 0 to c - 1 do
          let g = Dist.Cyclic.global_of_local ~rank:r ~nprocs:p ~b l in
          if g < 0 || g >= n then ok := false
          else begin
            seen.(g) <- seen.(g) + 1;
            if Dist.Cyclic.owner ~nprocs:p ~b g <> r then ok := false;
            if g <= !prev then ok := false;
            prev := g
          end
        done
      done;
      !ok && (n = 0 || Array.for_all (fun c -> c = 1) seen))

(* --- 2-D grid ------------------------------------------------------------ *)

let gen_grid =
  QCheck.(
    quad (int_range 1 6) (int_range 1 6) (int_range 0 24) (int_range 0 24))

let grid_counts_sum =
  QCheck.Test.make ~count:500 ~name:"grid: tile sizes sum to rows*cols"
    gen_grid (fun (pr, pc, rows, cols) ->
      let counts = Dist.Grid.counts ~pr ~pc ~rows ~cols in
      Array.length counts = pr * pc
      && Array.fold_left ( + ) 0 counts = rows * cols
      && Array.to_list counts
         = List.init (pr * pc) (fun r ->
               Dist.Grid.count ~pr ~pc ~rows ~cols r))

let grid_owner_tiles =
  QCheck.Test.make ~count:300
    ~name:"grid: owner consistent with row/col blocks" gen_grid
    (fun (pr, pc, rows, cols) ->
      let ok = ref true in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let r = Dist.Grid.owner ~pr ~pc ~rows ~cols ~i ~j in
          if r < 0 || r >= pr * pc then ok := false
          else begin
            let ri, rc = Dist.Grid.row_block ~pr ~pc ~rows r in
            let cj, cc = Dist.Grid.col_block ~pr ~pc ~cols r in
            if not (i >= ri && i < ri + rc && j >= cj && j < cj + cc) then
              ok := false
          end
        done
      done;
      (* tile areas double-count nothing: sum = rows*cols checked above,
         and every (i,j) landed inside its owner's tile *)
      !ok)

(* --- edge cases ---------------------------------------------------------- *)

let test_edges () =
  (* n = 0: everyone owns nothing *)
  Alcotest.(check (array int))
    "block n=0" [| 0; 0; 0; 0; 0 |]
    (Dist.counts ~nprocs:5 ~n:0);
  Alcotest.(check (array int))
    "cyclic n=0" [| 0; 0; 0 |]
    (Dist.Cyclic.counts ~nprocs:3 ~b:2 ~n:0);
  (* n < p: n ranks own one item each under the r*n/p formula *)
  Alcotest.(check (array int))
    "block n<p" [| 0; 1; 0; 1; 1 |]
    (Dist.counts ~nprocs:5 ~n:3);
  (* p = 1: rank 0 owns everything, identity local numbering *)
  Alcotest.(check int) "block p=1" 7 (Dist.size ~rank:0 ~nprocs:1 ~n:7);
  for i = 0 to 6 do
    Alcotest.(check int) "cyclic p=1 owner" 0
      (Dist.Cyclic.owner ~nprocs:1 ~b:2 i);
    Alcotest.(check int) "cyclic p=1 local" i
      (Dist.Cyclic.local_of_global ~nprocs:1 ~b:2 i)
  done;
  (* block size larger than n: rank 0 owns the single short block *)
  Alcotest.(check (array int))
    "cyclic b>n" [| 5; 0; 0 |]
    (Dist.Cyclic.counts ~nprocs:3 ~b:7 ~n:5);
  (* degenerate grid axis: one row over two grid rows — the r*n/p
     formula gives the row to grid-row 1, so ranks 0/1 hold nothing *)
  Alcotest.(check (array int))
    "grid 1 row" [| 0; 0; 2; 2 |]
    (Dist.Grid.counts ~pr:2 ~pc:2 ~rows:1 ~cols:4)

(* --- layout plumbing ----------------------------------------------------- *)

let test_layout_names () =
  List.iter
    (fun (s, l) ->
      (match Otter.Config.layout_of_string s with
      | Some got when got = l -> ()
      | Some _ -> Alcotest.failf "layout_of_string %S: wrong layout" s
      | None -> Alcotest.failf "layout_of_string %S: parse failed" s);
      Alcotest.(check string)
        ("round-trip " ^ s) s
        (Otter.Config.layout_name l))
    [
      ("block", Dmat.Lblock);
      ("cyclic:1", Dmat.Lcyclic 1);
      ("cyclic:4", Dmat.Lcyclic 4);
      ("grid:2x2", Dmat.Lgrid (2, 2));
      ("grid:1x8", Dmat.Lgrid (1, 8));
    ];
  Alcotest.(check bool)
    "bare cyclic" true
    (Otter.Config.layout_of_string "cyclic" = Some (Dmat.Lcyclic 1));
  List.iter
    (fun s ->
      if Otter.Config.layout_of_string s <> None then
        Alcotest.failf "layout_of_string %S: expected None" s)
    [ ""; "cyclic:0"; "cyclic:x"; "grid:2"; "grid:0x2"; "grid:2x"; "banana" ]

(* --- end-to-end: apps under non-block layouts ---------------------------- *)

let verify_layout key ~layout ~nprocs =
  let app = Option.get (Apps.Scripts.find key) in
  let c = Otter.compile (app.Apps.Scripts.source 8) in
  let mm =
    Otter.verify_list
      (Otter.config ~tol:1e-6 ~nprocs ~layout
         ~capture:app.Apps.Scripts.capture ())
      c
  in
  if mm <> [] then
    Alcotest.failf "%s P=%d %s: %s" key nprocs
      (Otter.Config.layout_name layout)
      (String.concat "; "
         (List.map (fun m -> m.Otter.variable ^ ": " ^ m.Otter.detail) mm))

let test_apps_cyclic () =
  List.iter
    (fun key ->
      verify_layout key ~layout:(Dmat.Lcyclic 1) ~nprocs:4;
      verify_layout key ~layout:(Dmat.Lcyclic 3) ~nprocs:4)
    [ "cg"; "ocean"; "tc" ]

let test_apps_grid () =
  List.iter
    (fun key -> verify_layout key ~layout:(Dmat.Lgrid (2, 2)) ~nprocs:4)
    [ "cg"; "ocean"; "tc" ];
  verify_layout "cg" ~layout:(Dmat.Lgrid (1, 4)) ~nprocs:4;
  verify_layout "tc" ~layout:(Dmat.Lgrid (4, 1)) ~nprocs:4

let test_grid_rank_mismatch () =
  let c = Otter.compile (Apps.Scripts.cg ~n:16 ~iters:2 ()) in
  match
    Otter.outcome_exn
      (Otter.run (Otter.config ~nprocs:4 ~layout:(Dmat.Lgrid (2, 3)) ()) c)
  with
  | exception e ->
      let msg = Printexc.to_string e in
      if not (Testutil.contains msg "needs 6 ranks, but the run has 4") then
        Alcotest.failf "unexpected error: %s" msg
  | _ -> Alcotest.fail "grid 2x3 on 4 ranks should be rejected"

let suite =
  [
    qt block_partition;
    qt block_owner_inverse;
    qt block_balance;
    qt cyclic_counts_sum;
    qt cyclic_inverse;
    qt cyclic_partition;
    qt grid_counts_sum;
    qt grid_owner_tiles;
    t "edge cases" test_edges;
    t "layout parse/print" test_layout_names;
    t "apps verify under cyclic layouts" test_apps_cyclic;
    t "apps verify under 2-D grid layouts" test_apps_grid;
    t "grid shape must match nprocs" test_grid_rank_mismatch;
  ]
