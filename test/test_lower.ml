(* Expression-rewriting tests (paper passes 4 and 5): communication
   lifting, element-wise fusion, owner guards, broadcasts. *)

module Ir = Spmd.Ir

let t name f = Alcotest.test_case name `Quick f

let lower src =
  let c = Otter.compile src in
  c.Otter.prog

(* Unoptimized lowering (before peephole), for pass-4 shape checks. *)
let lower_raw src =
  let p = Analysis.Resolve.run (Mlang.Parser.parse_program src) in
  let info = Analysis.Infer.program p in
  Spmd.Lower.lower_program info p

let rec flatten (b : Ir.block) : Ir.inst list =
  List.concat_map
    (fun i ->
      i
      ::
      (match i with
      | Ir.Iif (branches, els) ->
          List.concat_map (fun (_, blk) -> flatten blk) branches @ flatten els
      | Ir.Iwhile (_, blk) -> flatten blk
      | Ir.Ifor (_, _, _, _, blk) -> flatten blk
      | _ -> []))
    b

let count pred prog =
  List.length (List.filter pred (flatten prog.Ir.p_body))

let test_elementwise_fusion () =
  (* a + b .* c - d: one fused loop, no library calls *)
  let prog =
    lower
      "a = ones(4, 1); b = ones(4, 1); c = ones(4, 1); d = ones(4, 1);\n\
       x = a + b .* c - d;"
  in
  Alcotest.(check int) "one element-wise loop" 1
    (count (function Ir.Ielem _ -> true | _ -> false) prog);
  Alcotest.(check int) "no matmul" 0
    (count (function Ir.Imatmul _ -> true | _ -> false) prog)

let test_scalar_broadcast_in_fusion () =
  let prog = lower "v = ones(4, 1); s = 2;\nx = s .* v + 1;" in
  match
    List.find_opt
      (function Ir.Ielem _ -> true | _ -> false)
      (flatten prog.Ir.p_body)
  with
  | Some (Ir.Ielem { expr; _ }) ->
      (* the scalar appears as a hoisted Escalar, not a matrix operand *)
      let rec scalars = function
        | Ir.Escalar _ -> 1
        | Ir.Emat _ | Ir.Eeye -> 0
        | Ir.Ebin (_, a, b) | Ir.Ecall2 (_, a, b) -> scalars a + scalars b
        | Ir.Eneg a | Ir.Enot a | Ir.Ecall1 (_, a) -> scalars a
      in
      Alcotest.(check bool) "has hoisted scalars" true (scalars expr >= 2)
  | _ -> Alcotest.fail "expected a fused loop"

let test_communication_lifting () =
  (* The paper's example: a = b * c + d(i, j) becomes a matmul call, an
     element broadcast, and one element-wise loop. *)
  let prog =
    lower
      "n = 4;\nb = ones(n, n); c = ones(n, n); d = ones(n, n);\ni = 2; j = 3;\n\
       a = b * c + d(i, j);"
  in
  Alcotest.(check int) "one matmul" 1
    (count (function Ir.Imatmul _ -> true | _ -> false) prog);
  Alcotest.(check int) "one broadcast" 1
    (count (function Ir.Ibcast _ -> true | _ -> false) prog);
  Alcotest.(check int) "one fused loop" 1
    (count (function Ir.Ielem _ -> true | _ -> false) prog)

let test_owner_guard () =
  (* Paper pass 5: a(i,j) = a(i,j) / b(j,i) -> broadcast + guarded store *)
  let prog =
    lower
      "a = ones(3, 3); b = ones(3, 3); i = 1; j = 2;\na(i, j) = a(i, j) / b(j, i);"
  in
  (* at -O2 the comm pass may coalesce the two broadcasts into one
     batched collective; count broadcast elements, not instructions *)
  let broadcast_elems =
    List.fold_left
      (fun n i ->
        match i with
        | Ir.Ibcast _ -> n + 1
        | Ir.Ibcast_batch (items, _) -> n + List.length items
        | _ -> n)
      0
      (flatten prog.Ir.p_body)
  in
  Alcotest.(check int) "two broadcasts" 2 broadcast_elems;
  Alcotest.(check int) "one guarded store" 1
    (count (function Ir.Isetelem _ -> true | _ -> false) prog)

let test_dot_recognition () =
  let prog = lower "r = ones(9, 1);\nrho = r' * r;" in
  Alcotest.(check int) "dot, not matmul" 1
    (count (function Ir.Idot _ -> true | _ -> false) prog);
  Alcotest.(check int) "no transpose call" 0
    (count (function Ir.Itranspose _ -> true | _ -> false) prog)

let test_outer_recognition () =
  let prog = lower "u = ones(3, 1); v = ones(5, 1);\nA = u * v';" in
  Alcotest.(check int) "outer product call" 1
    (count (function Ir.Iouter _ -> true | _ -> false) prog)

let test_reduction_dispatch () =
  let prog = lower "v = ones(6, 1);\ns = sum(v);" in
  Alcotest.(check int) "vector reduce to scalar" 1
    (count (function Ir.Ireduce_all (_, Ir.Rsum, _) -> true | _ -> false) prog);
  let prog = lower "A = ones(4, 6);\ns = sum(A);" in
  Alcotest.(check int) "matrix reduce to row vector" 1
    (count (function Ir.Ireduce_cols (_, Ir.Rsum, _) -> true | _ -> false) prog)

let test_sections () =
  let prog = lower "A = ones(4, 6);\nB = A(2:3, :);" in
  Alcotest.(check int) "section call" 1
    (count (function Ir.Isection _ -> true | _ -> false) prog)

let test_size_becomes_header_read () =
  (* size() should not communicate: it reads the replicated header. *)
  let prog = lower "A = ones(4, 6);\n[r, c] = size(A);\nB = zeros(r, c);" in
  Alcotest.(check int) "no section/broadcast for size" 0
    (count
       (function Ir.Ibcast _ | Ir.Isection _ -> true | _ -> false)
       prog)

let test_while_condition_with_reduction () =
  (* A reduction inside a while condition must be re-evaluated each
     iteration: the loop is rewritten with a guarded break. *)
  let prog =
    lower "v = ones(4, 1);\nwhile sum(v) > 1\n  v = v ./ 2;\nend"
  in
  let has_reduce_inside_loop =
    List.exists
      (function
        | Ir.Iwhile (_, body) ->
            List.exists
              (function Ir.Ireduce_all _ -> true | _ -> false)
              (flatten body)
        | _ -> false)
      prog.Ir.p_body
  in
  Alcotest.(check bool) "reduction re-evaluated inside loop" true
    has_reduce_inside_loop

let test_display_prints () =
  let prog = lower "x = 3" in
  Alcotest.(check int) "display emits print" 1
    (count (function Ir.Iprint _ -> true | _ -> false) prog);
  let prog = lower "x = 3;" in
  Alcotest.(check int) "semicolon suppresses print" 0
    (count (function Ir.Iprint _ -> true | _ -> false) prog)

let test_raw_copy_before_peephole () =
  (* Before peephole, library results land in temporaries then copy. *)
  let prog = lower_raw "A = ones(3, 3);\nB = A';" in
  Alcotest.(check bool) "raw has copies" true
    (count (function Ir.Icopy _ -> true | _ -> false) prog >= 1);
  (* ... and the peephole pass removes them all on this program *)
  let prog = lower "A = ones(3, 3);\nB = A';" in
  Alcotest.(check int) "optimized has none" 0
    (count (function Ir.Icopy _ -> true | _ -> false) prog)

let test_concat_and_setsection_lowering () =
  let prog = lower "v = ones(3, 1); w = ones(3, 1);\nM = [v, w];" in
  Alcotest.(check int) "concat instruction" 1
    (count (function Ir.Iconcat _ -> true | _ -> false) prog);
  let prog = lower "a = ones(6, 1);\na(1:3) = ones(3, 1);" in
  Alcotest.(check int) "section store" 1
    (count (function Ir.Isetsection _ -> true | _ -> false) prog);
  let prog = lower "a = ones(6, 1);\na(2:4) = 7;" in
  Alcotest.(check int) "scalar fill store" 1
    (count (function Ir.Isetsection _ -> true | _ -> false) prog)

let test_matrix_condition_and_vector_for () =
  (* matrix condition compiles to an all-reduction *)
  let prog = lower "v = ones(3, 1);\nif v\n  x = 1;\nend" in
  Alcotest.(check int) "all-reduce for matrix condition" 1
    (count (function Ir.Ireduce_all (_, Ir.Rall, _) -> true | _ -> false) prog);
  (* for over a vector becomes an index loop with an element broadcast *)
  let prog = lower "v = (1:5)';\ns = 0;\nfor x = v\n  s = s + x;\nend" in
  let bcast_in_loop =
    List.exists
      (function
        | Ir.Ifor (_, _, _, _, body) ->
            List.exists (function Ir.Ibcast _ -> true | _ -> false) body
        | _ -> false)
      prog.Ir.p_body
  in
  Alcotest.(check bool) "broadcast inside hidden loop" true bcast_in_loop

let test_unsupported_constructs () =
  let expect src =
    match lower src with
    | exception (Spmd.Lower.Unsupported _ | Mlang.Source.Error _) -> ()
    | _ -> Alcotest.failf "expected a compile-time rejection of %S" src
  in
  expect "A = ones(2, 2); B = ones(2, 2);\nC = A / B;";
  expect "A = ones(3, 3);\nfor col = A\n  y = col;\nend"

let suite =
  [
    t "element-wise fusion" test_elementwise_fusion;
    t "scalar broadcast in fusion" test_scalar_broadcast_in_fusion;
    t "communication lifting (paper example)" test_communication_lifting;
    t "owner guard (paper pass 5 example)" test_owner_guard;
    t "dot recognition" test_dot_recognition;
    t "outer-product recognition" test_outer_recognition;
    t "reduction dispatch" test_reduction_dispatch;
    t "sections" test_sections;
    t "size reads the header" test_size_becomes_header_read;
    t "while with reduction in condition" test_while_condition_with_reduction;
    t "display flag" test_display_prints;
    t "temporaries before peephole" test_raw_copy_before_peephole;
    t "concat and section-store lowering" test_concat_and_setsection_lowering;
    t "matrix conditions and vector for" test_matrix_condition_and_vector_for;
    t "unsupported constructs rejected" test_unsupported_constructs;
  ]
