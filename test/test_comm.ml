(* Communication-optimizer tests: golden-IR checks for the three
   rewrites (broadcast batching, reduction fusion, transpose
   elimination), their dependence and barrier limits, and a
   message-count regression gate over the paper applications. *)

module Ir = Spmd.Ir

let t name f = Alcotest.test_case name `Quick f
let prog ?(vars = []) b = { Ir.p_vars = vars; p_body = b; p_funcs = [] }
let stat st k = List.assoc k st

(* --- broadcast batching ------------------------------------------------- *)

let test_batches_broadcasts_past_locals () =
  (* Lowering interleaves each broadcast with the scalar copy consuming
     it; the pass must look past the copies and still coalesce. *)
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Iscalar ("x", Ir.Svar "ML_tmp1");
      Ir.Ibcast ("ML_tmp2", "A", [ Ir.Sconst 2.; Ir.Sconst 1. ]);
      Ir.Iscalar ("y", Ir.Svar "ML_tmp2");
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "batched" 2 (stat st "broadcasts-batched");
  match p'.Ir.p_body with
  | [
   Ir.Ibcast_batch ([ ("ML_tmp1", _); ("ML_tmp2", _) ], "A");
   Ir.Iscalar ("x", _);
   Ir.Iscalar ("y", _);
  ] ->
      ()
  | _ -> Alcotest.fail "expected one batch followed by the sunk consumers"

let test_no_batch_across_matrices () =
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Ibcast ("ML_tmp2", "B", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
    ]
  in
  let _, st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "nothing batched" 0 (stat st "broadcasts-batched")

let test_no_batch_across_barrier () =
  (* A print between the broadcasts fixes the output order: the run
     must stop at it. *)
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Iprint ("ML_tmp1", Ir.Pscalar (Ir.Svar "ML_tmp1"));
      Ir.Ibcast ("ML_tmp2", "A", [ Ir.Sconst 2.; Ir.Sconst 1. ]);
    ]
  in
  let _, st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "nothing batched" 0 (stat st "broadcasts-batched")

let test_independent_local_hoists () =
  (* A local touching neither broadcast may move before the batch. *)
  let b =
    [
      Ir.Ibcast ("ML_tmp1", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Iscalar ("k", Ir.Sconst 7.);
      Ir.Ibcast ("ML_tmp2", "A", [ Ir.Sconst 2.; Ir.Sconst 1. ]);
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "batched" 2 (stat st "broadcasts-batched");
  match p'.Ir.p_body with
  | [ Ir.Iscalar ("k", _); Ir.Ibcast_batch ([ _; _ ], "A") ] -> ()
  | _ -> Alcotest.fail "independent local should hoist above the batch"

(* --- reduction fusion --------------------------------------------------- *)

let test_fuses_mixed_reductions () =
  (* sum, mean, dot and norm all combine by summation: one vector
     allreduce carries all four partials. *)
  let b =
    [
      Ir.Ireduce_all ("s", Ir.Rsum, "A");
      Ir.Iscalar ("x", Ir.Svar "s");
      Ir.Ireduce_all ("m", Ir.Rmean, "A");
      Ir.Idot ("d", "A", "B");
      Ir.Inorm ("n", "B");
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "fused" 4 (stat st "reductions-fused");
  match p'.Ir.p_body with
  | [
   Ir.Ireduce_fused
     [
       ("s", Ir.Fsum "A");
       ("m", Ir.Fmean "A");
       ("d", Ir.Fdot ("A", "B"));
       ("n", Ir.Fnorm "B");
     ];
   Ir.Iscalar ("x", _);
  ] ->
      ()
  | _ -> Alcotest.fail "expected a single four-slot fused allreduce"

let test_no_fuse_of_non_sum_kinds () =
  (* max combines by comparison: it cannot ride a Sum allreduce. *)
  let b =
    [
      Ir.Ireduce_all ("s", Ir.Rsum, "A");
      Ir.Ireduce_all ("m", Ir.Rmax, "A");
    ]
  in
  let _, st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "nothing fused" 0 (stat st "reductions-fused")

let test_dependence_blocks_fusion () =
  (* The CG pattern: the second dot reads a matrix rebuilt from the
     first dot's result, so the two must stay separate collectives. *)
  let b =
    [
      Ir.Idot ("a", "r", "r");
      Ir.Iconstruct { dst = "r"; kind = Ir.Czeros; args = [ Ir.Svar "a" ] };
      Ir.Idot ("b", "r", "r");
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "nothing fused" 0 (stat st "reductions-fused");
  match p'.Ir.p_body with
  | [ Ir.Idot _; Ir.Iconstruct _; Ir.Idot _ ] -> ()
  | _ -> Alcotest.fail "dependent reductions must keep their order"

let test_fuses_inside_loop_body () =
  let body =
    [
      Ir.Ireduce_all ("s1", Ir.Rsum, "A");
      Ir.Iscalar ("x", Ir.Svar "s1");
      Ir.Ireduce_all ("s2", Ir.Rsum, "B");
    ]
  in
  let loop = Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Sconst 3., body) in
  let p', st = Spmd.Comm.run (prog [ loop ]) in
  Alcotest.(check int) "fused" 2 (stat st "reductions-fused");
  match p'.Ir.p_body with
  | [ Ir.Ifor (_, _, _, _, [ Ir.Ireduce_fused [ _; _ ]; Ir.Iscalar _ ]) ] -> ()
  | _ -> Alcotest.fail "fusion should apply inside loop bodies"

(* --- transpose elimination ---------------------------------------------- *)

let test_transpose_matmul_becomes_matmul_t () =
  let b =
    [
      Ir.Itranspose ("ML_tmp1", "A");
      Ir.Imatmul ("C", "ML_tmp1", "B");
      Ir.Iprint ("C", Ir.Pmat "C");
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "rewritten" 1 (stat st "matmuls-detransposed");
  match p'.Ir.p_body with
  | [ Ir.Imatmul_t ("C", "A", "B"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "single-use temporary transpose should disappear"

let test_multi_use_transpose_is_kept () =
  (* The transpose result has a second reader: the multiply still skips
     the redistribution, but the transpose must survive. *)
  let b =
    [
      Ir.Itranspose ("ML_tmp1", "A");
      Ir.Imatmul ("C", "ML_tmp1", "B");
      Ir.Iprint ("ML_tmp1", Ir.Pmat "ML_tmp1");
    ]
  in
  let p', st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "rewritten" 1 (stat st "matmuls-detransposed");
  match p'.Ir.p_body with
  | [ Ir.Itranspose ("ML_tmp1", "A"); Ir.Imatmul_t ("C", "A", "B"); Ir.Iprint _ ]
    ->
      ()
  | _ -> Alcotest.fail "multi-use transpose must be kept"

let test_self_multiply_not_rewritten () =
  (* C = A' * A': both operands are the transpose; the pattern does not
     apply. *)
  let b =
    [ Ir.Itranspose ("ML_tmp1", "A"); Ir.Imatmul ("C", "ML_tmp1", "ML_tmp1") ]
  in
  let _, st = Spmd.Comm.run (prog b) in
  Alcotest.(check int) "not rewritten" 0 (stat st "matmuls-detransposed")

(* --- end to end through the driver -------------------------------------- *)

let test_o2_pipeline_applies_comm () =
  (* Two same-matrix broadcasts and two independent reductions survive
     the earlier passes and reach the comm pass intact. *)
  let src =
    "A = rand(8,1); B = rand(8,1);\n\
     x = A(1,1); y = A(2,1);\n\
     s = sum(A); n = norm(B);\n\
     disp(x + y + s + n)\n"
  in
  let c = Otter.compile ~opt:Spmd.Pass.O2 ~validate:true src in
  let comm =
    List.find (fun (r : Spmd.Pass.record) -> r.pass = "comm") c.passes
  in
  Alcotest.(check bool)
    "batched something" true
    (stat comm.detail "broadcasts-batched" >= 2);
  Alcotest.(check bool)
    "fused something" true
    (stat comm.detail "reductions-fused" >= 2);
  (* and the optimized program still matches the interpreter *)
  let mm =
    Otter.verify_list
      (Otter.config ~tol:1e-9 ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4
         ~capture:[ "x"; "y"; "s"; "n" ] ())
      c
  in
  Alcotest.(check int) "verifies" 0 (List.length mm)

(* --- message-count regression gate -------------------------------------- *)

(* Simulated message counts for the paper applications at scale 5,
   P = 4, Meiko CS-2, -O2 -- recorded when the comm pass landed.  The
   optimizer may only ever lower these. *)
let message_baselines =
  [ ("cg", 1440); ("ocean", 70); ("nbody", 193); ("tc", 76) ]

let test_message_counts_never_regress () =
  List.iter
    (fun (a : Apps.Scripts.app) ->
      let c = Otter.compile ~opt:Spmd.Pass.O2 (a.source 5) in
      let o =
        Otter.outcome_exn
          (Otter.run
             (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 ())
             c)
      in
      let msgs = o.Exec.Vm.report.Mpisim.Sim.messages in
      let baseline = List.assoc a.key message_baselines in
      if msgs > baseline then
        Alcotest.failf "%s: %d messages at P=4, baseline %d" a.key msgs
          baseline)
    Apps.Scripts.apps

let test_o2_beats_o1_on_messages () =
  (* The headline claim: -O2 sends fewer messages than -O1 on most of
     the applications (cg's in-loop reductions are dependence-limited
     and tc has no fusable collectives, so "most" is 2 of 4). *)
  let better =
    List.filter
      (fun (a : Apps.Scripts.app) ->
        let msgs opt =
          let c = Otter.compile ~opt (a.source 5) in
          (Otter.outcome_exn
             (Otter.run
                (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 ())
                c))
            .Exec.Vm.report
            .Mpisim.Sim.messages
        in
        msgs Spmd.Pass.O2 < msgs Spmd.Pass.O1)
      Apps.Scripts.apps
  in
  Alcotest.(check bool)
    "fewer messages on at least two apps" true
    (List.length better >= 2)

let test_apps_verify_on_every_machine_at_o2 () =
  (* Cross-machine spot check: the comm rewrites are machine-independent
     and exact, so every model verifies against the interpreter. *)
  List.iter
    (fun (a : Apps.Scripts.app) ->
      let c = Otter.compile ~opt:Spmd.Pass.O2 (a.source 3) in
      List.iter
        (fun machine ->
          let p = min 4 machine.Mpisim.Machine.max_procs in
          let mm =
            Otter.verify_list
              (Otter.config ~tol:1e-6 ~machine ~nprocs:p ~capture:a.capture ())
              c
          in
          if mm <> [] then
            Alcotest.failf "%s on %s P=%d: %s" a.key
              machine.Mpisim.Machine.name p
              (String.concat "; "
                 (List.map
                    (fun m -> m.Otter.variable ^ ": " ^ m.Otter.detail)
                    mm)))
        Mpisim.Machine.all)
    Apps.Scripts.apps

let suite =
  [
    t "batches broadcasts past locals" test_batches_broadcasts_past_locals;
    t "no batch across matrices" test_no_batch_across_matrices;
    t "no batch across barrier" test_no_batch_across_barrier;
    t "independent local hoists" test_independent_local_hoists;
    t "fuses mixed reductions" test_fuses_mixed_reductions;
    t "no fuse of non-sum kinds" test_no_fuse_of_non_sum_kinds;
    t "dependence blocks fusion" test_dependence_blocks_fusion;
    t "fuses inside loop body" test_fuses_inside_loop_body;
    t "transpose+matmul becomes matmul_t"
      test_transpose_matmul_becomes_matmul_t;
    t "multi-use transpose is kept" test_multi_use_transpose_is_kept;
    t "self multiply not rewritten" test_self_multiply_not_rewritten;
    t "O2 pipeline applies comm" test_o2_pipeline_applies_comm;
    t "message counts never regress" test_message_counts_never_regress;
    t "O2 beats O1 on messages" test_o2_beats_o1_on_messages;
    t "apps verify on every machine at O2"
      test_apps_verify_on_every_machine_at_o2;
  ]
