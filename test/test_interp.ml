(* Reference-interpreter tests: full MATLAB-subset semantics including
   the dynamic features the compiler restricts (matrix concatenation,
   section assignment, for-over-matrix), plus the cost models, plus
   differential agreement with the VM on random element-wise programs. *)

open Testutil

let t name f = Alcotest.test_case name `Quick f

let value src name = interp_value src name

let test_dynamic_semantics () =
  check_close "concat rows" 21.
    (value "a = [1, 2, 3];\nb = [4, 5, 6];\nM = [a; b];\ns = sum(sum(M));" "s");
  check_close "concat of vectors" 10.
    (value "u = [1; 2];\nv = [3; 4];\nw = [u; v];\ns = sum(w);" "s");
  check_close "section assignment" 100.
    (value "v = zeros(10, 1);\nv(1:5) = 20;\ns = sum(v);" "s");
  check_close "section assignment from vector" 6.
    (value "v = zeros(5, 1);\nv(2:4) = [1; 2; 3];\ns = sum(v);" "s");
  check_close "matrix condition true" 1.
    (value "A = ones(2, 2);\nif A\n x = 1;\nelse\n x = 0;\nend" "x");
  check_close "matrix condition false" 0.
    (value "A = ones(2, 2);\nA(1, 2) = 0;\nif A\n x = 1;\nelse\n x = 0;\nend" "x");
  check_close "for over row vector" 6.
    (value "s = 0;\nfor x = [1, 2, 3]\n s = s + x;\nend" "s");
  check_close "for over matrix iterates columns" 3.
    (value "n = 0;\nfor col = ones(2, 3)\n n = n + 1;\nend" "n")

let test_matlab_quirks () =
  (* 1x1 results behave as scalars *)
  check_close "1x1 matmul is scalar" 32.
    (value "u = [1, 2, 3];\nv = [4; 5; 6];\ns = u * v;\nx = s + 0;" "x");
  (* linear indexing of matrices is column-major *)
  check_close "column-major linear index" 3.
    (value "A = [1, 2; 3, 4];\nx = A(2);" "x");
  check_close "end is numel for linear" 4.
    (value "A = [1, 2; 3, 4];\nx = A(end);" "x");
  check_close "empty range" 0. (value "v = 5:1;\ns = sum(v) + numel(v);" "s")

let test_string_handling () =
  let out, _ = run_interp "x = 'hello';\ndisp(x)" in
  Alcotest.(check string) "string variable" "hello\n" out;
  let out, _ = run_interp "fprintf('%s world %d\\n', 'cruel', 7);" in
  Alcotest.(check string) "string format" "cruel world 7\n" out

let test_display_format () =
  let out, _ = run_interp "x = 2.5" in
  Alcotest.(check string) "scalar display" "x = 2.5\n" out;
  let out, _ = run_interp "A = eye(2)" in
  Alcotest.(check string) "matrix display"
    "A =\n       1.0000     0.0000\n       0.0000     1.0000\n" out

let test_cost_model_ordering () =
  (* On every benchmark, modeled times order: interpreter slowest. *)
  let src = Apps.Scripts.cg ~n:48 ~iters:5 () in
  let c = compile src in
  let machine = Mpisim.Machine.workstation in
  let time engine =
    (Otter.outcome_exn
       (Otter.run (Otter.config ~engine ~machine ~nprocs:1 ()) c))
      .Exec.Vm.report
      .Mpisim.Sim.makespan
  in
  let ti = time Otter.Config.Einterp in
  let tm = time Otter.Config.Ematcom in
  let to1 = time Otter.Config.Etcode in
  Alcotest.(check bool) "interpreter slower than matcom" true (ti > tm);
  Alcotest.(check bool) "interpreter slower than otter" true (ti > to1);
  Alcotest.(check bool) "sane ratio" true (ti /. to1 > 2. && ti /. to1 < 20.)

let test_interpreter_dispatch_dominates_scalar_loops () =
  (* A scalar loop is far more interpreter-hostile than a vector op of
     the same flop count -- the paper's motivation for vectorizing. *)
  let machine = Mpisim.Machine.workstation in
  let scalar_loop =
    compile "s = 0;\nfor i = 1:10000\n  s = s + i;\nend"
  in
  let vector_op = compile "v = 1:10000;\ns = sum(v);" in
  let ratio c =
    let time engine =
      (Otter.outcome_exn
         (Otter.run (Otter.config ~engine ~machine ~nprocs:1 ()) c))
        .Exec.Vm.report
        .Mpisim.Sim.makespan
    in
    time Otter.Config.Einterp /. time Otter.Config.Etcode
  in
  Alcotest.(check bool) "loops pay more interpretive overhead" true
    (ratio scalar_loop > 2. *. ratio vector_op)

(* Differential testing: random element-wise scripts must agree between
   the interpreter and the 4-CPU compiled run. *)
let gen_script : string QCheck.Gen.t =
  let open QCheck.Gen in
  let vec = oneofl [ "a"; "b"; "c" ] in
  let scalar_expr = oneofl [ "2"; "0.5"; "k"; "-1" ] in
  let rec expr n =
    if n <= 0 then vec
    else
      frequency
        [
          (4, vec);
          ( 4,
            map3
              (fun op x y -> Printf.sprintf "(%s %s %s)" x op y)
              (oneofl [ "+"; "-"; ".*"; "./"; ".^"; "<"; ">=" ])
              (expr (n / 2)) (expr (n / 2)) );
          ( 2,
            map2
              (fun s x -> Printf.sprintf "(%s .* %s)" s x)
              scalar_expr (expr (n - 1)) );
          (1, map (Printf.sprintf "abs(%s)") (expr (n - 1)));
          (1, map (Printf.sprintf "sqrt(abs(%s))") (expr (n - 1)));
          (1, map (Printf.sprintf "circshift(%s, 2)") (expr (n - 1)));
          (1, map (Printf.sprintf "circshift(%s, -5)") (expr (n - 1)));
          (1, map (Printf.sprintf "cumsum(%s)") (expr (n - 1)));
          (1, map (Printf.sprintf "(%s')'") (expr (n - 1)));
          ( 1,
            map2
              (fun x y -> Printf.sprintf "min(%s, %s)" x y)
              (expr (n / 2)) (expr (n / 2)) );
          ( 1,
            map
              (fun x -> Printf.sprintf "(%s + sum(%s) ./ 17)" x x)
              (expr (n - 1)) );
        ]
  in
  map
    (fun e ->
      Printf.sprintf
        "k = 3;\na = rand(17, 1);\nb = rand(17, 1);\nc = ones(17, 1);\n\
         r = %s;\nchk = sum(r) + max(r) + r(3) + r(end);"
        e)
    (expr 4)

let differential_prop src =
  let c = compile src in
  let mm =
    Otter.verify_list
      (Otter.config ~tol:1e-9 ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4
         ~capture:[ "r"; "chk" ] ())
      c
  in
  if mm <> [] then
    QCheck.Test.fail_reportf "mismatch on:\n%s\n%s" src
      (String.concat "; "
         (List.map (fun m -> m.Otter.variable ^ ": " ^ m.Otter.detail) mm));
  true

(* Statement-level fuzz: random structured programs mixing scalar and
   vector state, control flow and element updates, verified between the
   interpreter and a 3-CPU compiled run. *)
let gen_stmt_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let svar = oneofl [ "s"; "t" ] in
  let mvar = oneofl [ "u"; "w" ] in
  let sexpr =
    oneof
      [
        map string_of_int (int_range 1 9);
        svar;
        map2 (Printf.sprintf "(%s + %s)") svar svar;
        map (Printf.sprintf "sum(%s)") mvar;
        map2 (Printf.sprintf "%s(%d)") mvar (int_range 1 12);
      ]
  in
  let mexpr =
    oneof
      [
        mvar;
        map2 (Printf.sprintf "(%s + %s)") mvar mvar;
        map2 (Printf.sprintf "(%s .* %s)") sexpr mvar;
        map (Printf.sprintf "circshift(%s, 3)") mvar;
        map (Printf.sprintf "cumsum(%s)") mvar;
      ]
  in
  let stmt =
    oneof
      [
        map2 (Printf.sprintf "%s = %s;") svar sexpr;
        map2 (Printf.sprintf "%s = %s;") mvar mexpr;
        map3 (Printf.sprintf "%s(%d) = %s;") mvar (int_range 1 12) sexpr;
      ]
  in
  let rec block n =
    if n <= 0 then stmt
    else
      frequency
        [
          (4, stmt);
          (2, map2 (Printf.sprintf "%s\n%s") (block (n / 2)) (block (n / 2)));
          ( 1,
            map2
              (Printf.sprintf "if %s > 4\n%s\nend")
              sexpr (block (n - 1)) );
          (1, map (Printf.sprintf "for i = 1:4\n%s\nend") (block (n - 1)));
        ]
  in
  map
    (fun b ->
      Printf.sprintf
        "s = 1; t = 2;\nu = rand(12, 1);\nw = (1:12)';\n%s\n\
         chk = s + t + sum(u) + sum(w);"
        b)
    (block 3)

let stmt_differential_prop src =
  let c = Testutil.compile src in
  let mm =
    Otter.verify_list
      (Otter.config ~tol:1e-9 ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:3
         ~capture:[ "s"; "t"; "u"; "w"; "chk" ] ())
      c
  in
  if mm <> [] then
    QCheck.Test.fail_reportf "mismatch on:\n%s\n%s" src
      (String.concat "; "
         (List.map (fun m -> m.Otter.variable ^ ": " ^ m.Otter.detail) mm));
  true

let suite =
  [
    t "dynamic semantics beyond the compiler" test_dynamic_semantics;
    t "matlab quirks" test_matlab_quirks;
    t "strings" test_string_handling;
    t "display format" test_display_format;
    t "cost model ordering" test_cost_model_ordering;
    t "interpretive overhead on scalar loops"
      test_interpreter_dispatch_dominates_scalar_loops;
    Testutil.qtest ~count:120 "interpreter == compiled on random programs"
      (QCheck.make ~print:(fun s -> s) gen_script)
      differential_prop;
    Testutil.qtest ~count:80 "interpreter == compiled on random statements"
      (QCheck.make ~print:(fun s -> s) gen_stmt_program)
      stmt_differential_prop;
  ]
