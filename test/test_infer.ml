(* Type / rank / shape inference tests (paper pass 3). *)

open Mlang
module Ty = Analysis.Ty

let t name f = Alcotest.test_case name `Quick f

let infer src =
  let p = Analysis.Resolve.run (Parser.parse_program src) in
  (Analysis.Infer.program p, p)

let var_ty src name =
  let res, _ = infer src in
  Analysis.Infer.var_type res name

let ty = Alcotest.testable Ty.pp Ty.equal

let check_ty msg src name expected =
  Alcotest.check ty msg expected (var_ty src name)

let m ?(r = Ty.Dunknown) ?(c = Ty.Dunknown) base =
  Ty.matrix ~shape:{ Ty.rows = r; cols = c } base

let dc n = Ty.Dconst n

let test_scalar_bases () =
  check_ty "integer literal" "x = 4;" "x" Ty.int_scalar;
  check_ty "real literal" "x = 4.5;" "x" Ty.real_scalar;
  check_ty "int arith stays int" "x = 2 + 3 * 4;" "x" Ty.int_scalar;
  check_ty "division is real" "x = 4 / 2;" "x" Ty.real_scalar;
  check_ty "mixed is real" "x = 1 + 0.5;" "x" Ty.real_scalar;
  check_ty "comparison is int" "x = 3 < 4;" "x" Ty.int_scalar;
  check_ty "sqrt is real" "x = sqrt(4);" "x" Ty.real_scalar;
  check_ty "floor is int" "x = floor(2.7);" "x" Ty.int_scalar

let test_constructor_shapes () =
  check_ty "zeros square" "n = 5;\nA = zeros(n);" "A" (m ~r:(dc 5) ~c:(dc 5) Ty.Real);
  check_ty "zeros rect" "A = zeros(3, 7);" "A" (m ~r:(dc 3) ~c:(dc 7) Ty.Real);
  check_ty "const propagation through arith" "n = 4;\nA = rand(n * 2, n - 1);"
    "A"
    (m ~r:(dc 8) ~c:(dc 3) Ty.Real);
  check_ty "linspace" "v = linspace(0, 1, 11);" "v" (m ~r:(dc 1) ~c:(dc 11) Ty.Real);
  check_ty "range shape" "v = 1:10;" "v" (m ~r:(dc 1) ~c:(dc 10) Ty.Integer);
  check_ty "range with step" "v = 0:0.5:2;" "v" (m ~r:(dc 1) ~c:(dc 5) Ty.Real);
  check_ty "eye" "A = eye(6);" "A" (m ~r:(dc 6) ~c:(dc 6) Ty.Real)

let test_transpose_and_matmul_shapes () =
  check_ty "transpose swaps" "A = zeros(3, 7);\nB = A';" "B"
    (m ~r:(dc 7) ~c:(dc 3) Ty.Real);
  check_ty "matmul shape" "A = zeros(3, 4);\nB = zeros(4, 5);\nC = A * B;" "C"
    (m ~r:(dc 3) ~c:(dc 5) Ty.Real);
  check_ty "vector dot is scalar" "v = ones(9, 1);\ns = v' * v;" "s"
    Ty.real_scalar;
  check_ty "outer is matrix" "u = ones(3, 1);\nv = ones(4, 1);\nA = u * v';" "A"
    (m ~r:(dc 3) ~c:(dc 4) Ty.Real);
  check_ty "scalar times matrix" "A = ones(2, 2);\nB = 3 * A;" "B"
    (m ~r:(dc 2) ~c:(dc 2) Ty.Real)

let test_reduction_shapes () =
  check_ty "sum of vector" "v = ones(5, 1);\ns = sum(v);" "s" Ty.real_scalar;
  check_ty "sum of matrix is row vector" "A = ones(4, 6);\ns = sum(A);" "s"
    (m ~r:(dc 1) ~c:(dc 6) Ty.Real);
  check_ty "norm" "v = ones(5, 1);\ns = norm(v);" "s" Ty.real_scalar;
  check_ty "mean is real" "v = 1:5;\ns = mean(v);" "s" Ty.real_scalar;
  check_ty "size query is int" "A = ones(2, 3);\nr = size(A, 1);" "r"
    Ty.int_scalar;
  check_ty "length of known vector folds" "v = ones(7, 1);\nL = length(v);\nB = zeros(L, 1);"
    "B"
    (m ~r:(dc 7) ~c:(dc 1) Ty.Real)

let test_indexing_types () =
  check_ty "element read is scalar" "A = ones(3, 3);\nx = A(1, 2);" "x"
    Ty.real_scalar;
  check_ty "row section" "A = ones(3, 5);\nr = A(2, :);" "r"
    (m ~r:(dc 1) ~c:(dc 5) Ty.Real);
  check_ty "col section" "A = ones(3, 5);\nc = A(:, 2);" "c"
    (m ~r:(dc 3) ~c:(dc 1) Ty.Real);
  check_ty "range section" "v = ones(10, 1);\nw = v(2:5);" "w"
    (m ~r:(dc 4) ~c:(dc 1) Ty.Real);
  check_ty "linear element of vector" "v = ones(10, 1);\nx = v(3);" "x"
    Ty.real_scalar

let test_control_flow_joins () =
  check_ty "if join widens base" "c = 1;\nif c\n  x = 1;\nelse\n  x = 0.5;\nend"
    "x" Ty.real_scalar;
  check_ty "loop fixpoint widens int to real"
    "x = 1;\nfor i = 1:3\n  x = x / 2;\nend" "x" Ty.real_scalar;
  check_ty "shape join to unknown"
    "c = 1;\nif c\n  A = ones(2, 2);\nelse\n  A = ones(3, 3);\nend" "A"
    (m Ty.Real);
  check_ty "loop-invariant shape survives"
    "A = ones(4, 4);\nfor i = 1:3\n  A = A + A;\nend" "A"
    (m ~r:(dc 4) ~c:(dc 4) Ty.Real)

let test_element_update () =
  check_ty "update keeps shape" "A = zeros(2, 2);\nA(1, 1) = 5;" "A"
    (m ~r:(dc 2) ~c:(dc 2) Ty.Real);
  check_ty "update joins base"
    "A = zeros(2, 2);\nA(1, 1) = 1.5;" "A"
    (m ~r:(dc 2) ~c:(dc 2) Ty.Real)

let test_user_functions () =
  let src = "y = f(2.5);\nfunction r = f(x)\n  r = x + 1;\nend" in
  check_ty "return type from argument" src "y" Ty.real_scalar;
  let src =
    "A = g(4);\nfunction M = g(n)\n  M = zeros(n, n);\nend"
  in
  check_ty "shape through function" src "A" (m ~r:(dc 4) ~c:(dc 4) Ty.Real);
  let res, _ =
    infer "a = h(1);\nfunction [x, y] = h(v)\n  x = v;\n  y = ones(3, 1);\nend"
  in
  match Hashtbl.find_opt res.Analysis.Infer.func_returns "h" with
  | Some [ t1; t2 ] ->
      Alcotest.check ty "first return" Ty.int_scalar t1;
      Alcotest.check ty "second return" (m ~r:(dc 3) ~c:(dc 1) Ty.Real) t2
  | _ -> Alcotest.fail "two return types expected"

let test_expr_annotations () =
  let _res, p = infer "v = ones(8, 1);\nw = v + 2 .* v;" in
  (* every expression node in the second statement got a type written
     into its annotation *)
  let missing = ref 0 in
  (match List.nth p.script 1 with
  | { sdesc = Ast.Assign (_, rhs, _); _ } ->
      Ast.iter_exprs_expr
        (fun e -> if e.Ast.ann.Ast.ty = Ty.Bottom then incr missing)
        rhs
  | _ -> Alcotest.fail "shape");
  Alcotest.(check int) "all nodes annotated" 0 !missing

let test_rejections () =
  let expect src =
    match infer src with
    | exception Source.Error _ -> ()
    | _ -> Alcotest.failf "expected inference error on %S" src
  in
  expect "A = ones(2, 2);\nB = ones(2, 2);\nC = A / B;";
  expect "A = ones(2, 2);\nx = A \\ ones(2, 1);";
  expect "A = ones(2, 2);\nB = A ^ 2;";
  expect "y = f(1);\nfunction r = f(x)\n  r = f(x - 1);\nend"

let suite =
  [
    t "scalar base types" test_scalar_bases;
    t "constructor shapes + constants" test_constructor_shapes;
    t "transpose and matmul shapes" test_transpose_and_matmul_shapes;
    t "reduction shapes" test_reduction_shapes;
    t "indexing types" test_indexing_types;
    t "control-flow joins" test_control_flow_joins;
    t "element update" test_element_update;
    t "user functions" test_user_functions;
    t "expression annotations" test_expr_annotations;
    t "unsupported operations rejected" test_rejections;
  ]
