(* Middle-end pass framework tests: the pass manager, the IR
   validator, and the global dataflow passes (LICM, GRE, copy
   propagation + liveness DCE, constructor folding). *)

module Ir = Spmd.Ir
module Ty = Analysis.Ty

let t name f = Alcotest.test_case name `Quick f

(* A program wrapper for unit-level blocks.  [vars] is the variable
   table the validator checks names against. *)
let prog ?(vars = []) b = { Ir.p_vars = vars; p_body = b; p_funcs = [] }

(* --- LICM --------------------------------------------------------------- *)

let test_licm_hoists_invariant_broadcast () =
  (* for i = 1:3  { b = A(1,1); c(i) = b }  --  the broadcast is
     invariant and its destination is used only by the setelem. *)
  let body =
    [
      Ir.Ibcast ("b", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Isetelem ("c", [ Ir.Svar "i" ], Ir.Svar "b");
    ]
  in
  let loop = Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Sconst 3., body) in
  let p', st = Spmd.Licm.run (prog [ loop ]) in
  Alcotest.(check int) "hoisted" 1 (List.assoc "hoisted" st);
  match p'.Ir.p_body with
  | [ Ir.Ibcast ("b", "A", _); Ir.Ifor (_, _, _, _, [ Ir.Isetelem _ ]) ] -> ()
  | _ -> Alcotest.fail "broadcast should move above the loop unguarded"

let test_licm_guards_symbolic_trip_count () =
  (* for i = 1:n the loop may run zero times: the hoisted code must be
     wrapped in the back ends' exact trip test. *)
  let body =
    [
      Ir.Ibcast ("b", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Isetelem ("c", [ Ir.Svar "i" ], Ir.Svar "b");
    ]
  in
  let loop = Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Svar "n", body) in
  let p', st = Spmd.Licm.run (prog [ loop ]) in
  Alcotest.(check int) "hoisted" 1 (List.assoc "hoisted" st);
  match p'.Ir.p_body with
  | [ Ir.Iif ([ (_, [ Ir.Ibcast ("b", "A", _) ]) ], []); Ir.Ifor _ ] -> ()
  | _ -> Alcotest.fail "hoist out of a maybe-zero-trip loop must be guarded"

let test_licm_never_hoists_rand () =
  (* rand draws are sequence-numbered: hoisting one out of a loop
     changes every later draw on the replicated stream. *)
  let body =
    [
      Ir.Iconstruct { dst = "r"; kind = Ir.Crand; args = [ Ir.Sconst 2. ] };
      Ir.Isetelem ("c", [ Ir.Svar "i" ], Ir.Svar "r");
    ]
  in
  let loop = Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Sconst 3., body) in
  let _, st = Spmd.Licm.run (prog [ loop ]) in
  Alcotest.(check int) "nothing hoisted" 0 (List.assoc "hoisted" st)

let test_licm_respects_loop_varying_operands () =
  (* b = A(1,1) is variant because the loop body redefines A. *)
  let body =
    [
      Ir.Ibcast ("b", "A", [ Ir.Sconst 1.; Ir.Sconst 1. ]);
      Ir.Isetelem ("A", [ Ir.Svar "i" ], Ir.Svar "b");
    ]
  in
  let loop = Ir.Ifor ("i", Ir.Sconst 1., None, Ir.Sconst 3., body) in
  let _, st = Spmd.Licm.run (prog [ loop ]) in
  Alcotest.(check int) "nothing hoisted" 0 (List.assoc "hoisted" st)

(* --- GRE ---------------------------------------------------------------- *)

let test_gre_reuses_transpose () =
  let b =
    [
      Ir.Itranspose ("t1", "A");
      Ir.Itranspose ("t2", "A");
      Ir.Iprint ("t2", Ir.Pmat "t2");
    ]
  in
  let p', st = Spmd.Gre.run (prog b) in
  Alcotest.(check int) "reused" 1 (List.assoc "reused" st);
  match p'.Ir.p_body with
  | [ Ir.Itranspose ("t1", "A"); Ir.Icopy ("t2", "t1"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "second transpose should become a copy"

let test_gre_scalar_result_uses_scalar_copy () =
  let b =
    [
      Ir.Ireduce_all ("s1", Ir.Rsum, "A");
      Ir.Ireduce_all ("s2", Ir.Rsum, "A");
      Ir.Iprint ("s2", Ir.Pscalar (Ir.Svar "s2"));
    ]
  in
  let p', st = Spmd.Gre.run (prog b) in
  Alcotest.(check int) "reused" 1 (List.assoc "reused" st);
  match p'.Ir.p_body with
  | [ Ir.Ireduce_all _; Ir.Iscalar ("s2", Ir.Svar "s1"); Ir.Iprint _ ] -> ()
  | _ -> Alcotest.fail "scalar-valued reuse should be a scalar assignment"

let test_gre_killed_by_operand_redefinition () =
  let b =
    [
      Ir.Itranspose ("t1", "A");
      Ir.Icopy ("A", "B");
      Ir.Itranspose ("t2", "A");
    ]
  in
  let _, st = Spmd.Gre.run (prog b) in
  Alcotest.(check int) "no reuse" 0 (List.assoc "reused" st)

let test_gre_killed_by_conditional_redefinition () =
  (* A write to the operand in one arm of an if kills the fact. *)
  let b =
    [
      Ir.Itranspose ("t1", "A");
      Ir.Iif ([ (Ir.Svar "c", [ Ir.Icopy ("A", "B") ]) ], []);
      Ir.Itranspose ("t2", "A");
    ]
  in
  let _, st = Spmd.Gre.run (prog b) in
  Alcotest.(check int) "no reuse" 0 (List.assoc "reused" st)

let test_gre_facts_die_at_loop_exit () =
  (* A fact established inside a loop body must not survive it: the
     loop may run zero times. *)
  let b =
    [
      Ir.Ifor
        ( "i",
          Ir.Sconst 1.,
          None,
          Ir.Svar "n",
          [ Ir.Itranspose ("t1", "A"); Ir.Isetelem ("C", [ Ir.Svar "i" ], Ir.Svar "x") ] );
      Ir.Itranspose ("t2", "A");
    ]
  in
  let _, st = Spmd.Gre.run (prog b) in
  Alcotest.(check int) "no reuse" 0 (List.assoc "reused" st)

(* --- copy propagation + liveness DCE ------------------------------------ *)

let test_copyprop_forwards_through_temp () =
  let b =
    [
      Ir.Itranspose ("ML_tmp1", "A");
      Ir.Icopy ("ML_tmp2", "ML_tmp1");
      Ir.Iprint ("x", Ir.Pmat "ML_tmp2");
    ]
  in
  let p', st = Spmd.Copyprop.run (prog b) in
  Alcotest.(check bool) "forwarded" true (List.assoc "forwarded" st >= 1);
  Alcotest.(check bool) "copy removed" true (List.assoc "removed" st >= 1);
  match p'.Ir.p_body with
  | [ Ir.Itranspose ("ML_tmp1", "A"); Ir.Iprint ("x", Ir.Pmat "ML_tmp1") ] -> ()
  | _ -> Alcotest.fail "print should read the transpose result directly"

let test_copyprop_facts_killed_by_loops () =
  (* s aliases x only until the loop redefines x. *)
  let b =
    [
      Ir.Iscalar ("s", Ir.Svar "x");
      Ir.Iwhile
        ( Ir.Svar "c",
          [
            Ir.Iscalar ("x", Ir.Sconst 2.);
            Ir.Isetelem ("A", [ Ir.Svar "s" ], Ir.Svar "x");
          ] );
    ]
  in
  let p', _ = Spmd.Copyprop.run (prog ~vars:[ ("s", Ty.real_scalar); ("x", Ty.real_scalar); ("A", Ty.real_matrix) ] b) in
  match p'.Ir.p_body with
  | [ Ir.Iscalar ("s", Ir.Svar "x"); Ir.Iwhile (_, [ _; Ir.Isetelem (_, [ Ir.Svar "s" ], _) ]) ] -> ()
  | _ -> Alcotest.fail "the loop body must keep reading s, not x"

let test_dce_removes_dead_named_variable () =
  (* Unlike the peephole sweep, liveness DCE reaches named variables --
     but only ones absent from the variable table (e.g. renamed away);
     table variables stay live at exit. *)
  let b =
    [
      Ir.Itranspose ("dead", "A");
      Ir.Iprint ("x", Ir.Pscalar (Ir.Sconst 1.));
    ]
  in
  let p', st = Spmd.Copyprop.run (prog ~vars:[ ("A", Ty.real_matrix) ] b) in
  Alcotest.(check int) "removed" 1 (List.assoc "removed" st);
  Alcotest.(check int) "one inst left" 1 (List.length p'.Ir.p_body)

let test_dce_keeps_table_variables () =
  let b = [ Ir.Itranspose ("kept", "A") ] in
  let vars = [ ("A", Ty.real_matrix); ("kept", Ty.real_matrix) ] in
  let _, st = Spmd.Copyprop.run (prog ~vars b) in
  Alcotest.(check int) "nothing removed" 0 (List.assoc "removed" st)

let test_dce_keeps_rand_and_load () =
  let b =
    [
      Ir.Iconstruct { dst = "ML_tmp1"; kind = Ir.Crandn; args = [ Ir.Sconst 2. ] };
      Ir.Iload { dst = "ML_tmp2"; file = "data.mat" };
      Ir.Iprint ("x", Ir.Pscalar (Ir.Sconst 1.));
    ]
  in
  let _, st = Spmd.Copyprop.run (prog b) in
  Alcotest.(check int) "nothing removed" 0 (List.assoc "removed" st)

(* --- fold-construct ----------------------------------------------------- *)

let test_fold_eye_into_elementwise () =
  (* A = B + n*eye(n): the eye constructor folds into the fused loop. *)
  let src = "n = 6; B = ones(n); A = B + n*eye(n); disp(sum(sum(A)))" in
  let c = Otter.compile src in
  let has_eye_construct = ref false in
  Ir.iter_insts
    (fun i ->
      match i with
      | Ir.Iconstruct { kind = Ir.Ceye; _ } -> has_eye_construct := true
      | _ -> ())
    c.Otter.prog.Ir.p_body;
  Alcotest.(check bool) "eye constructor folded away" false !has_eye_construct;
  (* golden: the fused loop now reads the diagonal indicator *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "dump shows eye[i]" true
    (contains (Otter.dump_ir c) "eye[i]");
  (* and the fold is semantics-preserving *)
  let oi =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~engine:Otter.Config.Einterp
            ~machine:Mpisim.Machine.workstation ~nprocs:1 ())
         c)
  in
  let op =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 ())
         c)
  in
  Alcotest.(check string) "same output" oi.Exec.State.output op.Exec.Vm.output

let test_fold_skips_multi_use_temp () =
  (* The temp is consumed twice: the matrix must be materialized. *)
  let b =
    [
      Ir.Iconstruct
        { dst = "ML_tmp1"; kind = Ir.Ceye; args = [ Ir.Sconst 4. ] };
      Ir.Ielem
        { dst = "X"; model = "B"; expr = Ir.Ebin (Mlang.Ast.Add, Ir.Emat "B", Ir.Emat "ML_tmp1") };
      Ir.Ielem
        { dst = "Y"; model = "B"; expr = Ir.Ebin (Mlang.Ast.Mul, Ir.Emat "B", Ir.Emat "ML_tmp1") };
    ]
  in
  let _, st = Spmd.Fold.run (prog b) in
  Alcotest.(check int) "nothing folded" 0 (List.assoc "folded" st)

(* --- validator ---------------------------------------------------------- *)

let test_validator_accepts_all_apps_at_O2 () =
  List.iter
    (fun (a : Apps.Scripts.app) ->
      let c = Otter.compile ~validate:true (a.Apps.Scripts.source 3) in
      Alcotest.(check (list string))
        (a.Apps.Scripts.name ^ " validates")
        []
        (Spmd.Validate.check c.Otter.prog))
    Apps.Scripts.apps

let test_validator_flags_use_before_def () =
  let p =
    prog
      ~vars:[ ("x", Ty.real_matrix); ("y", Ty.real_matrix) ]
      [ Ir.Icopy ("y", "x"); Ir.Iprint ("y", Ir.Pmat "y") ]
  in
  (* x is in the table but never defined before its use *)
  Alcotest.(check bool) "flagged" true (Spmd.Validate.check p <> [])

let test_validator_flags_unknown_variable () =
  let p = prog ~vars:[ ("x", Ty.real_matrix) ] [ Ir.Icopy ("ghost", "x") ] in
  Alcotest.(check bool) "flagged" true (Spmd.Validate.check p <> [])

let test_validator_flags_break_outside_loop () =
  let p = prog [ Ir.Ibreak ] in
  Alcotest.(check bool) "flagged" true (Spmd.Validate.check p <> [])

(* --- pass manager ------------------------------------------------------- *)

let test_pipeline_runs_passes_in_order () =
  let src = Apps.Scripts.cg ~n:16 ~iters:3 () in
  let c = Otter.compile ~validate:true src in
  Alcotest.(check (list string))
    "O2 pipeline order"
    (Spmd.Pass.level_passes Spmd.Pass.O2)
    (List.map (fun (r : Spmd.Pass.record) -> r.Spmd.Pass.pass) c.Otter.passes)

let test_unknown_pass_rejected () =
  let raised =
    try
      ignore (Otter.compile ~passes:[ "peephole"; "nosuch" ] "x = 1; disp(x)");
      false
    with Spmd.Pass.Unknown_pass "nosuch" -> true
  in
  Alcotest.(check bool) "Unknown_pass" true raised

let test_O0_compiles_without_passes () =
  let c = Otter.compile ~opt:Spmd.Pass.O0 "x = 1; disp(x)" in
  Alcotest.(check int) "no records" 0 (List.length c.Otter.passes);
  Alcotest.(check string) "table" "passes: none (O0)" (Otter.pass_table [])

(* --- optimization levels agree ------------------------------------------ *)

(* Locate the repository root from the dune sandbox. *)
let fuzz_corpus_dir =
  lazy
    (let rec up dir n =
       if n = 0 then None
       else if Sys.file_exists (Filename.concat dir "test/corpus/fuzz") then
         Some (Filename.concat dir "test/corpus/fuzz")
       else up (Filename.dirname dir) (n - 1)
     in
     up (Sys.getcwd ()) 8)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fuzz_corpus_replays_at_O0 () =
  (* every regression script must also pass with the middle end off:
     catches bugs that an optimization accidentally papers over. *)
  match Lazy.force fuzz_corpus_dir with
  | None -> ()
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".m")
      |> List.sort compare
      |> List.iter (fun f ->
             let src = read_file (Filename.concat dir f) in
             match Otter.compile ~opt:Spmd.Pass.O0 ~validate:true src with
             | exception Spmd.Lower.Unsupported _ ->
                 () (* interpreter-only script (e.g. matrix growth) *)
             | c ->
                 let oi =
                   Otter.outcome_exn
                     (Otter.run
                        (Otter.config ~engine:Otter.Config.Einterp
                           ~machine:Mpisim.Machine.workstation ~nprocs:1 ())
                        c)
                 in
                 let op =
                   Otter.outcome_exn
                     (Otter.run
                        (Otter.config ~machine:Mpisim.Machine.meiko_cs2
                           ~nprocs:3 ())
                        c)
                 in
                 Alcotest.(check string)
                   (f ^ ": O0 output agrees")
                   oi.Exec.State.output op.Exec.Vm.output)

let test_apps_identical_at_every_level () =
  (* O0, O1 and O2 builds of each paper app print the same thing. *)
  List.iter
    (fun (a : Apps.Scripts.app) ->
      let outputs =
        List.map
          (fun opt ->
            let c =
              Otter.compile ~opt ~validate:true (a.Apps.Scripts.source 3)
            in
            (Otter.outcome_exn
               (Otter.run
                  (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 ())
                  c))
              .Exec.Vm.output)
          [ Spmd.Pass.O0; Spmd.Pass.O1; Spmd.Pass.O2 ]
      in
      match outputs with
      | [ o0; o1; o2 ] ->
          Alcotest.(check string) (a.Apps.Scripts.name ^ ": O0=O1") o0 o1;
          Alcotest.(check string) (a.Apps.Scripts.name ^ ": O1=O2") o1 o2
      | _ -> assert false)
    Apps.Scripts.apps

let suite =
  [
    t "licm hoists invariant broadcast" test_licm_hoists_invariant_broadcast;
    t "licm guards symbolic trip count" test_licm_guards_symbolic_trip_count;
    t "licm never hoists rand" test_licm_never_hoists_rand;
    t "licm respects loop-varying operands"
      test_licm_respects_loop_varying_operands;
    t "gre reuses transpose" test_gre_reuses_transpose;
    t "gre scalar reuse" test_gre_scalar_result_uses_scalar_copy;
    t "gre killed by redefinition" test_gre_killed_by_operand_redefinition;
    t "gre killed by conditional redefinition"
      test_gre_killed_by_conditional_redefinition;
    t "gre facts die at loop exit" test_gre_facts_die_at_loop_exit;
    t "copyprop forwards through temp" test_copyprop_forwards_through_temp;
    t "copyprop facts killed by loops" test_copyprop_facts_killed_by_loops;
    t "dce removes dead unnamed variable" test_dce_removes_dead_named_variable;
    t "dce keeps table variables" test_dce_keeps_table_variables;
    t "dce keeps rand and load" test_dce_keeps_rand_and_load;
    t "fold eye into element-wise loop" test_fold_eye_into_elementwise;
    t "fold skips multi-use temp" test_fold_skips_multi_use_temp;
    t "validator accepts apps at O2" test_validator_accepts_all_apps_at_O2;
    t "validator flags use before def" test_validator_flags_use_before_def;
    t "validator flags unknown variable" test_validator_flags_unknown_variable;
    t "validator flags break outside loop"
      test_validator_flags_break_outside_loop;
    t "pipeline runs passes in order" test_pipeline_runs_passes_in_order;
    t "unknown pass rejected" test_unknown_pass_rejected;
    t "O0 compiles without passes" test_O0_compiles_without_passes;
    t "fuzz corpus replays at O0" test_fuzz_corpus_replays_at_O0;
    t "apps identical at every opt level" test_apps_identical_at_every_level;
  ]
