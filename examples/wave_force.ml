(* Ocean engineering scenario (the paper's second benchmark, used as a
   domain example): sweep sea-state intensities, computing the
   Morrison-equation wave force on a submerged sphere for each, and
   compare how the three parallel machines of the paper handle this
   small-grain O(n) workload.

     dune exec examples/wave_force.exe *)

let script ~n ~amp0 =
  Printf.sprintf
    {|n = %d;
g = 9.81;
rho = 1025;
D = 2.0;
Cm = 2.0;
Cd = 1.0;
Asec = pi * (D / 2)^2;
V = (4 / 3) * pi * (D / 2)^3;
t = linspace(0, 600, n);
dt = t(2) - t(1);
omega = (0.2:0.2:1.0)';
amp = %g .* (1.2:-0.2:0.4)';
phase = omega * t;
eta = amp' * cos(phase);
u = (g / 20) .* eta;
up = circshift(u, -1);
um = circshift(u, 1);
dudt = (up - um) ./ (2 * dt);
F = rho * Cm * V .* dudt + 0.5 * rho * Cd * Asec .* u .* abs(u);
impulse = trapz(t, F);
Fmax = max(abs(F));
|}
    n amp0

let () =
  let n = 8000 in
  Fmt.pr "Morrison-equation wave force on a submerged sphere (n = %d samples)@."
    n;
  Fmt.pr "%8s %14s %14s@." "seastate" "impulse" "max force";
  List.iter
    (fun amp0 ->
      let c = Otter.compile (script ~n ~amp0) in
      let o =
        Otter.outcome_exn
          (Otter.run
             (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8
                ~capture:[ "impulse"; "Fmax" ] ())
             c)
      in
      let get name =
        match List.assoc name o.Exec.Vm.captures with
        | Exec.Vm.Cscalar f -> f
        | Exec.Vm.Cmat _ | Exec.Vm.Cnd _ -> nan
      in
      Fmt.pr "%8.2f %14.4e %14.4e@." amp0 (get "impulse") (get "Fmax"))
    [ 0.25; 0.5; 1.0; 1.5; 2.0 ];

  (* Why this workload resists parallel speedup (paper, Figure 4): the
     operations are O(n) with small grain, so communication dominates. *)
  Fmt.pr "@.machine comparison at sea state 1.0 (speedup over 1 CPU):@.";
  let c = Otter.compile (script ~n ~amp0:1.0) in
  let makespan ~machine ~nprocs =
    (Otter.outcome_exn (Otter.run (Otter.config ~machine ~nprocs ()) c))
      .Exec.Vm.report.Mpisim.Sim.makespan
  in
  List.iter
    (fun (m : Mpisim.Machine.t) ->
      let t1 = makespan ~machine:m ~nprocs:1 in
      Fmt.pr "  %-22s" m.name;
      List.iter
        (fun p ->
          if p <= m.max_procs then
            let tp = makespan ~machine:m ~nprocs:p in
            Fmt.pr "  P=%-2d %5.2fx" p (t1 /. tp))
        [ 2; 4; 8; 16 ];
      Fmt.pr "@.")
    Mpisim.Machine.all
