% Monte Carlo price of a European call (Black-Scholes dynamics).
n = 100000;
S0 = 100; K = 105; rr = 0.05; sigma = 0.2; T = 1.0;
z = randn(n, 1);
ST = S0 .* exp((rr - 0.5 * sigma^2) * T + sigma * sqrt(T) .* z);
payoff = max(ST - K, 0);
price = exp(-rr * T) * mean(payoff);
se = exp(-rr * T) * sqrt((mean(payoff .* payoff) - mean(payoff)^2) / n);
fprintf('call price = %.4f +- %.4f\n', price, se);
