% Histogram of a random sample using guarded element updates.
n = 20000;
bins = 10;
x = rand(n, 1);
h = zeros(bins, 1);
for b = 1:bins
  lo = (b - 1) / bins;
  hi = b / bins;
  h(b) = sum((x >= lo) & (x < hi));
end
fprintf('largest bin = %d smallest bin = %d total = %d\n', max(h), min(h), sum(h));
