% Parallel image filtering with explicit message passing, after the
% MatlabMPI image-filtering demo: replicate the image, each rank
% smooths its own block of rows, rank 0 collects per-block checksums.
%
% The image is built collectively (rand is a whole-array op), then
% MPI_Bcast turns it into a rank-local replica so the divergent code
% below touches no distributed data.  Filtering uses global row
% indices, so the assembled result is identical for any rank count.
r = MPI_Comm_rank();
p = MPI_Comm_size();
n = 64;
img = rand(n, n);
img = MPI_Bcast(0, img);
rows = n / p;
lo = r * rows + 1;
mine = img(lo:lo+rows-1, :);
% 3-point moving average down each column; image edges pass through
f = mine;
for i = 1:rows
  gi = lo + i - 1;
  if gi > 1
    if gi < n
      f(i, :) = (img(gi-1, :) + img(gi, :) + img(gi+1, :)) / 3;
    end
  end
end
MPI_Send(0, 8, f);
s = 0;
if r == 0
  for src = 0:p-1
    g = MPI_Recv(src, 8);
    s = s + sum(sum(g));
  end
end
s = MPI_Bcast(0, s);
fprintf('mpi filter checksum = %.6f\n', s);
