% Jacobi iteration for a diagonally dominant system, written with
% whole-array operations (the style the compiler parallelizes).
n = 128;
A = rand(n, n);
A = A + A' + 2 * n * eye(n);
b = rand(n, 1);
d = diag_of(A);
x = zeros(n, 1);
for it = 1:60
  r = b - A * x;
  x = x + r ./ d;
end
fprintf('jacobi residual = %e\n', norm(b - A * x));

function d = diag_of(A)
  n = size(A, 1);
  d = zeros(n, 1);
  for i = 1:n
    d(i) = A(i, i);
  end
end
