% Jacobi relaxation of the 3-D heat equation on an n x m x m grid.
% The grid is a rank-3 tensor whose leading (page) axis is block
% distributed: the two stencil shifts along it exercise neighbor
% communication, the four in-page shifts stay local.
n = 12; m = 10;
iters = 15;
T = zeros(n, m, m);
T(1, 1:m, 1:m) = ones(m, m);          % hot face held at 1
for it = 1:iters
  up = T(1:n-2, 2:m-1, 2:m-1);
  dn = T(3:n,   2:m-1, 2:m-1);
  no = T(2:n-1, 1:m-2, 2:m-1);
  so = T(2:n-1, 3:m,   2:m-1);
  we = T(2:n-1, 2:m-1, 1:m-2);
  ea = T(2:n-1, 2:m-1, 3:m);
  T(2:n-1, 2:m-1, 2:m-1) = (up + dn + no + so + we + ea) ./ 6;
end
heat = sum(T);
peak = max(T);
core = T(2, 2, 2);
fprintf('heat3d: total=%.6f peak=%.6f core=%.6f\n', heat, peak, core);
