% Dominant eigenvalue of a random SPD matrix by power iteration.
n = 96;
A = rand(n, n);
A = A + A' + n * eye(n);
v = ones(n, 1);
v = v ./ norm(v);
lambda = 0;
for it = 1:40
  w = A * v;
  lambda = v' * w;
  v = w ./ norm(w);
end
fprintf('dominant eigenvalue ~ %.6f\n', lambda);
