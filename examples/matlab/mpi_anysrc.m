% Master/worker gather over the MPI_ANY_SOURCE wildcard (-1): workers
% finish in any order and rank 0 receives in arrival order, so the
% combine is integer addition (exact, order-independent).  After the
% gather MPI_Probe(-1, 9) confirms no straggler is pending.
r = MPI_Comm_rank();
p = MPI_Comm_size();
n = 64;
chunk = n / p;
lo = r * chunk + 1;
hi = lo + chunk - 1;
part = (hi * (hi + 1) - (lo - 1) * lo) / 2;
total = part;
if r == 0
  for k = 2:p
    total = total + MPI_Recv(-1, 9);
  end
else
  MPI_Send(0, 9, part);
end
leftover = MPI_Probe(-1, 9);
total = MPI_Bcast(0, total);
fprintf('any-source gather: total = %d leftover = %d\n', total, leftover);
