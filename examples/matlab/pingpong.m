% Ping-pong (MatlabMPI style): ranks 0 and 1 bounce a counter back and
% forth with explicit MPI_Send / MPI_Recv; every other rank sits idle.
% The broadcast at the end ships rank 0's total to everyone so the
% printed line is identical on every rank (and across engines).
r = MPI_Comm_rank();
p = MPI_Comm_size();
total = 0;
if p > 1
  for k = 1:8
    if r == 0
      MPI_Send(1, 10, k);
      total = total + MPI_Recv(1, 11);
    end
    if r == 1
      v = MPI_Recv(0, 10);
      MPI_Send(0, 11, 2 * v);
    end
  end
else
  % one rank: the loopback path (self-sends queue up like any other)
  for k = 1:8
    MPI_Send(0, 10, k);
    total = total + 2 * MPI_Recv(0, 10);
  end
end
total = MPI_Bcast(0, total);
fprintf('pingpong total = %d\n', total);
