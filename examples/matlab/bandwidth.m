% Bandwidth versus message size (MatlabMPI's first experiment): rank 0
% ships an n x n block to rank 1 and gets it back, for doubling sizes.
% `bench bandwidth` times one round trip per size on each machine
% model and prints the bytes-per-second curve; this script is the
% self-checking version that any rank count can run.
r = MPI_Comm_rank();
p = MPI_Comm_size();
total = 0;
n = 4;
for k = 1:5
  a = rand(n, n);
  a = MPI_Bcast(0, a);
  if p > 1
    if r == 0
      MPI_Send(1, 20, a);
      b = MPI_Recv(1, 21);
      total = total + sum(sum(b));
    end
    if r == 1
      b = MPI_Recv(0, 20);
      MPI_Send(0, 21, b);
    end
  else
    MPI_Send(0, 20, a);
    b = MPI_Recv(0, 20);
    total = total + sum(sum(b));
  end
  n = n * 2;
end
total = MPI_Bcast(0, total);
fprintf('bandwidth sweep checksum = %.6f\n', total);
