% Ensemble of logistic maps: element-wise chaos, no communication
% beyond the final statistics.
n = 50000;
r = 3.6 + 0.3 .* rand(n, 1);
x = rand(n, 1);
for it = 1:100
  x = r .* x .* (1 - x);
end
fprintf('mean=%.6f min=%.6f max=%.6f\n', mean(x), min(x), max(x));
