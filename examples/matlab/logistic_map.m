% Ensemble of logistic maps over a rank-3 state: pages of independent
% m x m parameter grids.  The growth-rate grid r broadcasts across the
% distributed page axis (frame broadcast), so the iteration is pure
% element-wise work with no communication until the final statistics.
p = 12; m = 8;
r = 3.5 + 0.5 .* rand(m, m);
x = rand(p, m, m);
for it = 1:50
  x = r .* x .* (1 - x);
end
xm = mean(x);
xlo = min(x);
xhi = max(x);
x1 = x(1, 1, 1);
fprintf('logistic: mean=%.6f min=%.6f max=%.6f x1=%.6f\n', xm, xlo, xhi, x1);
