(* PageRank by power iteration, written as a MATLAB script plus a
   user-defined M-file function -- exercising the identifier-resolution
   pass that pulls reachable M-files into the program (paper pass 2,
   with no inlining).

     dune exec examples/pagerank.exe *)

(* The "M-file on the path": column-normalize a nonnegative matrix. *)
let normalize_m =
  {|function B = colnorm(A)
  s = sum(A);
  s = s + (s == 0);
  n = size(A, 1);
  B = A ./ (ones(n, 1) * s);
end
|}

let script ~n ~iters =
  Printf.sprintf
    {|n = %d;
d = 0.85;
L = double(rand(n, n) < 0.05);
P = colnorm(L);
r = ones(n, 1) ./ n;
for it = 1:%d
  r = (1 - d) / n + d .* (P * r);
end
rsum = sum(r);
rmax = max(r);
fprintf('pagerank: n=%%d sum=%%.6f max=%%.6f\n', n, rsum, rmax);
|}
    n iters

let path name =
  if name = "colnorm" then
    match (Mlang.Parser.parse_program normalize_m).Mlang.Ast.funcs with
    | f :: _ -> Some f
    | [] -> None
  else None

let () =
  let c = Otter.compile ~path (script ~n:256 ~iters:40) in

  (* The resolved program now contains the pulled-in function. *)
  Fmt.pr "functions in the program after resolution: %s@."
    (String.concat ", "
       (List.map (fun f -> f.Mlang.Ast.fname) c.Otter.ast.Mlang.Ast.funcs));

  let o =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8
            ~capture:[ "r"; "rsum" ] ())
         c)
  in
  print_string o.Exec.Vm.output;

  let mm =
    Otter.verify_list
      (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8
         ~capture:[ "r"; "rsum"; "rmax" ] ())
      c
  in
  Fmt.pr "verification: %s@." (if mm = [] then "OK" else "MISMATCH");

  (* Speedup on the three machines. *)
  Fmt.pr "@.modeled speedup over 1 CPU at 8 CPUs:@.";
  let makespan ~machine ~nprocs =
    (Otter.outcome_exn (Otter.run (Otter.config ~machine ~nprocs ()) c))
      .Exec.Vm.report.Mpisim.Sim.makespan
  in
  List.iter
    (fun (m : Mpisim.Machine.t) ->
      let t1 = makespan ~machine:m ~nprocs:1 in
      let t8 = makespan ~machine:m ~nprocs:8 in
      Fmt.pr "  %-22s %5.2fx@." m.name (t1 /. t8))
    Mpisim.Machine.all
