(* External file input, the paper's section-3 feature: "If the user's
   program initializes a variable through external file input, a sample
   data file must be present, so that the compiler can determine the
   type of the variable as well as its rank."

   This example writes a field-measurement file (wave-buoy heave
   samples), compiles a MATLAB script that loads and analyzes it --
   the sample file drives shape inference at compile time -- and runs
   the compiled program on the simulated cluster.

     dune exec examples/field_data.exe *)

let script =
  {|% analyze buoy heave records: one column per sensor
H = load('buoy.txt');
[nsamp, nsensors] = size(H);
means = mean(H);
peaks = max(abs(H));
% significant wave height proxy from the first sensor
h1 = H(:, 1);
s = sort(h1);
p90 = s(ceil(0.9 * nsamp));
rms1 = sqrt(mean(h1 .* h1));
fprintf('%d samples x %d sensors\n', nsamp, nsensors);
fprintf('sensor-1: rms=%.4f p90=%.4f peak=%.4f\n', rms1, p90, peaks(1));
fprintf('fleet mean of means: %.6f\n', mean(means));
|}

let () =
  (* synthesize the measurement file: 3 sensors, wave-like signals *)
  let dir = Filename.temp_file "buoy" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "buoy.txt") in
  let nsamp = 2000 in
  for i = 0 to nsamp - 1 do
    let t = float_of_int i /. 10. in
    Printf.fprintf oc "%.6f %.6f %.6f\n"
      (1.3 *. sin (0.5 *. t) +. 0.4 *. sin (1.7 *. t))
      (1.1 *. sin (0.48 *. t +. 0.6))
      (0.9 *. cos (0.53 *. t) +. 0.2 *. sin (2.9 *. t));
  done;
  close_out oc;

  (* the sample file doubles as the real input here; a production run
     would compile against a small sample and load the full data *)
  let c = Otter.compile ~datadir:dir script in
  Fmt.pr "inferred from the sample file:@.";
  List.iter
    (fun v ->
      Fmt.pr "  %-8s : %a@." v Analysis.Ty.pp
        (Analysis.Infer.var_type c.Otter.info v))
    [ "H"; "h1"; "means" ];

  Fmt.pr "@.=== 8 CPUs of the simulated SPARC-20 cluster ===@.";
  let o =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~datadir:dir ~machine:Mpisim.Machine.sparc20_cluster
            ~nprocs:8 ())
         c)
  in
  print_string o.Exec.Vm.output;

  let oi =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~datadir:dir ~engine:Otter.Config.Einterp
            ~machine:Mpisim.Machine.workstation ())
         c)
  in
  Fmt.pr "@.interpreter agrees: %b@."
    (String.equal oi.Exec.State.output o.Exec.Vm.output);

  Sys.remove (Filename.concat dir "buoy.txt");
  Sys.rmdir dir
