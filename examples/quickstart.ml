(* Quickstart: compile a MATLAB script, look at what the compiler did,
   run it on a simulated parallel machine, and cross-check the answer
   against the reference interpreter.

     dune exec examples/quickstart.exe *)

let script =
  {|% power iteration on a random SPD matrix
n = 64;
A = rand(n, n);
A = A + A' + n * eye(n);
v = ones(n, 1);
v = v ./ norm(v);
lambda = 0;
for it = 1:30
  w = A * v;
  lambda = v' * w;
  v = w ./ norm(w);
end
fprintf('dominant eigenvalue ~ %.6f\n', lambda);
|}

let () =
  (* 1. Compile (scan/parse, resolve, SSA + type inference, expression
        rewriting, owner guards, peephole). *)
  let c = Otter.compile script in
  Fmt.pr "=== inferred types ===@.";
  let vars =
    Hashtbl.fold (fun v t acc -> (v, t) :: acc) c.Otter.info.Analysis.Infer.var_ty []
  in
  List.iter
    (fun (v, t) -> Fmt.pr "  %-8s : %a@." v Analysis.Ty.pp t)
    (List.sort compare vars);

  (* 2. The SPMD IR: communication lifted to run-time calls, the rest
        fused into local loops. *)
  Fmt.pr "@.=== SPMD IR (first lines) ===@.";
  String.split_on_char '\n' (Otter.dump_ir c)
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline;

  (* 3. Generated C, as the paper's pass 7 emits it. *)
  Fmt.pr "@.=== generated C (excerpt) ===@.";
  String.split_on_char '\n' (Codegen.emit_c c.Otter.prog)
  |> List.filteri (fun i _ -> i > 4 && i < 26)
  |> List.iter print_endline;

  (* 4. Run on 8 CPUs of the simulated Meiko CS-2. *)
  Fmt.pr "@.=== execution on 8 simulated CPUs ===@.";
  let cfg = Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8 () in
  let o = Otter.outcome_exn (Otter.run cfg c) in
  print_string o.Exec.Vm.output;
  Fmt.pr "modeled time: %.4f ms, %d messages@."
    (o.Exec.Vm.report.Mpisim.Sim.makespan *. 1e3)
    o.Exec.Vm.report.Mpisim.Sim.messages;

  (* 5. The interpreter must agree. *)
  let mm =
    Otter.verify_list { cfg with Otter.Config.capture = [ "lambda"; "v" ] } c
  in
  Fmt.pr "verification against the interpreter: %s@."
    (if mm = [] then "OK" else "MISMATCH")
