(* A workload the paper's introduction motivates: a scientist's
   vectorized numerical model, here an explicit finite-difference
   solution of the 1-D heat equation.  The stencil is expressed with
   vector shifts, which the compiler turns into nearest-neighbour
   communication -- the classic data-parallel pattern.

     dune exec examples/heat_stencil.exe *)

let script ~n ~steps =
  Printf.sprintf
    {|%% explicit heat equation: u_t = alpha u_xx on a ring
n = %d;
steps = %d;
alpha = 0.4;
x = linspace(0, 2 * pi, n)';
u = sin(x) + 0.5 .* sin(3 .* x);
for s = 1:steps
  left = circshift(u, 1);
  right = circshift(u, -1);
  u = u + alpha .* (left - 2 .* u + right);
end
peak = max(abs(u));
energy = sum(u .* u);
fprintf('after %%d steps: peak=%%.6f energy=%%.6f\n', steps, peak, energy);
|}
    n steps

let () =
  let n = 40000 and steps = 60 in
  let c = Otter.compile (script ~n ~steps) in

  (* Physics sanity: heat diffuses, the peak amplitude decays. *)
  let o =
    Otter.outcome_exn
      (Otter.run
         (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8
            ~capture:[ "peak"; "energy" ] ())
         c)
  in
  print_string o.Exec.Vm.output;

  (* The interpreter agrees with the 8-CPU run. *)
  let mm =
    Otter.verify_list
      (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8
         ~capture:[ "u"; "peak"; "energy" ] ())
      c
  in
  Fmt.pr "verification: %s@." (if mm = [] then "OK" else "MISMATCH");

  (* Scaling study: neighbour exchange is O(1) per rank per step, so
     this scales much better than the ocean script on a low-latency
     network -- and still collapses on the Ethernet cluster. *)
  Fmt.pr "@.speedup over 1 CPU (modeled):@.";
  Fmt.pr "%6s %14s %20s %20s@." "CPUs" "Meiko CS-2" "Enterprise SMP"
    "SPARC-20 cluster";
  let times m =
    List.map
      (fun p ->
        if p <= m.Mpisim.Machine.max_procs then
          Some
            (Otter.outcome_exn
               (Otter.run (Otter.config ~machine:m ~nprocs:p ()) c))
              .Exec.Vm.report.Mpisim.Sim.makespan
        else None)
      [ 1; 2; 4; 8; 16 ]
  in
  let all_times = List.map times Mpisim.Machine.all in
  List.iteri
    (fun i p ->
      Fmt.pr "%6d" p;
      List.iter
        (fun ts ->
          match (List.nth ts i, List.nth ts 0) with
          | Some tp, Some t1 -> Fmt.pr " %19.1fx" (t1 /. tp)
          | _ -> Fmt.pr " %20s" "-")
        all_times;
      Fmt.pr "@.")
    [ 1; 2; 4; 8; 16 ]
