(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     main.exe [table1|fig2|fig3|fig4|fig5|fig6|all|faults|speedup|vmspeed|
               chaos|throughput|scale|bandwidth|micro]
              [--scale PCT] [--full] [--out FILE] [--baseline FILE]

   --scale chooses the problem size as a percentage of the paper's
   (default 25%% so `dune exec bench/main.exe` finishes quickly);
   --full is --scale 100.  Shapes -- who wins, by what factor, where
   speedup flattens -- are preserved across scales; absolute times are
   modeled 1997 hardware, not this machine.  `micro` runs Bechamel
   wall-clock microbenchmarks of the compiler passes and run-time
   kernels on the host. *)

let machines = Mpisim.Machine.all
let proc_counts = [ 1; 2; 4; 8; 16 ]

type seq_baselines = { t_interp : float; t_matcom : float; t_otter1 : float }

let compile_app (app : Apps.Scripts.app) scale = Otter.compile (app.source scale)

(* Execute under one run configuration; raises on a failed run. *)
let run_outcome cfg c = Otter.outcome_exn (Otter.run cfg c)

let time_of cfg c =
  (run_outcome cfg c).Exec.Vm.report.Mpisim.Sim.makespan

let interp_time ~machine compiled =
  time_of (Otter.config ~engine:Otter.Config.Einterp ~machine ~nprocs:1 ()) compiled

let matcom_time ~machine compiled =
  time_of (Otter.config ~engine:Otter.Config.Ematcom ~machine ~nprocs:1 ()) compiled

let otter_time ~machine ~nprocs compiled =
  time_of (Otter.config ~machine ~nprocs ()) compiled

(* --- Figure 2: single-CPU relative performance ------------------------- *)

let fig2 scale =
  Printf.printf
    "Figure 2: relative performance on one UltraSPARC CPU (interpreter = \
     1.0)\n";
  Printf.printf "  problem scale: %d%% of paper sizes\n" scale;
  print_endline (String.make 72 '-');
  Printf.printf "%-22s %12s %12s %12s\n" "Application" "Interpreter" "MATCOM"
    "Otter";
  print_endline (String.make 72 '-');
  let machine = Mpisim.Machine.workstation in
  let wins = ref 0 in
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      let b =
        {
          t_interp = interp_time ~machine c;
          t_matcom = matcom_time ~machine c;
          t_otter1 = otter_time ~machine ~nprocs:1 c;
        }
      in
      let rel t = b.t_interp /. t in
      if b.t_otter1 < b.t_matcom then incr wins;
      Printf.printf "%-22s %12.2f %12.2f %12.2f\n" app.name 1.0
        (rel b.t_matcom) (rel b.t_otter1))
    Apps.Scripts.apps;
  print_endline (String.make 72 '-');
  Printf.printf
    "Otter beats the interpreter on all 4 scripts and MATCOM on %d of 4\n\
     (paper: always faster than the interpreter; 2-2 split against MATCOM).\n\n"
    !wins

(* --- Figures 3-6: speedup on the three parallel architectures ---------- *)

let speedup_figure ~fig ~(app : Apps.Scripts.app) scale =
  Printf.printf
    "Figure %d: %s -- speedup over the MATLAB interpreter on 1 CPU\n" fig
    app.name;
  Printf.printf "  workload: %s; problem scale: %d%% of paper sizes\n"
    app.grain scale;
  print_endline (String.make 72 '-');
  Printf.printf "%6s" "CPUs";
  List.iter
    (fun (m : Mpisim.Machine.t) -> Printf.printf " %20s" m.name)
    machines;
  print_newline ();
  print_endline (String.make 72 '-');
  let c = compile_app app scale in
  let interp =
    List.map (fun m -> (m.Mpisim.Machine.name, interp_time ~machine:m c)) machines
  in
  List.iter
    (fun p ->
      Printf.printf "%6d" p;
      List.iter
        (fun (m : Mpisim.Machine.t) ->
          if p > m.max_procs then Printf.printf " %20s" "-"
          else begin
            let t = otter_time ~machine:m ~nprocs:p c in
            let ti = List.assoc m.name interp in
            Printf.printf " %20.1f" (ti /. t)
          end)
        machines;
      print_newline ())
    proc_counts;
  print_endline (String.make 72 '-');
  print_newline ()

let figure_of_app = [ ("cg", 3); ("ocean", 4); ("nbody", 5); ("tc", 6) ]

let fig_for key scale =
  match Apps.Scripts.find key with
  | Some app -> speedup_figure ~fig:(List.assoc key figure_of_app) ~app scale
  | None -> prerr_endline ("unknown app " ^ key)

(* --- ablations of design choices (DESIGN.md section 3) ------------------ *)

let ablation () =
  print_endline "Ablation 1: broadcast algorithm (binomial tree vs linear)";
  print_endline "  modeled time for a 16-CPU broadcast, microseconds";
  print_endline (String.make 72 '-');
  Printf.printf "%12s %22s %22s\n" "bytes" "Meiko CS-2" "SPARC-20 cluster";
  Printf.printf "%12s %11s %10s %11s %10s\n" "" "binomial" "linear" "binomial"
    "linear";
  print_endline (String.make 72 '-');
  let time_bcast machine algo words =
    let _, r =
      Mpisim.Sim.run ~machine ~nprocs:16 (fun _ ->
          let data = Array.make words 0. in
          ignore
            (match algo with
            | `Tree -> Mpisim.Coll.bcast ~root:0 data
            | `Linear -> Mpisim.Coll.bcast_linear ~root:0 data))
    in
    r.Mpisim.Sim.makespan *. 1e6
  in
  List.iter
    (fun words ->
      Printf.printf "%12d %11.1f %10.1f %11.1f %10.1f\n" (words * 8)
        (time_bcast Mpisim.Machine.meiko_cs2 `Tree words)
        (time_bcast Mpisim.Machine.meiko_cs2 `Linear words)
        (time_bcast Mpisim.Machine.sparc20_cluster `Tree words)
        (time_bcast Mpisim.Machine.sparc20_cluster `Linear words))
    [ 1; 64; 1024; 16384 ];
  print_endline (String.make 72 '-');
  print_newline ();

  print_endline
    "Ablation 2: transpose algorithm (pairwise exchange vs full gather)";
  print_endline "  modeled time for a 256x256 transpose, milliseconds";
  print_endline (String.make 72 '-');
  Printf.printf "%6s %15s %15s %12s\n" "CPUs" "pairwise" "full gather"
    "bytes ratio";
  print_endline (String.make 72 '-');
  List.iter
    (fun p ->
      let run algo =
        Mpisim.Sim.run ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:p (fun _ ->
            let m =
              Runtime.Dmat.init ~rows:256 ~cols:256 (fun g ->
                  float_of_int (g mod 91))
            in
            ignore
              (match algo with
              | `Pairwise -> Runtime.Ops.transpose m
              | `Gather -> Runtime.Ops.transpose_gather m))
      in
      let _, rp = run `Pairwise and _, rg = run `Gather in
      Printf.printf "%6d %15.3f %15.3f %11.1fx\n" p
        (rp.Mpisim.Sim.makespan *. 1e3)
        (rg.Mpisim.Sim.makespan *. 1e3)
        (float_of_int rg.Mpisim.Sim.bytes
        /. float_of_int (max 1 rp.Mpisim.Sim.bytes)))
    [ 2; 4; 8; 16 ];
  print_endline (String.make 72 '-');
  print_newline ();

  print_endline "Ablation 3: peephole optimization (paper pass 6) on CG";
  print_endline (String.make 72 '-');
  let src = Apps.Scripts.cg ~n:256 ~iters:30 () in
  let c_raw = Otter.compile ~opt:Spmd.Pass.O0 src in
  let c_opt = Otter.compile ~opt:Spmd.Pass.O1 src in
  let count (prog : Spmd.Ir.prog) =
    let n = ref 0 in
    Spmd.Ir.iter_insts (fun _ -> incr n) prog.Spmd.Ir.p_body;
    !n
  in
  let run (c : Otter.compiled) =
    (Exec.Vm.run ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8 c.Otter.prog)
      .Exec.Vm.report
  in
  let r_raw = run c_raw and r_opt = run c_opt in
  Printf.printf "  instructions        : %4d -> %4d\n"
    (count c_raw.Otter.prog) (count c_opt.Otter.prog);
  print_endline (Otter.pass_table c_opt.Otter.passes);
  Printf.printf "  8-CPU modeled time  : %.4f s -> %.4f s (%.1f%% faster)\n"
    r_raw.Mpisim.Sim.makespan r_opt.Mpisim.Sim.makespan
    ((r_raw.Mpisim.Sim.makespan /. r_opt.Mpisim.Sim.makespan -. 1.) *. 100.);
  Printf.printf "  messages            : %d -> %d\n" r_raw.Mpisim.Sim.messages
    r_opt.Mpisim.Sim.messages;
  print_endline (String.make 72 '-');
  print_newline ();

  print_endline
    "Ablation 4: pricing each middle-end pass (cumulative pipelines)";
  print_endline "  executed run-time library calls on rank 0, meiko CS-2, P=8";
  print_endline (String.make 72 '-');
  let pipelines =
    [
      ("O0 (no passes)", []);
      ("+peephole", [ "peephole" ]);
      ("+licm", [ "peephole"; "licm" ]);
      ("+gre", [ "peephole"; "licm"; "gre" ]);
      ("+copyprop", [ "peephole"; "licm"; "gre"; "copyprop" ]);
      ( "+fold-construct",
        [ "peephole"; "licm"; "gre"; "copyprop"; "fold-construct" ] );
    ]
  in
  List.iter
    (fun (app, src) ->
      Printf.printf "  %s\n" app;
      Printf.printf "  %-18s %10s %14s %10s\n" "pipeline" "lib calls"
        "modeled time" "messages";
      List.iter
        (fun (pname, passes) ->
          let c = Otter.compile ~passes src in
          let o =
            run_outcome
              (Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:8 ())
              c
          in
          Printf.printf "  %-18s %10d %12.4f s %10d\n" pname
            o.Exec.Vm.lib_calls o.Exec.Vm.report.Mpisim.Sim.makespan
            o.Exec.Vm.report.Mpisim.Sim.messages)
        pipelines)
    [
      ("Conjugate Gradient (n=64, 5 iters)", Apps.Scripts.cg ~n:64 ~iters:5 ());
      ( "Transitive Closure (n=32)",
        Apps.Scripts.transitive_closure ~n:32 () );
    ];
  print_endline (String.make 72 '-');
  print_newline ()

(* --- extrapolation: what would the results look like on a 1999 Beowulf? -- *)

let extrapolate scale =
  print_endline
    "Extrapolation: 16-node commodity Beowulf (1999) vs the paper's CS-2";
  Printf.printf "  speedup over the same machine's interpreter; scale %d%%\n"
    scale;
  print_endline (String.make 72 '-');
  Printf.printf "%-22s %10s %22s %22s\n" "Application" "CPUs" "Meiko CS-2"
    "Beowulf (1999)";
  print_endline (String.make 72 '-');
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      List.iter
        (fun p ->
          Printf.printf "%-22s %10d" (if p = 4 then app.name else "") p;
          List.iter
            (fun m ->
              let ti = interp_time ~machine:m c in
              let t = otter_time ~machine:m ~nprocs:p c in
              Printf.printf " %22.1f" (ti /. t))
            [ Mpisim.Machine.meiko_cs2; Mpisim.Machine.beowulf ];
          print_newline ())
        [ 4; 16 ])
    Apps.Scripts.apps;
  print_endline (String.make 72 '-');
  print_endline
    "Five-times-faster CPUs raise the communication bar: the O(n) scripts\n\
     lose even more ground on the Beowulf, while O(n^3) work still scales.\n"

(* --- sensitivity: the paper's two determinants quantified ---------------- *)

(* The paper's summary names two determinants of speedup: the sizes of
   the matrices and the complexity of the operations performed on
   them.  This study varies each in isolation on the CS-2 model. *)
let sensitivity () =
  print_endline
    "Sensitivity 1: problem size (CG, 16 CPUs, speedup over 1 CPU)";
  print_endline (String.make 60 '-');
  Printf.printf "%10s %18s %18s\n" "n" "CG (O(n^2) grain)"
    "ocean (O(n) grain)";
  print_endline (String.make 60 '-');
  List.iter
    (fun pct ->
      let row key =
        match Apps.Scripts.find key with
        | Some app ->
            let c = compile_app app pct in
            let t1 = otter_time ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:1 c in
            let t16 =
              otter_time ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:16 c
            in
            t1 /. t16
        | None -> nan
      in
      Printf.printf "%9d%% %18.1f %18.1f\n" pct (row "cg") (row "ocean"))
    [ 5; 10; 25; 50; 100 ];
  print_endline (String.make 60 '-');
  print_newline ();

  print_endline
    "Sensitivity 2: network latency (16 CPUs, parallel speedup over 1 CPU,\n\
     CS-2 model with the latency overridden; scale 25%)";
  print_endline (String.make 60 '-');
  Printf.printf "%12s %12s %12s %12s\n" "latency" "cg" "nbody" "tc";
  print_endline (String.make 60 '-');
  List.iter
    (fun lat ->
      let machine =
        {
          Mpisim.Machine.meiko_cs2 with
          Mpisim.Machine.name = "CS-2 variant";
          link =
            (fun _ _ ->
              { Mpisim.Machine.latency = lat; bandwidth = 40e6; channel = None });
        }
      in
      Printf.printf "%9.0f us" (lat *. 1e6);
      List.iter
        (fun key ->
          match Apps.Scripts.find key with
          | Some app ->
              let c = compile_app app 25 in
              let t1 = otter_time ~machine ~nprocs:1 c in
              let t16 = otter_time ~machine ~nprocs:16 c in
              Printf.printf " %12.1f" (t1 /. t16)
          | None -> ())
        [ "cg"; "nbody"; "tc" ];
      print_newline ())
    [ 5e-6; 20e-6; 45e-6; 100e-6; 400e-6; 1600e-6 ];
  print_endline (String.make 60 '-');
  print_endline
    "Large matrices and O(n^2)/O(n^3) operations tolerate latency; the\n\
     O(n) script's speedup evaporates as latency grows -- the paper's\n\
     two determinants, isolated.\n"

(* --- Bechamel microbenchmarks ------------------------------------------ *)

let micro () =
  let open Bechamel in
  let cg_src = Apps.Scripts.cg ~n:64 ~iters:10 () in
  let parse = Test.make ~name:"pass1: scan+parse cg.m" (Staged.stage (fun () ->
      ignore (Mlang.Parser.parse_program cg_src)))
  in
  let front = Test.make ~name:"pass2-3: resolve+ssa+infer" (Staged.stage (fun () ->
      let ast = Analysis.Resolve.run (Mlang.Parser.parse_program cg_src) in
      ignore (Analysis.Infer.program ast)))
  in
  let full = Test.make ~name:"pass1-6: full compile" (Staged.stage (fun () ->
      ignore (Otter.compile cg_src)))
  in
  let emit =
    let c = Otter.compile cg_src in
    Test.make ~name:"pass7: emit C" (Staged.stage (fun () ->
        ignore (Codegen.emit_c c.Otter.prog)))
  in
  let sim_matmul = Test.make ~name:"runtime: 64x64 matmul on 4 simulated CPUs"
      (Staged.stage (fun () ->
        ignore
          (Mpisim.Sim.run ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 (fun _ ->
               let a = Runtime.Dmat.init ~rows:64 ~cols:64
                   (fun g -> float_of_int (g mod 17)) in
               ignore (Runtime.Ops.matmul a a)))))
  in
  let vm_cg = Test.make ~name:"vm: cg n=64 on 4 simulated CPUs"
      (let c = Otter.compile cg_src in
       let cfg = Otter.config ~machine:Mpisim.Machine.meiko_cs2 ~nprocs:4 () in
       Staged.stage (fun () -> ignore (Otter.run cfg c)))
  in
  let tests =
    Test.make_grouped ~name:"otter"
      [ parse; front; full; emit; sim_matmul; vm_cg ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let results = benchmark tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  print_endline "Microbenchmarks (host wall clock, ns per run):";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-44s %12.0f ns\n" name est
      | _ -> Printf.printf "  %-44s (no estimate)\n" name)
    results;
  print_newline ()

(* --- fault injection: makespan and recovery cost ------------------------ *)

(* Rerun every app under an injected fault model with the reliable
   layer masking the losses, and price the recovery: extra modeled
   time, retransmissions, and whether results stay bit-for-bit equal
   to the clean run. *)
let faults_bench scale =
  let faults =
    match
      Mpisim.Machine.faults_of_spec "drop=0.02,dup=0.01,delay=0.01,seed=42"
    with
    | Ok f -> f
    | Error msg -> failwith msg
  in
  Printf.printf
    "Fault injection: drop 2%%, duplicate 1%%, delay-spike 1%% (seed 42), \
     reliable layer on\n";
  Printf.printf "  problem scale: %d%% of paper sizes; 8 CPUs\n" scale;
  print_endline (String.make 78 '-');
  Printf.printf "%-10s %-10s %9s %9s %7s %6s %6s %7s %6s\n" "App" "Machine"
    "clean (s)" "fault (s)" "ovhd" "drops" "dups" "retries" "exact";
  print_endline (String.make 78 '-');
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      List.iter
        (fun (label, (m : Mpisim.Machine.t)) ->
          let nprocs = min 8 m.max_procs in
          let clean =
            run_outcome
              (Otter.config ~capture:app.capture ~machine:m ~nprocs ())
              c
          in
          let fm = Mpisim.Machine.with_faults ~reliable:true ~faults m in
          let faulted =
            run_outcome
              (Otter.config ~capture:app.capture ~machine:fm ~nprocs ())
              c
          in
          let r = faulted.Exec.Vm.report and r0 = clean.Exec.Vm.report in
          let exact =
            clean.Exec.Vm.captures = faulted.Exec.Vm.captures
            && clean.Exec.Vm.output = faulted.Exec.Vm.output
          in
          Printf.printf "%-10s %-10s %9.4f %9.4f %6.1f%% %6d %6d %7d %6s\n"
            app.key label r0.Mpisim.Sim.makespan r.Mpisim.Sim.makespan
            (100.
            *. (r.Mpisim.Sim.makespan -. r0.Mpisim.Sim.makespan)
            /. r0.Mpisim.Sim.makespan)
            r.drops r.dups r.retries
            (if exact then "yes" else "NO"))
        [
          ("meiko", Mpisim.Machine.meiko_cs2);
          ("smp", Mpisim.Machine.enterprise_smp);
          ("cluster", Mpisim.Machine.sparc20_cluster);
        ])
    Apps.Scripts.apps;
  print_endline (String.make 78 '-');
  print_endline
    "exact = captured variables and program output bit-for-bit equal to the \
     clean run";
  print_newline ()

(* --- speedup benchmark: BENCH_speedup.json ------------------------------ *)

(* One entry per (app, machine, CPUs, opt level): simulated wall clock,
   message count and bytes on the wire, plus the speedup over the same
   configuration at one CPU.  Everything is modeled, so the numbers are
   deterministic and fit for a committed regression baseline. *)
type speedup_entry = {
  se_app : string;
  se_machine : string;
  se_procs : int;
  se_opt : string;
  se_time : float;
  se_messages : int;
  se_bytes : int;
  se_speedup : float;
}

let speedup_machines =
  [
    ("meiko", Mpisim.Machine.meiko_cs2);
    ("smp", Mpisim.Machine.enterprise_smp);
    ("cluster", Mpisim.Machine.sparc20_cluster);
  ]

let speedup_entries scale : speedup_entry list =
  let entries = ref [] in
  List.iter
    (fun (app : Apps.Scripts.app) ->
      List.iter
        (fun (oname, opt) ->
          let c = Otter.compile ~opt (app.source scale) in
          List.iter
            (fun (mname, (m : Mpisim.Machine.t)) ->
              let t1 = ref nan in
              List.iter
                (fun p ->
                  if p <= m.max_procs then begin
                    let r =
                      (run_outcome (Otter.config ~machine:m ~nprocs:p ()) c)
                        .Exec.Vm.report
                    in
                    if p = 1 then t1 := r.Mpisim.Sim.makespan;
                    entries :=
                      {
                        se_app = app.key;
                        se_machine = mname;
                        se_procs = p;
                        se_opt = oname;
                        se_time = r.Mpisim.Sim.makespan;
                        se_messages = r.Mpisim.Sim.messages;
                        se_bytes = r.Mpisim.Sim.bytes;
                        se_speedup = !t1 /. r.Mpisim.Sim.makespan;
                      }
                      :: !entries
                  end)
                proc_counts)
            speedup_machines)
        [ ("O1", Spmd.Pass.O1); ("O2", Spmd.Pass.O2) ])
    Apps.Scripts.all;
  List.rev !entries

let entry_line e =
  Printf.sprintf
    "{\"app\": %S, \"machine\": %S, \"procs\": %d, \"opt\": %S, \"time\": \
     %.9f, \"messages\": %d, \"bytes\": %d, \"speedup\": %.6f}"
    e.se_app e.se_machine e.se_procs e.se_opt e.se_time e.se_messages
    e.se_bytes e.se_speedup

let write_speedup_json ~file ~scale entries =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": \"speedup\",\n  \"scale\": %d,\n"
    scale;
  Printf.fprintf oc "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc "    %s%s\n" (entry_line e)
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

(* Parse a file produced by [write_speedup_json]; entry lines carry a
   fixed key order, so a Scanf format is enough. *)
let read_speedup_json file =
  let ic = open_in file in
  let scale = ref (-1) in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line " \"scale\": %d" (fun s -> scale := s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       try
         Scanf.sscanf line
           " {\"app\": %S, \"machine\": %S, \"procs\": %d, \"opt\": %S, \
            \"time\": %f, \"messages\": %d, \"bytes\": %d, \"speedup\": %f}"
           (fun a m p o t ms b s ->
             entries :=
               {
                 se_app = a;
                 se_machine = m;
                 se_procs = p;
                 se_opt = o;
                 se_time = t;
                 se_messages = ms;
                 se_bytes = b;
                 se_speedup = s;
               }
               :: !entries)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!scale, List.rev !entries)

let speedup_bench scale out baseline =
  Printf.printf
    "Speedup benchmark: %d apps x {O1, O2} x 3 machines x P in {1,2,4,8,16}\n"
    (List.length Apps.Scripts.all);
  Printf.printf "  problem scale: %d%% of paper sizes\n\n" scale;
  let entries = speedup_entries scale in
  write_speedup_json ~file:out ~scale entries;
  Printf.printf "wrote %s (%d entries)\n\n" out (List.length entries);
  let find app machine procs opt =
    List.find_opt
      (fun e ->
        e.se_app = app && e.se_machine = machine && e.se_procs = procs
        && e.se_opt = opt)
      entries
  in
  (* communication summary at P = 4 (message counts are machine
     independent; meiko is the reporting machine) *)
  Printf.printf "Communication at P = 4 (meiko): -O1 vs -O2\n";
  print_endline (String.make 72 '-');
  Printf.printf "%-10s %12s %12s %10s %12s\n" "App" "msgs O1" "msgs O2"
    "reduction" "time O2/O1";
  print_endline (String.make 72 '-');
  let improved = ref 0 in
  List.iter
    (fun (app : Apps.Scripts.app) ->
      match (find app.key "meiko" 4 "O1", find app.key "meiko" 4 "O2") with
      | Some e1, Some e2 ->
          if e2.se_messages < e1.se_messages then incr improved;
          Printf.printf "%-10s %12d %12d %9.1f%% %12.3f\n" app.key
            e1.se_messages e2.se_messages
            (100.
            *. float_of_int (e1.se_messages - e2.se_messages)
            /. float_of_int (max 1 e1.se_messages))
            (e2.se_time /. e1.se_time)
      | _ -> ())
    Apps.Scripts.all;
  print_endline (String.make 72 '-');
  Printf.printf "message count reduced on %d of %d apps at P=4 with -O2\n\n"
    !improved (List.length Apps.Scripts.all);
  (* speedup table at O2 *)
  (* the header names the engine and pass level so a table pasted into a
     report is self-describing *)
  Printf.printf
    "Simulated speedup, %s engine at -O2 (relative to 1 CPU, same machine)\n"
    (Otter.Config.engine_name (Otter.config ()).Otter.Config.engine);
  print_endline (String.make 72 '-');
  Printf.printf "%-10s %-9s" "App" "Machine";
  List.iter (fun p -> Printf.printf " %7d" p) proc_counts;
  print_newline ();
  print_endline (String.make 72 '-');
  List.iter
    (fun (app : Apps.Scripts.app) ->
      List.iter
        (fun (mname, (m : Mpisim.Machine.t)) ->
          Printf.printf "%-10s %-9s" app.key mname;
          List.iter
            (fun p ->
              if p > m.max_procs then Printf.printf " %7s" "-"
              else
                match find app.key mname p "O2" with
                | Some e -> Printf.printf " %7.2f" e.se_speedup
                | None -> Printf.printf " %7s" "?")
            proc_counts;
          print_newline ())
        speedup_machines)
    Apps.Scripts.all;
  print_endline (String.make 72 '-');
  print_newline ();
  (* regression gate against a committed baseline *)
  match baseline with
  | None -> ()
  | Some file ->
      let bscale, bentries = read_speedup_json file in
      if bentries = [] then begin
        Printf.eprintf "baseline %s has no entries\n" file;
        exit 2
      end;
      if bscale <> scale then begin
        Printf.eprintf
          "baseline %s was recorded at scale %d%%, this run is %d%%\n" file
          bscale scale;
        exit 2
      end;
      (* two gates per configuration: modeled time (>10% slower fails)
         and message count (any increase fails — counts are
         deterministic, so a single extra message means a comm-pass
         regression) *)
      let time_regressions =
        List.filter_map
          (fun b ->
            match find b.se_app b.se_machine b.se_procs b.se_opt with
            | Some e when e.se_time > (b.se_time *. 1.10) +. 1e-12 ->
                Some (b, e)
            | _ -> None)
          bentries
      in
      let msg_regressions =
        List.filter_map
          (fun b ->
            match find b.se_app b.se_machine b.se_procs b.se_opt with
            | Some e when e.se_messages > b.se_messages -> Some (b, e)
            | _ -> None)
          bentries
      in
      if time_regressions = [] && msg_regressions = [] then
        Printf.printf "baseline check: no configuration regressed (>10%% \
                       time or any message-count increase) vs %s\n"
          file
      else begin
        List.iter
          (fun (b, e) ->
            Printf.printf
              "REGRESSION %s/%s p=%d %s: %.6f s vs baseline %.6f s (+%.1f%%)\n"
              b.se_app b.se_machine b.se_procs b.se_opt e.se_time b.se_time
              (100. *. ((e.se_time /. b.se_time) -. 1.)))
          time_regressions;
        List.iter
          (fun (b, e) ->
            Printf.printf
              "REGRESSION %s/%s p=%d %s: %d messages vs baseline %d\n"
              b.se_app b.se_machine b.se_procs b.se_opt e.se_messages
              b.se_messages)
          msg_regressions;
        exit 1
      end

(* --- vmspeed benchmark: BENCH_vmspeed.json ------------------------------ *)

(* Decoded-execution throughput of the two engines.

   Part 1 runs four dispatch-bound scalar kernels — each distilled from
   one application's sequential core, where per-statement engine
   overhead (not matrix arithmetic or communication) dominates — under
   both engines at P=4 on the meiko model, O1 and O2.  Throughput is
   instructions executed per second of host wall clock, each engine
   counted in its own execution unit (State.dispatched): the ir walker
   executes IR instructions; tcode executes decoded ops plus scalar-
   program steps, the units its decode listing prints.  The ratio of
   the two throughputs is the headline number; wall-time per run is
   also recorded so nothing hides in the unit change.

   Part 2 times the four real applications end to end under both
   engines (host wall clock, O1 and O2) — there matrix kernels and the
   simulator dominate and both engines share them, so the gap is
   smaller by design.

   The committed baseline gates on the throughput *ratio* (tcode vs ir
   on the same host, so machine speed cancels): a run fails if any
   kernel ratio drops below 10x or regresses more than 10% against the
   baseline. *)
type vmspeed_kernel = { vk_name : string; vk_src : string }

let vmspeed_kernels =
  [
    {
      vk_name = "cg-core";
      vk_src =
        "rho = 1.0;\nalpha = 0.0;\nbeta = 0.0;\nfor i = 1:100000\n\
        \  alpha = rho / (2.3 + i);\n\
        \  beta = alpha * rho + 0.5;\n\
        \  rho = rho + beta * 0.001 - alpha;\n\
         end\ndisp(rho)\n";
    }
    ;
    {
      vk_name = "ocean-core";
      vk_src =
        "t = 0.0;\nf = 0.0;\nk = 0;\nwhile k < 100000\n\
        \  k = k + 1;\n\
        \  t = t + 0.01;\n\
        \  if mod(k, 3) == 0\n\
        \    f = f + sin(t);\n\
        \  else\n\
        \    f = f - 0.25 * cos(t);\n\
        \  end\n\
         end\ndisp(f)\n";
    }
    ;
    {
      vk_name = "nbody-core";
      vk_src =
        "ax = 0.0;\nfor s = 1:500\n\
        \  for j = 1:200\n\
        \    d = j * 0.5 + s;\n\
        \    ax = ax + 1.0 / (d * d + 0.05);\n\
        \  end\n\
         end\ndisp(ax)\n";
    }
    ;
    {
      vk_name = "tc-core";
      vk_src =
        "reach = 0;\nfor i = 1:100000\n\
        \  e = mod(i * 7, 11);\n\
        \  reach = reach + (e > 4 & e < 9);\n\
         end\ndisp(reach)\n";
    }
    ;
  ]

let vmspeed_procs = 4
let vmspeed_machine = Mpisim.Machine.meiko_cs2
let vmspeed_opts = [ ("O1", Spmd.Pass.O1); ("O2", Spmd.Pass.O2) ]

(* One timed measurement: instructions dispatched and host seconds for
   [reps] runs of [c] under [engine], after one untimed warm-up run. *)
let vmspeed_measure ~engine ~reps (c : Otter.compiled) =
  let cfg =
    Otter.config ~engine ~machine:vmspeed_machine ~nprocs:vmspeed_procs ()
  in
  ignore (run_outcome cfg c);
  Exec.State.dispatched := 0;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (run_outcome cfg c)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (!Exec.State.dispatched, dt /. float_of_int reps)

type vmspeed_entry = {
  ve_kernel : string;
  ve_opt : string;
  ve_ir_minst : float; (* IR instructions / s, millions *)
  ve_tc_minst : float; (* decoded instructions / s, millions *)
  ve_ratio : float;
  ve_ir_ms : float; (* host wall clock per run, milliseconds *)
  ve_tc_ms : float;
}

type vmspeed_app_entry = {
  va_app : string;
  va_opt : string;
  va_ir_ms : float;
  va_tc_ms : float;
}

let vmspeed_entries () =
  List.concat_map
    (fun k ->
      List.map
        (fun (oname, opt) ->
          let c = Otter.compile ~opt k.vk_src in
          let reps = 3 in
          let ir_n, ir_t = vmspeed_measure ~engine:Otter.Config.Eir ~reps c in
          let tc_n, tc_t =
            vmspeed_measure ~engine:Otter.Config.Etcode ~reps c
          in
          let ir_minst =
            float_of_int ir_n /. float_of_int reps /. ir_t /. 1e6
          in
          let tc_minst =
            float_of_int tc_n /. float_of_int reps /. tc_t /. 1e6
          in
          {
            ve_kernel = k.vk_name;
            ve_opt = oname;
            ve_ir_minst = ir_minst;
            ve_tc_minst = tc_minst;
            ve_ratio = tc_minst /. ir_minst;
            ve_ir_ms = ir_t *. 1e3;
            ve_tc_ms = tc_t *. 1e3;
          })
        vmspeed_opts)
    vmspeed_kernels

let vmspeed_app_entries scale =
  List.concat_map
    (fun (app : Apps.Scripts.app) ->
      List.map
        (fun (oname, opt) ->
          let c = Otter.compile ~opt (app.source scale) in
          let reps = 3 in
          let _, ir_t = vmspeed_measure ~engine:Otter.Config.Eir ~reps c in
          let _, tc_t = vmspeed_measure ~engine:Otter.Config.Etcode ~reps c in
          {
            va_app = app.key;
            va_opt = oname;
            va_ir_ms = ir_t *. 1e3;
            va_tc_ms = tc_t *. 1e3;
          })
        vmspeed_opts)
    Apps.Scripts.apps

let vmspeed_entry_line e =
  Printf.sprintf
    "{\"kernel\": %S, \"opt\": %S, \"ir_minst\": %.3f, \"tc_minst\": %.3f, \
     \"ratio\": %.3f, \"ir_ms\": %.4f, \"tc_ms\": %.4f}"
    e.ve_kernel e.ve_opt e.ve_ir_minst e.ve_tc_minst e.ve_ratio e.ve_ir_ms
    e.ve_tc_ms

let vmspeed_app_line a =
  Printf.sprintf
    "{\"app\": %S, \"opt\": %S, \"ir_app_ms\": %.4f, \"tc_app_ms\": %.4f}"
    a.va_app a.va_opt a.va_ir_ms a.va_tc_ms

let write_vmspeed_json ~file ~scale entries apps =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": \"vmspeed\",\n  \"scale\": %d,\n"
    scale;
  Printf.fprintf oc "  \"entries\": [\n";
  let lines =
    List.map vmspeed_entry_line entries @ List.map vmspeed_app_line apps
  in
  let n = List.length lines in
  List.iteri
    (fun i l -> Printf.fprintf oc "    %s%s\n" l (if i = n - 1 then "" else ","))
    lines;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let read_vmspeed_json file =
  let ic = open_in file in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       try
         Scanf.sscanf line
           " {\"kernel\": %S, \"opt\": %S, \"ir_minst\": %f, \"tc_minst\": \
            %f, \"ratio\": %f, \"ir_ms\": %f, \"tc_ms\": %f}"
           (fun k o im tm r irms tcms ->
             entries :=
               {
                 ve_kernel = k;
                 ve_opt = o;
                 ve_ir_minst = im;
                 ve_tc_minst = tm;
                 ve_ratio = r;
                 ve_ir_ms = irms;
                 ve_tc_ms = tcms;
               }
               :: !entries)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

let vmspeed_bench scale out baseline =
  Printf.printf
    "VM speed: decoded-execution throughput, tcode vs the ir walker\n";
  Printf.printf
    "  4 dispatch-bound kernels x {O1, O2}, P=%d, %s; host wall clock\n\n"
    vmspeed_procs vmspeed_machine.Mpisim.Machine.name;
  let entries = vmspeed_entries () in
  Printf.printf "%-12s %-4s %14s %14s %8s %10s %10s\n" "Kernel" "opt"
    "ir Minst/s" "tcode Minst/s" "ratio" "ir ms" "tcode ms";
  print_endline (String.make 78 '-');
  List.iter
    (fun e ->
      Printf.printf "%-12s %-4s %14.1f %14.1f %7.1fx %10.3f %10.3f\n"
        e.ve_kernel e.ve_opt e.ve_ir_minst e.ve_tc_minst e.ve_ratio e.ve_ir_ms
        e.ve_tc_ms)
    entries;
  print_endline (String.make 78 '-');
  Printf.printf
    "  (each engine counts its own execution unit: IR instructions for the\n\
    \   walker, decoded ops + scalar-program steps for tcode)\n\n";
  let apps = vmspeed_app_entries scale in
  Printf.printf
    "End-to-end applications (host wall clock, P=%d, %s, scale %d%%):\n"
    vmspeed_procs vmspeed_machine.Mpisim.Machine.name scale;
  Printf.printf "%-12s %-4s %10s %10s %8s\n" "App" "opt" "ir ms" "tcode ms"
    "speedup";
  print_endline (String.make 50 '-');
  List.iter
    (fun a ->
      Printf.printf "%-12s %-4s %10.2f %10.2f %7.2fx\n" a.va_app a.va_opt
        a.va_ir_ms a.va_tc_ms (a.va_ir_ms /. a.va_tc_ms))
    apps;
  print_endline (String.make 50 '-');
  Printf.printf
    "  (applications are matrix- and simulator-bound; both engines share\n\
    \   those paths, so the end-to-end gap is modest by design)\n\n";
  write_vmspeed_json ~file:out ~scale entries apps;
  Printf.printf "wrote %s (%d entries)\n" out
    (List.length entries + List.length apps);
  let failures = ref [] in
  List.iter
    (fun e ->
      if e.ve_ratio < 10. then
        failures :=
          Printf.sprintf "%s/%s: throughput ratio %.1fx below the 10x floor"
            e.ve_kernel e.ve_opt e.ve_ratio
          :: !failures)
    entries;
  (match baseline with
  | None -> ()
  | Some file ->
      let bentries = read_vmspeed_json file in
      if bentries = [] then begin
        Printf.eprintf "baseline %s has no kernel entries\n" file;
        exit 2
      end;
      List.iter
        (fun b ->
          match
            List.find_opt
              (fun e -> e.ve_kernel = b.ve_kernel && e.ve_opt = b.ve_opt)
              entries
          with
          | Some e when e.ve_ratio < b.ve_ratio *. 0.90 ->
              failures :=
                Printf.sprintf
                  "%s/%s: throughput ratio %.1fx regressed >10%% vs baseline \
                   %.1fx"
                  e.ve_kernel e.ve_opt e.ve_ratio b.ve_ratio
                :: !failures
          | Some _ -> ()
          | None ->
              failures :=
                Printf.sprintf "%s/%s: missing from this run" b.ve_kernel
                  b.ve_opt
                :: !failures)
        bentries);
  if !failures = [] then
    Printf.printf "vmspeed gate: all kernel ratios >= 10x%s\n"
      (match baseline with
      | Some f -> Printf.sprintf " and within 10%% of %s" f
      | None -> "")
  else begin
    List.iter (fun m -> Printf.printf "VMSPEED REGRESSION %s\n" m) !failures;
    exit 1
  end

(* --- chaos benchmark: BENCH_chaos.json ---------------------------------- *)

(* Sweep fault intensity — message loss, duplication, delay spikes,
   rank stalls, and permanent rank kills — over every app and machine
   at P = 4 with the reliable layer and checkpoint/restart enabled, and
   record how each configuration ends:

     ok         completed bit-identically with no rollbacks
     recovered  completed bit-identically after N rollbacks
     aborted    typed abort (budget exhausted or unrecoverable class)
     mismatch   completed with a wrong answer — always a bug

   Everything is modeled and seeded, so the sweep is deterministic and
   the committed baseline is a regression gate: a point may move
   ok -> recovered only if the baseline says so, and a mismatch fails
   the gate unconditionally. *)
type chaos_entry = {
  ce_app : string;
  ce_machine : string;
  ce_intensity : string;
  ce_status : string; (* ok | recovered | aborted | mismatch *)
  ce_rollbacks : int;
  ce_kills : int;
  ce_retries : int;
  ce_time : float; (* simulated seconds of the final attempt *)
}

(* Fault-spec templates; [span] is the fault-free makespan of the same
   configuration, so kill times and the detector deadline land mid-run
   on fast and slow machines alike. *)
let chaos_intensities =
  [
    ("none", fun _span -> "");
    ("low", fun span ->
      Printf.sprintf "drop=0.02,dup=0.01,delay=0.02,detect=%g,seed=101" span);
    ( "medium",
      fun span ->
        Printf.sprintf
          "drop=0.08,dup=0.04,delay=0.08,stall=0.03,detect=%g,seed=102" span );
    ( "high",
      fun span ->
        Printf.sprintf
          "drop=0.2,dup=0.12,delay=0.2,stall=0.08,detect=%g,seed=103" span );
    ( "kill",
      fun span ->
        Printf.sprintf "kill_rank=1,kill_time=%g,detect=%g,seed=104"
          (span *. 0.3)
          (Float.max 0.01 (span *. 0.05)) );
    ( "kill+loss",
      fun span ->
        Printf.sprintf
          "drop=0.05,dup=0.02,delay=0.05,kill_rank=2,kill_time=%g,detect=%g,\
           seed=105"
          (span *. 0.4)
          (Float.max 0.01 (span *. 0.05)) );
  ]

let chaos_nprocs = 4

let eq_chaos_captured (a : Exec.Vm.captured) (b : Exec.Vm.captured) =
  let eqf (x : float) (y : float) =
    (Float.is_nan x && Float.is_nan y) || x = y
  in
  match (a, b) with
  | Exec.Vm.Cscalar x, Exec.Vm.Cscalar y -> eqf x y
  | Exec.Vm.Cmat (r1, c1, d1), Exec.Vm.Cmat (r2, c2, d2) ->
      r1 = r2 && c1 = c2 && Array.for_all2 eqf d1 d2
  | _ -> false

let chaos_entries scale : chaos_entry list =
  let entries = ref [] in
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      List.iter
        (fun (mname, (m : Mpisim.Machine.t)) ->
          let clean =
            run_outcome
              (Otter.config ~capture:app.capture ~machine:m
                 ~nprocs:chaos_nprocs ())
              c
          in
          let span = clean.Exec.Vm.report.Mpisim.Sim.makespan in
          List.iter
            (fun (iname, spec_of_span) ->
              let spec = spec_of_span span in
              let fm =
                if spec = "" then m
                else
                  match Mpisim.Machine.faults_of_spec spec with
                  | Ok f -> Mpisim.Machine.with_faults ~reliable:true ~faults:f m
                  | Error e -> failwith e
              in
              let rc =
                Otter.run
                  (Otter.config ~capture:app.capture
                     ~ckpt_interval:(Float.max 1e-6 (span *. 0.08))
                     ~max_recoveries:3 ~machine:fm ~nprocs:chaos_nprocs ())
                  c
              in
              let rollbacks = rc.Exec.Vm.r_attempts - 1 in
              let final_report =
                match List.rev rc.Exec.Vm.r_reports with
                | r :: _ -> r
                | [] -> clean.Exec.Vm.report
              in
              let kills =
                List.fold_left
                  (fun acc (r : Mpisim.Sim.report) -> acc + r.Mpisim.Sim.kills)
                  0 rc.Exec.Vm.r_reports
              in
              let retries =
                List.fold_left
                  (fun acc (r : Mpisim.Sim.report) ->
                    acc + r.Mpisim.Sim.retries)
                  0 rc.Exec.Vm.r_reports
              in
              let status =
                match rc.Exec.Vm.r_result with
                | Exec.Vm.Partial _ -> "aborted"
                | Exec.Vm.Complete out ->
                    let identical =
                      out.Exec.Vm.output = clean.Exec.Vm.output
                      && List.for_all
                           (fun (name, v) ->
                             match
                               List.assoc_opt name out.Exec.Vm.captures
                             with
                             | Some w -> eq_chaos_captured v w
                             | None -> false)
                           clean.Exec.Vm.captures
                    in
                    if not identical then "mismatch"
                    else if rollbacks > 0 then "recovered"
                    else "ok"
              in
              entries :=
                {
                  ce_app = app.key;
                  ce_machine = mname;
                  ce_intensity = iname;
                  ce_status = status;
                  ce_rollbacks = rollbacks;
                  ce_kills = kills;
                  ce_retries = retries;
                  ce_time = final_report.Mpisim.Sim.makespan;
                }
                :: !entries)
            chaos_intensities)
        speedup_machines)
    Apps.Scripts.apps;
  List.rev !entries

let chaos_entry_line e =
  Printf.sprintf
    "{\"app\": %S, \"machine\": %S, \"intensity\": %S, \"status\": %S, \
     \"rollbacks\": %d, \"kills\": %d, \"retries\": %d, \"time\": %.9f}"
    e.ce_app e.ce_machine e.ce_intensity e.ce_status e.ce_rollbacks e.ce_kills
    e.ce_retries e.ce_time

let write_chaos_json ~file ~scale entries =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": \"chaos\",\n  \"scale\": %d,\n" scale;
  Printf.fprintf oc "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc "    %s%s\n" (chaos_entry_line e)
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let read_chaos_json file =
  let ic = open_in file in
  let scale = ref (-1) in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line " \"scale\": %d" (fun s -> scale := s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       try
         Scanf.sscanf line
           " {\"app\": %S, \"machine\": %S, \"intensity\": %S, \"status\": \
            %S, \"rollbacks\": %d, \"kills\": %d, \"retries\": %d, \"time\": \
            %f}"
           (fun a m i s rb k rt t ->
             entries :=
               {
                 ce_app = a;
                 ce_machine = m;
                 ce_intensity = i;
                 ce_status = s;
                 ce_rollbacks = rb;
                 ce_kills = k;
                 ce_retries = rt;
                 ce_time = t;
               }
               :: !entries)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!scale, List.rev !entries)

(* ok < recovered < aborted < mismatch: the gate allows a point to keep
   or improve its class, never to degrade past the committed baseline. *)
let chaos_severity = function
  | "ok" -> 0
  | "recovered" -> 1
  | "aborted" -> 2
  | _ -> 3

let chaos_bench scale out baseline =
  Printf.printf
    "Chaos sweep: 4 apps x 3 machines x %d fault intensities, P = %d,\n"
    (List.length chaos_intensities)
    chaos_nprocs;
  Printf.printf
    "  reliable layer + checkpoint/restart on (3 recoveries); scale %d%%\n\n"
    scale;
  let entries = chaos_entries scale in
  write_chaos_json ~file:out ~scale entries;
  Printf.printf "wrote %s (%d entries)\n\n" out (List.length entries);
  let width = 14 in
  Printf.printf "%-10s %-9s" "App" "Machine";
  List.iter
    (fun (iname, _) -> Printf.printf " %*s" width iname)
    chaos_intensities;
  print_newline ();
  print_endline (String.make (20 + ((width + 1) * List.length chaos_intensities)) '-');
  List.iter
    (fun (app : Apps.Scripts.app) ->
      List.iter
        (fun (mname, _) ->
          Printf.printf "%-10s %-9s" app.key mname;
          List.iter
            (fun (iname, _) ->
              match
                List.find_opt
                  (fun e ->
                    e.ce_app = app.key && e.ce_machine = mname
                    && e.ce_intensity = iname)
                  entries
              with
              | Some e ->
                  let cell =
                    if e.ce_status = "recovered" then
                      Printf.sprintf "recovered:%d" e.ce_rollbacks
                    else e.ce_status
                  in
                  Printf.printf " %*s" width cell
              | None -> Printf.printf " %*s" width "?")
            chaos_intensities;
          print_newline ())
        speedup_machines)
    Apps.Scripts.apps;
  print_newline ();
  let count s =
    List.length (List.filter (fun e -> e.ce_status = s) entries)
  in
  Printf.printf
    "summary: %d ok, %d recovered, %d aborted, %d mismatched of %d points\n\n"
    (count "ok") (count "recovered") (count "aborted") (count "mismatch")
    (List.length entries);
  let mismatches = count "mismatch" in
  match baseline with
  | None -> if mismatches > 0 then exit 1
  | Some file ->
      let bscale, bentries = read_chaos_json file in
      if bentries = [] then begin
        Printf.eprintf "baseline %s has no entries\n" file;
        exit 2
      end;
      if bscale <> scale then begin
        Printf.eprintf
          "baseline %s was recorded at scale %d%%, this run is %d%%\n" file
          bscale scale;
        exit 2
      end;
      let degraded =
        List.filter_map
          (fun b ->
            match
              List.find_opt
                (fun e ->
                  e.ce_app = b.ce_app && e.ce_machine = b.ce_machine
                  && e.ce_intensity = b.ce_intensity)
                entries
            with
            | Some e
              when chaos_severity e.ce_status > chaos_severity b.ce_status ->
                Some (b, e)
            | _ -> None)
          bentries
      in
      if degraded = [] && mismatches = 0 then
        Printf.printf "baseline check: no configuration degraded vs %s\n" file
      else begin
        List.iter
          (fun (b, e) ->
            Printf.printf "DEGRADED %s/%s %s: %s -> %s\n" b.ce_app
              b.ce_machine b.ce_intensity b.ce_status e.ce_status)
          degraded;
        if mismatches > 0 then
          Printf.printf "MISMATCH: %d configuration(s) computed a wrong \
                         answer under chaos\n"
            mismatches;
        exit 1
      end

(* --- throughput benchmark: BENCH_throughput.json ------------------------ *)

(* Multi-tenant throughput of the job scheduler: a fixed mix of jobs
   (two instances of every paper app, four ranks each) is space-shared
   across P ranks of the CS-2 model at P = 16 and, scaled out, P = 64.
   Reported per P: jobs per simulated second; reported per job: its
   message count.  Everything is modeled and seeded, so the committed
   baseline is a regression gate — throughput may not drop more than
   10%%, and no job's message count may rise at all (counts are
   deterministic; one extra message is a real regression). *)

type tp_entry = {
  tp_procs : int;
  tp_jobs : int;
  tp_makespan : float;
  tp_throughput : float;
}

type tp_job = { tj_procs : int; tj_name : string; tj_messages : int }

let throughput_procs = [ 16; 64 ]
let throughput_job_ranks = 4

let throughput_schedule scale procs =
  let machine =
    let m = Mpisim.Machine.meiko_cs2 in
    if procs > m.Mpisim.Machine.max_procs then
      Mpisim.Machine.with_procs procs m
    else m
  in
  let jobs =
    List.concat_map
      (fun (app : Apps.Scripts.app) ->
        let c = compile_app app scale in
        List.map
          (fun i ->
            {
              Otter.Sched.j_name = Printf.sprintf "%s[%d]" app.key i;
              j_procs = throughput_job_ranks;
              j_run =
                (fun ~nprocs ->
                  (run_outcome (Otter.config ~machine ~nprocs ()) c)
                    .Exec.Vm.report);
            })
          [ 0; 1 ])
      Apps.Scripts.apps
  in
  (machine, Otter.Sched.run ~machine ~procs jobs)

let throughput_results scale =
  List.map
    (fun procs ->
      let _, sched = throughput_schedule scale procs in
      let entry =
        {
          tp_procs = procs;
          tp_jobs = List.length sched.Otter.Sched.s_placements;
          tp_makespan = sched.Otter.Sched.s_makespan;
          tp_throughput = sched.Otter.Sched.s_throughput;
        }
      in
      let jobs =
        List.map
          (fun (p : Otter.Sched.placement) ->
            {
              tj_procs = procs;
              tj_name = p.Otter.Sched.p_name;
              tj_messages = p.Otter.Sched.p_report.Mpisim.Sim.messages;
            })
          sched.Otter.Sched.s_placements
      in
      (entry, jobs, sched))
    throughput_procs

let write_throughput_json ~file ~scale results =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": \"throughput\",\n  \"scale\": %d,\n"
    scale;
  Printf.fprintf oc "  \"entries\": [\n";
  let entries = List.map (fun (e, _, _) -> e) results in
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"procs\": %d, \"jobs\": %d, \"makespan\": %.9f, \
         \"throughput\": %.6f}%s\n"
        e.tp_procs e.tp_jobs e.tp_makespan e.tp_throughput
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n  \"jobs\": [\n";
  let jobs = List.concat_map (fun (_, js, _) -> js) results in
  let n = List.length jobs in
  List.iteri
    (fun i j ->
      Printf.fprintf oc
        "    {\"procs\": %d, \"job\": %S, \"messages\": %d}%s\n" j.tj_procs
        j.tj_name j.tj_messages
        (if i = n - 1 then "" else ","))
    jobs;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let read_throughput_json file =
  let ic = open_in file in
  let scale = ref (-1) in
  let entries = ref [] in
  let jobs = ref [] in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line " \"scale\": %d" (fun s -> scale := s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       (try
          Scanf.sscanf line
            " {\"procs\": %d, \"jobs\": %d, \"makespan\": %f, \
             \"throughput\": %f}"
            (fun p j m t ->
              entries :=
                {
                  tp_procs = p;
                  tp_jobs = j;
                  tp_makespan = m;
                  tp_throughput = t;
                }
                :: !entries)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       try
         Scanf.sscanf line " {\"procs\": %d, \"job\": %S, \"messages\": %d}"
           (fun p n m ->
             jobs := { tj_procs = p; tj_name = n; tj_messages = m } :: !jobs)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!scale, List.rev !entries, List.rev !jobs)

let throughput_bench scale out baseline =
  Printf.printf
    "Throughput benchmark: 8-job mix (2 x each app, %d ranks each) on the \
     CS-2 model at P in {16, 64}\n"
    throughput_job_ranks;
  Printf.printf "  problem scale: %d%% of paper sizes\n\n" scale;
  let results = throughput_results scale in
  List.iter
    (fun (e, _, sched) ->
      Printf.printf "P = %d:\n%s\n" e.tp_procs (Otter.Sched.table sched))
    results;
  write_throughput_json ~file:out ~scale results;
  Printf.printf "wrote %s\n" out;
  match baseline with
  | None -> ()
  | Some file ->
      let bscale, bentries, bjobs = read_throughput_json file in
      if bentries = [] then begin
        Printf.eprintf "baseline %s has no entries\n" file;
        exit 2
      end;
      if bscale <> scale then begin
        Printf.eprintf
          "baseline %s was recorded at scale %d%%, this run is %d%%\n" file
          bscale scale;
        exit 2
      end;
      let entries = List.map (fun (e, _, _) -> e) results in
      let jobs = List.concat_map (fun (_, js, _) -> js) results in
      let tp_regressions =
        List.filter_map
          (fun b ->
            match
              List.find_opt (fun e -> e.tp_procs = b.tp_procs) entries
            with
            | Some e when e.tp_throughput < (b.tp_throughput *. 0.90) -. 1e-9
              ->
                Some (b, e)
            | _ -> None)
          bentries
      in
      let msg_regressions =
        List.filter_map
          (fun b ->
            match
              List.find_opt
                (fun j -> j.tj_procs = b.tj_procs && j.tj_name = b.tj_name)
                jobs
            with
            | Some j when j.tj_messages > b.tj_messages -> Some (b, j)
            | _ -> None)
          bjobs
      in
      if tp_regressions = [] && msg_regressions = [] then
        Printf.printf
          "baseline check: no regression (>10%% jobs/s drop or any per-job \
           message increase) vs %s\n"
          file
      else begin
        List.iter
          (fun (b, e) ->
            Printf.printf
              "REGRESSION P=%d: %.1f jobs/s vs baseline %.1f (-%.1f%%)\n"
              b.tp_procs e.tp_throughput b.tp_throughput
              (100. *. (1. -. (e.tp_throughput /. b.tp_throughput))))
          tp_regressions;
        List.iter
          (fun (b, j) ->
            Printf.printf
              "REGRESSION %s at P=%d: %d messages vs baseline %d\n"
              b.tj_name b.tj_procs j.tj_messages b.tj_messages)
          msg_regressions;
        exit 1
      end

(* --- scale benchmark: BENCH_scale.json ---------------------------------- *)

(* Large-P scaling of the simulator itself: every paper app on the
   parametric fat-tree at P = 32 .. 1024 virtual ranks, the 1998 trio
   oversubscribed (P virtual ranks block-mapped onto their real CPU
   counts), and the non-block distributions on a representative pair.
   Modeled results (makespan, messages, bytes, scheduler picks) are
   deterministic, so the committed baseline is a regression gate:
   >10%% modeled-time growth or any message increase fails.  Host wall
   clock and scheduler picks/second are recorded for the scaling story
   but never gated (they depend on the machine running the bench). *)

type scale_entry = {
  sc_app : string;
  sc_machine : string;
  sc_procs : int;
  sc_cpus : int; (* physical CPUs under oversubscription; 0 = one per rank *)
  sc_dist : string;
  sc_time : float; (* modeled seconds *)
  sc_messages : int;
  sc_bytes : int;
  sc_picks : int; (* scheduler pick count (deterministic) *)
  sc_wall : float; (* host seconds; informational only *)
}

let scale_fattree_procs = [ 32; 64; 128; 256; 512; 1024 ]
let scale_oversub_procs = [ 32; 64 ]

let scale_entries scale : scale_entry list =
  let entries = ref [] in
  let record ~app ~mname ~procs ~cpus ~dist cfg c =
    let t0 = Unix.gettimeofday () in
    let r = (run_outcome cfg c).Exec.Vm.report in
    let wall = Unix.gettimeofday () -. t0 in
    entries :=
      {
        sc_app = app;
        sc_machine = mname;
        sc_procs = procs;
        sc_cpus = cpus;
        sc_dist = dist;
        sc_time = r.Mpisim.Sim.makespan;
        sc_messages = r.Mpisim.Sim.messages;
        sc_bytes = r.Mpisim.Sim.bytes;
        sc_picks = r.Mpisim.Sim.sched_picks;
        sc_wall = wall;
      }
      :: !entries
  in
  let fattree = Mpisim.Machine.fattree_default in
  (* every app across the fat-tree P sweep *)
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      List.iter
        (fun procs ->
          record ~app:app.key ~mname:"fattree" ~procs ~cpus:0 ~dist:"block"
            (Otter.config ~machine:fattree ~nprocs:procs ())
            c)
        scale_fattree_procs)
    Apps.Scripts.apps;
  (* the 1998 trio, oversubscribed: P virtual ranks block-mapped onto
     each machine's real CPU count *)
  List.iter
    (fun (app : Apps.Scripts.app) ->
      let c = compile_app app scale in
      List.iter
        (fun (mname, (m : Mpisim.Machine.t)) ->
          let cpus = m.Mpisim.Machine.max_procs in
          let pm =
            Mpisim.Machine.with_placement ~cpus ~map:Mpisim.Machine.Map_block m
          in
          List.iter
            (fun procs ->
              record ~app:app.key ~mname ~procs ~cpus ~dist:"block"
                (Otter.config ~machine:pm ~nprocs:procs ())
                c)
            scale_oversub_procs)
        speedup_machines)
    Apps.Scripts.apps;
  (* non-block distributions on a representative pair (the 2-D grid leg
     rides on tc only: its dense matmul fallback on cg's n is too slow
     for a CI gate) *)
  List.iter
    (fun (key, dist, layout) ->
      match Apps.Scripts.find key with
      | None -> ()
      | Some app ->
          let c = compile_app app scale in
          record ~app:app.key ~mname:"fattree" ~procs:64 ~cpus:0 ~dist
            (Otter.config ~machine:fattree ~nprocs:64 ~layout ())
            c)
    [
      ("cg", "cyclic:4", Runtime.Dmat.Lcyclic 4);
      ("tc", "cyclic:4", Runtime.Dmat.Lcyclic 4);
      ("tc", "grid:8x8", Runtime.Dmat.Lgrid (8, 8));
    ];
  List.rev !entries

let scale_entry_line e =
  Printf.sprintf
    "{\"app\": %S, \"machine\": %S, \"procs\": %d, \"cpus\": %d, \"dist\": \
     %S, \"time\": %.9f, \"messages\": %d, \"bytes\": %d, \"picks\": %d, \
     \"wall\": %.4f}"
    e.sc_app e.sc_machine e.sc_procs e.sc_cpus e.sc_dist e.sc_time
    e.sc_messages e.sc_bytes e.sc_picks e.sc_wall

let write_scale_json ~file ~scale entries =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": \"scale\",\n  \"scale\": %d,\n" scale;
  Printf.fprintf oc "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Printf.fprintf oc "    %s%s\n" (scale_entry_line e)
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let read_scale_json file =
  let ic = open_in file in
  let scale = ref (-1) in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line " \"scale\": %d" (fun s -> scale := s)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       try
         Scanf.sscanf line
           " {\"app\": %S, \"machine\": %S, \"procs\": %d, \"cpus\": %d, \
            \"dist\": %S, \"time\": %f, \"messages\": %d, \"bytes\": %d, \
            \"picks\": %d, \"wall\": %f}"
           (fun a m p cp d t ms b pk w ->
             entries :=
               {
                 sc_app = a;
                 sc_machine = m;
                 sc_procs = p;
                 sc_cpus = cp;
                 sc_dist = d;
                 sc_time = t;
                 sc_messages = ms;
                 sc_bytes = b;
                 sc_picks = pk;
                 sc_wall = w;
               }
               :: !entries)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!scale, List.rev !entries)

let scale_bench scale out baseline =
  Printf.printf
    "Scale benchmark: %d apps on the fat-tree at P in {%s},\n\
    \  the 1998 trio oversubscribed at P in {%s}, cyclic/grid layouts at \
     P=64\n"
    (List.length Apps.Scripts.apps)
    (String.concat "," (List.map string_of_int scale_fattree_procs))
    (String.concat "," (List.map string_of_int scale_oversub_procs));
  Printf.printf "  problem scale: %d%% of paper sizes\n\n" scale;
  let entries = scale_entries scale in
  write_scale_json ~file:out ~scale entries;
  Printf.printf "wrote %s (%d entries)\n\n" out (List.length entries);
  Printf.printf "%-8s %-9s %6s %5s %-9s %12s %10s %9s %10s\n" "App" "Machine"
    "P" "CPUs" "dist" "modeled s" "messages" "wall s" "picks/s";
  print_endline (String.make 88 '-');
  List.iter
    (fun e ->
      Printf.printf "%-8s %-9s %6d %5d %-9s %12.6f %10d %9.3f %10.0f\n"
        e.sc_app e.sc_machine e.sc_procs e.sc_cpus e.sc_dist e.sc_time
        e.sc_messages e.sc_wall
        (float_of_int e.sc_picks /. Float.max 1e-9 e.sc_wall))
    entries;
  print_endline (String.make 88 '-');
  print_newline ();
  match baseline with
  | None -> ()
  | Some file ->
      let bscale, bentries = read_scale_json file in
      if bentries = [] then begin
        Printf.eprintf "baseline %s has no entries\n" file;
        exit 2
      end;
      if bscale <> scale then begin
        Printf.eprintf
          "baseline %s was recorded at scale %d%%, this run is %d%%\n" file
          bscale scale;
        exit 2
      end;
      let find b =
        List.find_opt
          (fun e ->
            e.sc_app = b.sc_app && e.sc_machine = b.sc_machine
            && e.sc_procs = b.sc_procs && e.sc_cpus = b.sc_cpus
            && e.sc_dist = b.sc_dist)
          entries
      in
      (* modeled time (>10%% slower fails) and message count (any
         increase fails; counts are deterministic) — wall clock and
         picks/s are host-dependent and never gated *)
      let time_regressions =
        List.filter_map
          (fun b ->
            match find b with
            | Some e when e.sc_time > (b.sc_time *. 1.10) +. 1e-12 ->
                Some (b, e)
            | _ -> None)
          bentries
      in
      let msg_regressions =
        List.filter_map
          (fun b ->
            match find b with
            | Some e when e.sc_messages > b.sc_messages -> Some (b, e)
            | _ -> None)
          bentries
      in
      if time_regressions = [] && msg_regressions = [] then
        Printf.printf
          "baseline check: no configuration regressed (>10%% modeled time or \
           any message-count increase) vs %s\n"
          file
      else begin
        List.iter
          (fun (b, e) ->
            Printf.printf
              "REGRESSION %s/%s p=%d cpus=%d %s: %.6f s vs baseline %.6f s \
               (+%.1f%%)\n"
              b.sc_app b.sc_machine b.sc_procs b.sc_cpus b.sc_dist e.sc_time
              b.sc_time
              (100. *. ((e.sc_time /. b.sc_time) -. 1.)))
          time_regressions;
        List.iter
          (fun (b, e) ->
            Printf.printf
              "REGRESSION %s/%s p=%d cpus=%d %s: %d messages vs baseline %d\n"
              b.sc_app b.sc_machine b.sc_procs b.sc_cpus b.sc_dist
              e.sc_messages b.sc_messages)
          msg_regressions;
        exit 1
      end

(* --- bandwidth benchmark ------------------------------------------------- *)

(* MatlabMPI's first experiment: point-to-point bandwidth against
   message size.  One rank 0 <-> rank 1 pingpong per payload size; the
   round-trip cost is isolated by differencing against a zero-trip run
   of the same script, so matrix construction and the replicating
   broadcast are priced out.  Effective bandwidth must rise
   monotonically with message size on every machine model (fixed
   per-message latency amortizes away) — the bench exits nonzero if it
   does not. *)

let bandwidth_sizes = [ 4; 16; 64; 256 ]
let bandwidth_trips = 4

let bandwidth_src ~n ~trips =
  Printf.sprintf
    {|r = MPI_Comm_rank();
a = rand(%d, %d);
a = MPI_Bcast(0, a);
for k = 1:%d
  if r == 0
    MPI_Send(1, 1, a);
    a = MPI_Recv(1, 2);
  end
  if r == 1
    b = MPI_Recv(0, 1);
    MPI_Send(0, 2, b);
  end
end
|}
    n n trips

let bandwidth_point ~machine ~n =
  let report src =
    (run_outcome
       (Otter.config ~machine ~nprocs:2 ())
       (Otter.compile src))
      .Exec.Vm.report
  in
  let loaded = report (bandwidth_src ~n ~trips:bandwidth_trips) in
  let empty = report (bandwidth_src ~n ~trips:0) in
  let msgs = loaded.Mpisim.Sim.messages - empty.Mpisim.Sim.messages in
  let bytes = loaded.Mpisim.Sim.bytes - empty.Mpisim.Sim.bytes in
  let time = loaded.Mpisim.Sim.makespan -. empty.Mpisim.Sim.makespan in
  let msg_bytes = float_of_int bytes /. float_of_int (max 1 msgs) in
  (* one-way latency per message: total differenced time over the
     number of payload messages on the wire *)
  let one_way = time /. float_of_int (max 1 msgs) in
  (msg_bytes, msg_bytes /. one_way)

let bandwidth_bench () =
  Printf.printf
    "Bandwidth vs message size: rank 0 <-> rank 1 pingpong (differenced), \
     %d round trips per size\n\n"
    bandwidth_trips;
  Printf.printf "%-10s %14s" "machine" "payload bytes";
  List.iter (fun n -> Printf.printf " %10dx%-3d" n n) bandwidth_sizes;
  print_newline ();
  print_endline (String.make 76 '-');
  let ok = ref true in
  List.iter
    (fun (mname, machine) ->
      let points =
        List.map (fun n -> bandwidth_point ~machine ~n) bandwidth_sizes
      in
      Printf.printf "%-10s %14s" mname "MB/s";
      List.iter (fun (_, bw) -> Printf.printf " %14.2f" (bw /. 1e6)) points;
      print_newline ();
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      if not (monotone points) then begin
        ok := false;
        Printf.printf "  NOT MONOTONE on %s\n" mname
      end)
    speedup_machines;
  print_newline ();
  if !ok then
    print_endline
      "bandwidth rises monotonically with message size on every machine"
  else begin
    print_endline "bandwidth curve is not monotone; latency model regressed";
    exit 1
  end

(* --- driver -------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv in
  let scale = ref 25 in
  let out = ref None in
  let baseline = ref None in
  let cmds = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        scale := 100;
        parse rest
    | "--scale" :: v :: rest ->
        scale := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | cmd :: rest ->
        cmds := cmd :: !cmds;
        parse rest
  in
  parse (List.tl args);
  let cmds = match List.rev !cmds with [] -> [ "all" ] | l -> l in
  let run_cmd = function
    | "table1" -> Tables.print ()
    | "fig2" -> fig2 !scale
    | "fig3" -> fig_for "cg" !scale
    | "fig4" -> fig_for "ocean" !scale
    | "fig5" -> fig_for "nbody" !scale
    | "fig6" -> fig_for "tc" !scale
    | "micro" -> micro ()
    | "ablation" -> ablation ()
    | "extrapolate" -> extrapolate !scale
    | "sensitivity" -> sensitivity ()
    | "faults" -> faults_bench !scale
    | "speedup" ->
        speedup_bench !scale
          (Option.value !out ~default:"BENCH_speedup.json")
          !baseline
    | "vmspeed" ->
        vmspeed_bench !scale
          (Option.value !out ~default:"BENCH_vmspeed.json")
          !baseline
    | "chaos" ->
        chaos_bench !scale
          (Option.value !out ~default:"BENCH_chaos.json")
          !baseline
    | "throughput" ->
        throughput_bench !scale
          (Option.value !out ~default:"BENCH_throughput.json")
          !baseline
    | "scale" ->
        scale_bench !scale
          (Option.value !out ~default:"BENCH_scale.json")
          !baseline
    | "bandwidth" -> bandwidth_bench ()
    | "all" ->
        Tables.print ();
        fig2 !scale;
        List.iter (fun k -> fig_for k !scale) [ "cg"; "ocean"; "nbody"; "tc" ]
    | other ->
        Printf.eprintf
          "unknown command '%s' (expected \
           table1|fig2|fig3|fig4|fig5|fig6|all|ablation|extrapolate|\
           sensitivity|faults|speedup|vmspeed|chaos|throughput|scale|\
           bandwidth|micro)\n"
          other;
        exit 2
  in
  List.iter run_cmd cmds
