(* Random well-formed, well-typed MATLAB scripts for the differential
   fuzzing oracle.

   The generator threads a symbol table of live variables (scalars and
   matrices with statically known, small dimensions) through statement
   generation, so every produced script is shape-consistent by
   construction: matrix operands always conform, indices are in bounds,
   loop ranges terminate, and control-flow bodies only reassign
   existing variables with their established rank and shape.  The
   interpreter therefore only fails on a generated script when one of
   the back ends is genuinely wrong, which keeps QCheck2's integrated
   shrinking sound (a shrunk candidate that the front end rejects is
   simply discarded, never reported).

   Every script ends with a deterministic epilogue printing each live
   variable element-by-element with %.17g, so the sequential-C leg of
   the oracle can be compared numerically against the interpreter. *)

module G = QCheck2.Gen

let ( let* ) = G.( let* )

type kind =
  | Kscalar
  | Kmat of int * int
  | Ktens of int * int * int (* pages x rows x cols, rank-3 grammar only *)

type env = {
  vars : (string * kind) list; (* newest first *)
  ro : string list;
      (* live scalars that expressions may read but statements must not
         reassign: loop counters (reassigning one inside its own body
         can make the loop non-terminating) *)
  counter : int;
  funcs : string list; (* generated helper functions, arity 1 *)
  rank3 : bool; (* admit rank-3 tensor statements into the grammar *)
}

let empty_env = { vars = []; ro = []; counter = 0; funcs = []; rank3 = false }

let fresh env prefix =
  let name = Printf.sprintf "%s%d" prefix (env.counter + 1) in
  (name, { env with counter = env.counter + 1 })

let scalars env =
  List.filter_map (function n, Kscalar -> Some n | _ -> None) env.vars

(* matrices with at least one element (the empty ones only feed concat) *)
let mats env =
  List.filter_map
    (function n, Kmat (r, c) when r * c > 0 -> Some (n, r, c) | _ -> None)
    env.vars

let empties env =
  List.filter_map
    (function n, Kmat (r, c) when r * c = 0 -> Some n | _ -> None)
    env.vars

let vectors env = List.filter (fun (_, r, c) -> r = 1 || c = 1) (mats env)

let tens env =
  List.filter_map
    (function n, Ktens (p, r, c) -> Some (n, p, r, c) | _ -> None)
    env.vars

(* --- scalar expressions -------------------------------------------------- *)

let const_g =
  G.oneofl [ "0"; "1"; "2"; "3"; "5"; "0.5"; "1.5"; "-1"; "-2"; "10" ]

let rec sexpr env depth : string G.t =
  let leaves =
    (3, const_g)
    ::
    (match scalars env @ env.ro with
    | [] -> []
    | ss -> [ (4, G.oneofl ss) ])
  in
  if depth <= 0 then G.frequency leaves
  else
    let sub = sexpr env (depth - 1) in
    let bin =
      let* op = G.oneofl [ "+"; "-"; "*"; "/" ] in
      let* a = sub in
      let* b = sub in
      G.return (Printf.sprintf "(%s %s %s)" a op b)
    in
    let call =
      let* f = G.oneofl [ "abs"; "sin"; "cos"; "floor" ] in
      let* a = sub in
      G.return (Printf.sprintf "%s(%s)" f a)
    in
    let sqrt_abs =
      let* a = sub in
      G.return (Printf.sprintf "sqrt(abs(%s))" a)
    in
    let extras =
      (match mats env with
      | [] -> []
      | ms ->
          [
            (* reduction of a matrix to a scalar *)
            ( 2,
              let* n, r, c = G.oneofl ms in
              let* red = G.oneofl [ "sum"; "mean"; "max"; "min" ] in
              G.return
                (if r = 1 || c = 1 then Printf.sprintf "%s(%s)" red n
                 else Printf.sprintf "%s(%s(%s))" red red n) );
            (* in-bounds element read *)
            ( 2,
              let* n, r, c = G.oneofl ms in
              let* i = G.int_range 1 r in
              let* j = G.int_range 1 c in
              G.return
                (if r = 1 then Printf.sprintf "%s(%d)" n j
                 else if c = 1 then Printf.sprintf "%s(%d)" n i
                 else Printf.sprintf "%s(%d, %d)" n i j) );
          ])
      @ (match tens env with
        | [] -> []
        | ts ->
            [
              (* full reduction of a tensor to a scalar *)
              ( 2,
                let* n, _, _, _ = G.oneofl ts in
                let* red = G.oneofl [ "sum"; "mean"; "max"; "min" ] in
                G.return (Printf.sprintf "%s(%s)" red n) );
              (* in-bounds element read *)
              ( 2,
                let* n, p, r, c = G.oneofl ts in
                let* i = G.int_range 1 p in
                let* j = G.int_range 1 r in
                let* k = G.int_range 1 c in
                G.return (Printf.sprintf "%s(%d, %d, %d)" n i j k) );
            ])
      @
      match env.funcs with
      | [] -> []
      | fs ->
          [
            ( 2,
              let* f = G.oneofl fs in
              let* a = sub in
              G.return (Printf.sprintf "%s(%s)" f a) );
          ]
    in
    G.frequency (leaves @ [ (3, bin); (2, call); (1, sqrt_abs) ] @ extras)

(* --- matrix-producing statements ----------------------------------------- *)

(* A statement generator yields the emitted lines plus the updated
   symbol table. *)
type stmt = string list * env

let dim_g = G.int_range 1 4

let literal_stmt env : stmt G.t =
  let name, env = fresh env "m" in
  let* r = G.int_range 1 3 in
  let* c = G.int_range 1 3 in
  let elem =
    match scalars env with
    | [] -> const_g
    | ss -> G.frequency [ (3, const_g); (1, G.oneofl ss) ]
  in
  let* rows =
    G.flatten_l
      (List.init r (fun _ ->
           let* es = G.flatten_l (List.init c (fun _ -> elem)) in
           G.return (String.concat ", " es)))
  in
  let body = String.concat "; " rows in
  G.return
    ( [ Printf.sprintf "%s = [%s];" name body ],
      { env with vars = (name, Kmat (r, c)) :: env.vars } )

let empty_stmt env : stmt G.t =
  let name, env = fresh env "e" in
  G.return
    ( [ Printf.sprintf "%s = [];" name ],
      { env with vars = (name, Kmat (0, 0)) :: env.vars } )

let construct_stmt env : stmt G.t =
  let name, env = fresh env "m" in
  let* kind = G.oneofl [ "zeros"; "ones"; "eye" ] in
  let* r = dim_g in
  let* c = dim_g in
  G.return
    ( [ Printf.sprintf "%s = %s(%d, %d);" name kind r c ],
      { env with vars = (name, Kmat (r, c)) :: env.vars } )

let range_stmt env : stmt G.t =
  let name, env = fresh env "v" in
  let* lo = G.int_range 1 3 in
  let* step = G.oneofl [ 1; 2 ] in
  let* n = G.int_range 2 5 in
  let hi = lo + (step * (n - 1)) in
  let line =
    if step = 1 then Printf.sprintf "%s = %d:%d;" name lo hi
    else Printf.sprintf "%s = %d:%d:%d;" name lo step hi
  in
  G.return ([ line ], { env with vars = (name, Kmat (1, n)) :: env.vars })

let linspace_stmt env : stmt G.t =
  let name, env = fresh env "v" in
  let* a = G.int_range (-3) 3 in
  let* b = G.int_range (-3) 9 in
  let* n = G.int_range 2 5 in
  G.return
    ( [ Printf.sprintf "%s = linspace(%d, %d, %d);" name a b n ],
      { env with vars = (name, Kmat (1, n)) :: env.vars } )

let transpose_stmt env : stmt G.t =
  let* src, r, c = G.oneofl (mats env) in
  let name, env = fresh env "m" in
  G.return
    ( [ Printf.sprintf "%s = %s';" name src ],
      { env with vars = (name, Kmat (c, r)) :: env.vars } )

let diag_stmt env : stmt G.t =
  let* src, r, c = G.oneofl (mats env) in
  let name, env = fresh env "m" in
  let kind = if r = 1 || c = 1 then Kmat (r * c, r * c) else Kmat (min r c, 1) in
  G.return
    ( [ Printf.sprintf "%s = diag(%s);" name src ],
      { env with vars = (name, kind) :: env.vars } )

let matmul_stmt env : stmt G.t =
  let ms = mats env in
  let pairs =
    List.concat_map
      (fun (a, r1, c1) ->
        List.filter_map
          (fun (b, r2, c2) -> if c1 = r2 then Some (a, b, r1, c2) else None)
          ms)
      ms
  in
  let* a, b, r, c = G.oneofl pairs in
  let name, env = fresh env "m" in
  G.return
    ( [ Printf.sprintf "%s = %s * %s;" name a b ],
      { env with vars = (name, Kmat (r, c)) :: env.vars } )

(* element-wise expression over matrices of one common shape + scalars *)
let elemwise_rhs env (r, c) : string G.t =
  let peers =
    List.filter_map
      (function n, Kmat (r', c') when r' = r && c' = c -> Some n | _ -> None)
      env.vars
  in
  let* m1 = G.oneofl peers in
  let* op = G.oneofl [ ".*"; "+"; "-"; "./" ] in
  let* rhs =
    G.frequency
      ((2, sexpr env 1) :: (match peers with [] -> [] | _ -> [ (3, G.oneofl peers) ]))
  in
  let* wrap = G.oneofl [ None; Some "abs"; Some "cos" ] in
  let e = Printf.sprintf "%s %s %s" m1 op rhs in
  G.return
    (match wrap with None -> e | Some f -> Printf.sprintf "%s(%s)" f e)

let elemwise_stmt env : stmt G.t =
  let* _, r, c = G.oneofl (mats env) in
  let* rhs = elemwise_rhs env (r, c) in
  let name, env = fresh env "m" in
  G.return
    ( [ Printf.sprintf "%s = %s;" name rhs ],
      { env with vars = (name, Kmat (r, c)) :: env.vars } )

let vec_op_stmt env : stmt G.t =
  let* src, r, c = G.oneofl (vectors env) in
  let name, env = fresh env "v" in
  let* line, kind =
    G.oneofl
      [
        (Printf.sprintf "%s = cumsum(%s);" name src, Kmat (r, c));
        (Printf.sprintf "%s = sort(%s);" name src, Kmat (r, c));
        (Printf.sprintf "%s = circshift(%s, 1);" name src, Kmat (r, c));
        (Printf.sprintf "%s = circshift(%s, -1);" name src, Kmat (r, c));
      ]
  in
  G.return ([ line ], { env with vars = (name, kind) :: env.vars })

let colreduce_stmt env : stmt G.t =
  let full = List.filter (fun (_, r, c) -> r > 1 && c > 1) (mats env) in
  let* src, _, c = G.oneofl full in
  let* red = G.oneofl [ "sum"; "prod"; "mean" ] in
  let name, env = fresh env "v" in
  G.return
    ( [ Printf.sprintf "%s = %s(%s);" name red src ],
      { env with vars = (name, Kmat (1, c)) :: env.vars } )

let concat_stmt env : stmt G.t =
  let ms = mats env in
  let* horizontal = G.bool in
  let compat (_, r1, c1) (_, r2, c2) =
    if horizontal then r1 = r2 else c1 = c2
  in
  let pairs =
    List.concat_map (fun a -> List.filter_map (fun b ->
        if compat a b then Some (a, b) else None) ms) ms
  in
  let* (a, r1, c1), (b, r2, c2) = G.oneofl pairs in
  (* occasionally thread an empty operand through, which MATLAB drops *)
  let* with_empty =
    match empties env with
    | [] -> G.return None
    | es -> G.frequency [ (3, G.return None); (1, G.map (fun e -> Some e) (G.oneofl es)) ]
  in
  let name, env = fresh env "m" in
  let sep = if horizontal then ", " else "; " in
  let parts =
    match with_empty with
    | None -> [ a; b ]
    | Some e -> [ e; a; b ]
  in
  let kind =
    if horizontal then Kmat (r1, c1 + c2) else Kmat (r1 + r2, c1)
  in
  G.return
    ( [ Printf.sprintf "%s = [%s];" name (String.concat sep parts) ],
      { env with vars = (name, kind) :: env.vars } )

let section_stmt env : stmt G.t =
  let* src, r, c = G.oneofl (mats env) in
  let name, env = fresh env "m" in
  if r = 1 || c = 1 then begin
    let n = r * c in
    let* k = G.int_range 1 n in
    let kind = if c = 1 then Kmat (k, 1) else Kmat (1, k) in
    G.return
      ( [ Printf.sprintf "%s = %s(1:%d);" name src k ],
        { env with vars = (name, kind) :: env.vars } )
  end
  else
    let* k = G.int_range 1 r in
    let* whole_cols = G.bool in
    if whole_cols then
      G.return
        ( [ Printf.sprintf "%s = %s(1:%d, :);" name src k ],
          { env with vars = (name, Kmat (k, c)) :: env.vars } )
    else
      let* k2 = G.int_range 1 c in
      G.return
        ( [ Printf.sprintf "%s = %s(1:%d, 1:%d);" name src k k2 ],
          { env with vars = (name, Kmat (k, k2)) :: env.vars } )

(* --- rank-3 tensors (enabled by [env.rank3]) ------------------------------ *)

(* Tensors are block-distributed over the leading (page) axis, so the
   grammar sticks to the operations with bit-identical parallel
   semantics: element-wise combination with equal-shape tensors,
   frame-broadcast against a cell-shaped matrix or a scalar,
   rank-preserving leading-axis sections, full reductions, and single
   element reads/writes. *)

let tensor_construct_stmt env : stmt G.t =
  let name, env = fresh env "t" in
  let* kind = G.oneofl [ "zeros"; "ones" ] in
  let* p = G.int_range 1 3 in
  let* r = G.int_range 1 3 in
  let* c = G.int_range 1 3 in
  G.return
    ( [ Printf.sprintf "%s = %s(%d, %d, %d);" name kind p r c ],
      { env with vars = (name, Ktens (p, r, c)) :: env.vars } )

(* element-wise expression over tensors of one shape: a same-shape
   tensor peer, a frame-broadcast cell matrix, or a scalar *)
let tensor_elemwise_rhs env (p, r, c) : string G.t =
  let peers =
    List.filter_map
      (function
        | n, Ktens (p', r', c') when p' = p && r' = r && c' = c -> Some n
        | _ -> None)
      env.vars
  in
  let cells =
    List.filter_map
      (function n, Kmat (r', c') when r' = r && c' = c -> Some n | _ -> None)
      env.vars
  in
  let* t1 = G.oneofl peers in
  let* op = G.oneofl [ ".*"; "+"; "-"; "./" ] in
  let* rhs =
    G.frequency
      ((2, sexpr env 1)
      :: ((match peers with [] -> [] | _ -> [ (3, G.oneofl peers) ])
         @ match cells with [] -> [] | _ -> [ (3, G.oneofl cells) ]))
  in
  G.return (Printf.sprintf "%s %s %s" t1 op rhs)

let tensor_elemwise_stmt env : stmt G.t =
  let* _, p, r, c = G.oneofl (tens env) in
  let* rhs = tensor_elemwise_rhs env (p, r, c) in
  let name, env = fresh env "t" in
  G.return
    ( [ Printf.sprintf "%s = %s;" name rhs ],
      { env with vars = (name, Ktens (p, r, c)) :: env.vars } )

(* rank-preserving section along the distributed leading axis *)
let tensor_section_stmt env : stmt G.t =
  let* src, p, r, c = G.oneofl (tens env) in
  let* lo = G.int_range 1 p in
  let* hi = G.int_range lo p in
  let name, env = fresh env "t" in
  G.return
    ( [ Printf.sprintf "%s = %s(%d:%d, :, :);" name src lo hi ],
      { env with vars = (name, Ktens (hi - lo + 1, r, c)) :: env.vars } )

let scalar_stmt env : stmt G.t =
  let name, env = fresh env "s" in
  let* e = sexpr env 2 in
  G.return
    ( [ Printf.sprintf "%s = %s;" name e ],
      { env with vars = (name, Kscalar) :: env.vars } )

let string_stmt env : stmt G.t =
  let name, env = fresh env "st" in
  let* word = G.oneofl [ "alpha"; "beta"; "gamma delta"; "x" ] in
  G.return
    ( [ Printf.sprintf "%s = '%s';" name word; Printf.sprintf "disp(%s);" name ],
      env (* strings stay out of the numeric symbol table *) )

(* --- explicit message passing --------------------------------------------- *)

(* MPI statements must keep the one-rank interpreter a valid oracle:
   ranks only address themselves (loopback queues), and broadcasts only
   replicate values every rank computes identically.  The rank variable
   is deliberately NOT registered in the symbol table — feeding a
   rank-divergent scalar into later control flow around distributed
   matrices would deadlock by design, not by bug.  (The oracle still
   captures it; rank 0's value matches the interpreter's.)  A matrix
   broadcast yields a rank-local replica, which must not meet a
   distributed matrix element-wise, so its result stays unregistered
   too. *)
let mpi_stmt env : stmt G.t =
  let roundtrip =
    let rname, env = fresh env "mpr" in
    let vname, env = fresh env "mpv" in
    let tag = 100 + env.counter in
    let* e = sexpr env 1 in
    let* with_probe = G.bool in
    let probe =
      (* probing the drained queue is deterministically 0 *)
      if with_probe then
        [ Printf.sprintf "%s_q = MPI_Probe(%s, %d);" vname rname tag ]
      else []
    in
    G.return
      ( [
          Printf.sprintf "%s = MPI_Comm_rank();" rname;
          Printf.sprintf "MPI_Send(%s, %d, %s);" rname tag e;
          Printf.sprintf "%s = MPI_Recv(%s, %d);" vname rname tag;
        ]
        @ probe,
        { env with vars = (vname, Kscalar) :: env.vars } )
  in
  let bcast_scalar =
    let name, env = fresh env "mpb" in
    let* e = sexpr env 1 in
    G.return
      ( [ Printf.sprintf "%s = MPI_Bcast(0, %s);" name e ],
        { env with vars = (name, Kscalar) :: env.vars } )
  in
  let bcast_mat =
    match mats env with
    | [] -> []
    | ms ->
        [
          ( 2,
            let name, env = fresh env "mpm" in
            let* src, _, _ = G.oneofl ms in
            G.return
              ( [ Printf.sprintf "%s = MPI_Bcast(0, %s);" name src ],
                env (* replica: captured, but kept out of the pool *) ) );
        ]
  in
  G.frequency ([ (3, roundtrip); (2, bcast_scalar) ] @ bcast_mat)

(* --- mutating statements (shape-preserving; safe inside control flow) ---- *)

let mutate_stmt env : string G.t =
  let reassign_scalar =
    match scalars env with
    | [] -> []
    | ss ->
        [
          ( 3,
            let* n = G.oneofl ss in
            let* e = sexpr env 1 in
            G.return (Printf.sprintf "%s = %s;" n e) );
        ]
  in
  let setelem =
    match mats env with
    | [] -> []
    | ms ->
        [
          ( 2,
            let* n, r, c = G.oneofl ms in
            let* i = G.int_range 1 r in
            let* j = G.int_range 1 c in
            let* e = sexpr env 1 in
            G.return
              (if r = 1 then Printf.sprintf "%s(%d) = %s;" n j e
               else if c = 1 then Printf.sprintf "%s(%d) = %s;" n i e
               else Printf.sprintf "%s(%d, %d) = %s;" n i j e) );
        ]
  in
  let setsection =
    match mats env with
    | [] -> []
    | ms ->
        [
          ( 1,
            let* n, r, c = G.oneofl ms in
            let* e = sexpr env 0 in
            if r = 1 || c = 1 then
              let* k = G.int_range 1 (r * c) in
              G.return (Printf.sprintf "%s(1:%d) = %s;" n k e)
            else
              let* k = G.int_range 1 r in
              G.return (Printf.sprintf "%s(1:%d, :) = %s;" n k e) );
        ]
  in
  let reassign_mat =
    match mats env with
    | [] -> []
    | ms ->
        [
          ( 2,
            let* n, r, c = G.oneofl ms in
            let* rhs = elemwise_rhs env (r, c) in
            G.return (Printf.sprintf "%s = %s;" n rhs) );
        ]
  in
  let tensor_mut =
    match tens env with
    | [] -> []
    | ts ->
        [
          (* single element write *)
          ( 2,
            let* n, p, r, c = G.oneofl ts in
            let* i = G.int_range 1 p in
            let* j = G.int_range 1 r in
            let* k = G.int_range 1 c in
            let* e = sexpr env 1 in
            G.return (Printf.sprintf "%s(%d, %d, %d) = %s;" n i j k e) );
          (* shape-preserving element-wise reassignment *)
          ( 1,
            let* n, p, r, c = G.oneofl ts in
            let* rhs = tensor_elemwise_rhs env (p, r, c) in
            G.return (Printf.sprintf "%s = %s;" n rhs) );
        ]
  in
  match reassign_scalar @ setelem @ setsection @ reassign_mat @ tensor_mut with
  | [] -> G.return "" (* nothing mutable yet *)
  | choices -> G.frequency choices

let mutate_block env size : string list G.t =
  let* lines = G.flatten_l (List.init size (fun _ -> mutate_stmt env)) in
  G.return (List.filter (fun l -> l <> "") lines)

(* --- control flow --------------------------------------------------------- *)

let for_stmt env : stmt G.t =
  let ivar, env = fresh env "i" in
  let* zero_trip = G.frequency [ (4, G.return false); (1, G.return true) ] in
  let* stop = G.int_range 2 3 in
  let header =
    if zero_trip then Printf.sprintf "for %s = 1:0" ivar
    else Printf.sprintf "for %s = 1:%d" ivar stop
  in
  (* inside the body the loop variable is readable but must not be
     reassigned *)
  let benv = { env with ro = ivar :: env.ro } in
  let* body = mutate_block benv 2 in
  let body = List.map (fun l -> "  " ^ l) body in
  (* after a zero-trip loop the variable is left undefined in every
     back end, so it must stay out of the symbol table (the oracle
     still captures it: missing-in-both must verify clean) *)
  let env' =
    if zero_trip then env
    else { env with vars = (ivar, Kscalar) :: env.vars }
  in
  G.return (((header :: body) @ [ "end" ]), env')

let while_stmt env : stmt G.t =
  let wvar, env = fresh env "w" in
  let* stop = G.int_range 2 3 in
  (* the counter is read-only in the body: the closing increment alone
     drives termination *)
  let benv = { env with ro = wvar :: env.ro } in
  let* body = mutate_block benv 1 in
  let lines =
    [ Printf.sprintf "%s = 0;" wvar; Printf.sprintf "while %s < %d" wvar stop ]
    @ List.map (fun l -> "  " ^ l) body
    @ [ Printf.sprintf "  %s = %s + 1;" wvar wvar; "end" ]
  in
  G.return (lines, { env with vars = (wvar, Kscalar) :: env.vars })

let if_stmt env : stmt G.t =
  let* cond = sexpr env 1 in
  let* cmp = G.oneofl [ ">"; "<"; ">="; "<=" ] in
  let* thr = G.oneofl [ "0"; "1"; "2" ] in
  let* then_b = mutate_block env 1 in
  let* with_else = G.bool in
  let* else_b = if with_else then mutate_block env 1 else G.return [] in
  let lines =
    [ Printf.sprintf "if %s %s %s" cond cmp thr ]
    @ List.map (fun l -> "  " ^ l) then_b
    @ (if with_else then "else" :: List.map (fun l -> "  " ^ l) else_b else [])
    @ [ "end" ]
  in
  G.return (lines, env)

(* --- whole scripts -------------------------------------------------------- *)

let stmt env : stmt G.t =
  let has_mats = mats env <> [] in
  let has_vecs = vectors env <> [] in
  let has_full = List.exists (fun (_, r, c) -> r > 1 && c > 1) (mats env) in
  let has_matmul =
    List.exists
      (fun (_, _, c1) -> List.exists (fun (_, r2, _) -> c1 = r2) (mats env))
      (mats env)
  in
  let has_concat =
    List.exists
      (fun (_, r1, c1) ->
        List.exists (fun (_, r2, c2) -> r1 = r2 || c1 = c2) (mats env))
      (mats env)
  in
  G.frequency
    ([
       (4, scalar_stmt env);
       (3, literal_stmt env);
       (2, construct_stmt env);
       (2, range_stmt env);
       (1, linspace_stmt env);
       (1, empty_stmt env);
       (1, string_stmt env);
       (2, for_stmt env);
       (1, while_stmt env);
       (2, if_stmt env);
       (1, mpi_stmt env);
     ]
    @ (if has_mats then
         [
           (3, elemwise_stmt env);
           (2, transpose_stmt env);
           (2, diag_stmt env);
           (2, section_stmt env);
           ( 2,
             let* l = mutate_stmt env in
             G.return ((if l = "" then [] else [ l ]), env) );
         ]
       else [])
    @ (if has_vecs then [ (2, vec_op_stmt env) ] else [])
    @ (if has_full then [ (1, colreduce_stmt env) ] else [])
    @ (if has_matmul then [ (2, matmul_stmt env) ] else [])
    @ (if has_concat then [ (2, concat_stmt env) ] else [])
    @ (if env.rank3 then [ (2, tensor_construct_stmt env) ] else [])
    @
    if tens env <> [] then
      [ (3, tensor_elemwise_stmt env); (2, tensor_section_stmt env) ]
    else [])

let rec stmts env n : (string list * env) G.t =
  if n <= 0 then G.return ([], env)
  else
    let* lines, env = stmt env in
    let* rest, env = stmts env (n - 1) in
    G.return (lines @ rest, env)

(* Print every live variable element-by-element so the sequential-C
   leg can be compared numerically against the interpreter. *)
let epilogue env : string list =
  List.concat_map
    (fun (n, k) ->
      match k with
      | Kscalar -> [ Printf.sprintf "fprintf('%%.17g\\n', %s);" n ]
      | Kmat (r, c) when r * c = 0 -> []
      | Kmat (r, c) when r = 1 || c = 1 ->
          List.init (r * c) (fun g ->
              Printf.sprintf "fprintf('%%.17g\\n', %s(%d));" n (g + 1))
      | Kmat (r, c) ->
          List.concat_map
            (fun i ->
              List.init c (fun j ->
                  Printf.sprintf "fprintf('%%.17g\\n', %s(%d, %d));" n (i + 1)
                    (j + 1)))
            (List.init r (fun i -> i))
      | Ktens (p, r, c) ->
          List.concat_map
            (fun g ->
              List.concat_map
                (fun i ->
                  List.init c (fun j ->
                      Printf.sprintf "fprintf('%%.17g\\n', %s(%d, %d, %d));" n
                        (g + 1) (i + 1) (j + 1)))
                (List.init r (fun i -> i)))
            (List.init p (fun g -> g)))
    (List.rev env.vars)

let helper_func name : string list G.t =
  let fenv = { empty_env with vars = [ ("x", Kscalar) ] } in
  let* e = sexpr fenv 2 in
  G.return
    [ Printf.sprintf "function r = %s(x)" name; Printf.sprintf "r = %s;" e ]

let script_with ~rank3 : string G.t =
  let* with_func = G.frequency [ (3, G.return false); (1, G.return true) ] in
  let env = { empty_env with rank3 } in
  let env = if with_func then { env with funcs = [ "uf" ] } else env in
  let* n = G.int_range 3 12 in
  let* lines, env = stmts env n in
  let* func_lines = if with_func then helper_func "uf" else G.return [] in
  let all = lines @ epilogue env @ func_lines in
  G.return (String.concat "\n" all ^ "\n")

let script : string G.t = script_with ~rank3:false
let script_rank3 : string G.t = script_with ~rank3:true
