(* Differential fuzzing oracle for the whole Otter pipeline.

   A generated script (see {!Gen}) is pushed through every back end we
   have and all results are compared:

     - the reference interpreter (the semantics oracle),
     - the SPMD VM at P in {1,2,3,4} on two machine models,
     - when a C compiler is available, the emitted sequential C,
       compiled and executed for real, its stdout compared
       numerically against the interpreter's.

   Any disagreement is a counterexample; QCheck2's integrated
   shrinking then minimizes the script before it is reported. *)

type case_result =
  | Pass
  | Discard of string  (** front end or interpreter rejected the case *)
  | Fail of string  (** back ends disagree: the detail *)

let machines = [ Mpisim.Machine.meiko_cs2; Mpisim.Machine.enterprise_smp ]
let procs = [ 1; 2; 3; 4 ]

(* --- the compiled-C leg --------------------------------------------------- *)

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

(* The sequential C back end refuses explicit message passing and
   rank-N tensors, so the C leg only runs for scripts that never
   mention an MPI builtin and whose inferred types stay on the
   scalar/matrix floor of the lattice. *)
let has_tensor (c : Otter.compiled) : bool =
  Hashtbl.fold
    (fun _ t acc -> acc || Analysis.Ty.is_tensor t)
    c.Otter.info.Analysis.Infer.var_ty false

let uses_mpi (script : string) : bool =
  let needle = "MPI_" in
  let nh = String.length script and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub script i nn = needle || go (i + 1)) in
  go 0

(* One scratch directory per process holding the run-time library,
   compiled to objects exactly once; each case then only compiles its
   own small generated file and links. *)
let rt_objects =
  lazy
    (let dir = Filename.temp_file "otter_fuzz" "" in
     Sys.remove dir;
     Sys.mkdir dir 0o700;
     List.iter
       (fun (name, content) ->
         let oc = open_out (Filename.concat dir name) in
         output_string oc content;
         close_out oc)
       Codegen.support_files;
     let compile src obj =
       let cmd =
         Printf.sprintf "cc -O1 -c -o %s %s > /dev/null 2>&1"
           (Filename.quote (Filename.concat dir obj))
           (Filename.quote (Filename.concat dir src))
       in
       if Sys.command cmd <> 0 then
         failwith ("fuzz: cannot compile run-time library file " ^ src)
     in
     compile "otter_rt_common.c" "otter_rt_common.o";
     compile "otter_rt_seq.c" "otter_rt_seq.o";
     dir)

(* Compare two program outputs token by token: numeric tokens within a
   relative tolerance (reduction order, printf rounding), everything
   else literally. *)
let outputs_agree ?(tol = 1e-9) (a : string) (b : string) : string option =
  let tokens s =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
  in
  let ta = tokens a and tb = tokens b in
  if List.length ta <> List.length tb then
    Some
      (Printf.sprintf "output length differs: %d tokens vs %d"
         (List.length ta) (List.length tb))
  else
    let close x y =
      x = y
      || (Float.is_nan x && Float.is_nan y)
      ||
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      Float.abs (x -. y) <= tol *. scale
    in
    List.fold_left2
      (fun acc x y ->
        match acc with
        | Some _ -> acc
        | None -> (
            match (float_of_string_opt x, float_of_string_opt y) with
            | Some fx, Some fy ->
                if close fx fy then None
                else Some (Printf.sprintf "output token %s vs %s" x y)
            | _ ->
                if x = y then None
                else Some (Printf.sprintf "output token %S vs %S" x y)))
      None ta tb

(* Emit, compile, execute the sequential C for [c]; compare stdout
   against the interpreter's output. *)
let check_c_leg (c : Otter.compiled) (ref_output : string) : string option =
  let dir = Lazy.force rt_objects in
  let base = Filename.temp_file ~temp_dir:dir "case" ".c" in
  let exe = Filename.chop_suffix base ".c" ^ ".exe" in
  let out_file = base ^ ".out" in
  let cleanup () =
    List.iter (fun f -> if Sys.file_exists f then Sys.remove f)
      [ base; exe; out_file ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let oc = open_out base in
      output_string oc (Codegen.emit_c ~name:"fuzz_case" c.Otter.prog);
      close_out oc;
      let cmd =
        Printf.sprintf
          "cc -O1 -o %s %s %s %s -lm > /dev/null 2>&1"
          (Filename.quote exe) (Filename.quote base)
          (Filename.quote (Filename.concat dir "otter_rt_common.o"))
          (Filename.quote (Filename.concat dir "otter_rt_seq.o"))
      in
      if Sys.command cmd <> 0 then Some "generated C does not compile"
      else if
        Sys.command
          (Printf.sprintf "%s > %s 2>&1" (Filename.quote exe)
             (Filename.quote out_file))
        <> 0
      then Some "compiled C program exited non-zero"
      else begin
        let ic = open_in_bin out_file in
        let n = in_channel_length ic in
        let got = really_input_string ic n in
        close_in ic;
        match outputs_agree ref_output got with
        | None -> None
        | Some d -> Some ("compiled C: " ^ d)
      end)

(* --- the oracle ----------------------------------------------------------- *)

let capture_list (info : Analysis.Infer.result) : string list =
  Hashtbl.fold (fun v _ acc -> v :: acc) info.Analysis.Infer.var_ty []
  |> List.sort compare

let check_case ?(use_cc = true) (script : string) : case_result =
  (* full O2 pipeline, with the IR validator between passes: a
     validator violation is a compiler bug, hence a counterexample *)
  match Otter.compile ~validate:true script with
  | exception Mlang.Source.Error (_, msg) -> Discard ("compile: " ^ msg)
  | exception Spmd.Lower.Unsupported (_, msg) -> Discard ("lower: " ^ msg)
  | exception Spmd.Validate.Invalid msg -> Fail ("IR validation: " ^ msg)
  | c -> (
      let capture = capture_list c.Otter.info in
      match
        Otter.run
          (Otter.config ~capture ~engine:Otter.Config.Einterp
             ~machine:Mpisim.Machine.workstation ())
          c
        |> Otter.outcome_exn
      with
      | exception Exec.Vm.Runtime_error msg -> Discard ("interpreter: " ^ msg)
      | exception Interp.Eval.Runtime_error msg ->
          Discard ("interpreter: " ^ msg)
      | ref_run -> (
          (* each configuration runs under BOTH execution engines — the
             direct IR walker and the threaded-code fast path — so an
             engine-specific semantic bug shows up as a counterexample
             on exactly one of the two labels *)
          let check_one ~label ~engine c machine nprocs =
            let tag = Otter.Config.engine_name engine in
            match
              Otter.verify
                (Otter.config ~engine ~machine ~nprocs ~capture ())
                c
            with
            | Otter.Verified -> None
            | Otter.Mismatched ms ->
                let m = List.hd ms in
                Some
                  (Printf.sprintf "[%s, P=%d, %s, %s] %s: %s"
                     machine.Mpisim.Machine.name nprocs label tag
                     m.Otter.variable m.Otter.detail)
            | Otter.Aborted { failed_rank; operation; detail; _ } ->
                Some
                  (Printf.sprintf
                     "[%s, P=%d, %s, %s] rank %d failed during %s: %s"
                     machine.Mpisim.Machine.name nprocs label tag failed_rank
                     operation detail)
            | exception Exec.Vm.Runtime_error msg ->
                Some
                  (Printf.sprintf "[%s, P=%d, %s, %s] VM run-time error: %s"
                     machine.Mpisim.Machine.name nprocs label tag msg)
            | exception Mpisim.Sim.Deadlock msg ->
                Some
                  (Printf.sprintf "[%s, P=%d, %s, %s] deadlock: %s"
                     machine.Mpisim.Machine.name nprocs label tag msg)
          in
          let check_config ~label c machine nprocs =
            match
              check_one ~label ~engine:Otter.Config.Etcode c machine nprocs
            with
            | Some _ as f -> f
            | None -> check_one ~label ~engine:Otter.Config.Eir c machine nprocs
          in
          let vm_failure =
            List.fold_left
              (fun acc machine ->
                match acc with
                | Some _ -> acc
                | None ->
                    List.fold_left
                      (fun acc p ->
                        match acc with
                        | Some _ -> acc
                        | None -> check_config ~label:"O2" c machine p)
                      None procs)
              None machines
          in
          (* the unoptimized pipeline against the same reference: both
             levels verify against one interpreter run, so any O0-vs-O2
             divergence surfaces as a failure on exactly one level *)
          let vm_failure =
            match vm_failure with
            | Some _ -> vm_failure
            | None -> (
                match Otter.compile ~opt:Spmd.Pass.O0 ~validate:true script with
                | exception Spmd.Validate.Invalid msg ->
                    Some ("[O0] IR validation: " ^ msg)
                | c0 ->
                    List.fold_left
                      (fun acc p ->
                        match acc with
                        | Some _ -> acc
                        | None ->
                            check_config ~label:"O0" c0
                              Mpisim.Machine.meiko_cs2 p)
                      None [ 1; 3 ])
          in
          match vm_failure with
          | Some d -> Fail d
          | None ->
              if
                use_cc
                && (not (uses_mpi script))
                && (not (has_tensor c))
                && Lazy.force cc_available
              then
                match check_c_leg c ref_run.Exec.State.output with
                | Some d -> Fail d
                | None -> Pass
              else Pass))

(* --- random testing with shrinking ---------------------------------------- *)

type stats = { cases : int; passed : int; discarded : int }

type run_result =
  | All_passed of stats
  | Counterexample of { script : string; detail : string; shrink_steps : int }

let run_random ?(use_cc = true) ?(rank3 = false) ~cases ~seed () : run_result =
  let passed = ref 0 and discarded = ref 0 in
  let last_fail = ref "" in
  let prop s =
    match check_case ~use_cc s with
    | Pass ->
        incr passed;
        true
    | Discard _ ->
        incr discarded;
        true
    | Fail detail ->
        last_fail := detail;
        false
  in
  let cell =
    QCheck2.Test.make_cell ~count:cases ~name:"differential"
      ~print:(fun s -> s)
      (if rank3 then Gen.script_rank3 else Gen.script)
      prop
  in
  let rand = Random.State.make [| seed |] in
  let result = QCheck2.Test.check_cell ~rand cell in
  match QCheck2.TestResult.get_state result with
  | QCheck2.TestResult.Success -> All_passed { cases; passed = !passed; discarded = !discarded }
  | QCheck2.TestResult.Failed { instances = ce :: _ } ->
      Counterexample
        {
          script = ce.QCheck2.TestResult.instance;
          detail = !last_fail;
          shrink_steps = ce.QCheck2.TestResult.shrink_steps;
        }
  | QCheck2.TestResult.Failed { instances = [] } ->
      Counterexample
        { script = ""; detail = !last_fail; shrink_steps = 0 }
  | QCheck2.TestResult.Failed_other { msg } ->
      Counterexample { script = ""; detail = msg; shrink_steps = 0 }
  | QCheck2.TestResult.Error { instance; exn; backtrace = _ } ->
      Counterexample
        {
          script = instance.QCheck2.TestResult.instance;
          detail = "exception: " ^ Printexc.to_string exn;
          shrink_steps = instance.QCheck2.TestResult.shrink_steps;
        }

(* --- regression-corpus replay --------------------------------------------- *)

type replay_failure = { file : string; reason : string }

(* A corpus file is an ordinary script expected to pass the full
   oracle, unless its first line carries a directive:

     % expect: compile-error <substring>

   in which case the back-end compile must reject it with a diagnostic
   containing <substring> while the front end + interpreter still run
   it cleanly (the interpreter accepts a superset of the compiled
   language, e.g. matrix growth). *)
let replay_file ?(use_cc = true) (path : string) : replay_failure option =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  let file = Filename.basename path in
  let directive =
    match String.index_opt source '\n' with
    | None -> None
    | Some i ->
        let first = String.sub source 0 i in
        let prefix = "% expect: compile-error " in
        if String.length first > String.length prefix
           && String.sub first 0 (String.length prefix) = prefix
        then
          Some
            (String.sub first (String.length prefix)
               (String.length first - String.length prefix))
        else None
  in
  match directive with
  | Some substring -> (
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      match Otter.compile source with
      | _ ->
          Some { file; reason = "expected a compile error, but it compiled" }
      | exception (Mlang.Source.Error (_, msg) | Spmd.Lower.Unsupported (_, msg))
        -> (
          if not (contains msg substring) then
            Some
              {
                file;
                reason =
                  Printf.sprintf "compile error %S does not mention %S" msg
                    substring;
              }
          else
            (* the interpreter must still accept it *)
            match Otter.compile_frontend source with
            | exception Mlang.Source.Error (_, msg) ->
                Some { file; reason = "front end rejected it: " ^ msg }
            | fe -> (
                match
                  Otter.interpret
                    (Otter.config ~machine:Mpisim.Machine.workstation ())
                    fe
                with
                | exception Interp.Eval.Runtime_error msg ->
                    Some { file; reason = "interpreter failed: " ^ msg }
                | _ -> None)))
  | None -> (
      match check_case ~use_cc source with
      | Pass -> None
      | Discard reason ->
          Some { file; reason = "discarded (should pass): " ^ reason }
      | Fail reason -> Some { file; reason })

let replay ?use_cc (dir : string) : replay_failure list * int =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".m")
    |> List.sort compare
  in
  ( List.filter_map
      (fun f -> replay_file ?use_cc (Filename.concat dir f))
      files,
    List.length files )
