(* The pre-decoded threaded-code SPMD executor: the fast path.

   The IR-walking [Vm] pays for its simplicity on every instruction:
   environment hashes, constructor matches, closure rebuilding inside
   element loops.  This engine pays those costs once, in a decode pass,
   and then runs flat code:

   - variables are interned into array-indexed frame slots (a tag word,
     an unboxed float for scalars, a boxed value for matrices/strings);
   - scalar expressions become RPN programs over an unboxed float
     stack, with builtins and operators resolved to opcodes at decode
     time and the flop charge precomputed (operand counts are static
     because [&&]/[||] on replicated scalars evaluate both sides);
   - element-wise loops become a fetch prelude (operands resolved in
     tree order, so embedded broadcasts and conformance errors happen
     exactly where the walker would put them) plus one tight RPN loop;
   - control flow becomes resolved jump targets: an op returns the
     next pc, and break/continue inside decoded loops are plain jumps.

   Semantics are bit-for-bit those of [Vm]: same evaluation order, same
   flop charges in the same sequence, same error messages, same
   checkpoint format (see [State]), so the two engines are
   interchangeable under verify, fuzz, and chaos recovery.  Decoding is
   per rank — preallocated operand buffers may be live across a
   communication suspension, so they cannot be shared between ranks. *)

open Spmd
module Dmat = Runtime.Dmat
module Ndarr = Runtime.Ndarr
module Ops = Runtime.Ops

exception Runtime_error = State.Runtime_error

let error = State.error

type value = State.value =
  | Vscalar of float
  | Vmat of Dmat.t
  | Vnd of Ndarr.t
  | Vstr of string

(* --- per-rank shared execution state ------------------------------------- *)

(* One per rank per attempt, shared by every frame of that rank (the
   top-level frame and each user-function call frame), which is what
   makes the walker's rand_calls copy-back semantics automatic. *)
type rstate = {
  out : Buffer.t;
  mutable rand_calls : int;
  calls : int ref;
  seed : int;
  datadir : string;
  rk : int;
  tix : int array; (* per-rank current trace id (indexes trace_names) *)
}

(* Failure attribution without per-instruction string writes: ops store
   a small int in [tix]; the name is only materialized if the rank
   dies.  Ids 0 and 1 are the engine's own states, the rest mirror
   [State.inst_name]. *)
let trace_names =
  [|
    "startup";
    "checkpoint vote";
    "scalar assignment";
    "element-wise expression";
    "matrix copy";
    "matrix multiply";
    "transposed matrix multiply";
    "dot product";
    "transpose";
    "diagonal";
    "outer product";
    "full reduction";
    "column reduction";
    "norm";
    "cumulative scan";
    "sort";
    "indexed reduction";
    "trapezoidal integration";
    "circular shift";
    "element broadcast";
    "batched element broadcast";
    "fused allreduce";
    "element assignment";
    "data file load";
    "matrix constructor";
    "matrix literal";
    "section read";
    "section assignment";
    "matrix concatenation";
    "user function call";
    "print";
    "formatted output";
    "error statement";
    "if statement";
    "while loop";
    "for loop";
    "control transfer";
    "MPI_Comm_rank";
    "MPI_Comm_size";
    "MPI_Send";
    "MPI_Recv";
    "MPI_Bcast";
    "MPI_Probe";
  |]

let tid_of_name n =
  let rec go i =
    if i >= Array.length trace_names then 36 (* control transfer *)
    else if trace_names.(i) = n then i
    else go (i + 1)
  in
  go 0

let tid_of_inst i = tid_of_name (State.inst_name i)

(* --- frames --------------------------------------------------------------- *)

(* Slot tags. *)
let t_undef = 0

let t_scalar = 1

let t_mat = 2

let t_str = 3

let t_nd = 4

let novalue = Vscalar nan

type frame = {
  tags : int array;
  sc : float array; (* unboxed scalar slots *)
  vals : value array; (* matrix / string slots; [novalue] elsewhere *)
  names : string array; (* slot -> variable name, "" for hidden slots *)
  stack : float array; (* RPN scratch; safe per frame (see intro) *)
  st : rstate;
}

let sets fr slot x =
  fr.tags.(slot) <- t_scalar;
  fr.sc.(slot) <- x

let setm fr slot m =
  fr.tags.(slot) <- t_mat;
  fr.vals.(slot) <- Vmat m

let setstr fr slot s =
  fr.tags.(slot) <- t_str;
  fr.vals.(slot) <- Vstr s

let setnd fr slot t =
  fr.tags.(slot) <- t_nd;
  fr.vals.(slot) <- Vnd t

let setv fr slot = function
  | Vscalar x -> sets fr slot x
  | v ->
      fr.tags.(slot) <-
        (match v with Vstr _ -> t_str | Vnd _ -> t_nd | _ -> t_mat);
      fr.vals.(slot) <- v

let getv fr slot =
  match fr.tags.(slot) with
  | 1 -> Vscalar fr.sc.(slot)
  | 0 -> error "variable '%s' used before it is defined" fr.names.(slot)
  | _ -> fr.vals.(slot)

let read_scalar fr slot =
  match fr.tags.(slot) with
  | 1 -> fr.sc.(slot)
  | 2 -> (
      match fr.vals.(slot) with
      | Vmat m when Dmat.numel m = 1 -> Ops.bcast_elem m ~i:0 ~j:0
      | _ ->
          error "variable '%s' is a matrix where a scalar is required"
            fr.names.(slot))
  | 3 ->
      error "variable '%s' is a string where a scalar is required"
        fr.names.(slot)
  | 4 -> (
      match fr.vals.(slot) with
      | Vnd t when Ndarr.numel t = 1 ->
          Ops.nd_bcast_elem t (Array.make (Ndarr.rank t) 0)
      | _ ->
          error "variable '%s' is a tensor where a scalar is required"
            fr.names.(slot))
  | _ -> error "variable '%s' used before it is defined" fr.names.(slot)

let mat_of fr slot =
  match fr.tags.(slot) with
  | 2 -> ( match fr.vals.(slot) with Vmat m -> m | _ -> assert false)
  | 1 ->
      error "variable '%s' is a scalar where a matrix is required"
        fr.names.(slot)
  | 3 ->
      error "variable '%s' is a string where a matrix is required"
        fr.names.(slot)
  | 4 ->
      error "variable '%s' is a tensor where a matrix is required"
        fr.names.(slot)
  | _ -> error "variable '%s' used before it is defined" fr.names.(slot)

let dim_of fr slot code =
  (* codes: 0 numel, 1 rows (trailing cell), 2 cols (trailing cell),
     3 max over all dims, 4 leading-axis extent *)
  match fr.tags.(slot) with
  | 1 -> 1.
  | 3 -> error "size of a string"
  | 0 -> error "variable '%s' used before it is defined" fr.names.(slot)
  | _ -> (
      match fr.vals.(slot) with
      | Vmat m -> (
          match code with
          | 0 -> float_of_int (Dmat.numel m)
          | 1 -> float_of_int m.Dmat.rows
          | 2 -> float_of_int m.Dmat.cols
          | 4 -> 1.
          | _ -> float_of_int (max m.Dmat.rows m.Dmat.cols))
      | Vnd t -> (
          match code with
          | 0 -> float_of_int (Ndarr.numel t)
          | 1 -> float_of_int (Ndarr.cell_rows t)
          | 2 -> float_of_int (Ndarr.cell_cols t)
          | 4 -> float_of_int t.Ndarr.dims.(0)
          | _ -> float_of_int (Array.fold_left max 1 t.Ndarr.dims))
      | _ -> assert false)

(* --- RPN scalar programs --------------------------------------------------- *)

(* Opcodes (argument meaning in parentheses):
     0 push constant (const index)        1 push variable (slot)
     2 negate                             3 logical not
     4 dimension query (slot*4 + code)    5 builtin, 1 arg (fid)
     6 builtin, 2 args (fid)              7 raise (message index)
     10..23 binary operators *)
type rpn = {
  r_ops : int array;
  r_a : int array;
  r_consts : float array;
  r_msgs : string array; (* decode-time error messages for opcode 7 *)
  r_nops : int; (* static flop charge *)
  r_fnops : float; (* the same, pre-converted for the charge call *)
  r_f : frame -> float; (* compiled evaluator; the arrays are its listing *)
}

let bin_code (op : Mlang.Ast.binop) =
  match op with
  | Mlang.Ast.Add -> 10
  | Mlang.Ast.Sub -> 11
  | Mlang.Ast.Mul | Mlang.Ast.Emul -> 12
  | Mlang.Ast.Div | Mlang.Ast.Ediv -> 13
  | Mlang.Ast.Ldiv | Mlang.Ast.Eldiv -> 14
  | Mlang.Ast.Pow | Mlang.Ast.Epow -> 15
  | Mlang.Ast.Lt -> 16
  | Mlang.Ast.Le -> 17
  | Mlang.Ast.Gt -> 18
  | Mlang.Ast.Ge -> 19
  | Mlang.Ast.Eq -> 20
  | Mlang.Ast.Ne -> 21
  | Mlang.Ast.And | Mlang.Ast.Shortand -> 22
  | Mlang.Ast.Or | Mlang.Ast.Shortor -> 23

(* (name, argc) -> fid, exactly the pairs [State.scalar_builtin]
   accepts; anything else raises its error, but only when executed. *)
let builtin_fid name argc =
  match (name, argc) with
  | "abs", 1 -> 0
  | "sqrt", 1 -> 1
  | "exp", 1 -> 2
  | "log", 1 -> 3
  | "log10", 1 -> 4
  | "log2", 1 -> 5
  | "sin", 1 -> 6
  | "cos", 1 -> 7
  | "tan", 1 -> 8
  | "asin", 1 -> 9
  | "acos", 1 -> 10
  | "atan", 1 -> 11
  | "sinh", 1 -> 12
  | "cosh", 1 -> 13
  | "tanh", 1 -> 14
  | "floor", 1 -> 15
  | "ceil", 1 -> 16
  | "round", 1 -> 17
  | "fix", 1 -> 18
  | "sign", 1 -> 19
  | "double", 1 -> 20
  | "mod", 2 -> 21
  | "rem", 2 -> 22
  | "atan2", 2 -> 23
  | "hypot", 2 -> 24
  | "pow", 2 -> 25
  | "power", 2 -> 25
  | "min", 2 -> 26
  | "max", 2 -> 27
  | _ -> -1

let call1 fid x =
  match fid with
  | 0 -> Float.abs x
  | 1 -> sqrt x
  | 2 -> exp x
  | 3 -> log x
  | 4 -> log10 x
  | 5 -> log x /. log 2.
  | 6 -> sin x
  | 7 -> cos x
  | 8 -> tan x
  | 9 -> asin x
  | 10 -> acos x
  | 11 -> atan x
  | 12 -> sinh x
  | 13 -> cosh x
  | 14 -> tanh x
  | 15 -> floor x
  | 16 -> ceil x
  | 17 -> Float.round x
  | 18 -> Float.trunc x
  | 19 -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | _ -> x (* 20: double *)

let call2 fid a b =
  match fid with
  | 21 -> if b = 0. then a else a -. (b *. Float.floor (a /. b))
  | 22 -> if b = 0. then a else Float.rem a b
  | 23 -> atan2 a b
  | 24 -> Float.hypot a b
  | 25 -> Float.pow a b
  | 26 -> Float.min a b
  | _ -> Float.max a b

let truthy = State.truthy

let of_bool = State.of_bool

(* Run the compiled evaluator.  No charge: the caller decides
   (element-loop scalar subtrees are uncharged, exactly like the
   walker's). *)
let exec_rpn fr (r : rpn) : float = r.r_f fr

(* Charged evaluation: the walker's [eval_scalar] — evaluate fully,
   then charge the static operation count in one flops call. *)
let eval_rpn fr r =
  State.dispatched := !State.dispatched + Array.length r.r_ops;
  let v = r.r_f fr in
  if r.r_nops > 0 then Mpisim.Sim.flops r.r_fnops;
  v

(* --- decode context -------------------------------------------------------- *)

type code = { c_ops : (frame -> int) array; c_len : int }

(* Decoded user function: fresh frame per call (recursion-safe), code
   shared across calls on this rank. *)
type fentry = {
  fe_code : code;
  fe_nslots : int;
  fe_names : string array;
  fe_stack : int;
  fe_params : int list; (* parameter slots, in declaration order *)
  fe_rets : (int * string) list; (* return slots + names *)
  fe_fname : string;
}

type dctx = {
  slot_of : (string, int) Hashtbl.t;
  mutable nslots : int;
  mutable rnames : string list; (* slot names, newest first *)
  mutable maxdepth : int; (* RPN stack high-water mark *)
  funcs : (string, Ir.func) Hashtbl.t;
  fdec : (string, fentry) Hashtbl.t; (* decoded on first call, per rank *)
  lst : Buffer.t option; (* decode listing accumulator *)
}

let slot dc name =
  match Hashtbl.find_opt dc.slot_of name with
  | Some s -> s
  | None ->
      let s = dc.nslots in
      dc.nslots <- s + 1;
      dc.rnames <- name :: dc.rnames;
      Hashtbl.add dc.slot_of name s;
      s

(* Hidden slots carry decoded loop state (iteration counter, frozen
   bounds): unnamed, so they are invisible to checkpoint snapshots, and
   frame-resident, so recursive calls cannot clobber each other. *)
let hidden_slot dc =
  let s = dc.nslots in
  dc.nslots <- s + 1;
  dc.rnames <- "" :: dc.rnames;
  s

let frame_names dc = Array.of_list (List.rev dc.rnames)

let mk_frame ~nslots ~names ~stack st =
  {
    tags = Array.make nslots t_undef;
    sc = Array.make nslots 0.;
    vals = Array.make nslots novalue;
    names;
    stack = Array.make (max 4 stack) 0.;
    st;
  }

(* --- compiling scalar expressions to RPN ----------------------------------- *)

let compile_sexpr dc (s : Ir.sexpr) : rpn =
  let ops = ref [] and args = ref [] and n = ref 0 in
  let consts = ref [] and ncon = ref 0 in
  let msgs = ref [] and nmsg = ref 0 in
  let nops = ref 0 in
  let depth = ref 0 and maxd = ref 0 in
  let emit op a d =
    ops := op :: !ops;
    args := a :: !args;
    incr n;
    depth := !depth + d;
    if !depth > !maxd then maxd := !depth
  in
  let const f =
    consts := f :: !consts;
    incr ncon;
    !ncon - 1
  in
  let msg m =
    msgs := m :: !msgs;
    incr nmsg;
    !nmsg - 1
  in
  let rec go (s : Ir.sexpr) =
    match s with
    | Ir.Sconst f -> emit 0 (const f) 1
    | Ir.Sstr _ -> emit 7 (msg "string literal in numeric context") 1
    | Ir.Svar v -> emit 1 (slot dc v) 1
    | Ir.Sbin (op, a, b) ->
        incr nops;
        go a;
        go b;
        emit (bin_code op) 0 (-1)
    | Ir.Sneg a ->
        incr nops;
        go a;
        emit 2 0 0
    | Ir.Snot a ->
        incr nops;
        go a;
        emit 3 0 0
    | Ir.Scall (name, cargs) -> (
        incr nops;
        List.iter go cargs;
        let argc = List.length cargs in
        match builtin_fid name argc with
        | -1 ->
            emit 7
              (msg (Printf.sprintf "unknown scalar builtin '%s'/%d" name argc))
              1
        | fid when argc = 1 -> emit 5 fid 0
        | fid -> emit 6 fid (-1))
    | Ir.Sdim (v, code) -> emit 4 ((slot dc v * 8) lor (code land 7)) 1
  in
  go s;
  if !maxd + 1 > dc.maxdepth then dc.maxdepth <- !maxd + 1;
  (* The executable form: a closure tree, one direct call per node,
     evaluating strictly left to right — the same order the listing
     arrays describe.  Decode-time failures (strings in numeric
     position, unknown builtins) become closures that first evaluate
     their operands, then raise, so laziness matches the walker's. *)
  let rec cc (s : Ir.sexpr) : frame -> float =
    match s with
    | Ir.Sconst f -> fun _ -> f
    | Ir.Sstr _ -> fun _ -> error "string literal in numeric context"
    | Ir.Svar v ->
        let sl = slot dc v in
        fun fr -> read_scalar fr sl
    | Ir.Sdim (v, code) ->
        let sl = slot dc v in
        let code = code land 7 in
        fun fr -> dim_of fr sl code
    | Ir.Sneg a ->
        let fa = cc a in
        fun fr -> -.fa fr
    | Ir.Snot a ->
        let fa = cc a in
        fun fr -> of_bool (not (truthy (fa fr)))
    | Ir.Sbin (op, a, b) -> (
        let fa = cc a in
        let fb = cc b in
        match bin_code op with
        | 10 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              x +. y
        | 11 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              x -. y
        | 12 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              x *. y
        | 13 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              x /. y
        | 14 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              y /. x
        | 15 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              Float.pow x y
        | 16 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x < y)
        | 17 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x <= y)
        | 18 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x > y)
        | 19 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x >= y)
        | 20 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x = y)
        | 21 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (x <> y)
        | 22 ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (truthy x && truthy y)
        | _ ->
            fun fr ->
              let x = fa fr in
              let y = fb fr in
              of_bool (truthy x || truthy y))
    | Ir.Scall (name, cargs) -> (
        let fargs = List.map cc cargs in
        let argc = List.length cargs in
        match (builtin_fid name argc, fargs) with
        | -1, _ ->
            let m =
              Printf.sprintf "unknown scalar builtin '%s'/%d" name argc
            in
            fun fr ->
              List.iter (fun f -> ignore (f fr)) fargs;
              error "%s" m
        | fid, [ f1 ] -> fun fr -> call1 fid (f1 fr)
        | fid, [ f1; f2 ] ->
            fun fr ->
              let a = f1 fr in
              let b = f2 fr in
              call2 fid a b
        | _ -> assert false)
  in
  let f = cc s in
  {
    r_ops = Array.of_list (List.rev !ops);
    r_a = Array.of_list (List.rev !args);
    r_consts = Array.of_list (List.rev !consts);
    r_msgs = Array.of_list (List.rev !msgs);
    r_nops = !nops;
    r_fnops = float_of_int !nops;
    r_f = f;
  }

(* --- element-wise plans ---------------------------------------------------- *)

(* One fetch/eval step of an element plan's prelude, executed in tree
   order before the loop: operand matrices are bound (and conformance
   -checked) and scalar subtrees evaluated exactly where the walker
   would do it, so embedded broadcasts and errors keep their order. *)
type pstep =
  | Pfetch of int * int (* mats.(ix) <- data of matrix at slot *)
  | Peval of int * rpn (* esc.(ix) <- uncharged scalar evaluation *)
  | Peye (* no-op for matrices; rejected in tree order under a tensor model *)

(* Element opcodes reuse the scalar set, with the pushes redirected:
     0 push esc scratch (index)       1 push mat element (operand index)
     8 push eye element               others as in [rpn] *)
type eplan = {
  e_prelude : pstep array;
  e_ops : int array;
  e_a : int array;
  e_msgs : string array;
  e_nops : int; (* per-element static charge *)
  e_nmat : int;
  e_nsc : int;
}

let compile_eexpr dc (e : Ir.eexpr) : eplan =
  let prelude = ref [] in
  let ops = ref [] and args = ref [] in
  let msgs = ref [] and nmsg = ref 0 in
  let nops = ref 0 and nmat = ref 0 and nsc = ref 0 in
  let depth = ref 0 and maxd = ref 0 in
  let emit op a d =
    ops := op :: !ops;
    args := a :: !args;
    depth := !depth + d;
    if !depth > !maxd then maxd := !depth
  in
  let msg m =
    msgs := m :: !msgs;
    incr nmsg;
    !nmsg - 1
  in
  let rec go (e : Ir.eexpr) =
    match e with
    | Ir.Emat v ->
        let ix = !nmat in
        incr nmat;
        prelude := Pfetch (ix, slot dc v) :: !prelude;
        emit 1 ix 1
    | Ir.Eeye ->
        prelude := Peye :: !prelude;
        emit 8 0 1
    | Ir.Escalar s ->
        let ix = !nsc in
        incr nsc;
        prelude := Peval (ix, compile_sexpr dc s) :: !prelude;
        emit 0 ix 1
    | Ir.Ebin (op, a, b) ->
        incr nops;
        go a;
        go b;
        emit (bin_code op) 0 (-1)
    | Ir.Eneg a ->
        incr nops;
        go a;
        emit 2 0 0
    | Ir.Enot a ->
        incr nops;
        go a;
        emit 3 0 0
    | Ir.Ecall1 (name, a) -> (
        incr nops;
        go a;
        match builtin_fid name 1 with
        | -1 ->
            emit 7 (msg (Printf.sprintf "unknown scalar builtin '%s'/1" name)) 1
        | fid -> emit 5 fid 0)
    | Ir.Ecall2 (name, a, b) -> (
        incr nops;
        go a;
        go b;
        match builtin_fid name 2 with
        | -1 ->
            emit 7 (msg (Printf.sprintf "unknown scalar builtin '%s'/2" name)) 1
        | fid -> emit 6 fid (-1))
  in
  go e;
  if !maxd + 1 > dc.maxdepth then dc.maxdepth <- !maxd + 1;
  {
    e_prelude = Array.of_list (List.rev !prelude);
    e_ops = Array.of_list (List.rev !ops);
    e_a = Array.of_list (List.rev !args);
    e_msgs = Array.of_list (List.rev !msgs);
    e_nops = !nops;
    e_nmat = !nmat;
    e_nsc = !nsc;
  }

(* Execute a plan.  [mats]/[esc] are the decode-time preallocated
   operand buffers (per rank, so a suspension inside the prelude cannot
   interleave with another rank's use of them). *)
let exec_eplan fr (p : eplan) ~(mats : float array array) ~(esc : float array)
    ~(model : Dmat.t) ~(dst : Dmat.t) =
  Array.iter
    (fun step ->
      match step with
      | Pfetch (ix, s) ->
          let m = mat_of fr s in
          if m.Dmat.rows <> model.Dmat.rows || m.Dmat.cols <> model.Dmat.cols
          then
            error "nonconformant element-wise operands (%dx%d vs %dx%d)"
              m.Dmat.rows m.Dmat.cols model.Dmat.rows model.Dmat.cols;
          if not (Dmat.same_locality m model) then
            error
              "cannot mix a replicated (message-passing) matrix with a \
               distributed one element-wise; MPI_Bcast the distributed \
               operand first";
          mats.(ix) <- m.Dmat.data
      | Peval (ix, r) -> esc.(ix) <- exec_rpn fr r
      | Peye -> ())
    p.e_prelude;
  let stack = fr.stack in
  let ops = p.e_ops and args = p.e_a in
  let n = Array.length ops in
  let out = dst.Dmat.data in
  let len = Dmat.local_len dst in
  for i = 0 to len - 1 do
    let sp = ref 0 in
    for k = 0 to n - 1 do
      let a = args.(k) in
      match ops.(k) with
      | 0 ->
          stack.(!sp) <- esc.(a);
          incr sp
      | 1 ->
          stack.(!sp) <- mats.(a).(i);
          incr sp
      | 8 ->
          let r, c = Dmat.global_rc_of_local model i in
          stack.(!sp) <- (if r = c then 1.0 else 0.0);
          incr sp
      | 2 -> stack.(!sp - 1) <- -.stack.(!sp - 1)
      | 3 -> stack.(!sp - 1) <- of_bool (not (truthy stack.(!sp - 1)))
      | 5 -> stack.(!sp - 1) <- call1 a stack.(!sp - 1)
      | 6 ->
          decr sp;
          stack.(!sp - 1) <- call2 a stack.(!sp - 1) stack.(!sp)
      | 7 -> error "%s" p.e_msgs.(a)
      | 10 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) +. stack.(!sp)
      | 11 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) -. stack.(!sp)
      | 12 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) *. stack.(!sp)
      | 13 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) /. stack.(!sp)
      | 14 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp) /. stack.(!sp - 1)
      | 15 ->
          decr sp;
          stack.(!sp - 1) <- Float.pow stack.(!sp - 1) stack.(!sp)
      | 16 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) < stack.(!sp))
      | 17 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) <= stack.(!sp))
      | 18 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) > stack.(!sp))
      | 19 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) >= stack.(!sp))
      | 20 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) = stack.(!sp))
      | 21 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) <> stack.(!sp))
      | 22 ->
          decr sp;
          stack.(!sp - 1) <-
            of_bool (truthy stack.(!sp - 1) && truthy stack.(!sp))
      | _ ->
          decr sp;
          stack.(!sp - 1) <-
            of_bool (truthy stack.(!sp - 1) || truthy stack.(!sp))
    done;
    out.(i) <- stack.(0)
  done;
  Mpisim.Sim.flops (float_of_int (len * max 1 p.e_nops))

(* The tensor variant of [exec_eplan]: the loop runs over the model
   tensor's local elements.  A same-dims tensor operand reads its own
   local element; a matrix operand whose shape matches the model's
   trailing cell is frame-broadcast — an [i mod cell] read of its dense
   form.  [mcell.(ix)] is 0 for a direct read, the broadcast modulus
   otherwise. *)
let exec_eplan_nd fr (p : eplan) ~(mats : float array array)
    ~(mcell : int array) ~(esc : float array) ~(model : Ndarr.t)
    ~(dst : Ndarr.t) =
  Array.iter
    (fun step ->
      match step with
      | Pfetch (ix, s) -> (
          match getv fr s with
          | Vnd t ->
              if t.Ndarr.dims <> model.Ndarr.dims then
                error "nonconformant element-wise tensor operands";
              if not (Ndarr.same_locality t model) then
                error
                  "cannot mix a replicated (message-passing) tensor with a \
                   distributed one element-wise";
              mats.(ix) <- t.Ndarr.data;
              mcell.(ix) <- 0
          | Vmat m ->
              if
                m.Dmat.rows <> Ndarr.cell_rows model
                || m.Dmat.cols <> Ndarr.cell_cols model
              then
                error
                  "frame broadcast needs a %dx%d matrix matching the tensor \
                   cell (got %dx%d)"
                  (Ndarr.cell_rows model) (Ndarr.cell_cols model) m.Dmat.rows
                  m.Dmat.cols;
              mats.(ix) <- Dmat.to_dense m;
              mcell.(ix) <- Ndarr.cell_numel model
          | Vscalar f ->
              mats.(ix) <- [| f |];
              mcell.(ix) <- 1
          | Vstr _ ->
              error "variable '%s' is a string in an element-wise loop"
                fr.names.(s))
      | Peval (ix, r) -> esc.(ix) <- exec_rpn fr r
      | Peye -> error "eye has no rank-N form")
    p.e_prelude;
  let stack = fr.stack in
  let ops = p.e_ops and args = p.e_a in
  let n = Array.length ops in
  let out = dst.Ndarr.data in
  let len = Ndarr.local_len dst in
  for i = 0 to len - 1 do
    let sp = ref 0 in
    for k = 0 to n - 1 do
      let a = args.(k) in
      match ops.(k) with
      | 0 ->
          stack.(!sp) <- esc.(a);
          incr sp
      | 1 ->
          let c = mcell.(a) in
          stack.(!sp) <- (if c = 0 then mats.(a).(i) else mats.(a).(i mod c));
          incr sp
      | 8 -> error "eye has no rank-N form"
      | 2 -> stack.(!sp - 1) <- -.stack.(!sp - 1)
      | 3 -> stack.(!sp - 1) <- of_bool (not (truthy stack.(!sp - 1)))
      | 5 -> stack.(!sp - 1) <- call1 a stack.(!sp - 1)
      | 6 ->
          decr sp;
          stack.(!sp - 1) <- call2 a stack.(!sp - 1) stack.(!sp)
      | 7 -> error "%s" p.e_msgs.(a)
      | 10 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) +. stack.(!sp)
      | 11 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) -. stack.(!sp)
      | 12 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) *. stack.(!sp)
      | 13 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp - 1) /. stack.(!sp)
      | 14 ->
          decr sp;
          stack.(!sp - 1) <- stack.(!sp) /. stack.(!sp - 1)
      | 15 ->
          decr sp;
          stack.(!sp - 1) <- Float.pow stack.(!sp - 1) stack.(!sp)
      | 16 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) < stack.(!sp))
      | 17 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) <= stack.(!sp))
      | 18 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) > stack.(!sp))
      | 19 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) >= stack.(!sp))
      | 20 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) = stack.(!sp))
      | 21 ->
          decr sp;
          stack.(!sp - 1) <- of_bool (stack.(!sp - 1) <> stack.(!sp))
      | 22 ->
          decr sp;
          stack.(!sp - 1) <-
            of_bool (truthy stack.(!sp - 1) && truthy stack.(!sp))
      | _ ->
          decr sp;
          stack.(!sp - 1) <-
            of_bool (truthy stack.(!sp - 1) || truthy stack.(!sp))
    done;
    out.(i) <- stack.(0)
  done;
  Mpisim.Sim.flops (float_of_int (len * max 1 p.e_nops))

(* --- the code buffer ------------------------------------------------------- *)

(* Ops take the frame as an argument (user-function code is shared by
   every call frame on the rank) and return the next pc; jump targets
   are int refs patched once the target address is known. *)
type codebuf = {
  mutable arr : (frame -> int) array;
  mutable len : int;
  lstb : Buffer.t option;
}

let newbuf lst = { arr = Array.make 64 (fun _ -> 0); len = 0; lstb = lst }

let emit cb name (mk : int -> frame -> int) =
  if cb.len = Array.length cb.arr then begin
    let bigger = Array.make (2 * cb.len) cb.arr.(0) in
    Array.blit cb.arr 0 bigger 0 cb.len;
    cb.arr <- bigger
  end;
  let ix = cb.len in
  cb.len <- ix + 1;
  (match cb.lstb with
  | Some b -> Buffer.add_string b (Printf.sprintf "%4d  %s\n" ix name)
  | None -> ());
  cb.arr.(ix) <- mk ix;
  ix

(* A straight-line op: do the work, fall through. *)
let op1 cb name (f : frame -> unit) =
  ignore
    (emit cb name (fun ix ->
         let nx = ix + 1 in
         fun fr ->
           f fr;
           nx))

(* A straight-line op with trace attribution. *)
let plain cb name tid (f : frame -> unit) =
  op1 cb name (fun fr ->
      fr.st.tix.(fr.st.rk) <- tid;
      f fr)

(* A run-time library call: attribution + the per-rank call counter the
   bench ablation prices. *)
let lib cb name tid (f : frame -> unit) =
  op1 cb name (fun fr ->
      fr.st.tix.(fr.st.rk) <- tid;
      incr fr.st.calls;
      f fr)

let finish cb = { c_ops = Array.sub cb.arr 0 cb.len; c_len = cb.len }

(* The dispatch loop.  Every pc an op returns is either an emitted
   index (>= 0, < len) or the code length (fall off the end), so the
   loop condition is the only bounds check needed. *)
let run_code (c : code) fr =
  let pc = ref 0 in
  let n = ref 0 in
  let stop = c.c_len in
  let ops = c.c_ops in
  try
    while !pc < stop do
      pc := (Array.unsafe_get ops !pc) fr;
      incr n
    done;
    State.dispatched := !State.dispatched + !n
  with e ->
    State.dispatched := !State.dispatched + !n;
    raise e

(* --- indices and selectors ------------------------------------------------- *)

(* MATLAB indices are 1-based; linear indexing is column-major.  Index
   expressions evaluate left to right (the walker was made explicit
   about this so the engines agree on any embedded broadcast). *)
let coords fr (m : Dmat.t) (idx : rpn list) =
  match idx with
  | [ i ] ->
      let g = int_of_float (eval_rpn fr i) - 1 in
      if m.Dmat.rows = 1 then (0, g)
      else if m.Dmat.cols = 1 then (g, 0)
      else (g mod m.Dmat.rows, g / m.Dmat.rows)
  | [ i; j ] ->
      let a = int_of_float (eval_rpn fr i) - 1 in
      let b = int_of_float (eval_rpn fr j) - 1 in
      (a, b)
  | _ -> error "unsupported number of indices"

(* Full multi-index of a tensor element, 0-based, leading axis first;
   tensors take exactly one subscript per axis (no linear indexing). *)
let nd_coords fr (t : Ndarr.t) (idx : rpn list) : int array =
  if List.length idx <> Ndarr.rank t then
    error "a rank-%d tensor must be indexed with exactly %d subscripts (got %d)"
      (Ndarr.rank t) (Ndarr.rank t) (List.length idx);
  Array.of_list (List.map (fun i -> int_of_float (eval_rpn fr i) - 1) idx)

type dsel =
  | Dall
  | Dscalar of rpn
  | Drange of rpn * rpn option * rpn
  | Dvec of int

let compile_sel dc (s : Ir.sel) : dsel =
  match s with
  | Ir.Sel_all -> Dall
  | Ir.Sel_scalar e -> Dscalar (compile_sexpr dc e)
  | Ir.Sel_range (lo, st, hi) ->
      Drange
        (compile_sexpr dc lo, Option.map (compile_sexpr dc) st,
         compile_sexpr dc hi)
  | Ir.Sel_vec v -> Dvec (slot dc v)

let sel_exec fr (extent : int) (s : dsel) : int array =
  match s with
  | Dall -> Array.init extent (fun i -> i)
  | Dscalar r -> [| int_of_float (eval_rpn fr r) - 1 |]
  | Drange (lo, step, hi) ->
      let lo = eval_rpn fr lo in
      let step = match step with Some s -> eval_rpn fr s | None -> 1. in
      let hi = eval_rpn fr hi in
      State.range_indices lo step hi
  | Dvec s ->
      let m = mat_of fr s in
      let dense = Dmat.to_dense m in
      Array.map (fun f -> int_of_float f - 1) dense

(* --- printing --------------------------------------------------------------- *)

let is_root fr = fr.st.rk = 0

let print_scalar fr name v =
  if is_root fr then
    if name = "" then Buffer.add_string fr.st.out (Printf.sprintf "%g\n" v)
    else Buffer.add_string fr.st.out (Printf.sprintf "%s = %g\n" name v)

let print_str fr name s =
  if is_root fr then
    if name = "" then Buffer.add_string fr.st.out (s ^ "\n")
    else Buffer.add_string fr.st.out (Printf.sprintf "%s = %s\n" name s)

(* --- section / concat execution (mirrors the walker) ------------------------ *)

let rec exec_section fr dslot sslot (sels : dsel list) =
  match getv fr sslot with
  | Vnd t ->
      if List.length sels <> Ndarr.rank t then
        error "a rank-%d tensor must be sectioned with exactly %d subscripts"
          (Ndarr.rank t) (Ndarr.rank t);
      let idxs =
        Array.of_list
          (List.mapi (fun axis s -> sel_exec fr t.Ndarr.dims.(axis) s) sels)
      in
      setnd fr dslot (Ops.nd_section t idxs)
  | _ -> exec_section_mat fr dslot sslot sels

and exec_section_mat fr dslot sslot (sels : dsel list) =
  let m = mat_of fr sslot in
  match sels with
  | [ s ] ->
      if not (Dmat.is_vector m) then
        error "linear sections of a full matrix are not supported";
      let n = Dmat.numel m in
      let idx = sel_exec fr n s in
      let len = Array.length idx in
      let rows, cols = if m.Dmat.cols = 1 then (len, 1) else (1, len) in
      setm fr dslot (Ops.section_linear m idx ~rows ~cols)
  | [ s1; s2 ] ->
      let ri = sel_exec fr m.Dmat.rows s1 in
      let rj = sel_exec fr m.Dmat.cols s2 in
      setm fr dslot (Ops.section m ri rj)
  | _ -> error "unsupported number of index selectors"

type dsrc = DSscalar of rpn | DSmat of int

let rec exec_setsection fr dslot (sels : dsel list) (src : dsrc) =
  match getv fr dslot with
  | Vnd t ->
      if List.length sels <> Ndarr.rank t then
        error "a rank-%d tensor must be sectioned with exactly %d subscripts"
          (Ndarr.rank t) (Ndarr.rank t);
      let idxs =
        Array.of_list
          (List.mapi (fun axis s -> sel_exec fr t.Ndarr.dims.(axis) s) sels)
      in
      let n = Array.fold_left (fun acc s -> acc * Array.length s) 1 idxs in
      let value =
        match src with
        | DSscalar r ->
            let c = eval_rpn fr r in
            fun _ -> c
        | DSmat vs -> (
            match getv fr vs with
            | Vnd s ->
                if s.Ndarr.full <> t.Ndarr.full then
                  error
                    "section assignment cannot mix a replicated \
                     (message-passing) tensor with a distributed one";
                if Ndarr.numel s <> n then
                  error "section assignment size mismatch";
                let dense = Ndarr.to_dense s in
                fun k -> dense.(k)
            | Vmat s ->
                (* a matrix source fills the selection in row-major
                   order when the element counts agree (T(k,:,:) = A) *)
                if s.Dmat.full <> t.Ndarr.full then
                  error
                    "section assignment cannot mix a replicated \
                     (message-passing) matrix with a distributed tensor";
                if Dmat.numel s <> n then
                  error "section assignment size mismatch";
                let dense = Dmat.to_dense s in
                fun k -> dense.(k)
            | Vscalar c -> fun _ -> c
            | Vstr _ -> error "cannot store a string into a tensor")
      in
      Ops.nd_set_section t idxs value
  | _ -> exec_setsection_mat fr dslot sels src

and exec_setsection_mat fr dslot (sels : dsel list) (src : dsrc) =
  let m = mat_of fr dslot in
  let value =
    match src with
    | DSscalar r ->
        let c = eval_rpn fr r in
        fun _ -> c
    | DSmat s ->
        let sm = mat_of fr s in
        if not (Dmat.same_locality m sm) then
          error
            "section assignment cannot mix a replicated (message-passing) \
             matrix with a distributed one";
        let dense = Dmat.to_dense sm in
        fun k ->
          if k >= Array.length dense then
            error "section assignment size mismatch"
          else dense.(k)
  in
  let check_src_len n =
    match src with
    | DSmat s ->
        let sm = mat_of fr s in
        if Dmat.numel sm <> n then error "section assignment size mismatch"
    | DSscalar _ -> ()
  in
  match sels with
  | [ s ] ->
      if not (Dmat.is_vector m) then
        error "linear section assignment on a full matrix is not supported";
      let n = Dmat.numel m in
      let idx = sel_exec fr n s in
      check_src_len (Array.length idx);
      Array.iteri
        (fun k g ->
          if g < 0 || g >= n then error "index out of bounds";
          let i, j = if m.Dmat.cols = 1 then (g, 0) else (0, g) in
          if Dmat.owner m ~i ~j then Dmat.set_local m ~i ~j (value k))
        idx;
      Mpisim.Sim.flops (float_of_int (Array.length idx))
  | [ s1; s2 ] ->
      let ri = sel_exec fr m.Dmat.rows s1 in
      let rj = sel_exec fr m.Dmat.cols s2 in
      check_src_len (Array.length ri * Array.length rj);
      Array.iteri
        (fun a i ->
          Array.iteri
            (fun b j ->
              if i < 0 || i >= m.Dmat.rows || j < 0 || j >= m.Dmat.cols then
                error "index out of bounds";
              if Dmat.owner m ~i ~j then
                Dmat.set_local m ~i ~j (value ((a * Array.length rj) + b)))
            rj)
        ri;
      Mpisim.Sim.flops (float_of_int (Array.length ri * Array.length rj))
  | _ -> error "unsupported number of index selectors"

let exec_concat fr dslot grid_rows grid_cols (parts : int list) =
  let blocks = List.map (fun s -> mat_of fr s) parts in
  let n_full = List.length (List.filter (fun b -> b.Dmat.full) blocks) in
  if n_full > 0 && n_full < List.length blocks then
    error
      "matrix literal cannot mix replicated (message-passing) matrices with \
       distributed ones";
  let dense_blocks = List.map (fun b -> (b, Dmat.to_dense b)) blocks in
  let grid0 =
    Array.init grid_rows (fun i ->
        Array.init grid_cols (fun j ->
            List.nth dense_blocks ((i * grid_cols) + j)))
  in
  let grid =
    Array.to_list grid0
    |> List.filter_map (fun row ->
           match
             List.filter (fun (b, _) -> Dmat.numel b > 0) (Array.to_list row)
           with
           | [] -> None
           | kept -> Some (Array.of_list kept))
    |> Array.of_list
  in
  if Array.length grid = 0 then setm fr dslot (Dmat.create ~rows:0 ~cols:0)
  else begin
    let row_heights =
      Array.map
        (fun row ->
          let h = (fst row.(0)).Dmat.rows in
          Array.iter
            (fun (b, _) ->
              if b.Dmat.rows <> h then
                error "inconsistent row counts in matrix literal")
            row;
          h)
        grid
    in
    let total_cols =
      Array.fold_left (fun acc (b, _) -> acc + b.Dmat.cols) 0 grid.(0)
    in
    Array.iter
      (fun row ->
        let w = Array.fold_left (fun acc (b, _) -> acc + b.Dmat.cols) 0 row in
        if w <> total_cols then
          error "inconsistent column counts in matrix literal")
      grid;
    let total_rows = Array.fold_left ( + ) 0 row_heights in
    let out = Array.make (total_rows * total_cols) 0. in
    let roff = ref 0 in
    Array.iter
      (fun row ->
        let h = (fst row.(0)).Dmat.rows in
        let coff = ref 0 in
        Array.iter
          (fun (b, data) ->
            for i = 0 to h - 1 do
              Array.blit data (i * b.Dmat.cols) out
                (((!roff + i) * total_cols) + !coff)
                b.Dmat.cols
            done;
            coff := !coff + b.Dmat.cols)
          row;
        roff := !roff + h)
      grid;
    Mpisim.Sim.flops (float_of_int (total_rows * total_cols));
    let m =
      if n_full > 0 then Dmat.of_full ~rows:total_rows ~cols:total_cols out
      else Dmat.of_dense ~rows:total_rows ~cols:total_cols out
    in
    setm fr dslot m
  end

(* --- constructors ------------------------------------------------------------ *)

let rec exec_construct_t fr dslot (kind : Ir.ckind) (rargs : rpn list) =
  match (kind, rargs) with
  | (Ir.Czeros | Ir.Cones | Ir.Crand | Ir.Crandn), _ :: _ :: _ :: _ ->
      (* three or more size arguments: a rank-N tensor, distributed
         over its leading axis.  rand/randn advance the replicated
         sequence number first, exactly like the matrix forms. *)
      (match kind with
      | Ir.Crand | Ir.Crandn -> fr.st.rand_calls <- fr.st.rand_calls + 1
      | _ -> ());
      let seed = fr.st.seed + fr.st.rand_calls in
      let dims =
        Array.of_list (List.map (fun r -> int_of_float (eval_rpn fr r)) rargs)
      in
      let t =
        match kind with
        | Ir.Czeros -> Ndarr.create dims
        | Ir.Cones -> Ndarr.init dims (fun _ -> 1.)
        | Ir.Crand -> Ndarr.init dims (fun g -> Runtime.Rng.uniform ~seed g)
        | Ir.Crandn -> Ndarr.init dims (fun g -> Runtime.Rng.normal ~seed g)
        | _ -> assert false
      in
      let len = Ndarr.local_len t in
      if len > 0 then Mpisim.Sim.flops (float_of_int len);
      setnd fr dslot t
  | _ -> exec_construct_mat fr dslot kind rargs

and exec_construct_mat fr dslot (kind : Ir.ckind) (rargs : rpn list) =
  let arg n = List.nth rargs n in
  let dims () =
    match rargs with
    | [ n ] ->
        let n = int_of_float (eval_rpn fr n) in
        (n, n)
    | [ r; c ] ->
        let r = int_of_float (eval_rpn fr r) in
        let c = int_of_float (eval_rpn fr c) in
        (r, c)
    | _ -> error "constructor expects 1 or 2 size arguments"
  in
  let m =
    match kind with
    | Ir.Czeros ->
        let r, c = dims () in
        Dmat.create ~rows:r ~cols:c
    | Ir.Cones ->
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun _ -> 1.)
    | Ir.Ceye ->
        let r, c = dims () in
        Dmat.init_rc ~rows:r ~cols:c (fun i j -> if i = j then 1. else 0.)
    | Ir.Crand ->
        fr.st.rand_calls <- fr.st.rand_calls + 1;
        let seed = fr.st.seed + fr.st.rand_calls in
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun g -> Runtime.Rng.uniform ~seed g)
    | Ir.Crandn ->
        fr.st.rand_calls <- fr.st.rand_calls + 1;
        let seed = fr.st.seed + fr.st.rand_calls in
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun g -> Runtime.Rng.normal ~seed g)
    | Ir.Clinspace ->
        let a = eval_rpn fr (arg 0) in
        let b = eval_rpn fr (arg 1) in
        let n = int_of_float (eval_rpn fr (arg 2)) in
        let d = if n > 1 then (b -. a) /. float_of_int (n - 1) else 0. in
        Dmat.init ~rows:1 ~cols:n (fun g -> a +. (float_of_int g *. d))
    | Ir.Crange ->
        let lo = eval_rpn fr (arg 0) in
        let step = eval_rpn fr (arg 1) in
        let hi = eval_rpn fr (arg 2) in
        let n =
          if step = 0. then 0
          else
            let raw = ((hi -. lo) /. step) +. 1e-9 in
            if raw < 0. then 0 else int_of_float (Float.floor raw) + 1
        in
        Dmat.init ~rows:1 ~cols:(max n 0) (fun g ->
            lo +. (float_of_int g *. step))
  in
  let len = Dmat.local_len m in
  if len > 0 then Mpisim.Sim.flops (float_of_int len);
  setm fr dslot m

(* --- decoded call arguments --------------------------------------------------- *)

type darg = Dstr of string | Drpn of rpn | Dmarg of int

type dfused = DFsum of int | DFmean of int | DFdot of int * int | DFnorm of int

type dprintf = DPstr of string | DPrpn of rpn

(* --- the instruction decoder --------------------------------------------------- *)

(* [lp] is the enclosing decoded loop's (break, continue) jump targets,
   [fend] the enclosing function's end target for [return].  At sites
   where neither applies, break/continue/return fall back to the
   walker's exceptions, which user-call ops re-convert to jumps — so
   a break inside a callee exits the caller's loop exactly as it does
   under [Vm]'s exception propagation. *)
let rec decode_inst dc cb ~lp ~fend (i : Ir.inst) =
  let tid = tid_of_inst i in
  match i with
  | Ir.Iscalar (v, Ir.Sstr s) ->
      let d = slot dc v in
      plain cb (Printf.sprintf "str %s" v) tid (fun fr -> setstr fr d s)
  | Ir.Iscalar (v, Ir.Svar w) ->
      let d = slot dc v in
      let ws = slot dc w in
      let r = compile_sexpr dc (Ir.Svar w) in
      plain cb (Printf.sprintf "scalar %s <- %s" v w) tid (fun fr ->
          if fr.tags.(ws) = t_str then begin
            fr.tags.(d) <- t_str;
            fr.vals.(d) <- fr.vals.(ws)
          end
          else sets fr d (eval_rpn fr r))
  | Ir.Iscalar (v, s) ->
      let d = slot dc v in
      let r = compile_sexpr dc s in
      (* the hottest op there is: flattened to a single closure *)
      ignore
        (emit cb (Printf.sprintf "scalar %s" v) (fun ix ->
             let nx = ix + 1 in
             fun fr ->
               fr.st.tix.(fr.st.rk) <- tid;
               sets fr d (eval_rpn fr r);
               nx))
  | Ir.Ielem { dst; model; expr } ->
      let d = slot dc dst in
      let ms = slot dc model in
      let p = compile_eexpr dc expr in
      let mats = Array.make (max 1 p.e_nmat) [||] in
      let mcell = Array.make (max 1 p.e_nmat) 0 in
      let esc = Array.make (max 1 p.e_nsc) 0. in
      plain cb (Printf.sprintf "elem %s" dst) tid (fun fr ->
          match getv fr ms with
          | Vnd t ->
              let r =
                if t.Ndarr.full then Ndarr.create_full t.Ndarr.dims
                else Ndarr.create t.Ndarr.dims
              in
              exec_eplan_nd fr p ~mats ~mcell ~esc ~model:t ~dst:r;
              setnd fr d r
          | _ ->
              let m = mat_of fr ms in
              let r =
                if m.Dmat.full then
                  Dmat.create_full ~rows:m.Dmat.rows ~cols:m.Dmat.cols
                else Dmat.create ~rows:m.Dmat.rows ~cols:m.Dmat.cols
              in
              exec_eplan fr p ~mats ~esc ~model:m ~dst:r;
              setm fr d r)
  | Ir.Icopy (d, s) ->
      let ds = slot dc d in
      let ss = slot dc s in
      lib cb (Printf.sprintf "copy %s <- %s" d s) tid (fun fr ->
          match getv fr ss with
          | Vmat m ->
              Mpisim.Sim.flops (float_of_int (Dmat.local_len m));
              setm fr ds (Dmat.copy m)
          | Vnd t ->
              Mpisim.Sim.flops (float_of_int (Ndarr.local_len t));
              setnd fr ds (Ndarr.copy t)
          | v -> setv fr ds v)
  | Ir.Imatmul (d, a, b) ->
      let ds = slot dc d and sa = slot dc a and sb = slot dc b in
      lib cb (Printf.sprintf "matmul %s" d) tid (fun fr ->
          setm fr ds (Ops.matmul (mat_of fr sa) (mat_of fr sb)))
  | Ir.Imatmul_t (d, a, b) ->
      let ds = slot dc d and sa = slot dc a and sb = slot dc b in
      lib cb (Printf.sprintf "matmul_t %s" d) tid (fun fr ->
          setm fr ds (Ops.matmul_t (mat_of fr sa) (mat_of fr sb)))
  | Ir.Idot (d, a, b) ->
      let ds = slot dc d and sa = slot dc a and sb = slot dc b in
      lib cb (Printf.sprintf "dot %s" d) tid (fun fr ->
          sets fr ds (Ops.dot (mat_of fr sa) (mat_of fr sb)))
  | Ir.Itranspose (d, a) ->
      let ds = slot dc d and sa = slot dc a in
      lib cb (Printf.sprintf "transpose %s" d) tid (fun fr ->
          setm fr ds (Ops.transpose (mat_of fr sa)))
  | Ir.Idiag (d, a) ->
      let ds = slot dc d and sa = slot dc a in
      lib cb (Printf.sprintf "diag %s" d) tid (fun fr ->
          setm fr ds (Ops.diag (mat_of fr sa)))
  | Ir.Iouter (d, a, b) ->
      let ds = slot dc d and sa = slot dc a and sb = slot dc b in
      lib cb (Printf.sprintf "outer %s" d) tid (fun fr ->
          setm fr ds (Ops.outer (mat_of fr sa) (mat_of fr sb)))
  | Ir.Ireduce_all (d, k, a) ->
      let ds = slot dc d and sa = slot dc a in
      let f =
        match k with
        | Ir.Rmean -> Ops.mean_all
        | _ -> Ops.reduce_all (State.rkind_to_red k)
      in
      let fnd =
        match k with
        | Ir.Rmean -> Ops.nd_mean_all
        | _ -> Ops.nd_reduce_all (State.rkind_to_red k)
      in
      lib cb (Printf.sprintf "reduce_all %s" d) tid (fun fr ->
          match getv fr sa with
          | Vnd t -> sets fr ds (fnd t)
          | _ -> sets fr ds (f (mat_of fr sa)))
  | Ir.Ireduce_cols (d, k, a) ->
      let ds = slot dc d and sa = slot dc a in
      let f =
        match k with
        | Ir.Rmean -> Ops.mean_cols
        | _ -> Ops.reduce_cols (State.rkind_to_red k)
      in
      lib cb (Printf.sprintf "reduce_cols %s" d) tid (fun fr ->
          setm fr ds (f (mat_of fr sa)))
  | Ir.Inorm (d, a) ->
      let ds = slot dc d and sa = slot dc a in
      lib cb (Printf.sprintf "norm %s" d) tid (fun fr ->
          sets fr ds (Ops.norm2 (mat_of fr sa)))
  | Ir.Iscan (d, k, a) ->
      let ds = slot dc d and sa = slot dc a in
      let sk = match k with Ir.Scumsum -> Ops.Cumsum | Ir.Scumprod -> Ops.Cumprod in
      lib cb (Printf.sprintf "scan %s" d) tid (fun fr ->
          setm fr ds (Ops.cumulative sk (mat_of fr sa)))
  | Ir.Isort { vdst; idst; arg } ->
      let vs = slot dc vdst and sa = slot dc arg in
      let is = Option.map (slot dc) idst in
      let with_index = idst <> None in
      lib cb (Printf.sprintf "sort %s" vdst) tid (fun fr ->
          let sorted, perm = Ops.sort_vector ~with_index (mat_of fr sa) in
          setm fr vs sorted;
          match (is, perm) with
          | Some d, Some p -> setm fr d p
          | None, _ -> ()
          | Some _, None -> assert false)
  | Ir.Ireduce_loc { vdst; idst; kind; arg } ->
      let vs = slot dc vdst and is = slot dc idst and sa = slot dc arg in
      let op = State.rkind_to_red kind in
      lib cb (Printf.sprintf "reduce_loc %s" vdst) tid (fun fr ->
          let v, ix = Ops.reduce_with_index op (mat_of fr sa) in
          sets fr vs v;
          sets fr is (float_of_int ix))
  | Ir.Itrapz (d, x, y) ->
      let ds = slot dc d and sy = slot dc y in
      let sx = Option.map (slot dc) x in
      lib cb (Printf.sprintf "trapz %s" d) tid (fun fr ->
          let x = Option.map (mat_of fr) sx in
          sets fr ds (Ops.trapz ?x (mat_of fr sy)))
  | Ir.Ishift (d, s, k) ->
      let ds = slot dc d and ss = slot dc s in
      let rk = compile_sexpr dc k in
      lib cb (Printf.sprintf "shift %s" d) tid (fun fr ->
          let k = int_of_float (eval_rpn fr rk) in
          setm fr ds (Ops.circshift (mat_of fr ss) k))
  | Ir.Ibcast (d, m, idx) ->
      let ds = slot dc d and ms = slot dc m in
      let ridx = List.map (compile_sexpr dc) idx in
      lib cb (Printf.sprintf "bcast %s" d) tid (fun fr ->
          match getv fr ms with
          | Vnd t -> sets fr ds (Ops.nd_bcast_elem t (nd_coords fr t ridx))
          | _ ->
              let mm = mat_of fr ms in
              let i, j = coords fr mm ridx in
              sets fr ds (Ops.bcast_elem mm ~i ~j))
  | Ir.Ibcast_batch (items, m) ->
      let ms = slot dc m in
      let ditems =
        List.map
          (fun (d, idx) -> (slot dc d, List.map (compile_sexpr dc) idx))
          items
      in
      lib cb (Printf.sprintf "bcast_batch x%d" (List.length items)) tid
        (fun fr ->
          let mm = mat_of fr ms in
          let cs = List.map (fun (_, ridx) -> coords fr mm ridx) ditems in
          let values = Ops.bcast_elems mm cs in
          List.iteri (fun k (d, _) -> sets fr d values.(k)) ditems)
  | Ir.Ireduce_fused items ->
      let ditems =
        List.map
          (fun (d, r) ->
            ( slot dc d,
              match r with
              | Ir.Fsum m -> DFsum (slot dc m)
              | Ir.Fmean m -> DFmean (slot dc m)
              | Ir.Fdot (a, b) -> DFdot (slot dc a, slot dc b)
              | Ir.Fnorm m -> DFnorm (slot dc m) ))
          items
      in
      lib cb (Printf.sprintf "reduce_fused x%d" (List.length items)) tid
        (fun fr ->
          let fslots =
            List.map
              (fun (_, r) ->
                match r with
                | DFsum m -> Ops.Fsum (mat_of fr m)
                | DFmean m -> Ops.Fmean (mat_of fr m)
                | DFdot (a, b) -> Ops.Fdot (mat_of fr a, mat_of fr b)
                | DFnorm m -> Ops.Fnorm (mat_of fr m))
              ditems
          in
          let values = Ops.reduce_fused fslots in
          List.iteri (fun k (d, _) -> sets fr d values.(k)) ditems)
  | Ir.Isetelem (m, idx, v) ->
      let ms = slot dc m in
      let ridx = List.map (compile_sexpr dc) idx in
      let rv = compile_sexpr dc v in
      lib cb (Printf.sprintf "setelem %s" m) tid (fun fr ->
          match getv fr ms with
          | Vnd t ->
              let ix = nd_coords fr t ridx in
              let value = eval_rpn fr rv in
              Ops.nd_set_elem t ix value
          | _ ->
              let mm = mat_of fr ms in
              let i, j = coords fr mm ridx in
              let value = eval_rpn fr rv in
              Ops.set_elem mm ~i ~j value)
  | Ir.Iload { dst; file } ->
      let ds = slot dc dst in
      lib cb (Printf.sprintf "load %s" dst) tid (fun fr ->
          let path = Filename.concat fr.st.datadir file in
          match Mlang.Datafile.read path with
          | rows, cols, data ->
              Mpisim.Sim.flops (float_of_int (rows * cols));
              setm fr ds (Dmat.of_dense ~rows ~cols data)
          | exception Mlang.Datafile.Bad_data msg ->
              error "load(%S): %s" file msg)
  | Ir.Iconstruct { dst; kind; args } ->
      let ds = slot dc dst in
      let rargs = List.map (compile_sexpr dc) args in
      lib cb (Printf.sprintf "construct %s" dst) tid (fun fr ->
          exec_construct_t fr ds kind rargs)
  | Ir.Iliteral { dst; rows; cols; elems } ->
      let ds = slot dc dst in
      let relems = List.map (compile_sexpr dc) elems in
      lib cb (Printf.sprintf "literal %s %dx%d" dst rows cols) tid (fun fr ->
          let values = List.map (eval_rpn fr) relems in
          let dense = Array.of_list values in
          setm fr ds (Dmat.of_dense ~rows ~cols dense))
  | Ir.Isection { dst; src; sels } ->
      let ds = slot dc dst and ss = slot dc src in
      let dsels = List.map (compile_sel dc) sels in
      lib cb (Printf.sprintf "section %s" dst) tid (fun fr ->
          exec_section fr ds ss dsels)
  | Ir.Isetsection { dst; sels; src } ->
      let ds = slot dc dst in
      let dsels = List.map (compile_sel dc) sels in
      let dsrc =
        match src with
        | Ir.Ascalar s -> DSscalar (compile_sexpr dc s)
        | Ir.Amat v -> DSmat (slot dc v)
      in
      lib cb (Printf.sprintf "setsection %s" dst) tid (fun fr ->
          exec_setsection fr ds dsels dsrc)
  | Ir.Iconcat { dst; grid_rows; grid_cols; parts } ->
      let ds = slot dc dst in
      let pslots = List.map (slot dc) parts in
      lib cb (Printf.sprintf "concat %s" dst) tid (fun fr ->
          exec_concat fr ds grid_rows grid_cols pslots)
  | Ir.Icalluser { rets; name; args } ->
      let ret_slots = List.map (slot dc) rets in
      let dargs =
        List.map
          (fun a ->
            match a with
            | Ir.Ascalar (Ir.Sstr s) -> Dstr s
            | Ir.Ascalar s -> Drpn (compile_sexpr dc s)
            | Ir.Amat v -> Dmarg (slot dc v))
          args
      in
      let nargs = List.length args in
      let label = Printf.sprintf "call %s/%d" name nargs in
      (match lp with
      | None ->
          plain cb label tid (fun fr ->
              exec_call_t dc fr name nargs dargs ret_slots)
      | Some (btgt, ctgt) ->
          (* catch break/continue escaping the callee and turn them back
             into the enclosing loop's jumps *)
          ignore
            (emit cb label (fun ix ->
                 let nx = ix + 1 in
                 fun fr ->
                   fr.st.tix.(fr.st.rk) <- tid;
                   match exec_call_t dc fr name nargs dargs ret_slots with
                   | () -> nx
                   | exception State.Break_exc -> !btgt
                   | exception State.Continue_exc -> !ctgt)))
  | Ir.Iprint (name, Ir.Pscalar (Ir.Svar v)) ->
      let vs = slot dc v in
      let r = compile_sexpr dc (Ir.Svar v) in
      plain cb (Printf.sprintf "print %s" v) tid (fun fr ->
          if fr.tags.(vs) = t_str then
            match fr.vals.(vs) with
            | Vstr s -> print_str fr name s
            | _ -> assert false
          else print_scalar fr name (eval_rpn fr r))
  | Ir.Iprint (name, Ir.Pscalar s) ->
      let r = compile_sexpr dc s in
      plain cb "print scalar" tid (fun fr -> print_scalar fr name (eval_rpn fr r))
  | Ir.Iprint (name, Ir.Pmat v) ->
      let vs = slot dc v in
      plain cb (Printf.sprintf "print mat %s" v) tid (fun fr ->
          match getv fr vs with
          | Vnd t -> (
              match Ndarr.format_root ~root:0 ~name t with
              | Some text when is_root fr -> Buffer.add_string fr.st.out text
              | _ -> ())
          | _ -> (
              let m = mat_of fr vs in
              match Dmat.format_root ~root:0 ~name m with
              | Some text when is_root fr -> Buffer.add_string fr.st.out text
              | _ -> ()))
  | Ir.Iprint (name, Ir.Pstr s) ->
      plain cb "print str" tid (fun fr -> print_str fr name s)
  | Ir.Iprintf args -> (
      match args with
      | Ir.Sstr fmt :: rest ->
          let dargs =
            List.map
              (fun a ->
                match a with
                | Ir.Sstr s -> DPstr s
                | _ -> DPrpn (compile_sexpr dc a))
              rest
          in
          plain cb "printf" tid (fun fr ->
              let values =
                List.map
                  (fun a ->
                    match a with
                    | DPstr s -> Mlang.Fmtutil.S s
                    | DPrpn r -> Mlang.Fmtutil.F (eval_rpn fr r))
                  dargs
              in
              if is_root fr then
                Buffer.add_string fr.st.out (Mlang.Fmtutil.format fmt values))
      | _ ->
          plain cb "printf (bad fmt)" tid (fun _ ->
              error "fprintf: first argument must be a format string"))
  | Ir.Ierror msg ->
      plain cb "error" tid (fun _ -> error "%s" msg)
  | Ir.Iif (branches, els) ->
      let endt = ref (-1) in
      List.iter
        (fun (c, blk) ->
          let r = compile_sexpr dc c in
          let nextt = ref (-1) in
          ignore
            (emit cb "if cond" (fun ix ->
                 let nx = ix + 1 in
                 fun fr ->
                   fr.st.tix.(fr.st.rk) <- tid;
                   if truthy (eval_rpn fr r) then nx else !nextt));
          decode_block dc cb ~lp ~fend blk;
          ignore (emit cb "jump endif" (fun _ _ -> !endt));
          nextt := cb.len)
        branches;
      decode_block dc cb ~lp ~fend els;
      endt := cb.len
  | Ir.Iwhile (c, blk) ->
      let r = compile_sexpr dc c in
      let endt = ref (-1) in
      plain cb "while entry" tid (fun _ -> ());
      let ltop = cb.len in
      ignore
        (emit cb "while cond" (fun ix ->
             let nx = ix + 1 in
             fun fr -> if truthy (eval_rpn fr r) then nx else !endt));
      let cont = ref ltop in
      decode_block dc cb ~lp:(Some (endt, cont)) ~fend blk;
      ignore (emit cb "jump while" (fun _ _ -> ltop));
      endt := cb.len
  | Ir.Ifor (v, start, step, stop, blk) ->
      let vslot = slot dc v in
      let hs = hidden_slot dc in
      let hp = hidden_slot dc in
      let he = hidden_slot dc in
      let hk = hidden_slot dc in
      let rstart = compile_sexpr dc start in
      let rstep = Option.map (compile_sexpr dc) step in
      let rstop = compile_sexpr dc stop in
      let endt = ref (-1) in
      plain cb (Printf.sprintf "for %s entry" v) tid (fun fr ->
          fr.sc.(hs) <- eval_rpn fr rstart;
          fr.sc.(hp) <-
            (match rstep with Some r -> eval_rpn fr r | None -> 1.);
          fr.sc.(he) <- eval_rpn fr rstop;
          fr.sc.(hk) <- 0.);
      (* The iteration test appears twice — once as the loop header
         (first entry, and the target of continue via the "next" op)
         and once fused into the back edge, so steady-state iterations
         cost one dispatch, not two.  Both run the same arithmetic in
         the same order. *)
      let iter_test fr =
        let st0 = fr.sc.(hs) in
        let sp = fr.sc.(hp) in
        let x = st0 +. (fr.sc.(hk) *. sp) in
        let go =
          if sp >= 0. then x <= fr.sc.(he) +. 1e-12
          else x >= fr.sc.(he) -. 1e-12
        in
        if go then begin
          sets fr vslot x;
          true
        end
        else false
      in
      ignore
        (emit cb (Printf.sprintf "for %s iter" v) (fun ix ->
             let nx = ix + 1 in
             fun fr -> if iter_test fr then nx else !endt));
      let body = cb.len in
      let cont = ref (-1) in
      decode_block dc cb ~lp:(Some (endt, cont)) ~fend blk;
      cont := cb.len;
      ignore
        (emit cb (Printf.sprintf "for %s next" v) (fun _ fr ->
             fr.sc.(hk) <- fr.sc.(hk) +. 1.;
             if iter_test fr then body else !endt));
      endt := cb.len
  | Ir.Impi_rank d ->
      let ds = slot dc d in
      lib cb (Printf.sprintf "mpi_rank %s" d) tid (fun fr ->
          sets fr ds (float_of_int (Mpisim.Sim.rank ())))
  | Ir.Impi_size d ->
      let ds = slot dc d in
      lib cb (Printf.sprintf "mpi_size %s" d) tid (fun fr ->
          sets fr ds (float_of_int (Mpisim.Sim.size ())))
  | Ir.Impi_send (dest, tag, v) ->
      let rd = compile_sexpr dc dest in
      let rt = compile_sexpr dc tag in
      let dv =
        match v with
        | Ir.Ascalar (Ir.Sstr _) -> None (* a run-time error, as in [Vm] *)
        | Ir.Ascalar s -> Some (DSscalar (compile_sexpr dc s))
        | Ir.Amat m -> Some (DSmat (slot dc m))
      in
      lib cb "mpi_send" tid (fun fr ->
          let dst = int_of_float (eval_rpn fr rd) in
          let tag = int_of_float (eval_rpn fr rt) in
          let value =
            match dv with
            | None -> error "MPI_Send: cannot send a string"
            | Some (DSscalar r) -> Vscalar (eval_rpn fr r)
            | Some (DSmat s) -> getv fr s
          in
          State.mpi_send ~dst ~tag value)
  | Ir.Impi_recv (d, src, tag, is_matrix) ->
      let ds = slot dc d in
      let rs = compile_sexpr dc src in
      let rt = compile_sexpr dc tag in
      lib cb (Printf.sprintf "mpi_recv %s" d) tid (fun fr ->
          let src = int_of_float (eval_rpn fr rs) in
          let tag = int_of_float (eval_rpn fr rt) in
          match State.mpi_recv ~src ~tag ~is_matrix with
          | Vscalar f -> sets fr ds f
          | Vmat m -> setm fr ds m
          | Vstr s -> setstr fr ds s
          | Vnd _ -> assert false (* mpi_decode never builds tensors *))
  | Ir.Impi_bcast (d, root, v) ->
      let ds = slot dc d in
      let rr = compile_sexpr dc root in
      let dv =
        match v with
        | Ir.Ascalar (Ir.Sstr _) -> None
        | Ir.Ascalar s -> Some (DSscalar (compile_sexpr dc s))
        | Ir.Amat m -> Some (DSmat (slot dc m))
      in
      lib cb (Printf.sprintf "mpi_bcast %s" d) tid (fun fr ->
          let root = int_of_float (eval_rpn fr rr) in
          let value =
            match dv with
            | None -> error "MPI_Bcast: cannot send a string"
            | Some (DSscalar r) -> Vscalar (eval_rpn fr r)
            | Some (DSmat s) -> getv fr s
          in
          match State.mpi_bcast ~root value with
          | Vscalar f -> sets fr ds f
          | Vmat m -> setm fr ds m
          | Vstr s -> setstr fr ds s
          | Vnd _ -> assert false (* tensors are rejected before transport *))
  | Ir.Impi_probe (d, src, tag) ->
      let ds = slot dc d in
      let rs = compile_sexpr dc src in
      let rt = compile_sexpr dc tag in
      lib cb (Printf.sprintf "mpi_probe %s" d) tid (fun fr ->
          let src = int_of_float (eval_rpn fr rs) in
          let tag = int_of_float (eval_rpn fr rt) in
          sets fr ds (State.mpi_probe ~src ~tag))
  | Ir.Ibreak -> (
      match lp with
      | Some (bt, _) ->
          ignore
            (emit cb "break" (fun _ fr ->
                 fr.st.tix.(fr.st.rk) <- tid;
                 !bt))
      | None ->
          plain cb "break (stray)" tid (fun _ -> raise State.Break_exc))
  | Ir.Icontinue -> (
      match lp with
      | Some (_, ct) ->
          ignore
            (emit cb "continue" (fun _ fr ->
                 fr.st.tix.(fr.st.rk) <- tid;
                 !ct))
      | None ->
          plain cb "continue (stray)" tid (fun _ -> raise State.Continue_exc))
  | Ir.Ireturn -> (
      match fend with
      | Some t ->
          ignore
            (emit cb "return" (fun _ fr ->
                 fr.st.tix.(fr.st.rk) <- tid;
                 !t))
      | None -> plain cb "return (top)" tid (fun _ -> raise State.Return_exc))

and decode_block dc cb ~lp ~fend (b : Ir.block) =
  List.iter (decode_inst dc cb ~lp ~fend) b

(* Decode a user function on first call (per rank), memoized; lazy
   decoding keeps recursion trivially safe because a callee's code is
   always resolved at execution time. *)
and get_fentry dc fname =
  match Hashtbl.find_opt dc.fdec fname with
  | Some fe -> fe
  | None -> (
      match Hashtbl.find_opt dc.funcs fname with
      | None -> error "unknown function '%s'" fname
      | Some f -> decode_func dc f)

and decode_func dc (f : Ir.func) =
  let fdc =
    {
      slot_of = Hashtbl.create 32;
      nslots = 0;
      rnames = [];
      maxdepth = 4;
      funcs = dc.funcs;
      fdec = dc.fdec;
      lst = dc.lst;
    }
  in
  (match fdc.lst with
  | Some b -> Buffer.add_string b (Printf.sprintf "function %s:\n" f.Ir.f_name)
  | None -> ());
  let params = List.map (fun (p, _) -> slot fdc p) f.Ir.f_params in
  let rets = List.map (fun (r, _) -> (slot fdc r, r)) f.Ir.f_rets in
  let cb = newbuf fdc.lst in
  let fend = ref 0 in
  decode_block fdc cb ~lp:None ~fend:(Some fend) f.Ir.f_body;
  fend := cb.len;
  let fe =
    {
      fe_code = finish cb;
      fe_nslots = fdc.nslots;
      fe_names = frame_names fdc;
      fe_stack = fdc.maxdepth;
      fe_params = params;
      fe_rets = rets;
      fe_fname = f.Ir.f_name;
    }
  in
  Hashtbl.replace dc.fdec f.Ir.f_name fe;
  fe

(* Call-by-value user call: arguments evaluate left to right in the
   caller's frame, the callee gets a fresh frame over shared rank
   state, and return values copy back by slot. *)
and exec_call_t dc fr fname nargs (dargs : darg list) (ret_slots : int list) =
  let fe = get_fentry dc fname in
  if nargs <> List.length fe.fe_params then
    error "function '%s' expects %d arguments" fname (List.length fe.fe_params);
  let cfr =
    mk_frame ~nslots:fe.fe_nslots ~names:fe.fe_names ~stack:fe.fe_stack fr.st
  in
  List.iter2
    (fun pslot a ->
      match a with
      | Dstr s -> setstr cfr pslot s
      | Drpn r -> sets cfr pslot (eval_rpn fr r)
      | Dmarg s -> (
          match getv fr s with
          | Vmat m -> setm cfr pslot (Dmat.copy m) (* call by value *)
          | Vnd t -> setnd cfr pslot (Ndarr.copy t)
          | v -> setv cfr pslot v))
    fe.fe_params dargs;
  (try run_code fe.fe_code cfr with State.Return_exc -> ());
  List.iter2
    (fun r (rv, rname) ->
      if cfr.tags.(rv) = t_undef then
        error "function '%s' did not assign return value '%s'" fname rname
      else setv fr r (getv cfr rv))
    ret_slots fe.fe_rets

(* --- whole-program decode ---------------------------------------------------- *)

(* With checkpointing off the whole body flattens into one code array
   (fastest).  With checkpointing on, the top level stays structured so
   checkpoint boundaries land exactly where the walker puts them:
   before every top-level statement and at the top of every iteration
   of a top-level loop, with the same [Ptop]/[Ploop] program counters
   and for-loop bound freezing — one checkpoint format, two engines. *)
type unit_t =
  | Ustmt of code
  | Ufor of {
      uvslot : int;
      ustart : rpn;
      ustep : rpn option;
      ustop : rpn;
      ubody : code;
    }
  | Uwhile of { ucond : rpn; ubody : code }

type top = Flat of code | Structured of unit_t array

type decoded = {
  d_top : top;
  d_slot_of : (string, int) Hashtbl.t;
  d_nslots : int;
  d_names : string array;
  d_stack : int;
}

let decode (prog : Ir.prog) ~structured ~lst : decoded =
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.f_name f)
    prog.Ir.p_funcs;
  let dc =
    {
      slot_of = Hashtbl.create 64;
      nslots = 0;
      rnames = [];
      maxdepth = 4;
      funcs;
      fdec = Hashtbl.create 8;
      lst;
    }
  in
  (* intern the declared variables first: stable slot numbering, and
     snapshot restore can find every name *)
  List.iter (fun (v, _) -> ignore (slot dc v)) prog.Ir.p_vars;
  let top =
    if structured then
      Structured
        (Array.of_list
           (List.map
              (fun st ->
                match st with
                | Ir.Ifor (v, start, step, stop, blk) ->
                    let uvslot = slot dc v in
                    let ustart = compile_sexpr dc start in
                    let ustep = Option.map (compile_sexpr dc) step in
                    let ustop = compile_sexpr dc stop in
                    let cb = newbuf lst in
                    decode_block dc cb ~lp:None ~fend:None blk;
                    Ufor { uvslot; ustart; ustep; ustop; ubody = finish cb }
                | Ir.Iwhile (c, blk) ->
                    let ucond = compile_sexpr dc c in
                    let cb = newbuf lst in
                    decode_block dc cb ~lp:None ~fend:None blk;
                    Uwhile { ucond; ubody = finish cb }
                | inst ->
                    let cb = newbuf lst in
                    decode_inst dc cb ~lp:None ~fend:None inst;
                    Ustmt (finish cb))
              prog.Ir.p_body))
    else begin
      let cb = newbuf lst in
      decode_block dc cb ~lp:None ~fend:None prog.Ir.p_body;
      Flat (finish cb)
    end
  in
  (* a listing run forces every function so the output is complete *)
  (match lst with
  | Some _ -> List.iter (fun (f : Ir.func) -> ignore (decode_func dc f)) prog.Ir.p_funcs
  | None -> ());
  {
    d_top = top;
    d_slot_of = dc.slot_of;
    d_nslots = dc.nslots;
    d_names = frame_names dc;
    d_stack = dc.maxdepth;
  }

let listing (prog : Ir.prog) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "main:\n";
  ignore (decode prog ~structured:false ~lst:(Some b));
  Buffer.contents b

(* --- checkpointing ------------------------------------------------------------ *)

(* Snapshots are name-keyed (the [State] format): named, defined slots
   only — hidden loop slots are engine state, not program state, and
   are re-derived on replay. *)
let env_of_frame (fr : frame) =
  let acc = ref [] in
  for i = Array.length fr.names - 1 downto 0 do
    if fr.names.(i) <> "" && fr.tags.(i) <> t_undef then
      acc := (fr.names.(i), State.copy_value (getv fr i)) :: !acc
  done;
  Array.of_list !acc

let restore_frame (d : decoded) fr (saved : (string * value) array) =
  Array.fill fr.tags 0 (Array.length fr.tags) t_undef;
  Array.iter
    (fun (k, v) ->
      match Hashtbl.find_opt d.d_slot_of k with
      | Some s -> setv fr s (State.copy_value v)
      | None -> ())
    saved

let at_boundary fr (ck : State.ck) pcv =
  fr.st.tix.(fr.st.rk) <- 1 (* checkpoint vote *);
  State.at_boundary ck ~rk:fr.st.rk
    ~mk_env:(fun () -> env_of_frame fr)
    ~rand_calls:fr.st.rand_calls ~calls:!(fr.st.calls) ~out:fr.st.out pcv

(* Structured top-level execution with boundaries, mirroring the
   walker's [exec_top] statement for statement. *)
let exec_top fr ck resume (units : unit_t array) =
  let start_i, initial_loop =
    match resume with
    | None -> (0, None)
    | Some (State.Ptop i) -> (i, None)
    | Some (State.Ploop (i, k, bounds)) -> (i, Some (k, bounds))
  in
  let loop_resume = ref initial_loop in
  for i = start_i to Array.length units - 1 do
    match units.(i) with
    | Ufor { uvslot; ustart; ustep; ustop; ubody } ->
        let k0, (start, step, stop) =
          match !loop_resume with
          | Some (k, Some bounds) -> (k, bounds)
          | _ ->
              let start = eval_rpn fr ustart in
              let step =
                match ustep with Some s -> eval_rpn fr s | None -> 1.
              in
              let stop = eval_rpn fr ustop in
              (0, (start, step, stop))
        in
        loop_resume := None;
        (try
           let k = ref k0 in
           let continue_loop () =
             let x = start +. (float_of_int !k *. step) in
             if step >= 0. then x <= stop +. 1e-12 else x >= stop -. 1e-12
           in
           while continue_loop () do
             at_boundary fr ck (State.Ploop (i, !k, Some (start, step, stop)));
             let x = start +. (float_of_int !k *. step) in
             sets fr uvslot x;
             (try run_code ubody fr with State.Continue_exc -> ());
             incr k
           done
         with State.Break_exc -> ())
    | Uwhile { ucond; ubody } ->
        let k0 = match !loop_resume with Some (k, None) -> k | _ -> 0 in
        loop_resume := None;
        (try
           let k = ref k0 in
           while truthy (eval_rpn fr ucond) do
             at_boundary fr ck (State.Ploop (i, !k, None));
             (try run_code ubody fr with State.Continue_exc -> ());
             incr k
           done
         with State.Break_exc -> ())
    | Ustmt c ->
        loop_resume := None;
        at_boundary fr ck (State.Ptop i);
        run_code c fr
  done

(* --- entry points -------------------------------------------------------------- *)

type captured = State.captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array

type outcome = State.outcome = {
  output : string;
  captures : (string * captured) list;
  lib_calls : int;
  report : Mpisim.Sim.report;
}

type failure_kind = State.failure_kind =
  | Ftimeout
  | Fprotocol
  | Fkilled
  | Fpeer
  | Fexhausted
  | Fdeadlock
  | Fruntime

type run_result = State.run_result =
  | Complete of outcome
  | Partial of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : failure_kind;
      report : Mpisim.Sim.report;
    }

type recovery = State.recovery = {
  r_result : run_result;
  r_attempts : int;
  r_gave_up : bool;
  r_reports : Mpisim.Sim.report list;
  r_penalty : float;
}

let attempt ?(capture = []) ~seed ~datadir ~machine ~nprocs ~attempt:att
    ~ckpt_interval ~slots ~restore (prog : Ir.prog) :
    State.run_result * Mpisim.Sim.report =
  let out = Buffer.create 256 in
  (match restore with
  | Some (snaps : State.snapshot array) ->
      Buffer.add_string out snaps.(0).State.sn_out
  | None -> ());
  let tix = Array.make nprocs 0 (* "startup" *) in
  Array.fill slots 0 nprocs [];
  let structured = ckpt_interval > 0. in
  let outcome, report =
    Mpisim.Sim.run_report ~attempt:att ~machine ~nprocs (fun rank ->
        let st =
          { out; rand_calls = 0; calls = ref 0; seed; datadir; rk = rank; tix }
        in
        (* decode per rank: preallocated operand buffers may be live
           across a communication suspension, so they are rank-private *)
        let d = decode prog ~structured ~lst:None in
        let fr =
          mk_frame ~nslots:d.d_nslots ~names:d.d_names ~stack:d.d_stack st
        in
        let resume =
          match restore with
          | None -> None
          | Some snaps ->
              let s = snaps.(rank) in
              restore_frame d fr s.State.sn_env;
              st.rand_calls <- s.State.sn_rand_calls;
              st.calls := s.State.sn_calls;
              Some s.State.sn_pc
        in
        (match d.d_top with
        | Structured units ->
            let ck =
              {
                State.ck_interval = ckpt_interval;
                ck_slots = slots;
                ck_next = 0.;
                ck_boundary = 0;
              }
            in
            exec_top fr ck resume units
        | Flat c -> run_code c fr);
        let caps =
          List.filter_map
            (fun name ->
              match Hashtbl.find_opt d.d_slot_of name with
              | None -> None
              | Some s -> (
                  match fr.tags.(s) with
                  | 1 -> Some (name, Cscalar fr.sc.(s))
                  | 2 -> (
                      match fr.vals.(s) with
                      | Vmat m ->
                          let dense = Dmat.to_dense m in
                          Some (name, Cmat (m.Dmat.rows, m.Dmat.cols, dense))
                      | _ -> None)
                  | 4 -> (
                      match fr.vals.(s) with
                      | Vnd t ->
                          Some
                            ( name,
                              Cnd (Array.copy t.Ndarr.dims, Ndarr.to_dense t) )
                      | _ -> None)
                  | _ -> None))
            capture
        in
        (caps, !(st.calls)))
  in
  let result =
    match outcome with
    | Ok results ->
        let captures, lib_calls = results.(0) in
        Complete { output = Buffer.contents out; captures; lib_calls; report }
    | Error (Mpisim.Sim.Rank_failure { rank; exn }) ->
        Partial
          {
            failed_rank = rank;
            operation = trace_names.(tix.(rank));
            detail = State.describe_failure exn;
            kind = State.classify_failure exn;
            report;
          }
    | Error e -> raise e
  in
  (result, report)

let run_result ?capture ?(seed = 42) ?(datadir = ".") ~machine ~nprocs
    (prog : Ir.prog) : run_result =
  fst
    (attempt ?capture ~seed ~datadir ~machine ~nprocs ~attempt:0
       ~ckpt_interval:0. ~slots:(Array.make nprocs []) ~restore:None prog)

let run ?capture ?seed ?datadir ~machine ~nprocs prog =
  match run_result ?capture ?seed ?datadir ~machine ~nprocs prog with
  | Complete o -> o
  | Partial p -> raise (Runtime_error p.detail)

let run_recovering ?capture ?(seed = 42) ?(datadir = ".")
    ?(ckpt_interval = 0.) ?(max_recoveries = 0) ~machine ~nprocs
    (prog : Ir.prog) : recovery =
  State.run_recovering_with ~nprocs ~ckpt_interval ~max_recoveries
    (fun ~attempt:att ~slots ~restore ->
      attempt ?capture ~seed ~datadir ~machine ~nprocs ~attempt:att
        ~ckpt_interval ~slots ~restore prog)
