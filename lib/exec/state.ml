(* Representation shared by the execution engines.

   Both engines — the IR-walking [Vm] and the pre-decoded threaded-code
   [Tcode] — execute the same SPMD programs on the same simulator and
   must be interchangeable from the driver's point of view: same value
   representation, same structured results, same failure classes, and
   the same checkpoint format, so a chaos run recovers identically no
   matter which engine produced the snapshots.  This module holds that
   common ground; everything engine-specific (environments vs slot
   frames, tree walking vs decoded code) stays in the engines. *)

open Spmd
module Dmat = Runtime.Dmat
module Ndarr = Runtime.Ndarr
module Ops = Runtime.Ops

exception Runtime_error of string

let error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

type value =
  | Vscalar of float
  | Vmat of Dmat.t
  | Vnd of Ndarr.t
  | Vstr of string

exception Break_exc
exception Continue_exc
exception Return_exc

(* --- dispatch throughput counter ------------------------------------------ *)

(* Instructions executed since the caller last reset this, summed over
   ranks and engines.  Each engine counts its own execution unit: the
   walker adds one per IR instruction it executes; the threaded-code
   engine adds one per decoded op dispatched plus one per step of each
   scalar program it evaluates (the units its decode listing prints).
   `bench vmspeed` divides by wall time to get engine throughput. *)
let dispatched = ref 0

(* --- shared scalar semantics --------------------------------------------- *)

let truthy f = f <> 0.
let of_bool b = if b then 1. else 0.

let scalar_binop (op : Mlang.Ast.binop) a b =
  match op with
  | Mlang.Ast.Add -> a +. b
  | Mlang.Ast.Sub -> a -. b
  | Mlang.Ast.Mul | Mlang.Ast.Emul -> a *. b
  | Mlang.Ast.Div | Mlang.Ast.Ediv -> a /. b
  | Mlang.Ast.Ldiv | Mlang.Ast.Eldiv -> b /. a
  | Mlang.Ast.Pow | Mlang.Ast.Epow -> Float.pow a b
  | Mlang.Ast.Lt -> of_bool (a < b)
  | Mlang.Ast.Le -> of_bool (a <= b)
  | Mlang.Ast.Gt -> of_bool (a > b)
  | Mlang.Ast.Ge -> of_bool (a >= b)
  | Mlang.Ast.Eq -> of_bool (a = b)
  | Mlang.Ast.Ne -> of_bool (a <> b)
  | Mlang.Ast.And | Mlang.Ast.Shortand -> of_bool (truthy a && truthy b)
  | Mlang.Ast.Or | Mlang.Ast.Shortor -> of_bool (truthy a || truthy b)

let scalar_builtin name args =
  match (name, args) with
  | "abs", [ x ] -> Float.abs x
  | "sqrt", [ x ] -> sqrt x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "log10", [ x ] -> log10 x
  | "log2", [ x ] -> log x /. log 2.
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "tan", [ x ] -> tan x
  | "asin", [ x ] -> asin x
  | "acos", [ x ] -> acos x
  | "atan", [ x ] -> atan x
  | "sinh", [ x ] -> sinh x
  | "cosh", [ x ] -> cosh x
  | "tanh", [ x ] -> tanh x
  | "floor", [ x ] -> floor x
  | "ceil", [ x ] -> ceil x
  | "round", [ x ] -> Float.round x
  | "fix", [ x ] -> Float.trunc x
  | "sign", [ x ] -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | "double", [ x ] -> x
  | "mod", [ a; b ] -> if b = 0. then a else a -. (b *. Float.floor (a /. b))
  | "rem", [ a; b ] -> if b = 0. then a else Float.rem a b
  | "atan2", [ a; b ] -> atan2 a b
  | "hypot", [ a; b ] -> Float.hypot a b
  | "pow", [ a; b ] | "power", [ a; b ] -> Float.pow a b
  | "min", [ a; b ] -> Float.min a b
  | "max", [ a; b ] -> Float.max a b
  | _ -> error "unknown scalar builtin '%s'/%d" name (List.length args)

let rkind_to_red = function
  | Ir.Rsum -> Ops.Rsum
  | Ir.Rprod -> Ops.Rprod
  | Ir.Rmin -> Ops.Rmin
  | Ir.Rmax -> Ops.Rmax
  | Ir.Rany -> Ops.Rany
  | Ir.Rall -> Ops.Rall
  | Ir.Rmean -> Ops.Rsum (* handled separately *)

(* MATLAB colon ranges, shared by sections and the [Crange] constructor:
   lo : step : hi with the usual end-point slop. *)
let range_indices lo step hi =
  let n =
    if step = 0. then 0
    else
      let raw = ((hi -. lo) /. step) +. 1e-9 in
      if raw < 0. then 0 else int_of_float (Float.floor raw) + 1
  in
  Array.init n (fun k -> int_of_float (lo +. (float_of_int k *. step)) - 1)

(* --- instruction classification ------------------------------------------ *)

(* Human-readable operation names for failure attribution: when a rank
   dies mid-run, the engine reports what it was doing. *)
let inst_name : Ir.inst -> string = function
  | Ir.Iscalar _ -> "scalar assignment"
  | Ir.Ielem _ -> "element-wise expression"
  | Ir.Icopy _ -> "matrix copy"
  | Ir.Imatmul _ -> "matrix multiply"
  | Ir.Imatmul_t _ -> "transposed matrix multiply"
  | Ir.Idot _ -> "dot product"
  | Ir.Itranspose _ -> "transpose"
  | Ir.Idiag _ -> "diagonal"
  | Ir.Iouter _ -> "outer product"
  | Ir.Ireduce_all _ -> "full reduction"
  | Ir.Ireduce_cols _ -> "column reduction"
  | Ir.Inorm _ -> "norm"
  | Ir.Iscan _ -> "cumulative scan"
  | Ir.Isort _ -> "sort"
  | Ir.Ireduce_loc _ -> "indexed reduction"
  | Ir.Itrapz _ -> "trapezoidal integration"
  | Ir.Ishift _ -> "circular shift"
  | Ir.Ibcast _ -> "element broadcast"
  | Ir.Ibcast_batch _ -> "batched element broadcast"
  | Ir.Ireduce_fused _ -> "fused allreduce"
  | Ir.Isetelem _ -> "element assignment"
  | Ir.Iload _ -> "data file load"
  | Ir.Iconstruct _ -> "matrix constructor"
  | Ir.Iliteral _ -> "matrix literal"
  | Ir.Isection _ -> "section read"
  | Ir.Isetsection _ -> "section assignment"
  | Ir.Iconcat _ -> "matrix concatenation"
  | Ir.Icalluser _ -> "user function call"
  | Ir.Iprint _ -> "print"
  | Ir.Iprintf _ -> "formatted output"
  | Ir.Ierror _ -> "error statement"
  | Ir.Iif _ -> "if statement"
  | Ir.Iwhile _ -> "while loop"
  | Ir.Ifor _ -> "for loop"
  | Ir.Ibreak | Ir.Icontinue | Ir.Ireturn -> "control transfer"
  | Ir.Impi_rank _ -> "MPI_Comm_rank"
  | Ir.Impi_size _ -> "MPI_Comm_size"
  | Ir.Impi_send _ -> "MPI_Send"
  | Ir.Impi_recv _ -> "MPI_Recv"
  | Ir.Impi_bcast _ -> "MPI_Bcast"
  | Ir.Impi_probe _ -> "MPI_Probe"

(* Instructions the C back end maps to an ML_* run-time library call;
   scalar assignments, fused element-wise loops, control flow and
   printing run inline in the generated code.  The per-rank executed
   count is what the bench ablation prices. *)
(* --- explicit message passing (MatlabMPI-style builtins) ----------------- *)

(* User-visible tags ride in their own tag space, above the collectives
   (1001..1006), the run-time library (3001..3004) and below the
   transport acks (0x400000 + tag); the front end bounds user tags at
   1e6 so the spaces stay disjoint. *)
let mpi_tag_base = 2_000_000
let mpi_user_tag tag = mpi_tag_base + tag

(* The explicit broadcast has its own tag, outside the user space. *)
let tag_mpi_bcast = 1_999_999

(* Wire format: a scalar is [|0.; v|]; a matrix is [|1.; rows; cols|]
   followed by its dense row-major elements.  The receiver rebuilds a
   rank-local replica (Dmat.full), so everything it does with the value
   afterwards stays local -- explicit messages may be sent and received
   from inside rank-divergent control flow. *)
let mpi_encode op (v : value) : Mpisim.Sim.payload =
  match v with
  | Vscalar f -> Mpisim.Sim.Floats [| 0.; f |]
  | Vmat m ->
      if not m.Dmat.full then
        error
          "%s: cannot send a distributed matrix; MPI_Bcast it into a \
           per-rank replica first"
          op;
      Mpisim.Sim.Floats
        (Array.append
           [| 1.; float_of_int m.Dmat.rows; float_of_int m.Dmat.cols |]
           m.Dmat.data)
  | Vnd _ ->
      error
        "%s: cannot send a tensor; slice it into matrices or scalars first" op
  | Vstr _ -> error "%s: cannot send a string" op

let mpi_decode op (p : Mpisim.Sim.payload) : value =
  match p with
  | Mpisim.Sim.Floats [| 0.; v |] -> Vscalar v
  | Mpisim.Sim.Floats a
    when Array.length a >= 3
         && a.(0) = 1.
         && Array.length a
            = 3 + (int_of_float a.(1) * int_of_float a.(2)) ->
      let rows = int_of_float a.(1) and cols = int_of_float a.(2) in
      Vmat (Dmat.of_full ~rows ~cols (Array.sub a 3 (rows * cols)))
  | _ -> error "%s: malformed message payload" op

let mpi_check_rank op what r =
  let nprocs = Mpisim.Sim.size () in
  if r < 0 || r >= nprocs then
    error "%s: %s rank %d is outside 0..%d" op what r (nprocs - 1)

(* Receives and probes additionally admit the MPI_ANY_SOURCE wildcard,
   spelled -1 at the MATLAB level. *)
let mpi_any_source = -1

let mpi_check_source op r =
  let nprocs = Mpisim.Sim.size () in
  if r <> mpi_any_source && (r < 0 || r >= nprocs) then
    error "%s: source rank %d is outside 0..%d (use -1 for any source)" op r
      (nprocs - 1)

let mpi_send ~dst ~tag (v : value) =
  mpi_check_rank "MPI_Send" "destination" dst;
  Mpisim.Reliable.send ~dst ~tag:(mpi_user_tag tag) (mpi_encode "MPI_Send" v)

(* [is_matrix] is the compiler's joined view of everything sent under
   this tag; a scalar that arrives where the join says matrix (another
   send on the tag ships matrices) is promoted to a 1x1 replica. *)
let mpi_recv ~src ~tag ~is_matrix : value =
  mpi_check_source "MPI_Recv" src;
  let payload =
    if src = mpi_any_source then
      snd (Mpisim.Reliable.recv_any ~tag:(mpi_user_tag tag))
    else Mpisim.Reliable.recv ~src ~tag:(mpi_user_tag tag)
  in
  let v = mpi_decode "MPI_Recv" payload in
  match v with
  | Vscalar f when is_matrix -> Vmat (Dmat.of_full ~rows:1 ~cols:1 [| f |])
  | Vmat _ when not is_matrix ->
      error "MPI_Recv: a matrix arrived where a scalar was expected"
  | v -> v

let mpi_probe ~src ~tag : float =
  mpi_check_source "MPI_Probe" src;
  if Mpisim.Sim.probe ~src ~tag:(mpi_user_tag tag) then 1. else 0.

(* The explicit broadcast.  A distributed operand is executed by every
   rank (uniform control flow, like any collective), so replicating it
   is an allgather and the root is irrelevant; a replica or scalar is
   genuinely the root's private value, shipped point-to-point to each
   other rank. *)
let mpi_bcast ~root (v : value) : value =
  mpi_check_rank "MPI_Bcast" "root" root;
  match v with
  | Vmat m when not m.Dmat.full ->
      Vmat (Dmat.of_full ~rows:m.Dmat.rows ~cols:m.Dmat.cols (Dmat.to_dense m))
  | v ->
      let me = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
      if me = root then begin
        let p = mpi_encode "MPI_Bcast" v in
        for r = 0 to nprocs - 1 do
          if r <> root then Mpisim.Reliable.send ~dst:r ~tag:tag_mpi_bcast p
        done;
        match v with Vmat m -> Vmat (Dmat.copy m) | s -> s
      end
      else
        mpi_decode "MPI_Bcast"
          (Mpisim.Reliable.recv ~src:root ~tag:tag_mpi_bcast)

let is_lib_call : Ir.inst -> bool = function
  | Ir.Iscalar _ | Ir.Ielem _ | Ir.Icalluser _ | Ir.Iprint _ | Ir.Iprintf _
  | Ir.Ierror _ | Ir.Iif _ | Ir.Iwhile _ | Ir.Ifor _ | Ir.Ibreak
  | Ir.Icontinue | Ir.Ireturn ->
      false
  | _ -> true

(* --- structured results --------------------------------------------------- *)

type captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array (* dims, row-major dense data *)

type outcome = {
  output : string;
  captures : (string * captured) list;
  lib_calls : int;
  report : Mpisim.Sim.report;
}

(* Why a run attempt died, coarsened to the classes the recovery driver
   and otterc's exit codes care about. *)
type failure_kind =
  | Ftimeout (* a receive deadline expired *)
  | Fprotocol (* malformed traffic: a bug, not the network *)
  | Fkilled (* the fault model permanently killed a rank *)
  | Fpeer (* the failure detector condemned a dead peer *)
  | Fexhausted (* a sender ran out of retransmissions *)
  | Fdeadlock (* every live rank blocked *)
  | Fruntime (* an error in the program itself *)

let classify_failure = function
  | Mpisim.Sim.Timeout _ -> Ftimeout
  | Mpisim.Sim.Protocol_error _ -> Fprotocol
  | Mpisim.Sim.Rank_killed _ -> Fkilled
  | Mpisim.Sim.Peer_failed _ -> Fpeer
  | Mpisim.Reliable.Exhausted _ -> Fexhausted
  | Mpisim.Sim.Deadlock _ -> Fdeadlock
  | _ -> Fruntime

(* Rollback-and-replay can only cure what the network (or the fault
   model) did; program bugs and protocol violations would just fail
   identically again. *)
let recoverable = function
  | Ftimeout | Fkilled | Fpeer | Fexhausted -> true
  | Fprotocol | Fdeadlock | Fruntime -> false

type run_result =
  | Complete of outcome
  | Partial of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : failure_kind;
      report : Mpisim.Sim.report;
    }

(* What went wrong on the failing rank, in one line. *)
let describe_failure = function
  | Runtime_error m | Failure m -> m
  | Mpisim.Sim.Timeout { src; tag; waited; _ } ->
      Printf.sprintf
        "gave up after %.3gs waiting for a message (src=%d, tag=%d)" waited
        src tag
  | Mpisim.Sim.Protocol_error { src; tag; detail; _ } ->
      Printf.sprintf "protocol error on message (src=%d, tag=%d): %s" src tag
        detail
  | Mpisim.Reliable.Exhausted { dst; tag; attempts; _ } ->
      Printf.sprintf
        "gave a message up for lost after %d attempts (dst=%d, tag=%d)"
        attempts dst tag
  | Mpisim.Sim.Peer_failed { failed; at; _ } ->
      Printf.sprintf "detected failure of rank %d at t=%.4gs" failed at
  | Mpisim.Sim.Rank_killed { at; _ } ->
      Printf.sprintf "permanently killed by the fault model at t=%.4gs" at
  | e -> Printexc.to_string e

(* --- the shared checkpoint format ----------------------------------------- *)

(* Where execution resumes after a rollback: just before top-level
   statement [i], or just before iteration [k] of the top-level loop at
   statement [i].  A for loop also freezes its (start, step, stop)
   bounds, which MATLAB fixes at loop entry and which the environment
   at iteration [k] can no longer reproduce. *)
type pc = Ptop of int | Ploop of int * int * (float * float * float) option

type snapshot = {
  sn_boundary : int; (* which boundary (attempt-local counter) *)
  sn_pc : pc;
  sn_env : (string * value) array; (* deep copy of the rank's locals *)
  sn_rand_calls : int; (* replicated RNG sequence number *)
  sn_calls : int; (* executed library calls so far *)
  sn_out : string; (* rank 0: the output prefix; "" elsewhere *)
}

let copy_value = function
  | Vmat m -> Vmat (Dmat.copy m)
  | Vnd t -> Vnd (Ndarr.copy t)
  | (Vscalar _ | Vstr _) as v -> v

(* Per-rank checkpoint cursor for one run attempt.  [ck_slots] is the
   host-side store shared with the recovery driver; each rank keeps its
   two newest snapshots so that, when a failure lands between a
   boundary's commit on some ranks and not others, every rank can still
   produce the newest boundary common to all (commitment is a
   collective, so latest boundaries differ by at most one). *)
type ck = {
  ck_interval : float;
  ck_slots : snapshot list array; (* per rank, newest first, length <= 2 *)
  mutable ck_next : float; (* virtual time of the next wanted snapshot *)
  mutable ck_boundary : int;
}

(* A checkpoint boundary: every rank reaches these in lockstep (the
   compiled programs are loosely synchronous, so top-level control flow
   is replicated).  Whether to snapshot is decided by collective vote
   -- per-rank clocks drift, so "my interval elapsed" can differ across
   ranks, but the or-vote gives every rank the same verdict.  Starts
   with [ck_next = 0], so the first boundary of every attempt commits:
   that re-establishes the restore point right after a rollback.

   The engine supplies [mk_env] (a deep copy of its locals in snapshot
   form) and bookkeeping counters; the vote, the slot rotation and the
   snapshot layout live here so both engines write the exact same
   checkpoint format. *)
let at_boundary ck ~rk ~mk_env ~rand_calls ~calls ~out (pcv : pc) =
  ck.ck_boundary <- ck.ck_boundary + 1;
  let want = Mpisim.Sim.time () >= ck.ck_next in
  if Mpisim.Coll.vote want then begin
    let snap =
      {
        sn_boundary = ck.ck_boundary;
        sn_pc = pcv;
        sn_env = mk_env ();
        sn_rand_calls = rand_calls;
        sn_calls = calls;
        sn_out = (if rk = 0 then Buffer.contents out else "");
      }
    in
    let kept = match ck.ck_slots.(rk) with [] -> [] | s :: _ -> [ s ] in
    ck.ck_slots.(rk) <- snap :: kept;
    ck.ck_next <- Mpisim.Sim.time () +. ck.ck_interval
  end

(* --- the recovery driver -------------------------------------------------- *)

type recovery = {
  r_result : run_result; (* the final attempt's result *)
  r_attempts : int; (* run attempts made (1 = no recovery needed) *)
  r_gave_up : bool; (* a recoverable failure outlived the budget *)
  r_reports : Mpisim.Sim.report list; (* one per attempt, oldest first *)
  r_penalty : float; (* simulated backoff seconds charged before retries *)
}

let backoff_base = 0.05 (* simulated seconds before the first retry *)

(* Rollback-and-replay around an engine's [attempt] function:
   checkpoints are taken (collectively) every [ckpt_interval] simulated
   seconds; on a recoverable failure every rank rolls back to the
   newest snapshot common to all ranks (or to program start when there
   is none) and replays, with exponential simulated backoff, at most
   [max_recoveries] times.  Replay is deterministic — locals, RNG
   sequence numbers and the output prefix are part of the snapshot — so
   a recovered run is bit-identical to an undisturbed one.  Each retry
   re-rolls the fault model's kill schedule (see [Sim.run]'s [attempt]
   salt); non-recoverable failures and exhausted budgets surface as the
   final [Partial]. *)
let run_recovering_with ~nprocs ~ckpt_interval ~max_recoveries
    (attempt :
      attempt:int ->
      slots:snapshot list array ->
      restore:snapshot array option ->
      run_result * Mpisim.Sim.report) : recovery =
  let slots : snapshot list array = Array.make nprocs [] in
  (* The newest boundary every rank holds a snapshot for.  Commitment
     is collective, so latest boundaries differ by at most one across
     ranks and the two kept slots always cover the common one. *)
  let restore_set () =
    if ckpt_interval <= 0. then None
    else
      let latest =
        Array.map
          (function [] -> None | (s : snapshot) :: _ -> Some s.sn_boundary)
          slots
      in
      if Array.exists Option.is_none latest then None
      else
        let target =
          Array.fold_left (fun acc l -> min acc (Option.get l)) max_int latest
        in
        let picks =
          Array.map (List.find_opt (fun s -> s.sn_boundary = target)) slots
        in
        if Array.exists Option.is_none picks then None
        else Some (Array.map Option.get picks)
  in
  let reports = ref [] in
  let penalty = ref 0. in
  let rec go att =
    let restore = restore_set () in
    let result, report = attempt ~attempt:att ~slots ~restore in
    reports := report :: !reports;
    let finish gave_up =
      {
        r_result = result;
        r_attempts = att + 1;
        r_gave_up = gave_up;
        r_reports = List.rev !reports;
        r_penalty = !penalty;
      }
    in
    match result with
    | Complete _ -> finish false
    | Partial p ->
        if not (recoverable p.kind) then finish false
        else if att >= max_recoveries then finish true
        else begin
          penalty := !penalty +. (backoff_base *. (2. ** float_of_int att));
          go (att + 1)
        end
  in
  go 0
