(** The pre-decoded threaded-code SPMD executor: the fast path.

    Compiles the per-rank IR program once into flat arrays of
    instruction closures with resolved jump targets, array-indexed
    variable slots (no environment hashing), RPN scalar programs over
    an unboxed float stack, and preallocated element-loop operand
    buffers — then runs it bit-for-bit compatibly with {!Vm}: same
    outputs, same flop charges in the same order, same error messages,
    same structured results, and the same checkpoint format, so chaos
    recovery is engine-agnostic.  All result types are shared with
    {!Vm} through {!State}. *)

exception Runtime_error of string
(** Any execution failure: undefined variables, bounds, conformability,
    user [error(...)] calls.  The same exception {!Vm} raises. *)

type value = State.value =
  | Vscalar of float
  | Vmat of Runtime.Dmat.t
  | Vnd of Runtime.Ndarr.t
  | Vstr of string

type captured = State.captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array

type outcome = State.outcome = {
  output : string;
  captures : (string * captured) list;
  lib_calls : int;
  report : Mpisim.Sim.report;
}

type failure_kind = State.failure_kind =
  | Ftimeout
  | Fprotocol
  | Fkilled
  | Fpeer
  | Fexhausted
  | Fdeadlock
  | Fruntime

type run_result = State.run_result =
  | Complete of outcome
  | Partial of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : failure_kind;
      report : Mpisim.Sim.report;
    }

type recovery = State.recovery = {
  r_result : run_result;
  r_attempts : int;
  r_gave_up : bool;
  r_reports : Mpisim.Sim.report list;
  r_penalty : float;
}

val listing : Spmd.Ir.prog -> string
(** Decode the program (flat mode, plus every user function) and return
    a human-readable listing of the emitted ops — one line per decoded
    op, with resolved pc addresses.  Executes nothing; used by the
    golden decode tests. *)

val run_result :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  run_result
(** Drop-in replacement for {!Vm.run_result} on the decoded engine. *)

val run :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  outcome
(** Like {!run_result} but raises {!Runtime_error} on failure. *)

val run_recovering :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?ckpt_interval:float ->
  ?max_recoveries:int ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  recovery
(** Drop-in replacement for {!Vm.run_recovering}: identical coordinated
    checkpoint/rollback semantics over the shared {!State} snapshot
    format — a run checkpointed by one engine restores under the
    other. *)
