(** The SPMD virtual machine: executes the compiler's IR on the machine
    simulator — the moral equivalent of running the emitted C linked
    against the MPI run-time library on the modeled hardware. *)

exception Runtime_error of string
(** Any execution failure: undefined variables, bounds, conformability,
    user [error(...)] calls. *)

type value = Vscalar of float | Vmat of Runtime.Dmat.t | Vstr of string

type captured = Cscalar of float | Cmat of int * int * float array
(** A variable's final value, gathered dense (row-major). *)

type outcome = {
  output : string; (** what rank 0 printed *)
  captures : (string * captured) list;
  lib_calls : int;
      (** run-time library calls rank 0 executed (the per-pass ablation
          in bench/ prices optimizations with this) *)
  report : Mpisim.Sim.report;
}

type run_result =
  | Complete of outcome
  | Partial of { failed_rank : int; operation : string; detail : string }
      (** The simulation aborted: [failed_rank] failed while executing
          [operation] (e.g. ["matrix multiply"]); [detail] is the
          one-line cause — a run-time error, a receive {!Mpisim.Sim.Timeout}
          under a fault model, or an exhausted retransmission budget. *)

val run_result :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  run_result
(** Run the program on [nprocs] simulated processors of [machine];
    [capture] names script variables whose final values are returned
    for verification.  Degrades gracefully: a failure on any rank
    yields [Partial] instead of an unattributed exception. *)

val run :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  outcome
(** Like {!run_result} but raises {!Runtime_error} with the failure
    detail instead of returning [Partial]. *)
