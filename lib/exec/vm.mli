(** The SPMD virtual machine: executes the compiler's IR on the machine
    simulator — the moral equivalent of running the emitted C linked
    against the MPI run-time library on the modeled hardware. *)

exception Runtime_error of string
(** Any execution failure: undefined variables, bounds, conformability,
    user [error(...)] calls. *)

type value = State.value =
  | Vscalar of float
  | Vmat of Runtime.Dmat.t
  | Vnd of Runtime.Ndarr.t
  | Vstr of string

type captured = State.captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array
(** A variable's final value, gathered dense (row-major). *)

type outcome = State.outcome = {
  output : string; (** what rank 0 printed *)
  captures : (string * captured) list;
  lib_calls : int;
      (** run-time library calls rank 0 executed (the per-pass ablation
          in bench/ prices optimizations with this) *)
  report : Mpisim.Sim.report;
}

type failure_kind = State.failure_kind =
  | Ftimeout  (** a receive deadline expired *)
  | Fprotocol  (** malformed traffic: a bug, not the network *)
  | Fkilled  (** the fault model permanently killed a rank *)
  | Fpeer  (** the failure detector condemned a dead peer *)
  | Fexhausted  (** a sender ran out of retransmissions *)
  | Fdeadlock  (** every live rank blocked *)
  | Fruntime  (** an error in the program itself *)

val classify_failure : exn -> failure_kind
(** Coarsen an exception (typically the payload of
    {!Mpisim.Sim.Rank_failure}) to its failure class. *)

val recoverable : failure_kind -> bool
(** Whether rollback-and-replay can cure this class of failure:
    network-induced classes ([Ftimeout], [Fkilled], [Fpeer],
    [Fexhausted]) are; program bugs and protocol violations are not. *)

type run_result = State.run_result =
  | Complete of outcome
  | Partial of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : failure_kind;
      report : Mpisim.Sim.report;
          (** fault counters accumulated up to the abort *)
    }
      (** The simulation aborted: [failed_rank] failed while executing
          [operation] (e.g. ["matrix multiply"]); [detail] is the
          one-line cause — a run-time error, a receive {!Mpisim.Sim.Timeout}
          under a fault model, a permanent rank kill, or an exhausted
          retransmission budget. *)

val run_result :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  run_result
(** Run the program on [nprocs] simulated processors of [machine];
    [capture] names script variables whose final values are returned
    for verification.  Degrades gracefully: a failure on any rank
    yields [Partial] instead of an unattributed exception. *)

val run :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  outcome
(** Like {!run_result} but raises {!Runtime_error} with the failure
    detail instead of returning [Partial]. *)

type recovery = State.recovery = {
  r_result : run_result;  (** the final attempt's result *)
  r_attempts : int;  (** run attempts made (1 = no recovery needed) *)
  r_gave_up : bool;  (** a recoverable failure outlived the budget *)
  r_reports : Mpisim.Sim.report list;  (** one per attempt, oldest first *)
  r_penalty : float;  (** simulated backoff seconds charged before retries *)
}

val run_recovering :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  ?ckpt_interval:float ->
  ?max_recoveries:int ->
  machine:Mpisim.Machine.t ->
  nprocs:int ->
  Spmd.Ir.prog ->
  recovery
(** {!run_result} wrapped in coordinated checkpoint/rollback: snapshots
    of every rank's state (locals, distributed blocks, RNG sequence
    numbers, program counter, output prefix) are committed by
    collective vote at top-level boundaries roughly every
    [ckpt_interval] simulated seconds (0 = never: a failure replays
    from program start).  On a {!recoverable} failure all ranks roll
    back to the newest snapshot common to every rank and replay
    deterministically — a recovered run is bit-identical to an
    undisturbed one — with exponential simulated backoff, at most
    [max_recoveries] times (default 0 = no retries).  Each retry
    re-rolls the fault model's kill schedule.  Never hangs: every
    attempt either completes, or fails with a typed class within
    bounded virtual time. *)
