(* The IR-walking SPMD virtual machine: executes the compiler's IR on
   the machine simulator.  Each simulated rank runs this interpreter
   over the same program; scalars are replicated, matrices are the
   distributed run-time MATRIX values, and every run-time library
   instruction maps onto [Runtime.Ops].  Floating-point work is charged
   to the rank's virtual clock; communication is charged by the
   messages the run-time library sends.

   This is the moral equivalent of running the emitted C program linked
   against the MPI run-time library on the modeled hardware.  It is
   also the slow path: the pre-decoded threaded-code engine ([Tcode])
   executes the same programs bit-identically but much faster, and this
   walker remains as the `--engine=ir` fallback and as a differential
   -testing foil.  The value representation, structured results,
   failure classes, checkpoint format and recovery driver are shared
   with [Tcode] through [State]. *)

open Spmd
module Dmat = Runtime.Dmat
module Ndarr = Runtime.Ndarr
module Ops = Runtime.Ops

exception Runtime_error = State.Runtime_error
exception Break_exc = State.Break_exc
exception Continue_exc = State.Continue_exc
exception Return_exc = State.Return_exc

let error = State.error

type value = State.value =
  | Vscalar of float
  | Vmat of Dmat.t
  | Vnd of Ndarr.t
  | Vstr of string

let truthy = State.truthy
let of_bool = State.of_bool
let scalar_binop = State.scalar_binop
let scalar_builtin = State.scalar_builtin
let rkind_to_red = State.rkind_to_red
let range_indices = State.range_indices
let inst_name = State.inst_name
let is_lib_call = State.is_lib_call

type frame = {
  env : (string, value) Hashtbl.t;
  prog : Ir.prog;
  funcs : (string, Ir.func) Hashtbl.t;
  out : Buffer.t; (* rank 0 appends program output here *)
  mutable rand_calls : int; (* replicated rand() sequence number *)
  calls : int ref; (* executed run-time library calls on this rank *)
  seed : int;
  datadir : string;
  rk : int; (* this frame's simulated rank *)
  trace : string array; (* operation in progress, per rank *)
}

let lookup fr v =
  match Hashtbl.find_opt fr.env v with
  | Some x -> x
  | None -> error "variable '%s' used before it is defined" v

let scalar_of fr v =
  match lookup fr v with
  | Vscalar f -> f
  | Vmat m when Dmat.numel m = 1 -> Ops.bcast_elem m ~i:0 ~j:0
  | Vnd t when Ndarr.numel t = 1 ->
      Ops.nd_bcast_elem t (Array.make (Ndarr.rank t) 0)
  | Vmat _ -> error "variable '%s' is a matrix where a scalar is required" v
  | Vnd _ -> error "variable '%s' is a tensor where a scalar is required" v
  | Vstr _ -> error "variable '%s' is a string where a scalar is required" v

let mat_of fr v =
  match lookup fr v with
  | Vmat m -> m
  | Vscalar _ -> error "variable '%s' is a scalar where a matrix is required" v
  | Vnd _ -> error "variable '%s' is a tensor where a matrix is required" v
  | Vstr _ -> error "variable '%s' is a string where a matrix is required" v

(* --- scalar expression evaluation -------------------------------------- *)

(* Evaluation counts the scalar operations performed so that replicated
   scalar arithmetic is charged to the virtual clock. *)
let rec eval_s fr ops (s : Ir.sexpr) : float =
  match s with
  | Ir.Sconst f -> f
  | Ir.Sstr _ -> error "string literal in numeric context"
  | Ir.Svar v -> scalar_of fr v
  | Ir.Sbin (op, a, b) ->
      incr ops;
      let x = eval_s fr ops a in
      let y = eval_s fr ops b in
      scalar_binop op x y
  | Ir.Sneg a ->
      incr ops;
      -.eval_s fr ops a
  | Ir.Snot a ->
      incr ops;
      of_bool (not (truthy (eval_s fr ops a)))
  | Ir.Scall (name, args) ->
      incr ops;
      scalar_builtin name (List.map (eval_s fr ops) args)
  | Ir.Sdim (v, code) -> (
      (* codes: 0 numel, 1 rows (trailing cell), 2 cols (trailing
         cell), 3 max over all dims, 4 leading-axis extent (1 for
         scalars and matrices, which have no frame axis) *)
      match lookup fr v with
      | Vscalar _ -> 1.
      | Vstr _ -> error "size of a string"
      | Vmat m -> (
          match code with
          | 0 -> float_of_int (Dmat.numel m)
          | 1 -> float_of_int m.Dmat.rows
          | 2 -> float_of_int m.Dmat.cols
          | 4 -> 1.
          | _ -> float_of_int (max m.Dmat.rows m.Dmat.cols))
      | Vnd t -> (
          match code with
          | 0 -> float_of_int (Ndarr.numel t)
          | 1 -> float_of_int (Ndarr.cell_rows t)
          | 2 -> float_of_int (Ndarr.cell_cols t)
          | 4 -> float_of_int t.Ndarr.dims.(0)
          | _ -> float_of_int (Array.fold_left max 1 t.Ndarr.dims)))

let eval_scalar fr s =
  let ops = ref 0 in
  let v = eval_s fr ops s in
  if !ops > 0 then Mpisim.Sim.flops (float_of_int !ops);
  v

(* --- element-wise loops ------------------------------------------------- *)

(* Compile an element expression to a closure over the local element
   index; scalar subtrees are evaluated once, outside the loop.
   Operands are fetched depth-first left-to-right — the same order the
   threaded-code engine stages them in, so cross-engine runs issue any
   embedded broadcasts identically. *)
let rec compile_e fr ops (e : Ir.eexpr) (model : Dmat.t) : int -> float =
  match e with
  | Ir.Emat v ->
      let m = mat_of fr v in
      if m.Dmat.rows <> model.Dmat.rows || m.Dmat.cols <> model.Dmat.cols then
        error "nonconformant element-wise operands (%dx%d vs %dx%d)"
          m.Dmat.rows m.Dmat.cols model.Dmat.rows model.Dmat.cols;
      if not (Dmat.same_locality m model) then
        error
          "cannot mix a replicated (message-passing) matrix with a \
           distributed one element-wise; MPI_Bcast the distributed operand \
           first";
      let data = m.Dmat.data in
      fun i -> data.(i)
  | Ir.Eeye ->
      (* 1.0 on the main diagonal of the model's global shape *)
      fun i ->
        let r, c = Dmat.global_rc_of_local model i in
        if r = c then 1.0 else 0.0
  | Ir.Escalar s ->
      let c = eval_s fr (ref 0) s in
      fun _ -> c
  | Ir.Ebin (op, a, b) ->
      incr ops;
      let fa = compile_e fr ops a model in
      let fb = compile_e fr ops b model in
      fun i -> scalar_binop op (fa i) (fb i)
  | Ir.Eneg a ->
      incr ops;
      let fa = compile_e fr ops a model in
      fun i -> -.fa i
  | Ir.Enot a ->
      incr ops;
      let fa = compile_e fr ops a model in
      fun i -> of_bool (not (truthy (fa i)))
  | Ir.Ecall1 (name, a) ->
      incr ops;
      let fa = compile_e fr ops a model in
      fun i -> scalar_builtin name [ fa i ]
  | Ir.Ecall2 (name, a, b) ->
      incr ops;
      let fa = compile_e fr ops a model in
      let fb = compile_e fr ops b model in
      fun i -> scalar_builtin name [ fa i; fb i ]

(* The tensor variant: the loop runs over the model tensor's local
   elements.  A same-dims tensor operand reads its own local element; a
   matrix operand whose shape matches the model's trailing cell is
   frame-broadcast — replicated over every leading slice, which in the
   row-major layout is an [i mod cell] read of its dense form. *)
let rec compile_e_nd fr ops (e : Ir.eexpr) (model : Ndarr.t) : int -> float =
  match e with
  | Ir.Emat v -> (
      match lookup fr v with
      | Vnd t ->
          if t.Ndarr.dims <> model.Ndarr.dims then
            error "nonconformant element-wise tensor operands";
          if not (Ndarr.same_locality t model) then
            error
              "cannot mix a replicated (message-passing) tensor with a \
               distributed one element-wise";
          let data = t.Ndarr.data in
          fun i -> data.(i)
      | Vmat m ->
          if
            m.Dmat.rows <> Ndarr.cell_rows model
            || m.Dmat.cols <> Ndarr.cell_cols model
          then
            error
              "frame broadcast needs a %dx%d matrix matching the tensor cell \
               (got %dx%d)"
              (Ndarr.cell_rows model) (Ndarr.cell_cols model) m.Dmat.rows
              m.Dmat.cols;
          let dense = Dmat.to_dense m in
          let cell = Ndarr.cell_numel model in
          fun i -> dense.(i mod cell)
      | Vscalar f -> fun _ -> f
      | Vstr _ -> error "variable '%s' is a string in an element-wise loop" v)
  | Ir.Eeye -> error "eye has no rank-N form"
  | Ir.Escalar s ->
      let c = eval_s fr (ref 0) s in
      fun _ -> c
  | Ir.Ebin (op, a, b) ->
      incr ops;
      let fa = compile_e_nd fr ops a model in
      let fb = compile_e_nd fr ops b model in
      fun i -> scalar_binop op (fa i) (fb i)
  | Ir.Eneg a ->
      incr ops;
      let fa = compile_e_nd fr ops a model in
      fun i -> -.fa i
  | Ir.Enot a ->
      incr ops;
      let fa = compile_e_nd fr ops a model in
      fun i -> of_bool (not (truthy (fa i)))
  | Ir.Ecall1 (name, a) ->
      incr ops;
      let fa = compile_e_nd fr ops a model in
      fun i -> scalar_builtin name [ fa i ]
  | Ir.Ecall2 (name, a, b) ->
      incr ops;
      let fa = compile_e_nd fr ops a model in
      let fb = compile_e_nd fr ops b model in
      fun i -> scalar_builtin name [ fa i; fb i ]

let exec_elem fr ~dst ~model expr =
  match lookup fr model with
  | Vmat m ->
      let ops = ref 0 in
      let f = compile_e fr ops expr m in
      let r =
        if m.Dmat.full then
          Dmat.create_full ~rows:m.Dmat.rows ~cols:m.Dmat.cols
        else Dmat.create ~rows:m.Dmat.rows ~cols:m.Dmat.cols
      in
      let len = Dmat.local_len r in
      for i = 0 to len - 1 do
        r.Dmat.data.(i) <- f i
      done;
      Mpisim.Sim.flops (float_of_int (len * max 1 !ops));
      Hashtbl.replace fr.env dst (Vmat r)
  | Vnd t ->
      let ops = ref 0 in
      let f = compile_e_nd fr ops expr t in
      let r =
        if t.Ndarr.full then Ndarr.create_full t.Ndarr.dims
        else Ndarr.create t.Ndarr.dims
      in
      let len = Ndarr.local_len r in
      for i = 0 to len - 1 do
        r.Ndarr.data.(i) <- f i
      done;
      Mpisim.Sim.flops (float_of_int (len * max 1 !ops));
      Hashtbl.replace fr.env dst (Vnd r)
  | Vscalar _ | Vstr _ ->
      error "element-wise model '%s' is not a matrix or tensor" model

(* --- indices ------------------------------------------------------------ *)

(* MATLAB indices are 1-based; linear indexing over a matrix is
   column-major. *)
let elem_coords fr (m : Dmat.t) idx =
  match idx with
  | [ i ] ->
      let g = int_of_float (eval_scalar fr i) - 1 in
      if m.Dmat.rows = 1 then (0, g)
      else if m.Dmat.cols = 1 then (g, 0)
      else (g mod m.Dmat.rows, g / m.Dmat.rows)
  | [ i; j ] ->
      let a = int_of_float (eval_scalar fr i) - 1 in
      let b = int_of_float (eval_scalar fr j) - 1 in
      (a, b)
  | _ -> error "unsupported number of indices"

(* Full multi-index of a tensor element, 0-based, leading axis first;
   tensors take exactly one subscript per axis (no linear indexing). *)
let nd_coords fr (t : Ndarr.t) idx : int array =
  if List.length idx <> Ndarr.rank t then
    error "a rank-%d tensor must be indexed with exactly %d subscripts (got %d)"
      (Ndarr.rank t) (Ndarr.rank t) (List.length idx);
  Array.of_list (List.map (fun i -> int_of_float (eval_scalar fr i) - 1) idx)

let sel_indices fr (extent : int) (s : Ir.sel) : int array =
  match s with
  | Ir.Sel_all -> Array.init extent (fun i -> i)
  | Ir.Sel_scalar e -> [| int_of_float (eval_scalar fr e) - 1 |]
  | Ir.Sel_range (lo, step, hi) ->
      let lo = eval_scalar fr lo in
      let step = match step with Some s -> eval_scalar fr s | None -> 1. in
      let hi = eval_scalar fr hi in
      range_indices lo step hi
  | Ir.Sel_vec v ->
      let m = mat_of fr v in
      let dense = Dmat.to_dense m in
      Array.map (fun f -> int_of_float f - 1) dense

(* --- printing ----------------------------------------------------------- *)

let is_root () = Mpisim.Sim.rank () = 0

let print_scalar fr name v =
  if is_root () then
    if name = "" then Buffer.add_string fr.out (Printf.sprintf "%g\n" v)
    else Buffer.add_string fr.out (Printf.sprintf "%s = %g\n" name v)

(* --- instruction execution ---------------------------------------------- *)

let rec exec_inst fr (i : Ir.inst) =
  incr State.dispatched;
  fr.trace.(fr.rk) <- inst_name i;
  if is_lib_call i then incr fr.calls;
  match i with
  | Ir.Iscalar (v, Ir.Sstr s) -> Hashtbl.replace fr.env v (Vstr s)
  | Ir.Iscalar (v, Ir.Svar w)
    when match Hashtbl.find_opt fr.env w with
         | Some (Vstr _) -> true
         | _ -> false ->
      Hashtbl.replace fr.env v (lookup fr w)
  | Ir.Iscalar (v, s) -> Hashtbl.replace fr.env v (Vscalar (eval_scalar fr s))
  | Ir.Ielem { dst; model; expr } -> exec_elem fr ~dst ~model expr
  | Ir.Icopy (d, s) -> (
      match lookup fr s with
      | Vmat m ->
          (* memory traffic of the copy, at roughly one word per flop *)
          Mpisim.Sim.flops (float_of_int (Dmat.local_len m));
          Hashtbl.replace fr.env d (Vmat (Dmat.copy m))
      | Vnd t ->
          Mpisim.Sim.flops (float_of_int (Ndarr.local_len t));
          Hashtbl.replace fr.env d (Vnd (Ndarr.copy t))
      | v -> Hashtbl.replace fr.env d v)
  | Ir.Imatmul (d, a, b) ->
      Hashtbl.replace fr.env d (Vmat (Ops.matmul (mat_of fr a) (mat_of fr b)))
  | Ir.Imatmul_t (d, a, b) ->
      Hashtbl.replace fr.env d
        (Vmat (Ops.matmul_t (mat_of fr a) (mat_of fr b)))
  | Ir.Idot (d, a, b) ->
      Hashtbl.replace fr.env d (Vscalar (Ops.dot (mat_of fr a) (mat_of fr b)))
  | Ir.Itranspose (d, a) ->
      Hashtbl.replace fr.env d (Vmat (Ops.transpose (mat_of fr a)))
  | Ir.Idiag (d, a) -> Hashtbl.replace fr.env d (Vmat (Ops.diag (mat_of fr a)))
  | Ir.Iouter (d, a, b) ->
      Hashtbl.replace fr.env d (Vmat (Ops.outer (mat_of fr a) (mat_of fr b)))
  | Ir.Ireduce_all (d, k, a) ->
      let v =
        match lookup fr a with
        | Vnd t -> (
            match k with
            | Ir.Rmean -> Ops.nd_mean_all t
            | _ -> Ops.nd_reduce_all (rkind_to_red k) t)
        | _ -> (
            let m = mat_of fr a in
            match k with
            | Ir.Rmean -> Ops.mean_all m
            | _ -> Ops.reduce_all (rkind_to_red k) m)
      in
      Hashtbl.replace fr.env d (Vscalar v)
  | Ir.Ireduce_cols (d, k, a) ->
      let m = mat_of fr a in
      let v =
        match k with
        | Ir.Rmean -> Ops.mean_cols m
        | _ -> Ops.reduce_cols (rkind_to_red k) m
      in
      Hashtbl.replace fr.env d (Vmat v)
  | Ir.Inorm (d, a) -> Hashtbl.replace fr.env d (Vscalar (Ops.norm2 (mat_of fr a)))
  | Ir.Iscan (d, k, a) ->
      let sk = match k with Ir.Scumsum -> Ops.Cumsum | Ir.Scumprod -> Ops.Cumprod in
      Hashtbl.replace fr.env d (Vmat (Ops.cumulative sk (mat_of fr a)))
  | Ir.Isort { vdst; idst; arg } ->
      let sorted, perm =
        Ops.sort_vector ~with_index:(idst <> None) (mat_of fr arg)
      in
      Hashtbl.replace fr.env vdst (Vmat sorted);
      (match (idst, perm) with
      | Some d, Some p -> Hashtbl.replace fr.env d (Vmat p)
      | None, _ -> ()
      | Some _, None -> assert false)
  | Ir.Ireduce_loc { vdst; idst; kind; arg } ->
      let op = rkind_to_red kind in
      let v, i = Ops.reduce_with_index op (mat_of fr arg) in
      Hashtbl.replace fr.env vdst (Vscalar v);
      Hashtbl.replace fr.env idst (Vscalar (float_of_int i))
  | Ir.Itrapz (d, x, y) ->
      let x = Option.map (mat_of fr) x in
      Hashtbl.replace fr.env d (Vscalar (Ops.trapz ?x (mat_of fr y)))
  | Ir.Ishift (d, s, k) ->
      let k = int_of_float (eval_scalar fr k) in
      Hashtbl.replace fr.env d (Vmat (Ops.circshift (mat_of fr s) k))
  | Ir.Ibcast (d, m, idx) -> (
      match lookup fr m with
      | Vnd t ->
          Hashtbl.replace fr.env d
            (Vscalar (Ops.nd_bcast_elem t (nd_coords fr t idx)))
      | _ ->
          let mm = mat_of fr m in
          let i, j = elem_coords fr mm idx in
          Hashtbl.replace fr.env d (Vscalar (Ops.bcast_elem mm ~i ~j)))
  | Ir.Ibcast_batch (items, m) ->
      let mm = mat_of fr m in
      let coords = List.map (fun (_, idx) -> elem_coords fr mm idx) items in
      let values = Ops.bcast_elems mm coords in
      List.iteri
        (fun k (d, _) -> Hashtbl.replace fr.env d (Vscalar values.(k)))
        items
  | Ir.Ireduce_fused items ->
      let slots =
        List.map
          (fun (_, r) ->
            match r with
            | Ir.Fsum m -> Ops.Fsum (mat_of fr m)
            | Ir.Fmean m -> Ops.Fmean (mat_of fr m)
            | Ir.Fdot (a, b) -> Ops.Fdot (mat_of fr a, mat_of fr b)
            | Ir.Fnorm m -> Ops.Fnorm (mat_of fr m))
          items
      in
      let values = Ops.reduce_fused slots in
      List.iteri
        (fun k (d, _) -> Hashtbl.replace fr.env d (Vscalar values.(k)))
        items
  | Ir.Isetelem (m, idx, v) -> (
      match lookup fr m with
      | Vnd t ->
          let ix = nd_coords fr t idx in
          let value = eval_scalar fr v in
          Ops.nd_set_elem t ix value
      | _ ->
          let mm = mat_of fr m in
          let i, j = elem_coords fr mm idx in
          let value = eval_scalar fr v in
          Ops.set_elem mm ~i ~j value)
  | Ir.Iload { dst; file } -> (
      let path = Filename.concat fr.datadir file in
      match Mlang.Datafile.read path with
      | rows, cols, data ->
          Mpisim.Sim.flops (float_of_int (rows * cols));
          Hashtbl.replace fr.env dst (Vmat (Dmat.of_dense ~rows ~cols data))
      | exception Mlang.Datafile.Bad_data msg ->
          error "load(%S): %s" file msg)
  | Ir.Iconstruct { dst; kind; args } -> exec_construct fr dst kind args
  | Ir.Iliteral { dst; rows; cols; elems } ->
      let values = List.map (eval_scalar fr) elems in
      let dense = Array.of_list values in
      Hashtbl.replace fr.env dst (Vmat (Dmat.of_dense ~rows ~cols dense))
  | Ir.Isection { dst; src; sels } -> exec_section fr dst src sels
  | Ir.Isetsection { dst; sels; src } -> exec_setsection fr dst sels src
  | Ir.Iconcat { dst; grid_rows; grid_cols; parts } ->
      exec_concat fr dst grid_rows grid_cols parts
  | Ir.Icalluser { rets; name; args } -> exec_call fr rets name args
  | Ir.Iprint (name, Ir.Pscalar (Ir.Svar v))
    when match Hashtbl.find_opt fr.env v with
         | Some (Vstr _) -> true
         | _ -> false -> (
      match lookup fr v with
      | Vstr s ->
          if is_root () then
            if name = "" then Buffer.add_string fr.out (s ^ "\n")
            else Buffer.add_string fr.out (Printf.sprintf "%s = %s\n" name s)
      | _ -> assert false)
  | Ir.Iprint (name, Ir.Pscalar s) -> print_scalar fr name (eval_scalar fr s)
  | Ir.Iprint (name, Ir.Pmat v) -> (
      (* [format_root ~name:""] already omits the "name =" header for
         disp, so the text is used as is. *)
      match lookup fr v with
      | Vnd t -> (
          match Ndarr.format_root ~root:0 ~name t with
          | Some text when is_root () -> Buffer.add_string fr.out text
          | _ -> ())
      | _ -> (
          let m = mat_of fr v in
          match Dmat.format_root ~root:0 ~name m with
          | Some text when is_root () -> Buffer.add_string fr.out text
          | _ -> ()))
  | Ir.Iprint (name, Ir.Pstr s) ->
      if is_root () then
        if name = "" then Buffer.add_string fr.out (s ^ "\n")
        else Buffer.add_string fr.out (Printf.sprintf "%s = %s\n" name s)
  | Ir.Iprintf args -> (
      match args with
      | Ir.Sstr fmt :: rest ->
          let values =
            List.map
              (fun a ->
                match a with
                | Ir.Sstr s -> Mlang.Fmtutil.S s
                | _ -> Mlang.Fmtutil.F (eval_scalar fr a))
              rest
          in
          if is_root () then
            Buffer.add_string fr.out (Mlang.Fmtutil.format fmt values)
      | _ -> error "fprintf: first argument must be a format string")
  | Ir.Ierror msg -> error "%s" msg
  | Ir.Iif (branches, els) ->
      let rec pick = function
        | [] -> exec_block fr els
        | (c, blk) :: rest ->
            if truthy (eval_scalar fr c) then exec_block fr blk else pick rest
      in
      pick branches
  | Ir.Iwhile (c, blk) -> (
      try
        while truthy (eval_scalar fr c) do
          try exec_block fr blk with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ir.Ifor (v, start, step, stop, blk) -> (
      let start = eval_scalar fr start in
      let step = match step with Some s -> eval_scalar fr s | None -> 1. in
      let stop = eval_scalar fr stop in
      try
        let k = ref 0 in
        let continue_loop () =
          let x = start +. (float_of_int !k *. step) in
          if step >= 0. then x <= stop +. 1e-12 else x >= stop -. 1e-12
        in
        while continue_loop () do
          let x = start +. (float_of_int !k *. step) in
          Hashtbl.replace fr.env v (Vscalar x);
          (try exec_block fr blk with Continue_exc -> ());
          incr k
        done
      with Break_exc -> ())
  | Ir.Impi_rank d ->
      Hashtbl.replace fr.env d (Vscalar (float_of_int (Mpisim.Sim.rank ())))
  | Ir.Impi_size d ->
      Hashtbl.replace fr.env d (Vscalar (float_of_int (Mpisim.Sim.size ())))
  | Ir.Impi_send (dest, tag, v) ->
      let dst = int_of_float (eval_scalar fr dest) in
      let tag = int_of_float (eval_scalar fr tag) in
      let value =
        match v with
        | Ir.Ascalar (Ir.Sstr _) -> error "MPI_Send: cannot send a string"
        | Ir.Ascalar s -> Vscalar (eval_scalar fr s)
        | Ir.Amat m -> lookup fr m
      in
      State.mpi_send ~dst ~tag value
  | Ir.Impi_recv (d, src, tag, is_matrix) ->
      let src = int_of_float (eval_scalar fr src) in
      let tag = int_of_float (eval_scalar fr tag) in
      Hashtbl.replace fr.env d (State.mpi_recv ~src ~tag ~is_matrix)
  | Ir.Impi_bcast (d, root, v) ->
      let root = int_of_float (eval_scalar fr root) in
      let value =
        match v with
        | Ir.Ascalar (Ir.Sstr _) -> error "MPI_Bcast: cannot send a string"
        | Ir.Ascalar s -> Vscalar (eval_scalar fr s)
        | Ir.Amat m -> lookup fr m
      in
      Hashtbl.replace fr.env d (State.mpi_bcast ~root value)
  | Ir.Impi_probe (d, src, tag) ->
      let src = int_of_float (eval_scalar fr src) in
      let tag = int_of_float (eval_scalar fr tag) in
      Hashtbl.replace fr.env d (Vscalar (State.mpi_probe ~src ~tag))
  | Ir.Ibreak -> raise Break_exc
  | Ir.Icontinue -> raise Continue_exc
  | Ir.Ireturn -> raise Return_exc

and exec_construct fr dst kind args =
  match (kind, args) with
  | (Ir.Czeros | Ir.Cones | Ir.Crand | Ir.Crandn), _ :: _ :: _ :: _ ->
      (* three or more size arguments: a rank-N tensor, distributed
         over its leading axis.  rand/randn advance the replicated
         sequence number first, exactly like the matrix forms. *)
      (match kind with
      | Ir.Crand | Ir.Crandn -> fr.rand_calls <- fr.rand_calls + 1
      | _ -> ());
      let seed = fr.seed + fr.rand_calls in
      let dims =
        Array.of_list
          (List.map (fun a -> int_of_float (eval_scalar fr a)) args)
      in
      let t =
        match kind with
        | Ir.Czeros -> Ndarr.create dims
        | Ir.Cones -> Ndarr.init dims (fun _ -> 1.)
        | Ir.Crand -> Ndarr.init dims (fun g -> Runtime.Rng.uniform ~seed g)
        | Ir.Crandn -> Ndarr.init dims (fun g -> Runtime.Rng.normal ~seed g)
        | _ -> assert false
      in
      let len = Ndarr.local_len t in
      if len > 0 then Mpisim.Sim.flops (float_of_int len);
      Hashtbl.replace fr.env dst (Vnd t)
  | _ -> exec_construct_mat fr dst kind args

and exec_construct_mat fr dst kind args =
  let arg n = List.nth args n in
  let dims () =
    match args with
    | [ n ] ->
        let n = int_of_float (eval_scalar fr n) in
        (n, n)
    | [ r; c ] ->
        let r = int_of_float (eval_scalar fr r) in
        let c = int_of_float (eval_scalar fr c) in
        (r, c)
    | _ -> error "constructor expects 1 or 2 size arguments"
  in
  let m =
    match kind with
    | Ir.Czeros ->
        let r, c = dims () in
        Dmat.create ~rows:r ~cols:c
    | Ir.Cones ->
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun _ -> 1.)
    | Ir.Ceye ->
        let r, c = dims () in
        Dmat.init_rc ~rows:r ~cols:c (fun i j -> if i = j then 1. else 0.)
    | Ir.Crand ->
        fr.rand_calls <- fr.rand_calls + 1;
        let seed = fr.seed + fr.rand_calls in
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun g -> Runtime.Rng.uniform ~seed g)
    | Ir.Crandn ->
        fr.rand_calls <- fr.rand_calls + 1;
        let seed = fr.seed + fr.rand_calls in
        let r, c = dims () in
        Dmat.init ~rows:r ~cols:c (fun g -> Runtime.Rng.normal ~seed g)
    | Ir.Clinspace ->
        let a = eval_scalar fr (arg 0) in
        let b = eval_scalar fr (arg 1) in
        let n = int_of_float (eval_scalar fr (arg 2)) in
        let d = if n > 1 then (b -. a) /. float_of_int (n - 1) else 0. in
        Dmat.init ~rows:1 ~cols:n (fun g -> a +. (float_of_int g *. d))
    | Ir.Crange ->
        let lo = eval_scalar fr (arg 0) in
        let step = eval_scalar fr (arg 1) in
        let hi = eval_scalar fr (arg 2) in
        let n =
          if step = 0. then 0
          else
            let raw = ((hi -. lo) /. step) +. 1e-9 in
            if raw < 0. then 0 else int_of_float (Float.floor raw) + 1
        in
        Dmat.init ~rows:1 ~cols:(max n 0) (fun g ->
            lo +. (float_of_int g *. step))
  in
  let len = Dmat.local_len m in
  if len > 0 then Mpisim.Sim.flops (float_of_int len);
  Hashtbl.replace fr.env dst (Vmat m)

and exec_section fr dst src sels =
  match lookup fr src with
  | Vnd t ->
      if List.length sels <> Ndarr.rank t then
        error
          "a rank-%d tensor must be sectioned with exactly %d subscripts"
          (Ndarr.rank t) (Ndarr.rank t);
      let idxs =
        Array.of_list
          (List.mapi (fun axis s -> sel_indices fr t.Ndarr.dims.(axis) s) sels)
      in
      Hashtbl.replace fr.env dst (Vnd (Ops.nd_section t idxs))
  | _ -> exec_section_mat fr dst src sels

and exec_section_mat fr dst src sels =
  let m = mat_of fr src in
  match sels with
  | [ s ] ->
      if not (Dmat.is_vector m) then
        error "linear sections of a full matrix are not supported";
      let n = Dmat.numel m in
      let idx = sel_indices fr n s in
      let len = Array.length idx in
      let rows, cols = if m.Dmat.cols = 1 then (len, 1) else (1, len) in
      Hashtbl.replace fr.env dst (Vmat (Ops.section_linear m idx ~rows ~cols))
  | [ s1; s2 ] ->
      let ri = sel_indices fr m.Dmat.rows s1 in
      let rj = sel_indices fr m.Dmat.cols s2 in
      Hashtbl.replace fr.env dst (Vmat (Ops.section m ri rj))
  | _ -> error "unsupported number of index selectors"

(* dst(sels) = src: every rank walks the selected positions and the
   owner of each target element stores the value (owner computes). *)
and exec_setsection fr dst sels src =
  match lookup fr dst with
  | Vnd t ->
      if List.length sels <> Ndarr.rank t then
        error
          "a rank-%d tensor must be sectioned with exactly %d subscripts"
          (Ndarr.rank t) (Ndarr.rank t);
      let idxs =
        Array.of_list
          (List.mapi (fun axis s -> sel_indices fr t.Ndarr.dims.(axis) s) sels)
      in
      let n = Array.fold_left (fun acc s -> acc * Array.length s) 1 idxs in
      let value =
        match src with
        | Ir.Ascalar s ->
            let c = eval_scalar fr s in
            fun _ -> c
        | Ir.Amat v -> (
            match lookup fr v with
            | Vnd s ->
                if s.Ndarr.full <> t.Ndarr.full then
                  error
                    "section assignment cannot mix a replicated \
                     (message-passing) tensor with a distributed one";
                if Ndarr.numel s <> n then
                  error "section assignment size mismatch";
                let dense = Ndarr.to_dense s in
                fun k -> dense.(k)
            | Vmat s ->
                (* a matrix source fills the selection in row-major
                   order when the element counts agree (T(k,:,:) = A) *)
                if s.Dmat.full <> t.Ndarr.full then
                  error
                    "section assignment cannot mix a replicated \
                     (message-passing) matrix with a distributed tensor";
                if Dmat.numel s <> n then
                  error "section assignment size mismatch";
                let dense = Dmat.to_dense s in
                fun k -> dense.(k)
            | Vscalar c -> fun _ -> c
            | Vstr _ -> error "cannot store a string into a tensor")
      in
      Ops.nd_set_section t idxs value
  | _ -> exec_setsection_mat fr dst sels src

and exec_setsection_mat fr dst sels src =
  let m = mat_of fr dst in
  let value =
    match src with
    | Ir.Ascalar s ->
        let c = eval_scalar fr s in
        fun _ -> c
    | Ir.Amat v ->
        let s = mat_of fr v in
        if not (Dmat.same_locality m s) then
          error
            "section assignment cannot mix a replicated (message-passing) \
             matrix with a distributed one";
        let dense = Dmat.to_dense s in
        fun k ->
          if k >= Array.length dense then
            error "section assignment size mismatch"
          else dense.(k)
  in
  let check_src_len n =
    match src with
    | Ir.Amat v ->
        let s = mat_of fr v in
        if Dmat.numel s <> n then error "section assignment size mismatch"
    | Ir.Ascalar _ -> ()
  in
  (match sels with
  | [ s ] ->
      if not (Dmat.is_vector m) then
        error "linear section assignment on a full matrix is not supported";
      let n = Dmat.numel m in
      let idx = sel_indices fr n s in
      check_src_len (Array.length idx);
      Array.iteri
        (fun k g ->
          if g < 0 || g >= n then error "index out of bounds";
          let i, j = if m.Dmat.cols = 1 then (g, 0) else (0, g) in
          if Dmat.owner m ~i ~j then Dmat.set_local m ~i ~j (value k))
        idx;
      Mpisim.Sim.flops (float_of_int (Array.length idx))
  | [ s1; s2 ] ->
      let ri = sel_indices fr m.Dmat.rows s1 in
      let rj = sel_indices fr m.Dmat.cols s2 in
      check_src_len (Array.length ri * Array.length rj);
      Array.iteri
        (fun a i ->
          Array.iteri
            (fun b j ->
              if i < 0 || i >= m.Dmat.rows || j < 0 || j >= m.Dmat.cols then
                error "index out of bounds";
              if Dmat.owner m ~i ~j then
                Dmat.set_local m ~i ~j (value ((a * Array.length rj) + b)))
            rj)
        ri;
      Mpisim.Sim.flops (float_of_int (Array.length ri * Array.length rj))
  | _ -> error "unsupported number of index selectors")

(* [A, B; C, D]: gather the blocks, assemble densely, redistribute. *)
and exec_concat fr dst grid_rows grid_cols parts =
  let blocks = List.map (fun v -> mat_of fr v) parts in
  let n_full = List.length (List.filter (fun b -> b.Dmat.full) blocks) in
  if n_full > 0 && n_full < List.length blocks then
    error
      "matrix literal cannot mix replicated (message-passing) matrices with \
       distributed ones";
  let dense_blocks = List.map (fun b -> (b, Dmat.to_dense b)) blocks in
  let grid0 =
    Array.init grid_rows (fun i ->
        Array.init grid_cols (fun j ->
            List.nth dense_blocks ((i * grid_cols) + j)))
  in
  (* MATLAB drops empty operands from a literal: [[], 1, 2] is [1, 2],
     and a grid row of nothing but empties contributes no rows. *)
  let grid =
    Array.to_list grid0
    |> List.filter_map (fun row ->
           match
             List.filter
               (fun (b, _) -> Dmat.numel b > 0)
               (Array.to_list row)
           with
           | [] -> None
           | kept -> Some (Array.of_list kept))
    |> Array.of_list
  in
  if Array.length grid = 0 then
    Hashtbl.replace fr.env dst (Vmat (Dmat.create ~rows:0 ~cols:0))
  else begin
  (* widths/heights per grid row and column *)
  let row_heights =
    Array.map
      (fun row ->
        let h = (fst row.(0)).Dmat.rows in
        Array.iter
          (fun (b, _) ->
            if b.Dmat.rows <> h then
              error "inconsistent row counts in matrix literal")
          row;
        h)
      grid
  in
  let total_cols =
    Array.fold_left (fun acc (b, _) -> acc + b.Dmat.cols) 0 grid.(0)
  in
  Array.iter
    (fun row ->
      let w = Array.fold_left (fun acc (b, _) -> acc + b.Dmat.cols) 0 row in
      if w <> total_cols then
        error "inconsistent column counts in matrix literal")
    grid;
  let total_rows = Array.fold_left ( + ) 0 row_heights in
  let out = Array.make (total_rows * total_cols) 0. in
  let roff = ref 0 in
  Array.iter
    (fun row ->
      let h = (fst row.(0)).Dmat.rows in
      let coff = ref 0 in
      Array.iter
        (fun (b, data) ->
          for i = 0 to h - 1 do
            Array.blit data
              (i * b.Dmat.cols)
              out
              (((!roff + i) * total_cols) + !coff)
              b.Dmat.cols
          done;
          coff := !coff + b.Dmat.cols)
        row;
      roff := !roff + h)
    grid;
  Mpisim.Sim.flops (float_of_int (total_rows * total_cols));
  let m =
    if n_full > 0 then Dmat.of_full ~rows:total_rows ~cols:total_cols out
    else Dmat.of_dense ~rows:total_rows ~cols:total_cols out
  in
  Hashtbl.replace fr.env dst (Vmat m)
  end

and exec_call fr rets name args =
  let f =
    match Hashtbl.find_opt fr.funcs name with
    | Some f -> f
    | None -> error "unknown function '%s'" name
  in
  if List.length args <> List.length f.Ir.f_params then
    error "function '%s' expects %d arguments" name (List.length f.Ir.f_params);
  let callee =
    {
      fr with
      env = Hashtbl.create 16;
    }
  in
  List.iter2
    (fun (p, _) a ->
      let v =
        match a with
        | Ir.Ascalar (Ir.Sstr s) -> Vstr s
        | Ir.Ascalar s -> Vscalar (eval_scalar fr s)
        | Ir.Amat v -> (
            match lookup fr v with
            | Vmat m -> Vmat (Dmat.copy m) (* call by value *)
            | Vnd t -> Vnd (Ndarr.copy t)
            | other -> other)
      in
      Hashtbl.replace callee.env p v)
    f.Ir.f_params args;
  (try exec_block callee f.Ir.f_body with Return_exc -> ());
  fr.rand_calls <- callee.rand_calls;
  List.iter2
    (fun r (rv, _) ->
      match Hashtbl.find_opt callee.env rv with
      | Some v -> Hashtbl.replace fr.env r v
      | None -> error "function '%s' did not assign return value '%s'" name rv)
    rets f.Ir.f_rets

and exec_block fr (b : Ir.block) = List.iter (exec_inst fr) b

(* --- coordinated checkpointing ------------------------------------------- *)

type pc = State.pc = Ptop of int | Ploop of int * int * (float * float * float) option

type snapshot = State.snapshot = {
  sn_boundary : int;
  sn_pc : pc;
  sn_env : (string * value) array;
  sn_rand_calls : int;
  sn_calls : int;
  sn_out : string;
}

let copy_value = State.copy_value

(* Snapshots deep-copy in both directions: matrices are mutated in
   place (element and section assignment), so sharing would let the
   next attempt corrupt the very state it must roll back to. *)
let env_snapshot env =
  Array.of_list (Hashtbl.fold (fun k v acc -> (k, copy_value v) :: acc) env [])

let env_restore env saved =
  Hashtbl.reset env;
  Array.iter (fun (k, v) -> Hashtbl.replace env k (copy_value v)) saved

type ck = State.ck = {
  ck_interval : float;
  ck_slots : snapshot list array;
  mutable ck_next : float;
  mutable ck_boundary : int;
}

let at_boundary fr ck pcv =
  fr.trace.(fr.rk) <- "checkpoint vote";
  State.at_boundary ck ~rk:fr.rk
    ~mk_env:(fun () -> env_snapshot fr.env)
    ~rand_calls:fr.rand_calls ~calls:!(fr.calls) ~out:fr.out pcv

(* Top-level execution with checkpoint boundaries: before every plain
   statement and at the top of every iteration of a top-level loop (the
   apps' hot loops are top level, so long runs cross many boundaries).
   [resume] skips straight to a snapshot's program counter; nested
   statements need no skipping because boundaries are only ever taken
   at top level. *)
let exec_top fr ck resume (body : Ir.block) =
  let stmts = Array.of_list body in
  let start_i, initial_loop =
    match resume with
    | None -> (0, None)
    | Some (Ptop i) -> (i, None)
    | Some (Ploop (i, k, bounds)) -> (i, Some (k, bounds))
  in
  let loop_resume = ref initial_loop in
  for i = start_i to Array.length stmts - 1 do
    match stmts.(i) with
    | Ir.Ifor (v, start_e, step_e, stop_e, blk) ->
        let k0, (start, step, stop) =
          match !loop_resume with
          | Some (k, Some bounds) -> (k, bounds)
          | _ ->
              let start = eval_scalar fr start_e in
              let step =
                match step_e with Some s -> eval_scalar fr s | None -> 1.
              in
              let stop = eval_scalar fr stop_e in
              (0, (start, step, stop))
        in
        loop_resume := None;
        (try
           let k = ref k0 in
           let continue_loop () =
             let x = start +. (float_of_int !k *. step) in
             if step >= 0. then x <= stop +. 1e-12 else x >= stop -. 1e-12
           in
           while continue_loop () do
             at_boundary fr ck (Ploop (i, !k, Some (start, step, stop)));
             let x = start +. (float_of_int !k *. step) in
             Hashtbl.replace fr.env v (Vscalar x);
             (try exec_block fr blk with Continue_exc -> ());
             incr k
           done
         with Break_exc -> ())
    | Ir.Iwhile (c, blk) ->
        let k0 = match !loop_resume with Some (k, None) -> k | _ -> 0 in
        loop_resume := None;
        (try
           let k = ref k0 in
           while truthy (eval_scalar fr c) do
             at_boundary fr ck (Ploop (i, !k, None));
             (try exec_block fr blk with Continue_exc -> ());
             incr k
           done
         with Break_exc -> ())
    | inst ->
        loop_resume := None;
        at_boundary fr ck (Ptop i);
        exec_inst fr inst
  done

(* --- entry points -------------------------------------------------------- *)

type captured = State.captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array

type outcome = State.outcome = {
  output : string;
  captures : (string * captured) list;
  lib_calls : int;
  report : Mpisim.Sim.report;
}

type failure_kind = State.failure_kind =
  | Ftimeout
  | Fprotocol
  | Fkilled
  | Fpeer
  | Fexhausted
  | Fdeadlock
  | Fruntime

let classify_failure = State.classify_failure
let recoverable = State.recoverable

type run_result = State.run_result =
  | Complete of outcome
  | Partial of {
      failed_rank : int;
      operation : string;
      detail : string;
      kind : failure_kind;
      report : Mpisim.Sim.report;
    }

let describe_failure = State.describe_failure

(* One simulated execution of [prog]: build the per-rank frames (optionally
   restored from [restore]'s snapshots), run to completion or failure, and
   return the structured result together with the sim report. *)
let attempt ?(capture = []) ~seed ~datadir ~machine ~nprocs ~attempt:att
    ~ckpt_interval ~slots ~restore (prog : Ir.prog) :
    run_result * Mpisim.Sim.report =
  let out = Buffer.create 256 in
  (match restore with
  | Some (snaps : snapshot array) -> Buffer.add_string out snaps.(0).sn_out
  | None -> ());
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.f_name f)
    prog.Ir.p_funcs;
  let trace = Array.make nprocs "startup" in
  Array.fill slots 0 nprocs [];
  let outcome, report =
    Mpisim.Sim.run_report ~attempt:att ~machine ~nprocs (fun rank ->
        let fr =
          {
            env = Hashtbl.create 64;
            prog;
            funcs;
            out;
            rand_calls = 0;
            calls = ref 0;
            seed;
            datadir;
            rk = rank;
            trace;
          }
        in
        let resume =
          match restore with
          | None -> None
          | Some snaps ->
              let s = snaps.(rank) in
              env_restore fr.env s.sn_env;
              fr.rand_calls <- s.sn_rand_calls;
              fr.calls := s.sn_calls;
              Some s.sn_pc
        in
        if ckpt_interval > 0. then begin
          let ck =
            {
              ck_interval = ckpt_interval;
              ck_slots = slots;
              ck_next = 0.;
              ck_boundary = 0;
            }
          in
          exec_top fr ck resume prog.Ir.p_body
        end
        else exec_block fr prog.Ir.p_body;
        let caps =
          List.filter_map
            (fun name ->
              match Hashtbl.find_opt fr.env name with
              | Some (Vscalar f) -> Some (name, Cscalar f)
              | Some (Vmat m) ->
                  let dense = Dmat.to_dense m in
                  Some (name, Cmat (m.Dmat.rows, m.Dmat.cols, dense))
              | Some (Vnd t) ->
                  Some (name, Cnd (Array.copy t.Ndarr.dims, Ndarr.to_dense t))
              | Some (Vstr _) | None -> None)
            capture
        in
        (caps, !(fr.calls)))
  in
  let result =
    match outcome with
    | Ok results ->
        let captures, lib_calls = results.(0) in
        Complete { output = Buffer.contents out; captures; lib_calls; report }
    | Error (Mpisim.Sim.Rank_failure { rank; exn }) ->
        Partial
          {
            failed_rank = rank;
            operation = trace.(rank);
            detail = describe_failure exn;
            kind = classify_failure exn;
            report;
          }
    | Error e -> raise e (* Deadlock and internal errors keep raising *)
  in
  (result, report)

(* Run [prog] on [nprocs] simulated processors of [machine].  [capture]
   names variables whose final values are gathered for verification.
   A failure on any rank — run-time errors, receive timeouts under a
   fault model, exhausted retransmission budgets, permanent kills —
   degrades to a structured [Partial] naming the rank, the operation it
   was executing, the failure class, and the sim report (fault
   counters) accumulated up to the abort. *)
let run_result ?capture ?(seed = 42) ?(datadir = ".") ~machine ~nprocs
    (prog : Ir.prog) : run_result =
  fst
    (attempt ?capture ~seed ~datadir ~machine ~nprocs ~attempt:0
       ~ckpt_interval:0. ~slots:(Array.make nprocs []) ~restore:None prog)

let run ?capture ?seed ?datadir ~machine ~nprocs prog =
  match run_result ?capture ?seed ?datadir ~machine ~nprocs prog with
  | Complete o -> o
  | Partial p -> raise (Runtime_error p.detail)

(* --- the recovery driver ------------------------------------------------- *)

type recovery = State.recovery = {
  r_result : run_result;
  r_attempts : int;
  r_gave_up : bool;
  r_reports : Mpisim.Sim.report list;
  r_penalty : float;
}

let run_recovering ?capture ?(seed = 42) ?(datadir = ".")
    ?(ckpt_interval = 0.) ?(max_recoveries = 0) ~machine ~nprocs
    (prog : Ir.prog) : recovery =
  State.run_recovering_with ~nprocs ~ckpt_interval ~max_recoveries
    (fun ~attempt:att ~slots ~restore ->
      attempt ?capture ~seed ~datadir ~machine ~nprocs ~attempt:att
        ~ckpt_interval ~slots ~restore prog)
