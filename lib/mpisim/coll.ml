(* Collective operations built from point-to-point messages, so their
   cost emerges from the machine's link model.  All ranks must call the
   same collectives in the same order (the compiled programs are loosely
   synchronous, which guarantees this).

   Broadcast and reduce use binomial trees (log P rounds); allgather
   uses a ring (P-1 rounds of neighbour exchange), which was the
   standard implementation on mid-90s MPI stacks.

   All point-to-point traffic is routed through [Reliable], which is a
   transparent pass-through to [Sim] unless the machine requests the
   ack/retry layer -- in which case the collectives survive dropped,
   duplicated, and delayed messages with unchanged results. *)

type op = Sum | Prod | Min | Max | Land | Lor

let apply_op op a b =
  match op with
  | Sum -> a +. b
  | Prod -> a *. b
  | Min | Max ->
      (* MATLAB min/max ignore NaN, so the combine skips NaN operands;
         ranks with nothing to contribute send NaN as the identity *)
      if Float.is_nan a then b
      else if Float.is_nan b then a
      else if op = Min then Float.min a b
      else Float.max a b
  | Land -> if a <> 0. && b <> 0. then 1. else 0.
  | Lor -> if a <> 0. || b <> 0. then 1. else 0.

let tag_bcast = 1001
let tag_reduce = 1002
let tag_gather = 1003
let tag_ring = 1004
let tag_allreduce = 1006

(* Element-wise in-place combine, accounting one flop per element. *)
let combine op (acc : float array) (other : float array) =
  for i = 0 to Array.length acc - 1 do
    acc.(i) <- apply_op op acc.(i) other.(i)
  done;
  Sim.flops (float_of_int (Array.length acc))

(* Relative-rank helpers: the tree collectives rotate ranks so the
   root sits at relative rank 0. *)
let rel_of ~root me p = (me - root + p) mod p
let abs_of ~root rel p = (rel + root) mod p

(* The binomial-tree schedule shared by [bcast] and [reduce]: for
   relative rank [rel] among [p] ranks, the in-range child partners
   (at [rel + mask] for every power-of-two mask below the first set
   bit of [rel]) in ascending mask order, and the parent partner (at
   [rel - first_set_bit rel]; [None] for the root).  The two
   collectives walk the same tree in opposite directions: bcast
   receives from the parent and then feeds the children, reduce
   drains the children and then reports to the parent. *)
let tree_schedule p rel =
  let children = ref [] and parent = ref None in
  let mask = ref 1 in
  while !mask < p && !parent = None do
    if rel land !mask <> 0 then parent := Some (rel - !mask)
    else begin
      let c = rel + !mask in
      if c < p then children := c :: !children
    end;
    mask := !mask * 2
  done;
  (List.rev !children, !parent)

(* Linear broadcast: the root sends to every rank directly.  Used
   outright when P <= 2 -- the tree degenerates to the same single
   message without the mask bookkeeping -- and kept as the ablation
   baseline for the binomial tree (O(P) root serial time instead of
   O(log P) rounds). *)
let bcast_linear ~root (data : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if p = 1 then data
  else if me = root then begin
    for dst = 0 to p - 1 do
      if dst <> root then Reliable.send ~dst ~tag:tag_bcast (Sim.Floats data)
    done;
    data
  end
  else Reliable.recv_floats ~src:root ~tag:tag_bcast

(* Binomial-tree broadcast of a float array rooted at [root].
   Children are fed in descending-mask order, largest subtree first. *)
let bcast ~root (data : float array) : float array =
  let p = Sim.size () in
  if p <= 2 then bcast_linear ~root data
  else begin
    let me = Sim.rank () in
    let rel = rel_of ~root me p in
    let children, parent = tree_schedule p rel in
    let buf =
      match parent with
      | None -> data
      | Some prel ->
          Reliable.recv_floats ~src:(abs_of ~root prel p) ~tag:tag_bcast
    in
    List.iter
      (fun crel ->
        Reliable.send ~dst:(abs_of ~root crel p) ~tag:tag_bcast
          (Sim.Floats buf))
      (List.rev children);
    buf
  end

(* Binomial-tree reduction to [root]; every rank contributes [data],
   the root's return value holds the element-wise combination.  Other
   ranks get their partial result (callers use allreduce when everyone
   needs the answer). *)
let reduce ~root ~op (data : float array) : float array =
  let p = Sim.size () in
  if p = 1 then data
  else begin
    let me = Sim.rank () in
    let rel = rel_of ~root me p in
    let children, parent = tree_schedule p rel in
    let acc = Array.copy data in
    List.iter
      (fun crel ->
        let other =
          Reliable.recv_floats ~src:(abs_of ~root crel p) ~tag:tag_reduce
        in
        combine op acc other)
      children;
    (match parent with
    | None -> ()
    | Some prel ->
        Reliable.send ~dst:(abs_of ~root prel p) ~tag:tag_reduce
          (Sim.Floats acc));
    acc
  end

(* Recursive-doubling allreduce: every rank ends with the element-wise
   combination in log P rounds of pairwise exchange, instead of the
   2 log P rounds of reduce-then-broadcast.  The combination order is
   fixed by rank -- lower-rank data always goes on the left -- so every
   rank produces a bit-identical result (required by the loosely
   synchronous model, where the value often steers replicated control
   flow) with the same bracketing as the binomial reduce tree.
   Non-power-of-two sizes fold the surplus onto the power-of-two core
   first (the lowest [2*(P - 2^k)] ranks pair up, evens passing their
   contribution to their odd neighbour) and hand the surplus ranks the
   finished result afterwards. *)
let allreduce ~op (data : float array) : float array =
  let p = Sim.size () in
  if p = 1 then Array.copy data
  else begin
    let me = Sim.rank () in
    let pof2 = ref 1 in
    while !pof2 * 2 <= p do
      pof2 := !pof2 * 2
    done;
    let pof2 = !pof2 in
    let rem = p - pof2 in
    let acc = ref (Array.copy data) in
    let newrank =
      if me < 2 * rem then
        if me land 1 = 0 then begin
          Reliable.send ~dst:(me + 1) ~tag:tag_allreduce (Sim.Floats !acc);
          -1
        end
        else begin
          let other = Reliable.recv_floats ~src:(me - 1) ~tag:tag_allreduce in
          (* the sender is the lower rank: its data goes on the left *)
          let merged = Array.copy other in
          combine op merged !acc;
          acc := merged;
          me / 2
        end
      else me - rem
    in
    (if newrank >= 0 then
       let real r = if r < rem then (2 * r) + 1 else r + rem in
       let mask = ref 1 in
       while !mask < pof2 do
         let partner = real (newrank lxor !mask) in
         Reliable.send ~dst:partner ~tag:tag_allreduce (Sim.Floats !acc);
         let other = Reliable.recv_floats ~src:partner ~tag:tag_allreduce in
         if newrank land !mask <> 0 then begin
           (* the partner's block sits to our left *)
           let merged = Array.copy other in
           combine op merged !acc;
           acc := merged
         end
         else combine op !acc other;
         mask := !mask * 2
       done);
    if me < 2 * rem then
      if me land 1 = 0 then
        acc := Reliable.recv_floats ~src:(me + 1) ~tag:tag_allreduce
      else Reliable.send ~dst:(me - 1) ~tag:tag_allreduce (Sim.Floats !acc);
    !acc
  end

let barrier () = ignore (allreduce ~op:Sum [| 0. |])

(* Gather variable-sized blocks to [root]; the root receives blocks in
   rank order and returns the concatenation, other ranks return [||]. *)
let gatherv ~root ~counts (local : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if p = 1 then Array.copy local
  else if me = root then begin
    let total = Array.fold_left ( + ) 0 counts in
    let out = Array.make total 0. in
    let off = ref 0 in
    for r = 0 to p - 1 do
      let block =
        if r = root then local else Reliable.recv_floats ~src:r ~tag:tag_gather
      in
      Array.blit block 0 out !off counts.(r);
      off := !off + counts.(r)
    done;
    out
  end
  else begin
    Reliable.send ~dst:root ~tag:tag_gather (Sim.Floats local);
    [||]
  end

(* Above this size the ring allgather's P-1 rounds (P(P-1) messages
   total) dominate a large run, so allgatherv switches to a Bruck-style
   doubling schedule: O(P log P) messages.  No paper-scale run (P <= 16)
   or bench baseline ever crosses the threshold, so all historical
   timings are preserved bit-for-bit. *)
let ring_max = 64

(* Bruck-style doubling allgather: after round k every rank holds the
   window of min(2^k, p) consecutive blocks (mod p) starting at its
   own.  Each round it sends its leading blocks one window to the left
   and receives the same-shaped extension from one window to the right,
   so the window doubles until it wraps: ceil(log2 p) rounds, one send
   and one receive per rank per round.  Counts are globally known, so
   the packing is deterministic; every rank sends before it receives
   and sends are eager, so the schedule cannot deadlock. *)
let allgatherv_doubling ~counts ~offsets ~(out : float array) =
  let p = Sim.size () in
  let me = Sim.rank () in
  let w = ref 1 in
  while !w < p do
    let nblocks = min !w (p - !w) in
    let dst = (me - !w + p) mod p and src = (me + !w) mod p in
    let len = ref 0 in
    for j = 0 to nblocks - 1 do
      len := !len + counts.((me + j) mod p)
    done;
    let buf = Array.make !len 0. in
    let off = ref 0 in
    for j = 0 to nblocks - 1 do
      let b = (me + j) mod p in
      Array.blit out offsets.(b) buf !off counts.(b);
      off := !off + counts.(b)
    done;
    Reliable.send ~dst ~tag:tag_ring (Sim.Floats buf);
    let incoming = Reliable.recv_floats ~src ~tag:tag_ring in
    let off = ref 0 in
    for j = 0 to nblocks - 1 do
      let b = (src + j) mod p in
      Array.blit incoming !off out offsets.(b) counts.(b);
      off := !off + counts.(b)
    done;
    w := !w + nblocks
  done

(* Allgather of variable-sized blocks: every rank ends with the
   concatenation of all blocks in rank order.  Ring exchange (P-1
   rounds of neighbour traffic, the standard mid-90s implementation)
   up to [ring_max] ranks, doubling beyond. *)
let allgatherv ~counts (local : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if Array.length local <> counts.(me) then
    invalid_arg "allgatherv: local block size disagrees with counts";
  if p = 1 then Array.copy local
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    let offsets = Array.make p 0 in
    for r = 1 to p - 1 do
      offsets.(r) <- offsets.(r - 1) + counts.(r - 1)
    done;
    let out = Array.make total 0. in
    Array.blit local 0 out offsets.(me) counts.(me);
    if p > ring_max then allgatherv_doubling ~counts ~offsets ~out
    else begin
      let right = (me + 1) mod p and left = (me - 1 + p) mod p in
      (* At step s we forward the block of rank (me - s + p) mod p. *)
      let current = ref (Array.copy local) in
      for s = 1 to p - 1 do
        Reliable.send ~dst:right ~tag:tag_ring (Sim.Floats !current);
        let incoming = Reliable.recv_floats ~src:left ~tag:tag_ring in
        let owner = (me - s + p) mod p in
        Array.blit incoming 0 out offsets.(owner) counts.(owner);
        current := incoming
      done
    end;
    out
  end

let tag_scan = 1005

(* Exclusive prefix scan of one scalar per rank (recursive doubling,
   log P rounds): rank r returns the op-fold of ranks 0..r-1's values
   ([identity] on rank 0).  Each round carries the running *inclusive*
   value so prefixes compose associatively. *)
let exscan ~op ~identity (x : float) : float =
  let p = Sim.size () in
  let me = Sim.rank () in
  let excl = ref identity and incl = ref x in
  let d = ref 1 in
  while !d < p do
    if me + !d < p then
      Reliable.send ~dst:(me + !d) ~tag:tag_scan (Sim.Floats [| !incl |]);
    if me - !d >= 0 then begin
      match Reliable.recv_floats ~src:(me - !d) ~tag:tag_scan with
      | [| below_incl |] ->
          excl := apply_op op below_incl !excl;
          incl := apply_op op below_incl !incl;
          Sim.flops 2.
      | _ ->
          raise
            (Sim.Protocol_error
               {
                 rank = me;
                 src = me - !d;
                 tag = tag_scan;
                 detail = "exscan: expected a one-element payload";
               })
    end;
    d := !d * 2
  done;
  !excl

(* Scalar conveniences used by the run-time library. *)
let allreduce_scalar ~op x =
  match allreduce ~op [| x |] with [| y |] -> y | _ -> assert false

let bcast_scalar ~root x =
  match bcast ~root [| x |] with [| y |] -> y | _ -> assert false

(* One-bit agreement: true on every rank iff true on any rank.  The
   checkpoint machinery votes with this at every candidate boundary;
   because it is an allreduce, every rank leaves with the same verdict
   or nobody leaves at all -- there is no state in which some ranks
   checkpoint and others do not. *)
let vote b =
  allreduce_scalar ~op:Lor (if b then 1. else 0.) <> 0.
