(* Collective operations built from point-to-point messages, so their
   cost emerges from the machine's link model.  All ranks must call the
   same collectives in the same order (the compiled programs are loosely
   synchronous, which guarantees this).

   Broadcast and reduce use binomial trees (log P rounds); allgather
   uses a ring (P-1 rounds of neighbour exchange), which was the
   standard implementation on mid-90s MPI stacks.

   All point-to-point traffic is routed through [Reliable], which is a
   transparent pass-through to [Sim] unless the machine requests the
   ack/retry layer -- in which case the collectives survive dropped,
   duplicated, and delayed messages with unchanged results. *)

type op = Sum | Prod | Min | Max | Land | Lor

let apply_op op a b =
  match op with
  | Sum -> a +. b
  | Prod -> a *. b
  | Min | Max ->
      (* MATLAB min/max ignore NaN, so the combine skips NaN operands;
         ranks with nothing to contribute send NaN as the identity *)
      if Float.is_nan a then b
      else if Float.is_nan b then a
      else if op = Min then Float.min a b
      else Float.max a b
  | Land -> if a <> 0. && b <> 0. then 1. else 0.
  | Lor -> if a <> 0. || b <> 0. then 1. else 0.

let tag_bcast = 1001
let tag_reduce = 1002
let tag_gather = 1003
let tag_ring = 1004

(* Binomial-tree broadcast of a float array rooted at [root]. *)
let bcast ~root (data : float array) : float array =
  let p = Sim.size () in
  if p = 1 then data
  else begin
    let me = Sim.rank () in
    let rel = (me - root + p) mod p in
    let buf = ref (if me = root then data else [||]) in
    let mask = ref 1 in
    (* Find the round in which we receive: highest bit of rel. *)
    (if rel > 0 then begin
       let recv_mask = ref 1 in
       while !recv_mask * 2 <= rel do
         recv_mask := !recv_mask * 2
       done;
       let src_rel = rel - !recv_mask in
       let src = (src_rel + root) mod p in
       buf := Reliable.recv_floats ~src ~tag:tag_bcast;
       mask := !recv_mask * 2
     end);
    (* Forward to children in the remaining rounds. *)
    while !mask < p do
      let dst_rel = rel + !mask in
      if rel < !mask && dst_rel < p then begin
        let dst = (dst_rel + root) mod p in
        Reliable.send ~dst ~tag:tag_bcast (Sim.Floats !buf)
      end;
      mask := !mask * 2
    done;
    !buf
  end

(* Linear broadcast: the root sends to every rank directly.  Kept as
   the ablation baseline for the binomial tree above (O(P) root serial
   time instead of O(log P) rounds). *)
let bcast_linear ~root (data : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if p = 1 then data
  else if me = root then begin
    for dst = 0 to p - 1 do
      if dst <> root then Reliable.send ~dst ~tag:tag_bcast (Sim.Floats data)
    done;
    data
  end
  else Reliable.recv_floats ~src:root ~tag:tag_bcast

(* Binomial-tree reduction to [root]; every rank contributes [data],
   the root's return value holds the element-wise combination.  Other
   ranks get their partial result (callers use allreduce when everyone
   needs the answer). *)
let reduce ~root ~op (data : float array) : float array =
  let p = Sim.size () in
  if p = 1 then data
  else begin
    let me = Sim.rank () in
    let rel = (me - root + p) mod p in
    let acc = Array.copy data in
    let len = Array.length data in
    let mask = ref 1 in
    let sent = ref false in
    while (not !sent) && !mask < p do
      if rel land !mask <> 0 then begin
        let dst = (rel - !mask + root) mod p in
        Reliable.send ~dst ~tag:tag_reduce (Sim.Floats acc);
        sent := true
      end
      else begin
        let src_rel = rel + !mask in
        if src_rel < p then begin
          let src = (src_rel + root) mod p in
          let other = Reliable.recv_floats ~src ~tag:tag_reduce in
          for i = 0 to len - 1 do
            acc.(i) <- apply_op op acc.(i) other.(i)
          done;
          Sim.flops (float_of_int len)
        end;
        mask := !mask * 2
      end
    done;
    acc
  end

let allreduce ~op data =
  let root = 0 in
  let reduced = reduce ~root ~op data in
  bcast ~root reduced

let barrier () = ignore (allreduce ~op:Sum [| 0. |])

(* Gather variable-sized blocks to [root]; the root receives blocks in
   rank order and returns the concatenation, other ranks return [||]. *)
let gatherv ~root ~counts (local : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if p = 1 then Array.copy local
  else if me = root then begin
    let total = Array.fold_left ( + ) 0 counts in
    let out = Array.make total 0. in
    let off = ref 0 in
    for r = 0 to p - 1 do
      let block =
        if r = root then local else Reliable.recv_floats ~src:r ~tag:tag_gather
      in
      Array.blit block 0 out !off counts.(r);
      off := !off + counts.(r)
    done;
    out
  end
  else begin
    Reliable.send ~dst:root ~tag:tag_gather (Sim.Floats local);
    [||]
  end

(* Ring allgather of variable-sized blocks: after P-1 steps every rank
   holds the concatenation of all blocks in rank order. *)
let allgatherv ~counts (local : float array) : float array =
  let p = Sim.size () in
  let me = Sim.rank () in
  if Array.length local <> counts.(me) then
    invalid_arg "allgatherv: local block size disagrees with counts";
  if p = 1 then Array.copy local
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    let offsets = Array.make p 0 in
    for r = 1 to p - 1 do
      offsets.(r) <- offsets.(r - 1) + counts.(r - 1)
    done;
    let out = Array.make total 0. in
    Array.blit local 0 out offsets.(me) counts.(me);
    let right = (me + 1) mod p and left = (me - 1 + p) mod p in
    (* At step s we forward the block of rank (me - s + p) mod p. *)
    let current = ref (Array.copy local) in
    for s = 1 to p - 1 do
      Reliable.send ~dst:right ~tag:tag_ring (Sim.Floats !current);
      let incoming = Reliable.recv_floats ~src:left ~tag:tag_ring in
      let owner = (me - s + p) mod p in
      Array.blit incoming 0 out offsets.(owner) counts.(owner);
      current := incoming
    done;
    out
  end

let tag_scan = 1005

(* Exclusive prefix scan of one scalar per rank (recursive doubling,
   log P rounds): rank r returns the op-fold of ranks 0..r-1's values
   ([identity] on rank 0).  Each round carries the running *inclusive*
   value so prefixes compose associatively. *)
let exscan ~op ~identity (x : float) : float =
  let p = Sim.size () in
  let me = Sim.rank () in
  let excl = ref identity and incl = ref x in
  let d = ref 1 in
  while !d < p do
    if me + !d < p then
      Reliable.send ~dst:(me + !d) ~tag:tag_scan (Sim.Floats [| !incl |]);
    if me - !d >= 0 then begin
      match Reliable.recv_floats ~src:(me - !d) ~tag:tag_scan with
      | [| below_incl |] ->
          excl := apply_op op below_incl !excl;
          incl := apply_op op below_incl !incl;
          Sim.flops 2.
      | _ ->
          raise
            (Sim.Protocol_error
               {
                 rank = me;
                 src = me - !d;
                 tag = tag_scan;
                 detail = "exscan: expected a one-element payload";
               })
    end;
    d := !d * 2
  done;
  !excl

(* Scalar conveniences used by the run-time library. *)
let allreduce_scalar ~op x =
  match allreduce ~op [| x |] with [| y |] -> y | _ -> assert false

let bcast_scalar ~root x =
  match bcast ~root [| x |] with [| y |] -> y | _ -> assert false
