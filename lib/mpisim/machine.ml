(* Models of the paper's three parallel test beds.

   A machine gives per-rank compute speed and, for every (src, dst) rank
   pair, a link: latency, bandwidth, and an optional contention channel.
   Messages crossing the same channel serialize; a dedicated link (no
   channel) never queues.  The numbers are representative of 1997-era
   hardware; the evaluation cares about ratios (grain size versus
   communication cost), which these preserve. *)

type link = {
  latency : float; (* seconds, end to end *)
  bandwidth : float; (* bytes per second *)
  channel : int option; (* contention domain; None = dedicated *)
}

(* Seeded, deterministic fault model.  Every probability is drawn from
   the counter-based [Rng], so two runs with the same seed (and the
   same program on the same machine) see the identical fault schedule:
   the same messages drop, duplicate, spike, and stall. *)
type faults = {
  fault_seed : int;
  drop : float; (* per-message loss probability *)
  dup : float; (* per-message duplication probability *)
  delay : float; (* per-message delay-spike probability *)
  delay_factor : float; (* latency multiplier during a spike *)
  stall : float; (* per-send probability the rank stalls first *)
  stall_time : float; (* seconds lost per stall *)
  degrade : float; (* per-(link, window) degradation probability *)
  degrade_factor : float; (* latency x, bandwidth / this during a window *)
  degrade_period : float; (* seconds per degradation window *)
  detect : float; (* default timeout for unprotected receives and the
                     failure detector's heartbeat deadline; 0 = wait
                     forever (a lost message then deadlocks) *)
  (* Permanent rank failures.  [kill] is the per-rank probability of
     dying during one run attempt; a doomed rank's death time is drawn
     uniformly in [0, kill_window).  [kill_rank]/[kill_time] plant one
     deterministic death instead (first attempt only), which is what
     the recovery tests use.  Both are seeded: the same seed produces
     the same deaths. *)
  kill : float; (* per-rank, per-attempt death probability *)
  kill_window : float; (* seconds of virtual time deaths fall within *)
  kill_rank : int; (* explicit victim (-1 = none) *)
  kill_time : float; (* when the explicit victim dies *)
}

let no_faults =
  {
    fault_seed = 0;
    drop = 0.;
    dup = 0.;
    delay = 0.;
    delay_factor = 16.;
    stall = 0.;
    stall_time = 1e-3;
    degrade = 0.;
    degrade_factor = 10.;
    degrade_period = 10e-3;
    detect = 1.0;
    kill = 0.;
    kill_window = 0.05;
    kill_rank = -1;
    kill_time = 0.01;
  }

(* Parse "drop=0.01,dup=0.005,seed=42" into a fault model.  Unknown
   keys and malformed numbers are reported, not ignored. *)
let faults_of_spec spec : (faults, string) result =
  let parse_field acc kv =
    match acc with
    | Error _ -> acc
    | Ok f -> (
        match String.split_on_char '=' (String.trim kv) with
        | [ k; v ] -> (
            let num () =
              match float_of_string_opt v with
              | Some x -> Ok x
              | None -> Error (Printf.sprintf "faults: bad number '%s' for %s" v k)
            in
            let setf g = Result.map g (num ()) in
            match k with
            | "seed" -> (
                match int_of_string_opt v with
                | Some s -> Ok { f with fault_seed = s }
                | None -> Error (Printf.sprintf "faults: bad seed '%s'" v))
            | "drop" -> setf (fun x -> { f with drop = x })
            | "dup" -> setf (fun x -> { f with dup = x })
            | "delay" -> setf (fun x -> { f with delay = x })
            | "delay_factor" -> setf (fun x -> { f with delay_factor = x })
            | "stall" -> setf (fun x -> { f with stall = x })
            | "stall_time" -> setf (fun x -> { f with stall_time = x })
            | "degrade" -> setf (fun x -> { f with degrade = x })
            | "degrade_factor" -> setf (fun x -> { f with degrade_factor = x })
            | "degrade_period" -> setf (fun x -> { f with degrade_period = x })
            | "detect" -> setf (fun x -> { f with detect = x })
            | "kill" -> setf (fun x -> { f with kill = x })
            | "kill_window" -> setf (fun x -> { f with kill_window = x })
            | "kill_time" -> setf (fun x -> { f with kill_time = x })
            | "kill_rank" -> (
                match int_of_string_opt v with
                | Some r -> Ok { f with kill_rank = r }
                | None -> Error (Printf.sprintf "faults: bad kill_rank '%s'" v))
            | _ -> Error (Printf.sprintf "faults: unknown key '%s'" k))
        | _ -> Error (Printf.sprintf "faults: expected key=value, got '%s'" kv))
  in
  List.fold_left parse_field (Ok no_faults) (String.split_on_char ',' spec)

(* How virtual ranks are laid out over the machine's simulated CPUs
   when a run oversubscribes (more ranks than [max_procs]).  The
   placement decides which CPU executes each rank -- compute charges
   serialize per CPU -- and which physical endpoints a message's link
   is looked up for; message semantics stay per-rank. *)
type mapping =
  | Map_block (* rank r on CPU r*C/P: contiguous slabs *)
  | Map_cyclic (* rank r on CPU r mod C: round-robin *)
  | Map_random of int (* seeded uniform draw per rank *)

type placement = { cpus : int; map : mapping }

let mapping_of_string ?(seed = 0) = function
  | "block" -> Some Map_block
  | "cyclic" -> Some Map_cyclic
  | "random" -> Some (Map_random seed)
  | _ -> None

let mapping_name = function
  | Map_block -> "block"
  | Map_cyclic -> "cyclic"
  | Map_random _ -> "random"

type t = {
  name : string;
  max_procs : int;
  flop_time : float; (* seconds per floating-point operation *)
  interp_overhead : float; (* interpreter per-operation dispatch cost, s *)
  send_overhead : float; (* CPU time consumed by a send *)
  recv_overhead : float; (* CPU time consumed by a matched receive *)
  link : int -> int -> link;
  faults : faults option; (* None = the perfect network of the paper *)
  reliable : bool; (* route messaging through the ack/retry layer *)
  placement : placement option;
      (* None = one rank per CPU (the paper's setup, capped at
         [max_procs]); [Some _] = oversubscribed virtual ranks *)
}

(* [with_faults ?reliable ?faults m] is [m] with the fault model and/or
   the reliable-messaging flag switched on. *)
let with_faults ?(reliable = false) ?faults m =
  { m with faults; reliable }

(* [with_placement ~cpus ~map m] oversubscribes [m]: ranks beyond
   [cpus] time-share the machine's CPUs under [map].  Validation of
   cpus against the rank count happens when the run starts (the rank
   count is not known here). *)
let with_placement ~cpus ~map m = { m with placement = Some { cpus; map } }

(* [with_procs n m] is [m] scaled out to [n] ranks: the same CPUs and
   links, more of them.  The multi-tenant scheduler benches space-share
   machines bigger than the paper's test beds (P = 64). *)
let with_procs n m =
  if n < 1 then invalid_arg "with_procs: need at least one processor";
  { m with max_procs = n }

let mflops x = 1.0 /. (x *. 1e6)
let mbytes x = x *. 1e6

(* Meiko CS-2: 16 nodes, fat-tree network with dedicated per-pair
   bandwidth; the best-balanced machine of the three (paper section 6). *)
let meiko_cs2 =
  (* one shared record: [link] is called once per simulated message on
     the hot path, so it must not allocate *)
  let l = { latency = 45e-6; bandwidth = mbytes 40.; channel = None } in
  let link _ _ = l in
  {
    name = "Meiko CS-2";
    max_procs = 16;
    flop_time = mflops 25.;
    interp_overhead = 1.2e-6;
    send_overhead = 12e-6;
    recv_overhead = 12e-6;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

(* Sun Enterprise SMP: 8 CPUs over a shared memory bus.  Message passing
   maps to memory copies: very low latency, high bandwidth, but a single
   shared bus (channel 0) that serializes transfers. *)
let enterprise_smp =
  let l = { latency = 2.5e-6; bandwidth = mbytes 180.; channel = Some 0 } in
  let link _ _ = l in
  {
    name = "Sun Enterprise SMP";
    max_procs = 8;
    flop_time = mflops 30.;
    interp_overhead = 1.0e-6;
    send_overhead = 2e-6;
    recv_overhead = 2e-6;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

(* Cluster of four SPARCserver 20 SMPs (4 CPUs each) on one 10 Mb/s
   Ethernet.  Intra-node transfers use the node's bus (channel = node);
   inter-node transfers share the single Ethernet segment (channel 100),
   whose high latency and low bandwidth damp speedup beyond 4 CPUs --
   the paper's observation. *)
let sparc20_cluster =
  let node r = r / 4 in
  (* the inter-node record is constant; intra-node records differ only
     by node id, so they are built once per node and cached.  The
     Ethernet channel is -1 so it can never collide with a node id
     when [with_procs] scales the cluster out. *)
  let inter = { latency = 800e-6; bandwidth = mbytes 1.0; channel = Some (-1) } in
  let intra : (int, link) Hashtbl.t = Hashtbl.create 8 in
  let link src dst =
    if node src = node dst then (
      let nd = node src in
      match Hashtbl.find_opt intra nd with
      | Some l -> l
      | None ->
          let l = { latency = 4e-6; bandwidth = mbytes 100.; channel = Some nd } in
          Hashtbl.add intra nd l;
          l)
    else inter
  in
  {
    name = "SPARC-20 SMP cluster";
    max_procs = 16;
    flop_time = mflops 15.;
    interp_overhead = 1.6e-6;
    send_overhead = 10e-6;
    recv_overhead = 10e-6;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

(* Single-workstation model used for the sequential comparisons of
   Figure 2 (one UltraSPARC CPU of the Meiko CS-2). *)
let workstation =
  let l = { latency = 1e-6; bandwidth = mbytes 200.; channel = None } in
  let link _ _ = l in
  {
    name = "UltraSPARC workstation";
    max_procs = 1;
    flop_time = mflops 25.;
    interp_overhead = 1.2e-6;
    send_overhead = 0.;
    recv_overhead = 0.;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

(* Extrapolation beyond the paper: a 1999-era Beowulf -- 16 commodity
   PCs on switched fast Ethernet.  CPUs are ~5x faster than the CS-2
   nodes but the TCP/IP latency is also ~3x worse, so the
   compute/communication balance the paper analyzes shifts again. *)
let beowulf =
  let l = { latency = 120e-6; bandwidth = mbytes 11.; channel = None } in
  let link _ _ = l in
  {
    name = "Beowulf (1999)";
    max_procs = 16;
    flop_time = mflops 120.;
    interp_overhead = 0.4e-6;
    send_overhead = 25e-6;
    recv_overhead = 25e-6;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

(* Parametric fat-tree cluster, the post-paper machine model for the
   scaling studies: [radix^levels] nodes under [levels] tiers of
   switches.  A message climbs to the lowest common ancestor switch
   and comes back down; each switch is one contention channel, and
   link bandwidth grows by the radix per tier ("fat" links), which is
   what keeps the bisection usable as P grows.  Links are computed on
   demand -- one integer-division loop to find the LCA tier -- and the
   per-switch records are cached, so nothing O(P^2) is ever built. *)
let fattree ?(radix = 16) ?(levels = 3) () =
  if radix < 2 then invalid_arg "fattree: radix must be at least 2";
  if levels < 1 || levels > 10 then
    invalid_arg "fattree: levels must be between 1 and 10";
  let max_procs =
    let rec go acc l =
      if l = 0 || acc >= 1 lsl 19 then acc else go (acc * radix) (l - 1)
    in
    go 1 levels
  in
  (* pow.(l) = nodes under one tier-l switch; offset.(l) = first channel
     id of tier l, so channel ids are unique across tiers *)
  let pow = Array.make (levels + 1) 1 in
  for l = 1 to levels do
    pow.(l) <- pow.(l - 1) * radix
  done;
  let offset = Array.make (levels + 1) 0 in
  for l = 2 to levels do
    offset.(l) <-
      offset.(l - 1) + ((max_procs + pow.(l - 1) - 1) / pow.(l - 1))
  done;
  let self = { latency = 0.5e-6; bandwidth = mbytes 2000.; channel = None } in
  let leaf_bw = mbytes 250. in
  let cache : (int, link) Hashtbl.t = Hashtbl.create 64 in
  let link src dst =
    if src = dst then self
    else begin
      let tier = ref 1 in
      while src / pow.(!tier) <> dst / pow.(!tier) do
        incr tier
      done;
      let t = !tier in
      let ch = offset.(t) + (src / pow.(t)) in
      match Hashtbl.find_opt cache ch with
      | Some l -> l
      | None ->
          let l =
            {
              (* two hops per tier crossed, up and back down *)
              latency = 1.4e-6 +. (float_of_int (2 * t) *. 0.9e-6);
              bandwidth = leaf_bw *. float_of_int pow.(t - 1);
              channel = Some ch;
            }
          in
          Hashtbl.add cache ch l;
          l
    end
  in
  {
    name = Printf.sprintf "fat-tree %dx%d" radix levels;
    max_procs;
    flop_time = mflops 500.;
    interp_overhead = 0.3e-6;
    send_overhead = 2.5e-6;
    recv_overhead = 2.5e-6;
    link;
    faults = None;
    reliable = false;
    placement = None;
  }

let fattree_default = fattree ()

let all = [ meiko_cs2; enterprise_smp; sparc20_cluster ]

let by_name name =
  let norm = String.lowercase_ascii (String.trim name) in
  (* "fattree:8x2" picks radix 8 with two switch tiers *)
  let custom_fattree () =
    if String.length norm > 8 && String.sub norm 0 8 = "fattree:" then
      let spec = String.sub norm 8 (String.length norm - 8) in
      match String.split_on_char 'x' spec with
      | [ r; l ] -> (
          match (int_of_string_opt r, int_of_string_opt l) with
          | Some r, Some l when r >= 2 && l >= 1 && l <= 10 ->
              Some (fattree ~radix:r ~levels:l ())
          | _ -> None)
      | _ -> None
    else None
  in
  match custom_fattree () with
  | Some m -> Some m
  | None ->
      List.find_opt
        (fun m ->
          String.lowercase_ascii m.name = norm
          ||
          match norm with
          | "meiko" | "cs2" | "cs-2" -> m == meiko_cs2
          | "smp" | "enterprise" -> m == enterprise_smp
          | "cluster" | "sparc20" -> m == sparc20_cluster
          | "workstation" | "ultrasparc" -> m == workstation
          | "beowulf" -> m == beowulf
          | "fattree" | "fat-tree" -> m == fattree_default
          | _ -> false)
        (workstation :: beowulf :: fattree_default :: all)
