(* Counter-based pseudo-random numbers: rand element (seed, i) is a pure
   hash of the global element index, so a distributed matrix holds
   identical data for every processor count and for the sequential
   interpreter -- which is what makes cross-backend verification of the
   benchmarks possible. *)

let splitmix64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* Uniform float in [0, 1) from a seed and a global element index. *)
let uniform ~seed i =
  let h = splitmix64 (Int64.add (Int64.of_int i)
                        (Int64.mul (Int64.of_int (seed + 1)) 0x9e3779b97f4a7c15L))
  in
  let mantissa = Int64.to_float (Int64.shift_right_logical h 11) in
  mantissa *. 0x1p-53

(* Standard normal via Box-Muller on two decorrelated uniforms. *)
let normal ~seed i =
  let u1 = uniform ~seed i and u2 = uniform ~seed:(seed + 77731) i in
  let u1 = if u1 <= 0. then 1e-300 else u1 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
