(** Reliable messaging over the simulator's (possibly lossy) transport:
    sequence-numbered envelopes, transport acknowledgements, and
    bounded retransmission with exponential backoff.  The application
    sees exactly-once, in-order delivery, bit-for-bit identical to a
    fault-free run.

    When the machine does not set {!Machine.t.reliable}, every
    operation falls through to the plain {!Sim} primitives, so routing
    code through this module costs nothing until reliability is asked
    for. *)

exception
  Exhausted of { rank : int; dst : int; tag : int; attempts : int }
(** The sender retransmitted [attempts] times without an
    acknowledgement and gave the message up for lost. *)

val max_retries : int
(** Retransmissions attempted before {!Exhausted} (8). *)

val backoff : float
(** Timeout multiplier per retry (2.0). *)

val send : dst:int -> tag:int -> Sim.payload -> unit
(** Send with delivery guaranteed or {!Exhausted} raised.  Blocks (in
    virtual time) until the transport acknowledges delivery. *)

val recv : src:int -> tag:int -> Sim.payload
(** Receive the next in-sequence message, discarding duplicates. *)

val recv_any : tag:int -> int * Sim.payload
(** Wildcard-source receive: the simulator picks the source (earliest
    arrival, ties to the lowest rank); returns (source, data).
    Per-channel sequencing still applies to the discovered source, and
    a duplicate resumes the wildcard wait. *)

val recv_floats : src:int -> tag:int -> float array
val recv_ints : src:int -> tag:int -> int array
