(* Discrete-event SPMD simulator built on OCaml effect handlers.

   Every simulated rank is a delimited computation.  Communication and
   time are effects:

   - [Compute t] advances the rank's virtual clock (handled inline);
   - [Send] timestamps a message using the machine's link model --
     including serialization on shared channels -- and delivers it to
     the destination mailbox (non-blocking, eager; handled inline);
   - [Recv] pops a matching message if present (inline), otherwise
     suspends the rank's continuation until a sender delivers one.

   The scheduler resumes runnable ranks lowest-virtual-clock first and
   reports a deadlock (with a per-rank diagnosis) if every live rank is
   suspended on an empty mailbox.  Everything is deterministic: same
   program, same machine, same timings.

   When the machine carries a fault model, [deliver] additionally
   consults a seeded counter-based RNG and may drop, duplicate, or
   delay-spike a message, stall the sending rank, or degrade a link for
   a window of virtual time.  The decision stream depends only on the
   seed and the (deterministic) order of send events, so the same seed
   reproduces the identical fault schedule.  A receive may carry a
   timeout; an expired wait surfaces as a typed [Timeout] naming the
   waiting rank, the expected source and tag, instead of stalling the
   whole simulation into a [Deadlock]. *)

open Effect
open Effect.Deep

type payload = Floats of float array | Ints of int array

let payload_bytes = function
  | Floats a -> 8 * Array.length a
  | Ints a -> 8 * Array.length a

type _ Effect.t +=
  | E_send : int * int * payload -> unit Effect.t (* dst, tag, data *)
  | E_send_acked : int * int * int * int * payload -> unit Effect.t
      (* dst, tag, ack tag, seq: like E_send, but a successful delivery
         also queues a transport-level acknowledgement [Ints [|seq|]]
         back to the sender on the ack tag (the reliable layer's
         retransmission timer watches for it) *)
  | E_recv : int * int -> payload Effect.t (* src, tag *)
  | E_recv_opt : int * int * float -> payload option Effect.t
      (* src, tag, timeout: [None] once the deadline passes *)
  | E_recv_any : int -> (int * payload) Effect.t
      (* tag: wildcard-source receive -- block until a message with
         this tag arrives from ANY rank; returns (source, data).  Among
         pending candidates the earliest arrival wins, ties going to
         the lowest source rank, so the match is deterministic. *)
  | E_probe : int * int -> bool Effect.t
      (* src, tag: has a matching message already arrived (in virtual
         time) at this rank's mailbox?  Non-blocking.  [src = -1] is
         the wildcard: any source. *)
  | E_compute : float -> unit Effect.t (* seconds *)
  | E_flops : float -> unit Effect.t (* floating-point operations *)
  | E_rank : int Effect.t
  | E_size : int Effect.t
  | E_time : float Effect.t
  | E_machine : Machine.t Effect.t
  | E_scratch : (int * int * int, int) Hashtbl.t Effect.t
      (* per-rank counter table (the reliable layer's sequence numbers) *)
  | E_note_retry : unit Effect.t

exception
  Timeout of {
    rank : int; (* who gave up waiting *)
    src : int;
    tag : int;
    waited : float; (* the timeout that expired *)
  }

exception
  Protocol_error of {
    rank : int;
    src : int;
    tag : int;
    detail : string;
  }

exception Rank_failure of { rank : int; exn : exn }

(* Failure detector verdict: [rank]'s blocked receive on [failed] was
   broken at virtual time [at] because the peer is permanently dead
   (killed at [at] minus the model's [detect] window).  Delivered into
   the waiting rank, so it surfaces wrapped in [Rank_failure]. *)
exception Peer_failed of { rank : int; failed : int; at : float }

(* The fault model permanently killed [rank] at virtual time [at].
   Raised (wrapped in [Rank_failure]) once the run drains, even when
   the survivors never tried to talk to the victim. *)
exception Rank_killed of { rank : int; at : float }

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable compute_time : float; (* summed over ranks *)
  mutable drops : int;
  mutable dups : int;
  mutable delayed : int;
  mutable stalls : int;
  mutable retries : int;
  mutable acks : int;
  mutable kills : int;
  mutable sched_picks : int;
}

(* --- the fast path for non-blocking operations --------------------------- *)

(* Clock charges and identity queries do not need the scheduler: the
   rank keeps running either way.  Performing an effect for each one
   costs a continuation capture and resume -- tens of nanoseconds that
   dominate fine-grained execution (a threaded-code VM instruction is a
   few nanoseconds).  Instead the scheduler publishes the running
   rank's context here before every resume, and the non-blocking
   operations mutate it directly.  The arithmetic is exactly what the
   effect handler used to do, in the same order, so virtual time is
   bit-identical.  Blocking operations (send/recv) still perform
   effects: they genuinely yield to the scheduler.

   Outside any simulation [current] is [None] and the operations fall
   back to performing the effect (surfacing the usual
   [Effect.Unhandled]).  [run_report] saves and restores the previous
   context, so a rank body that itself starts a nested simulation
   resumes with its own context intact. *)
type ctx = {
  x_clocks : float array;
  x_stats : stats;
  x_machine : Machine.t;
  x_flop_time : float;
  x_nprocs : int;
  x_scratch : (int * int * int, int) Hashtbl.t array;
  x_place : (int array * float array) option;
      (* oversubscription: (rank -> CPU, per-CPU busy-until).  [None]
         (one rank per CPU) keeps the exact historical arithmetic. *)
  mutable x_rank : int;
}

let current : ctx option ref = ref None

(* Operations available inside a simulated rank. *)
let send ~dst ~tag data = perform (E_send (dst, tag, data))

let send_acked ~dst ~tag ~ack_tag ~seq data =
  perform (E_send_acked (dst, tag, ack_tag, seq, data))

(* One compute charge of [t] seconds against rank [r].  Without a
   placement this is a plain clock advance; with one, the charge also
   serializes on the rank's CPU: it starts when both the rank and the
   CPU are free, and occupies the CPU until it ends.  That is the whole
   oversubscription cost model -- messages stay per-rank. *)
let charge_compute c r t =
  (match c.x_place with
  | None -> c.x_clocks.(r) <- c.x_clocks.(r) +. t
  | Some (cpu_of, cpu_free) ->
      let cpu = cpu_of.(r) in
      let fin = Float.max c.x_clocks.(r) cpu_free.(cpu) +. t in
      c.x_clocks.(r) <- fin;
      cpu_free.(cpu) <- fin);
  c.x_stats.compute_time <- c.x_stats.compute_time +. t

let compute seconds =
  match !current with
  | Some c -> charge_compute c c.x_rank seconds
  | None -> perform (E_compute seconds)

let flops n =
  match !current with
  | Some c -> charge_compute c c.x_rank (n *. c.x_flop_time)
  | None -> perform (E_flops n)

let rank () =
  match !current with Some c -> c.x_rank | None -> perform E_rank

let size () =
  match !current with Some c -> c.x_nprocs | None -> perform E_size

let time () =
  match !current with
  | Some c -> c.x_clocks.(c.x_rank)
  | None -> perform E_time

let machine () =
  match !current with Some c -> c.x_machine | None -> perform E_machine

let reliable_on () = (machine ()).Machine.reliable

let scratch () =
  match !current with
  | Some c -> c.x_scratch.(c.x_rank)
  | None -> perform E_scratch

let note_retry () =
  match !current with
  | Some c -> c.x_stats.retries <- c.x_stats.retries + 1
  | None -> perform E_note_retry
let recv_opt ~src ~tag ~timeout = perform (E_recv_opt (src, tag, timeout))
let recv_any ~tag = perform (E_recv_any tag)
let probe ~src ~tag = perform (E_probe (src, tag))

(* A receive that raises a typed [Timeout] at its deadline. *)
let recv_timeout ~src ~tag ~timeout =
  match perform (E_recv_opt (src, tag, timeout)) with
  | Some p -> p
  | None -> raise (Timeout { rank = rank (); src; tag; waited = timeout })

(* [recv_wait] waits forever on a perfect network, but under a fault
   model it is bounded by [min_timeout] (at least the model's [detect]
   window) so that no primitive can hang a chaos run: a wait the
   sender's bounded retries cannot satisfy surfaces as a typed
   [Timeout].  The reliable layer passes the worst-case retransmission
   window as [min_timeout] to avoid giving up while the sender is
   still lawfully retrying. *)
let recv_wait ?(min_timeout = 0.) ~src ~tag () =
  match (machine ()).Machine.faults with
  | Some f when f.Machine.detect > 0. ->
      recv_timeout ~src ~tag ~timeout:(Float.max f.Machine.detect min_timeout)
  | _ -> perform (E_recv (src, tag))

(* Under a fault model, a plain receive defaults to the model's
   [detect] timeout so that a lost message surfaces as a typed
   [Timeout] rather than an eventual whole-simulation [Deadlock]. *)
let recv ~src ~tag =
  match (machine ()).Machine.faults with
  | Some f when f.Machine.detect > 0. ->
      recv_timeout ~src ~tag ~timeout:f.Machine.detect
  | _ -> perform (E_recv (src, tag))

let recv_floats ~src ~tag =
  match recv ~src ~tag with
  | Floats a -> a
  | Ints _ ->
      raise
        (Protocol_error
           {
             rank = rank ();
             src;
             tag;
             detail = "expected a float payload, received integers";
           })

let recv_ints ~src ~tag =
  match recv ~src ~tag with
  | Ints a -> a
  | Floats _ ->
      raise
        (Protocol_error
           {
             rank = rank ();
             src;
             tag;
             detail = "expected an integer payload, received floats";
           })

(* One tenant's share of a space-shared run; filled in by the
   multi-tenant scheduler, never by [run] itself. *)
type job_stat = {
  job_name : string;
  job_first_rank : int;
  job_procs : int;
  job_start : float;
  job_finish : float;
  job_messages : int;
  job_bytes : int;
}

type report = {
  makespan : float; (* max over per-rank clocks *)
  per_rank_clock : float array;
  jobs : job_stat list; (* per-tenant accounting (scheduler only) *)
  messages : int;
  bytes : int;
  compute_time : float;
  drops : int; (* messages the fault model destroyed *)
  dups : int; (* spurious duplicates it injected *)
  delayed : int; (* delay spikes it injected *)
  stalls : int; (* rank stalls it injected *)
  retries : int; (* retransmissions by the reliable layer *)
  acks : int; (* transport acknowledgements delivered *)
  kills : int; (* ranks the fault model permanently killed *)
  sched_picks : int; (* scheduling steps the event core executed *)
}

exception Deadlock of string

type 'a run_state = {
  machine : Machine.t;
  nprocs : int;
  clocks : float array;
  mailboxes : (int, (float * payload) Queue.t) Hashtbl.t array;
      (* per destination rank, keyed [(tag lsl 20) lor src] -> queued
         (arrival, data).  One small table per rank beats one big table
         keyed by an allocated (dst, src, tag) triple: the packed int
         key hashes in nanoseconds and allocates nothing on lookup. *)
  channel_free : (int, float) Hashtbl.t; (* contention channel -> busy-until *)
  stats : stats;
  results : 'a option array;
  scratch : (int * int * int, int) Hashtbl.t array; (* per rank *)
  mutable fault_ix : int; (* fault-decision counter (the RNG index) *)
  death : float array; (* per-rank scheduled death time; infinity = never *)
  place : (int array * float array) option;
      (* oversubscription: (rank -> CPU, per-CPU busy-until) *)
}

(* Mailbox keys pack (src, tag) into one int: 20 bits of source rank,
   the rest tag.  Every internal tag fits (collectives use 1001-1006,
   the runtime library 3001-3004, transport acks live at tag + 0x400000,
   and user MPI tags are bounded by 1e6 then offset by 2e6); the bound
   is validated at send/receive time. *)
let src_bits = 20
let max_tag = 1 lsl 40

let check_tag tag =
  if tag < 0 || tag >= max_tag then
    invalid_arg (Printf.sprintf "message tag %d out of range [0, 2^40)" tag)

let mbox_key ~src ~tag = (tag lsl src_bits) lor src

type 'a suspended =
  | Finished
  | Wants_send of int * int * (int * int) option * payload * ('a, unit) blocked_k
      (* send to (dst, tag), with an optional (ack tag, seq) transport
         acknowledgement: performed by the scheduler in global
         virtual-time order so that shared-channel contention is
         accounted accurately *)
  | Wants_recv of int * int * ('a, payload) blocked_k
      (* waiting on (src, tag) *)
  | Wants_recv_t of int * int * float * ('a, payload option) blocked_k
      (* waiting on (src, tag) until the absolute deadline *)
  | Wants_recv_any of int * ('a, int * payload) blocked_k
      (* waiting on (any source, tag) *)

and ('a, 'b) blocked_k = ('b, 'a suspended) continuation

let mailbox st ~dst ~src ~tag =
  let t = st.mailboxes.(dst) in
  let key = mbox_key ~src ~tag in
  match Hashtbl.find_opt t key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t key q;
      q

(* The wildcard match: scan every source's queue for (dst, tag) and
   return the source holding the earliest pending arrival, ties going
   to the lowest source rank.  The ascending scan updating only on a
   strictly earlier arrival implements the tie-break. *)
let any_mailbox st ~dst ~tag : (int * float) option =
  let t = st.mailboxes.(dst) in
  let best = ref None in
  for src = 0 to st.nprocs - 1 do
    match Hashtbl.find_opt t (mbox_key ~src ~tag) with
    | Some q when not (Queue.is_empty q) -> (
        let arrival = fst (Queue.peek q) in
        match !best with
        | Some (_, a) when a <= arrival -> ()
        | _ -> best := Some (src, arrival))
    | _ -> ()
  done;
  !best

(* Physical endpoint of a virtual rank: identity without a placement. *)
let phys st r = match st.place with None -> r | Some (cpu_of, _) -> cpu_of.(r)

(* Scheduler-side mirror of [charge_compute], for the effect path. *)
let st_charge st r t =
  (match st.place with
  | None -> st.clocks.(r) <- st.clocks.(r) +. t
  | Some (cpu_of, cpu_free) ->
      let cpu = cpu_of.(r) in
      let fin = Float.max st.clocks.(r) cpu_free.(cpu) +. t in
      st.clocks.(r) <- fin;
      cpu_free.(cpu) <- fin);
  st.stats.compute_time <- st.stats.compute_time +. t

(* --- the fault model ----------------------------------------------------- *)

(* One decision draw: a pure function of the fault seed, the decision
   kind, and a per-run counter, so the schedule is reproducible. *)
let draw st (f : Machine.faults) ~salt =
  let i = st.fault_ix in
  st.fault_ix <- i + 1;
  Rng.uniform ~seed:(f.Machine.fault_seed lxor salt) i

let salt_drop = 0x0d10
let salt_dup = 0x0d20
let salt_delay = 0x0d30
let salt_stall = 0x0d40
let salt_ack = 0x0d50
let salt_kill = 0x0d60
let salt_kill_time = 0x0d70

(* The per-rank death schedule for one run attempt: a pure function of
   (fault seed, attempt, rank), so a given attempt reproduces its kills
   exactly while a recovery retry (next [attempt]) re-rolls them --
   otherwise a deterministic replay would march straight back into the
   same crash.  The explicit [kill_rank] pin fires on attempt 0 only,
   which is what the tests use: one planted death, clean recovery. *)
let death_schedule (faults : Machine.faults option) ~nprocs ~attempt =
  let death = Array.make nprocs infinity in
  (match faults with
  | None -> ()
  | Some f ->
      if f.Machine.kill > 0. then
        for r = 0 to nprocs - 1 do
          let ix = (attempt * 8191) + r in
          if Rng.uniform ~seed:(f.Machine.fault_seed lxor salt_kill) ix < f.Machine.kill
          then
            death.(r) <-
              Rng.uniform ~seed:(f.Machine.fault_seed lxor salt_kill_time) ix
              *. f.Machine.kill_window
        done;
      if f.Machine.kill_rank >= 0 && f.Machine.kill_rank < nprocs && attempt = 0
      then death.(f.Machine.kill_rank) <- f.Machine.kill_time);
  death

(* Link degradation windows are a pure function of (seed, window index,
   src, dst) -- independent of event order, so the same virtual-time
   interval is degraded no matter how the schedule interleaves. *)
let degraded (f : Machine.faults) ~src ~dst ~now =
  f.Machine.degrade > 0.
  &&
  let window = int_of_float (now /. f.Machine.degrade_period) in
  let ix = (((window * 131) + src) * 131) + dst in
  Rng.uniform ~seed:(f.Machine.fault_seed lxor 0xdead) ix < f.Machine.degrade

(* Transfer timing: a message leaves when both the sender and (for a
   shared medium) the channel are free; it arrives one latency plus one
   serialization time later.  Fault injection happens here: the send
   cost is always paid, but the network may destroy, duplicate, or
   delay what was sent. *)
let deliver st ~src ~dst ~tag ?ack data =
  let data =
    match data with
    | Floats a -> Floats (Array.copy a)
    | Ints a -> Ints (Array.copy a)
  in
  let faults = st.machine.Machine.faults in
  (* rank stall: the sender loses time before the message even leaves *)
  (match faults with
  | Some f when f.Machine.stall > 0. && draw st f ~salt:salt_stall < f.Machine.stall
    ->
      st.clocks.(src) <- st.clocks.(src) +. f.Machine.stall_time;
      st.stats.stalls <- st.stats.stalls + 1
  | _ -> ());
  (* the network sees physical endpoints: two ranks sharing a CPU talk
     over that machine's local link, not a remote one *)
  let psrc = phys st src and pdst = phys st dst in
  let link = st.machine.Machine.link psrc pdst in
  let latency, bandwidth =
    match faults with
    | Some f when degraded f ~src:psrc ~dst:pdst ~now:st.clocks.(src) ->
        ( link.Machine.latency *. f.Machine.degrade_factor,
          link.Machine.bandwidth /. f.Machine.degrade_factor )
    | _ -> (link.Machine.latency, link.Machine.bandwidth)
  in
  let latency =
    match faults with
    | Some f when f.Machine.delay > 0. && draw st f ~salt:salt_delay < f.Machine.delay
      ->
        st.stats.delayed <- st.stats.delayed + 1;
        latency *. f.Machine.delay_factor
    | _ -> latency
  in
  let bytes = payload_bytes data in
  let ser = float_of_int bytes /. bandwidth in
  let start =
    match link.Machine.channel with
    | None -> st.clocks.(src)
    | Some ch ->
        let free =
          match Hashtbl.find_opt st.channel_free ch with
          | Some t -> t
          | None -> 0.
        in
        let start = Float.max st.clocks.(src) free in
        Hashtbl.replace st.channel_free ch (start +. ser);
        start
  in
  let arrival = start +. latency +. ser in
  st.clocks.(src) <- st.clocks.(src) +. st.machine.Machine.send_overhead;
  st.stats.messages <- st.stats.messages + 1;
  st.stats.bytes <- st.stats.bytes + bytes;
  let dropped =
    match faults with
    | Some f when f.Machine.drop > 0. -> draw st f ~salt:salt_drop < f.Machine.drop
    | _ -> false
  in
  if dropped then st.stats.drops <- st.stats.drops + 1
  else begin
    Queue.push (arrival, data) (mailbox st ~dst ~src ~tag);
    match faults with
    | Some f when f.Machine.dup > 0. && draw st f ~salt:salt_dup < f.Machine.dup
      ->
        st.stats.dups <- st.stats.dups + 1;
        let copy =
          match data with
          | Floats a -> Floats (Array.copy a)
          | Ints a -> Ints (Array.copy a)
        in
        Queue.push (arrival +. latency, copy) (mailbox st ~dst ~src ~tag)
    | _ -> ()
  end;
  (* Transport-level acknowledgement: models the NIC acking on arrival,
     so it does not depend on the receiving rank's control flow (which
     is what keeps the reliable layer deadlock-free).  The ack crosses
     the reverse link and is itself subject to loss. *)
  match ack with
  | None -> ()
  | Some (ack_tag, seq) ->
      (* A dead destination's NIC cannot acknowledge: suppressing the
         ack is what makes the sender's reliable layer notice the
         failure (retries, then [Exhausted]). *)
      if (not dropped) && arrival < st.death.(dst) then begin
        let back = st.machine.Machine.link pdst psrc in
        let ack_arrival =
          arrival +. back.Machine.latency +. (8. /. back.Machine.bandwidth)
        in
        st.stats.messages <- st.stats.messages + 1;
        st.stats.bytes <- st.stats.bytes + 8;
        let ack_dropped =
          match faults with
          | Some f when f.Machine.drop > 0. ->
              draw st f ~salt:salt_ack < f.Machine.drop
          | _ -> false
        in
        if ack_dropped then st.stats.drops <- st.stats.drops + 1
        else begin
          st.stats.acks <- st.stats.acks + 1;
          Queue.push
            (ack_arrival, Ints [| seq |])
            (mailbox st ~dst:src ~src:dst ~tag:ack_tag)
        end
      end

(* Run one rank until it finishes or blocks on an empty mailbox.  Any
   exception escaping the rank body is wrapped with the rank's identity
   so the failure is attributable. *)
let handler st my_rank (body : int -> 'a) : 'a suspended =
  match_with
    (fun () ->
      let v = body my_rank in
      st.results.(my_rank) <- Some v)
    ()
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> raise (Rank_failure { rank = my_rank; exn = e }));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | E_compute t ->
              Some
                (fun (k : (b, _) continuation) ->
                  st_charge st my_rank t;
                  continue k ())
          | E_flops n ->
              Some
                (fun k ->
                  st_charge st my_rank (n *. st.machine.Machine.flop_time);
                  continue k ())
          | E_rank -> Some (fun k -> continue k my_rank)
          | E_size -> Some (fun k -> continue k st.nprocs)
          | E_time -> Some (fun k -> continue k st.clocks.(my_rank))
          | E_machine -> Some (fun k -> continue k st.machine)
          | E_scratch -> Some (fun k -> continue k st.scratch.(my_rank))
          | E_note_retry ->
              Some
                (fun k ->
                  st.stats.retries <- st.stats.retries + 1;
                  continue k ())
          | E_send (dst, tag, data) ->
              Some
                (fun k ->
                  if dst < 0 || dst >= st.nprocs then
                    invalid_arg "send: bad destination rank";
                  check_tag tag;
                  Wants_send (dst, tag, None, data, k))
          | E_send_acked (dst, tag, ack_tag, seq, data) ->
              Some
                (fun k ->
                  if dst < 0 || dst >= st.nprocs then
                    invalid_arg "send: bad destination rank";
                  check_tag tag;
                  check_tag ack_tag;
                  Wants_send (dst, tag, Some (ack_tag, seq), data, k))
          | E_recv (src, tag) ->
              Some
                (fun k ->
                  if src < 0 || src >= st.nprocs then
                    invalid_arg "recv: bad source rank";
                  check_tag tag;
                  Wants_recv (src, tag, k))
          | E_recv_opt (src, tag, timeout) ->
              Some
                (fun k ->
                  if src < 0 || src >= st.nprocs then
                    invalid_arg "recv: bad source rank";
                  check_tag tag;
                  if timeout < 0. then invalid_arg "recv: negative timeout";
                  Wants_recv_t (src, tag, st.clocks.(my_rank) +. timeout, k))
          | E_recv_any tag ->
              Some
                (fun k ->
                  check_tag tag;
                  Wants_recv_any (tag, k))
          | E_probe (src, tag) ->
              Some
                (fun k ->
                  if src < -1 || src >= st.nprocs then
                    invalid_arg "probe: bad source rank";
                  let arrived =
                    if src = -1 then
                      match any_mailbox st ~dst:my_rank ~tag with
                      | Some (_, arrival) -> arrival <= st.clocks.(my_rank)
                      | None -> false
                    else
                      let q = mailbox st ~dst:my_rank ~src ~tag in
                      (not (Queue.is_empty q))
                      && fst (Queue.peek q) <= st.clocks.(my_rank)
                  in
                  continue k arrived)
          | _ -> None);
    }

(* [run_report ?attempt ~machine ~nprocs body] simulates [nprocs] SPMD
   ranks each executing [body rank]; returns the run's outcome (results
   or the failing exception) together with the timing/fault report --
   failures keep their report, which is what the recovery driver and
   otterc's fault counters need.  [attempt] re-salts the permanent-kill
   schedule so each recovery retry sees fresh deaths. *)
let run_report ?(attempt = 0) ~machine ~nprocs (body : int -> 'a) :
    ('a array, exn) result * report =
  if nprocs < 1 then
    invalid_arg
      (Printf.sprintf "run: need at least one rank, got -p %d" nprocs);
  if nprocs >= 1 lsl src_bits then
    invalid_arg
      (Printf.sprintf "run: at most %d ranks are supported, got -p %d"
         ((1 lsl src_bits) - 1)
         nprocs);
  let place =
    match machine.Machine.placement with
    | None ->
        if nprocs > machine.Machine.max_procs then
          invalid_arg
            (Printf.sprintf
               "run: %s has at most %d processors; to oversubscribe, map the \
                %d ranks onto its CPUs with --cpus C --map POLICY (or \
                Machine.with_placement)"
               machine.Machine.name machine.Machine.max_procs nprocs);
        None
    | Some { Machine.cpus; map } ->
        if cpus < 1 then
          invalid_arg
            (Printf.sprintf "run: need at least one CPU, got --cpus %d" cpus);
        if cpus > machine.Machine.max_procs then
          invalid_arg
            (Printf.sprintf "run: %s has at most %d processors, got --cpus %d"
               machine.Machine.name machine.Machine.max_procs cpus);
        if cpus > nprocs then
          invalid_arg
            (Printf.sprintf
               "run: more CPUs (--cpus %d) than ranks (-p %d); lower --cpus \
                or raise -p"
               cpus nprocs);
        let cpu_of =
          Array.init nprocs (fun r ->
              match map with
              | Machine.Map_block -> r * cpus / nprocs
              | Machine.Map_cyclic -> r mod cpus
              | Machine.Map_random seed ->
                  min (cpus - 1)
                    (int_of_float
                       (Rng.uniform ~seed:(seed lxor 0x6d61) r
                       *. float_of_int cpus)))
        in
        Some (cpu_of, Array.make cpus 0.)
  in
  let st =
    {
      machine;
      nprocs;
      clocks = Array.make nprocs 0.;
      mailboxes = Array.init nprocs (fun _ -> Hashtbl.create 8);
      channel_free = Hashtbl.create 8;
      stats =
        {
          messages = 0;
          bytes = 0;
          compute_time = 0.;
          drops = 0;
          dups = 0;
          delayed = 0;
          stalls = 0;
          retries = 0;
          acks = 0;
          kills = 0;
          sched_picks = 0;
        };
      results = Array.make nprocs None;
      scratch = Array.init nprocs (fun _ -> Hashtbl.create 16);
      fault_ix = 0;
      death = death_schedule machine.Machine.faults ~nprocs ~attempt;
      place;
    }
  in
  (* Publish the fast-path context for the whole run, restoring the
     enclosing one (if any) on the way out so nested simulations
     compose. *)
  let xctx =
    {
      x_clocks = st.clocks;
      x_stats = st.stats;
      x_machine = machine;
      x_flop_time = machine.Machine.flop_time;
      x_nprocs = nprocs;
      x_scratch = st.scratch;
      x_place = place;
      x_rank = 0;
    }
  in
  let prev_ctx = !current in
  current := Some xctx;
  Fun.protect ~finally:(fun () -> current := prev_ctx) @@ fun () ->
  (* Cooperative scheduling in virtual-time order: of all ranks that
     can make progress (initial start, pending send, or a blocked
     receive whose message has arrived), always resume the one with
     the smallest virtual clock.  This keeps shared-channel
     reservations consistent with simulated time.  A receive blocked
     with a deadline is always eventually runnable: it sorts by its
     deadline, so it fires only once no other rank could still produce
     an earlier event -- which is what makes timing out safe. *)
  let states = Array.make nprocs None in
  let pending_start = Array.make nprocs true in
  let dead = Array.make nprocs false in
  let detect =
    match machine.Machine.faults with
    | Some f when f.Machine.detect > 0. -> f.Machine.detect
    | _ -> 0.
  in
  (* The failure detector: a receive blocked on a peer scheduled to die
     becomes runnable at (death + detect) -- the heartbeat deadline --
     and, if no message showed up by then, is broken with a typed
     [Peer_failed].  Sends the peer issued before dying carry strictly
     smaller scheduler keys, so they are always delivered first: the
     detector never falsely condemns a slow-but-alive sender. *)
  let detector_key src =
    if detect > 0. && st.death.(src) < infinity then st.death.(src) +. detect
    else Float.nan
  in
  let base_key r =
    (* [nan] = cannot step; otherwise the virtual time used for pick *)
    if pending_start.(r) then st.clocks.(r)
    else
      match states.(r) with
      | None -> Float.nan
      | Some Finished -> Float.nan
      | Some (Wants_send _) -> st.clocks.(r)
      | Some (Wants_recv (src, tag, _)) ->
          if Queue.is_empty (mailbox st ~dst:r ~src ~tag) then detector_key src
          else st.clocks.(r)
      | Some (Wants_recv_any (tag, _)) ->
          (* no single peer to watch for death: a wildcard wait with no
             pending message simply stays blocked (total silence ends
             the run as a [Deadlock] with this wait in the diagnostic) *)
          if any_mailbox st ~dst:r ~tag = None then Float.nan
          else st.clocks.(r)
      | Some (Wants_recv_t (src, tag, deadline, _)) ->
          let q = mailbox st ~dst:r ~src ~tag in
          if (not (Queue.is_empty q)) && fst (Queue.peek q) <= deadline then
            st.clocks.(r)
          else
            let d = detector_key src in
            if Float.is_nan d then deadline else Float.min deadline d
  in
  (* A doomed rank's death is itself a schedulable event: once the rank
     has no step strictly before its death time, the kill fires. *)
  let dies_now r key =
    st.death.(r) < infinity
    && (not dead.(r))
    && (Float.is_nan key || key >= st.death.(r))
  in
  let step_key r =
    if dead.(r) then Float.nan
    else
      let key = base_key r in
      if dies_now r key then st.death.(r) else key
  in
  let finished = ref 0 in
  (* O(log P) pick: a binary min-heap of (step_key, rank) ordered
     lexicographically, so the pop order -- smallest key, ties to the
     lowest rank -- reproduces the old linear scan bit-for-bit.
     Entries go stale lazily: [hkey.(r)] remembers the key rank [r] is
     currently enqueued under (nan = none); a popped entry is discarded
     unless it matches, then re-validated against a freshly computed
     [step_key] before it wins.  A rank's key only changes when the
     rank itself steps or when a message lands in its mailbox, which
     is exactly where [wake] is called; should a wake ever be missed,
     an empty heap triggers one full rebuild before declaring
     deadlock, so the failure mode is lost time, never a wrong
     schedule or a spurious deadlock. *)
  let heap_k = ref (Array.make (max 16 nprocs) 0.) in
  let heap_r = ref (Array.make (max 16 nprocs) 0) in
  let heap_n = ref 0 in
  let hkey = Array.make nprocs Float.nan in
  let hless ka ra kb rb = ka < kb || (ka = kb && ra < rb) in
  let hpush key r =
    let k = !heap_k and rr = !heap_r in
    let k, rr =
      if !heap_n < Array.length k then (k, rr)
      else begin
        let cap = 2 * Array.length k in
        let nk = Array.make cap 0. and nr = Array.make cap 0 in
        Array.blit k 0 nk 0 !heap_n;
        Array.blit rr 0 nr 0 !heap_n;
        heap_k := nk;
        heap_r := nr;
        (nk, nr)
      end
    in
    let i = ref !heap_n in
    incr heap_n;
    k.(!i) <- key;
    rr.(!i) <- r;
    let continue_up = ref true in
    while !continue_up && !i > 0 do
      let p = (!i - 1) / 2 in
      if hless k.(!i) rr.(!i) k.(p) rr.(p) then begin
        let tk = k.(!i) and tr = rr.(!i) in
        k.(!i) <- k.(p);
        rr.(!i) <- rr.(p);
        k.(p) <- tk;
        rr.(p) <- tr;
        i := p
      end
      else continue_up := false
    done
  in
  let hpop_root () =
    let k = !heap_k and rr = !heap_r in
    decr heap_n;
    let n = !heap_n in
    if n > 0 then begin
      k.(0) <- k.(n);
      rr.(0) <- rr.(n);
      let i = ref 0 in
      let continue_down = ref true in
      while !continue_down do
        let l = (2 * !i) + 1 and r2 = (2 * !i) + 2 in
        let s = ref !i in
        if l < n && hless k.(l) rr.(l) k.(!s) rr.(!s) then s := l;
        if r2 < n && hless k.(r2) rr.(r2) k.(!s) rr.(!s) then s := r2;
        if !s <> !i then begin
          let tk = k.(!i) and tr = rr.(!i) in
          k.(!i) <- k.(!s);
          rr.(!i) <- rr.(!s);
          k.(!s) <- tk;
          rr.(!s) <- tr;
          i := !s
        end
        else continue_down := false
      done
    end
  in
  (* Re-enqueue [r] if its key changed since it was last enqueued.
     Pushed keys are never nan, so the float [<>] below is nan-safe:
     nan (not enqueued) compares unequal to any fresh key. *)
  let wake r =
    let key = step_key r in
    if (not (Float.is_nan key)) && key <> hkey.(r) then begin
      hkey.(r) <- key;
      hpush key r
    end
  in
  let rec pick () =
    if !heap_n = 0 then begin
      (* safety net: rebuild from scratch before giving up *)
      Array.fill hkey 0 nprocs Float.nan;
      let any = ref false in
      for r = 0 to nprocs - 1 do
        let key = step_key r in
        if not (Float.is_nan key) then begin
          hkey.(r) <- key;
          hpush key r;
          any := true
        end
      done;
      if !any then pick () else -1
    end
    else begin
      let key = !heap_k.(0) and r = !heap_r.(0) in
      hpop_root ();
      if key <> hkey.(r) then pick () (* stale entry *)
      else begin
        hkey.(r) <- Float.nan;
        let fresh = step_key r in
        if Float.is_nan fresh then pick ()
        else if fresh <> key then begin
          hkey.(r) <- fresh;
          hpush fresh r;
          pick ()
        end
        else r
      end
    end
  in
  for r = 0 to nprocs - 1 do
    wake r
  done;
  let outcome =
    try
      while !finished < nprocs do
        let r = pick () in
        st.stats.sched_picks <- st.stats.sched_picks + 1;
        if r < 0 then begin
          let buf = Buffer.create 128 in
          Array.iteri
            (fun rr s ->
              if dead.(rr) then
                Buffer.add_string buf
                  (Printf.sprintf "  rank %d died at t=%.6f\n" rr st.death.(rr))
              else
                match s with
                | Some (Wants_recv (src, tag, _)) ->
                    Buffer.add_string buf
                      (Printf.sprintf "  rank %d waits for (src=%d, tag=%d)%s\n"
                         rr src tag
                         (if dead.(src) then " [source is dead]" else ""))
                | Some (Wants_recv_any (tag, _)) ->
                    Buffer.add_string buf
                      (Printf.sprintf
                         "  rank %d waits for (src=any, tag=%d)\n" rr tag)
                | Some (Wants_send (dst, tag, _, _, _)) ->
                    Buffer.add_string buf
                      (Printf.sprintf
                         "  rank %d pending send to (dst=%d, tag=%d)\n" rr dst
                         tag)
                | Some (Wants_recv_t _) | Some Finished | None -> ())
            states;
          raise (Deadlock (Buffer.contents buf))
        end;
        if dies_now r (base_key r) then begin
          (* The kill event: the rank stops forever.  Its continuation
             is dropped, its messages already in flight still arrive,
             and nothing it would have sent after this instant ever
             will.  Survivors learn of it from silence: missing acks
             (retries, then [Exhausted]) or the failure detector. *)
          dead.(r) <- true;
          pending_start.(r) <- false;
          st.clocks.(r) <- Float.max st.clocks.(r) st.death.(r);
          st.stats.kills <- st.stats.kills + 1;
          states.(r) <- Some Finished;
          incr finished
        end
        else begin
          xctx.x_rank <- r;
          let next =
            if pending_start.(r) then begin
              pending_start.(r) <- false;
              handler st r body
            end
            else
              match states.(r) with
              | Some (Wants_send (dst, tag, ack, data, k)) ->
                  deliver st ~src:r ~dst ~tag ?ack data;
                  (* the delivery may have unblocked the destination;
                     [r] itself is re-enqueued after the step *)
                  if dst <> r then wake dst;
                  continue k ()
              | Some (Wants_recv (src, tag, k)) ->
                  let q = mailbox st ~dst:r ~src ~tag in
                  if Queue.is_empty q then begin
                    (* the failure detector fired for this wait *)
                    let at = st.death.(src) +. detect in
                    st.clocks.(r) <- Float.max st.clocks.(r) at;
                    discontinue k (Peer_failed { rank = r; failed = src; at })
                  end
                  else begin
                    let arrival, data = Queue.pop q in
                    st.clocks.(r) <-
                      Float.max st.clocks.(r) arrival
                      +. st.machine.Machine.recv_overhead;
                    continue k data
                  end
              | Some (Wants_recv_any (tag, k)) -> (
                  match any_mailbox st ~dst:r ~tag with
                  | Some (src, _) ->
                      let arrival, data =
                        Queue.pop (mailbox st ~dst:r ~src ~tag)
                      in
                      st.clocks.(r) <-
                        Float.max st.clocks.(r) arrival
                        +. st.machine.Machine.recv_overhead;
                      continue k (src, data)
                  | None ->
                      (* unreachable: the scheduler only resumes a
                         wildcard wait once a message is pending *)
                      assert false)
              | Some (Wants_recv_t (src, tag, deadline, k)) ->
                  let q = mailbox st ~dst:r ~src ~tag in
                  if (not (Queue.is_empty q)) && fst (Queue.peek q) <= deadline
                  then begin
                    let arrival, data = Queue.pop q in
                    st.clocks.(r) <-
                      Float.max st.clocks.(r) arrival
                      +. st.machine.Machine.recv_overhead;
                    continue k (Some data)
                  end
                  else
                    let d = detector_key src in
                    if (not (Float.is_nan d)) && d < deadline then begin
                      let at = d in
                      st.clocks.(r) <- Float.max st.clocks.(r) at;
                      discontinue k (Peer_failed { rank = r; failed = src; at })
                    end
                    else begin
                      st.clocks.(r) <- deadline;
                      continue k None
                    end
              | Some Finished | None -> assert false
          in
          states.(r) <- Some next;
          (match next with Finished -> incr finished | _ -> ());
          wake r
        end
      done;
      (* Even a kill nobody was waiting on (a rank the others never
         talk to, or P=1) must fail the run: its result is gone. *)
      Array.iteri
        (fun r d ->
          if d then
            raise
              (Rank_failure
                 { rank = r; exn = Rank_killed { rank = r; at = st.death.(r) } }))
        dead;
      Ok
        (Array.init nprocs (fun r ->
             match st.results.(r) with
             | Some v -> v
             | None -> failwith "rank finished without result"))
    with e -> Error e
  in
  let report =
    {
      makespan = Array.fold_left Float.max 0. st.clocks;
      per_rank_clock = Array.copy st.clocks;
      jobs = [];
      messages = st.stats.messages;
      bytes = st.stats.bytes;
      compute_time = st.stats.compute_time;
      drops = st.stats.drops;
      dups = st.stats.dups;
      delayed = st.stats.delayed;
      stalls = st.stats.stalls;
      retries = st.stats.retries;
      acks = st.stats.acks;
      kills = st.stats.kills;
      sched_picks = st.stats.sched_picks;
    }
  in
  (outcome, report)

(* [run ~machine ~nprocs body] simulates [nprocs] SPMD ranks each
   executing [body rank]; returns their results and the timing report.
   Failures (rank crash, deadlock, permanent kill) raise. *)
let run ?attempt ~machine ~nprocs (body : int -> 'a) : 'a array * report =
  match run_report ?attempt ~machine ~nprocs body with
  | Ok results, report -> (results, report)
  | Error e, _ -> raise e
