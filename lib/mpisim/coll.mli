(** Collective operations built from point-to-point messages, so their
    cost emerges from the machine's link model.  All ranks must call
    the same collectives in the same order. *)

type op = Sum | Prod | Min | Max | Land | Lor

val bcast : root:int -> float array -> float array
(** Binomial-tree broadcast; every rank returns the root's data.
    Degenerates to {!bcast_linear} when P <= 2. *)

val bcast_linear : root:int -> float array -> float array
(** Root sends to each rank directly; the ablation baseline. *)

val reduce : root:int -> op:op -> float array -> float array
(** Binomial-tree reduction; meaningful on the root only. *)

val allreduce : op:op -> float array -> float array
(** Recursive-doubling allreduce (log P rounds of pairwise exchange).
    The combination order is fixed by rank, so every rank returns a
    bit-identical array. *)

val allreduce_scalar : op:op -> float -> float
val bcast_scalar : root:int -> float -> float
val barrier : unit -> unit

val vote : bool -> bool
(** One-bit agreement (logical-or allreduce): every rank returns [true]
    iff any rank voted [true].  The checkpoint machinery's boundary
    coordinator: all ranks leave with the same verdict or none do. *)

val gatherv : root:int -> counts:int array -> float array -> float array
(** Concatenate per-rank blocks (rank order) on the root; other ranks
    return [[||]]. *)

val allgatherv : counts:int array -> float array -> float array
(** Allgather: every rank returns the full concatenation.  Ring
    exchange (P-1 neighbour rounds) up to 64 ranks; a Bruck-style
    doubling schedule (O(P log P) messages) beyond, so large-P runs
    are not quadratic in messages. *)

val exscan : op:op -> identity:float -> float -> float
(** Exclusive prefix scan of one scalar per rank (recursive doubling):
    rank r gets the op-fold of ranks 0..r-1, [identity] on rank 0. *)
