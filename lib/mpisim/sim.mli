(** Deterministic discrete-event SPMD simulator.

    Every simulated rank is a delimited computation over effect
    handlers; communication and virtual time are effects.  The
    scheduler resumes runnable ranks lowest-virtual-clock first, so
    shared-channel contention is accounted in simulated-time order.

    When the machine carries a {!Machine.faults} model, delivery may
    drop, duplicate, or delay messages, stall senders, and degrade
    links for windows of virtual time; the schedule is a pure function
    of the fault seed, so identical seeds reproduce identical faults. *)

type payload = Floats of float array | Ints of int array

val payload_bytes : payload -> int

(** Operations available inside a simulated rank. *)

val send : dst:int -> tag:int -> payload -> unit
(** Eager, non-blocking; the payload is copied at send time. *)

val send_acked :
  dst:int -> tag:int -> ack_tag:int -> seq:int -> payload -> unit
(** Like {!send}, but a successful (non-dropped) delivery also queues a
    transport-level acknowledgement [Ints [|seq|]] back to the sender
    on [ack_tag] — modeling the NIC acking on arrival, independent of
    the receiving rank's control flow.  The ack crosses the reverse
    link and is itself subject to the fault model.  Used by
    {!Reliable}. *)

val recv : src:int -> tag:int -> payload
(** Blocks until a matching message arrives (FIFO per (src, tag)).
    Under a fault model, the model's [detect] timeout applies and
    {!Timeout} is raised once the deadline passes. *)

val recv_timeout : src:int -> tag:int -> timeout:float -> payload
(** Like {!recv} with an explicit deadline; raises {!Timeout}. *)

val recv_opt : src:int -> tag:int -> timeout:float -> payload option
(** Like {!recv} but returns [None] on expiry instead of raising; the
    rank's clock advances to the deadline. *)

val recv_wait : ?min_timeout:float -> src:int -> tag:int -> unit -> payload
(** Blocks with no timeout on a perfect network.  Under a fault model
    the wait is bounded by [max detect min_timeout] and raises
    {!Timeout} on expiry, so no primitive can hang a chaos run.  The
    reliable layer passes its worst-case retransmission window as
    [min_timeout] so a lawful retry storm is not condemned early. *)

val recv_any : tag:int -> int * payload
(** Wildcard-source receive: blocks until a message with [tag] arrives
    from any rank; returns (source, data).  Among pending candidates
    the earliest arrival wins, ties going to the lowest source rank,
    so the match is deterministic.  A wildcard wait no sender ever
    satisfies ends the run as a {!Deadlock} whose diagnostic lists the
    wait as [(src=any, tag=...)]. *)

val probe : src:int -> tag:int -> bool
(** Has a matching message already arrived (in virtual time) at this
    rank's mailbox?  Non-blocking; never advances the clock.
    [src = -1] is the wildcard: any source. *)

val recv_floats : src:int -> tag:int -> float array
(** Raises {!Protocol_error} on an integer payload. *)

val recv_ints : src:int -> tag:int -> int array
(** Raises {!Protocol_error} on a float payload. *)

val compute : float -> unit
(** Advance this rank's virtual clock by the given seconds. *)

val flops : float -> unit
(** Advance the clock by n floating-point operations at the machine's
    modeled rate. *)

val rank : unit -> int
val size : unit -> int
val time : unit -> float

val machine : unit -> Machine.t
(** The machine this rank is simulated on. *)

val reliable_on : unit -> bool
(** Whether the machine asks for the reliable-messaging layer. *)

val scratch : unit -> (int * int * int, int) Hashtbl.t
(** This rank's private counter table, fresh per [run]; the reliable
    layer keys its per-channel sequence numbers here. *)

val note_retry : unit -> unit
(** Count one retransmission in the run's report (reliable layer). *)

type job_stat = {
  job_name : string;
  job_first_rank : int;  (** base of the contiguous rank block *)
  job_procs : int;
  job_start : float;  (** virtual time the block became available *)
  job_finish : float;
  job_messages : int;
  job_bytes : int;
}
(** One tenant's share of a space-shared run.  [Sim.run] itself knows
    nothing about jobs ([jobs = []]); the multi-tenant scheduler
    aggregates its per-job sub-runs into one machine-level report with
    these rows filled in. *)

type report = {
  makespan : float;  (** max over per-rank clocks *)
  per_rank_clock : float array;
  jobs : job_stat list;  (** per-tenant accounting (scheduler only) *)
  messages : int;
  bytes : int;
  compute_time : float;  (** summed over ranks *)
  drops : int;  (** messages the fault model destroyed *)
  dups : int;  (** spurious duplicates it injected *)
  delayed : int;  (** delay spikes it injected *)
  stalls : int;  (** rank stalls it injected *)
  retries : int;  (** retransmissions by the reliable layer *)
  acks : int;  (** transport acknowledgements delivered *)
  kills : int;  (** ranks the fault model permanently killed *)
  sched_picks : int;
      (** scheduling steps (rank resumes + kill events) the
          discrete-event core executed; picks divided by wall-clock is
          the scheduler-throughput figure tracked in EXPERIMENTS.md *)
}

exception Deadlock of string
(** Raised when every live rank is blocked on an empty mailbox; the
    message lists who waits for what. *)

exception
  Timeout of { rank : int; src : int; tag : int; waited : float }
(** A receive with a deadline expired: [rank] gave up waiting [waited]
    seconds for a message from [src] with [tag]. *)

exception
  Protocol_error of { rank : int; src : int; tag : int; detail : string }
(** A message arrived whose payload does not match what the receiving
    code expects — the typed replacement for stringly [failwith]s. *)

exception Rank_failure of { rank : int; exn : exn }
(** Any exception escaping a rank body is wrapped with the rank's
    identity before aborting the simulation. *)

exception Peer_failed of { rank : int; failed : int; at : float }
(** The failure detector's verdict, delivered into a receive blocked on
    a permanently dead peer once the heartbeat deadline (the peer's
    death time plus the model's [detect] window) passes.  Surfaces
    wrapped in {!Rank_failure} naming the surviving waiter. *)

exception Rank_killed of { rank : int; at : float }
(** The fault model permanently killed [rank] at virtual time [at].
    Raised (wrapped in {!Rank_failure}) when the run drains, even if no
    survivor ever blocked on the victim. *)

val run :
  ?attempt:int ->
  machine:Machine.t ->
  nprocs:int ->
  (int -> 'a) ->
  'a array * report
(** [run ~machine ~nprocs body] simulates [nprocs] SPMD ranks each
    executing [body rank]; returns per-rank results and the timing
    report.  Deterministic: identical inputs give identical reports.
    [attempt] (default 0) re-salts the permanent-kill schedule so a
    recovery retry re-rolls which ranks die and when; the explicit
    [kill_rank] pin fires on attempt 0 only.

    Without a {!Machine.placement}, [nprocs] is capped by the machine's
    CPU count, one rank per CPU — the paper's setup.  With one, ranks
    are virtual: any [nprocs] (up to 2^20-1) time-share the placement's
    [cpus] CPUs under its mapping policy.  Compute charges serialize on
    the rank's CPU, links and contention are looked up between physical
    CPUs, and message semantics stay per-rank. *)

val run_report :
  ?attempt:int ->
  machine:Machine.t ->
  nprocs:int ->
  (int -> 'a) ->
  ('a array, exn) result * report
(** Like {!run}, but a failing run returns [Error exn] together with
    the report accumulated up to the failure — the fault counters the
    recovery driver and otterc print on an abort. *)
