(* Reliable messaging over the simulator's (possibly lossy) transport:
   ack/retry with exponential backoff and bounded retries, in the
   spirit of MatlabMPI's tolerate-the-network file-based transport.

   Every channel (sender, receiver, tag) carries an independent
   sequence number.  A data message is the application payload with its
   sequence number prepended; delivery triggers a transport-level
   acknowledgement (see [Sim.send_acked]) that the sender waits for
   with a timeout derived from the link's round-trip estimate.  A
   missing ack means the data (or the ack itself) was lost: the sender
   retransmits with doubled timeout, up to [max_retries] attempts,
   counting each retry in the run's report.  The receiver accepts the
   next expected sequence number and silently discards duplicates —
   whether injected by the fault model or retransmitted because only
   the ack was lost — so the application sees exactly-once delivery in
   order, bit-for-bit identical to a fault-free run.

   When the machine does not set [reliable], every operation falls
   through to the plain simulator primitives, so the protocol's cost
   (one ack per message, retransmissions) is paid only when asked
   for. *)

exception
  Exhausted of { rank : int; dst : int; tag : int; attempts : int }

(* Transport acks ride on the data tag shifted into their own tag
   space, far above the collectives' and run-time library's tags. *)
let ack_base = 0x400000
let ack_tag tag = tag + ack_base

let max_retries = 8
let backoff = 2.0
let timeout_factor = 4.0 (* initial timeout, in round-trip estimates *)

(* Per-channel sequence counters live in the rank's scratch table,
   keyed (direction, peer, tag). *)
let dir_send = 0
let dir_recv = 1

let next_counter dir peer tag =
  let h = Sim.scratch () in
  let key = (dir, peer, tag) in
  let v = Option.value ~default:0 (Hashtbl.find_opt h key) in
  Hashtbl.replace h key (v + 1);
  v

(* A pessimistic round-trip estimate for the retransmission timer:
   forward latency + serialization, plus the ack's way back.  Shared-
   channel queueing and degradation windows can exceed it; the
   exponential backoff absorbs that. *)
let rtt_estimate ~peer bytes =
  let m = Sim.machine () in
  let me = Sim.rank () in
  let fwd = m.Machine.link me peer and back = m.Machine.link peer me in
  fwd.Machine.latency
  +. (float_of_int bytes /. fwd.Machine.bandwidth)
  +. back.Machine.latency
  +. (8. /. back.Machine.bandwidth)
  +. m.Machine.send_overhead +. m.Machine.recv_overhead

let envelope seq = function
  | Sim.Floats a -> Sim.Floats (Array.append [| float_of_int seq |] a)
  | Sim.Ints a -> Sim.Ints (Array.append [| seq |] a)

let open_envelope ~src ~tag = function
  | Sim.Floats a when Array.length a >= 1 ->
      (int_of_float a.(0), Sim.Floats (Array.sub a 1 (Array.length a - 1)))
  | Sim.Ints a when Array.length a >= 1 ->
      (a.(0), Sim.Ints (Array.sub a 1 (Array.length a - 1)))
  | Sim.Floats _ | Sim.Ints _ ->
      raise
        (Sim.Protocol_error
           {
             rank = Sim.rank ();
             src;
             tag;
             detail = "reliable envelope too short for a sequence number";
           })

let protocol_send ~dst ~tag data =
  let seq = next_counter dir_send dst tag in
  let env = envelope seq data in
  let atag = ack_tag tag in
  let base = timeout_factor *. rtt_estimate ~peer:dst (Sim.payload_bytes env) in
  (* Wait for the ack of [seq]; older acks are re-acks of duplicates a
     previous call already settled — drain and keep waiting. *)
  let rec await timeout =
    match Sim.recv_opt ~src:dst ~tag:atag ~timeout with
    | Some (Sim.Ints [| s |]) when s = seq -> true
    | Some (Sim.Ints [| s |]) when s < seq -> await timeout
    | Some _ ->
        raise
          (Sim.Protocol_error
             {
               rank = Sim.rank ();
               src = dst;
               tag = atag;
               detail = "malformed transport acknowledgement";
             })
    | None -> false
  in
  let rec attempt n timeout =
    Sim.send_acked ~dst ~tag ~ack_tag:atag ~seq env;
    if not (await timeout) then begin
      if n >= max_retries then
        raise (Exhausted { rank = Sim.rank (); dst; tag; attempts = n + 1 });
      Sim.note_retry ();
      attempt (n + 1) (timeout *. backoff)
    end
  in
  attempt 0 base

(* The worst virtual time a lawful sender can still be retrying after:
   the whole exponential-backoff ladder, computed for a pessimistic
   payload.  The receiver's data wait must outlast it, or it would
   condemn a sender that is about to get through. *)
let worst_retrans_window ~peer =
  let base = timeout_factor *. rtt_estimate ~peer 65536 in
  let ladder = (backoff ** float_of_int (max_retries + 1)) -. 1. in
  base *. ladder /. (backoff -. 1.)

let protocol_recv ~src ~tag =
  let h = Sim.scratch () in
  let key = (dir_recv, src, tag) in
  let expected = Option.value ~default:0 (Hashtbl.find_opt h key) in
  let min_timeout = worst_retrans_window ~peer:src in
  let rec loop () =
    let seq, data =
      open_envelope ~src ~tag (Sim.recv_wait ~min_timeout ~src ~tag ())
    in
    if seq = expected then begin
      Hashtbl.replace h key (expected + 1);
      data
    end
    else loop () (* duplicate of an already-delivered message *)
  in
  loop ()

(* The wildcard receive: the simulator picks the source, then the
   per-channel sequencing of [protocol_recv] applies to whichever
   channel the message rode in on; duplicates are dropped and the wait
   resumes, still wildcard. *)
let rec protocol_recv_any ~tag =
  let src, env = Sim.recv_any ~tag in
  let seq, data = open_envelope ~src ~tag env in
  let h = Sim.scratch () in
  let key = (dir_recv, src, tag) in
  let expected = Option.value ~default:0 (Hashtbl.find_opt h key) in
  if seq = expected then begin
    Hashtbl.replace h key (expected + 1);
    (src, data)
  end
  else protocol_recv_any ~tag

let send ~dst ~tag data =
  if Sim.reliable_on () then protocol_send ~dst ~tag data
  else Sim.send ~dst ~tag data

let recv ~src ~tag =
  if Sim.reliable_on () then protocol_recv ~src ~tag else Sim.recv ~src ~tag

let recv_any ~tag =
  if Sim.reliable_on () then protocol_recv_any ~tag else Sim.recv_any ~tag

let recv_floats ~src ~tag =
  match recv ~src ~tag with
  | Sim.Floats a -> a
  | Sim.Ints _ ->
      raise
        (Sim.Protocol_error
           {
             rank = Sim.rank ();
             src;
             tag;
             detail = "expected a float payload, received integers";
           })

let recv_ints ~src ~tag =
  match recv ~src ~tag with
  | Sim.Ints a -> a
  | Sim.Floats _ ->
      raise
        (Sim.Protocol_error
           {
             rank = Sim.rank ();
             src;
             tag;
             detail = "expected an integer payload, received floats";
           })
