(** Counter-based pseudo-random numbers: a pure hash of (seed, global
    element index), so distributed matrices hold identical data for
    every processor count and for the sequential back ends. *)

val splitmix64 : int64 -> int64

val uniform : seed:int -> int -> float
(** Uniform in [0, 1). *)

val normal : seed:int -> int -> float
(** Standard normal (Box-Muller over two decorrelated uniforms). *)
