(** Reference interpreter for the MATLAB subset: the semantics oracle
    for the compiler and, with a {!Cost} model, the paper's sequential
    baselines. *)

exception Runtime_error of string

type value =
  | Scalar of float
  | Mat of Dense.t
  | Nd of Runtime.Nd.t  (** rank >= 3; trailing two dims are the matrix cell *)
  | Str of string

type captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array  (** dims, row-major data *)

type outcome = {
  output : string;
  captures : (string * captured) list;
  time : float; (** modeled sequential execution time *)
}

val run :
  ?capture:string list ->
  ?seed:int ->
  ?datadir:string ->
  mode:Cost.mode ->
  machine:Mpisim.Machine.t ->
  Mlang.Ast.program ->
  outcome
(** Interpret a resolved program, charging the given cost model against
    [machine]'s single-CPU parameters. *)
