(* Reference interpreter for the MATLAB subset.

   This is the semantic oracle for the compiler (results must agree
   with the compiled SPMD programs bit-for-bit up to reduction order)
   and, combined with a {!Cost} model, the two sequential baselines of
   the paper's Figure 2 (The MathWorks interpreter and the MATCOM
   compiler).

   Values are dynamically typed; a 1x1 matrix is normalized to a
   scalar, mirroring MATLAB's "everything is a matrix" semantics while
   matching the compiled code's replicated scalars. *)

open Mlang

exception Runtime_error of string

let error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

type value =
  | Scalar of float
  | Mat of Dense.t
  | Nd of Runtime.Nd.t (* rank >= 3; trailing two dims are the cell *)
  | Str of string

module Nda = Runtime.Nd

exception Break_exc
exception Continue_exc
exception Return_exc

type frame = {
  env : (string, value) Hashtbl.t;
  funcs : (string, Ast.func) Hashtbl.t;
  out : Buffer.t;
  cost : Cost.model;
  mutable rand_calls : int;
  seed : int;
  datadir : string;
  mutable end_extent : float option; (* value of 'end' in current index *)
  mpi_queues : (int, value Queue.t) Hashtbl.t;
      (* per-tag FIFO of pending self-sends: the interpreter is the
         P = 1 machine, so rank 0 only ever talks to itself *)
}

let truthy_scalar f = f <> 0.
let of_bool b = if b then 1. else 0.

let truthy = function
  | Scalar f -> truthy_scalar f
  | Mat m -> Dense.numel m > 0 && Array.for_all (fun x -> x <> 0.) m.Dense.data
  | Nd t -> Nda.numel t > 0 && Array.for_all (fun x -> x <> 0.) t.Nda.data
  | Str s -> s <> ""

(* Normalize 1x1 matrices to scalars. *)
let mat (m : Dense.t) : value =
  if Dense.numel m = 1 then Scalar m.Dense.data.(0) else Mat m

(* Same normalization for tensors, so a fully collapsed section
   behaves like the replicated scalar compiled code produces. *)
let nd (t : Nda.t) : value = if Nda.numel t = 1 then Scalar t.Nda.data.(0) else Nd t

let to_dense = function
  | Mat m -> m
  | Scalar f -> { Dense.rows = 1; cols = 1; data = [| f |] }
  | Nd _ -> error "tensor used where a matrix is required"
  | Str _ -> error "string used as a numeric value"

let as_scalar = function
  | Scalar f -> f
  | Mat m when Dense.numel m = 1 -> m.Dense.data.(0)
  | Mat _ -> error "matrix used where a scalar is required"
  | Nd _ -> error "tensor used where a scalar is required"
  | Str _ -> error "string used where a scalar is required"

let lookup fr v =
  match Hashtbl.find_opt fr.env v with
  | Some x -> x
  | None -> error "variable '%s' used before it is defined" v

(* --- operators ---------------------------------------------------------- *)

let scalar_binop (op : Ast.binop) a b =
  match op with
  | Ast.Add -> a +. b
  | Ast.Sub -> a -. b
  | Ast.Mul | Ast.Emul -> a *. b
  | Ast.Div | Ast.Ediv -> a /. b
  | Ast.Ldiv | Ast.Eldiv -> b /. a
  | Ast.Pow | Ast.Epow -> Float.pow a b
  | Ast.Lt -> of_bool (a < b)
  | Ast.Le -> of_bool (a <= b)
  | Ast.Gt -> of_bool (a > b)
  | Ast.Ge -> of_bool (a >= b)
  | Ast.Eq -> of_bool (a = b)
  | Ast.Ne -> of_bool (a <> b)
  | Ast.And | Ast.Shortand -> of_bool (truthy_scalar a && truthy_scalar b)
  | Ast.Or | Ast.Shortor -> of_bool (truthy_scalar a || truthy_scalar b)

(* Element-wise application with scalar broadcasting; each operation
   makes one pass over the data (no fusion: this is what interpreters
   and library-call translators do, and what their cost models charge). *)
(* Frame broadcasting (Remora-style): a matrix operand combined with a
   tensor is lifted over the tensor's leading axes; in row-major layout
   the cell element for tensor offset g is simply g mod cell_numel. *)
let frame_cell (t : Nda.t) (m : Dense.t) =
  if m.Dense.rows <> Nda.cell_rows t || m.Dense.cols <> Nda.cell_cols t then
    error "nonconformant operands (%dx%d cell vs %dx%d matrix)"
      (Nda.cell_rows t) (Nda.cell_cols t) m.Dense.rows m.Dense.cols;
  let cell = Nda.cell_numel t in
  fun g -> m.Dense.data.(g mod cell)

let broadcast2 fr op a b =
  match (a, b) with
  | Scalar x, Scalar y -> Scalar (scalar_binop op x y)
  | Mat m, Scalar y ->
      Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
      mat (Dense.map (fun x -> scalar_binop op x y) m)
  | Scalar x, Mat m ->
      Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
      mat (Dense.map (fun y -> scalar_binop op x y) m)
  | Mat ma, Mat mb ->
      Cost.charge_elem fr.cost ~elems:(Dense.numel ma) ~ops:1;
      mat (Dense.map2 (fun x y -> scalar_binop op x y) ma mb)
  | Nd t, Scalar y ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
      nd (Nda.map (fun x -> scalar_binop op x y) t)
  | Scalar x, Nd t ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
      nd (Nda.map (fun y -> scalar_binop op x y) t)
  | Nd ta, Nd tb ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel ta) ~ops:1;
      (try nd (Nda.map2 (fun x y -> scalar_binop op x y) ta tb)
       with Invalid_argument m -> error "%s" m)
  | Nd t, Mat m ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
      let cell = frame_cell t m in
      nd
        (Nda.init t.Nda.dims (fun g ->
             scalar_binop op t.Nda.data.(g) (cell g)))
  | Mat m, Nd t ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
      let cell = frame_cell t m in
      nd
        (Nda.init t.Nda.dims (fun g ->
             scalar_binop op (cell g) t.Nda.data.(g)))
  | (Str _, _ | _, Str _) -> error "arithmetic on strings"

let eval_binop fr op a b =
  match op with
  | Ast.Add | Ast.Sub | Ast.Emul | Ast.Ediv | Ast.Eldiv | Ast.Epow | Ast.Lt
  | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or ->
      broadcast2 fr op a b
  | Ast.Shortand ->
      Scalar (of_bool (truthy a && truthy b))
  | Ast.Shortor -> Scalar (of_bool (truthy a || truthy b))
  | Ast.Mul -> (
      match (a, b) with
      | Mat ma, Mat mb ->
          let flops =
            2. *. float_of_int (ma.Dense.rows * ma.Dense.cols * mb.Dense.cols)
          in
          Cost.charge_kernel fr.cost ~flops;
          mat (Dense.matmul ma mb)
      | (Nd _, (Mat _ | Nd _) | Mat _, Nd _) ->
          error "matrix multiplication of a tensor is not supported; use .*"
      | _ -> broadcast2 fr Ast.Emul a b)
  | Ast.Div -> (
      match (a, b) with
      | _, Scalar _ -> broadcast2 fr Ast.Ediv a b
      | _ -> error "matrix right division is not supported")
  | Ast.Ldiv -> (
      match (a, b) with
      | Scalar _, _ -> broadcast2 fr Ast.Eldiv a b
      | _ -> error "matrix left division (linear solve) is not supported")
  | Ast.Pow -> (
      match (a, b) with
      | Scalar x, Scalar y -> Scalar (Float.pow x y)
      | _ -> error "matrix power is not supported; use .^")

let scalar_fun1 name =
  match name with
  | "abs" -> Float.abs
  | "sqrt" -> sqrt
  | "exp" -> exp
  | "log" -> log
  | "log10" -> log10
  | "log2" -> fun x -> log x /. log 2.
  | "sin" -> sin
  | "cos" -> cos
  | "tan" -> tan
  | "asin" -> asin
  | "acos" -> acos
  | "atan" -> atan
  | "sinh" -> sinh
  | "cosh" -> cosh
  | "tanh" -> tanh
  | "floor" -> floor
  | "ceil" -> ceil
  | "round" -> Float.round
  | "fix" -> Float.trunc
  | "sign" -> fun x -> if x > 0. then 1. else if x < 0. then -1. else 0.
  | "double" -> fun x -> x
  | _ -> error "unknown unary function '%s'" name

let scalar_fun2 name =
  match name with
  | "mod" -> fun a b -> if b = 0. then a else a -. (b *. Float.floor (a /. b))
  | "rem" -> fun a b -> if b = 0. then a else Float.rem a b
  | "atan2" -> atan2
  | "hypot" -> Float.hypot
  | "power" -> Float.pow
  | "min" -> Float.min
  | "max" -> Float.max
  | _ -> error "unknown binary function '%s'" name

(* --- indexing ----------------------------------------------------------- *)

type index = Iall | Ivals of int array (* 0-based *)

let index_count extent = function
  | Iall -> extent
  | Ivals v -> Array.length v

let index_get extent idx k =
  match idx with
  | Iall -> k
  | Ivals v ->
      let i = v.(k) in
      if i < 0 || i >= extent then
        error "index %d out of bounds (extent %d)" (i + 1) extent;
      i

let value_to_index = function
  | Scalar f -> Ivals [| int_of_float f - 1 |]
  | Mat m -> Ivals (Array.map (fun f -> int_of_float f - 1) m.Dense.data)
  | Nd _ -> error "tensor used as an index"
  | Str _ -> error "string used as an index"

(* --- expressions -------------------------------------------------------- *)

let rec eval_expr fr (e : Ast.expr) : value =
  Cost.charge_dispatch fr.cost;
  match e.node with
  | Ast.Num f -> Scalar f
  | Ast.Str s -> Str s
  | Ast.Varref v -> lookup fr v
  | Ast.Colon -> error "':' outside an index"
  | Ast.End_marker -> (
      match fr.end_extent with
      | Some extent -> Scalar extent
      | None -> error "'end' outside an index")
  | Ast.Binop (op, a, b) -> eval_binop fr op (eval_expr fr a) (eval_expr fr b)
  | Ast.Unop (op, a) -> eval_unop fr op a
  | Ast.Range (a, step, b) ->
      let lo = as_scalar (eval_expr fr a) in
      let step =
        match step with Some s -> as_scalar (eval_expr fr s) | None -> 1.
      in
      let hi = as_scalar (eval_expr fr b) in
      let n =
        if step = 0. then 0
        else
          let raw = ((hi -. lo) /. step) +. 1e-9 in
          if raw < 0. then 0 else int_of_float (Float.floor raw) + 1
      in
      Cost.charge_elem fr.cost ~elems:n ~ops:1;
      mat (Dense.init 1 n (fun g -> lo +. (float_of_int g *. step)))
  | Ast.Matrix rows -> eval_matrix_literal fr rows
  | Ast.Index (v, args) -> eval_index fr (lookup fr v) args
  | Ast.Call (name, args) -> (
      match eval_call fr e.ann.pos name args ~nrets:1 with
      | r :: _ -> r
      | [] -> error "function '%s' returned no value" name)
  | Ast.Ident n | Ast.Apply (n, _) ->
      Source.error e.ann.pos "unresolved '%s' reached the interpreter" n

and eval_unop fr op a =
  match op with
  | Ast.Uplus -> eval_expr fr a
  | Ast.Neg -> (
      match eval_expr fr a with
      | Scalar f -> Scalar (-.f)
      | Mat m ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          mat (Dense.map (fun x -> -.x) m)
      | Nd t ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          nd (Nda.map (fun x -> -.x) t)
      | Str _ -> error "negation of a string")
  | Ast.Not -> (
      match eval_expr fr a with
      | Scalar f -> Scalar (of_bool (not (truthy_scalar f)))
      | Mat m ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          mat (Dense.map (fun x -> of_bool (x = 0.)) m)
      | Nd t ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          nd (Nda.map (fun x -> of_bool (x = 0.)) t)
      | Str _ -> error "negation of a string")
  | Ast.Transpose | Ast.Ctranspose -> (
      match eval_expr fr a with
      | Scalar f -> Scalar f
      | Mat m ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          mat (Dense.transpose m)
      | Nd _ -> error "transpose of a tensor is not supported"
      | Str s -> Str s)

and eval_matrix_literal fr rows =
  (* General concatenation: element values may themselves be matrices.
     Empty operands are dropped, as MATLAB does: [[], 1, 2] is [1, 2]. *)
  let vrows =
    List.map (fun row -> List.map (fun e -> to_dense (eval_expr fr e)) row) rows
  in
  let vrows =
    List.filter_map
      (fun row ->
        match List.filter (fun b -> Dense.numel b > 0) row with
        | [] -> None
        | row -> Some row)
      vrows
  in
  match vrows with
  | [] -> mat (Dense.create 0 0)
  | _ ->
      let hcat (blocks : Dense.t list) : Dense.t =
        match blocks with
        | [] -> Dense.create 0 0
        | b0 :: _ ->
            let rows = b0.Dense.rows in
            List.iter
              (fun b ->
                if b.Dense.rows <> rows then
                  error "inconsistent row counts in matrix literal")
              blocks;
            let cols = List.fold_left (fun a b -> a + b.Dense.cols) 0 blocks in
            let r = Dense.create rows cols in
            let off = ref 0 in
            List.iter
              (fun b ->
                for i = 0 to rows - 1 do
                  Array.blit b.Dense.data (i * b.Dense.cols) r.Dense.data
                    ((i * cols) + !off)
                    b.Dense.cols
                done;
                off := !off + b.Dense.cols)
              blocks;
            r
      in
      let parts = List.map hcat vrows in
      let cols = (List.hd parts).Dense.cols in
      List.iter
        (fun p ->
          if p.Dense.cols <> cols then
            error "inconsistent column counts in matrix literal")
        parts;
      let rows = List.fold_left (fun a p -> a + p.Dense.rows) 0 parts in
      let r = Dense.create rows cols in
      let off = ref 0 in
      List.iter
        (fun p ->
          Array.blit p.Dense.data 0 r.Dense.data (!off * cols)
            (p.Dense.rows * cols);
          off := !off + p.Dense.rows)
        parts;
      Cost.charge_elem fr.cost ~elems:(rows * cols) ~ops:1;
      mat r

and eval_index_arg fr extent (a : Ast.expr) : index =
  match a.node with
  | Ast.Colon -> Iall
  | _ ->
      let saved = fr.end_extent in
      fr.end_extent <- Some (float_of_int extent);
      let v = eval_expr fr a in
      fr.end_extent <- saved;
      value_to_index v

and eval_index fr (base : value) args =
  match base with
  | Str _ -> error "indexing a string"
  | Scalar f ->
      List.iter
        (fun a ->
          let i = eval_index_arg fr 1 a in
          match i with
          | Iall -> ()
          | Ivals [| 0 |] -> ()
          | Ivals _ -> error "index out of bounds for a scalar")
        args;
      Scalar f
  | Mat m -> (
      match args with
      | [ a ] ->
          let n = Dense.numel m in
          let idx = eval_index_arg fr n a in
          let len = index_count n idx in
          let rows, cols =
            if m.Dense.rows = 1 then (1, len)
            else if m.Dense.cols = 1 then (len, 1)
            else if len = n then (m.Dense.rows, m.Dense.cols)
            else (len, 1)
          in
          Cost.charge_elem fr.cost ~elems:len ~ops:1;
          mat
            (Dense.init rows cols (fun g ->
                 Dense.get_linear m (index_get n idx g)))
      | [ a1; a2 ] ->
          let ri = eval_index_arg fr m.Dense.rows a1 in
          let rj = eval_index_arg fr m.Dense.cols a2 in
          let nr = index_count m.Dense.rows ri in
          let nc = index_count m.Dense.cols rj in
          Cost.charge_elem fr.cost ~elems:(nr * nc) ~ops:1;
          mat
            (Dense.init_rc nr nc (fun i j ->
                 Dense.get m (index_get m.Dense.rows ri i)
                   (index_get m.Dense.cols rj j)))
      | _ -> error "unsupported number of indices")
  | Nd t ->
      let r = Nda.rank t in
      if List.length args <> r then
        error "a rank-%d tensor must be indexed with exactly %d subscripts \
               (got %d)"
          r r (List.length args);
      let idxs =
        List.mapi (fun axis a -> eval_index_arg fr t.Nda.dims.(axis) a) args
      in
      let scalar_read =
        List.for_all (function Ivals [| _ |] -> true | _ -> false) idxs
      in
      let counts =
        Array.of_list
          (List.mapi (fun axis i -> index_count t.Nda.dims.(axis) i) idxs)
      in
      let idxs = Array.of_list idxs in
      Cost.charge_elem fr.cost ~elems:(Array.fold_left ( * ) 1 counts) ~ops:1;
      let fetch (sub : int array) =
        let full =
          Array.mapi (fun axis k -> index_get t.Nda.dims.(axis) idxs.(axis) k) sub
        in
        Nda.get t full
      in
      if scalar_read then Scalar (fetch (Array.make r 0))
      else
        (* a sectioning subscript keeps the rank: no dimension squeeze *)
        nd
          (Nda.init counts (fun g ->
               let sub = Array.make r 0 in
               let rem = ref g in
               for axis = r - 1 downto 0 do
                 sub.(axis) <- !rem mod counts.(axis);
                 rem := !rem / counts.(axis)
               done;
               fetch sub))

and eval_call fr pos name args ~nrets : value list =
  let module B = Analysis.Builtins in
  if Hashtbl.mem fr.funcs name then eval_user_call fr pos name args ~nrets
  else
    match B.find name with
    | None -> error "unknown function '%s'" name
    | Some b ->
        B.check_arity b (List.length args) pos;
        let vals = List.map (eval_expr fr) args in
        eval_builtin fr name b.B.kind vals ~nrets

and eval_builtin fr name kind (vals : value list) ~nrets : value list =
  let module B = Analysis.Builtins in
  let one v = [ v ] in
  let reduce_value op_init op_comb finish v =
    match v with
    | Scalar f -> Scalar (finish 1 f)
    | Mat m ->
        Cost.charge_kernel fr.cost ~flops:(float_of_int (Dense.numel m));
        if Dense.is_vector m then
          Scalar (finish (Dense.numel m) (Dense.fold op_comb op_init m))
        else
          mat
            (Dense.map
               (fun x -> finish m.Dense.rows x)
               (Dense.col_reduce op_comb op_init m))
    | Nd t ->
        (* Tensors reduce fully, to one scalar over every element. *)
        Cost.charge_kernel fr.cost ~flops:(float_of_int (Nda.numel t));
        Scalar (finish (Nda.numel t) (Nda.fold op_comb op_init t))
    | Str _ -> error "reduction of a string"
  in
  match (kind, vals) with
  | B.Map1 _, [ Scalar x ] -> one (Scalar (scalar_fun1 name x))
  | B.Map1 _, [ Mat m ] ->
      Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
      one (mat (Dense.map (scalar_fun1 name) m))
  | B.Map1 _, [ Nd t ] ->
      Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
      one (nd (Nda.map (scalar_fun1 name) t))
  | B.Map2 _, [ a; b ] -> (
      let f = scalar_fun2 name in
      match (a, b) with
      | Scalar x, Scalar y -> one (Scalar (f x y))
      | Mat m, Scalar y ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          one (mat (Dense.map (fun x -> f x y) m))
      | Scalar x, Mat m ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          one (mat (Dense.map (fun y -> f x y) m))
      | Mat ma, Mat mb ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel ma) ~ops:1;
          one (mat (Dense.map2 f ma mb))
      | Nd t, Scalar y ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          one (nd (Nda.map (fun x -> f x y) t))
      | Scalar x, Nd t ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          one (nd (Nda.map (fun y -> f x y) t))
      | Nd ta, Nd tb ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel ta) ~ops:1;
          (try one (nd (Nda.map2 f ta tb))
           with Invalid_argument m -> error "%s" m)
      | Nd t, Mat m ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          let cell = frame_cell t m in
          one (nd (Nda.init t.Nda.dims (fun g -> f t.Nda.data.(g) (cell g))))
      | Mat m, Nd t ->
          Cost.charge_elem fr.cost ~elems:(Nda.numel t) ~ops:1;
          let cell = frame_cell t m in
          one (nd (Nda.init t.Nda.dims (fun g -> f (cell g) t.Nda.data.(g))))
      | _ -> error "'%s' of a string" name)
  | B.Minmax _, [ v ] when nrets = 2 -> (
      (* [m, i] = min(v): extremum and the 1-based index of its first
         occurrence (storage order for vectors, column order else). *)
      match v with
      | Scalar f -> [ Scalar f; Scalar 1. ]
      | Mat m when Dense.is_vector m ->
          Cost.charge_kernel fr.cost ~flops:(float_of_int (Dense.numel m));
          let cmp = if name = "min" then ( < ) else ( > ) in
          (* NaN is never better; anything beats a NaN (MATLAB) *)
          let better x best =
            (not (Float.is_nan x)) && (Float.is_nan best || cmp x best)
          in
          let best = ref m.Dense.data.(0) and best_i = ref 0 in
          Array.iteri
            (fun i x ->
              if better x !best then begin
                best := x;
                best_i := i
              end)
            m.Dense.data;
          [ Scalar !best; Scalar (float_of_int (!best_i + 1)) ]
      | Mat _ -> error "[m, i] = %s of a full matrix is not supported" name
      | Nd _ -> error "[m, i] = %s of a tensor is not supported" name
      | Str _ -> error "%s of a string" name)
  | B.Minmax _, [ v ] ->
      (* MATLAB ignores NaNs: min/max over the non-NaN elements, NaN
         only when every element is NaN.  NaN is the fold identity. *)
      let pick = if name = "min" then Float.min else Float.max in
      let comb a b =
        if Float.is_nan a then b
        else if Float.is_nan b then a
        else pick a b
      in
      one (reduce_value Float.nan comb (fun _ x -> x) v)
  | B.Scan _, [ v ] -> (
      let combine = if name = "cumsum" then ( +. ) else ( *. ) in
      let identity = if name = "cumsum" then 0. else 1. in
      match v with
      | Scalar f -> one (Scalar f)
      | Mat m when Dense.is_vector m ->
          Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
          let acc = ref identity in
          one
            (mat
               (Dense.init m.Dense.rows m.Dense.cols (fun g ->
                    acc := combine !acc m.Dense.data.(g);
                    !acc)))
      | Mat _ -> error "%s of a full matrix is not supported" name
      | Nd _ -> error "%s of a tensor is not supported" name
      | Str _ -> error "%s of a string" name)
  | B.Minmax _, [ _; _ ] -> eval_builtin fr name (B.Map2 name) vals ~nrets
  | B.Reduce _, [ v ] -> (
      match name with
      | "sum" -> one (reduce_value 0. ( +. ) (fun _ x -> x) v)
      | "prod" -> one (reduce_value 1. ( *. ) (fun _ x -> x) v)
      | "mean" ->
          one (reduce_value 0. ( +. ) (fun n x -> x /. float_of_int n) v)
      | "norm" -> (
          match v with
          | Scalar f -> one (Scalar (Float.abs f))
          | Mat m when Dense.is_vector m ->
              Cost.charge_kernel fr.cost
                ~flops:(2. *. float_of_int (Dense.numel m));
              one (Scalar (sqrt (Dense.fold (fun a x -> a +. (x *. x)) 0. m)))
          | Mat _ -> error "norm of a full matrix is not supported"
          | Nd _ -> error "norm of a tensor is not supported"
          | Str _ -> error "norm of a string")
      | "any" ->
          one
            (Scalar
               (match v with
               | Scalar f -> of_bool (truthy_scalar f)
               | Mat m -> of_bool (Array.exists (fun x -> x <> 0.) m.Dense.data)
               | Nd t -> of_bool (Array.exists (fun x -> x <> 0.) t.Nda.data)
               | Str _ -> error "any of a string"))
      | "all" -> one (Scalar (of_bool (truthy v)))
      | _ -> error "unknown reduction '%s'" name)
  | B.Dot, [ a; b ] ->
      let ma = to_dense a and mb = to_dense b in
      if Dense.numel ma <> Dense.numel mb then error "dot: length mismatch";
      Cost.charge_kernel fr.cost ~flops:(2. *. float_of_int (Dense.numel ma));
      let acc = ref 0. in
      Array.iteri (fun i x -> acc := !acc +. (x *. mb.Dense.data.(i))) ma.Dense.data;
      one (Scalar !acc)
  | B.Trapz, [ y ] ->
      let m = to_dense y in
      Cost.charge_kernel fr.cost ~flops:(5. *. float_of_int (Dense.numel m));
      one (Scalar (Dense.trapz m))
  | B.Trapz, [ x; y ] ->
      let mx = to_dense x and my = to_dense y in
      if Dense.numel mx <> Dense.numel my then
        error "trapz: x and y sizes disagree";
      Cost.charge_kernel fr.cost ~flops:(5. *. float_of_int (Dense.numel my));
      one (Scalar (Dense.trapz ~x:mx my))
  | B.Shift, [ v; k ] ->
      let m = to_dense v in
      Cost.charge_elem fr.cost ~elems:(Dense.numel m) ~ops:1;
      one (mat (Dense.circshift m (int_of_float (as_scalar k))))
  | B.Constructor _, _ -> one (eval_constructor fr name vals)
  | B.Query "size", [ Nd t ] ->
      if nrets = 2 then error "two-output size of a tensor is not supported"
      else
        one
          (mat
             (Dense.init 1 (Nda.rank t) (fun g ->
                  float_of_int t.Nda.dims.(g))))
  | B.Query "size", [ v ] ->
      let m = to_dense v in
      if nrets = 2 then
        [ Scalar (float_of_int m.Dense.rows); Scalar (float_of_int m.Dense.cols) ]
      else
        one
          (mat
             (Dense.init 1 2 (fun g ->
                  float_of_int (if g = 0 then m.Dense.rows else m.Dense.cols))))
  | B.Query "size", [ Nd t; d ] ->
      let d = int_of_float (as_scalar d) in
      one
        (Scalar
           (if d >= 1 && d <= Nda.rank t then float_of_int t.Nda.dims.(d - 1)
            else 1.))
  | B.Query "size", [ v; d ] ->
      let m = to_dense v in
      one
        (Scalar
           (match int_of_float (as_scalar d) with
           | 1 -> float_of_int m.Dense.rows
           | 2 -> float_of_int m.Dense.cols
           | _ -> 1.))
  | B.Query "length", [ Nd t ] ->
      one (Scalar (float_of_int (Array.fold_left max 0 t.Nda.dims)))
  | B.Query "length", [ v ] ->
      let m = to_dense v in
      one (Scalar (float_of_int (max m.Dense.rows m.Dense.cols)))
  | B.Query "numel", [ Nd t ] -> one (Scalar (float_of_int (Nda.numel t)))
  | B.Query "numel", [ v ] ->
      one (Scalar (float_of_int (Dense.numel (to_dense v))))
  | B.Output "disp", [ v ] ->
      (match v with
      | Scalar f -> Buffer.add_string fr.out (Printf.sprintf "%g\n" f)
      | Str s -> Buffer.add_string fr.out (s ^ "\n")
      | Mat m ->
          Buffer.add_string fr.out
            (Fmtutil.format_matrix ~rows:m.Dense.rows ~cols:m.Dense.cols
               m.Dense.data)
      | Nd t ->
          Buffer.add_string fr.out
            (Fmtutil.format_tensor ~dims:t.Nda.dims t.Nda.data));
      []
  | B.Output "fprintf", fmt :: rest ->
      (match fmt with
      | Str f ->
          let args =
            List.map
              (function
                | Scalar x -> Fmtutil.F x
                | Str s -> Fmtutil.S s
                | Mat _ | Nd _ -> error "fprintf of a whole matrix")
              rest
          in
          Buffer.add_string fr.out (Fmtutil.format f args)
      | _ -> error "fprintf: first argument must be a format string");
      []
  | B.Sort, [ v ] -> (
      match v with
      | Scalar f -> if nrets = 2 then [ Scalar f; Scalar 1. ] else [ Scalar f ]
      | Mat m when Dense.is_vector m ->
          let n = Dense.numel m in
          Cost.charge_kernel fr.cost ~flops:(float_of_int (n * 8));
          let order = Array.init n (fun i -> i) in
          Array.sort
            (fun a b ->
              (* MATLAB sorts NaNs to the end (OCaml's compare puts
                 them first) *)
              let x = m.Dense.data.(a) and y = m.Dense.data.(b) in
              let c =
                match (Float.is_nan x, Float.is_nan y) with
                | true, true -> 0
                | true, false -> 1
                | false, true -> -1
                | false, false -> compare x y
              in
              if c <> 0 then c else compare a b)
            order;
          let sorted =
            Dense.init m.Dense.rows m.Dense.cols (fun g -> m.Dense.data.(order.(g)))
          in
          if nrets = 2 then
            [
              mat sorted;
              mat
                (Dense.init m.Dense.rows m.Dense.cols (fun g ->
                     float_of_int (order.(g) + 1)));
            ]
          else [ mat sorted ]
      | Mat _ -> error "sort of a full matrix is not supported"
      | Nd _ -> error "sort of a tensor is not supported"
      | Str _ -> error "sort of a string")
  | B.Diag, [ v ] -> (
      match v with
      | Scalar f -> one (Scalar f)
      | Mat m when Dense.is_vector m ->
          let n = Dense.numel m in
          Cost.charge_elem fr.cost ~elems:(n * n) ~ops:1;
          one
            (mat
               (Dense.init_rc n n (fun i j ->
                    if i = j then Dense.get_linear m i else 0.)))
      | Nd _ -> error "diag of a tensor is not supported"
      | Mat m ->
          let n = min m.Dense.rows m.Dense.cols in
          Cost.charge_elem fr.cost ~elems:n ~ops:1;
          one (mat (Dense.init n 1 (fun g -> Dense.get m g g)))
      | Str _ -> error "diag of a string")
  | B.Repmat, [ v; r; c ] -> (
      let rr = int_of_float (as_scalar r) and cc = int_of_float (as_scalar c) in
      if rr < 1 || cc < 1 then error "repmat: tile counts must be positive";
      let m = to_dense v in
      let rows = m.Dense.rows * rr and cols = m.Dense.cols * cc in
      Cost.charge_elem fr.cost ~elems:(rows * cols) ~ops:1;
      one
        (mat
           (Dense.init_rc rows cols (fun i j ->
                Dense.get m (i mod m.Dense.rows) (j mod m.Dense.cols)))))
  | B.Load, [ Str fname ] -> (
      let path = Filename.concat fr.datadir fname in
      match Mlang.Datafile.read path with
      | rows, cols, data ->
          Cost.charge_elem fr.cost ~elems:(rows * cols) ~ops:1;
          one (mat { Dense.rows; cols; data })
      | exception Mlang.Datafile.Bad_data msg -> error "load(%S): %s" fname msg)
  | B.Error_fn, [ Str msg ] -> error "%s" msg
  | B.Constant c, [] -> one (Scalar c)
  | B.Mpi op, _ -> (
      (* Serial oracle semantics: one rank, so every send is a
         self-send.  Sends enqueue per tag; a receive on an empty queue
         is the one-rank picture of a deadlock. *)
      let q tag =
        match Hashtbl.find_opt fr.mpi_queues tag with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace fr.mpi_queues tag q;
            q
      in
      let rank_arg what v =
        let r = int_of_float (as_scalar v) in
        if r <> 0 then error "%s: %s rank %d is outside 0..0" name what r
      in
      (* Receives and probes admit the any-source wildcard (-1); on one
         rank it is indistinguishable from source 0. *)
      let source_arg v =
        let r = int_of_float (as_scalar v) in
        if r <> 0 && r <> -1 then
          error "%s: source rank %d is outside 0..0 (use -1 for any source)"
            name r
      in
      let tag_arg v =
        let f = as_scalar v in
        let t = int_of_float f in
        if float_of_int t <> f || t < 0 then
          error "%s: message tags must be non-negative integers" name;
        t
      in
      let copy = function
        | Mat m -> Mat (Dense.copy m)
        | Nd t -> Nd (Nda.copy t)
        | v -> v
      in
      match (op, vals) with
      | B.Mrank, [] -> one (Scalar 0.)
      | B.Msize, [] -> one (Scalar 1.)
      | B.Msend, [ dst; tag; v ] ->
          rank_arg "destination" dst;
          let t = tag_arg tag in
          (match v with
          | Str _ -> error "MPI_Send: cannot send a string"
          | Nd _ -> error "MPI_Send: cannot send a tensor"
          | v -> Queue.push (copy v) (q t));
          []
      | B.Mrecv, [ src; tag ] ->
          source_arg src;
          let t = tag_arg tag in
          let q = q t in
          if Queue.is_empty q then
            error
              "MPI_Recv: no message pending on tag %d; on one rank this \
               receive would deadlock"
              t;
          one (copy (Queue.pop q))
      | B.Mbcast, [ root; v ] -> (
          rank_arg "root" root;
          match v with
          | Str _ -> error "MPI_Bcast: cannot send a string"
          | Nd _ -> error "MPI_Bcast: cannot send a tensor"
          | v -> one (copy v))
      | B.Mprobe, [ src; tag ] ->
          source_arg src;
          let t = tag_arg tag in
          one (Scalar (if Queue.is_empty (q t) then 0. else 1.))
      | _ -> error "unsupported call to '%s'" name)
  | _ -> error "unsupported call to '%s'" name

and eval_constructor fr name vals : value =
  (* zeros/ones/rand/randn with three size arguments build a rank-3
     tensor: pages x rows x cols, the page axis being the leading
     (frame, block-distributed) axis. *)
  let dims3 () =
    match vals with
    | [ p; r; c ] ->
        Some
          [|
            int_of_float (as_scalar p);
            int_of_float (as_scalar r);
            int_of_float (as_scalar c);
          |]
    | _ -> None
  in
  let dims () =
    match vals with
    | [ n ] ->
        let n = int_of_float (as_scalar n) in
        (n, n)
    | [ r; c ] -> (int_of_float (as_scalar r), int_of_float (as_scalar c))
    | [] -> (1, 1)
    | _ -> error "constructor expects at most 2 size arguments"
  in
  let charge r c = Cost.charge_elem fr.cost ~elems:(r * c) ~ops:1 in
  let charge_nd d = Cost.charge_elem fr.cost ~elems:(Array.fold_left ( * ) 1 d) ~ops:1 in
  match name with
  | "zeros" -> (
      match dims3 () with
      | Some d ->
          charge_nd d;
          nd (Nda.create d)
      | None ->
          let r, c = dims () in
          charge r c;
          mat (Dense.create r c))
  | "ones" -> (
      match dims3 () with
      | Some d ->
          charge_nd d;
          nd (Nda.init d (fun _ -> 1.))
      | None ->
          let r, c = dims () in
          charge r c;
          mat (Dense.init r c (fun _ -> 1.)))
  | "eye" ->
      let r, c = dims () in
      charge r c;
      mat (Dense.init_rc r c (fun i j -> if i = j then 1. else 0.))
  | "rand" | "randn" -> (
      fr.rand_calls <- fr.rand_calls + 1;
      let seed = fr.seed + fr.rand_calls in
      let gen =
        if name = "rand" then Runtime.Rng.uniform ~seed
        else Runtime.Rng.normal ~seed
      in
      match dims3 () with
      | Some d ->
          charge_nd d;
          nd (Nda.init d gen)
      | None ->
          let r, c = dims () in
          charge r c;
          mat (Dense.init r c gen))
  | "linspace" -> (
      match vals with
      | [ a; b; n ] ->
          let a = as_scalar a and b = as_scalar b in
          let n = int_of_float (as_scalar n) in
          let d = if n > 1 then (b -. a) /. float_of_int (n - 1) else 0. in
          charge 1 n;
          mat (Dense.init 1 n (fun g -> a +. (float_of_int g *. d)))
      | _ -> error "linspace takes three arguments")
  | _ -> error "unknown constructor '%s'" name

and eval_user_call fr pos name args ~nrets : value list =
  let f = Hashtbl.find fr.funcs name in
  if List.length args <> List.length f.Ast.params then
    Source.error pos "function '%s' expects %d arguments" name
      (List.length f.Ast.params);
  let vals = List.map (eval_expr fr) args in
  let callee = { fr with env = Hashtbl.create 16 } in
  List.iter2
    (fun p v ->
      let v = match v with Mat m -> Mat (Dense.copy m) | other -> other in
      Hashtbl.replace callee.env p v)
    f.Ast.params vals;
  (try exec_block callee f.Ast.fbody with Return_exc -> ());
  fr.rand_calls <- callee.rand_calls;
  let rets =
    List.map
      (fun r ->
        match Hashtbl.find_opt callee.env r with
        | Some v -> v
        | None ->
            error "function '%s' did not assign return value '%s'" name r)
      f.Ast.returns
  in
  if List.length rets < nrets then
    error "function '%s' returns %d values, %d requested" name
      (List.length rets) nrets;
  rets

(* --- statements --------------------------------------------------------- *)

and display fr name v =
  match v with
  | Scalar f -> Buffer.add_string fr.out (Printf.sprintf "%s = %g\n" name f)
  | Str s -> Buffer.add_string fr.out (Printf.sprintf "%s = %s\n" name s)
  | Mat m ->
      Buffer.add_string fr.out
        (Fmtutil.format_matrix ~name ~rows:m.Dense.rows ~cols:m.Dense.cols
           m.Dense.data)
  | Nd t ->
      Buffer.add_string fr.out
        (Fmtutil.format_tensor ~name ~dims:t.Nda.dims t.Nda.data)

and assign_indexed fr (l : Ast.lhs) rhs_val =
  (* An out-of-bounds store grows the array MATLAB-style: vectors (and
     scalars, and []) extend along their orientation, zero-filled;
     two-index stores grow both dimensions.  Only a linear store into a
     full matrix cannot decide which dimension to grow. *)
  let needed = function
    | Iall -> 0
    | Ivals vs -> Array.fold_left (fun a v -> max a (v + 1)) 0 vs
  in
  let grown (m : Dense.t) rows cols =
    if rows <= m.Dense.rows && cols <= m.Dense.cols then m
    else begin
      let g =
        Dense.create (max rows m.Dense.rows) (max cols m.Dense.cols)
      in
      for i = 0 to m.Dense.rows - 1 do
        for j = 0 to m.Dense.cols - 1 do
          Dense.set g i j (Dense.get m i j)
        done
      done;
      g
    end
  in
  match lookup fr l.lv_name with
  | Str _ -> error "indexed assignment into a string"
  | Nd t ->
      let t = Nda.copy t in
      let r = Nda.rank t in
      let args = Option.get l.lv_indices in
      if List.length args <> r then
        error "a rank-%d tensor must be indexed with exactly %d subscripts \
               (got %d)"
          r r (List.length args);
      let idxs =
        Array.of_list
          (List.mapi (fun axis a -> eval_index_arg fr t.Nda.dims.(axis) a) args)
      in
      (* Tensors never grow: every index must land in bounds. *)
      let counts =
        Array.mapi (fun axis i -> index_count t.Nda.dims.(axis) i) idxs
      in
      let total = Array.fold_left ( * ) 1 counts in
      let src =
        match rhs_val with
        | Scalar f -> `Fill f
        | Nd s ->
            if Nda.numel s <> total then error "section assignment size mismatch";
            `Data s.Nda.data
        | Mat m ->
            if Dense.numel m <> total then error "section assignment size mismatch";
            `Data m.Dense.data
        | Str _ -> error "cannot store a string into a tensor"
      in
      Cost.charge_elem fr.cost ~elems:total ~ops:1;
      let sub = Array.make r 0 in
      for g = 0 to total - 1 do
        let rem = ref g in
        for axis = r - 1 downto 0 do
          sub.(axis) <- !rem mod counts.(axis);
          rem := !rem / counts.(axis)
        done;
        let full =
          Array.mapi (fun axis k -> index_get t.Nda.dims.(axis) idxs.(axis) k) sub
        in
        Nda.set t full (match src with `Fill f -> f | `Data d -> d.(g))
      done;
      Hashtbl.replace fr.env l.lv_name (Nd t)
  | (Scalar _ | Mat _) as base -> (
      let m = Dense.copy (to_dense base) in
      (* copy-on-write semantics *)
      let args = Option.get l.lv_indices in
      match args with
      | [ a ] ->
          let idx = eval_index_arg fr (Dense.numel m) a in
          let m =
            if needed idx <= Dense.numel m then m
            else if m.Dense.rows <= 1 then grown m 1 (needed idx)
            else if m.Dense.cols = 1 then grown m (needed idx) 1
            else
              error
                "linear indexed assignment cannot grow a full matrix \
                 (ambiguous dimension)"
          in
          let n = Dense.numel m in
          let len = index_count n idx in
          let src = to_dense rhs_val in
          Cost.charge_elem fr.cost ~elems:len ~ops:1;
          if Dense.numel src = 1 then
            for k = 0 to len - 1 do
              Dense.set_linear m (index_get n idx k) src.Dense.data.(0)
            done
          else begin
            if Dense.numel src <> len then
              error "section assignment size mismatch";
            for k = 0 to len - 1 do
              Dense.set_linear m (index_get n idx k) src.Dense.data.(k)
            done
          end;
          Hashtbl.replace fr.env l.lv_name (mat m)
      | [ a1; a2 ] ->
          let ri = eval_index_arg fr m.Dense.rows a1 in
          let rj = eval_index_arg fr m.Dense.cols a2 in
          let m =
            grown m (max m.Dense.rows (needed ri))
              (max m.Dense.cols (needed rj))
          in
          let nr = index_count m.Dense.rows ri in
          let nc = index_count m.Dense.cols rj in
          let src = to_dense rhs_val in
          Cost.charge_elem fr.cost ~elems:(nr * nc) ~ops:1;
          if Dense.numel src = 1 then
            for i = 0 to nr - 1 do
              for j = 0 to nc - 1 do
                Dense.set m (index_get m.Dense.rows ri i)
                  (index_get m.Dense.cols rj j)
                  src.Dense.data.(0)
              done
            done
          else begin
            if Dense.numel src <> nr * nc then
              error "section assignment size mismatch";
            for i = 0 to nr - 1 do
              for j = 0 to nc - 1 do
                Dense.set m (index_get m.Dense.rows ri i)
                  (index_get m.Dense.cols rj j)
                  (Dense.get src i j)
              done
            done
          end;
          Hashtbl.replace fr.env l.lv_name (mat m)
      | _ -> error "unsupported number of indices")

and exec_stmt fr (s : Ast.stmt) =
  Cost.charge_dispatch fr.cost;
  match s.sdesc with
  | Ast.Assign (l, rhs, disp) -> (
      let v = eval_expr fr rhs in
      (match l.lv_indices with
      | None -> Hashtbl.replace fr.env l.lv_name v
      | Some _ -> assign_indexed fr l v);
      if disp then display fr l.lv_name (lookup fr l.lv_name))
  | Ast.Multi_assign (ls, rhs, disp) -> (
      match rhs.node with
      | Ast.Call (name, args) ->
          let rets = eval_call fr rhs.ann.pos name args ~nrets:(List.length ls) in
          List.iteri
            (fun i (l : Ast.lhs) ->
              match List.nth_opt rets i with
              | Some v -> (
                  match l.lv_indices with
                  | None -> Hashtbl.replace fr.env l.lv_name v
                  | Some _ -> assign_indexed fr l v)
              | None -> error "not enough return values")
            ls;
          if disp then
            List.iter
              (fun (l : Ast.lhs) -> display fr l.lv_name (lookup fr l.lv_name))
              ls
      | _ -> error "multiple assignment requires a function call")
  | Ast.Expr (e, disp) -> (
      match e.node with
      | Ast.Call (name, args)
        when (not (Hashtbl.mem fr.funcs name))
             && (match Analysis.Builtins.find name with
                | Some { Analysis.Builtins.kind = Analysis.Builtins.Output _; _ }
                | Some { Analysis.Builtins.kind = Analysis.Builtins.Error_fn; _ }
                | Some
                    {
                      Analysis.Builtins.kind =
                        Analysis.Builtins.Mpi Analysis.Builtins.Msend;
                      _;
                    } ->
                    true
                | _ -> false) ->
          ignore (eval_call fr e.ann.pos name args ~nrets:0)
      | _ ->
          let v = eval_expr fr e in
          if disp then display fr "ans" v)
  | Ast.If (branches, els) ->
      let rec pick = function
        | [] -> exec_block fr els
        | (c, blk) :: rest ->
            if truthy (eval_expr fr c) then exec_block fr blk else pick rest
      in
      pick branches
  | Ast.While (c, blk) -> (
      try
        while truthy (eval_expr fr c) do
          try exec_block fr blk with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ast.For (v, range, blk) -> (
      let rv = eval_expr fr range in
      let iterate values =
        try
          Array.iter
            (fun x ->
              Hashtbl.replace fr.env v x;
              try exec_block fr blk with Continue_exc -> ())
            values
        with Break_exc -> ()
      in
      match rv with
      | Scalar f -> iterate [| Scalar f |]
      | Mat m when Dense.is_vector m ->
          iterate (Array.map (fun x -> Scalar x) m.Dense.data)
      | Mat m ->
          (* MATLAB iterates over columns. *)
          iterate
            (Array.init m.Dense.cols (fun j ->
                 mat (Dense.init m.Dense.rows 1 (fun i -> Dense.get m i j))))
      | Nd _ -> error "for over a tensor is not supported"
      | Str _ -> error "for over a string")
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Return -> raise Return_exc

and exec_block fr (b : Ast.block) = List.iter (exec_stmt fr) b

(* --- entry point --------------------------------------------------------- *)

type captured =
  | Cscalar of float
  | Cmat of int * int * float array
  | Cnd of int array * float array

type outcome = {
  output : string;
  captures : (string * captured) list;
  time : float; (* modeled sequential execution time *)
}

let run ?(capture = []) ?(seed = 42) ?(datadir = ".") ~mode ~machine
    (p : Ast.program) : outcome
    =
  let out = Buffer.create 256 in
  let funcs = Hashtbl.create 8 in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace funcs f.Ast.fname f) p.funcs;
  (* The interpreter is sequential (one simulated rank), so rank
     attribution adds nothing: unwrap and rethrow the original error. *)
  let unwrap f =
    try f () with Mpisim.Sim.Rank_failure { exn; _ } -> raise exn
  in
  let results, report =
    unwrap @@ fun () ->
    Mpisim.Sim.run ~machine:Mpisim.Machine.workstation ~nprocs:1 (fun _ ->
        let fr =
          {
            env = Hashtbl.create 64;
            funcs;
            out;
            cost = Cost.make mode machine;
            rand_calls = 0;
            seed;
            datadir;
            end_extent = None;
            mpi_queues = Hashtbl.create 8;
          }
        in
        (try exec_block fr p.script with Return_exc -> ());
        List.filter_map
          (fun name ->
            match Hashtbl.find_opt fr.env name with
            | Some (Scalar f) -> Some (name, Cscalar f)
            | Some (Mat m) ->
                Some
                  (name, Cmat (m.Dense.rows, m.Dense.cols, Array.copy m.Dense.data))
            | Some (Nd t) ->
                Some (name, Cnd (Array.copy t.Nda.dims, Array.copy t.Nda.data))
            | Some (Str _) | None -> None)
          capture)
  in
  { output = Buffer.contents out; captures = results.(0); time = report.makespan }
