(* The middle-end pass manager.

   Every IR->IR optimization is a named pass in one registry; the driver
   assembles a pipeline from an optimization level (or an explicit
   pass list), and this module runs it, recording per-pass wall-clock
   time and rewrite statistics.  With [validate] set, the structural IR
   validator runs before the first pass and again after every pass, so
   a miscompiling rewrite is pinned to the pass that introduced it.

   Levels:
   - O0: no passes -- the IR exactly as lowered;
   - O1: the peephole pass alone (the historical default pipeline);
   - O2: peephole, then the global dataflow passes, then the
     communication optimizer. *)

type t = {
  name : string;
  descr : string;
  run : Ir.prog -> Ir.prog * (string * int) list;
}

let peephole : t =
  {
    name = "peephole";
    descr = "straight-line rewrites: copy forwarding, broadcast reuse, \
             transpose/shift collapsing, dead temporaries";
    run =
      (fun p ->
        let stats = Peephole.fresh_stats () in
        let p' = Peephole.optimize ~stats p in
        ( p',
          [
            ("copies-forwarded", stats.Peephole.copies_forwarded);
            ("broadcasts-reused", stats.Peephole.broadcasts_reused);
            ("transposes-collapsed", stats.Peephole.transposes_collapsed);
            ("shifts-combined", stats.Peephole.shifts_combined);
            ("dead-removed", stats.Peephole.dead_removed);
          ] ));
  }

let licm : t =
  {
    name = "licm";
    descr = "loop-invariant communication motion: hoist broadcasts, \
             constructors and pure reductions out of loops";
    run = Licm.run;
  }

let gre : t =
  {
    name = "gre";
    descr = "global redundancy elimination: reuse earlier broadcasts, \
             transposes and reductions of unmodified operands";
    run = Gre.run;
  }

let copyprop : t =
  {
    name = "copyprop";
    descr = "copy propagation and liveness dead code elimination over \
             named variables";
    run = Copyprop.run;
  }

let fold_construct : t =
  {
    name = "fold-construct";
    descr = "fold single-use zeros/ones/eye constructors into the \
             element-wise expressions that consume them";
    run = Fold.run;
  }

let comm : t =
  {
    name = "comm";
    descr = "communication optimization: batch adjacent element \
             broadcasts, fuse sum-combining reductions into one vector \
             allreduce, eliminate transpose-feeding-matmul pairs";
    run = Comm.run;
  }

let registry : t list = [ peephole; licm; gre; copyprop; fold_construct; comm ]

exception Unknown_pass of string

let find (name : string) : t =
  match List.find_opt (fun p -> p.name = name) registry with
  | Some p -> p
  | None -> raise (Unknown_pass name)

type level = O0 | O1 | O2

let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

let level_passes = function
  | O0 -> []
  | O1 -> [ "peephole" ]
  | O2 -> [ "peephole"; "licm"; "gre"; "copyprop"; "fold-construct"; "comm" ]

(* What one pass did on one program. *)
type record = {
  pass : string;
  rewrites : int;  (** total rewrites, summed over [detail] *)
  detail : (string * int) list;
  seconds : float;
}

(* Run [names] in order.  [validate] checks structural invariants
   before the first pass and after every pass; [dump_after] sees the
   program after each pass (the caller filters by name).  Unreferenced
   temporaries are pruned from the variable tables at the end, whatever
   the pipeline was. *)
let run_pipeline ?(validate = false) ?dump_after (names : string list)
    (prog : Ir.prog) : Ir.prog * record list =
  let passes = List.map find names in
  if validate then Validate.run ~where:"after lowering" prog;
  let prog, records =
    List.fold_left
      (fun (prog, records) pass ->
        let t0 = Unix.gettimeofday () in
        let prog', detail = pass.run prog in
        let seconds = Unix.gettimeofday () -. t0 in
        if validate then
          Validate.run ~where:(Printf.sprintf "after pass %s" pass.name) prog';
        (match dump_after with Some f -> f pass.name prog' | None -> ());
        let rewrites = List.fold_left (fun a (_, n) -> a + n) 0 detail in
        (prog', { pass = pass.name; rewrites; detail; seconds } :: records))
      (prog, []) passes
  in
  let prog = Dataflow.prune_temp_vars prog in
  if validate then Validate.run ~where:"after temp pruning" prog;
  (prog, List.rev records)
