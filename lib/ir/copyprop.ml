(* Copy propagation and liveness-based dead code elimination.

   Phase 1 forwards copies: after [d = copy s] (or the scalar
   [d = s]), later reads of [d] become reads of [s] until either side
   is redefined.  Phase 2 removes pure instructions none of whose
   results are live -- using the backward liveness of dataflow.ml, so it
   reaches named variables, not just temporaries as the peephole's
   sweep does.

   Named variables stay live at the end of the script and at function
   exits (along with return values): the driver may capture or print
   any of them, and the C back end declares a variable only to assign
   it.  rand/randn constructors and [Iload] never die -- the former
   shift the replicated random stream for every later draw, the latter
   can fault on a missing file. *)

module VSet = Dataflow.VSet

type stats = { mutable forwarded : int; mutable removed : int }

(* --- copy propagation --------------------------------------------------- *)

(* [env] maps a copy destination to its (already canonical) source. *)
let canon env v = match Hashtbl.find_opt env v with Some s -> s | None -> v

let kill_set env (killed : VSet.t) =
  if not (VSet.is_empty killed) then begin
    let stale =
      Hashtbl.fold
        (fun d s acc ->
          if VSet.mem d killed || VSet.mem s killed then d :: acc else acc)
        env []
    in
    List.iter (Hashtbl.remove env) stale
  end

let rec prop_block stats env (b : Ir.block) : Ir.block =
  List.concat_map
    (fun (i : Ir.inst) ->
      let subst v =
        let v' = canon env v in
        if v' <> v then stats.forwarded <- stats.forwarded + 1;
        v'
      in
      match i with
      | Ir.Iif (branches, els) ->
          let conds =
            match Dataflow.map_uses subst i with
            | Ir.Iif (bs, _) -> List.map fst bs
            | _ -> assert false
          in
          (* each arm refines a private copy of the facts *)
          let arms =
            List.map
              (fun (_, blk) -> prop_block stats (Hashtbl.copy env) blk)
              branches
          in
          let els' = prop_block stats (Hashtbl.copy env) els in
          let killed =
            List.fold_left
              (fun acc (_, blk) -> VSet.union acc (Dataflow.block_defs blk))
              (Dataflow.block_defs els) branches
          in
          kill_set env killed;
          [ Ir.Iif (List.combine conds arms, els') ]
      | Ir.Iwhile (_, body) | Ir.Ifor (_, _, _, _, body) ->
          (* facts killed by any iteration are unusable anywhere in or
             after the loop -- conditions and bounds included, since both
             back ends re-evaluate the while condition (and the C back
             end the for stop expression) on every trip *)
          let killed =
            match i with
            | Ir.Ifor (v, _, _, _, _) -> VSet.add v (Dataflow.block_defs body)
            | _ -> Dataflow.block_defs body
          in
          kill_set env killed;
          (* the body refines a private copy: a fact established inside
             the body must not survive the loop (it may run zero times) *)
          [
            (match Dataflow.map_uses subst i with
            | Ir.Iwhile (c, _) ->
                Ir.Iwhile (c, prop_block stats (Hashtbl.copy env) body)
            | Ir.Ifor (v, a, st, b2, _) ->
                Ir.Ifor (v, a, st, b2, prop_block stats (Hashtbl.copy env) body)
            | _ -> assert false);
          ]
      | _ -> (
          let i = Dataflow.map_uses subst i in
          kill_set env (VSet.of_list (Ir.inst_defs i));
          match i with
          | Ir.Icopy (d, s) | Ir.Iscalar (d, Ir.Svar s) ->
              if d = s then begin
                stats.removed <- stats.removed + 1;
                []
              end
              else begin
                Hashtbl.replace env d s;
                [ i ]
              end
          | _ -> [ i ]))
    b

(* --- liveness DCE ------------------------------------------------------- *)

let removable (i : Ir.inst) =
  Ir.inst_pure i
  && (not (Dataflow.is_rand i))
  && (match i with Ir.Iload _ -> false | _ -> true)
  && Ir.inst_defs i <> []

(* Backward over the block: returns the rewritten block and its live-in
   set given [out] live on exit.  [jump] is what an early exit makes
   live: the body's exit-live set, widened with the loop-head fixpoint
   of every enclosing loop (a break / continue / return transfers
   control there, so everything live at those points is live here). *)
let rec dce_block stats ~(jump : VSet.t) (b : Ir.block) (out : VSet.t) :
    Ir.block * VSet.t =
  List.fold_right
    (fun (i : Ir.inst) (acc, live) ->
      match i with
      | Ir.Ireturn | Ir.Ibreak | Ir.Icontinue ->
          (i :: acc, VSet.union live jump)
      | Ir.Iif (branches, els) ->
          let arms =
            List.map (fun (c, blk) -> (c, dce_block stats ~jump blk live)) branches
          in
          let els', els_in = dce_block stats ~jump els live in
          if
            List.for_all (fun (_, (blk, _)) -> blk = []) arms && els' = []
          then begin
            stats.removed <- stats.removed + 1;
            (acc, live)
          end
          else
            (* live-in covers every arm's own live-in: an arm ending in
               return / break makes the jump target's live set live here,
               which [Dataflow.inst_live] alone would miss *)
            let live_in =
              List.fold_left
                (fun acc (_, (_, l)) -> VSet.union acc l)
                (VSet.union els_in (Dataflow.inst_live i live))
                arms
            in
            ( Ir.Iif (List.map (fun (c, (blk, _)) -> (c, blk)) arms, els') :: acc,
              live_in )
      | Ir.Iwhile (c, body) ->
          (* the fixpoint live set holds at the loop head of every
             iteration, hence also at the body's exit (back edge and
             loop exit alike) *)
          let fix = Dataflow.inst_live i live in
          let body', body_in =
            dce_block stats ~jump:(VSet.union jump fix) body fix
          in
          (Ir.Iwhile (c, body') :: acc, VSet.union fix body_in)
      | Ir.Ifor (v, a, st, b2, body) ->
          let fix = Dataflow.inst_live i live in
          let body', body_in =
            dce_block stats ~jump:(VSet.union jump fix) body (VSet.add v fix)
          in
          ( Ir.Ifor (v, a, st, b2, body') :: acc,
            VSet.union fix (VSet.remove v body_in) )
      | _ ->
          let defs = Ir.inst_defs i in
          if removable i && not (List.exists (fun d -> VSet.mem d live) defs)
          then begin
            stats.removed <- stats.removed + 1;
            (acc, live)
          end
          else (i :: acc, Dataflow.inst_live i live))
    b ([], out)

let exit_live_script (p : Ir.prog) : VSet.t =
  List.fold_left
    (fun acc (v, _) -> if Dataflow.is_temp v then acc else VSet.add v acc)
    VSet.empty p.Ir.p_vars

let exit_live_func (f : Ir.func) : VSet.t =
  List.fold_left
    (fun acc (v, _) -> if Dataflow.is_temp v then acc else VSet.add v acc)
    VSet.empty f.Ir.f_vars

let run (p : Ir.prog) : Ir.prog * (string * int) list =
  let stats = { forwarded = 0; removed = 0 } in
  let body = prop_block stats (Hashtbl.create 16) p.Ir.p_body in
  let exit = exit_live_script p in
  let body, _ = dce_block stats ~jump:exit body exit in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        let fb = prop_block stats (Hashtbl.create 16) f.Ir.f_body in
        let exit = exit_live_func f in
        let fb, _ = dce_block stats ~jump:exit fb exit in
        { f with Ir.f_body = fb })
      p.Ir.p_funcs
  in
  ( { p with Ir.p_body = body; p_funcs = funcs },
    [ ("forwarded", stats.forwarded); ("removed", stats.removed) ] )
