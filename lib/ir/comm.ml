(* Communication optimization (the last -O2 pass).

   Three rewrites, each replacing several collectives with one:

   - batching: a run of element broadcasts from the same matrix becomes
     a single [Ibcast_batch] -- one collective replicates the whole
     batch instead of one broadcast tree per element;
   - fusion: a run of sum-combining scalar reductions (sum, mean, dot,
     norm) becomes a single [Ireduce_fused] vector allreduce carrying
     every slot's local partial at once;
   - transpose elimination: a transpose feeding a matrix multiply as
     the left operand becomes [Imatmul_t], which skips the all-to-all
     redistribution the transpose implies.  The transpose itself is
     dropped when it defined a single-use temporary.

   Lowering rarely places two collectives back to back -- each is
   followed by the local arithmetic consuming its result -- so the run
   collector looks PAST local (communication-free, pure) instructions:
   locals independent of the collected collectives are hoisted before
   the fused operation, locals reading a collected result sink after
   it.  Relative order within each group is preserved, and a collective
   whose operand is written by a sunk instruction ends the run, so
   data dependences always hold.  Impure instructions (prints, stores,
   calls) and other communication are barriers.

   All three rewrites are exact: the local partials and the per-element
   combine order are unchanged, so the rewritten program produces
   bit-identical values. *)

type stats = {
  mutable broadcasts_batched : int; (* Ibcast instructions coalesced *)
  mutable reductions_fused : int; (* reduction instructions coalesced *)
  mutable matmuls_detransposed : int; (* Imatmul -> Imatmul_t rewrites *)
}

(* Pure and communication-free: safe to reorder against a collective
   when the data dependences allow it.  rand/randn are excluded even
   though [Ir.inst_pure] admits them: their draws are sequence-numbered
   on the replicated stream, so two draws must never swap. *)
let is_local i =
  (not (Dataflow.is_rand i))
  &&
  match i with
  | Ir.Iscalar _ | Ir.Ielem _ | Ir.Icopy _ | Ir.Iconstruct _ | Ir.Iliteral _
  | Ir.Iload _ ->
      true
  | _ -> false

(* A reduction eligible for fusion: every alternative combines by
   summation, so one Sum allreduce can carry the batch.  Tensor
   operands are excluded — the batched runtime entry points
   ([bcast_elems], [reduce_fused]) are matrix-only. *)
let fused_of is_tensor = function
  | Ir.Ireduce_all (d, Ir.Rsum, m) when not (is_tensor m) ->
      Some (d, Ir.Fsum m)
  | Ir.Ireduce_all (d, Ir.Rmean, m) when not (is_tensor m) ->
      Some (d, Ir.Fmean m)
  | Ir.Idot (d, a, b) -> Some (d, Ir.Fdot (a, b))
  | Ir.Inorm (d, m) when not (is_tensor m) -> Some (d, Ir.Fnorm m)
  | _ -> None

(* One collected run: slots in program order, locals hoisted before the
   fused collective, locals sunk after it, and the unscanned tail. *)
type 'a run = {
  slots : (Ir.var * 'a) list;
  pre : Ir.inst list;
  post : Ir.inst list;
  tail : Ir.inst list;
}

(* Scan past locals for more instructions matched by [eligible],
   starting from an already-matched first slot.  A matched instruction
   joins the run only when its destination is fresh and none of its
   operands were written by a sunk (post) instruction.  A local sinks
   when it touches anything the run defines or the post group uses;
   otherwise it hoists.  Anything else stops the scan. *)
let scan (eligible : Ir.inst -> (Ir.var * 'a) option) (first : Ir.var * 'a)
    ~(first_uses : Ir.var list) (rest : Ir.inst list) : 'a run =
  let slots = ref [ first ] in
  let slot_dsts = ref [ fst first ] in
  let slot_uses = ref first_uses in
  let pre = ref [] and post = ref [] in
  let post_defs = ref [] and post_uses = ref [] in
  let record_uses l = slot_uses := l @ !slot_uses in
  let mem l v = List.mem v l in
  let rec go = function
    | [] -> []
    | i :: tl as insts -> (
        match eligible i with
        | Some (d, slot)
          when (not (mem !slot_dsts d))
               && (not (mem !post_defs d))
               && (not (mem !post_uses d))
               && not (List.exists (mem !post_defs) (Ir.inst_uses i)) ->
            slots := (d, slot) :: !slots;
            slot_dsts := d :: !slot_dsts;
            record_uses (Ir.inst_uses i);
            go tl
        | _ ->
            if is_local i then begin
              let defs = Ir.inst_defs i and uses = Ir.inst_uses i in
              let sinks =
                List.exists (mem !slot_dsts) uses
                || List.exists (mem !post_defs) uses
                || List.exists (mem !slot_dsts) defs
                || List.exists (mem !slot_uses) defs
                || List.exists (mem !post_defs) defs
                || List.exists (mem !post_uses) defs
              in
              if sinks then begin
                post := i :: !post;
                post_defs := defs @ !post_defs;
                post_uses := uses @ !post_uses
              end
              else pre := i :: !pre;
              go tl
            end
            else insts)
  in
  let tail = go rest in
  {
    slots = List.rev !slots;
    pre = List.rev !pre;
    post = List.rev !post;
    tail;
  }

(* Look past locals that touch neither [t] nor [a] for the multiply
   consuming transpose [t] of [a] as its left operand. *)
let rec find_matmul t a seen = function
  | Ir.Imatmul (d, t', b) :: rest when t' = t && b <> t ->
      Some (d, b, List.rev seen, rest)
  | i :: rest
    when is_local i
         &&
         let defs = Ir.inst_defs i in
         (not (List.mem t defs)) && not (List.mem a defs) ->
      find_matmul t a (i :: seen) rest
  | _ -> None

let rec rewrite_block stats counts is_tensor (b : Ir.block) : Ir.block =
  let rewrite_block stats counts = rewrite_block stats counts is_tensor in
  let descend = function
    | Ir.Iif (branches, els) ->
        Ir.Iif
          ( List.map
              (fun (c, blk) -> (c, rewrite_block stats counts blk))
              branches,
            rewrite_block stats counts els )
    | Ir.Iwhile (c, blk) -> Ir.Iwhile (c, rewrite_block stats counts blk)
    | Ir.Ifor (v, lo, step, hi, blk) ->
        Ir.Ifor (v, lo, step, hi, rewrite_block stats counts blk)
    | i -> i
  in
  let rec go = function
    | [] -> []
    | (Ir.Itranspose (t, a) as tr) :: rest when a <> t -> (
        match find_matmul t a [] rest with
        | Some (d, b, seen, rest') ->
            stats.matmuls_detransposed <- stats.matmuls_detransposed + 1;
            let mm = Ir.Imatmul_t (d, a, b) in
            if Dataflow.is_temp t && Dataflow.uses counts t = 1 then
              seen @ (mm :: go rest')
            else
              (* the transpose has other readers: keep it, but the
                 multiply still skips the redistribution *)
              tr :: (seen @ (mm :: go rest'))
        | None -> tr :: go rest)
    | (Ir.Ibcast (d, m, idx) as i) :: rest when not (is_tensor m) -> (
        let eligible = function
          | Ir.Ibcast (d', m', idx') when m' = m -> Some (d', idx')
          | _ -> None
        in
        match scan eligible (d, idx) ~first_uses:(Ir.inst_uses i) rest with
        | { slots; pre; post; tail } when List.length slots >= 2 ->
            stats.broadcasts_batched <-
              stats.broadcasts_batched + List.length slots;
            pre @ (Ir.Ibcast_batch (slots, m) :: post) @ go tail
        | _ -> i :: go rest)
    | i :: rest -> (
        match fused_of is_tensor i with
        | Some first -> (
            match
              scan (fused_of is_tensor) first ~first_uses:(Ir.inst_uses i) rest
            with
            | { slots; pre; post; tail } when List.length slots >= 2 ->
                stats.reductions_fused <-
                  stats.reductions_fused + List.length slots;
                pre @ (Ir.Ireduce_fused slots :: post) @ go tail
            | _ -> i :: go rest)
        | None -> descend i :: go rest)
  in
  go b

let run (p : Ir.prog) : Ir.prog * (string * int) list =
  let stats =
    { broadcasts_batched = 0; reductions_fused = 0; matmuls_detransposed = 0 }
  in
  let tensor_pred vars =
    let h = Hashtbl.create 16 in
    List.iter
      (fun (v, t) -> if Analysis.Ty.is_tensor t then Hashtbl.replace h v ())
      vars;
    fun v -> Hashtbl.mem h v
  in
  let rewrite_body vars b =
    rewrite_block stats (Dataflow.use_counts b) (tensor_pred vars) b
  in
  let p' =
    {
      p with
      Ir.p_body = rewrite_body p.Ir.p_vars p.Ir.p_body;
      p_funcs =
        List.map
          (fun (f : Ir.func) ->
            { f with Ir.f_body = rewrite_body f.f_vars f.f_body })
          p.Ir.p_funcs;
    }
  in
  ( p',
    [
      ("broadcasts-batched", stats.broadcasts_batched);
      ("reductions-fused", stats.reductions_fused);
      ("matmuls-detransposed", stats.matmuls_detransposed);
    ] )
