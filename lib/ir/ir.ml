(* The loosely synchronous SPMD intermediate representation.

   This is what the expression-rewriting pass (paper pass 4) produces:
   communication-bearing operations have been lifted to statement level
   as run-time library calls; remaining element-wise matrix arithmetic
   is a single fused loop over locally owned elements ([Ielem]);
   statements touching individual matrix elements carry owner guards
   ([Isetelem]) or broadcasts ([Ibcast]).

   Scalars are replicated: a scalar expression ([sexpr]) is evaluated
   identically by every process, which keeps control flow loosely
   synchronous.  Both back ends consume this IR: the C emitter prints
   it as SPMD C with ML_* calls, and the VM executes it on the
   simulator. *)

type var = string

(* Replicated scalar expressions. *)
type sexpr =
  | Sconst of float
  | Sstr of string (* string literal (only as a call argument) *)
  | Svar of var
  | Sbin of Mlang.Ast.binop * sexpr * sexpr
  | Sneg of sexpr
  | Snot of sexpr
  | Scall of string * sexpr list (* scalar builtin: sqrt, mod, ... *)
  | Sdim of var * int (* 0 = numel, 1 = rows, 2 = cols, 3 = length *)

(* Per-element expressions for fused element-wise loops.  All [Emat]
   operands are conformable and identically distributed, so evaluation
   is purely local. *)
type eexpr =
  | Emat of var (* local element i of a distributed matrix *)
  | Eeye
    (* 1.0 when the current element lies on the main diagonal of the
       model matrix, else 0.0: an eye(...) operand folded into the
       loop instead of materialized (see the fold-construct pass) *)
  | Escalar of sexpr (* replicated scalar, hoisted out of the loop *)
  | Ebin of Mlang.Ast.binop * eexpr * eexpr
  | Eneg of eexpr
  | Enot of eexpr
  | Ecall1 of string * eexpr (* element-wise builtin *)
  | Ecall2 of string * eexpr * eexpr

(* Reductions provided by the run-time library. *)
type rkind = Rsum | Rprod | Rmin | Rmax | Rmean | Rany | Rall

type scan_kind = Scumsum | Scumprod

(* One slot of a fused vector allreduce ([Ireduce_fused]).  Every
   alternative combines by summation, so a whole batch travels as a
   single Sum allreduce; the per-slot postprocessing (mean's division,
   norm's square root) is replicated local arithmetic. *)
type fused =
  | Fsum of var (* sum over all elements *)
  | Fmean of var (* sum / numel, division after the combine *)
  | Fdot of var * var (* inner product *)
  | Fnorm of var (* 2-norm: sqrt of the summed squares *)

(* Matrix constructors. *)
type ckind =
  | Czeros
  | Cones
  | Ceye
  | Crand
  | Crandn
  | Clinspace
  | Crange (* start : step : stop  ->  1 x n row vector *)

(* One index slot of a section. *)
type sel =
  | Sel_all (* ':' *)
  | Sel_scalar of sexpr (* single index *)
  | Sel_range of sexpr * sexpr option * sexpr (* lo : step? : hi *)
  | Sel_vec of var (* index vector held in a matrix variable *)

type print_arg = Pscalar of sexpr | Pmat of var | Pstr of string

type inst =
  | Iscalar of var * sexpr (* replicated scalar assignment *)
  | Ielem of { dst : var; model : var; expr : eexpr }
    (* dst gets the shape of [model]; one fused local loop *)
  | Icopy of var * var (* matrix copy (assignment between matrix vars) *)
  | Imatmul of var * var * var (* dst = a * b (ML_matrix_multiply) *)
  | Imatmul_t of var * var * var
    (* dst = a' * b (ML_matmul_t): the transpose is never materialized,
       so the all-to-all redistribution it implies is skipped *)
  | Idot of var * var * var (* scalar dst = a . b *)
  | Itranspose of var * var
  | Idiag of var * var
    (* dst = diag(src): vector -> diagonal matrix, matrix -> diagonal *)
  | Iouter of var * var * var (* dst = u * v' *)
  | Ireduce_all of var * rkind * var (* scalar dst = reduce(matrix) *)
  | Ireduce_cols of var * rkind * var (* 1 x cols dst = col-reduce *)
  | Inorm of var * var (* scalar dst = 2-norm *)
  | Iscan of var * scan_kind * var (* dst = cumsum/cumprod(vector) *)
  | Isort of { vdst : var; idst : var option; arg : var }
    (* sorted = sort(v) / [sorted, perm] = sort(v) *)
  | Ireduce_loc of { vdst : var; idst : var; kind : rkind; arg : var }
    (* [m, i] = min/max(vector) *)
  | Itrapz of var * var option * var (* scalar dst = trapz(x?, y) *)
  | Ishift of var * var * sexpr (* dst = circshift(src, k) *)
  | Ibcast of var * var * sexpr list (* scalar dst = mat(i[,j]): ML_broadcast *)
  | Ibcast_batch of (var * sexpr list) list * var
    (* scalar dsts = mat(i[,j]) each: adjacent element broadcasts from
       one matrix coalesced into a single ML_broadcast_batch *)
  | Ireduce_fused of (var * fused) list
    (* scalar dsts = sum-combining reductions fused into one vector
       allreduce (ML_reduce_fused) *)
  | Isetelem of var * sexpr list * sexpr (* mat(i[,j]) = scalar: owner guard *)
  | Iload of { dst : var; file : string } (* matrix from a data file *)
  | Iconstruct of { dst : var; kind : ckind; args : sexpr list }
  | Iliteral of { dst : var; rows : int; cols : int; elems : sexpr list }
  | Isection of { dst : var; src : var; sels : sel list } (* 1 or 2 sels *)
  | Isetsection of { dst : var; sels : sel list; src : call_arg }
    (* dst(sels) = src: owner-computes scatter of a section *)
  | Iconcat of { dst : var; grid_rows : int; grid_cols : int; parts : var list }
    (* matrix literal of matrix blocks: [A, B; C, D] *)
  | Icalluser of { rets : var list; name : string; args : call_arg list }
  | Impi_rank of var (* scalar dst = calling process's rank *)
  | Impi_size of var (* scalar dst = number of processes *)
  | Impi_send of sexpr * sexpr * call_arg (* MPI_Send(dest, tag, value) *)
  | Impi_recv of var * sexpr * sexpr * bool
    (* dst = MPI_Recv(source, tag); the flag is true when the inferred
       payload is a matrix (replicated on the receiver) *)
  | Impi_bcast of var * sexpr * call_arg (* dst = MPI_Bcast(root, value) *)
  | Impi_probe of var * sexpr * sexpr (* scalar dst = MPI_Probe(src, tag) *)
  | Iprint of string * print_arg (* named display: "x =" *)
  | Iprintf of sexpr list (* fprintf-style output, fmt first *)
  | Ierror of string
  | Iif of (sexpr * block) list * block
  | Iwhile of sexpr * block
  | Ifor of var * sexpr * sexpr option * sexpr * block
  | Ibreak
  | Icontinue
  | Ireturn

and call_arg = Ascalar of sexpr | Amat of var

and block = inst list

type func = {
  f_name : string;
  f_params : (var * Analysis.Ty.t) list;
  f_rets : (var * Analysis.Ty.t) list;
  f_vars : (var * Analysis.Ty.t) list; (* all locals incl. params, temps *)
  f_body : block;
}

type prog = {
  p_vars : (var * Analysis.Ty.t) list; (* script variables and temps *)
  p_body : block;
  p_funcs : func list;
}

(* --- traversal helpers -------------------------------------------------- *)

let rec iter_insts f (b : block) =
  List.iter
    (fun i ->
      f i;
      match i with
      | Iif (branches, els) ->
          List.iter (fun (_, blk) -> iter_insts f blk) branches;
          iter_insts f els
      | Iwhile (_, blk) -> iter_insts f blk
      | Ifor (_, _, _, _, blk) -> iter_insts f blk
      | Iscalar _ | Ielem _ | Icopy _ | Imatmul _ | Imatmul_t _ | Idot _
      | Itranspose _
      | Idiag _ | Iouter _ | Ireduce_all _ | Ireduce_cols _ | Inorm _ | Iscan _
      | Isort _ | Ireduce_loc _ | Itrapz _ | Ishift _ | Ibcast _
      | Ibcast_batch _ | Ireduce_fused _ | Isetelem _
      | Isetsection _ | Iload _ | Iconstruct _ | Iliteral _ | Isection _
      | Iconcat _ | Icalluser _ | Impi_rank _ | Impi_size _ | Impi_send _
      | Impi_recv _ | Impi_bcast _ | Impi_probe _ | Iprint _ | Iprintf _
      | Ierror _ | Ibreak | Icontinue | Ireturn ->
          ())
    b

(* Variables read by a scalar expression. *)
let rec sexpr_uses acc = function
  | Sconst _ | Sstr _ -> acc
  | Svar v -> v :: acc
  | Sbin (_, a, b) -> sexpr_uses (sexpr_uses acc a) b
  | Sneg a | Snot a -> sexpr_uses acc a
  | Scall (_, args) -> List.fold_left sexpr_uses acc args
  | Sdim (v, _) -> v :: acc

let rec eexpr_uses acc = function
  | Emat v -> v :: acc
  | Eeye -> acc
  | Escalar s -> sexpr_uses acc s
  | Ebin (_, a, b) -> eexpr_uses (eexpr_uses acc a) b
  | Eneg a | Enot a -> eexpr_uses acc a
  | Ecall1 (_, a) -> eexpr_uses acc a
  | Ecall2 (_, a, b) -> eexpr_uses (eexpr_uses acc a) b

let sel_uses acc = function
  | Sel_all -> acc
  | Sel_scalar s -> sexpr_uses acc s
  | Sel_range (a, step, b) ->
      let acc = sexpr_uses acc a in
      let acc = match step with Some s -> sexpr_uses acc s | None -> acc in
      sexpr_uses acc b
  | Sel_vec v -> v :: acc

(* Variables read (not defined) by one instruction, non-recursively for
   control flow (conditions only). *)
let inst_uses = function
  | Iscalar (_, s) -> sexpr_uses [] s
  | Ielem { model; expr; _ } -> model :: eexpr_uses [] expr
  | Icopy (_, src) -> [ src ]
  | Imatmul (_, a, b) | Imatmul_t (_, a, b) | Idot (_, a, b) | Iouter (_, a, b)
    ->
      [ a; b ]
  | Itranspose (_, a) | Idiag (_, a) | Inorm (_, a) | Iscan (_, _, a) -> [ a ]
  | Ireduce_loc { arg; _ } -> [ arg ]
  | Isort { arg; _ } -> [ arg ]
  | Ireduce_all (_, _, a) | Ireduce_cols (_, _, a) -> [ a ]
  | Itrapz (_, x, y) -> ( match x with Some x -> [ x; y ] | None -> [ y ])
  | Ishift (_, src, k) -> src :: sexpr_uses [] k
  | Ibcast (_, m, idx) -> m :: List.fold_left sexpr_uses [] idx
  | Ibcast_batch (items, m) ->
      m
      :: List.fold_left
           (fun acc (_, idx) -> List.fold_left sexpr_uses acc idx)
           [] items
  | Ireduce_fused items ->
      List.concat_map
        (fun (_, r) ->
          match r with
          | Fsum m | Fmean m | Fnorm m -> [ m ]
          | Fdot (a, b) -> [ a; b ])
        items
  | Isetelem (m, idx, v) -> m :: sexpr_uses (List.fold_left sexpr_uses [] idx) v
  | Iload _ -> []
  | Iconstruct { args; _ } -> List.fold_left sexpr_uses [] args
  | Iliteral { elems; _ } -> List.fold_left sexpr_uses [] elems
  | Isection { src; sels; _ } -> src :: List.fold_left sel_uses [] sels
  | Isetsection { dst; sels; src } ->
      let acc = dst :: List.fold_left sel_uses [] sels in
      (match src with Ascalar s -> sexpr_uses acc s | Amat v -> v :: acc)
  | Iconcat { parts; _ } -> parts
  | Icalluser { args; _ } ->
      List.fold_left
        (fun acc -> function
          | Ascalar s -> sexpr_uses acc s
          | Amat v -> v :: acc)
        [] args
  | Impi_rank _ | Impi_size _ -> []
  | Impi_send (dest, tag, v) -> (
      let acc = sexpr_uses (sexpr_uses [] dest) tag in
      match v with Ascalar s -> sexpr_uses acc s | Amat m -> m :: acc)
  | Impi_recv (_, src, tag, _) | Impi_probe (_, src, tag) ->
      sexpr_uses (sexpr_uses [] src) tag
  | Impi_bcast (_, root, v) -> (
      let acc = sexpr_uses [] root in
      match v with Ascalar s -> sexpr_uses acc s | Amat m -> m :: acc)
  | Iprint (_, Pscalar s) -> sexpr_uses [] s
  | Iprint (_, Pmat v) -> [ v ]
  | Iprint (_, Pstr _) -> []
  | Iprintf args -> List.fold_left sexpr_uses [] args
  | Ierror _ -> []
  | Iif (branches, _) -> List.concat_map (fun (c, _) -> sexpr_uses [] c) branches
  | Iwhile (c, _) -> sexpr_uses [] c
  | Ifor (_, a, step, b, _) ->
      let acc = sexpr_uses (sexpr_uses [] a) b in
      (match step with Some s -> sexpr_uses acc s | None -> acc)
  | Ibreak | Icontinue | Ireturn -> []

(* Variables defined by one instruction (non-recursive). *)
let inst_defs = function
  | Iscalar (d, _) -> [ d ]
  | Ielem { dst; _ } -> [ dst ]
  | Icopy (d, _)
  | Imatmul (d, _, _)
  | Imatmul_t (d, _, _)
  | Idot (d, _, _)
  | Itranspose (d, _)
  | Idiag (d, _)
  | Iouter (d, _, _)
  | Ireduce_all (d, _, _)
  | Ireduce_cols (d, _, _)
  | Inorm (d, _)
  | Itrapz (d, _, _)
  | Ishift (d, _, _)
  | Ibcast (d, _, _)
  | Iscan (d, _, _) ->
      [ d ]
  | Ireduce_loc { vdst; idst; _ } -> [ vdst; idst ]
  | Ibcast_batch (items, _) -> List.map fst items
  | Ireduce_fused items -> List.map fst items
  | Isort { vdst; idst; _ } -> (
      match idst with Some i -> [ vdst; i ] | None -> [ vdst ])
  | Isetelem (m, _, _) -> [ m ] (* in-place update *)
  | Iconstruct { dst; _ } | Iliteral { dst; _ } | Isection { dst; _ }
  | Iconcat { dst; _ } | Iload { dst; _ } ->
      [ dst ]
  | Isetsection { dst; _ } -> [ dst ] (* in-place update *)
  | Icalluser { rets; _ } -> rets
  | Impi_rank d | Impi_size d | Impi_recv (d, _, _, _) | Impi_bcast (d, _, _)
  | Impi_probe (d, _, _) ->
      [ d ]
  | Impi_send _ -> []
  | Ifor (v, _, _, _, _) -> [ v ]
  | Iprint _ | Iprintf _ | Ierror _ | Iif _ | Iwhile _ | Ibreak | Icontinue
  | Ireturn ->
      []

(* Is the instruction free of observable effects other than its
   definitions?  Used by dead-code elimination. *)
let inst_pure = function
  | Iscalar _ | Ielem _ | Icopy _ | Imatmul _ | Imatmul_t _ | Idot _
  | Itranspose _
  | Idiag _ | Iouter _ | Ireduce_all _ | Ireduce_cols _ | Inorm _ | Itrapz _
  | Ishift _
  | Ibcast _ | Ibcast_batch _ | Ireduce_fused _ | Iconstruct _ | Iliteral _
  | Isection _ | Iconcat _ | Iscan _
  | Ireduce_loc _ | Iload _ | Isort _ ->
      true
  | Isetelem _ | Isetsection _ | Icalluser _ | Impi_rank _ | Impi_size _
  | Impi_send _ | Impi_recv _ | Impi_bcast _ | Impi_probe _ | Iprint _
  | Iprintf _ | Ierror _ | Iif _ | Iwhile _ | Ifor _ | Ibreak | Icontinue
  | Ireturn ->
      false
