(* Peephole optimization over run-time call sequences (paper pass 6).

   Rewrites applied until fixpoint:
   - copy forwarding: a library call into a compiler temporary
     immediately copied into a named variable writes the variable
     directly;
   - broadcast reuse: two broadcasts of the same matrix element with no
     intervening redefinition share one communication;
   - transpose of transpose collapses to a copy;
   - shift of shift collapses to a single shift of the summed offset;
   - dead pure instructions defining unused temporaries are removed.

   All rewrites are restricted to straight-line sequences within one
   block; use counts are computed over the whole program, so a
   temporary consumed inside a nested block is never considered dead. *)

let is_temp = Dataflow.is_temp

(* Use counting now comes from the shared dataflow module. *)
let count_uses = Dataflow.use_counts
let uses = Dataflow.uses

(* Rename the destination of a pure defining instruction. *)
let rename_def (i : Ir.inst) ~from ~into : Ir.inst option =
  let r v = if v = from then into else v in
  match i with
  | Ir.Iscalar (d, s) when d = from -> Some (Ir.Iscalar (into, s))
  | Ir.Ielem e when e.dst = from -> Some (Ir.Ielem { e with dst = into })
  | Ir.Icopy (d, s) when d = from -> Some (Ir.Icopy (into, s))
  | Ir.Imatmul (d, a, b) when d = from -> Some (Ir.Imatmul (into, a, b))
  | Ir.Idot (d, a, b) when d = from -> Some (Ir.Idot (into, a, b))
  | Ir.Itranspose (d, a) when d = from -> Some (Ir.Itranspose (into, a))
  | Ir.Idiag (d, a) when d = from -> Some (Ir.Idiag (into, a))
  | Ir.Iouter (d, a, b) when d = from -> Some (Ir.Iouter (into, a, b))
  | Ir.Ireduce_all (d, k, a) when d = from -> Some (Ir.Ireduce_all (into, k, a))
  | Ir.Ireduce_cols (d, k, a) when d = from ->
      Some (Ir.Ireduce_cols (into, k, a))
  | Ir.Inorm (d, a) when d = from -> Some (Ir.Inorm (into, a))
  | Ir.Itrapz (d, x, y) when d = from -> Some (Ir.Itrapz (into, x, y))
  | Ir.Ishift (d, s, k) when d = from -> Some (Ir.Ishift (into, s, k))
  | Ir.Ibcast (d, m, idx) when d = from -> Some (Ir.Ibcast (into, m, idx))
  | Ir.Iconstruct c when c.dst = from -> Some (Ir.Iconstruct { c with dst = into })
  | Ir.Iliteral l when l.dst = from -> Some (Ir.Iliteral { l with dst = into })
  | Ir.Isection s when s.dst = from -> Some (Ir.Isection { s with dst = into })
  | Ir.Iscan (d, k, a) when d = from -> Some (Ir.Iscan (into, k, a))
  | Ir.Isort s when s.vdst = from || s.idst = Some from ->
      Some (Ir.Isort { s with vdst = r s.vdst; idst = Option.map r s.idst })
  | Ir.Ireduce_loc rl when rl.vdst = from || rl.idst = from ->
      Some (Ir.Ireduce_loc { rl with vdst = r rl.vdst; idst = r rl.idst })
  | Ir.Iload l when l.dst = from -> Some (Ir.Iload { l with dst = into })
  | Ir.Iconcat c when c.dst = from -> Some (Ir.Iconcat { c with dst = into })
  | Ir.Icalluser c when List.mem from c.rets ->
      Some (Ir.Icalluser { c with rets = List.map r c.rets })
  | _ -> None

type stats = {
  mutable copies_forwarded : int;
  mutable broadcasts_reused : int;
  mutable transposes_collapsed : int;
  mutable shifts_combined : int;
  mutable dead_removed : int;
}

let fresh_stats () =
  {
    copies_forwarded = 0;
    broadcasts_reused = 0;
    transposes_collapsed = 0;
    shifts_combined = 0;
    dead_removed = 0;
  }

(* One forward pass over a straight-line block (recursing into nested
   blocks).  [counts] are global use counts for the surrounding
   program. *)
let rec rewrite_block stats counts (b : Ir.block) : Ir.block =
  let rec go = function
    | [] -> []
    (* copy forwarding; writing the target in place is only legal when
       the defining instruction does not read it, or reads it strictly
       point-wise (element-wise loops) *)
    | def :: Ir.Icopy (x, t) :: rest
      when is_temp t && uses counts t = 1 && List.mem t (Ir.inst_defs def)
           && ((match def with Ir.Ielem _ -> true | _ -> false)
              || not (List.mem x (Ir.inst_uses def))) -> (
        match rename_def def ~from:t ~into:x with
        | Some def' ->
            stats.copies_forwarded <- stats.copies_forwarded + 1;
            go (def' :: rest)
        | None -> descend def :: go (Ir.Icopy (x, t) :: rest))
    (* transpose of transpose *)
    | Ir.Itranspose (t, a) :: Ir.Itranspose (u, t') :: rest
      when t = t' && is_temp t && uses counts t = 1 ->
        stats.transposes_collapsed <- stats.transposes_collapsed + 1;
        go (Ir.Icopy (u, a) :: rest)
    (* shift of shift *)
    | Ir.Ishift (t, v, k1) :: Ir.Ishift (u, t', k2) :: rest
      when t = t' && is_temp t && uses counts t = 1 ->
        stats.shifts_combined <- stats.shifts_combined + 1;
        go (Ir.Ishift (u, v, Ir.Sbin (Mlang.Ast.Add, k1, k2)) :: rest)
    (* broadcast reuse *)
    | (Ir.Ibcast (d1, m1, idx1) as i1) :: Ir.Ibcast (d2, m2, idx2) :: rest
      when m1 = m2 && idx1 = idx2 ->
        stats.broadcasts_reused <- stats.broadcasts_reused + 1;
        go (i1 :: Ir.Iscalar (d2, Ir.Svar d1) :: rest)
    | i :: rest -> descend i :: go rest
  and descend (i : Ir.inst) : Ir.inst =
    match i with
    | Ir.Iif (branches, els) ->
        Ir.Iif
          ( List.map (fun (c, blk) -> (c, rewrite_block stats counts blk)) branches,
            rewrite_block stats counts els )
    | Ir.Iwhile (c, blk) -> Ir.Iwhile (c, rewrite_block stats counts blk)
    | Ir.Ifor (v, a, st, b2, blk) ->
        Ir.Ifor (v, a, st, b2, rewrite_block stats counts blk)
    | _ -> i
  in
  go b

(* Remove pure instructions whose only definitions are unused temps. *)
let rec dce stats counts (b : Ir.block) : Ir.block =
  List.filter_map
    (fun (i : Ir.inst) ->
      match i with
      | Ir.Iif (branches, els) ->
          Some
            (Ir.Iif
               ( List.map (fun (c, blk) -> (c, dce stats counts blk)) branches,
                 dce stats counts els ))
      | Ir.Iwhile (c, blk) -> Some (Ir.Iwhile (c, dce stats counts blk))
      | Ir.Ifor (v, a, st, b2, blk) ->
          Some (Ir.Ifor (v, a, st, b2, dce stats counts blk))
      | _ ->
          let defs = Ir.inst_defs i in
          if
            Ir.inst_pure i && defs <> []
            && (not (Dataflow.is_rand i))
            && List.for_all (fun d -> is_temp d && uses counts d = 0) defs
          then begin
            stats.dead_removed <- stats.dead_removed + 1;
            None
          end
          else Some i)
    b

let optimize_block stats (b : Ir.block) : Ir.block =
  let b = ref b in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    incr rounds;
    let counts = count_uses !b in
    let b1 = rewrite_block stats counts !b in
    let counts1 = count_uses b1 in
    let b2 = dce stats counts1 b1 in
    changed := b2 <> !b;
    b := b2
  done;
  !b

(* Drop now-unused temporaries from the variable tables. *)
let live_vars (b : Ir.block) (vars : (Ir.var * Analysis.Ty.t) list) =
  let referenced = Hashtbl.create 64 in
  Ir.iter_insts
    (fun i ->
      List.iter (fun v -> Hashtbl.replace referenced v ()) (Ir.inst_uses i);
      List.iter (fun v -> Hashtbl.replace referenced v ()) (Ir.inst_defs i))
    b;
  List.filter (fun (v, _) -> (not (is_temp v)) || Hashtbl.mem referenced v) vars

let optimize ?(stats = fresh_stats ()) (p : Ir.prog) : Ir.prog =
  let body = optimize_block stats p.Ir.p_body in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        let fb = optimize_block stats f.f_body in
        { f with Ir.f_body = fb; f_vars = live_vars fb f.f_vars })
      p.Ir.p_funcs
  in
  { Ir.p_vars = live_vars body p.Ir.p_vars; p_body = body; p_funcs = funcs }
