(* Loop-invariant communication motion.

   A broadcast, constructor, literal or pure reduction whose operands
   are not redefined anywhere in a while/for body recomputes the same
   value on every trip, and -- because the IR is loosely synchronous,
   with every rank executing the same control flow -- hoisting it to a
   preheader preserves collectivity: all ranks still execute the call
   together, just once.

   Safety rules:
   - only instructions in the early-exit-free prefix of the body move:
     anything at or after a (possibly nested) break/continue/return/
     error is conditionally executed;
   - operands must be invariant: not defined anywhere in the body
     (destinations of instructions already selected for hoisting count
     as invariant -- they move out first);
   - the destination must have exactly one definition site in the body
     and must not be read by an earlier, non-hoisted prefix
     instruction (which would otherwise see the previous iteration's
     value on trips after the first);
   - rand/randn never move: their draws are sequence-numbered;
   - a loop that may run zero times gets its hoisted code wrapped in a
     guard reproducing the back ends' exact trip test, so a variable
     that would have stayed undefined stays undefined. *)

module VSet = Dataflow.VSet

let hoistable (i : Ir.inst) : bool =
  match i with
  | Ir.Ibcast _ | Ir.Iliteral _ -> true
  | Ir.Iconstruct { kind = Ir.Crand | Ir.Crandn; _ } -> false
  | Ir.Iconstruct _ -> true
  | Ir.Ireduce_all _ | Ir.Ireduce_cols _ | Ir.Inorm _ | Ir.Idot _
  | Ir.Itranspose _ | Ir.Idiag _ | Ir.Iouter _ | Ir.Iscan _ | Ir.Itrapz _
  | Ir.Ishift _ ->
      true
  | _ -> false

(* Does the loop provably run at least once -- and if not, under which
   condition does the first trip happen?  The guard must reproduce the
   VM's and the C emitter's trip test bit for bit (including the 1e-12
   tolerance), or a hoisted definition could leak out of a loop the
   back ends never enter. *)
type trip = Always | Guarded of Ir.sexpr | Never

let trip_test (loop : Ir.inst) : trip =
  match loop with
  | Ir.Iwhile (Ir.Sconst c, _) -> if c <> 0. then Always else Never
  | Ir.Iwhile (c, _) -> Guarded c
  | Ir.Ifor (_, a, st, b, _) -> (
      let enters start step stop =
        if step >= 0. then start <= stop +. 1e-12 else start >= stop -. 1e-12
      in
      let step_e = Option.value ~default:(Ir.Sconst 1.) st in
      match (a, step_e, b) with
      | Ir.Sconst a', Ir.Sconst s', Ir.Sconst b' ->
          if enters a' s' b' then Always else Never
      | _ ->
          let open Mlang.Ast in
          Guarded
            (Ir.Sbin
               ( Or,
                 Ir.Sbin
                   ( And,
                     Ir.Sbin (Ge, step_e, Ir.Sconst 0.),
                     Ir.Sbin (Le, a, Ir.Sbin (Add, b, Ir.Sconst 1e-12)) ),
                 Ir.Sbin
                   ( And,
                     Ir.Sbin (Lt, step_e, Ir.Sconst 0.),
                     Ir.Sbin (Ge, a, Ir.Sbin (Sub, b, Ir.Sconst 1e-12)) ) )))
  | _ -> assert false

(* Split [body] into instructions selected for hoisting (in order) and
   the remaining body. *)
let select (loop_var : string option) (body : Ir.block) : Ir.block * Ir.block =
  let all_defs = Dataflow.block_defs body in
  let all_defs =
    match loop_var with Some v -> VSet.add v all_defs | None -> all_defs
  in
  let def_counts = Dataflow.def_counts body in
  (* prefix before any (nested) early exit *)
  let rec split_prefix acc = function
    | i :: rest when not (Dataflow.has_early_exit i) ->
        split_prefix (i :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let prefix, suffix = split_prefix [] body in
  let selected = ref [] in
  let sel_dsts = ref VSet.empty in
  let earlier_uses = ref VSet.empty in
  let kept_prefix =
    List.filter
      (fun (i : Ir.inst) ->
        let uses = VSet.of_list (Ir.inst_uses i) in
        let defs = Ir.inst_defs i in
        let invariant =
          VSet.is_empty (VSet.inter uses (VSet.diff all_defs !sel_dsts))
        in
        let dst_ok =
          List.for_all
            (fun d ->
              Dataflow.uses def_counts d = 1
              && (not (VSet.mem d !earlier_uses))
              && Some d <> loop_var)
            defs
        in
        if hoistable i && invariant && dst_ok then begin
          selected := i :: !selected;
          sel_dsts := VSet.union !sel_dsts (VSet.of_list defs);
          false
        end
        else begin
          earlier_uses := VSet.union !earlier_uses (Dataflow.inst_uses_rec i);
          true
        end)
      prefix
  in
  (List.rev !selected, kept_prefix @ suffix)

type stats = { mutable hoisted : int }

let rec opt_block stats (b : Ir.block) : Ir.block =
  List.concat_map
    (fun (i : Ir.inst) ->
      match i with
      | Ir.Iif (branches, els) ->
          [
            Ir.Iif
              ( List.map (fun (c, blk) -> (c, opt_block stats blk)) branches,
                opt_block stats els );
          ]
      | Ir.Iwhile (c, body) ->
          let body = opt_block stats body in
          hoist stats (Ir.Iwhile (c, body))
      | Ir.Ifor (v, a, st, b2, body) ->
          let body = opt_block stats body in
          hoist stats (Ir.Ifor (v, a, st, b2, body))
      | _ -> [ i ])
    b

(* Hoist from one loop whose nested loops are already optimized; an
   instruction freed from an inner loop lands in the outer body and can
   keep moving outward on the same run. *)
and hoist stats (loop : Ir.inst) : Ir.block =
  let loop_var, body =
    match loop with
    | Ir.Iwhile (_, body) -> (None, body)
    | Ir.Ifor (v, _, _, _, body) -> (Some v, body)
    | _ -> assert false
  in
  match trip_test loop with
  | Never -> [ loop ]
  | trip -> (
      let hoisted, body' = select loop_var body in
      if hoisted = [] then [ loop ]
      else begin
        stats.hoisted <- stats.hoisted + List.length hoisted;
        let loop' =
          match loop with
          | Ir.Iwhile (c, _) -> Ir.Iwhile (c, body')
          | Ir.Ifor (v, a, st, b, _) -> Ir.Ifor (v, a, st, b, body')
          | _ -> assert false
        in
        match trip with
        | Always -> hoisted @ [ loop' ]
        | Guarded g -> [ Ir.Iif ([ (g, hoisted) ], []); loop' ]
        | Never -> assert false
      end)

let run (p : Ir.prog) : Ir.prog * (string * int) list =
  let stats = { hoisted = 0 } in
  let body = opt_block stats p.Ir.p_body in
  let funcs =
    List.map
      (fun (f : Ir.func) -> { f with Ir.f_body = opt_block stats f.f_body })
      p.Ir.p_funcs
  in
  ({ p with Ir.p_body = body; p_funcs = funcs }, [ ("hoisted", stats.hoisted) ])
