(* Human-readable rendering of the SPMD IR (for --dump-ir and tests). *)

let rkind_name = function
  | Ir.Rsum -> "sum"
  | Ir.Rprod -> "prod"
  | Ir.Rmin -> "min"
  | Ir.Rmax -> "max"
  | Ir.Rmean -> "mean"
  | Ir.Rany -> "any"
  | Ir.Rall -> "all"

let ckind_name = function
  | Ir.Czeros -> "zeros"
  | Ir.Cones -> "ones"
  | Ir.Ceye -> "eye"
  | Ir.Crand -> "rand"
  | Ir.Crandn -> "randn"
  | Ir.Clinspace -> "linspace"
  | Ir.Crange -> "range"

let rec sexpr ppf = function
  | Ir.Sconst f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.0f" f
      else Fmt.pf ppf "%g" f
  | Ir.Sstr s -> Fmt.pf ppf "%S" s
  | Ir.Svar v -> Fmt.string ppf v
  | Ir.Sbin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" sexpr a (Mlang.Ast.binop_name op) sexpr b
  | Ir.Sneg a -> Fmt.pf ppf "(-%a)" sexpr a
  | Ir.Snot a -> Fmt.pf ppf "(~%a)" sexpr a
  | Ir.Scall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") sexpr) args
  | Ir.Sdim (v, 0) -> Fmt.pf ppf "numel(%s)" v
  | Ir.Sdim (v, 1) -> Fmt.pf ppf "rows(%s)" v
  | Ir.Sdim (v, 2) -> Fmt.pf ppf "cols(%s)" v
  | Ir.Sdim (v, _) -> Fmt.pf ppf "length(%s)" v

let rec eexpr ppf = function
  | Ir.Emat v -> Fmt.pf ppf "%s[i]" v
  | Ir.Eeye -> Fmt.pf ppf "eye[i]"
  | Ir.Escalar s -> sexpr ppf s
  | Ir.Ebin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" eexpr a (Mlang.Ast.binop_name op) eexpr b
  | Ir.Eneg a -> Fmt.pf ppf "(-%a)" eexpr a
  | Ir.Enot a -> Fmt.pf ppf "(~%a)" eexpr a
  | Ir.Ecall1 (f, a) -> Fmt.pf ppf "%s(%a)" f eexpr a
  | Ir.Ecall2 (f, a, b) -> Fmt.pf ppf "%s(%a, %a)" f eexpr a eexpr b

let sel ppf = function
  | Ir.Sel_all -> Fmt.string ppf ":"
  | Ir.Sel_scalar s -> sexpr ppf s
  | Ir.Sel_range (a, None, b) -> Fmt.pf ppf "%a:%a" sexpr a sexpr b
  | Ir.Sel_range (a, Some st, b) ->
      Fmt.pf ppf "%a:%a:%a" sexpr a sexpr st sexpr b
  | Ir.Sel_vec v -> Fmt.pf ppf "<%s>" v

let fused ppf = function
  | Ir.Fsum m -> Fmt.pf ppf "sum(%s)" m
  | Ir.Fmean m -> Fmt.pf ppf "mean(%s)" m
  | Ir.Fdot (a, b) -> Fmt.pf ppf "dot(%s, %s)" a b
  | Ir.Fnorm m -> Fmt.pf ppf "norm(%s)" m

let print_arg ppf = function
  | Ir.Pscalar s -> sexpr ppf s
  | Ir.Pmat v -> Fmt.string ppf v
  | Ir.Pstr s -> Fmt.pf ppf "%S" s

let rec inst ~indent ppf (i : Ir.inst) =
  let pad ppf = Fmt.pf ppf "%s" (String.make indent ' ') in
  match i with
  | Ir.Iscalar (v, s) -> Fmt.pf ppf "%t%s = %a" pad v sexpr s
  | Ir.Ielem { dst; model; expr } ->
      Fmt.pf ppf "%t%s = elemwise[shape %s] %a" pad dst model eexpr expr
  | Ir.Icopy (d, s) -> Fmt.pf ppf "%t%s = copy %s" pad d s
  | Ir.Imatmul (d, a, b) -> Fmt.pf ppf "%t%s = matmul(%s, %s)" pad d a b
  | Ir.Imatmul_t (d, a, b) -> Fmt.pf ppf "%t%s = matmul_t(%s, %s)" pad d a b
  | Ir.Idot (d, a, b) -> Fmt.pf ppf "%t%s = dot(%s, %s)" pad d a b
  | Ir.Itranspose (d, a) -> Fmt.pf ppf "%t%s = transpose(%s)" pad d a
  | Ir.Idiag (d, a) -> Fmt.pf ppf "%t%s = diag(%s)" pad d a
  | Ir.Iouter (d, a, b) -> Fmt.pf ppf "%t%s = outer(%s, %s)" pad d a b
  | Ir.Ireduce_all (d, k, a) ->
      Fmt.pf ppf "%t%s = reduce_%s(%s)" pad d (rkind_name k) a
  | Ir.Ireduce_cols (d, k, a) ->
      Fmt.pf ppf "%t%s = colreduce_%s(%s)" pad d (rkind_name k) a
  | Ir.Inorm (d, a) -> Fmt.pf ppf "%t%s = norm(%s)" pad d a
  | Ir.Iscan (d, Ir.Scumsum, a) -> Fmt.pf ppf "%t%s = cumsum(%s)" pad d a
  | Ir.Iscan (d, Ir.Scumprod, a) -> Fmt.pf ppf "%t%s = cumprod(%s)" pad d a
  | Ir.Isort { vdst; idst = None; arg } ->
      Fmt.pf ppf "%t%s = sort(%s)" pad vdst arg
  | Ir.Isort { vdst; idst = Some i; arg } ->
      Fmt.pf ppf "%t[%s, %s] = sort(%s)" pad vdst i arg
  | Ir.Ireduce_loc { vdst; idst; kind; arg } ->
      Fmt.pf ppf "%t[%s, %s] = %s(%s)" pad vdst idst (rkind_name kind) arg
  | Ir.Itrapz (d, None, y) -> Fmt.pf ppf "%t%s = trapz(%s)" pad d y
  | Ir.Itrapz (d, Some x, y) -> Fmt.pf ppf "%t%s = trapz(%s, %s)" pad d x y
  | Ir.Ishift (d, s, k) -> Fmt.pf ppf "%t%s = circshift(%s, %a)" pad d s sexpr k
  | Ir.Ibcast (d, m, idx) ->
      Fmt.pf ppf "%t%s = broadcast %s(%a)" pad d m
        (Fmt.list ~sep:(Fmt.any ", ") sexpr)
        idx
  | Ir.Ibcast_batch (items, m) ->
      Fmt.pf ppf "%t[%a] = broadcast_batch %s{%a}" pad
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        (List.map fst items) m
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (_, idx) ->
             Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") sexpr) idx))
        items
  | Ir.Ireduce_fused items ->
      Fmt.pf ppf "%t[%a] = allreduce_fused[%a]" pad
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        (List.map fst items)
        (Fmt.list ~sep:(Fmt.any "; ") fused)
        (List.map snd items)
  | Ir.Isetelem (m, idx, v) ->
      Fmt.pf ppf "%tif owner: %s(%a) = %a" pad m
        (Fmt.list ~sep:(Fmt.any ", ") sexpr)
        idx sexpr v
  | Ir.Iload { dst; file } -> Fmt.pf ppf "%t%s = load(%S)" pad dst file
  | Ir.Iconstruct { dst; kind; args } ->
      Fmt.pf ppf "%t%s = %s(%a)" pad dst (ckind_name kind)
        (Fmt.list ~sep:(Fmt.any ", ") sexpr)
        args
  | Ir.Iliteral { dst; rows; cols; elems } ->
      Fmt.pf ppf "%t%s = literal %dx%d [%a]" pad dst rows cols
        (Fmt.list ~sep:(Fmt.any ", ") sexpr)
        elems
  | Ir.Isetsection { dst; sels; src } ->
      let arg ppf = function
        | Ir.Ascalar s -> sexpr ppf s
        | Ir.Amat v -> Fmt.string ppf v
      in
      Fmt.pf ppf "%tif owner: %s(%a) = %a" pad dst
        (Fmt.list ~sep:(Fmt.any ", ") sel)
        sels arg src
  | Ir.Iconcat { dst; grid_rows; grid_cols; parts } ->
      Fmt.pf ppf "%t%s = concat %dx%d [%a]" pad dst grid_rows grid_cols
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        parts
  | Ir.Isection { dst; src; sels } ->
      Fmt.pf ppf "%t%s = section %s(%a)" pad dst src
        (Fmt.list ~sep:(Fmt.any ", ") sel)
        sels
  | Ir.Icalluser { rets; name; args } ->
      let arg ppf = function
        | Ir.Ascalar s -> sexpr ppf s
        | Ir.Amat v -> Fmt.string ppf v
      in
      Fmt.pf ppf "%t[%a] = call %s(%a)" pad
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        rets name
        (Fmt.list ~sep:(Fmt.any ", ") arg)
        args
  | Ir.Impi_rank d -> Fmt.pf ppf "%t%s = mpi_rank()" pad d
  | Ir.Impi_size d -> Fmt.pf ppf "%t%s = mpi_size()" pad d
  | Ir.Impi_send (dest, tag, v) ->
      let arg ppf = function
        | Ir.Ascalar s -> sexpr ppf s
        | Ir.Amat m -> Fmt.string ppf m
      in
      Fmt.pf ppf "%tmpi_send(dest=%a, tag=%a, %a)" pad sexpr dest sexpr tag
        arg v
  | Ir.Impi_recv (d, src, tag, is_mat) ->
      Fmt.pf ppf "%t%s = mpi_recv(src=%a, tag=%a)%s" pad d sexpr src sexpr tag
        (if is_mat then " [matrix]" else "")
  | Ir.Impi_bcast (d, root, v) ->
      let arg ppf = function
        | Ir.Ascalar s -> sexpr ppf s
        | Ir.Amat m -> Fmt.string ppf m
      in
      Fmt.pf ppf "%t%s = mpi_bcast(root=%a, %a)" pad d sexpr root arg v
  | Ir.Impi_probe (d, src, tag) ->
      Fmt.pf ppf "%t%s = mpi_probe(src=%a, tag=%a)" pad d sexpr src sexpr tag
  | Ir.Iprint (name, a) -> Fmt.pf ppf "%tprint %s %a" pad name print_arg a
  | Ir.Iprintf args ->
      Fmt.pf ppf "%tprintf(%a)" pad (Fmt.list ~sep:(Fmt.any ", ") sexpr) args
  | Ir.Ierror msg -> Fmt.pf ppf "%terror %S" pad msg
  | Ir.Iif (branches, els) ->
      List.iteri
        (fun n (c, b) ->
          Fmt.pf ppf "%t%s %a@\n%a" pad
            (if n = 0 then "if" else "elseif")
            sexpr c (block ~indent:(indent + 2)) b)
        branches;
      if els <> [] then
        Fmt.pf ppf "%telse@\n%a" pad (block ~indent:(indent + 2)) els;
      Fmt.pf ppf "%tend" pad
  | Ir.Iwhile (c, b) ->
      Fmt.pf ppf "%twhile %a@\n%a%tend" pad sexpr c
        (block ~indent:(indent + 2))
        b pad
  | Ir.Ifor (v, a, st, b, body) ->
      (match st with
      | None -> Fmt.pf ppf "%tfor %s = %a:%a" pad v sexpr a sexpr b
      | Some st -> Fmt.pf ppf "%tfor %s = %a:%a:%a" pad v sexpr a sexpr st sexpr b);
      Fmt.pf ppf "@\n%a%tend" (block ~indent:(indent + 2)) body pad
  | Ir.Ibreak -> Fmt.pf ppf "%tbreak" pad
  | Ir.Icontinue -> Fmt.pf ppf "%tcontinue" pad
  | Ir.Ireturn -> Fmt.pf ppf "%treturn" pad

and block ~indent ppf (b : Ir.block) =
  List.iter (fun i -> Fmt.pf ppf "%a@\n" (inst ~indent) i) b

let prog ppf (p : Ir.prog) =
  Fmt.pf ppf "-- variables --@\n";
  List.iter
    (fun (v, t) -> Fmt.pf ppf "  %s : %a@\n" v Analysis.Ty.pp t)
    p.Ir.p_vars;
  Fmt.pf ppf "-- script --@\n%a" (block ~indent:0) p.Ir.p_body;
  List.iter
    (fun (f : Ir.func) ->
      Fmt.pf ppf "-- function %s(%a) -> [%a] --@\n%a" f.f_name
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, _) -> Fmt.string ppf v))
        f.f_params
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, _) -> Fmt.string ppf v))
        f.f_rets (block ~indent:0) f.f_body)
    p.Ir.p_funcs

let prog_to_string p = Fmt.str "%a" prog p
