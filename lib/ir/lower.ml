(* Expression rewriting: typed AST -> SPMD IR (paper passes 4 and 5).

   The pass classifies every expression node by its inferred rank:

   - all-scalar expressions stay replicated scalar computations;
   - subexpressions whose evaluation needs interprocessor communication
     (matrix multiply, transposition, reductions, element reads,
     sections, shifts, ...) are lifted to statement level as run-time
     library calls assigning compiler temporaries;
   - what remains of an element-wise matrix expression tree is fused
     into a single [Ielem] loop over locally owned elements;
   - scalar stores into matrix elements become owner-guarded updates,
     and scalar reads of matrix elements become broadcasts, exactly as
     in the paper's pass-5 example. *)

open Mlang
module Ty = Analysis.Ty

exception Unsupported of Source.pos * string

let unsupported pos fmt = Fmt.kstr (fun m -> raise (Unsupported (pos, m))) fmt

type ctx = {
  info : Analysis.Infer.result;
  vars : (string, Ty.t) Hashtbl.t; (* current scope: name -> type *)
  mutable tmp : int;
  mutable end_subst : Ir.sexpr option; (* value of 'end' in current index *)
}

type operand = Oscalar of Ir.sexpr | Omat of Ir.var | Ostr of string

(* Set of user-function names, filled by [lower_program] so that calls
   resolve to user code even when a builtin shares the name. *)
let user_funcs_marker : (string, unit) Hashtbl.t = Hashtbl.create 8

(* Types now live on the node annotations; [ctx] is kept for symmetry
   with the variable-type lookups. *)
let ty_of _ctx (e : Ast.expr) = Analysis.Infer.expr_type e
let is_scalar_node ctx e = (ty_of ctx e).Ty.rank = Ty.Rscalar

let fresh ctx ty =
  ctx.tmp <- ctx.tmp + 1;
  let name = Printf.sprintf "ML_tmp%d" ctx.tmp in
  Hashtbl.replace ctx.vars name ty;
  name

let emit out i = out := i :: !out

(* Strip value-preserving unary wrappers (transposes of vectors do not
   change the element distribution, uplus is the identity). *)
let rec strip_transpose (e : Ast.expr) =
  match e.node with
  | Ast.Unop ((Ast.Transpose | Ast.Ctranspose | Ast.Uplus), a) ->
      strip_transpose a
  | _ -> e

let is_vector_ty (t : Ty.t) = Ty.is_vector t

(* --- expressions -------------------------------------------------------- *)

let rec lower_expr ctx out (e : Ast.expr) : operand =
  match e.node with
  | Ast.Num f -> Oscalar (Ir.Sconst f)
  | Ast.Str s -> Ostr s
  | Ast.Varref v ->
      if is_scalar_node ctx e then Oscalar (Ir.Svar v) else Omat v
  | Ast.Colon -> unsupported e.ann.pos "':' outside an index"
  | Ast.End_marker -> (
      match ctx.end_subst with
      | Some s -> Oscalar s
      | None -> unsupported e.ann.pos "'end' outside an index")
  | Ast.Binop (op, a, b) -> lower_binop ctx out e op a b
  | Ast.Unop (op, a) -> lower_unop ctx out e op a
  | Ast.Range (a, step, b) ->
      let sa = scalar ctx out a in
      let ss = match step with Some s -> scalar ctx out s | None -> Ir.Sconst 1. in
      let sb = scalar ctx out b in
      let t = fresh ctx (ty_of ctx e) in
      emit out (Ir.Iconstruct { dst = t; kind = Ir.Crange; args = [ sa; ss; sb ] });
      Omat t
  | Ast.Matrix rows -> lower_literal ctx out e rows
  | Ast.Index (v, args) -> lower_index ctx out e v args
  | Ast.Call (name, args) -> lower_call ctx out e name args
  | Ast.Ident n | Ast.Apply (n, _) ->
      Source.error e.ann.pos "unresolved '%s' reached code generation" n

(* Lower in scalar context; a 1x1 matrix value is read out with a
   broadcast of its only element. *)
and scalar ctx out (e : Ast.expr) : Ir.sexpr =
  match lower_expr ctx out e with
  | Oscalar s -> s
  | Omat v ->
      let t = fresh ctx Ty.real_scalar in
      emit out (Ir.Ibcast (t, v, [ Ir.Sconst 1. ]));
      Ir.Svar t
  | Ostr _ -> unsupported e.ann.pos "string used as a numeric value"

(* Lower to a matrix variable, materializing a temporary if needed. *)
and mat_operand ctx out (e : Ast.expr) : Ir.var =
  match lower_expr ctx out e with
  | Omat v -> v
  | Oscalar s ->
      (* A scalar where a matrix is required: make a 1x1 matrix. *)
      let t = fresh ctx (Ty.matrix ~shape:Ty.scalar_shape Ty.Real) in
      emit out (Ir.Iliteral { dst = t; rows = 1; cols = 1; elems = [ s ] });
      t
  | Ostr _ -> unsupported e.ann.pos "string used as a matrix value"

and lower_binop ctx out e op a b =
  let scalar_result = is_scalar_node ctx e in
  if scalar_result then
    match op with
    | Ast.Mul
      when (not (is_scalar_node ctx a)) && not (is_scalar_node ctx b) ->
        (* (1 x k) * (k x 1): an inner product -> ML_dot. *)
        let va = mat_operand ctx out (strip_transpose a) in
        let vb = mat_operand ctx out (strip_transpose b) in
        let t = fresh ctx Ty.real_scalar in
        emit out (Ir.Idot (t, va, vb));
        Oscalar (Ir.Svar t)
    | _ -> Oscalar (Ir.Sbin (op, scalar ctx out a, scalar ctx out b))
  else if Ast.is_elementwise op then fused_elementwise ctx out e
  else
    match op with
    | Ast.Mul ->
        if is_scalar_node ctx a || is_scalar_node ctx b then
          fused_elementwise ctx out e
        else
          let ta = ty_of ctx a and tb = ty_of ctx b in
          if
            is_vector_ty ta && is_vector_ty tb
            && ta.Ty.shape.Ty.cols = Ty.Dconst 1
            && tb.Ty.shape.Ty.rows = Ty.Dconst 1
          then begin
            (* (m x 1) * (1 x n): outer product -> ML_outer. *)
            let u = mat_operand ctx out (strip_transpose a) in
            let v = mat_operand ctx out (strip_transpose b) in
            let t = fresh ctx (ty_of ctx e) in
            emit out (Ir.Iouter (t, u, v));
            Omat t
          end
          else begin
            let va = mat_operand ctx out a in
            let vb = mat_operand ctx out b in
            let t = fresh ctx (ty_of ctx e) in
            emit out (Ir.Imatmul (t, va, vb));
            Omat t
          end
    | Ast.Div | Ast.Ldiv ->
        if is_scalar_node ctx b || is_scalar_node ctx a then
          fused_elementwise ctx out e
        else unsupported e.ann.pos "matrix division is not supported"
    | Ast.Pow -> unsupported e.ann.pos "matrix power is not supported; use .^"
    | Ast.Shortand | Ast.Shortor ->
        unsupported e.ann.pos "&&/|| require scalar operands"
    | Ast.Add | Ast.Sub | Ast.Emul | Ast.Ediv | Ast.Eldiv | Ast.Epow | Ast.Lt
    | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or ->
        fused_elementwise ctx out e

and lower_unop ctx out e op a =
  match op with
  | Ast.Uplus -> lower_expr ctx out a
  | Ast.Neg | Ast.Not ->
      if is_scalar_node ctx e then
        let s = scalar ctx out a in
        Oscalar (match op with Ast.Neg -> Ir.Sneg s | _ -> Ir.Snot s)
      else fused_elementwise ctx out e
  | Ast.Transpose | Ast.Ctranspose ->
      if is_scalar_node ctx e then lower_expr ctx out a
      else begin
        let v = mat_operand ctx out a in
        let t = fresh ctx (ty_of ctx e) in
        emit out (Ir.Itranspose (t, v));
        Omat t
      end

(* Fuse an element-wise expression tree into a single local loop.  The
   loop's model operand fixes the iteration space: under frame/cell
   broadcasting a tensor operand dominates any matrix operand, so the
   first tensor-typed operand (in tree order) is preferred and the
   first matrix operand is the fallback. *)
and fused_elementwise ctx out (e : Ast.expr) : operand =
  let ee = build_eexpr ctx out e in
  let model =
    let rec mats = function
      | Ir.Emat v -> [ v ]
      | Ir.Escalar _ | Ir.Eeye -> []
      | Ir.Ebin (_, x, y) | Ir.Ecall2 (_, x, y) -> mats x @ mats y
      | Ir.Eneg x | Ir.Enot x | Ir.Ecall1 (_, x) -> mats x
    in
    let vs = mats ee in
    let is_tensor_var v =
      match Hashtbl.find_opt ctx.vars v with
      | Some t -> Ty.is_tensor t
      | None -> false
    in
    match List.find_opt is_tensor_var vs with
    | Some v -> v
    | None -> (
        match vs with
        | v :: _ -> v
        | [] ->
            unsupported e.ann.pos
              "element-wise expression has no matrix operand")
  in
  let t = fresh ctx (ty_of ctx e) in
  emit out (Ir.Ielem { dst = t; model; expr = ee });
  Omat t

and build_eexpr ctx out (e : Ast.expr) : Ir.eexpr =
  if is_scalar_node ctx e then Ir.Escalar (scalar ctx out e)
  else
    match e.node with
    | Ast.Varref v -> Ir.Emat v
    | Ast.Binop (op, a, b) when Ast.is_elementwise op ->
        Ir.Ebin (op, build_eexpr ctx out a, build_eexpr ctx out b)
    | Ast.Binop (Ast.Mul, a, b)
      when is_scalar_node ctx a || is_scalar_node ctx b ->
        Ir.Ebin (Ast.Emul, build_eexpr ctx out a, build_eexpr ctx out b)
    | Ast.Binop (Ast.Div, a, b) when is_scalar_node ctx b ->
        Ir.Ebin (Ast.Ediv, build_eexpr ctx out a, build_eexpr ctx out b)
    | Ast.Binop (Ast.Ldiv, a, b) when is_scalar_node ctx a ->
        (* a \ b  =  b ./ a *)
        Ir.Ebin (Ast.Ediv, build_eexpr ctx out b, build_eexpr ctx out a)
    | Ast.Unop (Ast.Neg, a) -> Ir.Eneg (build_eexpr ctx out a)
    | Ast.Unop (Ast.Not, a) -> Ir.Enot (build_eexpr ctx out a)
    | Ast.Unop (Ast.Uplus, a) -> build_eexpr ctx out a
    | Ast.Call (name, [ a ])
      when (match Analysis.Builtins.find name with
           | Some { Analysis.Builtins.kind = Analysis.Builtins.Map1 _; _ } ->
               true
           | _ -> false) ->
        Ir.Ecall1 (name, build_eexpr ctx out a)
    | Ast.Call (name, [ a; b ])
      when (match Analysis.Builtins.find name with
           | Some
               {
                 Analysis.Builtins.kind =
                   Analysis.Builtins.Map2 _ | Analysis.Builtins.Minmax _;
                 _;
               } ->
               true
           | _ -> false) ->
        Ir.Ecall2 (name, build_eexpr ctx out a, build_eexpr ctx out b)
    | _ ->
        (* Not element-wise: lift to a temporary via a library call. *)
        Ir.Emat (mat_operand ctx out e)

and lower_literal ctx out e rows =
  let all_scalar =
    List.for_all (List.for_all (fun el -> is_scalar_node ctx el)) rows
  in
  let nrows = List.length rows in
  let ncols = match rows with [] -> 0 | r :: _ -> List.length r in
  List.iter
    (fun r ->
      if List.length r <> ncols then
        unsupported e.ann.pos "matrix literal rows have different lengths")
    rows;
  if all_scalar then begin
    let elems = List.concat_map (List.map (fun el -> scalar ctx out el)) rows in
    if nrows = 1 && ncols = 1 then Oscalar (List.hd elems)
    else begin
      let t = fresh ctx (ty_of ctx e) in
      emit out (Ir.Iliteral { dst = t; rows = nrows; cols = ncols; elems });
      Omat t
    end
  end
  else begin
    (* Concatenation of matrix blocks: materialize every block and let
       the run-time library assemble and redistribute. *)
    let parts =
      List.concat_map (List.map (fun el -> mat_operand ctx out el)) rows
    in
    let t = fresh ctx (ty_of ctx e) in
    emit out
      (Ir.Iconcat { dst = t; grid_rows = nrows; grid_cols = ncols; parts });
    Omat t
  end

(* Index expressions: scalar reads become broadcasts, everything else a
   section.  'end' is substituted with the extent of the indexed slot. *)
and lower_index ctx out e v args =
  let vty =
    match Hashtbl.find_opt ctx.vars v with
    | Some t -> t
    | None -> Ty.real_matrix
  in
  if vty.Ty.rank = Ty.Rscalar then Oscalar (Ir.Svar v)
  else if Ty.is_tensor vty then lower_tensor_index ctx out e v vty args
  else begin
    let nargs = List.length args in
    let slot_dim i =
      if nargs = 1 then Ir.Sdim (v, 0) (* linear: numel *)
      else Ir.Sdim (v, i + 1)
    in
    let with_end i f =
      let saved = ctx.end_subst in
      ctx.end_subst <- Some (slot_dim i);
      let r = f () in
      ctx.end_subst <- saved;
      r
    in
    if is_scalar_node ctx e then begin
      (* Element read -> ML_broadcast.  All index args are scalars. *)
      let idx =
        List.mapi (fun i a -> with_end i (fun () -> scalar ctx out a)) args
      in
      let t = fresh ctx (Ty.scalar (ty_of ctx e).Ty.base) in
      emit out (Ir.Ibcast (t, v, idx));
      Oscalar (Ir.Svar t)
    end
    else begin
      let sel_of i (a : Ast.expr) =
        with_end i (fun () ->
            match a.node with
            | Ast.Colon -> Ir.Sel_all
            | Ast.Range (lo, step, hi) ->
                let slo = scalar ctx out lo in
                let sstep = Option.map (scalar ctx out) step in
                let shi = scalar ctx out hi in
                Ir.Sel_range (slo, sstep, shi)
            | _ ->
                if is_scalar_node ctx a then Ir.Sel_scalar (scalar ctx out a)
                else Ir.Sel_vec (mat_operand ctx out a))
      in
      let sels = List.mapi sel_of args in
      let t = fresh ctx (ty_of ctx e) in
      emit out (Ir.Isection { dst = t; src = v; sels });
      Omat t
    end
  end

(* Tensor indexing: exactly one subscript per axis (no linear or
   partial indexing); 'end' substitutes the per-axis extent.  The
   leading (page) axis is Sdim code 4, the trailing cell reuses the
   matrix row/col codes. *)
and tensor_axis_dim v i =
  match i with
  | 0 -> Ir.Sdim (v, 4)
  | 1 -> Ir.Sdim (v, 1)
  | _ -> Ir.Sdim (v, 2)

and lower_tensor_index ctx out e v vty args =
  let rank = Ty.total_rank vty in
  if rank <> 3 then
    unsupported e.ann.pos "only rank-3 tensors can be indexed (got rank %d)"
      rank;
  let nargs = List.length args in
  if nargs <> rank then
    unsupported e.ann.pos
      "a rank-%d tensor must be indexed with exactly %d subscripts (got %d)"
      rank rank nargs;
  let with_end i f =
    let saved = ctx.end_subst in
    ctx.end_subst <- Some (tensor_axis_dim v i);
    let r = f () in
    ctx.end_subst <- saved;
    r
  in
  if is_scalar_node ctx e then begin
    (* Element read -> ML_broadcast with one subscript per axis. *)
    let idx =
      List.mapi (fun i a -> with_end i (fun () -> scalar ctx out a)) args
    in
    let t = fresh ctx (Ty.scalar (ty_of ctx e).Ty.base) in
    emit out (Ir.Ibcast (t, v, idx));
    Oscalar (Ir.Svar t)
  end
  else begin
    let sel_of i (a : Ast.expr) =
      with_end i (fun () ->
          match a.node with
          | Ast.Colon -> Ir.Sel_all
          | Ast.Range (lo, step, hi) ->
              let slo = scalar ctx out lo in
              let sstep = Option.map (scalar ctx out) step in
              let shi = scalar ctx out hi in
              Ir.Sel_range (slo, sstep, shi)
          | _ ->
              if is_scalar_node ctx a then Ir.Sel_scalar (scalar ctx out a)
              else Ir.Sel_vec (mat_operand ctx out a))
    in
    let sels = List.mapi sel_of args in
    let t = fresh ctx (ty_of ctx e) in
    emit out (Ir.Isection { dst = t; src = v; sels });
    Omat t
  end

and lower_call ctx out (e : Ast.expr) name args =
  let module B = Analysis.Builtins in
  match B.find name with
  | Some b when not (Hashtbl.mem user_funcs_marker name) -> (
      match b.B.kind with
      | B.Map1 _ | B.Map2 _ ->
          if is_scalar_node ctx e then
            Oscalar (Ir.Scall (name, List.map (scalar ctx out) args))
          else fused_elementwise ctx out e
      | B.Minmax _ -> (
          match args with
          | [ _ ] -> lower_reduction ctx out e name args
          | _ ->
              if is_scalar_node ctx e then
                Oscalar (Ir.Scall (name, List.map (scalar ctx out) args))
              else fused_elementwise ctx out e)
      | B.Reduce _ -> lower_reduction ctx out e name args
      | B.Scan sk -> (
          match args with
          | [ a ] ->
              if is_scalar_node ctx a then lower_expr ctx out a
              else begin
                let v = mat_operand ctx out a in
                let kind =
                  if sk = "cumsum" then Ir.Scumsum else Ir.Scumprod
                in
                let t = fresh ctx (ty_of ctx e) in
                emit out (Ir.Iscan (t, kind, v));
                Omat t
              end
          | _ -> unsupported e.ann.pos "'%s' takes one argument" name)
      | B.Dot -> (
          match args with
          | [ a; b ] ->
              let va = mat_operand ctx out (strip_transpose a) in
              let vb = mat_operand ctx out (strip_transpose b) in
              let t = fresh ctx Ty.real_scalar in
              emit out (Ir.Idot (t, va, vb));
              Oscalar (Ir.Svar t)
          | _ -> unsupported e.ann.pos "dot takes two arguments")
      | B.Trapz -> (
          let t = fresh ctx Ty.real_scalar in
          match args with
          | [ y ] ->
              emit out (Ir.Itrapz (t, None, mat_operand ctx out y));
              Oscalar (Ir.Svar t)
          | [ x; y ] ->
              let vx = mat_operand ctx out x in
              let vy = mat_operand ctx out y in
              emit out (Ir.Itrapz (t, Some vx, vy));
              Oscalar (Ir.Svar t)
          | _ -> unsupported e.ann.pos "trapz takes one or two arguments")
      | B.Shift -> (
          match args with
          | [ v; _ ] when is_scalar_node ctx v ->
              (* circshift of a scalar is the identity *)
              lower_expr ctx out v
          | [ v; k ] ->
              let vv = mat_operand ctx out v in
              let sk = scalar ctx out k in
              let t = fresh ctx (ty_of ctx e) in
              emit out (Ir.Ishift (t, vv, sk));
              Omat t
          | _ -> unsupported e.ann.pos "circshift takes two arguments")
      | B.Constructor _ -> lower_constructor ctx out e name args
      | B.Query q -> lower_query ctx out e q args
      | B.Constant c -> Oscalar (Ir.Sconst c)
      | B.Sort -> (
          match args with
          | [ a ] ->
              if is_scalar_node ctx a then lower_expr ctx out a
              else begin
                let v = mat_operand ctx out a in
                let t = fresh ctx (ty_of ctx e) in
                emit out (Ir.Isort { vdst = t; idst = None; arg = v });
                Omat t
              end
          | _ -> unsupported e.ann.pos "sort takes one argument")
      | B.Diag -> (
          match args with
          | [ a ] ->
              if is_scalar_node ctx a then lower_expr ctx out a
              else begin
                let v = mat_operand ctx out a in
                let t = fresh ctx (ty_of ctx e) in
                emit out (Ir.Idiag (t, v));
                Omat t
              end
          | _ -> unsupported e.ann.pos "diag takes one argument")
      | B.Repmat -> (
          (* desugar to a concat grid of the same block *)
          match args with
          | [ a; r; c ] -> (
              let const_of (x : Ast.expr) =
                match scalar ctx out x with
                | Ir.Sconst f when Float.is_integer f && f >= 1. ->
                    int_of_float f
                | _ ->
                    unsupported e.ann.pos
                      "repmat: tile counts must be positive compile-time \
                       constants"
              in
              let rr = const_of r and cc = const_of c in
              let v = mat_operand ctx out a in
              if rr = 1 && cc = 1 then Omat v
              else begin
                let t = fresh ctx (ty_of ctx e) in
                emit out
                  (Ir.Iconcat
                     {
                       dst = t;
                       grid_rows = rr;
                       grid_cols = cc;
                       parts = List.init (rr * cc) (fun _ -> v);
                     });
                Omat t
              end)
          | _ -> unsupported e.ann.pos "repmat takes three arguments")
      | B.Load -> (
          match args with
          | [ { Ast.node = Ast.Str fname; _ } ] ->
              let t = fresh ctx (ty_of ctx e) in
              emit out (Ir.Iload { dst = t; file = fname });
              Omat t
          | _ -> unsupported e.ann.pos "load takes one literal filename")
      | B.Mpi op -> (
          match (op, args) with
          | B.Mrank, [] ->
              let t = fresh ctx Ty.int_scalar in
              emit out (Ir.Impi_rank t);
              Oscalar (Ir.Svar t)
          | B.Msize, [] ->
              let t = fresh ctx Ty.int_scalar in
              emit out (Ir.Impi_size t);
              Oscalar (Ir.Svar t)
          | B.Mprobe, [ src; tag ] ->
              let ssrc = scalar ctx out src in
              let stag = scalar ctx out tag in
              let t = fresh ctx Ty.int_scalar in
              emit out (Ir.Impi_probe (t, ssrc, stag));
              Oscalar (Ir.Svar t)
          | B.Mrecv, [ src; tag ] ->
              let ssrc = scalar ctx out src in
              let stag = scalar ctx out tag in
              let rty = ty_of ctx e in
              let t = fresh ctx rty in
              if rty.Ty.rank = Ty.Rscalar then begin
                emit out (Ir.Impi_recv (t, ssrc, stag, false));
                Oscalar (Ir.Svar t)
              end
              else begin
                emit out (Ir.Impi_recv (t, ssrc, stag, true));
                Omat t
              end
          | B.Mbcast, [ root; value ] ->
              let sroot = scalar ctx out root in
              let varg = call_arg ctx out value in
              let rty = ty_of ctx e in
              let t = fresh ctx rty in
              emit out (Ir.Impi_bcast (t, sroot, varg));
              if rty.Ty.rank = Ty.Rscalar then Oscalar (Ir.Svar t) else Omat t
          | B.Msend, _ ->
              unsupported e.ann.pos
                "MPI_Send is a statement; its result cannot be used"
          | _, _ -> unsupported e.ann.pos "'%s': wrong arguments" name)
      | B.Output _ | B.Error_fn ->
          unsupported e.ann.pos "'%s' cannot be used inside an expression" name)
  | _ ->
      (* User function call. *)
      let rty = ty_of ctx e in
      let t = fresh ctx rty in
      let cargs = List.map (call_arg ctx out) args in
      emit out (Ir.Icalluser { rets = [ t ]; name; args = cargs });
      if rty.Ty.rank = Ty.Rscalar then Oscalar (Ir.Svar t) else Omat t

and call_arg ctx out (a : Ast.expr) : Ir.call_arg =
  match lower_expr ctx out a with
  | Oscalar s -> Ir.Ascalar s
  | Omat v -> Ir.Amat v
  | Ostr s -> Ir.Ascalar (Ir.Sstr s)

and lower_reduction ctx out e name args =
  let kind =
    match name with
    | "sum" -> Ir.Rsum
    | "prod" -> Ir.Rprod
    | "mean" -> Ir.Rmean
    | "min" -> Ir.Rmin
    | "max" -> Ir.Rmax
    | "any" -> Ir.Rany
    | "all" -> Ir.Rall
    | _ when name = "norm" -> Ir.Rsum (* unused; norm handled below *)
    | _ -> unsupported e.ann.pos "unknown reduction '%s'" name
  in
  match args with
  | [ a ] -> (
      (* Branch on what the operand LOWERS to, not on its static type:
         a nested reduction over an unknown-shape matrix is typed as a
         matrix but lowers to a scalar, and wrapping that scalar in a
         1x1 matrix literal would materialize a distributed matrix --
         deadlock bait inside rank-divergent (explicit-MPI) code. *)
      match lower_expr ctx out a with
      | Ostr _ -> unsupported e.ann.pos "string used as a numeric value"
      | Oscalar s -> (
          (* Reducing a scalar is the identity (any/all compare with 0). *)
          match name with
          | "any" | "all" -> Oscalar (Ir.Sbin (Ast.Ne, s, Ir.Sconst 0.))
          | "norm" -> Oscalar (Ir.Scall ("abs", [ s ]))
          | _ -> Oscalar s)
      | Omat v ->
        if name = "norm" then begin
          let t = fresh ctx Ty.real_scalar in
          emit out (Ir.Inorm (t, v));
          Oscalar (Ir.Svar t)
        end
        else begin
          let aty = ty_of ctx a in
          (* Tensors reduce over every element: one full allreduce, no
             per-column form. *)
          let vector_like =
            Ty.is_tensor aty || Ty.is_vector aty
            || aty.Ty.shape.Ty.rows = Ty.Dunknown
            || aty.Ty.shape.Ty.cols = Ty.Dunknown
          in
          if vector_like then begin
            let t = fresh ctx Ty.real_scalar in
            emit out (Ir.Ireduce_all (t, kind, v));
            Oscalar (Ir.Svar t)
          end
          else begin
            let t = fresh ctx (ty_of ctx e) in
            emit out (Ir.Ireduce_cols (t, kind, v));
            Omat t
          end
        end)
  | _ -> unsupported e.ann.pos "'%s' takes one argument" name

and lower_constructor ctx out e name args =
  let kind =
    match name with
    | "zeros" -> Ir.Czeros
    | "ones" -> Ir.Cones
    | "eye" -> Ir.Ceye
    | "rand" -> Ir.Crand
    | "randn" -> Ir.Crandn
    | "linspace" -> Ir.Clinspace
    | _ -> unsupported e.ann.pos "unknown constructor '%s'" name
  in
  match (name, args) with
  | "zeros", [] -> Oscalar (Ir.Sconst 0.)
  | "ones", [] -> Oscalar (Ir.Sconst 1.)
  | ("rand" | "randn"), [] ->
      unsupported e.ann.pos "scalar %s() is not supported in compiled code" name
  | _ ->
      let sargs = List.map (scalar ctx out) args in
      let t = fresh ctx (ty_of ctx e) in
      emit out (Ir.Iconstruct { dst = t; kind; args = sargs });
      Omat t

and lower_query ctx out e q args =
  match (q, args) with
  | "size", [ a ] ->
      if is_scalar_node ctx a then begin
        let t = fresh ctx (ty_of ctx e) in
        emit out
          (Ir.Iliteral
             { dst = t; rows = 1; cols = 2; elems = [ Ir.Sconst 1.; Ir.Sconst 1. ] });
        Omat t
      end
      else if Ty.is_tensor (ty_of ctx a) then begin
        let rank = Ty.total_rank (ty_of ctx a) in
        if rank <> 3 then
          unsupported e.ann.pos "size of a rank-%d tensor is not supported"
            rank;
        let v = mat_operand ctx out a in
        let t = fresh ctx (ty_of ctx e) in
        emit out
          (Ir.Iliteral
             {
               dst = t;
               rows = 1;
               cols = rank;
               elems = List.init rank (tensor_axis_dim v);
             });
        Omat t
      end
      else begin
        let v = mat_operand ctx out a in
        let t = fresh ctx (ty_of ctx e) in
        emit out
          (Ir.Iliteral
             { dst = t; rows = 1; cols = 2; elems = [ Ir.Sdim (v, 1); Ir.Sdim (v, 2) ] });
        Omat t
      end
  | "size", [ a; d ] -> (
      if is_scalar_node ctx a then Oscalar (Ir.Sconst 1.)
      else if Ty.is_tensor (ty_of ctx a) then
        let aty = ty_of ctx a in
        if Ty.total_rank aty <> 3 then
          unsupported e.ann.pos "size of a rank-%d tensor is not supported"
            (Ty.total_rank aty)
        else
          let v = mat_operand ctx out a in
          match scalar ctx out d with
          | Ir.Sconst f when f = 1. || f = 2. || f = 3. ->
              Oscalar (tensor_axis_dim v (int_of_float f - 1))
          | _ ->
              unsupported e.ann.pos
                "size(T, d): d must be the constant 1, 2 or 3"
      else
        let v = mat_operand ctx out a in
        match scalar ctx out d with
        | Ir.Sconst 1. -> Oscalar (Ir.Sdim (v, 1))
        | Ir.Sconst 2. -> Oscalar (Ir.Sdim (v, 2))
        | _ -> unsupported e.ann.pos "size(A, d): d must be the constant 1 or 2")
  | "length", [ a ] ->
      if is_scalar_node ctx a then Oscalar (Ir.Sconst 1.)
      else Oscalar (Ir.Sdim (mat_operand ctx out a, 3))
  | "numel", [ a ] ->
      if is_scalar_node ctx a then Oscalar (Ir.Sconst 1.)
      else Oscalar (Ir.Sdim (mat_operand ctx out a, 0))
  | _ -> unsupported e.ann.pos "unsupported query '%s'" q

(* --- statements --------------------------------------------------------- *)

let display_inst name ty =
  if (ty : Ty.t).Ty.rank = Ty.Rscalar then
    Ir.Iprint (name, Ir.Pscalar (Ir.Svar name))
  else Ir.Iprint (name, Ir.Pmat name)

(* MATLAB condition semantics: a matrix is true when it is nonempty
   and every element is nonzero. *)
let lower_cond ctx out (c : Ast.expr) : Ir.sexpr =
  if is_scalar_node ctx c then scalar ctx out c
  else begin
    let v = mat_operand ctx out c in
    let t = fresh ctx Ty.int_scalar in
    emit out (Ir.Ireduce_all (t, Ir.Rall, v));
    Ir.Sbin
      ( Mlang.Ast.And,
        Ir.Svar t,
        Ir.Sbin (Mlang.Ast.Gt, Ir.Sdim (v, 0), Ir.Sconst 0.) )
  end

let rec lower_stmt ctx out (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign ({ lv_name; lv_indices = None; _ }, rhs, display) ->
      let rty = ty_of ctx rhs in
      let target_ty =
        match Hashtbl.find_opt ctx.vars lv_name with
        | Some t -> t
        | None ->
            Hashtbl.replace ctx.vars lv_name rty;
            rty
      in
      if target_ty.Ty.rank = Ty.Rscalar then begin
        if rty.Ty.rank <> Ty.Rscalar then
          unsupported s.spos
            "variable '%s' is scalar but is assigned a matrix" lv_name;
        (* Char-row-vector (string) variables are supported as opaque
           replicated values: they may be assigned and disp'ed, but any
           numeric use is rejected where it occurs.  Mixing string and
           numeric assignments to one variable defeats the type lattice
           (join(Literal, numeric) forgets the string), so it is
           diagnosed here at the assignment site. *)
        let is_str (t : Ty.t) = t.Ty.base = Ty.Literal in
        if is_str target_ty <> is_str rty then
          unsupported s.spos
            "variable '%s' holds both string and numeric values; not \
             supported by compiled code"
            lv_name;
        match lower_expr ctx out rhs with
        | Ostr str -> emit out (Ir.Iscalar (lv_name, Ir.Sstr str))
        | Oscalar se -> emit out (Ir.Iscalar (lv_name, se))
        | Omat v ->
            let t = fresh ctx Ty.real_scalar in
            emit out (Ir.Ibcast (t, v, [ Ir.Sconst 1. ]));
            emit out (Ir.Iscalar (lv_name, Ir.Svar t))
      end
      else begin
        if rty.Ty.rank = Ty.Rscalar then
          unsupported s.spos
            "variable '%s' changes rank (matrix elsewhere, scalar here); \
             not supported by the compiler"
            lv_name;
        let v = mat_operand ctx out rhs in
        emit out (Ir.Icopy (lv_name, v))
      end;
      if display then emit out (display_inst lv_name target_ty)
  | Ast.Assign ({ lv_name; lv_indices = Some idx; lv_pos }, rhs, display) ->
      let vty =
        match Hashtbl.find_opt ctx.vars lv_name with
        | Some t -> t
        | None -> Source.error lv_pos "undefined variable '%s'" lv_name
      in
      if vty.Ty.rank = Ty.Rscalar then begin
        (* a(1) = x on a scalar variable: plain assignment.  Any other
           constant index would grow the scalar into a vector, which the
           interpreter supports but compiled code does not. *)
        List.iter
          (fun (a : Ast.expr) ->
            match a.node with
            | Ast.Num f when f <> 1. ->
                unsupported lv_pos
                  "'%s(%g) = ...' stores beyond the current extent: matrix \
                   growth is not supported by compiled code (use the \
                   interpreter, or preallocate with zeros)"
                  lv_name f
            | _ -> ())
          idx;
        emit out (Ir.Iscalar (lv_name, scalar ctx out rhs))
      end
      else if Ty.is_tensor vty then begin
        (* Tensor element/section store: exactly one subscript per
           axis; growth is never supported, so out-of-range constant
           indices surface as run-time bounds errors. *)
        let rank = Ty.total_rank vty in
        if rank <> 3 then
          unsupported lv_pos "only rank-3 tensors can be indexed (got rank %d)"
            rank;
        let nargs = List.length idx in
        if nargs <> rank then
          unsupported lv_pos
            "a rank-%d tensor must be indexed with exactly %d subscripts \
             (got %d)"
            rank rank nargs;
        let with_end i f =
          let saved = ctx.end_subst in
          ctx.end_subst <- Some (tensor_axis_dim lv_name i);
          let r = f () in
          ctx.end_subst <- saved;
          r
        in
        let scalar_store =
          is_scalar_node ctx rhs
          && List.for_all
               (fun (a : Ast.expr) ->
                 match a.node with
                 | Ast.Colon | Ast.Range _ -> false
                 | _ -> is_scalar_node ctx a)
               idx
        in
        if scalar_store then begin
          let sidx =
            List.mapi (fun i a -> with_end i (fun () -> scalar ctx out a)) idx
          in
          let sv = scalar ctx out rhs in
          emit out (Ir.Isetelem (lv_name, sidx, sv))
        end
        else begin
          let sel_of i (a : Ast.expr) =
            with_end i (fun () ->
                match a.node with
                | Ast.Colon -> Ir.Sel_all
                | Ast.Range (lo, step, hi) ->
                    let slo = scalar ctx out lo in
                    let sstep = Option.map (scalar ctx out) step in
                    let shi = scalar ctx out hi in
                    Ir.Sel_range (slo, sstep, shi)
                | _ ->
                    if is_scalar_node ctx a then
                      Ir.Sel_scalar (scalar ctx out a)
                    else Ir.Sel_vec (mat_operand ctx out a))
          in
          let sels = List.mapi sel_of idx in
          let src =
            if is_scalar_node ctx rhs then Ir.Ascalar (scalar ctx out rhs)
            else Ir.Amat (mat_operand ctx out rhs)
          in
          emit out (Ir.Isetsection { dst = lv_name; sels; src })
        end
      end
      else begin
        let nargs = List.length idx in
        (* Compile-time growth detection: a constant index beyond a
           statically known extent is MATLAB auto-growth, which the
           distributed run time cannot do (it would redistribute the
           blocks of every copy).  Reject it here with a clear message
           rather than failing with a generic bounds error at run time. *)
        let extent_of_slot i =
          let dim = function Ty.Dconst n -> Some n | Ty.Dunknown -> None in
          if nargs = 1 then
            match (dim vty.Ty.shape.Ty.rows, dim vty.Ty.shape.Ty.cols) with
            | Some r, Some c -> Some (r * c)
            | _ -> None
          else if i = 0 then dim vty.Ty.shape.Ty.rows
          else dim vty.Ty.shape.Ty.cols
        in
        let check_growth i (s : Ir.sexpr) =
          match (extent_of_slot i, s) with
          | Some n, Ir.Sconst f when f > float_of_int n ->
              unsupported lv_pos
                "'%s' has %d element%s along this dimension but index %g is \
                 stored to: matrix growth is not supported by compiled code \
                 (use the interpreter, or preallocate with zeros)"
                lv_name n
                (if n = 1 then "" else "s")
                f
          | _ -> ()
        in
        let slot_dim i =
          if nargs = 1 then Ir.Sdim (lv_name, 0) else Ir.Sdim (lv_name, i + 1)
        in
        let with_end i f =
          let saved = ctx.end_subst in
          ctx.end_subst <- Some (slot_dim i);
          let r = f () in
          ctx.end_subst <- saved;
          r
        in
        let scalar_store =
          is_scalar_node ctx rhs
          && List.for_all
               (fun (a : Ast.expr) ->
                 match a.node with
                 | Ast.Colon | Ast.Range _ -> false
                 | _ -> is_scalar_node ctx a)
               idx
        in
        if scalar_store then begin
          (* a(i, j) = scalar: the paper's guarded element store *)
          let sidx =
            List.mapi (fun i a -> with_end i (fun () -> scalar ctx out a)) idx
          in
          List.iteri check_growth sidx;
          let sv = scalar ctx out rhs in
          emit out (Ir.Isetelem (lv_name, sidx, sv))
        end
        else begin
          (* a(sels) = rhs: owner-computes scatter of a section *)
          let sel_of i (a : Ast.expr) =
            with_end i (fun () ->
                match a.node with
                | Ast.Colon -> Ir.Sel_all
                | Ast.Range (lo, step, hi) ->
                    let slo = scalar ctx out lo in
                    let sstep = Option.map (scalar ctx out) step in
                    let shi = scalar ctx out hi in
                    Ir.Sel_range (slo, sstep, shi)
                | _ ->
                    if is_scalar_node ctx a then
                      Ir.Sel_scalar (scalar ctx out a)
                    else Ir.Sel_vec (mat_operand ctx out a))
          in
          let sels = List.mapi sel_of idx in
          List.iteri
            (fun i -> function
              | Ir.Sel_scalar s -> check_growth i s
              | Ir.Sel_range (Ir.Sconst lo, step, Ir.Sconst hi) -> (
                  (* the last index a constant range touches *)
                  let stepv =
                    match step with
                    | None -> Some 1.
                    | Some (Ir.Sconst s) when s <> 0. -> Some s
                    | Some _ -> None
                  in
                  match stepv with
                  | Some sv ->
                      let n = Float.floor (((hi -. lo) /. sv) +. 1e-9) in
                      if n >= 0. then
                        check_growth i
                          (Ir.Sconst (Float.max lo (lo +. (n *. sv))))
                  | None -> ())
              | Ir.Sel_range _ | Ir.Sel_all | Ir.Sel_vec _ -> ())
            sels;
          let src =
            if is_scalar_node ctx rhs then Ir.Ascalar (scalar ctx out rhs)
            else Ir.Amat (mat_operand ctx out rhs)
          in
          emit out (Ir.Isetsection { dst = lv_name; sels; src })
        end
      end;
      if display then emit out (display_inst lv_name vty)
  | Ast.Multi_assign (ls, rhs, display) -> lower_multi ctx out s ls rhs display
  | Ast.Expr ({ node = Ast.Call ("disp", [ arg ]); _ }, _) -> (
      match lower_expr ctx out arg with
      | Oscalar se -> emit out (Ir.Iprint ("", Ir.Pscalar se))
      | Omat v -> emit out (Ir.Iprint ("", Ir.Pmat v))
      | Ostr str -> emit out (Ir.Iprint ("", Ir.Pstr str)))
  | Ast.Expr ({ node = Ast.Call ("fprintf", args); _ }, _) ->
      let sargs =
        List.map
          (fun a ->
            match lower_expr ctx out a with
            | Oscalar se ->
                if (ty_of ctx a).Ty.base = Ty.Literal then
                  unsupported a.Ast.ann.pos
                    "fprintf of a string variable is not supported by \
                     compiled code; pass the string literal directly";
                se
            | Ostr str -> Ir.Sstr str
            | Omat _ -> unsupported s.spos "fprintf of a whole matrix")
          args
      in
      emit out (Ir.Iprintf sargs)
  | Ast.Expr ({ node = Ast.Call ("error", [ { node = Ast.Str msg; _ } ]); _ }, _)
    ->
      emit out (Ir.Ierror msg)
  | Ast.Expr ({ node = Ast.Call ("MPI_Send", [ dest; tag; value ]); _ }, _)
    when not (Hashtbl.mem user_funcs_marker "MPI_Send") ->
      let sd = scalar ctx out dest in
      let st = scalar ctx out tag in
      let v = call_arg ctx out value in
      emit out (Ir.Impi_send (sd, st, v))
  | Ast.Expr (e, display) -> (
      match lower_expr ctx out e with
      | Oscalar se -> if display then emit out (Ir.Iprint ("ans", Ir.Pscalar se))
      | Omat v -> if display then emit out (Ir.Iprint ("ans", Ir.Pmat v))
      | Ostr str -> if display then emit out (Ir.Iprint ("ans", Ir.Pstr str)))
  | Ast.If (branches, els) ->
      let lb (c, blk) =
        let sc = lower_cond ctx out c in
        (sc, lower_block ctx blk)
      in
      let branches = List.map lb branches in
      emit out (Ir.Iif (branches, lower_block ctx els))
  | Ast.While (c, blk) ->
      (* The condition is re-evaluated each iteration; its temporaries
         must live inside the loop.  We lower it into the loop head via
         a scalar temp pattern: while (1) { c = ...; if (!c) break; } *)
      let cond_out = ref [] in
      let sc = lower_cond ctx cond_out c in
      let body = lower_block ctx blk in
      if !cond_out = [] then emit out (Ir.Iwhile (sc, body))
      else begin
        let head = List.rev !cond_out in
        let guarded =
          head @ [ Ir.Iif ([ (Ir.Snot sc, [ Ir.Ibreak ]) ], []) ] @ body
        in
        emit out (Ir.Iwhile (Ir.Sconst 1., guarded))
      end
  | Ast.For (v, range, blk) ->
      Hashtbl.replace ctx.vars v Ty.int_scalar;
      (match range.node with
      | Ast.Range (a, st, b) ->
          let start = scalar ctx out a in
          let step = Option.map (scalar ctx out) st in
          let stop = scalar ctx out b in
          let body = lower_block ctx blk in
          emit out (Ir.Ifor (v, start, step, stop, body))
      | _ when is_scalar_node ctx range ->
          let sv = scalar ctx out range in
          let body = lower_block ctx blk in
          emit out (Ir.Ifor (v, sv, None, sv, body))
      | _ ->
          let rty = ty_of ctx range in
          if Ty.is_tensor rty then
            unsupported s.spos
              "for over a tensor is not supported; iterate over an index \
               range";
          if not (Ty.is_vector rty || rty.Ty.shape = Ty.unknown_shape) then
            unsupported s.spos
              "for over the columns of a full matrix is not supported; \
               iterate over an index range";
          (* for x = vec: hidden index loop, one element broadcast per
             iteration *)
          let vec = mat_operand ctx out range in
          let k = fresh ctx Ty.int_scalar in
          let body = lower_block ctx blk in
          let fetch = Ir.Ibcast (v, vec, [ Ir.Svar k ]) in
          emit out
            (Ir.Ifor (k, Ir.Sconst 1., None, Ir.Sdim (vec, 0), fetch :: body)))
  | Ast.Break -> emit out Ir.Ibreak
  | Ast.Continue -> emit out Ir.Icontinue
  | Ast.Return -> emit out Ir.Ireturn

and lower_multi ctx out s ls rhs display =
  match rhs.node with
  | Ast.Call ("size", [ a ]) when List.length ls = 2 ->
      if Ty.is_tensor (ty_of ctx a) then
        unsupported s.spos
          "[r, c] = size(...) is not defined for tensors; use size(T, d)";
      let v = mat_operand ctx out a in
      List.iteri
        (fun i (l : Ast.lhs) ->
          if l.lv_indices <> None then
            unsupported l.lv_pos "indexed targets in [r,c] = size(...)";
          Hashtbl.replace ctx.vars l.lv_name Ty.int_scalar;
          emit out (Ir.Iscalar (l.lv_name, Ir.Sdim (v, i + 1))))
        ls
  | Ast.Call ("sort", [ arg ]) when List.length ls = 2
         && not (Hashtbl.mem user_funcs_marker "sort") ->
      let v = mat_operand ctx out arg in
      (match ls with
      | [ lv; li ] ->
          if lv.lv_indices <> None || li.lv_indices <> None then
            unsupported s.spos "indexed targets in [s, i] = sort(...)";
          if not (Hashtbl.mem ctx.vars lv.lv_name) then
            Hashtbl.replace ctx.vars lv.lv_name (ty_of ctx rhs);
          if not (Hashtbl.mem ctx.vars li.lv_name) then
            Hashtbl.replace ctx.vars li.lv_name
              (Ty.matrix Ty.Integer);
          emit out
            (Ir.Isort { vdst = lv.lv_name; idst = Some li.lv_name; arg = v })
      | _ -> assert false)
  | Ast.Call (name, [ arg ]) when (name = "min" || name = "max")
         && List.length ls = 2
         && not (Hashtbl.mem user_funcs_marker name) ->
      (* [m, i] = min(v) / max(v) *)
      let v = mat_operand ctx out arg in
      let kind = if name = "min" then Ir.Rmin else Ir.Rmax in
      (match ls with
      | [ lm; li ] ->
          if lm.lv_indices <> None || li.lv_indices <> None then
            unsupported s.spos "indexed targets in [m, i] = %s(...)" name;
          if not (Hashtbl.mem ctx.vars lm.lv_name) then
            Hashtbl.replace ctx.vars lm.lv_name Ty.real_scalar;
          if not (Hashtbl.mem ctx.vars li.lv_name) then
            Hashtbl.replace ctx.vars li.lv_name Ty.int_scalar;
          emit out
            (Ir.Ireduce_loc
               { vdst = lm.lv_name; idst = li.lv_name; kind; arg = v })
      | _ -> assert false)
  | Ast.Call (name, args) when Hashtbl.mem user_funcs_marker name ->
      let cargs = List.map (call_arg ctx out) args in
      let rets =
        List.map
          (fun (l : Ast.lhs) ->
            if l.lv_indices <> None then
              unsupported l.lv_pos "indexed targets in multiple assignment";
            l.lv_name)
          ls
      in
      (* Return types were recorded during inference. *)
      (match Hashtbl.find_opt ctx.info.Analysis.Infer.func_returns name with
      | Some tys ->
          List.iteri
            (fun i r ->
              match List.nth_opt tys i with
              | Some t ->
                  if not (Hashtbl.mem ctx.vars r) then
                    Hashtbl.replace ctx.vars r t
              | None -> ())
            rets
      | None -> ());
      emit out (Ir.Icalluser { rets; name; args = cargs });
      if display then
        List.iter
          (fun r ->
            match Hashtbl.find_opt ctx.vars r with
            | Some t -> emit out (display_inst r t)
            | None -> ())
          rets
  | _ ->
      unsupported s.spos
        "multiple assignment requires size(...) or a user function"

and lower_block ctx (b : Ast.block) : Ir.block =
  let out = ref [] in
  List.iter (lower_stmt ctx out) b;
  List.rev !out

(* --- program ------------------------------------------------------------ *)

let vars_alist tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let lower_func info (f : Ast.func) : Ir.func =
  let vars = Hashtbl.create 16 in
  (match Hashtbl.find_opt info.Analysis.Infer.func_var_ty f.Ast.fname with
  | Some tys -> Hashtbl.iter (fun k v -> Hashtbl.replace vars k v) tys
  | None -> ());
  let ctx = { info; vars; tmp = 0; end_subst = None } in
  let body = lower_block ctx f.Ast.fbody in
  let ty_of_var v =
    match Hashtbl.find_opt vars v with Some t -> t | None -> Ty.real_scalar
  in
  {
    Ir.f_name = f.Ast.fname;
    f_params = List.map (fun p -> (p, ty_of_var p)) f.Ast.params;
    f_rets = List.map (fun r -> (r, ty_of_var r)) f.Ast.returns;
    f_vars = List.sort compare (vars_alist vars);
    f_body = body;
  }

let lower_program (info : Analysis.Infer.result) (p : Ast.program) : Ir.prog =
  Hashtbl.reset user_funcs_marker;
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace user_funcs_marker f.Ast.fname ())
    p.funcs;
  let vars = Hashtbl.create 32 in
  Hashtbl.iter (fun k v -> Hashtbl.replace vars k v) info.Analysis.Infer.var_ty;
  let ctx = { info; vars; tmp = 0; end_subst = None } in
  let body = lower_block ctx p.script in
  {
    Ir.p_vars = List.sort compare (vars_alist vars);
    p_body = body;
    p_funcs = List.map (lower_func info) p.funcs;
  }
