(* Constructor folding into element-wise expressions.

   [t = zeros(n,m); d = elemwise ... t[i] ...] materialises and reads a
   matrix every one of whose elements is statically known.  When the
   constructor's only consumer is a single element-wise expression, the
   matrix never needs to exist: zeros/ones become the constants 0/1 and
   eye becomes [Eeye], an indicator that the current element lies on
   the model matrix's main diagonal.  This removes the constructor's
   run-time library call (and its allocation) entirely -- e.g. the
   [n*eye(n)] in conjugate gradient's matrix setup.

   Only compiler temporaries fold (a named variable can be captured or
   printed later), only when the temporary has exactly one definition
   and exactly one use, and never rand/randn (sequence-numbered
   draws).  Element-wise conformability guarantees the folded
   constructor had the model's shape, so [Eeye]'s diagonal test against
   the model is the same predicate. *)

type stats = { mutable folded : int }

let candidate_kind (i : Ir.inst) : (string * Ir.ckind) option =
  match i with
  | Ir.Iconstruct { dst; kind = (Ir.Czeros | Ir.Cones | Ir.Ceye) as kind; _ }
    when Dataflow.is_temp dst ->
      Some (dst, kind)
  | _ -> None

let replacement = function
  | Ir.Czeros -> Ir.Escalar (Ir.Sconst 0.)
  | Ir.Cones -> Ir.Escalar (Ir.Sconst 1.)
  | Ir.Ceye -> Ir.Eeye
  | _ -> assert false

let rec subst_eexpr t repl (e : Ir.eexpr) : Ir.eexpr =
  match e with
  | Ir.Emat v when v = t -> repl
  | Ir.Emat _ | Ir.Eeye | Ir.Escalar _ -> e
  | Ir.Ebin (op, a, b) -> Ir.Ebin (op, subst_eexpr t repl a, subst_eexpr t repl b)
  | Ir.Eneg a -> Ir.Eneg (subst_eexpr t repl a)
  | Ir.Enot a -> Ir.Enot (subst_eexpr t repl a)
  | Ir.Ecall1 (n, a) -> Ir.Ecall1 (n, subst_eexpr t repl a)
  | Ir.Ecall2 (n, a, b) ->
      Ir.Ecall2 (n, subst_eexpr t repl a, subst_eexpr t repl b)

let fold_body stats (body : Ir.block) : Ir.block =
  let defs = Dataflow.def_counts body in
  let uses = Dataflow.use_counts body in
  (* temps defined once and consumed once, by some element-wise expr *)
  let cands = Hashtbl.create 8 in
  Ir.iter_insts
    (fun i ->
      match candidate_kind i with
      | Some (t, kind)
        when Dataflow.uses defs t = 1 && Dataflow.uses uses t = 1 ->
          Hashtbl.replace cands t kind
      | _ -> ())
    body;
  if Hashtbl.length cands = 0 then body
  else begin
    let folded = Hashtbl.create 8 in
    let rec rewrite (b : Ir.block) : Ir.block =
      List.concat_map
        (fun (i : Ir.inst) ->
          match i with
          | Ir.Ielem ({ model; expr; _ } as e) ->
              let expr' =
                Hashtbl.fold
                  (fun t kind acc ->
                    if t <> model && List.mem t (Ir.eexpr_uses [] acc) then begin
                      Hashtbl.replace folded t ();
                      stats.folded <- stats.folded + 1;
                      subst_eexpr t (replacement kind) acc
                    end
                    else acc)
                  cands expr
              in
              [ Ir.Ielem { e with expr = expr' } ]
          | Ir.Iif (branches, els) ->
              [
                Ir.Iif
                  ( List.map (fun (c, blk) -> (c, rewrite blk)) branches,
                    rewrite els );
              ]
          | Ir.Iwhile (c, blk) -> [ Ir.Iwhile (c, rewrite blk) ]
          | Ir.Ifor (v, a, st, b2, blk) -> [ Ir.Ifor (v, a, st, b2, rewrite blk) ]
          | _ -> [ i ])
        b
    in
    let b' = rewrite body in
    (* drop the now-unconsumed constructors *)
    let rec sweep (b : Ir.block) : Ir.block =
      List.concat_map
        (fun (i : Ir.inst) ->
          match i with
          | Ir.Iconstruct { dst; _ } when Hashtbl.mem folded dst -> []
          | Ir.Iif (branches, els) ->
              [
                Ir.Iif
                  (List.map (fun (c, blk) -> (c, sweep blk)) branches, sweep els);
              ]
          | Ir.Iwhile (c, blk) -> [ Ir.Iwhile (c, sweep blk) ]
          | Ir.Ifor (v, a, st, b2, blk) -> [ Ir.Ifor (v, a, st, b2, sweep blk) ]
          | _ -> [ i ])
        b
    in
    sweep b'
  end

let run (p : Ir.prog) : Ir.prog * (string * int) list =
  let stats = { folded = 0 } in
  let body = fold_body stats p.Ir.p_body in
  let funcs =
    List.map
      (fun (f : Ir.func) -> { f with Ir.f_body = fold_body stats f.f_body })
      p.Ir.p_funcs
  in
  ({ p with Ir.p_body = body; p_funcs = funcs }, [ ("folded", stats.folded) ])
