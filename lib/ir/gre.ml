(* Global redundancy elimination over pure run-time library calls.

   A forward availability analysis: when a broadcast, transpose,
   reduction, section or constructor has already been computed from
   operands nobody has since redefined, the later occurrence reuses the
   earlier destination (a local copy) instead of paying the
   communication again.  This subsumes the peephole pass's
   adjacent-only broadcast-reuse rule: availability survives across
   non-adjacent statements, flows into branch arms, and flows into
   loop bodies for facts whose variables the loop never touches.

   Conservatism at joins: after an [Iif], facts invalidated by any arm
   die; a loop body starts from the incoming facts minus everything the
   body may define, and facts established inside the body die at the
   loop exit (a zero-trip loop never established them). *)

module VSet = Dataflow.VSet

(* The availability key is the instruction with its destination
   blanked; structural equality then identifies recomputations.
   rand/randn are excluded (sequence-numbered draws), as is anything
   impure or multi-destination. *)
let key_of (i : Ir.inst) : Ir.inst option =
  match i with
  | Ir.Ibcast (_, m, idx) -> Some (Ir.Ibcast ("", m, idx))
  | Ir.Itranspose (_, a) -> Some (Ir.Itranspose ("", a))
  | Ir.Idiag (_, a) -> Some (Ir.Idiag ("", a))
  | Ir.Iouter (_, a, b) -> Some (Ir.Iouter ("", a, b))
  | Ir.Imatmul (_, a, b) -> Some (Ir.Imatmul ("", a, b))
  | Ir.Idot (_, a, b) -> Some (Ir.Idot ("", a, b))
  | Ir.Ireduce_all (_, k, a) -> Some (Ir.Ireduce_all ("", k, a))
  | Ir.Ireduce_cols (_, k, a) -> Some (Ir.Ireduce_cols ("", k, a))
  | Ir.Inorm (_, a) -> Some (Ir.Inorm ("", a))
  | Ir.Iscan (_, k, a) -> Some (Ir.Iscan ("", k, a))
  | Ir.Itrapz (_, x, y) -> Some (Ir.Itrapz ("", x, y))
  | Ir.Ishift (_, s, k) -> Some (Ir.Ishift ("", s, k))
  | Ir.Iconstruct { kind = Ir.Crand | Ir.Crandn; _ } -> None
  | Ir.Iconstruct c -> Some (Ir.Iconstruct { c with dst = "" })
  | Ir.Iliteral l -> Some (Ir.Iliteral { l with dst = "" })
  | Ir.Isection s -> Some (Ir.Isection { s with dst = "" })
  | _ -> None

(* Is the (single) destination a replicated scalar?  Decides whether
   reuse is a scalar assignment or a matrix copy. *)
let scalar_dst (i : Ir.inst) : bool =
  match i with
  | Ir.Ibcast _ | Ir.Idot _ | Ir.Ireduce_all _ | Ir.Inorm _ | Ir.Itrapz _ ->
      true
  | _ -> false

type fact = { key : Ir.inst; dst : string; scalar : bool }

let invalidate (avail : fact list) (killed : VSet.t) : fact list =
  if VSet.is_empty killed then avail
  else
    List.filter
      (fun f ->
        (not (VSet.mem f.dst killed))
        && not (List.exists (fun u -> VSet.mem u killed) (Ir.inst_uses f.key)))
      avail

type stats = { mutable reused : int }

let rec go stats (avail : fact list) (b : Ir.block) : Ir.block * fact list =
  match b with
  | [] -> ([], avail)
  | i :: rest -> (
      match i with
      | Ir.Iif (branches, els) ->
          let branches' =
            List.map (fun (c, blk) -> (c, fst (go stats avail blk))) branches
          in
          let els' = fst (go stats avail els) in
          let killed =
            List.fold_left
              (fun acc (_, blk) -> VSet.union acc (Dataflow.block_defs blk))
              (Dataflow.block_defs els) branches
          in
          let rest', out = go stats (invalidate avail killed) rest in
          (Ir.Iif (branches', els') :: rest', out)
      | Ir.Iwhile (c, body) ->
          let killed = Dataflow.block_defs body in
          let avail' = invalidate avail killed in
          let body' = fst (go stats avail' body) in
          let rest', out = go stats avail' rest in
          (Ir.Iwhile (c, body') :: rest', out)
      | Ir.Ifor (v, a, st, b2, body) ->
          let killed = VSet.add v (Dataflow.block_defs body) in
          let avail' = invalidate avail killed in
          let body' = fst (go stats avail' body) in
          let rest', out = go stats avail' rest in
          (Ir.Ifor (v, a, st, b2, body') :: rest', out)
      | _ -> (
          match key_of i with
          | Some key -> (
              let d = List.hd (Ir.inst_defs i) in
              match List.find_opt (fun f -> f.key = key) avail with
              | Some f ->
                  stats.reused <- stats.reused + 1;
                  let avail' = invalidate avail (VSet.singleton d) in
                  let repl =
                    if f.dst = d then []
                    else if f.scalar then [ Ir.Iscalar (d, Ir.Svar f.dst) ]
                    else [ Ir.Icopy (d, f.dst) ]
                  in
                  let rest', out = go stats avail' rest in
                  (repl @ rest', out)
              | None ->
                  let avail' = invalidate avail (VSet.singleton d) in
                  let avail'' =
                    if List.mem d (Ir.inst_uses key) then avail'
                    else { key; dst = d; scalar = scalar_dst i } :: avail'
                  in
                  let rest', out = go stats avail'' rest in
                  (i :: rest', out))
          | None ->
              let killed = VSet.of_list (Ir.inst_defs i) in
              let rest', out = go stats (invalidate avail killed) rest in
              (i :: rest', out)))

let run (p : Ir.prog) : Ir.prog * (string * int) list =
  let stats = { reused = 0 } in
  let body = fst (go stats [] p.Ir.p_body) in
  let funcs =
    List.map
      (fun (f : Ir.func) -> { f with Ir.f_body = fst (go stats [] f.f_body) })
      p.Ir.p_funcs
  in
  ({ p with Ir.p_body = body; p_funcs = funcs }, [ ("reused", stats.reused) ])
