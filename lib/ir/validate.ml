(* Structural validation of the SPMD IR.

   The pass manager runs this between passes (in debug builds and under
   `otterc fuzz`) so a miscompiling rewrite is caught at the pass that
   introduced it rather than as a mysterious back-end disagreement.

   Checks:
   - every used variable is defined on some earlier path, or is a
     function parameter (loop bodies are pre-seeded with their own
     definitions: an instruction may read a value produced later in the
     body on a previous iteration);
   - every variable an instruction touches appears in the enclosing
     variable table, so both back ends can declare it;
   - compiler temporaries (ML_tmp prefix) have at most one static definition
     site per body outside loops -- lowering emits each temporary
     exactly once, and no pass may duplicate one;
   - [Iconcat] grids are consistent: grid_rows * grid_cols parts;
   - control-flow nesting is well-formed: break/continue only inside a
     loop body. *)

module VSet = Dataflow.VSet

exception Invalid of string

(* Collect every violation rather than stopping at the first: a broken
   pass usually breaks several places at once, and the full list is the
   better bug report. *)
let check_body ~(name : string) ~(params : string list)
    ~(table : (Ir.var * Analysis.Ty.t) list) (body : Ir.block) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := (name ^ ": " ^ m) :: !errs) fmt in
  let in_table = Hashtbl.create 64 in
  List.iter (fun (v, _) -> Hashtbl.replace in_table v ()) table;
  List.iter (fun v -> Hashtbl.replace in_table v ()) params;
  (* one static def site per temp outside loops *)
  let temp_sites = Hashtbl.create 64 in
  let rec count_temp_sites ~in_loop (b : Ir.block) =
    List.iter
      (fun (i : Ir.inst) ->
        (match i with
        | Ir.Iif (branches, els) ->
            List.iter (fun (_, blk) -> count_temp_sites ~in_loop blk) branches;
            count_temp_sites ~in_loop els
        | Ir.Iwhile (_, blk) -> count_temp_sites ~in_loop:true blk
        | Ir.Ifor (_, _, _, _, blk) -> count_temp_sites ~in_loop:true blk
        | _ -> ());
        if not in_loop then
          List.iter
            (fun d ->
              if Dataflow.is_temp d then
                Hashtbl.replace temp_sites d
                  (1 + Option.value ~default:0 (Hashtbl.find_opt temp_sites d)))
            (Ir.inst_defs i))
      b
  in
  count_temp_sites ~in_loop:false body;
  Hashtbl.iter
    (fun t n ->
      if n > 1 then
        err "temporary %s has %d definition sites outside loops \
             (temps are single-assignment)" t n)
    temp_sites;
  (* forward walk: definedness, tables, concat grids, nesting *)
  let check_var_known v =
    if not (Hashtbl.mem in_table v) then
      err "variable %s is missing from the variable table" v
  in
  let check_uses defined (i : Ir.inst) =
    List.iter
      (fun u ->
        check_var_known u;
        if not (VSet.mem u defined) then
          err "variable %s is used before any definition reaches it" u)
      (Ir.inst_uses i)
  in
  let rec walk ~in_loop defined (b : Ir.block) : VSet.t =
    List.fold_left
      (fun defined (i : Ir.inst) ->
        check_uses defined i;
        List.iter check_var_known (Ir.inst_defs i);
        (match i with
        | Ir.Iconcat { grid_rows; grid_cols; parts; _ } ->
            if grid_rows <= 0 || grid_cols <= 0 then
              err "concat grid %dx%d is empty" grid_rows grid_cols
            else if List.length parts <> grid_rows * grid_cols then
              err "concat grid %dx%d expects %d parts but has %d" grid_rows
                grid_cols (grid_rows * grid_cols) (List.length parts)
        | Ir.Ibreak when not in_loop -> err "break outside any loop"
        | Ir.Icontinue when not in_loop -> err "continue outside any loop"
        | _ -> ());
        match i with
        | Ir.Iif (branches, els) ->
            (* may-define: a later use is fine if some path defines it *)
            let outs =
              List.map (fun (_, blk) -> walk ~in_loop defined blk) branches
              @ [ walk ~in_loop defined els ]
            in
            List.fold_left VSet.union defined outs
        | Ir.Iwhile (_, blk) ->
            (* pre-seed with the body's own definitions: an iteration
               may read what a previous iteration wrote *)
            let seeded = VSet.union defined (Dataflow.block_defs blk) in
            ignore (walk ~in_loop:true seeded blk);
            seeded
        | Ir.Ifor (v, _, _, _, blk) ->
            let seeded =
              VSet.add v (VSet.union defined (Dataflow.block_defs blk))
            in
            ignore (walk ~in_loop:true seeded blk);
            seeded
        | _ -> VSet.union defined (VSet.of_list (Ir.inst_defs i)))
      defined b
  in
  ignore (walk ~in_loop:false (VSet.of_list params) body);
  List.rev !errs

let check (p : Ir.prog) : string list =
  let script = check_body ~name:"script" ~params:[] ~table:p.Ir.p_vars p.Ir.p_body in
  let funcs =
    List.concat_map
      (fun (f : Ir.func) ->
        check_body ~name:("function " ^ f.Ir.f_name)
          ~params:(List.map fst f.Ir.f_params)
          ~table:f.Ir.f_vars f.Ir.f_body)
      p.Ir.p_funcs
  in
  script @ funcs

(* Raise [Invalid] naming the pipeline point on any violation. *)
let run ~(where : string) (p : Ir.prog) : unit =
  match check p with
  | [] -> ()
  | errs ->
      raise
        (Invalid
           (Printf.sprintf "IR validation failed %s:\n  %s" where
              (String.concat "\n  " errs)))
