(* Dataflow analyses over the structured SPMD IR.

   The middle-end passes (LICM, redundancy elimination, copy
   propagation, liveness DCE -- see pass.ml) all consume the same small
   set of facts about a program: which variables an instruction reads
   and writes, how often each variable is used, which variables a whole
   region may define, and which variables are live at a point.  This
   module computes them once over the structured IR, replacing the flat
   [count_uses] the peephole pass grew up with.

   The IR has no unstructured jumps: control flow is [Iif]/[Iwhile]/
   [Ifor] nesting plus the early exits [Ibreak]/[Icontinue]/[Ireturn]/
   [Ierror].  Liveness therefore runs as a backward walk over the
   instruction list with a fixpoint at loops; may-define sets are a
   simple recursive union. *)

module VSet = Set.Make (String)

let is_temp v = String.length v > 6 && String.sub v 0 6 = "ML_tmp"

(* --- use counts --------------------------------------------------------- *)

type counts = (string, int) Hashtbl.t

(* Occurrences of each variable in a use position anywhere in [b],
   nested blocks included. *)
let use_counts (b : Ir.block) : counts =
  let tbl = Hashtbl.create 64 in
  let bump v =
    Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))
  in
  Ir.iter_insts (fun i -> List.iter bump (Ir.inst_uses i)) b;
  tbl

let uses (c : counts) v = Option.value ~default:0 (Hashtbl.find_opt c v)

(* Static definition sites of each variable (each instruction counted
   once, however many times a loop would execute it). *)
let def_counts (b : Ir.block) : counts =
  let tbl = Hashtbl.create 64 in
  let bump v =
    Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))
  in
  Ir.iter_insts (fun i -> List.iter bump (Ir.inst_defs i)) b;
  tbl

(* --- region summaries --------------------------------------------------- *)

(* Every variable [b] may define: ordinary destinations, in-place
   updates and loop variables, any nesting depth. *)
let block_defs (b : Ir.block) : VSet.t =
  let acc = ref VSet.empty in
  Ir.iter_insts
    (fun i -> List.iter (fun v -> acc := VSet.add v !acc) (Ir.inst_defs i))
    b;
  !acc

(* Every variable [i] reads, nested blocks included. *)
let inst_uses_rec (i : Ir.inst) : VSet.t =
  let acc = ref VSet.empty in
  Ir.iter_insts
    (fun i -> List.iter (fun v -> acc := VSet.add v !acc) (Ir.inst_uses i))
    [ i ];
  !acc

(* Does [i] contain an early exit (anywhere inside)?  An instruction
   after one of these in a loop body is only conditionally executed,
   which blocks code motion past it. *)
let has_early_exit (i : Ir.inst) : bool =
  let found = ref false in
  Ir.iter_insts
    (fun i ->
      match i with
      | Ir.Ibreak | Ir.Icontinue | Ir.Ireturn | Ir.Ierror _ -> found := true
      | _ -> ())
    [ i ];
  !found

(* rand/randn draw from a replicated sequence keyed by how many calls
   ran before them, so they may never be removed, duplicated or
   reordered relative to each other -- pure, but not deterministic. *)
let is_rand (i : Ir.inst) : bool =
  match i with
  | Ir.Iconstruct { kind = Ir.Crand | Ir.Crandn; _ } -> true
  | _ -> false

(* --- substitution over use positions ------------------------------------ *)

let rec map_sexpr f (s : Ir.sexpr) : Ir.sexpr =
  match s with
  | Ir.Sconst _ | Ir.Sstr _ -> s
  | Ir.Svar v -> Ir.Svar (f v)
  | Ir.Sbin (op, a, b) -> Ir.Sbin (op, map_sexpr f a, map_sexpr f b)
  | Ir.Sneg a -> Ir.Sneg (map_sexpr f a)
  | Ir.Snot a -> Ir.Snot (map_sexpr f a)
  | Ir.Scall (name, args) -> Ir.Scall (name, List.map (map_sexpr f) args)
  | Ir.Sdim (v, k) -> Ir.Sdim (f v, k)

let rec map_eexpr f (e : Ir.eexpr) : Ir.eexpr =
  match e with
  | Ir.Emat v -> Ir.Emat (f v)
  | Ir.Eeye -> Ir.Eeye
  | Ir.Escalar s -> Ir.Escalar (map_sexpr f s)
  | Ir.Ebin (op, a, b) -> Ir.Ebin (op, map_eexpr f a, map_eexpr f b)
  | Ir.Eneg a -> Ir.Eneg (map_eexpr f a)
  | Ir.Enot a -> Ir.Enot (map_eexpr f a)
  | Ir.Ecall1 (n, a) -> Ir.Ecall1 (n, map_eexpr f a)
  | Ir.Ecall2 (n, a, b) -> Ir.Ecall2 (n, map_eexpr f a, map_eexpr f b)

let map_sel f (s : Ir.sel) : Ir.sel =
  match s with
  | Ir.Sel_all -> Ir.Sel_all
  | Ir.Sel_scalar e -> Ir.Sel_scalar (map_sexpr f e)
  | Ir.Sel_range (a, st, b) ->
      Ir.Sel_range (map_sexpr f a, Option.map (map_sexpr f) st, map_sexpr f b)
  | Ir.Sel_vec v -> Ir.Sel_vec (f v)

let map_call_arg f = function
  | Ir.Ascalar s -> Ir.Ascalar (map_sexpr f s)
  | Ir.Amat v -> Ir.Amat (f v)

(* Rewrite every variable in a *use* position of one instruction
   (destinations and in-place update targets are left alone; for
   control flow only the conditions and bounds are rewritten -- nested
   blocks are the caller's business). *)
let map_uses (f : string -> string) (i : Ir.inst) : Ir.inst =
  match i with
  | Ir.Iscalar (d, s) -> Ir.Iscalar (d, map_sexpr f s)
  | Ir.Ielem e -> Ir.Ielem { e with model = f e.model; expr = map_eexpr f e.expr }
  | Ir.Icopy (d, s) -> Ir.Icopy (d, f s)
  | Ir.Imatmul (d, a, b) -> Ir.Imatmul (d, f a, f b)
  | Ir.Imatmul_t (d, a, b) -> Ir.Imatmul_t (d, f a, f b)
  | Ir.Idot (d, a, b) -> Ir.Idot (d, f a, f b)
  | Ir.Itranspose (d, a) -> Ir.Itranspose (d, f a)
  | Ir.Idiag (d, a) -> Ir.Idiag (d, f a)
  | Ir.Iouter (d, a, b) -> Ir.Iouter (d, f a, f b)
  | Ir.Ireduce_all (d, k, a) -> Ir.Ireduce_all (d, k, f a)
  | Ir.Ireduce_cols (d, k, a) -> Ir.Ireduce_cols (d, k, f a)
  | Ir.Inorm (d, a) -> Ir.Inorm (d, f a)
  | Ir.Iscan (d, k, a) -> Ir.Iscan (d, k, f a)
  | Ir.Isort s -> Ir.Isort { s with arg = f s.arg }
  | Ir.Ireduce_loc r -> Ir.Ireduce_loc { r with arg = f r.arg }
  | Ir.Itrapz (d, x, y) -> Ir.Itrapz (d, Option.map f x, f y)
  | Ir.Ishift (d, s, k) -> Ir.Ishift (d, f s, map_sexpr f k)
  | Ir.Ibcast (d, m, idx) -> Ir.Ibcast (d, f m, List.map (map_sexpr f) idx)
  | Ir.Ibcast_batch (items, m) ->
      Ir.Ibcast_batch
        (List.map (fun (d, idx) -> (d, List.map (map_sexpr f) idx)) items, f m)
  | Ir.Ireduce_fused items ->
      Ir.Ireduce_fused
        (List.map
           (fun (d, r) ->
             ( d,
               match r with
               | Ir.Fsum m -> Ir.Fsum (f m)
               | Ir.Fmean m -> Ir.Fmean (f m)
               | Ir.Fdot (a, b) -> Ir.Fdot (f a, f b)
               | Ir.Fnorm m -> Ir.Fnorm (f m) ))
           items)
  | Ir.Isetelem (m, idx, v) ->
      (* [m] is the in-place update target, not a forwardable read *)
      Ir.Isetelem (m, List.map (map_sexpr f) idx, map_sexpr f v)
  | Ir.Iload _ -> i
  | Ir.Iconstruct c -> Ir.Iconstruct { c with args = List.map (map_sexpr f) c.args }
  | Ir.Iliteral l -> Ir.Iliteral { l with elems = List.map (map_sexpr f) l.elems }
  | Ir.Isection s ->
      Ir.Isection { s with src = f s.src; sels = List.map (map_sel f) s.sels }
  | Ir.Isetsection s ->
      Ir.Isetsection
        { s with sels = List.map (map_sel f) s.sels; src = map_call_arg f s.src }
  | Ir.Iconcat c -> Ir.Iconcat { c with parts = List.map f c.parts }
  | Ir.Icalluser c ->
      Ir.Icalluser { c with args = List.map (map_call_arg f) c.args }
  | Ir.Impi_rank _ | Ir.Impi_size _ -> i
  | Ir.Impi_send (dest, tag, v) ->
      Ir.Impi_send (map_sexpr f dest, map_sexpr f tag, map_call_arg f v)
  | Ir.Impi_recv (d, src, tag, m) ->
      Ir.Impi_recv (d, map_sexpr f src, map_sexpr f tag, m)
  | Ir.Impi_bcast (d, root, v) ->
      Ir.Impi_bcast (d, map_sexpr f root, map_call_arg f v)
  | Ir.Impi_probe (d, src, tag) ->
      Ir.Impi_probe (d, map_sexpr f src, map_sexpr f tag)
  | Ir.Iprint (n, Ir.Pscalar s) -> Ir.Iprint (n, Ir.Pscalar (map_sexpr f s))
  | Ir.Iprint (n, Ir.Pmat v) -> Ir.Iprint (n, Ir.Pmat (f v))
  | Ir.Iprint (_, Ir.Pstr _) -> i
  | Ir.Iprintf args -> Ir.Iprintf (List.map (map_sexpr f) args)
  | Ir.Ierror _ -> i
  | Ir.Iif (branches, els) ->
      Ir.Iif (List.map (fun (c, b) -> (map_sexpr f c, b)) branches, els)
  | Ir.Iwhile (c, b) -> Ir.Iwhile (map_sexpr f c, b)
  | Ir.Ifor (v, a, st, b, body) ->
      Ir.Ifor (v, map_sexpr f a, Option.map (map_sexpr f) st, map_sexpr f b, body)
  | Ir.Ibreak | Ir.Icontinue | Ir.Ireturn -> i

(* --- liveness ----------------------------------------------------------- *)

(* [live_in b out] is the set of variables whose values on entry to [b]
   may still be read, given [out] live on exit.  Loops iterate to a
   fixpoint (sets only grow, so this terminates).  Early exits are
   over-approximated: [out] always flows through, which can only make
   more variables live -- safe for DCE. *)
let rec live_in (b : Ir.block) (out : VSet.t) : VSet.t =
  List.fold_right inst_live b out

and inst_live (i : Ir.inst) (out : VSet.t) : VSet.t =
  match i with
  | Ir.Iif (branches, els) ->
      let ins = List.map (fun (_, blk) -> live_in blk out) branches in
      let acc = List.fold_left VSet.union (live_in els out) ins in
      VSet.union acc (VSet.of_list (Ir.inst_uses i))
  | Ir.Iwhile (_, body) ->
      let rec fix x =
        let x' = VSet.union x (live_in body x) in
        if VSet.equal x' x then x else fix x'
      in
      fix (VSet.union out (VSet.of_list (Ir.inst_uses i)))
  | Ir.Ifor (v, _, _, _, body) ->
      (* [v] is reassigned at the top of each iteration, so body uses of
         it never reach back before the loop; it can still flow through
         via [out] (a zero-trip loop keeps the prior value). *)
      let rec fix x =
        let x' = VSet.union x (VSet.remove v (live_in body x)) in
        if VSet.equal x' x then x else fix x'
      in
      fix (VSet.union out (VSet.of_list (Ir.inst_uses i)))
  | _ ->
      VSet.union
        (VSet.diff out (VSet.of_list (Ir.inst_defs i)))
        (VSet.of_list (Ir.inst_uses i))

(* --- variable tables ---------------------------------------------------- *)

(* Drop temporaries no longer referenced by [b] from a variable table
   (named variables always stay: the driver may capture any of them). *)
let prune_vars (b : Ir.block) (vars : (Ir.var * Analysis.Ty.t) list) =
  let referenced = Hashtbl.create 64 in
  Ir.iter_insts
    (fun i ->
      List.iter (fun v -> Hashtbl.replace referenced v ()) (Ir.inst_uses i);
      List.iter (fun v -> Hashtbl.replace referenced v ()) (Ir.inst_defs i))
    b;
  List.filter (fun (v, _) -> (not (is_temp v)) || Hashtbl.mem referenced v) vars

let prune_temp_vars (p : Ir.prog) : Ir.prog =
  {
    p with
    Ir.p_vars = prune_vars p.Ir.p_body p.Ir.p_vars;
    p_funcs =
      List.map
        (fun (f : Ir.func) -> { f with Ir.f_vars = prune_vars f.f_body f.f_vars })
        p.Ir.p_funcs;
  }
