(** The distributed MATRIX structure of the run-time library (paper
    section 4).  Under the paper's (default) layout, matrices with more
    than one row are distributed by contiguous row blocks and
    single-row matrices by column blocks; {!default_layout} selects the
    block-cyclic or 2-D block layouts instead for a whole run.
    Matrices of identical size are distributed identically under every
    layout, so element-wise operations never communicate. *)

type axis = By_rows | By_cols

type layout =
  | Lblock  (** contiguous blocks along the distribution axis *)
  | Lcyclic of int  (** block-cyclic (ScaLAPACK) with the given block size *)
  | Lgrid of int * int  (** pr x pc process grid owning 2-D tiles *)

val default_layout : layout ref
(** The run-wide distribution policy; everything created while it is
    set follows it.  Set (and restored) by the driver around one
    parallel run — mutating it mid-run would desynchronize ranks.
    Under [Lgrid], vectors and single ranks fall back to [Lblock]. *)

type t = {
  rows : int;
  cols : int;
  axis : axis;
  layout : layout;
  low : int;
      (** first owned row (By_rows / grid) or column (By_cols); 0 under
          a cyclic layout, whose ownership is not contiguous *)
  count : int; (** number of owned rows/columns *)
  clow : int; (** grid only: first owned column (else 0) *)
  ccount : int; (** grid only: owned column count (else cols) *)
  data : float array;
      (** By_rows: count*cols row-major; By_cols: count; grid: the
          count x ccount tile row-major *)
  full : bool;
      (** a rank-local replica: this rank holds every element.  Produced
          by explicit message passing (MPI_Recv, MPI_Bcast); operations
          on replicas stay local, so they are safe inside rank-divergent
          control flow where a collective would deadlock. *)
}

val create : rows:int -> cols:int -> t
(** Zero-filled matrix with this rank's local part allocated. *)

val create_full : rows:int -> cols:int -> t
(** Zero-filled rank-local replica (no communication, ever). *)

val of_full : rows:int -> cols:int -> float array -> t
(** Rank-local replica of the given dense row-major data. *)

val init_full : rows:int -> cols:int -> (int -> float) -> t
(** Rank-local replica filled from the global row-major linear index. *)

val same_locality : t -> t -> bool
(** Do two same-shaped matrices share local geometry (element-wise
    loops over their data arrays line up)?  False when one is a replica
    and the other distributed. *)

val local_len : t -> int
val local_els : t -> int (** paper's ML_local_els *)

val numel : t -> int
val is_vector : t -> bool
val same_shape : t -> t -> bool

val global_of_local : t -> int -> int
(** Global row-major linear index of local element [i]. *)

val global_rc_of_local : t -> int -> int * int

val owner : t -> i:int -> j:int -> bool
(** Does this rank own global element (i, j)?  Paper's ML_owner. *)

val owner_rank : t -> i:int -> j:int -> int

val get_local : t -> i:int -> j:int -> float
(** Load a globally indexed element; the caller must own it. *)

val set_local : t -> i:int -> j:int -> float -> unit

val init : rows:int -> cols:int -> (int -> float) -> t
(** Fill from a function of the global row-major linear index. *)

val init_rc : rows:int -> cols:int -> (int -> int -> float) -> t

val counts_of : rows:int -> cols:int -> int array
(** Per-rank local element counts for this shape under the current
    policy. *)

val to_dense : t -> float array
(** Replicated dense copy (an allgather, plus a local permutation for
    non-block layouts). *)

val to_dense_root : root:int -> t -> float array
(** Dense copy on the root only (a gather). *)

val of_dense : rows:int -> cols:int -> float array -> t
(** Build from replicated dense data (no communication). *)

val copy : t -> t

val format_root : root:int -> ?name:string -> t -> string option
(** Render as MATLAB prints it; [Some text] on the root only. *)
