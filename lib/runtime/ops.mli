(** Matrix and vector operations that require interprocessor
    communication (paper section 4).  Floating-point work is charged
    through {!Mpisim.Sim.flops}; communication cost is charged by the
    messages each operation sends. *)

val matmul : Dmat.t -> Dmat.t -> Dmat.t
(** C = A * B.  Row-distributed A gathers B and computes local rows;
    a row-vector A uses partial sums finished with an allreduce.
    Raises [Failure] when the inner dimensions disagree. *)

val matmul_t : Dmat.t -> Dmat.t -> Dmat.t
(** C = A' * B without materializing the transpose: each rank forms the
    partial product of its owned rows of A and B, finished with one
    allreduce -- no redistribution, no operand gather.  Raises
    [Failure] when the row counts (the common dimension) disagree. *)

val dot : Dmat.t -> Dmat.t -> float
(** Inner product of two identically distributed vectors. *)

val transpose : Dmat.t -> Dmat.t
(** Pairwise block exchange, O(rows*cols/P) traffic per rank; vector
    transposes are local. *)

val transpose_gather : Dmat.t -> Dmat.t
(** Full-gather transpose; the ablation baseline for {!transpose}. *)

val diag : Dmat.t -> Dmat.t
(** Vector of n elements -> n x n diagonal matrix; general matrix ->
    min(rows, cols) x 1 main diagonal.  Gathers the source. *)

val outer : Dmat.t -> Dmat.t -> Dmat.t
(** u * v' for vectors u (m elements) and v (n elements) -> m x n. *)

type red = Rsum | Rprod | Rmin | Rmax | Rany | Rall

val reduce_all : red -> Dmat.t -> float
(** Reduce every element to one replicated scalar. *)

val reduce_cols : red -> Dmat.t -> Dmat.t
(** Column-wise reduction of a row-distributed matrix -> 1 x cols. *)

val mean_all : Dmat.t -> float
val mean_cols : Dmat.t -> Dmat.t
val norm2 : Dmat.t -> float

(** One slot of a fused allreduce: a sum-combining reduction whose
    local partial travels in a shared vector. *)
type fused =
  | Fsum of Dmat.t
  | Fmean of Dmat.t
  | Fdot of Dmat.t * Dmat.t
  | Fnorm of Dmat.t

val reduce_fused : fused list -> float array
(** Evaluate every slot with a single vector allreduce.  Slot values
    are bit-identical to the unfused operations. *)

type scan = Cumsum | Cumprod

val cumulative : scan -> Dmat.t -> Dmat.t
(** Cumulative sum/product of a vector: local scan + exclusive scan of
    per-rank totals (log P rounds). *)

val reduce_with_index : red -> Dmat.t -> float * int
(** min/max of a vector together with the 1-based index of the first
    extremum (MATLAB's [[m, i] = min(v)]). *)

val sort_vector : ?with_index:bool -> Dmat.t -> Dmat.t * Dmat.t option
(** Ascending stable sort of a vector; optionally also the 1-based
    source permutation ([[s, i] = sort(v)]). *)

val bcast_elem : Dmat.t -> i:int -> j:int -> float
(** Paper's ML_broadcast: the owner of (i, j) broadcasts its value.
    0-based indices; raises [Failure] when out of bounds. *)

val bcast_elems : Dmat.t -> (int * int) list -> float array
(** Batched ML_broadcast: owning ranks ship their packed slot values to
    rank 0 and one tree broadcast replicates the assembled batch -- at
    most (owners + P - 1) messages instead of a (P - 1)-message tree
    per element.  0-based coordinates; raises [Failure] when any is out
    of bounds. *)

val set_elem : Dmat.t -> i:int -> j:int -> float -> unit
(** Guarded store: only the owner writes (paper's pass-5 guard). *)

val circshift : Dmat.t -> int -> Dmat.t
(** Circular shift of a vector; O(n/P) traffic per rank. *)

val trapz : ?x:Dmat.t -> Dmat.t -> float
(** Trapezoid-rule integral; neighbour boundary exchange + allreduce. *)

val section : Dmat.t -> int array -> int array -> Dmat.t
(** result(i, j) = a(ri(i), rj(j)) with replicated 0-based indices. *)

val section_linear : Dmat.t -> int array -> rows:int -> cols:int -> Dmat.t

(** {2 Rank-N tensor operations}

    The tensor analogues over {!Ndarr} values distributed along the
    leading (frame) axis; communication patterns mirror the matrix
    forms (local fold + allreduce, owner broadcast, owner-guarded
    store, gather-then-select sections). *)

val nd_reduce_all : red -> Ndarr.t -> float
(** Reduce every element of a tensor to one scalar. *)

val nd_mean_all : Ndarr.t -> float

val nd_bcast_elem : Ndarr.t -> int array -> float
(** The owner of the element's leading slice broadcasts its value.
    Full 0-based multi-index; raises [Failure] when out of bounds. *)

val nd_set_elem : Ndarr.t -> int array -> float -> unit
(** Guarded store: only the owner of the leading slice writes. *)

val nd_section : Ndarr.t -> int array array -> Ndarr.t
(** Per-axis 0-based index vectors -> same-rank tensor of the selected
    extents (no squeezing). *)

val nd_set_section : Ndarr.t -> int array array -> (int -> float) -> unit
(** [nd_set_section t sels value] stores [value k] at the k-th selected
    position (row-major selection order); owners write. *)
