(** Block distribution arithmetic (the BLOCK_LOW/BLOCK_HIGH macros of
    data-parallel compilers): [n] items over [p] ranks in contiguous
    blocks whose sizes differ by at most one. *)

val low : rank:int -> nprocs:int -> n:int -> int
val high : rank:int -> nprocs:int -> n:int -> int
val size : rank:int -> nprocs:int -> n:int -> int

val owner : nprocs:int -> n:int -> int -> int
(** Rank owning global index [i]. *)

val counts : nprocs:int -> n:int -> int array

(** Block-cyclic distribution (the ScaLAPACK layout): [n] items in
    blocks of [b], block [j] owned by rank [j mod p]; a rank stores its
    blocks concatenated in global order. *)
module Cyclic : sig
  val owner : nprocs:int -> b:int -> int -> int

  val local_of_global : nprocs:int -> b:int -> int -> int
  (** Local offset of a global index on its owning rank. *)

  val global_of_local : rank:int -> nprocs:int -> b:int -> int -> int
  (** Inverse of {!local_of_global} on rank [rank]'s items. *)

  val count : rank:int -> nprocs:int -> b:int -> n:int -> int
  val counts : nprocs:int -> b:int -> n:int -> int array
end

(** 2-D block distribution: a [pr] x [pc] process grid over a
    rows x cols index space (rank = row coord * [pc] + column coord),
    each axis split with the 1-D block arithmetic; a rank stores its
    tile row-major. *)
module Grid : sig
  val coords : pc:int -> int -> int * int

  val row_block : pr:int -> pc:int -> rows:int -> int -> int * int
  (** (first global row, row count) of a rank's tile. *)

  val col_block : pr:int -> pc:int -> cols:int -> int -> int * int

  val owner : pr:int -> pc:int -> rows:int -> cols:int -> i:int -> j:int -> int
  val count : pr:int -> pc:int -> rows:int -> cols:int -> int -> int
  val counts : pr:int -> pc:int -> rows:int -> cols:int -> int array
end
