(* Re-export of the counter-based generator, which now lives in Mpisim
   so the machine simulator's deterministic fault schedules can draw
   from the same stream family without a dependency cycle. *)

include Mpisim.Rng
