(* The distributed rank-N TENSOR structure of the run-time library.
   Every rank holds the global header (dims) plus its local block of
   leading-axis slices:

   - a tensor with dims [| D0; ...; R; C |] is distributed
     block-contiguously over the LEADING axis (rank r owns slices
     [Dist.low r, Dist.high r), each slice being the full product of
     the remaining axes);
   - the trailing two axes form the matrix "cell"; frame broadcasting
     of a (replicated-scalar or same-cell matrix) operand never
     communicates because the cell is contiguous in row-major order.

   Tensors of identical dims are distributed identically, so
   element-wise operations never communicate (paper's assumption 2). *)

type t = {
  dims : int array; (* global extents, leading axis first; rank >= 3 *)
  low : int; (* first owned leading-axis slice *)
  count : int; (* number of owned slices *)
  data : float array; (* count * slice_numel, row-major *)
  full : bool;
      (* a rank-local replica: this rank holds every element (low = 0,
         count = dims.(0)).  Mirrors Dmat.full; operations on replicas
         stay local, so they are safe in rank-divergent control flow. *)
}

let rank t = Array.length t.dims
let numel t = Array.fold_left ( * ) 1 t.dims

(* Elements per leading-axis slice (product of all non-leading dims). *)
let slice_numel_of (dims : int array) =
  let s = ref 1 in
  for a = 1 to Array.length dims - 1 do
    s := !s * dims.(a)
  done;
  !s

let slice_numel t = slice_numel_of t.dims
let cell_rows t = t.dims.(rank t - 2)
let cell_cols t = t.dims.(rank t - 1)
let cell_numel t = cell_rows t * cell_cols t

let geometry (dims : int array) =
  let rank = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
  let n = dims.(0) in
  let low = Dist.low ~rank ~nprocs ~n in
  let count = Dist.size ~rank ~nprocs ~n in
  (low, count)

let local_len t = t.count * slice_numel t
let local_els = local_len

let create (dims : int array) =
  if Array.length dims < 3 then invalid_arg "Ndarr.create: rank < 3";
  let low, count = geometry dims in
  {
    dims = Array.copy dims;
    low;
    count;
    data = Array.make (count * slice_numel_of dims) 0.;
    full = false;
  }

(* A rank-local replica: every element lives on this rank. *)
let create_full (dims : int array) =
  if Array.length dims < 3 then invalid_arg "Ndarr.create_full: rank < 3";
  {
    dims = Array.copy dims;
    low = 0;
    count = dims.(0);
    data = Array.make (dims.(0) * slice_numel_of dims) 0.;
    full = true;
  }

let of_full (dims : int array) (dense : float array) =
  let t = create_full dims in
  if Array.length dense <> numel t then invalid_arg "Ndarr.of_full: size mismatch";
  { t with data = Array.copy dense }

let same_locality a b = a.full = b.full
let same_dims a b = a.dims = b.dims

(* Global row-major linear index of local element [i]. *)
let global_of_local t i = (t.low * slice_numel t) + i

(* Does this rank own leading-axis slice [d0]? *)
let owner t ~d0 = d0 >= t.low && d0 < t.low + t.count

(* Rank that owns leading-axis slice [d0]. *)
let owner_rank t ~d0 =
  let nprocs = Mpisim.Sim.size () in
  Dist.owner ~nprocs ~n:t.dims.(0) d0

(* Row-major linear offset (within the GLOBAL tensor) of a 0-based
   multi-index, leading axis first.  Bounds-checked. *)
let global_offset t (idx : int array) =
  let off = ref 0 in
  Array.iteri
    (fun axis i ->
      if i < 0 || i >= t.dims.(axis) then
        invalid_arg
          (Printf.sprintf "tensor index %d out of bounds (extent %d, axis %d)"
             (i + 1) t.dims.(axis) (axis + 1));
      off := (!off * t.dims.(axis)) + i)
    idx;
  !off

(* Local load/store of a globally multi-indexed element; the caller
   must own its leading slice (the compiler emits the owner guard). *)
let get_local t (idx : int array) =
  t.data.(global_offset t idx - (t.low * slice_numel t))

let set_local t (idx : int array) v =
  t.data.(global_offset t idx - (t.low * slice_numel t)) <- v

(* Fill from a function of the global linear index (used by the
   constructors so every rank draws the same seeded stream). *)
let init (dims : int array) f =
  let t = create dims in
  let base = t.low * slice_numel t in
  for i = 0 to local_len t - 1 do
    t.data.(i) <- f (base + i)
  done;
  t

let counts_of (dims : int array) =
  let nprocs = Mpisim.Sim.size () in
  let slice = slice_numel_of dims in
  Array.map (fun c -> c * slice) (Dist.counts ~nprocs ~n:dims.(0))

(* Replicated dense copy (an allgather over the leading axis). *)
let to_dense t : float array =
  if t.full then Array.copy t.data
  else
    let counts = counts_of t.dims in
    Mpisim.Coll.allgatherv ~counts t.data

(* Dense copy on the root only (cheaper; used for printing / output). *)
let to_dense_root ~root t : float array =
  if t.full then Array.copy t.data
  else
    let counts = counts_of t.dims in
    Mpisim.Coll.gatherv ~root ~counts t.data

(* Build from replicated dense data (no communication). *)
let of_dense (dims : int array) (dense : float array) =
  if Array.length dense <> Array.fold_left ( * ) 1 dims then
    invalid_arg "Ndarr.of_dense: size mismatch";
  init dims (fun g -> dense.(g))

let copy t = { t with data = Array.copy t.data }

(* Render slice-by-slice as the interpreter does; everything happens on
   the root, which returns Some text (other ranks return None). *)
let format_root ~root ?name t =
  let dense = to_dense_root ~root t in
  if Mpisim.Sim.rank () <> root then None
  else Some (Mlang.Fmtutil.format_tensor ?name ~dims:t.dims dense)
