(* Block distribution arithmetic (the BLOCK_LOW/BLOCK_HIGH macros of
   data-parallel compilers).  [n] items over [p] ranks: rank [r] owns
   the half-open range [low r, low (r+1)). *)

let low ~rank ~nprocs ~n = rank * n / nprocs
let high ~rank ~nprocs ~n = (rank + 1) * n / nprocs
let size ~rank ~nprocs ~n = high ~rank ~nprocs ~n - low ~rank ~nprocs ~n

(* Owner of global index [i]: the inverse of [low], valid because the
   block sizes differ by at most one. *)
let owner ~nprocs ~n i =
  if n = 0 then 0
  else begin
    let r = (((i + 1) * nprocs) - 1) / n in
    (* Guard against rounding at block boundaries. *)
    let r = ref (min r (nprocs - 1)) in
    while low ~rank:!r ~nprocs ~n > i do
      decr r
    done;
    while high ~rank:!r ~nprocs ~n <= i do
      incr r
    done;
    !r
  end

let counts ~nprocs ~n = Array.init nprocs (fun r -> size ~rank:r ~nprocs ~n)

(* Block-cyclic distribution: [n] items split into blocks of [b]
   consecutive items, block j owned by rank [j mod p] -- the ScaLAPACK
   layout.  Locally a rank stores its blocks concatenated in global
   order; only the globally-last block can be short. *)
module Cyclic = struct
  let check b = if b < 1 then invalid_arg "cyclic: block size must be >= 1"

  let owner ~nprocs ~b i =
    check b;
    i / b mod nprocs

  (* Local offset of global index [i] on its owning rank. *)
  let local_of_global ~nprocs ~b i =
    check b;
    (i / b / nprocs * b) + (i mod b)

  (* Global index of local offset [l] on rank [r]: inverse of
     [local_of_global] restricted to [r]'s items. *)
  let global_of_local ~rank ~nprocs ~b l =
    check b;
    (((l / b * nprocs) + rank) * b) + (l mod b)

  let count ~rank ~nprocs ~b ~n =
    check b;
    if n = 0 then 0
    else begin
      let nblocks = (n + b - 1) / b in
      if rank >= nblocks then 0
      else begin
        let owned = ((nblocks - 1 - rank) / nprocs) + 1 in
        let full = owned * b in
        (* the short tail block belongs to the owner of block nblocks-1 *)
        if (nblocks - 1) mod nprocs = rank then full - ((nblocks * b) - n)
        else full
      end
    end

  let counts ~nprocs ~b ~n =
    Array.init nprocs (fun r -> count ~rank:r ~nprocs ~b ~n)
end

(* 2-D block distribution: a [pr] x [pc] process grid over a
   rows x cols index space, rank = (row coordinate) * pc + (column
   coordinate), each axis split with the 1-D block arithmetic above.
   Locally a rank stores its rcount x ccount tile row-major. *)
module Grid = struct
  let check ~pr ~pc =
    if pr < 1 || pc < 1 then invalid_arg "grid: process grid must be >= 1x1"

  let coords ~pc rank = (rank / pc, rank mod pc)

  let row_block ~pr ~pc ~rows rank =
    check ~pr ~pc;
    let pi = rank / pc in
    (low ~rank:pi ~nprocs:pr ~n:rows, size ~rank:pi ~nprocs:pr ~n:rows)

  let col_block ~pr ~pc ~cols rank =
    check ~pr ~pc;
    let pj = rank mod pc in
    (low ~rank:pj ~nprocs:pc ~n:cols, size ~rank:pj ~nprocs:pc ~n:cols)

  let owner ~pr ~pc ~rows ~cols ~i ~j =
    check ~pr ~pc;
    (owner ~nprocs:pr ~n:rows i * pc) + owner ~nprocs:pc ~n:cols j

  let count ~pr ~pc ~rows ~cols rank =
    let _, rc = row_block ~pr ~pc ~rows rank in
    let _, cc = col_block ~pr ~pc ~cols rank in
    rc * cc

  let counts ~pr ~pc ~rows ~cols =
    Array.init (pr * pc) (fun r -> count ~pr ~pc ~rows ~cols r)
end
