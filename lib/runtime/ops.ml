(* Matrix and vector operations that require interprocessor
   communication on a distributed-memory machine (paper section 4).
   Element-wise arithmetic is *not* here: the compiler turns it into
   per-element loops over locally owned data.

   Every operation charges its floating-point work through [Sim.flops];
   communication cost is charged implicitly by the messages it sends. *)

open Mpisim
module Rel = Reliable

let tag_shift = 3001
let tag_trapz = 3002

(* Rank-local replicas (from MPI_Recv / MPI_Bcast) may hold different
   values on every rank, and their owners cannot join a collective from
   inside rank-divergent control flow -- so an operation must see
   either all-replica operands (and stay local) or all-distributed ones
   (and communicate as usual).  A mix is rejected rather than silently
   producing rank-inconsistent results. *)
let locality_error op =
  failwith
    (op
   ^ ": cannot mix a replicated (message-passing) matrix with a distributed \
      one; MPI_Bcast the distributed operand first")

(* Layouts whose local data is whole matrix rows in ascending global
   order -- the assumption baked into the row-sliced kernels below.
   True for the block and block-cyclic layouts; the 2-D grid layout
   stores tiles, so grid operands take a gather-based fallback. *)
let row_sliced (m : Dmat.t) =
  match m.Dmat.layout with
  | Dmat.Lgrid _ -> false
  | Dmat.Lblock | Dmat.Lcyclic _ -> true

(* --- matrix multiply family ------------------------------------------- *)

(* C = A * B for distributed operands.  The row-distributed common case
   gathers B and computes locally owned rows of C; a row-vector A
   (1 x k, column-distributed) instead uses partial sums over the rows
   of B each rank owns, finished with an allreduce. *)
let matmul (a : Dmat.t) (b : Dmat.t) : Dmat.t =
  if a.cols <> b.rows then
    failwith
      (Printf.sprintf "matmul: inner dimensions disagree (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols);
  let m = a.rows and k = a.cols and n = b.cols in
  if a.full || b.full then begin
    if not (a.full && b.full) then locality_error "matmul";
    let c = Dmat.create_full ~rows:m ~cols:n in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for kk = 0 to k - 1 do
          acc := !acc +. (a.data.((i * k) + kk) *. b.data.((kk * n) + j))
        done;
        c.data.((i * n) + j) <- !acc
      done
    done;
    Sim.flops (2. *. float_of_int (m * n * k));
    c
  end
  else if not (row_sliced a && row_sliced b) then begin
    (* Grid tiles do not slice into whole rows; replicate both operands
       and compute the full product everywhere (like the interpreter). *)
    let ad = Dmat.to_dense a and bd = Dmat.to_dense b in
    let cd = Array.make (m * n) 0. in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for kk = 0 to k - 1 do
          acc := !acc +. (ad.((i * k) + kk) *. bd.((kk * n) + j))
        done;
        cd.((i * n) + j) <- !acc
      done
    done;
    Sim.flops (2. *. float_of_int (m * n * k));
    Dmat.of_dense ~rows:m ~cols:n cd
  end
  else if m > 1 then begin
    let bf = Dmat.to_dense b in
    let c = Dmat.create ~rows:m ~cols:n in
    for li = 0 to c.count - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for kk = 0 to k - 1 do
          acc := !acc +. (a.data.((li * k) + kk) *. bf.((kk * n) + j))
        done;
        c.data.((li * n) + j) <- !acc
      done
    done;
    Sim.flops (2. *. float_of_int (c.count * n * k));
    c
  end
  else begin
    (* (1 x k) * (k x n): partial sums over B's owned rows. *)
    let af = Dmat.to_dense a in
    let partial = Array.make n 0. in
    (* hoist the layout dispatch out of the element loops: under the
       default block layout the global row/column is one add *)
    let grow =
      match b.Dmat.layout with
      | Dmat.Lblock -> fun lr -> b.Dmat.low + lr
      | Dmat.Lcyclic _ | Dmat.Lgrid _ ->
          fun lr -> fst (Dmat.global_rc_of_local b (lr * n))
    in
    let gcol =
      match b.Dmat.layout with
      | Dmat.Lblock -> fun lj -> b.Dmat.low + lj
      | Dmat.Lcyclic _ | Dmat.Lgrid _ -> fun lj -> Dmat.global_of_local b lj
    in
    (match b.axis with
    | Dmat.By_rows ->
        for lr = 0 to b.count - 1 do
          let i = grow lr in
          for j = 0 to n - 1 do
            partial.(j) <- partial.(j) +. (af.(i) *. b.data.((lr * n) + j))
          done
        done;
        Sim.flops (2. *. float_of_int (b.count * n))
    | Dmat.By_cols ->
        (* B is 1 x n, hence k = 1: scalar-style outer case. *)
        for lj = 0 to b.count - 1 do
          partial.(gcol lj) <- af.(0) *. b.data.(lj)
        done;
        Sim.flops (float_of_int b.count));
    let full = Coll.allreduce ~op:Coll.Sum partial in
    Dmat.of_dense ~rows:1 ~cols:n full
  end

(* Local contribution to a dot product (the pre-combine partial; also
   one slot of a fused allreduce). *)
let local_dot (a : Dmat.t) (b : Dmat.t) : float =
  if Dmat.numel a <> Dmat.numel b then failwith "dot: length mismatch";
  if not (Dmat.same_locality a b) then locality_error "dot";
  let la = Dmat.local_len a and lb = Dmat.local_len b in
  if la <> lb then failwith "dot: distribution mismatch";
  let acc = ref 0. in
  for i = 0 to la - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  Sim.flops (2. *. float_of_int la);
  !acc

(* Dot product of two vectors with identical distribution.  Replicated
   operands already hold everything: the local partial is the answer. *)
let dot (a : Dmat.t) (b : Dmat.t) : float =
  let partial = local_dot a b in
  if a.full then partial else Coll.allreduce_scalar ~op:Coll.Sum partial

(* Transpose.  Vector transposes are free: an n x 1 column and a 1 x n
   row share the same element-block distribution.  General transposes
   use pairwise block exchange (an all-to-all): every rank ships, to
   each peer, the intersection of its own rows with the peer's result
   rows (= source columns), so per-rank traffic is O(rows*cols/P)
   rather than a full gather. *)
let tag_transpose = 3003

let transpose (m : Dmat.t) : Dmat.t =
  if m.full then begin
    let r = Dmat.create_full ~rows:m.cols ~cols:m.rows in
    if m.rows = 1 || m.cols = 1 then
      Array.blit m.data 0 r.data 0 (Array.length m.data)
    else
      for i = 0 to m.rows - 1 do
        for j = 0 to m.cols - 1 do
          r.data.((j * m.rows) + i) <- m.data.((i * m.cols) + j)
        done
      done;
    r
  end
  else if m.rows = 1 || m.cols = 1 then begin
    (* An n x 1 column and 1 x n row share the same element layout
       (also under the cyclic layouts), so the transpose is a blit. *)
    let r = Dmat.create ~rows:m.cols ~cols:m.rows in
    Array.blit m.data 0 r.data 0 (Array.length m.data);
    r
  end
  else if m.layout <> Dmat.Lblock then begin
    (* The pairwise exchange below speaks contiguous row blocks;
       other layouts replicate and select the local part instead. *)
    let dense = Dmat.to_dense m in
    Dmat.init_rc ~rows:m.cols ~cols:m.rows (fun i j -> dense.((j * m.cols) + i))
  end
  else begin
    let nprocs = Sim.size () and me = Sim.rank () in
    let r = Dmat.create ~rows:m.cols ~cols:m.rows in
    (* Result rows of rank d are source columns [clo d, chi d). *)
    let clo d = Dist.low ~rank:d ~nprocs ~n:m.cols in
    let chi d = Dist.high ~rank:d ~nprocs ~n:m.cols in
    (* Pack my rows x peer's columns; row-major over (col, row) so the
       receiver can unpack directly into its row-major result block. *)
    let pack d =
      let c0 = clo d and c1 = chi d in
      let w = c1 - c0 in
      let buf = Array.make (w * m.count) 0. in
      for jc = 0 to w - 1 do
        for li = 0 to m.count - 1 do
          buf.((jc * m.count) + li) <- m.data.((li * m.cols) + c0 + jc)
        done
      done;
      buf
    in
    (* Unpack a block from [src]: source rows [rlo src, rhi src) of my
       result columns. *)
    let unpack src (buf : float array) =
      let r0 = Dist.low ~rank:src ~nprocs ~n:m.rows in
      let r1 = Dist.high ~rank:src ~nprocs ~n:m.rows in
      let h = r1 - r0 in
      for jc = 0 to r.count - 1 do
        for li = 0 to h - 1 do
          r.data.((jc * r.cols) + r0 + li) <- buf.((jc * h) + li)
        done
      done
    in
    for d = 0 to nprocs - 1 do
      if d <> me && chi d > clo d && m.count > 0 then
        Rel.send ~dst:d ~tag:tag_transpose (Sim.Floats (pack d))
    done;
    if m.count > 0 && chi me > clo me then unpack me (pack me);
    for src = 0 to nprocs - 1 do
      if
        src <> me
        && Dist.size ~rank:src ~nprocs ~n:m.rows > 0
        && r.count > 0
      then unpack src (Rel.recv_floats ~src ~tag:tag_transpose)
    done;
    r
  end

(* Gather-based transpose: replicate the whole operand, then select
   the local block of the result.  O(rows*cols) traffic per rank; the
   ablation baseline for the pairwise-exchange transpose above. *)
let transpose_gather (m : Dmat.t) : Dmat.t =
  if m.full || m.rows = 1 || m.cols = 1 then transpose m
  else begin
    let dense = Dmat.to_dense m in
    Dmat.init_rc ~rows:m.cols ~cols:m.rows (fun i j -> dense.((j * m.cols) + i))
  end

(* C = A' * B without materializing the transpose (ML_matmul_t).  Both
   operands share the same row-block distribution over the common
   dimension, so each rank forms the full m x k partial product of its
   own rows and a single allreduce finishes the sum -- no all-to-all
   redistribution for the transpose and no gather of either operand.
   A row-vector A (the common dimension is 1) is column-distributed
   instead; its transpose is free, so fall back to the plain kernel. *)
let matmul_t (a : Dmat.t) (b : Dmat.t) : Dmat.t =
  if a.rows <> b.rows then
    failwith
      (Printf.sprintf "matmul_t: inner dimensions disagree (%dx%d' * %dx%d)"
         a.rows a.cols b.rows b.cols);
  if a.full || b.full then begin
    if not (a.full && b.full) then locality_error "matmul_t";
    matmul (transpose a) b
  end
  else if a.rows = 1 then matmul (transpose a) b
  else if not (row_sliced a && row_sliced b) then begin
    (* Grid tiles: replicate and form the full product everywhere. *)
    let ad = Dmat.to_dense a and bd = Dmat.to_dense b in
    let m = a.cols and k = b.cols and r = a.rows in
    let cd = Array.make (m * k) 0. in
    for i = 0 to r - 1 do
      for ja = 0 to m - 1 do
        let av = ad.((i * m) + ja) in
        for jb = 0 to k - 1 do
          cd.((ja * k) + jb) <- cd.((ja * k) + jb) +. (av *. bd.((i * k) + jb))
        done
      done
    done;
    Sim.flops (2. *. float_of_int (r * m * k));
    Dmat.of_dense ~rows:m ~cols:k cd
  end
  else begin
    let m = a.cols and k = b.cols in
    let partial = Array.make (m * k) 0. in
    for lr = 0 to a.count - 1 do
      for ja = 0 to m - 1 do
        let av = a.data.((lr * m) + ja) in
        for jb = 0 to k - 1 do
          partial.((ja * k) + jb) <-
            partial.((ja * k) + jb) +. (av *. b.data.((lr * k) + jb))
        done
      done
    done;
    Sim.flops (2. *. float_of_int (a.count * m * k));
    let full = Coll.allreduce ~op:Coll.Sum partial in
    Dmat.of_dense ~rows:m ~cols:k full
  end

(* diag: a vector of n elements becomes the n x n matrix carrying it on
   the main diagonal; a general matrix yields its min(rows, cols)-element
   diagonal as a column vector.  Both directions redistribute elements
   across ranks, so we gather the (small) source and fill locally. *)
let diag (m : Dmat.t) : Dmat.t =
  let dense = Dmat.to_dense m in
  let build ~rows ~cols f =
    if m.full then Dmat.init_full ~rows ~cols f
    else Dmat.init ~rows ~cols f
  in
  if m.rows = 1 || m.cols = 1 then begin
    let n = Dmat.numel m in
    let r =
      build ~rows:n ~cols:n (fun g ->
          if g / n = g mod n then dense.(g / n) else 0.)
    in
    Sim.flops (float_of_int n);
    r
  end
  else begin
    let n = min m.rows m.cols in
    let r = build ~rows:n ~cols:1 (fun g -> dense.((g * m.cols) + g)) in
    Sim.flops (float_of_int n);
    r
  end

(* Outer product u * v' (u: m x 1, v: n x 1 or 1 x n) -> m x n. *)
let outer (u : Dmat.t) (v : Dmat.t) : Dmat.t =
  (* The result is row-distributed for m > 1 but column-distributed
     when m = 1, and then u's single element may live on another rank,
     so fill through global indices from replicated operands. *)
  let m = Dmat.numel u and n = Dmat.numel v in
  if u.full <> v.full then locality_error "outer product";
  let uf = Dmat.to_dense u and vf = Dmat.to_dense v in
  let c =
    if u.full then
      Dmat.init_full ~rows:m ~cols:n (fun g -> uf.(g / n) *. vf.(g mod n))
    else Dmat.init_rc ~rows:m ~cols:n (fun i j -> uf.(i) *. vf.(j))
  in
  Sim.flops (float_of_int (Dmat.local_len c));
  c

(* --- reductions -------------------------------------------------------- *)

type red = Rsum | Rprod | Rmin | Rmax | Rany | Rall

(* min/max use NaN as the fold identity and skip NaN operands: MATLAB
   ignores NaNs, yielding NaN only when every element is NaN.  A rank
   that owns no elements then contributes the identity, which the
   combine drops. *)
let red_init = function
  | Rsum -> 0.
  | Rprod -> 1.
  | Rmin | Rmax -> Float.nan
  | Rany -> 0.
  | Rall -> 1.

let red_combine op a b =
  match op with
  | Rsum -> a +. b
  | Rprod -> a *. b
  | Rmin | Rmax ->
      if Float.is_nan a then b
      else if Float.is_nan b then a
      else if op = Rmin then Float.min a b
      else Float.max a b
  | Rany -> if a <> 0. || b <> 0. then 1. else 0.
  | Rall -> if a <> 0. && b <> 0. then 1. else 0.

let coll_op = function
  | Rsum -> Coll.Sum
  | Rprod -> Coll.Prod
  | Rmin -> Coll.Min
  | Rmax -> Coll.Max
  | Rany -> Coll.Lor
  | Rall -> Coll.Land

(* Local fold over the owned elements (the pre-combine partial; also
   one slot of a fused allreduce). *)
let local_red op (m : Dmat.t) : float =
  let acc = ref (red_init op) in
  for i = 0 to Dmat.local_len m - 1 do
    acc := red_combine op !acc m.data.(i)
  done;
  Sim.flops (float_of_int (Dmat.local_len m));
  !acc

(* Reduce all elements of a vector (or whole matrix) to one scalar; a
   replicated operand folds locally, without the collective. *)
let reduce_all op (m : Dmat.t) : float =
  let partial = local_red op m in
  if m.full then partial else Coll.allreduce_scalar ~op:(coll_op op) partial

(* Column-wise reduction of a row-distributed matrix -> 1 x cols. *)
let reduce_cols op (m : Dmat.t) : Dmat.t =
  let n = m.cols in
  if not (row_sliced m) then begin
    (* Grid tiles: replicate and fold whole columns in global order. *)
    let dense = Dmat.to_dense m in
    let partial = Array.make n (red_init op) in
    for i = 0 to m.rows - 1 do
      for j = 0 to n - 1 do
        partial.(j) <- red_combine op partial.(j) dense.((i * n) + j)
      done
    done;
    Sim.flops (float_of_int (m.rows * n));
    Dmat.of_dense ~rows:1 ~cols:n partial
  end
  else begin
  let partial = Array.make n (red_init op) in
  for li = 0 to m.count - 1 do
    for j = 0 to n - 1 do
      partial.(j) <- red_combine op partial.(j) m.data.((li * n) + j)
    done
  done;
  Sim.flops (float_of_int (m.count * n));
  if m.full then Dmat.of_full ~rows:1 ~cols:n partial
  else
    let full = Coll.allreduce ~op:(coll_op op) partial in
    Dmat.of_dense ~rows:1 ~cols:n full
  end

let mean_all (m : Dmat.t) = reduce_all Rsum m /. float_of_int (Dmat.numel m)

let mean_cols (m : Dmat.t) =
  let s = reduce_cols Rsum m in
  let inv = 1. /. float_of_int m.rows in
  for i = 0 to Dmat.local_len s - 1 do
    s.data.(i) <- s.data.(i) *. inv
  done;
  Sim.flops (float_of_int (Dmat.local_len s));
  s

let norm2 (v : Dmat.t) = sqrt (dot v v)

(* One slot of a fused allreduce (the compiler's Ireduce_fused): only
   sum-combining reductions fuse, so the whole batch travels as a
   single Sum allreduce of one vector, followed by replicated local
   postprocessing (mean's division, norm's square root).  Slot values
   are bit-identical to the unfused operations: the local partials and
   the per-element combine tree are the same. *)
type fused =
  | Fsum of Dmat.t
  | Fmean of Dmat.t
  | Fdot of Dmat.t * Dmat.t
  | Fnorm of Dmat.t

let reduce_fused (slots : fused list) : float array =
  let mats =
    List.concat_map
      (function Fsum m | Fmean m | Fnorm m -> [ m ] | Fdot (a, b) -> [ a; b ])
      slots
  in
  let n_repl = List.length (List.filter (fun m -> m.Dmat.full) mats) in
  if n_repl > 0 && n_repl < List.length mats then
    locality_error "fused reduction";
  let local =
    Array.of_list
      (List.map
         (function
           | Fsum m | Fmean m -> local_red Rsum m
           | Fdot (a, b) -> local_dot a b
           | Fnorm v -> local_dot v v)
         slots)
  in
  let full = if n_repl > 0 then local else Coll.allreduce ~op:Coll.Sum local in
  List.iteri
    (fun i s ->
      match s with
      | Fmean m -> full.(i) <- full.(i) /. float_of_int (Dmat.numel m)
      | Fnorm _ -> full.(i) <- sqrt full.(i)
      | Fsum _ | Fdot _ -> ())
    slots;
  full

(* Cumulative sum/product along a vector: local scan plus an exclusive
   scan of the per-rank totals (recursive doubling, log P rounds). *)
type scan = Cumsum | Cumprod

let cumulative op (v : Dmat.t) : Dmat.t =
  if not (Dmat.is_vector v) then
    failwith "cumsum/cumprod of a whole matrix is not supported";
  if (not v.full) && v.layout <> Dmat.Lblock then begin
    (* Under a cyclic layout rank order is not global order, so the
       exscan-of-totals trick below does not apply: replicate, scan
       densely (every rank computes the same values), keep the owned
       part. *)
    let combine, identity =
      match op with Cumsum -> (( +. ), 0.) | Cumprod -> (( *. ), 1.)
    in
    let dense = Dmat.to_dense v in
    let acc = ref identity in
    for i = 0 to Array.length dense - 1 do
      acc := combine !acc dense.(i);
      dense.(i) <- !acc
    done;
    Sim.flops (float_of_int (Array.length dense));
    Dmat.of_dense ~rows:v.rows ~cols:v.cols dense
  end
  else begin
  let r =
    if v.full then Dmat.create_full ~rows:v.rows ~cols:v.cols
    else Dmat.create ~rows:v.rows ~cols:v.cols
  in
  let len = Dmat.local_len v in
  let combine, identity, cop =
    match op with
    | Cumsum -> (( +. ), 0., Coll.Sum)
    | Cumprod -> (( *. ), 1., Coll.Prod)
  in
  let acc = ref identity in
  for i = 0 to len - 1 do
    acc := combine !acc v.data.(i);
    r.data.(i) <- !acc
  done;
  Sim.flops (float_of_int len);
  if not v.full then begin
    let offset = Coll.exscan ~op:cop ~identity !acc in
    for i = 0 to len - 1 do
      r.data.(i) <- combine offset r.data.(i)
    done;
    Sim.flops (float_of_int len)
  end;
  r
  end

(* min/max with the (1-based, MATLAB column-order) index of the first
   extremum: local best, then every rank picks the winner from the
   allgathered per-rank candidates (ties resolve to the lowest index). *)
let reduce_with_index op (v : Dmat.t) : float * int =
  if not (Dmat.is_vector v) then
    failwith "[m, i] = min/max of a full matrix is not supported";
  let better a b =
    (* NaN is never better; anything beats a NaN (MATLAB) *)
    (not (Float.is_nan a))
    && (Float.is_nan b
       ||
       match op with Rmin -> a < b | Rmax -> a > b | _ -> assert false)
  in
  let len = Dmat.local_len v in
  (* -1 marks a rank that owns no elements *)
  let best = ref (red_init op) and best_g = ref (-1) in
  for i = 0 to len - 1 do
    if better v.data.(i) !best then begin
      best := v.data.(i);
      best_g := Dmat.global_of_local v i
    end
  done;
  Sim.flops (float_of_int len);
  if v.full then begin
    if !best_g < 0 then
      if Dmat.numel v > 0 then (Float.nan, 1) (* every element is NaN *)
      else failwith "min/max of an empty vector"
    else (!best, !best_g + 1)
  end
  else begin
  let nprocs = Sim.size () in
  let counts = Array.make nprocs 2 in
  let candidates =
    Coll.allgatherv ~counts [| !best; float_of_int !best_g |]
  in
  let final_v = ref (red_init op) and final_g = ref (-1) in
  for r = 0 to nprocs - 1 do
    let value = candidates.(2 * r) in
    let g = int_of_float candidates.((2 * r) + 1) in
    if
      g >= 0
      && (!final_g < 0 || better value !final_v
         || (value = !final_v && g < !final_g))
    then begin
      final_v := value;
      final_g := g
    end
  done;
  if !final_g < 0 then
    if Dmat.numel v > 0 then (Float.nan, 1) (* every element is NaN *)
    else failwith "min/max of an empty vector"
  else (!final_v, !final_g + 1)
  end

(* Ascending sort of a vector, optionally with the permutation
   (1-based indices of where each sorted value came from; ties keep the
   lower index, matching MATLAB's stable sort).  Implemented in the
   run-time library's "simple but correct" style: replicate, sort,
   keep the local block -- O(n log n) local work after an O(n)
   gather. *)
let sort_vector ?(with_index = false) (v : Dmat.t) : Dmat.t * Dmat.t option =
  if not (Dmat.is_vector v) then
    failwith "sort of a full matrix is not supported";
  let n = Dmat.numel v in
  let dense = Dmat.to_dense v in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      (* MATLAB sorts NaNs to the end (OCaml's compare puts them first) *)
      let c =
        match (Float.is_nan dense.(a), Float.is_nan dense.(b)) with
        | true, true -> 0
        | true, false -> 1
        | false, true -> -1
        | false, false -> compare dense.(a) dense.(b)
      in
      if c <> 0 then c else compare a b)
    order;
  Sim.flops (float_of_int (n * 8)); (* ~ n log n comparison cost *)
  let build f =
    if v.full then Dmat.init_full ~rows:v.rows ~cols:v.cols f
    else Dmat.init ~rows:v.rows ~cols:v.cols f
  in
  let sorted = build (fun g -> dense.(order.(g))) in
  let idx =
    if with_index then Some (build (fun g -> float_of_int (order.(g) + 1)))
    else None
  in
  (sorted, idx)

(* --- element broadcast and guarded element update ---------------------- *)

(* Paper's ML_broadcast: the owner of (i, j) broadcasts its value. *)
let bcast_elem (m : Dmat.t) ~i ~j : float =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    failwith (Printf.sprintf "index (%d,%d) out of bounds %dx%d" (i + 1) (j + 1) m.rows m.cols);
  if m.full then Dmat.get_local m ~i ~j (* every rank owns a replica *)
  else
    let root = Dmat.owner_rank m ~i ~j in
    let v = if Dmat.owner m ~i ~j then Dmat.get_local m ~i ~j else 0. in
    Coll.bcast_scalar ~root v

let tag_bcast_batch = 3004

(* Batched ML_broadcast: several elements of one matrix fetched at
   once.  The coordinates are replicated, so every rank computes the
   same owner plan: ranks owning requested elements ship their packed
   slot values to rank 0 and one tree broadcast replicates the
   assembled batch.  That is at most (owning ranks + P - 1) messages,
   against one (P - 1)-message broadcast tree per element. *)
let bcast_elems (m : Dmat.t) (coords : (int * int) list) : float array =
  let coords = Array.of_list coords in
  let n = Array.length coords in
  if m.full then
    Array.map
      (fun (i, j) ->
        if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
          failwith
            (Printf.sprintf "index (%d,%d) out of bounds %dx%d" (i + 1) (j + 1)
               m.rows m.cols);
        Dmat.get_local m ~i ~j)
      coords
  else begin
  let owners =
    Array.map
      (fun (i, j) ->
        if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
          failwith
            (Printf.sprintf "index (%d,%d) out of bounds %dx%d" (i + 1)
               (j + 1) m.rows m.cols);
        Dmat.owner_rank m ~i ~j)
      coords
  in
  let me = Sim.rank () and root = 0 in
  let buf = Array.make n 0. in
  for k = 0 to n - 1 do
    if owners.(k) = me then
      let i, j = coords.(k) in
      buf.(k) <- Dmat.get_local m ~i ~j
  done;
  if me = root then
    for src = 0 to Sim.size () - 1 do
      if src <> root && Array.exists (fun o -> o = src) owners then begin
        let chunk = Rel.recv_floats ~src ~tag:tag_bcast_batch in
        let next = ref 0 in
        for k = 0 to n - 1 do
          if owners.(k) = src then begin
            buf.(k) <- chunk.(!next);
            incr next
          end
        done
      end
    done
  else if Array.exists (fun o -> o = me) owners then begin
    let mine = ref [] in
    for k = n - 1 downto 0 do
      if owners.(k) = me then mine := buf.(k) :: !mine
    done;
    Rel.send ~dst:root ~tag:tag_bcast_batch
      (Sim.Floats (Array.of_list !mine))
  end;
  Coll.bcast ~root buf
  end

(* Guarded store: only the owner writes (paper's pass 5 conditional). *)
let set_elem (m : Dmat.t) ~i ~j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    failwith (Printf.sprintf "index (%d,%d) out of bounds %dx%d" (i + 1) (j + 1) m.rows m.cols);
  if Dmat.owner m ~i ~j then Dmat.set_local m ~i ~j v

(* --- circular shift ----------------------------------------------------- *)

(* result(g) = v((g - s) mod n): every rank ships each maximal run of
   its block to the rank owning the shifted positions, so the traffic
   is O(n/P) per rank rather than a full gather.  Message order between
   a pair of ranks is ascending in source index on both sides. *)
let circshift (v : Dmat.t) s : Dmat.t =
  let n = Dmat.numel v in
  if n = 0 then Dmat.copy v
  else begin
    let s = ((s mod n) + n) mod n in
    if s = 0 then Dmat.copy v
    else if v.full then
      Dmat.init_full ~rows:v.rows ~cols:v.cols (fun g ->
          v.data.(((g - s) mod n + n) mod n))
    else if v.layout <> Dmat.Lblock then begin
      (* The run-shipping plan below speaks contiguous blocks; cyclic
         layouts replicate and select instead. *)
      let dense = Dmat.to_dense v in
      Dmat.init ~rows:v.rows ~cols:v.cols (fun g ->
          dense.(((g - s) mod n + n) mod n))
    end
    else begin
      let nprocs = Sim.size () and me = Sim.rank () in
      let r = Dmat.create ~rows:v.rows ~cols:v.cols in
      (* Segments of [0, n) owned per rank (element blocks). *)
      let lo rk = Dist.low ~rank:rk ~nprocs ~n in
      let hi rk = Dist.high ~rank:rk ~nprocs ~n in
      (* Split a mod-n contiguous run [start, start+len) into <= 2
         non-wrapping segments. *)
      let segments start len =
        let start = start mod n in
        if start + len <= n then [ (start, start + len) ]
        else [ (start, n); (0, start + len - n) ]
      in
      (* Send: my elements [lo me, hi me) land at dest = src + s. *)
      let my_lo = lo me and my_hi = hi me in
      if my_hi > my_lo then
        List.iter
          (fun (d0, d1) ->
            (* dest segment [d0, d1) corresponds to sources d0-s.. *)
            for dst = 0 to nprocs - 1 do
              let a = max d0 (lo dst) and b = min d1 (hi dst) in
              if a < b then begin
                let src0 = ((a - s) mod n + n) mod n in
                let chunk = Array.sub v.data (src0 - my_lo) (b - a) in
                if dst = me then
                  Array.blit chunk 0 r.data (a - my_lo) (b - a)
                else Rel.send ~dst ~tag:tag_shift (Sim.Floats chunk)
              end
            done)
          (segments (my_lo + s) (my_hi - my_lo));
      (* Receive: my result block needs sources [my_lo - s, ...). *)
      if my_hi > my_lo then
        List.iter
          (fun (s0, s1) ->
            for src = 0 to nprocs - 1 do
              let a = max s0 (lo src) and b = min s1 (hi src) in
              if a < b && src <> me then begin
                let chunk = Rel.recv_floats ~src ~tag:tag_shift in
                assert (Array.length chunk = b - a);
                let dst0 = (a + s) mod n in
                Array.blit chunk 0 r.data (dst0 - my_lo) (b - a)
              end
            done)
          (segments (((my_lo - s) mod n + n) mod n) (my_hi - my_lo));
      r
    end
  end

(* --- trapezoidal integration ------------------------------------------- *)

(* Integral of samples y (optionally against abscissae x) by the
   trapezoid rule.  Each rank handles the intervals starting in its
   block; the single boundary sample is fetched from the right-hand
   neighbour. *)
let trapz ?x (y : Dmat.t) : float =
  let n = Dmat.numel y in
  if n < 2 then 0.
  else if y.full then begin
    (match x with
    | Some x ->
        if Dmat.numel x <> n then failwith "trapz: x and y sizes disagree";
        if not x.full then locality_error "trapz"
    | None -> ());
    let sx i = match x with Some x -> x.data.(i) | None -> float_of_int i in
    let acc = ref 0. in
    for i = 0 to n - 2 do
      let dx = sx (i + 1) -. sx i in
      acc := !acc +. (dx *. (y.data.(i) +. y.data.(i + 1)) *. 0.5)
    done;
    Sim.flops (5. *. float_of_int (n - 1));
    !acc
  end
  else if y.layout <> Dmat.Lblock then begin
    (* Neighbour-boundary shipping below assumes contiguous blocks;
       cyclic layouts replicate and integrate densely (every rank
       computes the same total, so no combining collective needed). *)
    (match x with
    | Some x ->
        if Dmat.numel x <> n then failwith "trapz: x and y sizes disagree"
    | None -> ());
    let yd = Dmat.to_dense y in
    let xd = Option.map Dmat.to_dense x in
    let sx i = match xd with Some x -> x.(i) | None -> float_of_int i in
    let acc = ref 0. in
    for i = 0 to n - 2 do
      acc := !acc +. ((sx (i + 1) -. sx i) *. (yd.(i) +. yd.(i + 1)) *. 0.5)
    done;
    Sim.flops (5. *. float_of_int (n - 1));
    !acc
  end
  else begin
    let count = y.count and low = y.low in
    let high = low + count in
    (match x with
    | Some x ->
        if Dmat.numel x <> n then failwith "trapz: x and y sizes disagree"
    | None -> ());
    (* Ship my first sample(s) to the owner of index low-1. *)
    let nprocs = Sim.size () in
    if count > 0 && low > 0 then begin
      let dst = Dist.owner ~nprocs ~n (low - 1) in
      let payload =
        match x with
        | Some x -> [| y.data.(0); x.data.(0) |]
        | None -> [| y.data.(0) |]
      in
      Rel.send ~dst ~tag:tag_trapz (Sim.Floats payload)
    end;
    let boundary =
      if count > 0 && high < n then
        let src = Dist.owner ~nprocs ~n high in
        Some (Rel.recv_floats ~src ~tag:tag_trapz)
      else None
    in
    let acc = ref 0. in
    let sample_y i = if i < high then y.data.(i - low) else (Option.get boundary).(0) in
    let sample_x i =
      match x with
      | Some x -> if i < high then x.data.(i - low) else (Option.get boundary).(1)
      | None -> float_of_int i
    in
    for i = low to min (high - 1) (n - 2) do
      let dx = sample_x (i + 1) -. sample_x i in
      acc := !acc +. (dx *. (sample_y i +. sample_y (i + 1)) *. 0.5)
    done;
    Sim.flops (5. *. float_of_int (max 0 (min (high - 1) (n - 2) - low + 1)));
    Coll.allreduce_scalar ~op:Coll.Sum !acc
  end

(* --- general sections (submatrix extraction) --------------------------- *)

(* result(i, j) = a(ri.(i), rj.(j)) with replicated index vectors; the
   operand is gathered, the result block selected locally.  The paper's
   run-time library takes the same "simple but correct" approach for
   arbitrary sections. *)
let section (a : Dmat.t) (ri : int array) (rj : int array) : Dmat.t =
  let dense = Dmat.to_dense a in
  let rows = Array.length ri and cols = Array.length rj in
  let check_bounds v n =
    Array.iter
      (fun i ->
        if i < 0 || i >= n then
          failwith (Printf.sprintf "section: index %d out of bounds %d" (i + 1) n))
      v
  in
  check_bounds ri a.rows;
  check_bounds rj a.cols;
  if a.full then
    Dmat.init_full ~rows ~cols (fun g ->
        dense.((ri.(g / cols) * a.cols) + rj.(g mod cols)))
  else Dmat.init_rc ~rows ~cols (fun i j -> dense.((ri.(i) * a.cols) + rj.(j)))

(* Linear-index section over a vector: result(k) = v(idx.(k)). *)
let section_linear (v : Dmat.t) (idx : int array) ~rows ~cols : Dmat.t =
  let dense = Dmat.to_dense v in
  let n = Dmat.numel v in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then
        failwith (Printf.sprintf "index %d out of bounds %d" (i + 1) n))
    idx;
  if v.full then Dmat.init_full ~rows ~cols (fun g -> dense.(idx.(g)))
  else Dmat.init ~rows ~cols (fun g -> dense.(idx.(g)))

(* --- rank-N tensor operations ------------------------------------------ *)

(* The tensor analogues of the operations above, over [Ndarr] values
   distributed block-contiguously along the leading (frame) axis.  The
   communication patterns mirror the matrix forms exactly: a full
   reduction is a local fold plus one scalar allreduce, an element read
   is an owner broadcast, an element store is an owner-guarded write,
   and general sections gather the operand. *)

let nd_reduce_all op (t : Ndarr.t) : float =
  let acc = ref (red_init op) in
  for i = 0 to Ndarr.local_len t - 1 do
    acc := red_combine op !acc t.Ndarr.data.(i)
  done;
  Sim.flops (float_of_int (Ndarr.local_len t));
  if t.Ndarr.full then !acc
  else Coll.allreduce_scalar ~op:(coll_op op) !acc

let nd_mean_all (t : Ndarr.t) =
  nd_reduce_all Rsum t /. float_of_int (Ndarr.numel t)

let nd_check_bounds (t : Ndarr.t) (idx : int array) =
  Array.iteri
    (fun axis i ->
      if i < 0 || i >= t.Ndarr.dims.(axis) then
        failwith
          (Printf.sprintf "tensor index %d out of bounds (extent %d, axis %d)"
             (i + 1) t.Ndarr.dims.(axis) (axis + 1)))
    idx

(* The owner of the element's leading slice broadcasts its value. *)
let nd_bcast_elem (t : Ndarr.t) (idx : int array) : float =
  nd_check_bounds t idx;
  if t.Ndarr.full then Ndarr.get_local t idx
  else
    let root = Ndarr.owner_rank t ~d0:idx.(0) in
    let v = if Ndarr.owner t ~d0:idx.(0) then Ndarr.get_local t idx else 0. in
    Coll.bcast_scalar ~root v

(* Guarded store: only the owner of the leading slice writes. *)
let nd_set_elem (t : Ndarr.t) (idx : int array) v =
  nd_check_bounds t idx;
  if Ndarr.owner t ~d0:idx.(0) then Ndarr.set_local t idx v

(* result(k0, ..., kn) = t(sels.(0).(k0), ..., sels.(n).(kn)) with
   replicated 0-based index vectors; the operand is gathered and the
   result block selected locally, like the matrix [section]. *)
let nd_section (t : Ndarr.t) (sels : int array array) : Ndarr.t =
  Array.iteri
    (fun axis s ->
      Array.iter
        (fun i ->
          if i < 0 || i >= t.Ndarr.dims.(axis) then
            failwith
              (Printf.sprintf
                 "section: index %d out of bounds (extent %d, axis %d)"
                 (i + 1) t.Ndarr.dims.(axis) (axis + 1)))
        s)
    sels;
  let dense = Ndarr.to_dense t in
  let rdims = Array.map Array.length sels in
  let n = Array.length rdims in
  let src_offset g =
    (* decode the result's row-major index [g], map each axis through
       its selector, re-encode against the source extents *)
    let idx = Array.make n 0 in
    let rem = ref g in
    for axis = n - 1 downto 0 do
      idx.(axis) <- sels.(axis).(!rem mod rdims.(axis));
      rem := !rem / rdims.(axis)
    done;
    let off = ref 0 in
    for axis = 0 to n - 1 do
      off := (!off * t.Ndarr.dims.(axis)) + idx.(axis)
    done;
    !off
  in
  let r = if t.Ndarr.full then Ndarr.create_full rdims else Ndarr.create rdims in
  for li = 0 to Ndarr.local_len r - 1 do
    r.Ndarr.data.(li) <- dense.(src_offset (Ndarr.global_of_local r li))
  done;
  r

(* t(sels) = value: every rank walks the selected positions in row-major
   selection order and the owner of each target's leading slice stores
   the value (owner computes, like the matrix section assignment). *)
let nd_set_section (t : Ndarr.t) (sels : int array array) (value : int -> float)
    =
  Array.iteri
    (fun axis s ->
      Array.iter
        (fun i ->
          if i < 0 || i >= t.Ndarr.dims.(axis) then
            failwith
              (Printf.sprintf
                 "section assignment: index %d out of bounds (extent %d, axis \
                  %d)"
                 (i + 1) t.Ndarr.dims.(axis) (axis + 1)))
        s)
    sels;
  let rdims = Array.map Array.length sels in
  let n = Array.length rdims in
  let total = Array.fold_left ( * ) 1 rdims in
  let idx = Array.make n 0 in
  for k = 0 to total - 1 do
    let rem = ref k in
    for axis = n - 1 downto 0 do
      idx.(axis) <- sels.(axis).(!rem mod rdims.(axis));
      rem := !rem / rdims.(axis)
    done;
    if Ndarr.owner t ~d0:idx.(0) then Ndarr.set_local t idx (value k)
  done;
  Sim.flops (float_of_int total)
