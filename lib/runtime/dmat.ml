(* The distributed MATRIX structure of the run-time library (paper
   section 4).  Every rank holds the global header (rows, columns,
   distribution) plus its local block:

   - a matrix with more than one row is distributed row-contiguously
     (rank r owns rows [Dist.low r, Dist.high r), all columns);
   - a single-row matrix (row vector) is distributed by column blocks;
   - scalars are not MATRIX values; they are replicated by the VM.

   Matrices of identical size are distributed identically, so
   element-wise operations never communicate (paper's assumption 2). *)

type axis = By_rows | By_cols

type t = {
  rows : int;
  cols : int;
  axis : axis;
  low : int; (* first owned row (By_rows) or column (By_cols) *)
  count : int; (* number of owned rows/columns *)
  data : float array; (* By_rows: count*cols row-major; By_cols: count *)
  full : bool;
      (* a rank-local replica: this rank holds every element (low = 0,
         count covers the whole axis).  Explicit message passing
         (MPI_Recv, MPI_Bcast) produces these; operations on them stay
         local, so they are safe inside rank-divergent control flow
         where a collective would deadlock. *)
}

let axis_of_dims ~rows ~cols:_ = if rows = 1 then By_cols else By_rows

(* Local block geometry for an [rows] x [cols] matrix on this rank. *)
let geometry ~rows ~cols =
  let rank = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
  let axis = axis_of_dims ~rows ~cols in
  let n = match axis with By_rows -> rows | By_cols -> cols in
  let low = Dist.low ~rank ~nprocs ~n in
  let count = Dist.size ~rank ~nprocs ~n in
  (axis, low, count)

let local_len m =
  match m.axis with By_rows -> m.count * m.cols | By_cols -> m.count

(* Paper's ML_local_els. *)
let local_els = local_len

let create ~rows ~cols =
  let axis, low, count = geometry ~rows ~cols in
  let len = match axis with By_rows -> count * cols | By_cols -> count in
  { rows; cols; axis; low; count; data = Array.make len 0.; full = false }

(* A rank-local replica: every element lives on this rank, regardless of
   the machine size.  The geometry covers the whole distribution axis so
   every local-index helper below works unchanged. *)
let create_full ~rows ~cols =
  let axis = axis_of_dims ~rows ~cols in
  let count = match axis with By_rows -> rows | By_cols -> cols in
  { rows; cols; axis; low = 0; count; data = Array.make (rows * cols) 0.; full = true }

let of_full ~rows ~cols (dense : float array) =
  if Array.length dense <> rows * cols then invalid_arg "of_full: size mismatch";
  { (create_full ~rows ~cols) with data = Array.copy dense }

let init_full ~rows ~cols f =
  let m = create_full ~rows ~cols in
  for g = 0 to (rows * cols) - 1 do
    m.data.(g) <- f g
  done;
  m

(* Do two same-shaped matrices share local geometry (so element-wise
   loops over their data arrays line up)?  A replica and a distributed
   block of the same shape do not. *)
let same_locality a b = a.full = b.full

let numel m = m.rows * m.cols
let is_vector m = m.rows = 1 || m.cols = 1
let same_shape a b = a.rows = b.rows && a.cols = b.cols

(* Global row-major linear index of local element [i]. *)
let global_of_local m i =
  match m.axis with By_rows -> (m.low * m.cols) + i | By_cols -> m.low + i

(* Global (row, col) of local element [i]. *)
let global_rc_of_local m i =
  let g = global_of_local m i in
  (g / m.cols, g mod m.cols)

(* Does this rank own global element (i, j)?  Paper's ML_owner. *)
let owner m ~i ~j =
  match m.axis with
  | By_rows -> i >= m.low && i < m.low + m.count
  | By_cols -> j >= m.low && j < m.low + m.count

(* Rank that owns global element (i, j). *)
let owner_rank m ~i ~j =
  let nprocs = Mpisim.Sim.size () in
  match m.axis with
  | By_rows -> Dist.owner ~nprocs ~n:m.rows i
  | By_cols -> Dist.owner ~nprocs ~n:m.cols j

(* Local load/store of a globally indexed element; the caller must own
   it (the compiler emits the owner guard). *)
let get_local m ~i ~j =
  match m.axis with
  | By_rows -> m.data.(((i - m.low) * m.cols) + j)
  | By_cols -> m.data.(j - m.low)

let set_local m ~i ~j v =
  match m.axis with
  | By_rows -> m.data.(((i - m.low) * m.cols) + j) <- v
  | By_cols -> m.data.(j - m.low) <- v

(* Fill from a function of the global linear index. *)
let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to local_len m - 1 do
    m.data.(i) <- f (global_of_local m i)
  done;
  m

let init_rc ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to local_len m - 1 do
    let r, c = global_rc_of_local m i in
    m.data.(i) <- f r c
  done;
  m

let counts_of ~rows ~cols =
  let nprocs = Mpisim.Sim.size () in
  match axis_of_dims ~rows ~cols with
  | By_rows ->
      Array.map (fun c -> c * cols) (Dist.counts ~nprocs ~n:rows)
  | By_cols -> Dist.counts ~nprocs ~n:cols

(* Replicated dense copy (an allgather); used by operations that need a
   whole operand (matmul, transpose) and by verification.  A rank-local
   replica is already dense: no communication, so the copy is safe in
   rank-divergent control flow. *)
let to_dense m : float array =
  if m.full then Array.copy m.data
  else
    let counts = counts_of ~rows:m.rows ~cols:m.cols in
    Mpisim.Coll.allgatherv ~counts m.data

(* Dense copy on the root only (cheaper; used for printing / output). *)
let to_dense_root ~root m : float array =
  if m.full then Array.copy m.data
  else
    let counts = counts_of ~rows:m.rows ~cols:m.cols in
    Mpisim.Coll.gatherv ~root ~counts m.data

(* Build from replicated dense data (no communication: every rank takes
   its block of data it already holds). *)
let of_dense ~rows ~cols (dense : float array) =
  if Array.length dense <> rows * cols then
    invalid_arg "of_dense: size mismatch";
  init ~rows ~cols (fun g -> dense.(g))

let copy m = { m with data = Array.copy m.data }

(* Render as MATLAB prints it; everything happens on the root, which
   returns Some text (other ranks return None). *)
let format_root ~root ?name m =
  let dense = to_dense_root ~root m in
  if Mpisim.Sim.rank () <> root then None
  else Some (Mlang.Fmtutil.format_matrix ?name ~rows:m.rows ~cols:m.cols dense)
