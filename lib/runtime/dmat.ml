(* The distributed MATRIX structure of the run-time library (paper
   section 4).  Every rank holds the global header (rows, columns,
   distribution) plus its local part.

   Under the paper's layout (the default):

   - a matrix with more than one row is distributed row-contiguously
     (rank r owns rows [Dist.low r, Dist.high r), all columns);
   - a single-row matrix (row vector) is distributed by column blocks;
   - scalars are not MATRIX values; they are replicated by the VM.

   Two further layouts exist for the scaling studies and are selected
   per run through [default_layout]: block-cyclic (ScaLAPACK-style,
   blocks of [b] dealt round-robin along the distribution axis) and 2-D
   block (a pr x pc process grid owning row-major tiles; vectors fall
   back to the 1-D block layout).  Matrices of identical size are
   distributed identically, so element-wise operations never
   communicate (paper's assumption 2) under every layout. *)

type axis = By_rows | By_cols

type layout =
  | Lblock (* contiguous blocks along the distribution axis *)
  | Lcyclic of int (* block-cyclic with the given block size *)
  | Lgrid of int * int (* pr x pc process grid, 2-D tiles *)

(* The run-wide distribution policy.  Set (and restored) by the driver
   around one parallel run; everything created inside the run follows
   it.  Mutating it mid-run would desynchronize ranks -- only the
   driver touches it. *)
let default_layout = ref Lblock

type t = {
  rows : int;
  cols : int;
  axis : axis;
  layout : layout;
  low : int; (* first owned row (By_rows/grid) or column (By_cols);
                0 under a cyclic layout (ownership is not contiguous) *)
  count : int; (* number of owned rows/columns *)
  clow : int; (* grid only: first owned column (else 0) *)
  ccount : int; (* grid only: owned columns (else cols) *)
  data : float array;
      (* By_rows: count*cols row-major; By_cols: count; grid: the
         count x ccount tile row-major *)
  full : bool;
      (* a rank-local replica: this rank holds every element (low = 0,
         count covers the whole axis, layout Lblock).  Explicit message
         passing (MPI_Recv, MPI_Bcast) produces these; operations on
         them stay local, so they are safe inside rank-divergent
         control flow where a collective would deadlock. *)
}

let axis_of_dims ~rows ~cols:_ = if rows = 1 then By_cols else By_rows

(* The layout a fresh rows x cols matrix takes under the current
   policy.  One rank, or a vector under a grid policy, degenerates to
   the plain block layout (same data, simpler arithmetic). *)
let effective_layout ~rows ~cols ~nprocs =
  if nprocs = 1 then Lblock
  else
    match !default_layout with
    | Lblock -> Lblock
    | Lcyclic b ->
        if b < 1 then
          invalid_arg "cyclic distribution: block size must be at least 1";
        Lcyclic b
    | Lgrid (pr, pc) ->
        if pr < 1 || pc < 1 then
          invalid_arg "grid distribution: the process grid must be at least 1x1";
        if pr * pc <> nprocs then
          invalid_arg
            (Printf.sprintf
               "grid distribution %dx%d needs %d ranks, but the run has %d"
               pr pc (pr * pc) nprocs);
        if rows <= 1 || cols <= 1 then Lblock else Lgrid (pr, pc)

(* Local geometry of an [rows] x [cols] matrix on this rank:
   (axis, layout, low, count, clow, ccount, local length). *)
let geometry ~rows ~cols =
  let rank = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
  let axis = axis_of_dims ~rows ~cols in
  let layout = effective_layout ~rows ~cols ~nprocs in
  match layout with
  | Lblock ->
      let n = match axis with By_rows -> rows | By_cols -> cols in
      let low = Dist.low ~rank ~nprocs ~n in
      let count = Dist.size ~rank ~nprocs ~n in
      let len = match axis with By_rows -> count * cols | By_cols -> count in
      (axis, layout, low, count, 0, cols, len)
  | Lcyclic b ->
      let n = match axis with By_rows -> rows | By_cols -> cols in
      let count = Dist.Cyclic.count ~rank ~nprocs ~b ~n in
      let len = match axis with By_rows -> count * cols | By_cols -> count in
      (axis, layout, 0, count, 0, cols, len)
  | Lgrid (pr, pc) ->
      let rlow, rcount = Dist.Grid.row_block ~pr ~pc ~rows rank in
      let clow, ccount = Dist.Grid.col_block ~pr ~pc ~cols rank in
      (axis, layout, rlow, rcount, clow, ccount, rcount * ccount)

let local_len m =
  match m.layout with
  | Lgrid _ -> m.count * m.ccount
  | Lblock | Lcyclic _ -> (
      match m.axis with By_rows -> m.count * m.cols | By_cols -> m.count)

(* Paper's ML_local_els. *)
let local_els = local_len

let create ~rows ~cols =
  let axis, layout, low, count, clow, ccount, len = geometry ~rows ~cols in
  {
    rows;
    cols;
    axis;
    layout;
    low;
    count;
    clow;
    ccount;
    data = Array.make len 0.;
    full = false;
  }

(* A rank-local replica: every element lives on this rank, regardless of
   the machine size.  Always laid out as one full block so every
   local-index helper below works unchanged, whatever the run policy. *)
let create_full ~rows ~cols =
  let axis = axis_of_dims ~rows ~cols in
  let count = match axis with By_rows -> rows | By_cols -> cols in
  {
    rows;
    cols;
    axis;
    layout = Lblock;
    low = 0;
    count;
    clow = 0;
    ccount = cols;
    data = Array.make (rows * cols) 0.;
    full = true;
  }

let of_full ~rows ~cols (dense : float array) =
  if Array.length dense <> rows * cols then invalid_arg "of_full: size mismatch";
  { (create_full ~rows ~cols) with data = Array.copy dense }

let init_full ~rows ~cols f =
  let m = create_full ~rows ~cols in
  for g = 0 to (rows * cols) - 1 do
    m.data.(g) <- f g
  done;
  m

(* Do two same-shaped matrices share local geometry (so element-wise
   loops over their data arrays line up)?  A replica and a distributed
   block of the same shape do not.  Two distributed matrices of one
   shape always do: they were created under the same run policy. *)
let same_locality a b = a.full = b.full

let numel m = m.rows * m.cols
let is_vector m = m.rows = 1 || m.cols = 1
let same_shape a b = a.rows = b.rows && a.cols = b.cols

(* Global row-major linear index of local element [i]. *)
let global_of_local m i =
  match m.layout with
  | Lblock -> (
      match m.axis with By_rows -> (m.low * m.cols) + i | By_cols -> m.low + i)
  | Lcyclic b -> (
      let rank = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
      match m.axis with
      | By_rows ->
          let gr =
            Dist.Cyclic.global_of_local ~rank ~nprocs ~b (i / m.cols)
          in
          (gr * m.cols) + (i mod m.cols)
      | By_cols -> Dist.Cyclic.global_of_local ~rank ~nprocs ~b i)
  | Lgrid _ -> ((m.low + (i / m.ccount)) * m.cols) + m.clow + (i mod m.ccount)

(* Global (row, col) of local element [i]. *)
let global_rc_of_local m i =
  let g = global_of_local m i in
  (g / m.cols, g mod m.cols)

(* Does this rank own global element (i, j)?  Paper's ML_owner. *)
let owner m ~i ~j =
  match m.layout with
  | Lblock -> (
      match m.axis with
      | By_rows -> i >= m.low && i < m.low + m.count
      | By_cols -> j >= m.low && j < m.low + m.count)
  | Lcyclic b -> (
      let rank = Mpisim.Sim.rank () and nprocs = Mpisim.Sim.size () in
      match m.axis with
      | By_rows -> Dist.Cyclic.owner ~nprocs ~b i = rank
      | By_cols -> Dist.Cyclic.owner ~nprocs ~b j = rank)
  | Lgrid _ ->
      i >= m.low && i < m.low + m.count && j >= m.clow && j < m.clow + m.ccount

(* Rank that owns global element (i, j). *)
let owner_rank m ~i ~j =
  let nprocs = Mpisim.Sim.size () in
  match m.layout with
  | Lblock -> (
      match m.axis with
      | By_rows -> Dist.owner ~nprocs ~n:m.rows i
      | By_cols -> Dist.owner ~nprocs ~n:m.cols j)
  | Lcyclic b -> (
      match m.axis with
      | By_rows -> Dist.Cyclic.owner ~nprocs ~b i
      | By_cols -> Dist.Cyclic.owner ~nprocs ~b j)
  | Lgrid (pr, pc) -> Dist.Grid.owner ~pr ~pc ~rows:m.rows ~cols:m.cols ~i ~j

(* Index into [data] of global element (i, j); the caller must own it
   (the compiler emits the owner guard). *)
let local_index m ~i ~j =
  match m.layout with
  | Lblock -> (
      match m.axis with
      | By_rows -> ((i - m.low) * m.cols) + j
      | By_cols -> j - m.low)
  | Lcyclic b -> (
      let nprocs = Mpisim.Sim.size () in
      match m.axis with
      | By_rows -> (Dist.Cyclic.local_of_global ~nprocs ~b i * m.cols) + j
      | By_cols -> Dist.Cyclic.local_of_global ~nprocs ~b j)
  | Lgrid _ -> ((i - m.low) * m.ccount) + (j - m.clow)

let get_local m ~i ~j = m.data.(local_index m ~i ~j)
let set_local m ~i ~j v = m.data.(local_index m ~i ~j) <- v

(* Fill from a function of the global linear index.  The block layout
   (the default, and the common case in every inner loop) is kept free
   of the per-element layout dispatch: its global indices are one add. *)
let init ~rows ~cols f =
  let m = create ~rows ~cols in
  (match m.layout with
  | Lblock ->
      let base =
        match m.axis with By_rows -> m.low * m.cols | By_cols -> m.low
      in
      for i = 0 to local_len m - 1 do
        m.data.(i) <- f (base + i)
      done
  | Lcyclic _ | Lgrid _ ->
      for i = 0 to local_len m - 1 do
        m.data.(i) <- f (global_of_local m i)
      done);
  m

let init_rc ~rows ~cols f =
  let m = create ~rows ~cols in
  (match m.layout with
  | Lblock ->
      let base =
        match m.axis with By_rows -> m.low * m.cols | By_cols -> m.low
      in
      for i = 0 to local_len m - 1 do
        let g = base + i in
        m.data.(i) <- f (g / m.cols) (g mod m.cols)
      done
  | Lcyclic _ | Lgrid _ ->
      for i = 0 to local_len m - 1 do
        let r, c = global_rc_of_local m i in
        m.data.(i) <- f r c
      done);
  m

let counts_for ~layout ~axis ~rows ~cols ~nprocs =
  match layout with
  | Lblock -> (
      match axis with
      | By_rows -> Array.map (fun c -> c * cols) (Dist.counts ~nprocs ~n:rows)
      | By_cols -> Dist.counts ~nprocs ~n:cols)
  | Lcyclic b -> (
      match axis with
      | By_rows ->
          Array.map (fun c -> c * cols) (Dist.Cyclic.counts ~nprocs ~b ~n:rows)
      | By_cols -> Dist.Cyclic.counts ~nprocs ~b ~n:cols)
  | Lgrid (pr, pc) -> Dist.Grid.counts ~pr ~pc ~rows ~cols

let counts_of ~rows ~cols =
  let nprocs = Mpisim.Sim.size () in
  let axis = axis_of_dims ~rows ~cols in
  let layout = effective_layout ~rows ~cols ~nprocs in
  counts_for ~layout ~axis ~rows ~cols ~nprocs

(* Global row-major index of rank [rank]'s local element [l] -- the
   per-rank generalization of [global_of_local], used to unpack a
   gathered non-block matrix into dense order. *)
let global_of_local_for ~layout ~axis ~rows ~cols ~nprocs ~rank l =
  match layout with
  | Lblock -> (
      let n = match axis with By_rows -> rows | By_cols -> cols in
      let lo = Dist.low ~rank ~nprocs ~n in
      match axis with By_rows -> (lo * cols) + l | By_cols -> lo + l)
  | Lcyclic b -> (
      match axis with
      | By_rows ->
          let gr = Dist.Cyclic.global_of_local ~rank ~nprocs ~b (l / cols) in
          (gr * cols) + (l mod cols)
      | By_cols -> Dist.Cyclic.global_of_local ~rank ~nprocs ~b l)
  | Lgrid (pr, pc) ->
      let rlow, _ = Dist.Grid.row_block ~pr ~pc ~rows rank in
      let clow, cc = Dist.Grid.col_block ~pr ~pc ~cols rank in
      ((rlow + (l / cc)) * cols) + clow + (l mod cc)

(* Rearrange rank-order gathered local arrays into dense row-major
   order.  The block layout needs no rearranging: concatenating the
   blocks in rank order IS dense order, so callers skip this. *)
let permute_gathered m counts (gathered : float array) =
  let nprocs = Array.length counts in
  let dense = Array.make (m.rows * m.cols) 0. in
  let off = ref 0 in
  for r = 0 to nprocs - 1 do
    for l = 0 to counts.(r) - 1 do
      dense.(global_of_local_for ~layout:m.layout ~axis:m.axis ~rows:m.rows
               ~cols:m.cols ~nprocs ~rank:r l) <-
        gathered.(!off + l)
    done;
    off := !off + counts.(r)
  done;
  dense

(* Replicated dense copy (an allgather); used by operations that need a
   whole operand (matmul, transpose) and by verification.  A rank-local
   replica is already dense: no communication, so the copy is safe in
   rank-divergent control flow. *)
let to_dense m : float array =
  if m.full then Array.copy m.data
  else begin
    let nprocs = Mpisim.Sim.size () in
    let counts =
      counts_for ~layout:m.layout ~axis:m.axis ~rows:m.rows ~cols:m.cols
        ~nprocs
    in
    let gathered = Mpisim.Coll.allgatherv ~counts m.data in
    match m.layout with
    | Lblock -> gathered
    | Lcyclic _ | Lgrid _ -> permute_gathered m counts gathered
  end

(* Dense copy on the root only (cheaper; used for printing / output). *)
let to_dense_root ~root m : float array =
  if m.full then Array.copy m.data
  else begin
    let nprocs = Mpisim.Sim.size () in
    let counts =
      counts_for ~layout:m.layout ~axis:m.axis ~rows:m.rows ~cols:m.cols
        ~nprocs
    in
    let gathered = Mpisim.Coll.gatherv ~root ~counts m.data in
    if Mpisim.Sim.rank () <> root then gathered
    else
      match m.layout with
      | Lblock -> gathered
      | Lcyclic _ | Lgrid _ -> permute_gathered m counts gathered
  end

(* Build from replicated dense data (no communication: every rank takes
   the part of [dense] it owns under the run's layout). *)
let of_dense ~rows ~cols (dense : float array) =
  if Array.length dense <> rows * cols then
    invalid_arg "of_dense: size mismatch";
  init ~rows ~cols (fun g -> dense.(g))

let copy m = { m with data = Array.copy m.data }

(* Render as MATLAB prints it; everything happens on the root, which
   returns Some text (other ranks return None). *)
let format_root ~root ?name m =
  let dense = to_dense_root ~root m in
  if Mpisim.Sim.rank () <> root then None
  else Some (Mlang.Fmtutil.format_matrix ?name ~rows:m.rows ~cols:m.cols dense)
