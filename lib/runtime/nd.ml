(* Plain dense rank-N arrays (no distribution, no simulator types).

   The leading (frame) axis varies slowest: element (d0, ..., dn-1, i, j)
   of a tensor with dims [| D0; ...; R; C |] lives at the row-major
   linear offset ((..(d0*D1 + d1)..)*R + i)*C + j.  The trailing two
   axes are the matrix "cell"; frame broadcasting replicates a matrix
   operand over every leading slice, which in this layout is a plain
   [offset mod cell_numel] read. *)

type t = { dims : int array; data : float array }

let rank t = Array.length t.dims
let numel t = Array.fold_left ( * ) 1 t.dims

let create dims =
  { dims = Array.copy dims; data = Array.make (Array.fold_left ( * ) 1 dims) 0. }

let init dims f =
  { dims = Array.copy dims; data = Array.init (Array.fold_left ( * ) 1 dims) f }

let copy t = { t with data = Array.copy t.data }
let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if a.dims <> b.dims then
    invalid_arg
      (Printf.sprintf "nonconformant tensor operands (%s vs %s)"
         (String.concat "x" (Array.to_list (Array.map string_of_int a.dims)))
         (String.concat "x" (Array.to_list (Array.map string_of_int b.dims))));
  { a with data = Array.map2 f a.data b.data }

(* Rows/cols of the trailing matrix cell; scalar-cell tensors never
   arise (the frontend only builds rank >= 3 with a full cell). *)
let cell_rows t = t.dims.(rank t - 2)
let cell_cols t = t.dims.(rank t - 1)
let cell_numel t = cell_rows t * cell_cols t

(* Linear offset of a multi-index (leading axis first, all 0-based). *)
let offset t (idx : int array) =
  let off = ref 0 in
  Array.iteri
    (fun axis i ->
      if i < 0 || i >= t.dims.(axis) then
        invalid_arg
          (Printf.sprintf "tensor index %d out of bounds (extent %d, axis %d)"
             (i + 1) t.dims.(axis) (axis + 1));
      off := (!off * t.dims.(axis)) + i)
    idx;
  !off

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v

let fold f init t = Array.fold_left f init t.data

let equal a b = a.dims = b.dims && a.data = b.data
