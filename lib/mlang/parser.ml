(* Recursive-descent parser for the MATLAB subset.

   Operator precedence (loosest to tightest), matching MATLAB:
     ||  &&  |  &  comparisons  :  + -  * / \ .* ./ .\  unary + - ~
     ^ .^  postfix transpose

   'end' is a valid expression atom only inside an index argument list;
   [st.in_index] counts the nesting of such lists. *)

type state = {
  toks : Lexer.lexed array;
  mutable i : int;
  mutable in_index : int;
}

let cur st = st.toks.(st.i).Lexer.tok
let cur_pos st = st.toks.(st.i).Lexer.tpos
let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let expect st tok =
  if cur st = tok then advance st
  else
    Source.error (cur_pos st) "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (cur st))

let expect_ident st =
  match cur st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> Source.error (cur_pos st) "expected identifier, found %s" (Token.to_string t)

(* Skip statement separators. *)
let rec skip_seps st =
  match cur st with
  | Token.NEWLINE | Token.SEMI | Token.COMMA ->
      advance st;
      skip_seps st
  | _ -> ()

let rec skip_newlines st =
  match cur st with
  | Token.NEWLINE ->
      advance st;
      skip_newlines st
  | _ -> ()

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr st = parse_shortor st

and parse_left_assoc st parse_sub table =
  let rec loop lhs =
    match List.assoc_opt (cur st) table with
    | Some op ->
        let pos = cur_pos st in
        advance st;
        let rhs = parse_sub st in
        loop (Ast.mk ~pos (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop (parse_sub st)

and parse_shortor st =
  parse_left_assoc st parse_shortand [ (Token.BARBAR, Ast.Shortor) ]

and parse_shortand st =
  parse_left_assoc st parse_or [ (Token.AMPAMP, Ast.Shortand) ]

and parse_or st = parse_left_assoc st parse_and [ (Token.BAR, Ast.Or) ]
and parse_and st = parse_left_assoc st parse_cmp [ (Token.AMP, Ast.And) ]

and parse_cmp st =
  parse_left_assoc st parse_range
    [
      (Token.LT, Ast.Lt);
      (Token.LE, Ast.Le);
      (Token.GT, Ast.Gt);
      (Token.GE, Ast.Ge);
      (Token.EQEQ, Ast.Eq);
      (Token.NE, Ast.Ne);
    ]

and parse_range st =
  let first = parse_additive st in
  if cur st <> Token.COLON then first
  else begin
    let pos = cur_pos st in
    advance st;
    let second = parse_additive st in
    if cur st <> Token.COLON then Ast.mk ~pos (Ast.Range (first, None, second))
    else begin
      advance st;
      let third = parse_additive st in
      Ast.mk ~pos (Ast.Range (first, Some second, third))
    end
  end

and parse_additive st =
  parse_left_assoc st parse_mul [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ]

and parse_mul st =
  parse_left_assoc st parse_unary
    [
      (Token.STAR, Ast.Mul);
      (Token.SLASH, Ast.Div);
      (Token.BACKSLASH, Ast.Ldiv);
      (Token.DOTSTAR, Ast.Emul);
      (Token.DOTSLASH, Ast.Ediv);
      (Token.DOTBACKSLASH, Ast.Eldiv);
    ]

and parse_unary st =
  match cur st with
  | Token.MINUS ->
      let pos = cur_pos st in
      advance st;
      Ast.mk ~pos (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.PLUS ->
      let pos = cur_pos st in
      advance st;
      Ast.mk ~pos (Ast.Unop (Ast.Uplus, parse_unary st))
  | Token.TILDE ->
      let pos = cur_pos st in
      advance st;
      Ast.mk ~pos (Ast.Unop (Ast.Not, parse_unary st))
  | _ -> parse_power st

and parse_power st =
  let rec loop lhs =
    match cur st with
    | Token.CARET | Token.DOTCARET ->
        let op = if cur st = Token.CARET then Ast.Pow else Ast.Epow in
        let pos = cur_pos st in
        advance st;
        (* The exponent may carry a unary sign, as in 2^-3. *)
        let rhs = parse_power_operand st in
        loop (Ast.mk ~pos (Ast.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  loop (parse_postfix st)

and parse_power_operand st =
  match cur st with
  | Token.MINUS ->
      let pos = cur_pos st in
      advance st;
      Ast.mk ~pos (Ast.Unop (Ast.Neg, parse_power_operand st))
  | Token.PLUS ->
      advance st;
      parse_power_operand st
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match cur st with
    | Token.QUOTE ->
        let pos = cur_pos st in
        advance st;
        loop (Ast.mk ~pos (Ast.Unop (Ast.Ctranspose, e)))
    | Token.DOTQUOTE ->
        let pos = cur_pos st in
        advance st;
        loop (Ast.mk ~pos (Ast.Unop (Ast.Transpose, e)))
    | _ -> e
  in
  loop (parse_primary st)

and parse_primary st =
  let pos = cur_pos st in
  match cur st with
  | Token.NUM f ->
      advance st;
      Ast.mk ~pos (Ast.Num f)
  | Token.STR s ->
      advance st;
      Ast.mk ~pos (Ast.Str s)
  | Token.IDENT name ->
      advance st;
      if cur st = Token.LPAREN then begin
        advance st;
        let args = parse_args st in
        expect st Token.RPAREN;
        Ast.mk ~pos (Ast.Apply (name, args))
      end
      else Ast.mk ~pos (Ast.Ident name)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.LBRACKET ->
      advance st;
      let rows = parse_matrix_rows st in
      expect st Token.RBRACKET;
      Ast.mk ~pos (Ast.Matrix rows)
  | Token.KEND when st.in_index > 0 ->
      advance st;
      Ast.mk ~pos Ast.End_marker
  | t -> Source.error pos "unexpected %s in expression" (Token.to_string t)

(* Index/call argument list; a bare ':' argument denotes a whole
   dimension. *)
and parse_args st =
  if cur st = Token.RPAREN then []
  else begin
    st.in_index <- st.in_index + 1;
    let parse_arg () =
      match cur st with
      | Token.COLON
        when st.toks.(st.i + 1).Lexer.tok = Token.COMMA
             || st.toks.(st.i + 1).Lexer.tok = Token.RPAREN ->
          let pos = cur_pos st in
          advance st;
          Ast.mk ~pos Ast.Colon
      | _ -> parse_expr st
    in
    let rec loop acc =
      let arg = parse_arg () in
      if cur st = Token.COMMA then begin
        advance st;
        loop (arg :: acc)
      end
      else List.rev (arg :: acc)
    in
    let args = loop [] in
    st.in_index <- st.in_index - 1;
    args
  end

and parse_matrix_rows st =
  skip_newlines st;
  if cur st = Token.RBRACKET then []
  else begin
    let rec parse_row acc =
      let e = parse_expr st in
      if cur st = Token.COMMA then begin
        advance st;
        parse_row (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let rec loop rows =
      let row = parse_row [] in
      match cur st with
      | Token.SEMI | Token.NEWLINE ->
          skip_seps_in_matrix st;
          if cur st = Token.RBRACKET then List.rev (row :: rows)
          else loop (row :: rows)
      | _ -> List.rev (row :: rows)
    in
    loop []
  end

and skip_seps_in_matrix st =
  match cur st with
  | Token.SEMI | Token.NEWLINE ->
      advance st;
      skip_seps_in_matrix st
  | _ -> ()

(* --- statements ------------------------------------------------------- *)

(* The display flag: an assignment or expression statement echoes its
   result unless terminated by ';'. *)
let parse_display st =
  match cur st with
  | Token.SEMI ->
      advance st;
      false
  | _ -> true

let lhs_of_expr (e : Ast.expr) =
  match e.node with
  | Ast.Ident name ->
      { Ast.lv_name = name; lv_indices = None; lv_pos = e.ann.Ast.pos }
  | Ast.Apply (name, args) ->
      { Ast.lv_name = name; lv_indices = Some args; lv_pos = e.ann.Ast.pos }
  | _ -> Source.error e.ann.Ast.pos "invalid assignment target"

let rec parse_stmt st : Ast.stmt =
  let pos = cur_pos st in
  match cur st with
  | Token.KIF ->
      advance st;
      let rec parse_branches () =
        let cond = parse_expr st in
        skip_seps st;
        let body = parse_block st in
        match cur st with
        | Token.KELSEIF ->
            advance st;
            let rest, els = parse_branches () in
            ((cond, body) :: rest, els)
        | Token.KELSE ->
            advance st;
            skip_seps st;
            let els = parse_block st in
            expect st Token.KEND;
            ([ (cond, body) ], els)
        | Token.KEND ->
            advance st;
            ([ (cond, body) ], [])
        | t ->
            Source.error (cur_pos st) "expected elseif/else/end, found %s"
              (Token.to_string t)
      in
      let bs, els = parse_branches () in
      Ast.mk_stmt ~pos (Ast.If (bs, els))
  | Token.KWHILE ->
      advance st;
      let cond = parse_expr st in
      skip_seps st;
      let body = parse_block st in
      expect st Token.KEND;
      Ast.mk_stmt ~pos (Ast.While (cond, body))
  | Token.KFOR ->
      advance st;
      let var = expect_ident st in
      expect st Token.ASSIGN;
      let range = parse_expr st in
      skip_seps st;
      let body = parse_block st in
      expect st Token.KEND;
      Ast.mk_stmt ~pos (Ast.For (var, range, body))
  | Token.KBREAK ->
      advance st;
      Ast.mk_stmt ~pos Ast.Break
  | Token.KCONTINUE ->
      advance st;
      Ast.mk_stmt ~pos Ast.Continue
  | Token.KRETURN ->
      advance st;
      Ast.mk_stmt ~pos Ast.Return
  | Token.LBRACKET -> (
      (* Could be [a, b] = f(...) or a matrix-literal expression. *)
      match try_multi_assign st pos with
      | Some stmt -> stmt
      | None -> parse_simple_stmt st pos)
  | _ -> parse_simple_stmt st pos

and parse_simple_stmt st pos =
  let e = parse_expr st in
  if cur st = Token.ASSIGN then begin
    advance st;
    let lhs = lhs_of_expr e in
    let rhs = parse_expr st in
    let display = parse_display st in
    Ast.mk_stmt ~pos (Ast.Assign (lhs, rhs, display))
  end
  else
    let display = parse_display st in
    Ast.mk_stmt ~pos (Ast.Expr (e, display))

and try_multi_assign st pos =
  let save = st.i in
  let rollback () =
    st.i <- save;
    None
  in
  (* LBRACKET lvalue (, lvalue)* RBRACKET ASSIGN *)
  advance st;
  let parse_lvalue () =
    match cur st with
    | Token.IDENT name ->
        advance st;
        if cur st = Token.LPAREN then begin
          advance st;
          let args = parse_args st in
          if cur st = Token.RPAREN then begin
            advance st;
            Some { Ast.lv_name = name; lv_indices = Some args; lv_pos = pos }
          end
          else None
        end
        else Some { Ast.lv_name = name; lv_indices = None; lv_pos = pos }
    | _ -> None
  in
  let rec collect acc =
    match parse_lvalue () with
    | None -> None
    | Some lv -> (
        match cur st with
        | Token.COMMA ->
            advance st;
            collect (lv :: acc)
        | Token.RBRACKET ->
            advance st;
            Some (List.rev (lv :: acc))
        | _ -> None)
  in
  match collect [] with
  | Some lhss when cur st = Token.ASSIGN ->
      advance st;
      let rhs = parse_expr st in
      let display = parse_display st in
      Some (Ast.mk_stmt ~pos (Ast.Multi_assign (lhss, rhs, display)))
  | _ -> rollback ()

and parse_block st : Ast.block =
  skip_seps st;
  let rec loop acc =
    match cur st with
    | Token.KEND | Token.KELSE | Token.KELSEIF | Token.KFUNCTION | Token.EOF ->
        List.rev acc
    | _ ->
        let s = parse_stmt st in
        skip_seps st;
        loop (s :: acc)
  in
  loop []

(* --- functions and programs ------------------------------------------ *)

let parse_function st : Ast.func =
  expect st Token.KFUNCTION;
  let returns, name =
    match cur st with
    | Token.LBRACKET ->
        advance st;
        let rec rets acc =
          let r = expect_ident st in
          match cur st with
          | Token.COMMA ->
              advance st;
              rets (r :: acc)
          | _ ->
              expect st Token.RBRACKET;
              List.rev (r :: acc)
        in
        let rs = rets [] in
        expect st Token.ASSIGN;
        let name = expect_ident st in
        (rs, name)
    | Token.IDENT first -> (
        advance st;
        match cur st with
        | Token.ASSIGN ->
            advance st;
            let name = expect_ident st in
            ([ first ], name)
        | _ -> ([], first))
    | t ->
        Source.error (cur_pos st) "expected function name, found %s"
          (Token.to_string t)
  in
  let params =
    if cur st = Token.LPAREN then begin
      advance st;
      if cur st = Token.RPAREN then begin
        advance st;
        []
      end
      else begin
        let rec ps acc =
          let p = expect_ident st in
          match cur st with
          | Token.COMMA ->
              advance st;
              ps (p :: acc)
          | _ ->
              expect st Token.RPAREN;
              List.rev (p :: acc)
        in
        ps []
      end
    end
    else []
  in
  let body = parse_block st in
  if cur st = Token.KEND then advance st;
  { Ast.fname = name; params; returns; fbody = body }

let parse_program src : Ast.program =
  let st = { toks = Lexer.tokens src; i = 0; in_index = 0 } in
  skip_seps st;
  let script = parse_block st in
  let rec funcs acc =
    skip_seps st;
    match cur st with
    | Token.KFUNCTION -> funcs (parse_function st :: acc)
    | Token.EOF -> List.rev acc
    | t ->
        Source.error (cur_pos st) "unexpected %s after script body"
          (Token.to_string t)
  in
  { Ast.script; funcs = funcs [] }

let parse_expr_string src =
  let st = { toks = Lexer.tokens src; i = 0; in_index = 0 } in
  let e = parse_expr st in
  skip_seps st;
  if cur st <> Token.EOF then
    Source.error (cur_pos st) "trailing input after expression";
  e
